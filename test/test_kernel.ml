(* Tests for the task model and the intermittent execution engine. *)

open Platform
open Kernel

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let simple_app m =
  let x = Machine.alloc m Memory.Fram ~name:"x" ~words:1 in
  let t1 =
    {
      Task.name = "t1";
      body =
        (fun m ->
          Machine.write m Memory.Fram x 5;
          Task.Next "t2");
    }
  in
  let t2 =
    {
      Task.name = "t2";
      body =
        (fun m ->
          Machine.write m Memory.Fram x (Machine.read m Memory.Fram x + 1);
          Task.Stop);
    }
  in
  (Task.make_app ~name:"simple" ~entry:"t1" [ t1; t2 ], x)

let test_run_to_completion () =
  let m = Machine.create () in
  let app, x = simple_app m in
  let o = Engine.run m app in
  checkb "completed" true o.Engine.completed;
  checki "x = 6" 6 (Machine.read m Memory.Fram x);
  checki "no failures" 0 o.Engine.power_failures;
  checki "two commits" 2 o.Engine.metrics.Metrics.commits

let test_make_app_validates_entry () =
  Alcotest.check_raises "bad entry" (Invalid_argument "Task.make_app: unknown entry task nope")
    (fun () ->
      ignore
        (Task.make_app ~name:"bad" ~entry:"nope" [ { Task.name = "t"; body = (fun _ -> Task.Stop) } ]))

let test_task_reexecutes_after_failure () =
  let m = Machine.create () in
  let runs = ref 0 in
  let t =
    {
      Task.name = "t";
      body =
        (fun m ->
          incr runs;
          Machine.cpu m 10;
          if Machine.failures m = 0 then Machine.die m;
          Task.Stop);
    }
  in
  let app = Task.make_app ~name:"retry" ~entry:"t" [ t ] in
  let o = Engine.run m app in
  checkb "completed" true o.Engine.completed;
  checki "two attempts" 2 !runs;
  checki "one failure" 1 o.Engine.power_failures;
  checki "metrics attempts" 2 o.Engine.metrics.Metrics.attempts

let test_all_or_nothing_direct_nv_increment () =
  (* the classic idempotence hazard: with direct NV access, a re-executed
     task increments twice *)
  let m = Machine.create () in
  let c = Machine.alloc m Memory.Fram ~name:"c" ~words:1 in
  let t =
    {
      Task.name = "t";
      body =
        (fun m ->
          Machine.write m Memory.Fram c (Machine.read m Memory.Fram c + 1);
          if Machine.failures m = 0 then Machine.die m;
          Task.Stop);
    }
  in
  let app = Task.make_app ~name:"incr" ~entry:"t" [ t ] in
  ignore (Engine.run m app);
  checki "incremented twice (bug reproduced)" 2 (Machine.read m Memory.Fram c)

let test_wasted_work_accounting () =
  let m = Machine.create () in
  let t =
    {
      Task.name = "t";
      body =
        (fun m ->
          Machine.cpu m 100;
          if Machine.failures m = 0 then Machine.die m;
          Task.Stop);
    }
  in
  let app = Task.make_app ~name:"waste" ~entry:"t" [ t ] in
  let o = Engine.run m app in
  checkb "wasted >= 100us" true (o.Engine.metrics.Metrics.wasted_us >= 100);
  checkb "useful >= 100us" true (o.Engine.metrics.Metrics.useful_app_us >= 100)

let test_resume_at_interrupted_task () =
  (* a failure in t2 must not re-run t1 *)
  let m = Machine.create () in
  let t1_runs = ref 0 and t2_runs = ref 0 in
  let t1 =
    {
      Task.name = "t1";
      body =
        (fun _ ->
          incr t1_runs;
          Task.Next "t2");
    }
  in
  let t2 =
    {
      Task.name = "t2";
      body =
        (fun m ->
          incr t2_runs;
          if Machine.failures m = 0 then Machine.die m;
          Task.Stop);
    }
  in
  let app = Task.make_app ~name:"resume" ~entry:"t1" [ t1; t2 ] in
  ignore (Engine.run m app);
  checki "t1 once" 1 !t1_runs;
  checki "t2 twice" 2 !t2_runs

let test_max_failures_gives_up () =
  let m =
    Machine.create
      ~failure:(Failure.Timer { on_min_us = 50; on_max_us = 60; off_min_us = 1; off_max_us = 1 })
      ()
  in
  (* a task that needs more than one on-interval can never finish: the
     non-termination bug of §3.5 *)
  let t = { Task.name = "t"; body = (fun m -> Machine.cpu m 1_000; Task.Stop) } in
  let app = Task.make_app ~name:"nonterm" ~entry:"t" [ t ] in
  let o = Engine.run ~max_failures:50 m app in
  checkb "gave up" false o.Engine.completed;
  checkb "gave_up flag" true o.Engine.gave_up;
  Alcotest.(check (option string)) "stuck task named" (Some "t") o.Engine.stuck_task;
  (* the final state was never reached, so correctness is unknowable *)
  Alcotest.(check (option bool)) "correct unknowable" None o.Engine.correct

let test_hooks_called_and_tagged () =
  let m = Machine.create () in
  let starts = ref 0 and commits = ref 0 in
  let hooks =
    {
      Engine.on_task_start =
        (fun m _ ->
          incr starts;
          Alcotest.(check bool) "overhead tag" true (Machine.tag m = Machine.Overhead);
          Machine.cpu m 7);
      on_commit = (fun _ _ -> incr commits);
      on_reboot = (fun _ -> ());
    }
  in
  let app, _ = simple_app m in
  let o = Engine.run ~hooks m app in
  checki "starts" 2 !starts;
  checki "commits" 2 !commits;
  checkb "hook work counted as overhead" true (o.Engine.metrics.Metrics.useful_ovh_us >= 14)

let test_check_predicate_reported () =
  let m = Machine.create () in
  let t = { Task.name = "t"; body = (fun _ -> Task.Stop) } in
  let app = Task.make_app ~check:(fun _ -> true) ~name:"chk" ~entry:"t" [ t ] in
  let o = Engine.run m app in
  Alcotest.(check (option bool)) "correct" (Some true) o.Engine.correct

let test_golden_redundant_io () =
  let run failure =
    let m = Machine.create ~failure () in
    let t =
      {
        Task.name = "t";
        body =
          (fun m ->
            ignore (Periph.Sensors.temperature_dc m);
            if Machine.failure_spec m <> Failure.No_failures && Machine.failures m = 0 then
              Machine.die m;
            Task.Stop);
      }
    in
    let app = Task.make_app ~name:"io" ~entry:"t" [ t ] in
    ignore (Engine.run m app);
    m
  in
  let golden = run Failure.No_failures in
  let test = run Failure.No_failures (* will self-fail once anyway? no: spec checked *) in
  checki "golden reads once" 1 (Machine.event golden "io:Temp");
  checki "no redundancy between identical runs" 0 (Golden.redundant_io ~golden ~test);
  let failing =
    run (Failure.Timer { on_min_us = 1_000_000; on_max_us = 1_000_001; off_min_us = 1; off_max_us = 1 })
  in
  checki "one redundant read" 1 (Golden.redundant_io ~golden ~test:failing)

let test_compose_hooks_order () =
  let trace = ref [] in
  let mk tag =
    {
      Engine.on_task_start = (fun _ _ -> trace := (tag ^ ".start") :: !trace);
      on_commit = (fun _ _ -> trace := (tag ^ ".commit") :: !trace);
      on_reboot = (fun _ -> ());
    }
  in
  let hooks = Engine.compose_hooks (mk "a") (mk "b") in
  let m = Machine.create () in
  let t = { Task.name = "t"; body = (fun _ -> Task.Stop) } in
  ignore (Engine.run ~hooks m (Task.make_app ~name:"h" ~entry:"t" [ t ]));
  Alcotest.(check (list string))
    "order" [ "a.start"; "b.start"; "a.commit"; "b.commit" ] (List.rev !trace)

let test_commit_is_failure_atomic () =
  (* regression: a power failure striking inside the commit sequence is
     deferred past it — the task has committed and must NOT re-execute
     (re-running a committed task against mutated state corrupts it) *)
  let m = Machine.create () in
  let t1_runs = ref 0 and t2_runs = ref 0 in
  let hooks =
    {
      Engine.on_task_start = (fun _ _ -> ());
      on_commit =
        (fun m task -> if task = "t1" && Machine.failures m = 0 then Machine.die m);
      on_reboot = (fun _ -> ());
    }
  in
  let t1 = { Task.name = "t1"; body = (fun _ -> incr t1_runs; Task.Next "t2") } in
  let t2 = { Task.name = "t2"; body = (fun _ -> incr t2_runs; Task.Stop) } in
  let app = Task.make_app ~name:"atomic" ~entry:"t1" [ t1; t2 ] in
  let o = Engine.run ~hooks m app in
  checkb "completed" true o.Engine.completed;
  checki "t1 ran exactly once (commit survived the failure)" 1 !t1_runs;
  checki "t2 ran after the reboot" 1 !t2_runs;
  checki "the failure was a real reboot" 1 o.Engine.power_failures

let test_critical_defers_failure () =
  let m = Machine.create () in
  Machine.boot m;
  let reached_end = ref false in
  (match
     Machine.critical m (fun () ->
         Machine.die m;
         (* still alive inside the section *)
         Machine.cpu m 5;
         reached_end := true)
   with
  | () -> Alcotest.fail "deferred failure must fire at section exit"
  | exception Machine.Power_failure -> ());
  checkb "section ran to completion first" true !reached_end

let test_critical_nests () =
  let m = Machine.create () in
  Machine.boot m;
  match
    Machine.critical m (fun () ->
        Machine.critical m (fun () -> Machine.die m);
        (* inner exit must not fire inside the outer section *)
        Machine.cpu m 3)
  with
  | () -> Alcotest.fail "failure must fire at the outermost exit"
  | exception Machine.Power_failure -> ()

(* Invariant: the metrics buckets partition all on-time work. *)
let prop_metrics_partition_work =
  QCheck.Test.make ~name:"metrics buckets partition charged work" ~count:100
    QCheck.(int_range 20 200)
    (fun on_min ->
      let m =
        Machine.create ~seed:on_min
          ~failure:
            (Failure.Timer
               { on_min_us = on_min; on_max_us = on_min * 3; off_min_us = 1; off_max_us = 5 })
          ()
      in
      let t =
        {
          Task.name = "t";
          body =
            (fun m ->
              Machine.cpu m 40;
              Machine.with_tag m Machine.Overhead (fun () -> Machine.cpu m 10);
              Task.Stop);
        }
      in
      let o = Engine.run m (Task.make_app ~name:"p" ~entry:"t" [ t ]) in
      let useful =
        o.Engine.metrics.Metrics.useful_app_us + o.Engine.metrics.Metrics.useful_ovh_us
      in
      (* total wall clock = work + off intervals; work = useful + wasted *)
      o.Engine.completed
      && useful + o.Engine.metrics.Metrics.wasted_us <= o.Engine.total_time_us
      && Metrics.total_us o.Engine.metrics = useful + o.Engine.metrics.Metrics.wasted_us)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "kernel"
    [
      ( "engine",
        [
          tc "run to completion" `Quick test_run_to_completion;
          tc "make_app validates entry" `Quick test_make_app_validates_entry;
          tc "task re-executes after failure" `Quick test_task_reexecutes_after_failure;
          tc "direct NV increment doubles (bug)" `Quick test_all_or_nothing_direct_nv_increment;
          tc "wasted work accounting" `Quick test_wasted_work_accounting;
          tc "resume at interrupted task" `Quick test_resume_at_interrupted_task;
          tc "max failures gives up" `Quick test_max_failures_gives_up;
          tc "hooks called and tagged" `Quick test_hooks_called_and_tagged;
          tc "check predicate reported" `Quick test_check_predicate_reported;
          tc "compose hooks order" `Quick test_compose_hooks_order;
          tc "commit is failure-atomic" `Quick test_commit_is_failure_atomic;
          tc "critical defers failure" `Quick test_critical_defers_failure;
          tc "critical nests" `Quick test_critical_nests;
        ] );
      ( "golden",
        [
          tc "redundant io" `Quick test_golden_redundant_io;
          QCheck_alcotest.to_alcotest prop_metrics_partition_work;
        ] );
    ]
