(* Tests for the domain-parallel experiment engine: Pool ordering and
   exactly-once execution, parallel-vs-sequential aggregate equality,
   and run determinism (the property parallelization must not break). *)

(* {1 Pool} *)

let test_pool_empty () =
  Alcotest.(check int) "empty" 0 (Array.length (Expkit.Pool.map ~jobs:4 0 (fun i -> i)))

let test_pool_more_jobs_than_work () =
  let out = Expkit.Pool.map ~jobs:8 3 (fun i -> i * i) in
  Alcotest.(check (array int)) "tiny input" [| 0; 1; 4 |] out

let test_pool_rejects_bad_args () =
  (match Expkit.Pool.map ~jobs:0 4 (fun i -> i) with
  | _ -> Alcotest.fail "expected invalid_arg for jobs=0"
  | exception Invalid_argument _ -> ());
  match Expkit.Pool.map (-1) (fun i -> i) with
  | _ -> Alcotest.fail "expected invalid_arg for n<0"
  | exception Invalid_argument _ -> ()

let test_pool_propagates_exception () =
  match Expkit.Pool.map ~jobs:3 64 (fun i -> if i = 41 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected the worker exception to surface"
  | exception Failure msg -> Alcotest.(check string) "original exception" "boom" msg

let prop_pool_order_and_exactly_once =
  QCheck.Test.make ~count:60 ~name:"Pool.map preserves order and runs every index exactly once"
    QCheck.(pair (int_bound 200) (int_range 1 6))
    (fun (n, jobs) ->
      let calls = Array.init n (fun _ -> Atomic.make 0) in
      let out =
        Expkit.Pool.map ~jobs n (fun i ->
            Atomic.incr calls.(i);
            (i * 7) + 3)
      in
      Array.length out = n
      && Array.for_all (fun c -> Atomic.get c = 1) calls
      && Array.for_all (fun b -> b)
           (Array.mapi (fun i v -> v = (i * 7) + 3) out))

(* Arbitrary jobs AND chunk sizes (chunk 1 = maximal work stealing,
   chunk >= n = one worker takes everything): results and exactly-once
   must hold for every combination, not just the default chunking. *)
let prop_pool_chunk_invariant =
  QCheck.Test.make ~count:60 ~name:"Pool.map is order-preserving for any jobs x chunk"
    QCheck.(triple (int_bound 200) (int_range 1 6) (int_range 1 64))
    (fun (n, jobs, chunk) ->
      let calls = Array.init n (fun _ -> Atomic.make 0) in
      let out =
        Expkit.Pool.map ~jobs ~chunk n (fun i ->
            Atomic.incr calls.(i);
            (i * 5) + 1)
      in
      Array.length out = n
      && Array.for_all (fun c -> Atomic.get c = 1) calls
      && Array.for_all (fun b -> b) (Array.mapi (fun i v -> v = (i * 5) + 1) out))

let test_pool_rejects_bad_chunk () =
  match Expkit.Pool.map ~jobs:2 ~chunk:0 4 (fun i -> i) with
  | _ -> Alcotest.fail "expected invalid_arg for chunk=0"
  | exception Invalid_argument _ -> ()

(* Regression: jobs=1 must run in the calling domain, spawning
   nothing — that is what lets [Domain.DLS]-keyed state (the VM
   arenas) survive a sequential sweep, and what a single-core host
   falls back to. *)
let test_pool_jobs1_sequential_fallback () =
  let self = Domain.self () in
  let seen = Expkit.Pool.map ~jobs:1 16 (fun i -> (i, Domain.self ())) in
  Array.iteri
    (fun i (j, d) ->
      Alcotest.(check int) "index" i j;
      Alcotest.(check bool) "jobs=1 stays on the calling domain" true (d = self))
    seen

(* {1 Parallel sweep == sequential sweep}

   A failure-heavy workload (the temperature app under the paper's
   timer failure model) swept with jobs=4 must produce the exact agg
   record of the sequential sweep: same seeds, per-run results placed
   in seed order, floats folded in the same order. *)

let sweep jobs =
  Expkit.Run.average ~jobs ~runs:12
    ~golden:(fun () ->
      Apps.Uni.temp.Apps.Common.run Apps.Common.Easeio ~failure:Platform.Failure.No_failures
        ~seed:0)
    (fun ~seed ->
      Apps.Uni.temp.Apps.Common.run Apps.Common.Easeio
        ~failure:Expkit.Experiments.paper_failures ~seed)

let test_parallel_equals_sequential () =
  let s = sweep 1 and p = sweep 4 in
  Alcotest.(check bool) "agg records identical" true (s = p);
  Alcotest.(check bool) "failure-heavy (sweep exercised reboots)" true (s.Expkit.Run.avg_pf > 0.)

let test_breakdown_parallel_equals_sequential () =
  let rows jobs =
    Expkit.Experiments.breakdown ~jobs ~runs:8
      (fun ~variant ~failure ~seed -> Apps.Fir.spec.Apps.Common.run variant ~failure ~seed)
      ~label:Apps.Common.variant_name
      [ Apps.Common.Alpaca; Apps.Common.Easeio ]
  in
  Alcotest.(check bool) "breakdown rows identical" true (rows 1 = rows 4)

(* {1 Determinism regression}

   Two full runs of the same spec with the same seed must produce
   identical outcome records — this is what makes per-worker Machine
   isolation sound, and it would break if parallelization ever
   introduced shared mutable state into the run closures. *)

let test_run_deterministic () =
  List.iter
    (fun variant ->
      let run () =
        Apps.Uni.dma.Apps.Common.run variant ~failure:Expkit.Experiments.paper_failures ~seed:42
      in
      let a = run () and b = run () in
      Alcotest.(check bool)
        (Printf.sprintf "identical outcome records (%s)" (Apps.Common.variant_name variant))
        true (a = b))
    [ Apps.Common.Alpaca; Apps.Common.Easeio ]

let test_run_deterministic_under_domains () =
  (* same seed evaluated on different domains of one parallel sweep *)
  let ones =
    Expkit.Pool.map ~jobs:4 8 (fun _ ->
        Apps.Uni.temp.Apps.Common.run Apps.Common.Easeio
          ~failure:Expkit.Experiments.paper_failures ~seed:7)
  in
  Array.iter
    (fun one -> Alcotest.(check bool) "domain-independent result" true (one = ones.(0)))
    ones

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "pool"
    [
      ( "pool",
        [
          tc "empty input" `Quick test_pool_empty;
          tc "more jobs than work" `Quick test_pool_more_jobs_than_work;
          tc "rejects bad args" `Quick test_pool_rejects_bad_args;
          tc "propagates worker exception" `Quick test_pool_propagates_exception;
          tc "rejects bad chunk" `Quick test_pool_rejects_bad_chunk;
          tc "jobs=1 sequential fallback" `Quick test_pool_jobs1_sequential_fallback;
          QCheck_alcotest.to_alcotest prop_pool_order_and_exactly_once;
          QCheck_alcotest.to_alcotest prop_pool_chunk_invariant;
        ] );
      ( "parallel-sweep",
        [
          tc "average jobs=4 == jobs=1" `Quick test_parallel_equals_sequential;
          tc "breakdown jobs=4 == jobs=1" `Quick test_breakdown_parallel_equals_sequential;
        ] );
      ( "determinism",
        [
          tc "same seed, same outcome" `Quick test_run_deterministic;
          tc "same seed across domains" `Quick test_run_deterministic_under_domains;
        ] );
    ]
