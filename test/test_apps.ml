(* End-to-end tests of the five evaluation applications under every
   runtime variant. *)

open Platform
open Apps

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let paper_failures = Failure.paper_timer
let continuous = Failure.No_failures

let correct (one : Expkit.Run.one) =
  match one.correct with Some b -> b | None -> Alcotest.fail "app has no check"

(* {1 Continuous power: every app correct under every variant} *)

let test_all_correct_continuous () =
  List.iter
    (fun spec ->
      List.iter
        (fun v ->
          let one = spec.Common.run v ~failure:continuous ~seed:1 in
          checkb
            (Printf.sprintf "%s/%s completed" spec.Common.app_name (Common.variant_name v))
            true one.Expkit.Run.completed;
          checkb
            (Printf.sprintf "%s/%s correct" spec.Common.app_name (Common.variant_name v))
            true (correct one);
          checki
            (Printf.sprintf "%s/%s no failures" spec.Common.app_name (Common.variant_name v))
            0 one.Expkit.Run.pf)
        Common.all_variants)
    Catalog.all

(* {1 Intermittent execution} *)

let test_all_complete_under_paper_failures () =
  List.iter
    (fun spec ->
      List.iter
        (fun v ->
          let one = spec.Common.run v ~failure:paper_failures ~seed:3 in
          checkb
            (Printf.sprintf "%s/%s completed" spec.Common.app_name (Common.variant_name v))
            true one.Expkit.Run.completed;
          checkb
            (Printf.sprintf "%s/%s saw failures" spec.Common.app_name (Common.variant_name v))
            true (one.Expkit.Run.pf >= 0))
        Common.all_variants)
    Catalog.all

let test_easeio_always_correct_under_failures () =
  List.iter
    (fun spec ->
      for seed = 1 to 15 do
        let one = spec.Common.run Common.Easeio ~failure:paper_failures ~seed in
        checkb
          (Printf.sprintf "%s seed %d correct" spec.Common.app_name seed)
          true (correct one)
      done)
    Catalog.all

let count_io name (one : Expkit.Run.one) =
  try List.assoc ("io:" ^ name) one.Expkit.Run.io with Not_found -> 0

let avg_io variant spec name ~seeds =
  let total = ref 0 in
  for seed = 1 to seeds do
    total := !total + count_io name (spec.Common.run variant ~failure:paper_failures ~seed)
  done;
  float_of_int !total /. float_of_int seeds

let test_easeio_avoids_redundant_dma () =
  let alpaca = avg_io Common.Alpaca Uni.dma "DMA" ~seeds:10 in
  let easeio = avg_io Common.Easeio Uni.dma "DMA" ~seeds:10 in
  checkb
    (Printf.sprintf "easeio dma execs (%.1f) < alpaca (%.1f)" easeio alpaca)
    true (easeio < alpaca)

let test_easeio_avoids_redundant_sensing () =
  let alpaca = avg_io Common.Alpaca Uni.temp "Temp" ~seeds:10 in
  let easeio = avg_io Common.Easeio Uni.temp "Temp" ~seeds:10 in
  checkb
    (Printf.sprintf "easeio temp reads (%.1f) < alpaca (%.1f)" easeio alpaca)
    true (easeio < alpaca)

let test_lea_always_no_reduction () =
  (* Always-annotated operations re-execute under every runtime *)
  let alpaca = avg_io Common.Alpaca Uni.lea "LEA" ~seeds:10 in
  let easeio = avg_io Common.Easeio Uni.lea "LEA" ~seeds:10 in
  checkb
    (Printf.sprintf "easeio lea execs (%.1f) ~ alpaca (%.1f)" easeio alpaca)
    true (easeio >= alpaca *. 0.7 && easeio <= alpaca *. 1.3)

let incorrect_fraction spec variant ~seeds =
  let bad = ref 0 in
  for seed = 1 to seeds do
    if not (correct (spec.Common.run variant ~failure:paper_failures ~seed)) then incr bad
  done;
  float_of_int !bad /. float_of_int seeds

let test_fir_baselines_incorrect_easeio_correct () =
  let alpaca = incorrect_fraction Fir.spec Common.Alpaca ~seeds:30 in
  let ink = incorrect_fraction Fir.spec Common.Ink ~seeds:30 in
  let easeio = incorrect_fraction Fir.spec Common.Easeio ~seeds:30 in
  checkb (Printf.sprintf "alpaca corrupts sometimes (%.2f)" alpaca) true (alpaca > 0.);
  checkb (Printf.sprintf "ink corrupts sometimes (%.2f)" ink) true (ink > 0.);
  Alcotest.(check (float 0.0)) "easeio never" 0.0 easeio

let test_weather_single_buffer_table5 () =
  let frac variant buffering ~seeds =
    let bad = ref 0 in
    for seed = 1 to seeds do
      let one = Weather.run_once ~buffering variant ~failure:paper_failures ~seed in
      if not (correct one) then incr bad
    done;
    float_of_int !bad /. float_of_int seeds
  in
  checkb "alpaca single-buffer corrupts" true (frac Common.Alpaca `Single ~seeds:100 > 0.);
  checkb "ink single-buffer corrupts" true (frac Common.Ink `Single ~seeds:100 > 0.);
  Alcotest.(check (float 0.0)) "alpaca double-buffer correct" 0.0
    (frac Common.Alpaca `Double ~seeds:25);
  Alcotest.(check (float 0.0)) "easeio single-buffer correct" 0.0
    (frac Common.Easeio `Single ~seeds:25);
  Alcotest.(check (float 0.0)) "easeio double-buffer correct" 0.0
    (frac Common.Easeio `Double ~seeds:25)

let test_easeio_reduces_wasted_work_dma () =
  let wasted variant =
    let total = ref 0 in
    for seed = 1 to 10 do
      let one = Uni.dma.Common.run variant ~failure:paper_failures ~seed in
      total := !total + one.Expkit.Run.wasted_us
    done;
    !total
  in
  let a = wasted Common.Alpaca and e = wasted Common.Easeio in
  checkb (Printf.sprintf "easeio wasted (%d) < alpaca (%d)" e a) true (e < a)

let test_easeio_op_cheaper_than_easeio_fir () =
  let total variant =
    let acc = ref 0 in
    for seed = 1 to 10 do
      acc := !acc + (Fir.spec.Common.run variant ~failure:paper_failures ~seed).Expkit.Run.total_us
    done;
    !acc
  in
  let e = total Common.Easeio and op = total Common.Easeio_op in
  checkb (Printf.sprintf "easeio/op (%d) <= easeio (%d)" op e) true (op <= e)

let test_catalog_table3 () =
  checki "five applications" 5 (List.length Catalog.all);
  let fir = Catalog.find "FIR filter" in
  checki "fir tasks" 5 fir.Common.tasks;
  let weather = Catalog.find "Weather App." in
  checki "weather tasks" 11 weather.Common.tasks;
  checki "weather io fns" 5 weather.Common.io_functions

let test_catalog_find_prefixes () =
  checkb "case-insensitive prefix" true
    (Catalog.find "weather" == Weather.spec && Catalog.find "fir" == Fir.spec);
  (* "temp" extends to both "Temp." and a hypothetical longer name; the
     exact normalized match must win. The shipped names are prefix-free,
     so ambiguity is exercised through an injected candidate list. *)
  let temp_long = { Uni.temp with Common.app_name = "Temperature logger" } in
  let candidates = Catalog.all @ [ temp_long ] in
  checkb "exact normalized match beats longer name" true
    (Catalog.find ~candidates "temp" == Uni.temp);
  (match Catalog.find ~candidates "te" with
  | _ -> Alcotest.fail "ambiguous prefix should not resolve"
  | exception Catalog.Ambiguous names ->
      checkb "ambiguity lists both matches" true
        (List.sort compare names = [ "Temp."; "Temperature logger" ]));
  match Catalog.find "no such app" with
  | _ -> Alcotest.fail "unknown name should not resolve"
  | exception Not_found -> ()

let test_deterministic_given_seed () =
  let run () = Uni.temp.Common.run Common.Easeio ~failure:paper_failures ~seed:7 in
  let a = run () and b = run () in
  checki "same total" a.Expkit.Run.total_us b.Expkit.Run.total_us;
  checki "same pf" a.Expkit.Run.pf b.Expkit.Run.pf

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "apps"
    [
      ( "correctness",
        [
          tc "all correct under continuous power" `Slow test_all_correct_continuous;
          tc "all complete under paper failures" `Slow test_all_complete_under_paper_failures;
          tc "easeio always correct under failures" `Slow test_easeio_always_correct_under_failures;
          tc "fir: baselines corrupt, easeio doesn't" `Slow test_fir_baselines_incorrect_easeio_correct;
          tc "weather single vs double buffer (table 5)" `Slow test_weather_single_buffer_table5;
        ] );
      ( "efficiency",
        [
          tc "easeio avoids redundant dma" `Slow test_easeio_avoids_redundant_dma;
          tc "easeio avoids redundant sensing" `Slow test_easeio_avoids_redundant_sensing;
          tc "lea (always) no reduction" `Slow test_lea_always_no_reduction;
          tc "easeio reduces wasted work (dma)" `Slow test_easeio_reduces_wasted_work_dma;
          tc "exclude lowers cost (fir)" `Slow test_easeio_op_cheaper_than_easeio_fir;
        ] );
      ( "meta",
        [
          tc "table 3 catalog" `Quick test_catalog_table3;
          tc "find: prefixes, exact wins, ambiguity" `Quick test_catalog_find_prefixes;
          tc "deterministic given seed" `Quick test_deterministic_given_seed;
        ] );
    ]
