(* Tests for the fault-injection kit: deterministic failure schedules,
   peripheral fault models, correctness oracles, and campaigns. *)

open Platform

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* {1 Failure-spec round-trip} *)

let test_failure_spec_round_trip () =
  List.iter
    (fun s ->
      match Failure.of_string s with
      | Error e -> Alcotest.failf "%S did not parse: %s" s e
      | Ok spec -> checks s s (Failure.to_string spec))
    [
      "none";
      "energy";
      "timer:5000,20000,2000,15000";
      "timer:1,1,0,0";
      "at:100";
      "at:100,2000,300000";
      "nth:1";
      "nth:4096";
    ]

let test_failure_spec_paper_alias () =
  match Failure.of_string "paper" with
  | Error e -> Alcotest.failf "paper did not parse: %s" e
  | Ok spec -> checkb "paper = paper_timer" true (spec = Failure.paper_timer)

let test_failure_spec_rejects_garbage () =
  List.iter
    (fun s ->
      match Failure.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [
      "";
      "bogus";
      "timer:1,2,3";
      "timer:0,5,1,2";
      "timer:9,5,1,2";
      "timer:5,9,7,2";
      "at:";
      "at:0";
      "at:-5";
      "at:1,x";
      "nth:0";
      "nth:-3";
      "nth:x";
    ]

let spec_gen =
  QCheck.Gen.(
    oneof
      [
        return Failure.No_failures;
        return Failure.Energy_driven;
        (let* on_min_us = int_range 1 30_000 in
         let* on_span = int_range 0 30_000 in
         let* off_min_us = int_range 0 20_000 in
         let* off_span = int_range 0 20_000 in
         return
           (Failure.Timer
              {
                on_min_us;
                on_max_us = on_min_us + on_span;
                off_min_us;
                off_max_us = off_min_us + off_span;
              }));
        map
          (fun ts -> Failure.At_times (List.map (fun t -> 1 + (abs t mod 1_000_000)) ts))
          (list_size (int_range 1 5) int);
        map (fun n -> Failure.Nth_charge (1 + abs n)) int;
      ])

let prop_spec_string_round_trip =
  QCheck.Test.make ~count:200 ~name:"failure spec survives to_string/of_string"
    (QCheck.make ~print:Failure.to_string spec_gen) (fun spec ->
      match Failure.of_string (Failure.to_string spec) with
      | Ok spec' -> spec' = spec
      | Error _ -> false)

(* {1 Deterministic schedules} *)

let test_at_times_fires_at_instants () =
  let m = Machine.create ~failure:(Failure.At_times [ 500; 8_000 ]) () in
  Machine.boot m;
  let deaths = ref [] in
  let rec go () =
    match
      while true do
        Machine.cpu m 100
      done
    with
    | () -> ()
    | exception Machine.Power_failure ->
        deaths := Machine.now m :: !deaths;
        if List.length !deaths < 2 then begin
          Machine.reboot m;
          go ()
        end
  in
  go ();
  match List.rev !deaths with
  | [ d1; d2 ] ->
      checki "first instant" 500 d1;
      checki "second instant" 8_000 d2
  | ds -> Alcotest.failf "expected 2 deaths, got %d" (List.length ds)

let test_nth_charge_fires_exactly_once () =
  let m = Machine.create ~failure:(Failure.Nth_charge 3) () in
  Machine.cpu m 10;
  Machine.cpu m 10;
  (match Machine.cpu m 10 with
  | () -> Alcotest.fail "third charge should have died"
  | exception Machine.Power_failure -> ());
  Machine.reboot m;
  (* the boundary is a one-shot latch: charges keep counting past 3,
     but the schedule never refires *)
  for _ = 1 to 500 do
    Machine.cpu m 10
  done;
  checki "one failure total" 1 (Machine.failures m);
  checkb "counted past the boundary" true (Machine.charges m > 3)

(* {1 Radio faults: retry, backoff, graceful give-up} *)

let retry_events recorder =
  List.filter_map
    (fun (e : Trace.Event.t) ->
      match e.payload with
      | Trace.Event.Radio_retry { attempt; backoff_us } -> Some (attempt, backoff_us)
      | _ -> None)
    (Trace.Recorder.events recorder)

let count_payload recorder pred =
  List.length
    (List.filter (fun (e : Trace.Event.t) -> pred e.payload) (Trace.Recorder.events recorder))

let test_radio_drops_retry_then_succeed () =
  let m = Machine.create ~faults:{ Faults.none with Faults.drop_sends = [ 1; 2 ] } () in
  let recorder = Trace.Recorder.create () in
  Machine.set_sink m (Trace.Recorder.sink recorder);
  let r = Periph.Radio.create m in
  let ok = Runtimes.Manager.with_backoff m (fun () -> Periph.Radio.send r [| 7; 8; 9 |]) in
  checkb "delivered after retries" true ok;
  checki "one packet arrived" 1 (Periph.Radio.packets_sent r);
  checki "three transmissions paid for" 3 (Machine.event m "io:Send");
  checki "retry counter" 2 (Machine.event m "radio:retry");
  checki "no give-up" 0 (Machine.event m "radio:giveup");
  Alcotest.(check (list (pair int int)))
    "exponential backoff visible in trace"
    [ (1, 500); (2, 1_000) ]
    (retry_events recorder);
  checki "both drops traced as faults" 2
    (count_payload recorder (function
      | Trace.Event.Fault { kind = "radio-drop"; _ } -> true
      | _ -> false))

let test_radio_exhaustion_gives_up_gracefully () =
  let m = Machine.create ~faults:{ Faults.none with Faults.drop_sends = [ 1; 2; 3; 4 ] } () in
  let recorder = Trace.Recorder.create () in
  Machine.set_sink m (Trace.Recorder.sink recorder);
  let r = Periph.Radio.create m in
  let ok = Runtimes.Manager.with_backoff m (fun () -> Periph.Radio.send r [| 1 |]) in
  checkb "packet dropped" false ok;
  checki "nothing arrived" 0 (Periph.Radio.packets_sent r);
  checki "budget spent" 4 (Machine.event m "io:Send");
  checki "give-up counted" 1 (Machine.event m "radio:giveup");
  checki "give-up traced" 1
    (count_payload recorder (function
      | Trace.Event.Radio_give_up { attempts = 4 } -> true
      | _ -> false));
  (* the machine is alive and the next (unfaulted) send goes through *)
  checkb "degraded, not crashed" true
    (Runtimes.Manager.with_backoff m (fun () -> Periph.Radio.send r [| 2 |]));
  checki "next packet arrives" 1 (Periph.Radio.packets_sent r)

let test_radio_log_cap_bounds_log_only () =
  let m = Machine.create () in
  let r = Periph.Radio.create ~log_cap:2 m in
  for i = 1 to 5 do
    Periph.Radio.send r [| i |]
  done;
  checki "all sends counted" 5 (Periph.Radio.packets_sent r);
  (match Periph.Radio.log r with
  | [ (_, a); (_, b) ] ->
      checki "newest kept, oldest first" 4 a.(0);
      checki "newest kept" 5 b.(0)
  | log -> Alcotest.failf "expected 2 retained packets, got %d" (List.length log));
  checkb "zero cap rejected" true
    (match Periph.Radio.create ~log_cap:0 m with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* {1 Sensor and DMA faults} *)

let test_sensor_glitch () =
  (* same seed, same instant: the only difference is the injected glitch *)
  let clean = Machine.create () in
  let v = Periph.Sensors.temperature_dc clean in
  let m = Machine.create ~faults:{ Faults.none with Faults.glitch_reads = [ 1 ] } () in
  let recorder = Trace.Recorder.create () in
  Machine.set_sink m (Trace.Recorder.sink recorder);
  let g = Periph.Sensors.temperature_dc m in
  checki "bit-flipped sample" (0x7FFF - v) g;
  checki "glitch traced" 1
    (count_payload recorder (function
      | Trace.Event.Fault { kind = "sensor-glitch"; index = 1 } -> true
      | _ -> false))

let test_dma_interrupt_leaves_partial_copy () =
  let m = Machine.create ~faults:{ Faults.none with Faults.interrupt_dmas = [ 1 ] } () in
  let recorder = Trace.Recorder.create () in
  Machine.set_sink m (Trace.Recorder.sink recorder);
  let src = Machine.alloc m Memory.Fram ~name:"src" ~words:64 in
  let dst = Machine.alloc m Memory.Fram ~name:"dst" ~words:64 in
  for i = 0 to 63 do
    Memory.write (Machine.mem m Memory.Fram) (src + i) (i + 1)
  done;
  (match Periph.Dma.copy m ~src:(Loc.fram src) ~dst:(Loc.fram dst) ~words:64 with
  | () -> Alcotest.fail "interrupted transfer should die"
  | exception Machine.Power_failure -> ());
  let fram = Machine.mem m Memory.Fram in
  checki "prefix copied" 1 (Memory.read fram dst);
  checki "cut at half" 32 (Memory.read fram (dst + 31));
  checki "suffix untouched" 0 (Memory.read fram (dst + 32));
  checki "interrupt traced" 1
    (count_payload recorder (function
      | Trace.Event.Fault { kind = "dma-interrupt"; index = 1 } -> true
      | _ -> false));
  (* the re-executed transfer draws a fresh occurrence index and
     completes — one injected fault means one partial copy, not a
     permanently broken engine *)
  Machine.reboot m;
  Periph.Dma.copy m ~src:(Loc.fram src) ~dst:(Loc.fram dst) ~words:64;
  checki "retry completes" 64 (Memory.read fram (dst + 63))

(* {1 Forward-progress watchdog} *)

let test_stall_watchdog_reports_stuck_task () =
  let m =
    Machine.create
      ~failure:(Failure.Timer { on_min_us = 50; on_max_us = 60; off_min_us = 1; off_max_us = 1 })
      ()
  in
  let t = { Kernel.Task.name = "spin"; body = (fun m -> Machine.cpu m 1_000; Kernel.Task.Stop) } in
  let app = Kernel.Task.make_app ~name:"nonterm" ~entry:"spin" [ t ] in
  let o = Kernel.Engine.run ~stall_limit:10 m app in
  checkb "gave up" true o.Kernel.Engine.gave_up;
  checkb "incomplete" false o.Kernel.Engine.completed;
  Alcotest.(check (option string)) "stuck task named" (Some "spin") o.Kernel.Engine.stuck_task;
  (* the watchdog fired long before the (default 100k) failure budget *)
  checkb "bounded attempts" true (Machine.failures m <= 10)

(* {1 Campaigns and oracles} *)

let test_campaign_boundary_sweep_passes_on_safe_app () =
  let spec = Apps.Catalog.find "DMA" in
  let report =
    Faultkit.Campaign.run ~jobs:2
      ~sweep:(Faultkit.Campaign.Boundaries { stride = 977 })
      ~variants:Apps.Common.all_variants spec
  in
  checkb "all oracles pass" true (Faultkit.Campaign.passed report);
  checki "four cells" 4 (List.length report.Faultkit.Campaign.cells);
  List.iter
    (fun (c : Faultkit.Campaign.cell) ->
      checkb "sweep space measured" true (c.boundaries > 0);
      checki "one case per stride step" (1 + ((c.boundaries - 1) / 977)) c.cases)
    report.Faultkit.Campaign.cells

let test_campaign_catches_unsafe_runtime () =
  (* FIR under Alpaca is the paper's Table 5 unsafe pair: re-executed
     in-place I/O corrupts the committed signal. The differential
     NV-state oracle must see it. *)
  let spec = Apps.Catalog.find "FIR filter" in
  let report =
    Faultkit.Campaign.run ~jobs:2
      ~sweep:(Faultkit.Campaign.Boundaries { stride = 101 })
      ~variants:[ Apps.Common.Alpaca ] spec
  in
  checkb "violations found" false (Faultkit.Campaign.passed report);
  let cell = List.hd report.Faultkit.Campaign.cells in
  checkb "some case failed" true (cell.Faultkit.Campaign.failed <> []);
  let has_nv_mismatch =
    List.exists
      (fun (c : Faultkit.Campaign.case) ->
        List.exists
          (function Faultkit.Campaign.Nv_mismatch _ -> true | _ -> false)
          c.violations)
      cell.Faultkit.Campaign.failed
  in
  checkb "differential oracle fired" true has_nv_mismatch

let test_oracle_catches_ablated_semantics () =
  (* EaseIO with re-execution semantics deliberately ablated (tests
     only): the golden image is captured from the broken build itself,
     so any surviving mismatch is pure failure-schedule damage *)
  let captured = ref None in
  let golden_run =
    Apps.Fir.run_ablated
      ~probe:(fun m -> captured := Some (Faultkit.Oracle.capture m))
      ~ablate_regions:false ~ablate_semantics:true ~failure:Failure.No_failures ~seed:1 ()
  in
  checkb "golden run completes" true golden_run.Expkit.Run.completed;
  let golden = Option.get !captured in
  let caught = ref false in
  let k = ref 1 in
  while (not !caught) && !k <= golden.Faultkit.Oracle.charges do
    let diff = ref [] in
    let one =
      Apps.Fir.run_ablated
        ~probe:(fun m -> diff := Faultkit.Oracle.nv_diff ~golden m)
        ~ablate_regions:false ~ablate_semantics:true ~failure:(Failure.Nth_charge !k) ~seed:1 ()
    in
    if (not one.Expkit.Run.gave_up) && !diff <> [] then caught := true;
    k := !k + 53
  done;
  checkb "ablated semantics caught by NV oracle" true !caught

let test_campaign_deterministic_across_jobs () =
  let spec = Apps.Catalog.find "Temp." in
  let sweep = Faultkit.Campaign.Random { cases = 10 } in
  let r1 = Faultkit.Campaign.run ~jobs:1 ~sweep ~variants:Apps.Common.all_variants spec in
  let r4 = Faultkit.Campaign.run ~jobs:4 ~sweep ~variants:Apps.Common.all_variants spec in
  checkb "reports equal" true (r1 = r4);
  checks "JSON bit-identical"
    (Trace.Json.to_string (Faultkit.Campaign.to_json r1))
    (Trace.Json.to_string (Faultkit.Campaign.to_json r4))

let test_sweep_spec_round_trip () =
  List.iter
    (fun s ->
      match Faultkit.Campaign.sweep_of_string s with
      | Error e -> Alcotest.failf "%S did not parse: %s" s e
      | Ok sw -> checks s s (Faultkit.Campaign.sweep_to_string sw))
    [ "boundaries"; "boundaries:50"; "random:200" ];
  List.iter
    (fun s ->
      match Faultkit.Campaign.sweep_of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ ""; "boundaries:0"; "random:"; "random:-1"; "exhaustive" ]

(* {1 Property: committed NV state is schedule-independent}

   The paper's core safety claim, as a qcheck property: for the
   catalog's runtime-safe app/variant pairs, the final committed NV
   image under an arbitrary Timer/At_times schedule equals the
   no-failure golden image (modulo declared-volatile regions). FIR under
   the baselines is excluded — corrupting there is Table 5's point, and
   [test_campaign_catches_unsafe_runtime] pins it. *)

let safe_apps = [ "DMA"; "Temp."; "LEA" ]

let goldens : (string * Apps.Common.variant, Faultkit.Oracle.golden) Hashtbl.t = Hashtbl.create 16

let golden_for (spec : Apps.Common.spec) variant =
  match Hashtbl.find_opt goldens (spec.Apps.Common.app_name, variant) with
  | Some g -> g
  | None ->
      let captured = ref None in
      ignore
        (spec.Apps.Common.run
           ~probe:(fun m -> captured := Some (Faultkit.Oracle.capture m))
           variant ~failure:Failure.No_failures ~seed:1);
      let g = Option.get !captured in
      Hashtbl.add goldens (spec.Apps.Common.app_name, variant) g;
      g

let schedule_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun ts -> Failure.At_times (List.map (fun t -> 1 + (abs t mod 300_000)) ts))
          (list_size (int_range 1 3) int);
        (* on-times in the paper's ballpark so every attempt makes
           forward progress (tighter schedules are livelock territory,
           which the watchdog — not this property — covers) *)
        (let* on_min_us = int_range 5_000 12_000 in
         let* on_span = int_range 1_000 8_000 in
         let* off_min_us = int_range 1_000 5_000 in
         let* off_span = int_range 1_000 10_000 in
         return
           (Failure.Timer
              {
                on_min_us;
                on_max_us = on_min_us + on_span;
                off_min_us;
                off_max_us = off_min_us + off_span;
              }));
      ])

let prop_nv_state_schedule_independent =
  QCheck.Test.make ~count:40
    ~name:"final committed NV state under arbitrary schedules equals no-failure golden"
    (QCheck.make
       ~print:(fun (a, v, s) ->
         Printf.sprintf "%s under %s, %s" (List.nth safe_apps a)
           (Apps.Common.variant_name (List.nth Apps.Common.all_variants v))
           (Failure.to_string s))
       QCheck.Gen.(
         triple
           (int_range 0 (List.length safe_apps - 1))
           (int_range 0 (List.length Apps.Common.all_variants - 1))
           schedule_gen))
    (fun (app_i, var_i, schedule) ->
      let spec = Apps.Catalog.find (List.nth safe_apps app_i) in
      let variant = List.nth Apps.Common.all_variants var_i in
      let golden = golden_for spec variant in
      let diff = ref [] in
      let one =
        spec.Apps.Common.run
          ~probe:(fun m ->
            diff := Faultkit.Oracle.nv_diff ~extra_volatile:spec.Apps.Common.nv_volatile ~golden m)
          variant ~failure:schedule ~seed:1
      in
      (not one.Expkit.Run.gave_up)
      && one.Expkit.Run.correct <> Some false
      && !diff = [])

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "faultkit"
    [
      ( "failure specs",
        [
          tc "round trip" `Quick test_failure_spec_round_trip;
          tc "paper alias" `Quick test_failure_spec_paper_alias;
          tc "rejects garbage" `Quick test_failure_spec_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_spec_string_round_trip;
        ] );
      ( "schedules",
        [
          tc "at-times fires at instants" `Quick test_at_times_fires_at_instants;
          tc "nth-charge fires exactly once" `Quick test_nth_charge_fires_exactly_once;
        ] );
      ( "radio faults",
        [
          tc "drop, retry, succeed" `Quick test_radio_drops_retry_then_succeed;
          tc "exhaustion degrades gracefully" `Quick test_radio_exhaustion_gives_up_gracefully;
          tc "log cap bounds log only" `Quick test_radio_log_cap_bounds_log_only;
        ] );
      ( "sensor and dma faults",
        [
          tc "sensor glitch" `Quick test_sensor_glitch;
          tc "dma interrupt leaves partial copy" `Quick test_dma_interrupt_leaves_partial_copy;
        ] );
      ("watchdog", [ tc "stall reports stuck task" `Quick test_stall_watchdog_reports_stuck_task ]);
      ( "campaigns",
        [
          tc "boundary sweep passes on safe app" `Quick test_campaign_boundary_sweep_passes_on_safe_app;
          tc "catches unsafe runtime" `Quick test_campaign_catches_unsafe_runtime;
          tc "catches ablated semantics" `Quick test_oracle_catches_ablated_semantics;
          tc "deterministic across jobs" `Quick test_campaign_deterministic_across_jobs;
          tc "sweep spec round trip" `Quick test_sweep_spec_round_trip;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_nv_state_schedule_independent ]);
    ]
