(* Tests for the execution-tracing subsystem: determinism of the
   exporters, the skip-only-for-Single/Timely property, reconciliation
   of the derived profile against the simulator's own accounting, and
   the exporters' output shape. *)

open Platform

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let record_run ?(variant = Apps.Common.Easeio) ?(seed = 1) (spec : Apps.Common.spec) =
  let recorder = Trace.Recorder.create () in
  let one =
    spec.Apps.Common.run
      ~sink:(Trace.Recorder.sink recorder)
      variant ~failure:Failure.paper_timer ~seed
  in
  (one, Trace.Recorder.events recorder)

(* {1 Determinism} *)

let test_same_seed_same_bytes () =
  let export spec =
    let _, events = record_run spec in
    ( Trace.Json.to_string (Trace.Export.chrome events),
      Trace.Export.text events,
      Trace.Json.to_string (Trace.Profile.to_json (Trace.Profile.of_events events)) )
  in
  let c1, t1, p1 = export Apps.Uni.temp in
  let c2, t2, p2 = export Apps.Uni.temp in
  checks "chrome export byte-identical" c1 c2;
  checks "text export byte-identical" t1 t2;
  checks "profile export byte-identical" p1 p2

let test_different_seeds_differ () =
  let _, e1 = record_run ~seed:1 Apps.Uni.temp in
  let _, e2 = record_run ~seed:2 Apps.Uni.temp in
  (* power failures land elsewhere, so the timelines must differ *)
  checkb "different seeds give different traces" true
    (Trace.Export.text e1 <> Trace.Export.text e2)

(* {1 Nil sink: tracing is pure observation} *)

let test_nil_sink_identical_results () =
  List.iter
    (fun variant ->
      let traced, events = record_run ~variant Apps.Uni.dma in
      let plain = Apps.Uni.dma.Apps.Common.run variant ~failure:Failure.paper_timer ~seed:1 in
      checkb "events were recorded" true (List.length events > 0);
      checkb
        (Printf.sprintf "run summary identical with and without sink (%s)"
           (Apps.Common.variant_name variant))
        true (traced = plain))
    Apps.Common.all_variants

(* {1 Skip decisions only under Single/Timely semantics} *)

let skip_always_violations events =
  List.fold_left
    (fun acc (e : Trace.Event.t) ->
      match e.payload with
      | Trace.Event.Io { sem = Trace.Event.Always; decision = Trace.Event.Skip; site; _ } ->
          site :: acc
      | _ -> acc)
    [] events

let prop_skip_never_always =
  QCheck.Test.make ~name:"skip decisions never occur at Always sites" ~count:40
    QCheck.(pair (int_bound 500) (int_bound 3))
    (fun (seed, which) ->
      let spec =
        match which with
        | 0 -> Apps.Uni.dma
        | 1 -> Apps.Uni.temp
        | 2 -> Apps.Uni.lea
        | _ -> Apps.Fir.spec
      in
      let _, events = record_run ~seed:(seed + 1) spec in
      skip_always_violations events = [])

let test_weather_skip_never_always () =
  List.iter
    (fun variant ->
      let _, events = record_run ~variant Apps.Weather.spec in
      checki
        (Printf.sprintf "no Always-site skips (%s)" (Apps.Common.variant_name variant))
        0
        (List.length (skip_always_violations events)))
    Apps.Common.all_variants

(* {1 Reconciliation with Metrics and Golden} *)

let reconcile_one (one : Expkit.Run.one) events =
  Trace.Profile.reconcile (Trace.Profile.of_events events) ~app_us:one.Expkit.Run.app_us
    ~ovh_us:one.Expkit.Run.ovh_us ~wasted_us:one.Expkit.Run.wasted_us
    ~commits:one.Expkit.Run.commits ~attempts:one.Expkit.Run.attempts ~io:one.Expkit.Run.io

let test_profile_reconciles () =
  List.iter
    (fun (spec : Apps.Common.spec) ->
      List.iter
        (fun variant ->
          List.iter
            (fun seed ->
              let one, events = record_run ~variant ~seed spec in
              match reconcile_one one events with
              | Ok () -> ()
              | Error msg ->
                  Alcotest.failf "%s/%s seed %d: %s" spec.Apps.Common.app_name
                    (Apps.Common.variant_name variant) seed msg)
            [ 1; 7 ])
        Apps.Common.all_variants)
    [ Apps.Uni.dma; Apps.Uni.temp; Apps.Weather.spec ]

let test_redundant_io_matches_golden () =
  List.iter
    (fun variant ->
      let one, events = record_run ~variant Apps.Weather.spec in
      let golden =
        Apps.Weather.spec.Apps.Common.run variant ~failure:Failure.No_failures ~seed:0
      in
      let profile = Trace.Profile.of_events events in
      checki
        (Printf.sprintf "trace redundant == golden redundant (%s)"
           (Apps.Common.variant_name variant))
        (Expkit.Run.redundant_vs_golden ~golden one)
        (Trace.Profile.redundant profile ~golden:golden.Expkit.Run.io))
    Apps.Common.all_variants

let test_power_failures_counted () =
  let one, events = record_run Apps.Weather.spec in
  let profile = Trace.Profile.of_events events in
  checki "trace power failures == engine count" one.Expkit.Run.pf profile.Trace.Profile.power_failures;
  checki "boots = failures + 1" (one.Expkit.Run.pf + 1) profile.Trace.Profile.boots

(* {1 Chrome export shape} *)

let test_chrome_shape () =
  let one, events = record_run Apps.Weather.spec in
  match Trace.Export.chrome events with
  | Trace.Json.Obj fields ->
      checkb "has displayTimeUnit" true (List.mem_assoc "displayTimeUnit" fields);
      let evs =
        match List.assoc "traceEvents" fields with
        | Trace.Json.List l -> l
        | _ -> Alcotest.fail "traceEvents is not a list"
      in
      let phases =
        List.filter_map
          (function
            | Trace.Json.Obj f -> (
                match List.assoc_opt "ph" f with Some (Trace.Json.String p) -> Some p | _ -> None)
            | _ -> None)
          evs
      in
      let count p = List.length (List.filter (String.equal p) phases) in
      (* every committed or aborted attempt becomes one duration event on
         the task track (the power track also draws "X" off-intervals) *)
      let task_durations =
        List.filter
          (function
            | Trace.Json.Obj f ->
                List.assoc_opt "ph" f = Some (Trace.Json.String "X")
                && List.assoc_opt "cat" f = Some (Trace.Json.String "task")
            | _ -> false)
          evs
      in
      checki "duration events == attempts" one.Expkit.Run.attempts (List.length task_durations);
      checki "instant events include every power failure" one.Expkit.Run.pf
        (List.length
           (List.filter
              (function
                | Trace.Json.Obj f ->
                    List.assoc_opt "ph" f = Some (Trace.Json.String "i")
                    && List.assoc_opt "name" f = Some (Trace.Json.String "power_failure")
                | _ -> false)
              evs));
      checkb "has counter samples" true (count "C" > 0);
      checkb "has thread metadata" true (count "M" >= 4)
  | _ -> Alcotest.fail "chrome export is not an object"

let test_text_one_line_per_event () =
  let _, events = record_run Apps.Uni.temp in
  let text = Trace.Export.text events in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  checki "one line per event" (List.length events) (List.length lines)

(* {1 Atomic JSON writes} *)

let test_to_file_atomic () =
  let path = Filename.temp_file "trace_test" ".json" in
  let v = Trace.Json.Obj [ ("a", Trace.Json.Int 1); ("b", Trace.Json.String "x") ] in
  Trace.Json.to_file path v;
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  checks "file holds the serialized document" (Trace.Json.to_string v) contents;
  checkb "no .tmp file left behind" false (Sys.file_exists (path ^ ".tmp"));
  Sys.remove path

let () =
  Alcotest.run "trace"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same bytes" `Quick test_same_seed_same_bytes;
          Alcotest.test_case "different seeds differ" `Quick test_different_seeds_differ;
        ] );
      ( "pure-observation",
        [ Alcotest.test_case "nil sink, identical results" `Quick test_nil_sink_identical_results ]
      );
      ( "semantics",
        [
          QCheck_alcotest.to_alcotest prop_skip_never_always;
          Alcotest.test_case "weather: no Always skips" `Quick test_weather_skip_never_always;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "profile == metrics" `Quick test_profile_reconciles;
          Alcotest.test_case "redundant io == golden probe" `Quick
            test_redundant_io_matches_golden;
          Alcotest.test_case "power failures counted" `Quick test_power_failures_counted;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace shape" `Quick test_chrome_shape;
          Alcotest.test_case "text one line per event" `Quick test_text_one_line_per_event;
          Alcotest.test_case "atomic to_file" `Quick test_to_file_atomic;
        ] );
    ]
