(* Differential tests for the bytecode VM: on every program we can get
   our hands on — the evaluation-application catalog, the shipped
   example and fuzz-corpus `.eio` files, and qcheck-generated programs —
   the VM must be observationally identical to the tree-walking
   interpreter: same run summary (completion, correctness, times,
   energy, I/O counts), same charge count, same event counters, same
   final NV state, under every runtime and failure schedule, including
   an exhaustive-in-spirit [Nth_charge] boundary sweep. The arena-reuse
   contract ([Vm.reset]) is exercised by running many configurations
   through one compiled image. *)

open Platform

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* {1 Direct program-level comparison} *)

(* Everything observable about a finished run, in one comparable
   value. Error runs are folded in as [Error message] so crashing
   programs (fuzz corpus) must crash identically. *)
type observation = {
  result : (Expkit.Run.one, string) result;
  charges : int;
  events : (string * int) list;
  globals : (string * int array) list;
}

let observe_tree prog policy ~failure ~seed =
  let m = Machine.create ~seed ~failure () in
  let t = Lang.Interp.build ~policy ~extra_io:[ Apps.Common.lea_fir_seg ] m prog in
  let result =
    match Lang.Interp.run t with
    | o -> Ok (Expkit.Run.of_outcome m o)
    | exception Lang.Ast.Error msg -> Error msg
  in
  {
    result;
    charges = Machine.charges m;
    events = Machine.events m;
    globals =
      (* the executed program: under EaseIO the transform inserts
         runtime globals, which must match too *)
      List.map
        (fun d ->
          ( d.Lang.Ast.v_name,
            Lang.Interp.read_global_block t d.Lang.Ast.v_name ~words:d.Lang.Ast.v_words ))
        (Lang.Interp.program t).Lang.Ast.p_globals;
  }

let observe_vm vm ~failure ~seed =
  Vm.reset ~seed ~failure vm;
  let m = Vm.machine vm in
  let result =
    match Vm.run vm with
    | o -> Ok (Expkit.Run.of_outcome m o)
    | exception Lang.Ast.Error msg -> Error msg
  in
  let prog = Vm.program vm in
  {
    result;
    charges = Machine.charges m;
    events = Machine.events m;
    globals =
      List.map
        (fun d ->
          (d.Lang.Ast.v_name, Vm.read_global_block vm d.Lang.Ast.v_name ~words:d.Lang.Ast.v_words))
        prog.Lang.Ast.p_globals;
  }

let policies = [ Lang.Interp.Plain; Lang.Interp.Alpaca; Lang.Interp.Ink; Lang.Interp.Easeio ]

let ctx_name policy failure seed =
  Printf.sprintf "%s/%s/seed%d" (Lang.Interp.policy_name policy) (Failure.to_string failure) seed

(* Compare one program across policies × failures × seeds, compiling
   the VM image once per policy and recycling it via [Vm.reset] — the
   arena path the experiment harness uses. *)
let assert_program_matches ?(failures = [ Failure.No_failures; Failure.paper_timer ])
    ?(seeds = [ 1; 2 ]) ~name src =
  let prog = Lang.Parser.program src in
  List.iter
    (fun policy ->
      let vm =
        Vm.compile ~policy ~extra_io:[ Apps.Common.lea_fir_seg ]
          (Machine.create ~seed:1 ~failure:Failure.No_failures ())
          prog
      in
      List.iter
        (fun failure ->
          List.iter
            (fun seed ->
              let where = name ^ " " ^ ctx_name policy failure seed in
              let tr = observe_tree prog policy ~failure ~seed in
              let vr = observe_vm vm ~failure ~seed in
              checkb (where ^ ": run summary") true (tr.result = vr.result);
              checki (where ^ ": charges") tr.charges vr.charges;
              checkb (where ^ ": events") true (tr.events = vr.events);
              checkb (where ^ ": NV state") true (tr.globals = vr.globals))
            seeds)
        failures)
    policies

(* {1 Catalog applications through the spec harness} *)

(* The catalog runs go through [Common.run_ir]'s two executor paths —
   the exact code the bench/expkit harness uses, including the
   domain-local arena cache, app setup and result checks. *)
let test_catalog_matches () =
  List.iter
    (fun spec ->
      List.iter
        (fun variant ->
          List.iter
            (fun failure ->
              List.iter
                (fun seed ->
                  let run interp =
                    Apps.Common.default_interp := interp;
                    spec.Apps.Common.run variant ~failure ~seed
                  in
                  let tr = run Apps.Common.Tree_walk in
                  let vr = run Apps.Common.Bytecode in
                  Apps.Common.default_interp := Apps.Common.Bytecode;
                  checkb
                    (Printf.sprintf "%s/%s/%s/seed%d" spec.Apps.Common.app_name
                       (Apps.Common.variant_name variant)
                       (Failure.to_string failure) seed)
                    true (tr = vr))
                [ 1; 2; 3 ])
            [ Failure.No_failures; Failure.paper_timer ])
        Apps.Common.all_variants)
    Apps.Catalog.all

(* {1 Shipped programs} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fixture name = Filename.concat "../examples/programs" name

let test_examples_match () =
  List.iter
    (fun name -> assert_program_matches ~name (read_file (fixture name)))
    [ "greenhouse.eio"; "motion_log.eio" ]

let test_fuzz_corpus_matches () =
  let dir = fixture "fuzz-corpus" in
  let cases =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".eio")
    |> List.sort compare
  in
  checkb "corpus present" true (cases <> []);
  List.iter
    (fun name ->
      assert_program_matches ~seeds:[ 1 ] ~name (read_file (Filename.concat dir name)))
    cases

(* {1 Nth_charge boundary sweep} *)

(* Power failures at strided charge boundaries of the Temp application:
   the finest-grained failure placement the simulator supports, so VM
   and tree must agree wherever the failure strikes. *)
let test_nth_charge_sweep () =
  let spec = Apps.Catalog.find "Temp" in
  let probe_charges = ref 0 in
  Apps.Common.default_interp := Apps.Common.Bytecode;
  ignore
    (spec.Apps.Common.run Apps.Common.Easeio ~failure:Failure.No_failures ~seed:1
       ~probe:(fun m -> probe_charges := Machine.charges m));
  let total = !probe_charges in
  checkb "clean run charges known" true (total > 0);
  let stride = max 1 (total / 25) in
  let n = ref 1 in
  while !n <= total do
    let failure = Failure.Nth_charge !n in
    let run interp =
      Apps.Common.default_interp := interp;
      spec.Apps.Common.run Apps.Common.Easeio ~failure ~seed:1
    in
    let tr = run Apps.Common.Tree_walk in
    let vr = run Apps.Common.Bytecode in
    Apps.Common.default_interp := Apps.Common.Bytecode;
    checkb (Printf.sprintf "nth:%d" !n) true (tr = vr);
    n := !n + stride
  done

(* {1 Generated programs (qcheck)} *)

(* The conformance judge's check 4 shadows every run on the VM; a
   clean verdict on generated programs means zero vm-diverge
   violations across all variants and every strided boundary
   schedule. *)
let qcheck_config = { Conformance.Judge.default_config with budget = 8 }

let prop_generated_programs =
  QCheck.Test.make ~count:25 ~name:"vm matches tree on generated programs"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let case = Conformance.Gen.generate ~seed in
      let out = Conformance.Judge.judge ~config:qcheck_config case in
      List.for_all
        (fun v -> v.Conformance.Judge.vkind <> "vm-diverge")
        out.Conformance.Judge.violations)

let () =
  Alcotest.run "vm"
    [
      ( "differential",
        [
          Alcotest.test_case "catalog apps x runtimes x failures x seeds" `Quick
            test_catalog_matches;
          Alcotest.test_case "shipped example programs" `Quick test_examples_match;
          Alcotest.test_case "fuzz corpus programs" `Quick test_fuzz_corpus_matches;
          Alcotest.test_case "Nth_charge boundary sweep" `Quick test_nth_charge_sweep;
          QCheck_alcotest.to_alcotest prop_generated_programs;
        ] );
    ]
