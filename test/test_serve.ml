(* Tests for the campaign service: differential byte-identity against
   the one-shot library paths (cold cache, warm cache, any --jobs,
   any arrival order), the single-flight cache's exactly-once
   guarantee under concurrent identical requests, and a qcheck-driven
   concurrency stress with mid-flight cancellations.

   All servers here are in-process on a fresh loopback port ([Tcp 0]);
   the spawned-binary lifecycle (SIGTERM, wire framing against a real
   process) lives in test/smoke and test/cli. *)

module Json = Trace.Json

(* A deadlock anywhere below would otherwise hang CI forever: the
   watchdog turns a hang into a loud nonzero exit. It sleeps in a
   daemon-style thread, so a normal exit is unaffected. *)
let () =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay 240.;
         prerr_endline "test_serve: watchdog expired — deadlock";
         exit 2)
       ())

let with_server ?(jobs = 2) ?(cache_cap = 256) f =
  let t =
    Serve.Server.start
      {
        (Serve.Server.default_config (Serve.Server.Tcp 0)) with
        Serve.Server.jobs;
        cache_cap;
      }
  in
  Fun.protect ~finally:(fun () -> Serve.Server.stop t) (fun () -> f t (Serve.Server.Tcp (Serve.Server.port t)))

let with_client addr f =
  let c = Serve.Client.connect_retry addr in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let rpc_ok c ~id payload =
  match Serve.Client.rpc c ~id payload with
  | Ok o -> o
  | Error (`Error (code, msg)) -> Alcotest.failf "request #%d failed: %s: %s" id code msg
  | Error `Cancelled -> Alcotest.failf "request #%d unexpectedly cancelled" id
  | Error (`Transport msg) -> Alcotest.failf "request #%d transport error: %s" id msg

(* {1 Differential: server response == one-shot library bytes} *)

let sweep8 = Faultkit.Campaign.Boundaries { stride = 8 }

let oneshot_faults ?runtime ~seed spec =
  let variants =
    match runtime with None -> Apps.Common.all_variants | Some v -> [ v ]
  in
  Json.to_string
    (Faultkit.Campaign.to_json
       (Faultkit.Campaign.run ~jobs:1 ~resume:true ~seed ~sweep:sweep8 ~variants spec))

let test_faults_differential () =
  (* catalog apps x single/all runtimes, cold then warm, each compared
     byte for byte against [Campaign.run] *)
  with_server ~jobs:2 (fun t addr ->
      with_client addr (fun c ->
          List.iteri
            (fun i (spec, runtime) ->
              let app = spec.Apps.Common.app_name in
              let expected = oneshot_faults ?runtime ~seed:1 spec in
              let payload ~id =
                Serve.Protocol.faults_request ~id ?runtime ~sweep:sweep8 ~seed:1 ~app ()
              in
              let cold = rpc_ok c ~id:((i * 2) + 1) (payload ~id:((i * 2) + 1)) in
              Alcotest.(check string) (app ^ " cold == one-shot") expected cold.Serve.Client.doc;
              Alcotest.(check bool) (app ^ " cold not cached") false cold.Serve.Client.result_cached;
              Alcotest.(check bool)
                (app ^ " progress heartbeats streamed")
                true
                (cold.Serve.Client.heartbeats >= 1);
              let warm = rpc_ok c ~id:((i * 2) + 2) (payload ~id:((i * 2) + 2)) in
              Alcotest.(check string) (app ^ " warm == one-shot") expected warm.Serve.Client.doc;
              Alcotest.(check bool) (app ^ " warm fully cached") true warm.Serve.Client.result_cached)
            [ (Apps.Uni.temp, Some Apps.Common.Easeio); (Apps.Uni.lea, None) ];
          (* all-variants request streamed one cell frame per variant *)
          ()) ;
      let stats = Serve.Server.cache_stats t in
      Alcotest.(check int) "no poisoned computes" 0 stats.Serve.Cache.failures)

let test_faults_cell_frames () =
  with_server ~jobs:2 (fun _ addr ->
      with_client addr (fun c ->
          let payload =
            Serve.Protocol.faults_request ~id:1 ~sweep:sweep8 ~seed:1 ~app:"temp" ()
          in
          let o = rpc_ok c ~id:1 payload in
          Alcotest.(check int) "one cell frame per variant" 4 o.Serve.Client.cells;
          Alcotest.(check int) "cold: no cached cells" 0 o.Serve.Client.cached_cells))

let test_jobs_invariance () =
  (* the same campaign through a 1-worker and a 4-worker fleet *)
  let spec = Apps.Uni.temp in
  let expected = oneshot_faults ~seed:3 spec in
  let docs =
    List.map
      (fun jobs ->
        with_server ~jobs (fun _ addr ->
            with_client addr (fun c ->
                (rpc_ok c ~id:1
                   (Serve.Protocol.faults_request ~id:1 ~sweep:sweep8 ~seed:3
                      ~app:spec.Apps.Common.app_name ()))
                  .Serve.Client.doc)))
      [ 1; 4 ]
  in
  List.iteri
    (fun i doc ->
      Alcotest.(check string) (Printf.sprintf "jobs variant %d == one-shot" i) expected doc)
    docs

let trivial_src = "program t;\nnv int x;\ntask a { x = x + 1; stop; }\n"

let test_run_differential () =
  let expected =
    Json.to_string
      (Serve.Oneshot.run_doc ~policy:Lang.Interp.Easeio ~failure:Platform.Failure.No_failures
         ~seed:7 trivial_src)
  in
  with_server ~jobs:1 (fun _ addr ->
      with_client addr (fun c ->
          let payload = Serve.Protocol.run_request ~id:1 ~seed:7 ~src:trivial_src () in
          let cold = rpc_ok c ~id:1 payload in
          Alcotest.(check string) "run cold == one-shot doc" expected cold.Serve.Client.doc;
          let warm = rpc_ok c ~id:2 (Serve.Protocol.run_request ~id:2 ~seed:7 ~src:trivial_src ()) in
          Alcotest.(check string) "run warm == one-shot doc" expected warm.Serve.Client.doc;
          Alcotest.(check bool) "warm cached" true warm.Serve.Client.result_cached))

let test_fuzz_differential () =
  let options = { Conformance.Fuzz.default_options with Conformance.Fuzz.count = 4; budget = 6 } in
  (* the server forces jobs:=1 on parse; report bytes are
     jobs-invariant anyway (options JSON omits jobs) *)
  let expected =
    Json.to_string
      (Conformance.Fuzz.to_json
         (Conformance.Fuzz.run { options with Conformance.Fuzz.jobs = 1 }))
  in
  with_server ~jobs:2 (fun _ addr ->
      with_client addr (fun c ->
          let o = rpc_ok c ~id:1 (Serve.Protocol.fuzz_request ~id:1 ~options ()) in
          Alcotest.(check string) "fuzz == one-shot report" expected o.Serve.Client.doc))

let test_explore_differential () =
  let spec = Apps.Uni.temp in
  let expected =
    Json.to_string
      (Explore.to_json
         (Explore.explore ~depth:1 ~prune:true ~ablate_regions:false ~ablate_semantics:false spec
            Apps.Common.Easeio ~seed:1))
  in
  with_server ~jobs:2 (fun _ addr ->
      with_client addr (fun c ->
          let o =
            rpc_ok c ~id:1
              (Serve.Protocol.explore_request ~id:1 ~runtime:Apps.Common.Easeio
                 ~app:spec.Apps.Common.app_name ())
          in
          Alcotest.(check string) "explore == one-shot report" expected o.Serve.Client.doc))

let test_arrival_order_insensitive () =
  (* two distinct campaigns pipelined on one connection: whichever
     finishes first, each id's document equals its own one-shot *)
  let e1 = oneshot_faults ~runtime:Apps.Common.Easeio ~seed:1 Apps.Uni.temp in
  let e2 = oneshot_faults ~runtime:Apps.Common.Alpaca ~seed:1 Apps.Uni.temp in
  with_server ~jobs:4 (fun _ addr ->
      with_client addr (fun c ->
          Serve.Client.send c
            (Serve.Protocol.faults_request ~id:1 ~runtime:Apps.Common.Easeio ~sweep:sweep8
               ~seed:1 ~app:"temp" ());
          Serve.Client.send c
            (Serve.Protocol.faults_request ~id:2 ~runtime:Apps.Common.Alpaca ~sweep:sweep8
               ~seed:1 ~app:"temp" ());
          let docs = Hashtbl.create 2 in
          let rec drain () =
            if Hashtbl.length docs < 2 then
              match Serve.Client.next c with
              | Ok (Serve.Client.Result { id; doc; _ }) ->
                  Hashtbl.replace docs id doc;
                  drain ()
              | Ok _ -> drain ()
              | Error msg -> Alcotest.failf "transport error: %s" msg
          in
          drain ();
          Alcotest.(check string) "id 1 == its one-shot" e1 (Hashtbl.find docs 1);
          Alcotest.(check string) "id 2 == its one-shot" e2 (Hashtbl.find docs 2)))

(* {1 Exactly-once: concurrent identical requests, one compute} *)

let test_single_flight_exactly_once () =
  with_server ~jobs:4 (fun t addr ->
      let expected = oneshot_faults ~runtime:Apps.Common.Easeio ~seed:5 Apps.Uni.temp in
      let docs = Array.make 8 "" in
      let clients =
        Array.init 8 (fun i ->
            Thread.create
              (fun () ->
                with_client addr (fun c ->
                    let o =
                      rpc_ok c ~id:1
                        (Serve.Protocol.faults_request ~id:1 ~runtime:Apps.Common.Easeio
                           ~sweep:sweep8 ~seed:5 ~app:"temp" ())
                    in
                    docs.(i) <- o.Serve.Client.doc))
              ())
      in
      Array.iter Thread.join clients;
      Array.iteri
        (fun i doc ->
          Alcotest.(check string) (Printf.sprintf "client %d byte-identical" i) expected doc)
        docs;
      let stats = Serve.Server.cache_stats t in
      Alcotest.(check int) "cell computed exactly once" 1 stats.Serve.Cache.computes;
      Alcotest.(check int) "nothing abandoned" 0 stats.Serve.Cache.abandoned)

(* {1 Cancellation} *)

let test_cancel_in_flight () =
  with_server ~jobs:1 (fun t addr ->
      with_client addr (fun c ->
          (* all four variants of an exhaustive temp sweep on one
             worker: long enough that the cancel lands mid-flight *)
          Serve.Client.send c
            (Serve.Protocol.faults_request ~id:1
               ~sweep:(Faultkit.Campaign.Boundaries { stride = 1 })
               ~seed:1 ~app:"temp" ());
          Serve.Client.cancel c ~target:1;
          let rec await () =
            match Serve.Client.next c with
            | Ok (Serve.Client.Cancelled { id = 1 }) -> `Cancelled
            | Ok (Serve.Client.Result { id = 1; _ }) -> `Completed
            | Ok _ -> await ()
            | Error msg -> Alcotest.failf "transport error: %s" msg
          in
          (* completing is legal (the cancel can lose the race); the
             server surviving and answering afterwards is the test *)
          (match await () with `Cancelled | `Completed -> ());
          match Serve.Client.ping c with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "server unresponsive after cancel: %s" msg);
      Alcotest.(check int) "no poisoned cells" 0 (Serve.Server.cache_stats t).Serve.Cache.failures)

(* {1 qcheck stress: random interleavings + mid-flight cancellations}

   N clients each issue a random schedule of requests drawn from a
   small spec pool, cancelling a random subset mid-flight. Invariants:
   every request reaches a terminal frame (no deadlock — the watchdog
   guards the whole binary), non-cancelled responses are byte-correct,
   the cache never exceeds one live compute per admission
   (computes <= distinct keys + abandoned claims), and the server
   stops cleanly with no orphaned worker domains (Server.stop joins
   them; a hang would trip the watchdog). *)

let stress_specs =
  [|
    (fun ~id -> Serve.Protocol.run_request ~id ~seed:1 ~src:trivial_src ());
    (fun ~id -> Serve.Protocol.run_request ~id ~seed:2 ~src:trivial_src ());
    (fun ~id ->
      Serve.Protocol.faults_request ~id ~runtime:Apps.Common.Easeio
        ~sweep:(Faultkit.Campaign.Boundaries { stride = 64 })
        ~seed:1 ~app:"temp" ());
    (fun ~id ->
      Serve.Protocol.faults_request ~id ~runtime:Apps.Common.Alpaca
        ~sweep:(Faultkit.Campaign.Boundaries { stride = 64 })
        ~seed:1 ~app:"temp" ());
  |]

let distinct_stress_keys = Array.length stress_specs

let prop_stress =
  QCheck.Test.make ~count:8 ~name:"serve survives random interleavings and cancellations"
    QCheck.(
      pair (int_range 1 3)
        (small_list (pair (int_bound (Array.length stress_specs - 1)) bool)))
    (fun (nclients, schedule) ->
      let schedule = if schedule = [] then [ (0, false) ] else schedule in
      let ok = Atomic.make true in
      let fail msg =
        Printf.eprintf "stress: %s\n%!" msg;
        Atomic.set ok false
      in
      with_server ~jobs:2 (fun t addr ->
          let client () =
            with_client addr (fun c ->
                List.iteri
                  (fun i (spec_idx, do_cancel) ->
                    let id = i + 1 in
                    Serve.Client.send c (stress_specs.(spec_idx) ~id);
                    if do_cancel then Serve.Client.cancel c ~target:id;
                    let rec await () =
                      match Serve.Client.next c with
                      | Ok (Serve.Client.Result { id = rid; _ }) when rid = id -> ()
                      | Ok (Serve.Client.Cancelled { id = rid }) when rid = id ->
                          if not do_cancel then fail "cancelled without a cancel"
                      | Ok (Serve.Client.Error_frame { id = rid; code; msg }) when rid = id ->
                          (* only the lost-race cancel error is legal *)
                          if not (do_cancel && code = "bad-request") then
                            fail (Printf.sprintf "error %s: %s" code msg)
                      | Ok _ -> await ()
                      | Error msg -> fail ("transport: " ^ msg)
                    in
                    await ())
                  schedule)
          in
          let threads = Array.init nclients (fun _ -> Thread.create client ()) in
          Array.iter Thread.join threads;
          let stats = Serve.Server.cache_stats t in
          if stats.Serve.Cache.computes > distinct_stress_keys + stats.Serve.Cache.abandoned then
            fail
              (Printf.sprintf "computes %d > %d keys + %d abandoned" stats.Serve.Cache.computes
                 distinct_stress_keys stats.Serve.Cache.abandoned);
          if stats.Serve.Cache.failures > 0 then fail "poisoned compute");
      Atomic.get ok)

(* {1 Cache eviction under a tiny capacity}

   A 1-entry LRU forced to evict on every alternation must still
   return byte-identical documents — eviction can only cost
   recomputation, never correctness. *)

let test_eviction_correctness () =
  with_server ~jobs:1 ~cache_cap:1 (fun t addr ->
      with_client addr (fun c ->
          let expect_a =
            Json.to_string
              (Serve.Oneshot.run_doc ~policy:Lang.Interp.Easeio
                 ~failure:Platform.Failure.No_failures ~seed:1 trivial_src)
          in
          let expect_b =
            Json.to_string
              (Serve.Oneshot.run_doc ~policy:Lang.Interp.Easeio
                 ~failure:Platform.Failure.No_failures ~seed:2 trivial_src)
          in
          for round = 0 to 2 do
            let ida = (round * 2) + 1 and idb = (round * 2) + 2 in
            let a = rpc_ok c ~id:ida (Serve.Protocol.run_request ~id:ida ~seed:1 ~src:trivial_src ()) in
            let b = rpc_ok c ~id:idb (Serve.Protocol.run_request ~id:idb ~seed:2 ~src:trivial_src ()) in
            Alcotest.(check string) "A byte-identical across evictions" expect_a a.Serve.Client.doc;
            Alcotest.(check string) "B byte-identical across evictions" expect_b b.Serve.Client.doc
          done;
          let stats = Serve.Server.cache_stats t in
          Alcotest.(check bool) "evictions happened" true (stats.Serve.Cache.evictions > 0);
          Alcotest.(check int) "capacity respected" 1 stats.Serve.Cache.entries))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "serve"
    [
      ( "differential",
        [
          tc "faults: cold/warm == one-shot" `Quick test_faults_differential;
          tc "faults: cell frame per variant" `Quick test_faults_cell_frames;
          tc "faults: jobs=1 == jobs=4 == one-shot" `Quick test_jobs_invariance;
          tc "run: cold/warm == one-shot" `Quick test_run_differential;
          tc "fuzz: == one-shot report" `Quick test_fuzz_differential;
          tc "explore: == one-shot report" `Quick test_explore_differential;
          tc "pipelined ids, any arrival order" `Quick test_arrival_order_insensitive;
        ] );
      ( "cache",
        [
          tc "single-flight: 8 clients, 1 compute" `Quick test_single_flight_exactly_once;
          tc "eviction never changes bytes" `Quick test_eviction_correctness;
        ] );
      ( "stress",
        [
          tc "cancel mid-flight, server survives" `Quick test_cancel_in_flight;
          QCheck_alcotest.to_alcotest prop_stress;
        ] );
    ]
