(* Tests for the observability layer: the registry's bucket scheme,
   sheet freezing, the snapshot merge algebra (exact, associative —
   the determinism contract campaigns rely on), zero-cost-when-off
   metering, campaign attribution reconciliation and jobs-invariance,
   and the tolerance-aware report diff behind the CI perf gate. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* {1 Registry} *)

let test_registry_buckets () =
  checki "one bucket per edge plus overflow"
    (Array.length Obs.Registry.edges + 1)
    Obs.Registry.buckets;
  checki "zero lands in the first bucket" 0 (Obs.Registry.bucket 0);
  checki "huge values land in the overflow bucket" (Obs.Registry.buckets - 1)
    (Obs.Registry.bucket max_int);
  (* Bucketing is monotone, so histogram rows read left-to-right. *)
  let samples = [ 0; 1; 9; 10; 99; 100; 5_000; 99_999; 1_000_000; 12_345_678 ] in
  ignore
    (List.fold_left
       (fun prev v ->
         let b = Obs.Registry.bucket v in
         checkb "bucket index is monotone" true (b >= prev);
         b)
       0 samples)

let test_registry_interning_idempotent () =
  let a = Obs.Registry.counter "test/intern_me" in
  checki "same id on re-intern" a (Obs.Registry.counter "test/intern_me");
  checks "name resolves back" "test/intern_me" (Obs.Registry.counter_name a);
  let h = Obs.Registry.hist "test/intern_me" in
  checki "hist id space is separate but stable" h (Obs.Registry.hist "test/intern_me")

(* {1 Sheet freezing} *)

let test_sheet_freeze () =
  let sheet = Obs.Sheet.create () in
  let a = Obs.Registry.counter "test/alpha" in
  let h = Obs.Registry.hist "test/lat_us" in
  Obs.Sheet.bump sheet a;
  Obs.Sheet.add sheet a 41;
  Obs.Sheet.observe sheet h 5;
  Obs.Sheet.observe sheet h 50_000;
  let snap = Obs.Snapshot.of_sheet ~events:[ ("radio_send", 3) ] sheet in
  checki "counter accumulated" 42 (Obs.Snapshot.counter snap "test/alpha");
  checki "machine events folded under event/" 3 (Obs.Snapshot.counter snap "event/radio_send");
  (match List.assoc_opt "test/lat_us" snap.Obs.Snapshot.hists with
  | None -> Alcotest.fail "histogram row missing from snapshot"
  | Some row ->
      checki "histogram row has the global width" Obs.Registry.buckets (Array.length row);
      checki "both observations counted" 2 (Array.fold_left ( + ) 0 row));
  let names = List.map fst snap.Obs.Snapshot.counters in
  checkb "counters are name-sorted" true (List.sort compare names = names);
  Obs.Sheet.reset sheet;
  checkb "reset zeroes every row" true
    (Obs.Snapshot.equal Obs.Snapshot.zero (Obs.Snapshot.of_sheet sheet))

(* {1 Snapshot algebra} *)

let snap_gen =
  QCheck.Gen.(
    let name = oneofl [ "m/a"; "m/b"; "m/c"; "m/d" ] in
    let counters = list_size (int_bound 6) (pair name (int_bound 100)) in
    let hists = list_size (int_bound 3) (pair name (array_repeat Obs.Registry.buckets (int_bound 50))) in
    map (fun (c, h) -> Obs.Snapshot.make ~counters:c ~hists:h) (pair counters hists))

let snap_arb =
  QCheck.make ~print:(fun s -> Trace.Json.to_string (Obs.Snapshot.to_json s)) snap_gen

let prop_merge_algebra =
  QCheck.Test.make ~count:200
    ~name:"Snapshot.merge is associative and commutative with zero as identity"
    QCheck.(triple snap_arb snap_arb snap_arb)
    (fun (a, b, c) ->
      let open Obs.Snapshot in
      equal (merge (merge a b) c) (merge a (merge b c))
      && equal (merge a b) (merge b a)
      && equal (merge zero a) a
      && equal (merge a zero) a)

let prop_merge_canonical_json =
  QCheck.Test.make ~count:200
    ~name:"equal merge orders print byte-identical JSON (the --jobs contract)"
    QCheck.(triple snap_arb snap_arb snap_arb)
    (fun (a, b, c) ->
      let open Obs.Snapshot in
      Trace.Json.to_string (to_json (merge (merge a b) c))
      = Trace.Json.to_string (to_json (merge a (merge b c))))

let prop_snapshot_json_round_trip =
  QCheck.Test.make ~count:200 ~name:"snapshot JSON emit/parse round-trips" snap_arb (fun s ->
      let text = Trace.Json.to_string (Obs.Snapshot.to_json s) in
      match Trace.Json.of_string text with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok doc -> (
          match Obs.Snapshot.of_json doc with
          | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e
          | Ok s' -> Obs.Snapshot.equal s s'))

(* {1 Zero-cost-when-off: metering is pure observation} *)

let test_meter_does_not_perturb_results () =
  let spec = Apps.Catalog.find "Temp." in
  let failure = Platform.Failure.Nth_charge 2 in
  let bare = spec.Apps.Common.run Apps.Common.Easeio ~failure ~seed:7 in
  let sheet = Obs.Sheet.create () in
  let metered = spec.Apps.Common.run ~meter:sheet Apps.Common.Easeio ~failure ~seed:7 in
  checkb "metered run result identical to unmetered" true (bare = metered);
  checkb "sheet recorded engine activity" true
    (Obs.Sheet.counter sheet (Obs.Registry.counter "engine/commits") > 0)

(* {1 Campaign attribution} *)

let folded_weight_sum text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "")
  |> List.fold_left
       (fun acc line ->
         match String.rindex_opt line ' ' with
         | None -> acc
         | Some i -> acc + int_of_string (String.sub line (i + 1) (String.length line - i - 1)))
       0

let test_campaign_profile_reconciles () =
  let spec = Apps.Catalog.find "Temp." in
  let report =
    Faultkit.Campaign.run ~jobs:2
      ~sweep:(Faultkit.Campaign.Random { cases = 8 })
      ~variants:[ Apps.Common.Easeio ] spec
  in
  (match Faultkit.Campaign.reconcile report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "profile does not reconcile with metrics: %s" e);
  let t = Faultkit.Campaign.totals report in
  checki "flamegraph weights sum exactly to the metric totals"
    Faultkit.Campaign.(t.app_us + t.ovh_us + t.wasted_us)
    (folded_weight_sum (Faultkit.Campaign.flamegraph report));
  let p = Faultkit.Campaign.profile report in
  checki "profile counts every sweep case" 8 p.Obs.Attr.runs;
  checkb "engine commits made it into the merged snapshot" true
    (Obs.Snapshot.counter (Faultkit.Campaign.snapshot report) "engine/commits" > 0)

let test_campaign_obs_jobs_invariant () =
  let spec = Apps.Catalog.find "Temp." in
  let sweep = Faultkit.Campaign.Random { cases = 10 } in
  let run jobs = Faultkit.Campaign.run ~jobs ~sweep ~variants:[ Apps.Common.Easeio ] spec in
  let r1 = run 1 and r8 = run 8 in
  checks "merged snapshot JSON byte-identical for --jobs 1 and 8"
    (Trace.Json.to_string (Obs.Snapshot.to_json (Faultkit.Campaign.snapshot r1)))
    (Trace.Json.to_string (Obs.Snapshot.to_json (Faultkit.Campaign.snapshot r8)));
  checks "flamegraph byte-identical" (Faultkit.Campaign.flamegraph r1)
    (Faultkit.Campaign.flamegraph r8);
  checks "perfetto export byte-identical"
    (Trace.Json.to_string (Faultkit.Campaign.perfetto r1))
    (Trace.Json.to_string (Faultkit.Campaign.perfetto r8))

(* {1 Fuzz campaign metrics} *)

let test_fuzz_snapshot_jobs_invariant () =
  let options = { Conformance.Fuzz.default_options with count = 6; seed = 5; check_vm = false } in
  let r1 = Conformance.Fuzz.run { options with jobs = 1 } in
  let r4 = Conformance.Fuzz.run { options with jobs = 4 } in
  checkb "fuzz snapshot equal across jobs" true (Obs.Snapshot.equal r1.snap r4.snap);
  checki "fuzz/cases counts every case" 6 (Obs.Snapshot.counter r1.snap "fuzz/cases")

(* {1 Report diff} *)

let base_doc =
  Trace.Json.Obj
    [
      ("meta", Trace.Json.Obj [ ("git_sha", Trace.Json.String "abc"); ("jobs", Trace.Json.Int 2) ]);
      ("app_ms", Trace.Json.Float 10.0);
      ("vm_runs_per_s", Trace.Json.Float 1000.0);
      ("total_wall_s", Trace.Json.Float 5.0);
    ]

let with_field name v =
  match base_doc with
  | Trace.Json.Obj fields ->
      Trace.Json.Obj (List.map (fun (k, old) -> (k, if k = name then v else old)) fields)
  | _ -> assert false

let diff cur = Obs.Report.diff ~base:base_doc ~cur ()

let level_of path findings =
  match List.find_opt (fun f -> f.Obs.Report.path = path) findings with
  | Some f -> Some f.Obs.Report.level
  | None -> None

let test_report_informational_rows_never_regress () =
  let findings = diff (with_field "meta" (Trace.Json.Obj [ ("git_sha", Trace.Json.String "def"); ("jobs", Trace.Json.Int 8) ])) in
  checkb "meta rows are notes" true
    (List.for_all (fun f -> f.Obs.Report.level = Obs.Report.Note) findings);
  let findings = diff (with_field "total_wall_s" (Trace.Json.Float 500.0)) in
  checkb "wall-clock rows are notes even when 100x worse" true
    (List.for_all (fun f -> f.Obs.Report.level = Obs.Report.Note) findings)

let test_report_simulated_metric_tolerance () =
  (* Threshold for base 10.0: 10 + 0.75*10 + 1 = 18.5. *)
  (match level_of "app_ms" (diff (with_field "app_ms" (Trace.Json.Float 15.0))) with
  | Some Obs.Report.Note -> ()
  | other -> Alcotest.failf "within-tolerance drift misclassified: %s" (match other with None -> "no finding" | Some _ -> "Regression"));
  (match level_of "app_ms" (diff (with_field "app_ms" (Trace.Json.Float 30.0))) with
  | Some Obs.Report.Regression -> ()
  | _ -> Alcotest.fail "3x simulated-metric cliff not flagged");
  match level_of "app_ms" (diff (with_field "app_ms" (Trace.Json.Float 2.0))) with
  | Some Obs.Report.Note -> ()
  | None -> ()
  | Some Obs.Report.Regression -> Alcotest.fail "improvements must never regress"

let test_report_throughput_collapse_only () =
  (match level_of "vm_runs_per_s" (diff (with_field "vm_runs_per_s" (Trace.Json.Float 400.0))) with
  | Some Obs.Report.Note -> ()
  | _ -> Alcotest.fail "2.5x throughput dip inside wall_factor should be a note");
  match level_of "vm_runs_per_s" (diff (with_field "vm_runs_per_s" (Trace.Json.Float 100.0))) with
  | Some Obs.Report.Regression -> ()
  | _ -> Alcotest.fail "10x throughput collapse not flagged"

let test_report_regressions_filter () =
  let findings = diff (with_field "app_ms" (Trace.Json.Float 30.0)) in
  let regs = Obs.Report.regressions findings in
  checki "only the regression survives the filter" 1 (List.length regs);
  checks "and it names the row" "app_ms" (List.hd regs).Obs.Report.path;
  checki "identical documents diff empty" 0 (List.length (diff base_doc))

(* {1 Progress} *)

let test_progress_mode_parse () =
  List.iter
    (fun (s, expect) ->
      match Obs.Progress.mode_of_string s with
      | Ok m -> checkb s true (m = expect)
      | Error e -> Alcotest.failf "%S did not parse: %s" s e)
    [
      ("off", Obs.Progress.Off);
      ("none", Obs.Progress.Off);
      ("stderr", Obs.Progress.Stderr);
      ("bar", Obs.Progress.Stderr);
      ("json", Obs.Progress.Jsonl);
      ("jsonl", Obs.Progress.Jsonl);
    ];
  match Obs.Progress.mode_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus mode should not parse"
  | Error _ -> ()

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "obs"
    [
      ( "registry",
        [
          tc "bucket scheme" `Quick test_registry_buckets;
          tc "interning idempotent" `Quick test_registry_interning_idempotent;
        ] );
      ("sheet", [ tc "freeze and reset" `Quick test_sheet_freeze ]);
      ( "snapshot algebra",
        [
          QCheck_alcotest.to_alcotest prop_merge_algebra;
          QCheck_alcotest.to_alcotest prop_merge_canonical_json;
          QCheck_alcotest.to_alcotest prop_snapshot_json_round_trip;
        ] );
      ("metering", [ tc "pure observation" `Quick test_meter_does_not_perturb_results ]);
      ( "campaign attribution",
        [
          tc "profile reconciles with metrics" `Quick test_campaign_profile_reconciles;
          tc "obs outputs jobs-invariant" `Quick test_campaign_obs_jobs_invariant;
        ] );
      ("fuzz metrics", [ tc "snapshot jobs-invariant" `Quick test_fuzz_snapshot_jobs_invariant ]);
      ( "report",
        [
          tc "informational rows" `Quick test_report_informational_rows_never_regress;
          tc "simulated-metric tolerance" `Quick test_report_simulated_metric_tolerance;
          tc "throughput collapse" `Quick test_report_throughput_collapse_only;
          tc "regressions filter" `Quick test_report_regressions_filter;
        ] );
      ("progress", [ tc "mode parsing" `Quick test_progress_mode_parse ]);
    ]
