(* Tests for the experiment toolkit: aggregation and formatting. *)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 0.0001))

let one ?(correct = Some true) ?(io = []) ~total ~pf () =
  {
    Expkit.Run.completed = true;
    correct;
    gave_up = false;
    stuck_task = None;
    total_us = total;
    app_us = total / 2;
    ovh_us = total / 10;
    wasted_us = total / 5;
    energy_nj = float_of_int total *. 0.5;
    pf;
    commits = 1;
    attempts = 1 + pf;
    io;
  }

let test_average_basic () =
  let agg =
    Expkit.Run.average ~runs:4
      ~golden:(fun () -> one ~total:1000 ~pf:0 ())
      (fun ~seed -> one ~total:(1000 * seed) ~pf:seed ())
  in
  checki "runs" 4 agg.Expkit.Run.runs;
  checkf "avg total ms" 2.5 agg.Expkit.Run.avg_total_ms;
  checkf "avg pf" 2.5 agg.Expkit.Run.avg_pf;
  checki "all correct" 0 agg.Expkit.Run.incorrect_runs

let test_average_redundant_io () =
  let agg =
    Expkit.Run.average ~runs:2
      ~golden:(fun () -> one ~io:[ ("io:Temp", 3) ] ~total:10 ~pf:0 ())
      (fun ~seed:_ -> one ~io:[ ("io:Temp", 5); ("io:DMA", 2) ] ~total:10 ~pf:1 ())
  in
  (* 2 extra Temp + 2 novel DMA per run *)
  checkf "redundant" 4.0 agg.Expkit.Run.avg_redundant_io;
  checkf "io total" 7.0 agg.Expkit.Run.avg_io

let test_average_counts_incorrect () =
  let agg =
    Expkit.Run.average ~runs:3
      ~golden:(fun () -> one ~total:10 ~pf:0 ())
      (fun ~seed -> one ~correct:(Some (seed <> 2)) ~total:10 ~pf:0 ())
  in
  checki "one incorrect" 1 agg.Expkit.Run.incorrect_runs;
  checki "two correct" 2 agg.Expkit.Run.correct_runs

let test_average_rejects_zero_runs () =
  match
    Expkit.Run.average ~runs:0 ~golden:(fun () -> one ~total:1 ~pf:0 ()) (fun ~seed:_ ->
        one ~total:1 ~pf:0 ())
  with
  | _ -> Alcotest.fail "expected invalid_arg"
  | exception Invalid_argument _ -> ()

let test_tablefmt () =
  let r = Expkit.Tablefmt.row [ 4; 6 ] [ "ab"; "cdef" ] in
  Alcotest.(check string) "padded" "ab    cdef  " r;
  checkb "rule dashes" true (String.for_all (fun c -> c = '-' || c = ' ') (Expkit.Tablefmt.rule [ 3; 2 ]));
  Alcotest.(check string) "ms" "1.50ms" (Expkit.Tablefmt.ms 1.5);
  Alcotest.(check string) "uj" "2.5uJ" (Expkit.Tablefmt.uj 2.5)

let test_breakdown_end_to_end () =
  (* a tiny synthetic 'application' driven through the breakdown helper *)
  let rows =
    Expkit.Experiments.breakdown ~runs:3
      (fun ~variant ~failure ~seed ->
        ignore failure;
        one ~total:(1000 * (seed + variant)) ~pf:variant ())
      ~label:(fun v -> Printf.sprintf "v%d" v)
      [ 0; 1 ]
  in
  checki "two variants" 2 (List.length rows);
  let r0 = List.hd rows in
  Alcotest.(check string) "label" "v0" r0.Expkit.Experiments.b_label;
  checkf "avg pf" 0.0 r0.Expkit.Experiments.b_pf

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "expkit"
    [
      ( "run",
        [
          tc "average basic" `Quick test_average_basic;
          tc "redundant io" `Quick test_average_redundant_io;
          tc "counts incorrect" `Quick test_average_counts_incorrect;
          tc "rejects zero runs" `Quick test_average_rejects_zero_runs;
        ] );
      ("tablefmt", [ tc "formatting" `Quick test_tablefmt ]);
      ("experiments", [ tc "breakdown end to end" `Quick test_breakdown_end_to_end ]);
    ]
