(* Cram-style CLI contract tests: spawn the real easeio binary and pin
   exit codes and the stable stderr prefixes scripts are allowed to
   depend on. Argv.(0) is the binary path, the rest are fixture .eio
   files (see ./dune). *)

let cli = Sys.argv.(1)
let fixture name = Sys.argv.(2) ^ "/" ^ name

let failures = ref 0
let ran = ref 0

let quote = Filename.quote

(* Run [cli args], returning (exit code, first stderr line). *)
let run args =
  let err = Filename.temp_file "easeio_cli_test" ".stderr" in
  let cmd =
    Printf.sprintf "%s %s >/dev/null 2>%s" (quote cli)
      (String.concat " " (List.map quote args))
      (quote err)
  in
  let code =
    match Sys.command cmd with
    | c -> c
  in
  let ic = open_in err in
  let first_line = try input_line ic with End_of_file -> "" in
  close_in ic;
  Sys.remove err;
  (code, first_line)

let check ~name ~args ~code ?stderr_prefix () =
  incr ran;
  let got_code, got_err = run args in
  let prefix_ok =
    match stderr_prefix with
    | None -> true
    | Some p ->
        String.length got_err >= String.length p && String.sub got_err 0 (String.length p) = p
  in
  if got_code <> code || not prefix_ok then begin
    incr failures;
    Printf.printf "FAIL %s: exit %d (want %d), stderr %S%s\n" name got_code code got_err
      (match stderr_prefix with Some p -> Printf.sprintf " (want prefix %S)" p | None -> "")
  end
  else Printf.printf "ok   %s\n" name

let () =
  (* check *)
  check ~name:"check: clean program exits 0" ~args:[ "check"; fixture "greenhouse.eio" ] ~code:0
    ();
  check ~name:"check: matched --expect exits 0"
    ~args:[ "check"; fixture "lints/w0403_unprivatized_war.eio"; "--expect"; "W0403" ]
    ~code:0 ();
  check ~name:"check: unmatched --expect exits 1"
    ~args:[ "check"; fixture "greenhouse.eio"; "--expect"; "W0403" ]
    ~code:1 ~stderr_prefix:"easeio check: expected exactly W0403" ();
  (* compile *)
  check ~name:"compile: clean program exits 0"
    ~args:[ "compile"; fixture "greenhouse.eio"; "-o"; Filename.temp_file "easeio" ".eio" ]
    ~code:0 ();
  check ~name:"compile: erroneous program exits 1"
    ~args:[ "compile"; fixture "lints/e0301_flag_collision.eio" ]
    ~code:1 ~stderr_prefix:"error[E0301]" ();
  check ~name:"compile: unknown pass exits 1"
    ~args:[ "compile"; fixture "greenhouse.eio"; "--dump-after"; "nosuchpass" ]
    ~code:1 ~stderr_prefix:"easeio compile: unknown pass" ();
  (* faults *)
  check ~name:"faults: safe app sweep exits 0"
    ~args:[ "faults"; "Temp."; "--sweep"; "boundaries:400"; "--jobs"; "2" ]
    ~code:0 ();
  check ~name:"faults: unknown app exits 1" ~args:[ "faults"; "nosuchapp" ] ~code:1
    ~stderr_prefix:"unknown application" ();
  (* fuzz *)
  check ~name:"fuzz: small clean campaign exits 0"
    ~args:[ "fuzz"; "--count"; "5"; "--seed"; "1"; "--jobs"; "2" ]
    ~code:0 ();
  check ~name:"fuzz: replayed reproducer exits 0"
    ~args:[ "fuzz"; "--replay"; fixture "fuzz-corpus/fuzz_2127312984094606724.eio" ]
    ~code:0 ();
  check ~name:"fuzz: ablated replay exits 1"
    ~args:
      [ "fuzz"; "--replay"; fixture "fuzz-corpus/fuzz_2127312984094606724.eio"; "--ablate-regions" ]
    ~code:1 ~stderr_prefix:"easeio fuzz: " ();
  Printf.printf "%d/%d ok\n" (!ran - !failures) !ran;
  if !failures > 0 then exit 1
