(* Wire-protocol contract tests for the campaign service: spawn the
   real `easeio serve` binary and talk to it over a hand-rolled socket
   client — 4-byte big-endian length prefix plus JSON — so the framing
   itself (not the Serve.Client library) is what gets exercised. Pins
   the stable error codes documented in lib/serve/protocol.ml:
   malformed frames, oversized payloads, unknown fields/commands/apps,
   bad ids, cancel of an unknown target, half-closed sockets, and the
   SIGTERM exit status. The server must survive everything here. *)

let cli = Sys.argv.(1)

let failures = ref 0
let ran = ref 0

let fail name fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.printf "FAIL %s: %s\n%!" name msg)
    fmt

let ok name = Printf.printf "ok   %s\n%!" name

(* {1 Raw framing} *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  go 0

let frame payload =
  let n = String.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  Bytes.to_string hdr ^ payload

let send fd payload = write_all fd (frame payload)

(* Read exactly [n] bytes; [None] on EOF. *)
let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> None
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> None
  in
  go 0

let recv fd =
  match read_exact fd 4 with
  | None -> None
  | Some hdr ->
      let b i = Char.code hdr.[i] in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      read_exact fd n

let has_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Expect the next frame to carry all [subs] as substrings. *)
let expect_frame name fd subs =
  incr ran;
  match recv fd with
  | None -> fail name "connection closed, wanted a frame with %s" (String.concat " + " subs)
  | Some payload ->
      if List.for_all (has_sub payload) subs then ok name
      else fail name "frame %S lacks %s" payload (String.concat " + " subs)

let expect_eof name fd =
  incr ran;
  match recv fd with
  | None -> ok name
  | Some payload -> fail name "wanted EOF, got frame %S" payload

(* {1 Server lifecycle} *)

let sock_path = Filename.temp_file "easeio_serve_proto" ".sock"

let spawn_server () =
  Sys.remove sock_path;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock_path; "--jobs"; "2" |]
      devnull devnull Unix.stderr
  in
  Unix.close devnull;
  pid

let connect () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec retry n =
    match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when n > 0 ->
        Unix.sleepf 0.05;
        retry (n - 1)
  in
  retry 200

let with_conn f =
  let fd = connect () in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) (fun () -> f fd)

(* {1 The contract} *)

let () =
  (* a wedged server must fail the suite, not hang CI *)
  ignore (Unix.alarm 120);
  let pid = spawn_server () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try Sys.remove sock_path with Sys_error _ -> ())
  @@ fun () ->
  with_conn (fun fd ->
      send fd {|{"cmd":"ping"}|};
      expect_frame "ping answers pong" fd [ {|"frame":"pong"|} ];
      (* a malformed JSON payload costs one frame, not the connection *)
      send fd "{not json";
      expect_frame "bad JSON -> bad-frame" fd [ {|"frame":"error"|}; {|"code":"bad-frame"|} ];
      send fd "42";
      expect_frame "non-object JSON -> bad-frame" fd [ {|"code":"bad-frame"|} ];
      send fd {|{"cmd":"frobnicate"}|};
      expect_frame "unknown command -> bad-request" fd
        [ {|"code":"bad-request"|}; "unknown command" ];
      (* request-parse rejections are connection-level (id 0): the
         request never entered the id space *)
      send fd {|{"id":3,"cmd":"faults","app":"Temp.","chunk":4}|};
      expect_frame "unknown field -> bad-request" fd
        [ {|"id":0|}; {|"code":"bad-request"|}; "unknown field" ];
      send fd {|{"id":4,"cmd":"faults","app":"Temp.","sweep":"every-other-run"}|};
      expect_frame "bad sweep spec -> bad-request" fd [ {|"id":0|}; {|"code":"bad-request"|} ];
      send fd {|{"cmd":"run","src":"program t;"}|};
      expect_frame "job without id -> bad-request" fd
        [ {|"code":"bad-request"|}; "positive" ];
      send fd {|{"id":5,"cmd":"run","src":"task oops {}","seed":1}|};
      expect_frame "syntax error -> bad-request" fd
        [ {|"id":5|}; {|"code":"bad-request"|}; "parse error" ];
      send fd {|{"id":6,"cmd":"faults","app":"nosuchapp"}|};
      expect_frame "unknown app -> unknown-app" fd [ {|"id":6|}; {|"code":"unknown-app"|} ];
      send fd {|{"cmd":"cancel","target":99}|};
      expect_frame "cancel of unknown target -> error at target id" fd
        [ {|"id":99|}; {|"code":"bad-request"|} ];
      (* still healthy after every rejection above *)
      send fd {|{"cmd":"ping"}|};
      expect_frame "connection survives rejected requests" fd [ {|"frame":"pong"|} ]);
  (* an oversized announced length desynchronizes the stream: the
     server reports it and hangs up — and must still accept fresh
     connections afterwards *)
  with_conn (fun fd ->
      write_all fd "\x7f\xff\xff\xff";
      expect_frame "oversize header -> oversize error" fd
        [ {|"frame":"error"|}; {|"code":"oversize"|} ];
      expect_eof "oversize hangs up" fd);
  with_conn (fun fd ->
      send fd {|{"cmd":"ping"}|};
      expect_frame "server survives an oversize peer" fd [ {|"frame":"pong"|} ]);
  (* duplicate in-flight id is rejected without killing the original
     request: both frames land in one write so the reader sees the
     duplicate while the first is still running *)
  with_conn (fun fd ->
      let req id =
        Printf.sprintf
          {|{"id":%d,"cmd":"faults","app":"Temp.","runtime":"easeio","sweep":"boundaries:1","seed":1}|}
          id
      in
      write_all fd (frame (req 7) ^ frame (req 7));
      let saw_dup = ref false and saw_result = ref false in
      let deadline = ref 0 in
      while (not (!saw_dup && !saw_result)) && !deadline < 10_000 do
        incr deadline;
        match recv fd with
        | None -> deadline := 10_000
        | Some p ->
            if has_sub p {|"code":"bad-request"|} && has_sub p "already in flight" then
              saw_dup := true
            else if has_sub p {|"frame":"result"|} then begin
              saw_result := true;
              ignore (recv fd)
            end
      done;
      incr ran;
      if !saw_dup && !saw_result then ok "duplicate id rejected, original completes"
      else fail "duplicate id rejected, original completes" "dup=%b result=%b" !saw_dup !saw_result);
  (* a half-closed peer (no more requests coming) still receives the
     full streamed response for what it already asked *)
  with_conn (fun fd ->
      send fd
        {|{"id":8,"cmd":"faults","app":"Temp.","runtime":"easeio","sweep":"boundaries:64","seed":1}|};
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let saw_result = ref false and doc = ref "" in
      let steps = ref 0 in
      while (not !saw_result) && !steps < 10_000 do
        incr steps;
        match recv fd with
        | None -> steps := 10_000
        | Some p ->
            if has_sub p {|"frame":"result"|} then begin
              saw_result := true;
              match recv fd with Some d -> doc := d | None -> ()
            end
      done;
      incr ran;
      if !saw_result && has_sub !doc {|"boundaries_total"|} then
        ok "half-closed socket still streams result"
      else fail "half-closed socket still streams result" "result=%b doc=%d bytes" !saw_result
        (String.length !doc));
  (* SIGTERM is a clean exit: workers joined, socket unlinked, code 0 *)
  incr ran;
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ok "SIGTERM -> exit 0"
  | _, Unix.WEXITED c -> fail "SIGTERM -> exit 0" "exit %d" c
  | _, Unix.WSIGNALED s -> fail "SIGTERM -> exit 0" "killed by signal %d" s
  | _, Unix.WSTOPPED s -> fail "SIGTERM -> exit 0" "stopped by signal %d" s);
  incr ran;
  if Sys.file_exists sock_path then fail "socket path unlinked on shutdown" "still exists"
  else ok "socket path unlinked on shutdown";
  Printf.printf "%d/%d ok\n" (!ran - !failures) !ran;
  if !failures > 0 then exit 1
