(* Tests for the conformance-fuzzing subsystem: generator determinism
   and validity, the differential judge on the shipped pipeline and on
   a deliberately ablated one, shrinker behavior (including the
   soundness property: every accepted shrink step is still a valid
   program that fails the same way), and report determinism across job
   counts. *)

open Conformance

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Same per-case seed derivation as Fuzz.run, so findings here are
   reproducible with `easeio fuzz --seed 1`. *)
let case_seed ~seed i = Platform.Rng.hash2 (Platform.Rng.hash2 seed 0x6a77) i

let ablated_config = { Judge.default_config with budget = 12; ablate_regions = true }
let small_config = { Judge.default_config with budget = 8 }

(* {1 Generator} *)

let test_gen_deterministic () =
  for i = 0 to 19 do
    let seed = case_seed ~seed:3 i in
    let a = Gen.generate ~seed and b = Gen.generate ~seed in
    checkb "same intent" true (a.Gen.intent = b.Gen.intent);
    checks "same program"
      (Lang.Pretty.program_to_string a.Gen.prog)
      (Lang.Pretty.program_to_string b.Gen.prog)
  done

let test_gen_clean_cases_valid () =
  let clean = ref 0 in
  for i = 0 to 99 do
    let case = Gen.generate ~seed:(case_seed ~seed:5 i) in
    match case.Gen.intent with
    | Gen.Clean ->
        incr clean;
        checkb "clean case satisfies the shrinker invariant" true (Gen.valid case.Gen.prog)
    | Gen.Expect _ -> ()
  done;
  checkb "most cases are clean" true (!clean >= 70)

let test_gen_roundtrips () =
  for i = 0 to 29 do
    let case = Gen.generate ~seed:(case_seed ~seed:11 i) in
    let printed = Lang.Pretty.program_to_string case.Gen.prog in
    let reparsed = Lang.Parser.parse printed in
    checkb "pretty/parse identity" true
      (Lang.Ast.strip reparsed = Lang.Ast.strip case.Gen.prog)
  done

(* {1 Judge} *)

let test_judge_clean_on_shipped_pipeline () =
  for i = 0 to 19 do
    let case = Gen.generate ~seed:(case_seed ~seed:1 i) in
    let out = Judge.judge ~config:small_config case in
    match out.Judge.violations with
    | [] -> ()
    | v :: _ ->
        Alcotest.failf "seed %d: unexpected violation %s" case.Gen.gen_seed (Judge.describe v)
  done

(* The W0403 acceptance criterion: with regional privatization ablated,
   the harness finds an NV-state divergence and shrinks it small. *)
let find_ablated_counterexample () =
  let rec go i =
    if i >= 200 then Alcotest.fail "no ablated counterexample in 200 cases"
    else
      let case = Gen.generate ~seed:(case_seed ~seed:1 i) in
      let out = Judge.judge ~stop_early:true ~config:ablated_config case in
      let nv_state v = v.Judge.vkind = "nv-state" in
      if case.Gen.intent = Gen.Clean && List.exists nv_state out.Judge.violations then (case, out)
      else go (i + 1)
  in
  go 0

let test_ablated_regions_found_and_shrunk () =
  let case, out = find_ablated_counterexample () in
  let keys = List.map Judge.key out.Judge.violations in
  let fails p =
    let out' =
      Judge.judge ~stop_early:true ~config:ablated_config { case with Gen.prog = p }
    in
    List.exists (fun v -> List.mem (Judge.key v) keys) out'.Judge.violations
  in
  let shrunk, accepted, _checks =
    Shrink.minimize ~max_checks:200 ~valid:Gen.valid ~fails case.Gen.prog
  in
  checkb "shrinker made progress" true (accepted > 0);
  checkb
    (Printf.sprintf "shrunk to %d statements (<= 12)" (Gen.stmt_count shrunk))
    true
    (Gen.stmt_count shrunk <= 12);
  checkb "shrunk program still fails the same way" true (fails shrunk)

(* {1 Shrinker} *)

let test_shrink_removes_statements_and_tasks () =
  let prog =
    Lang.Parser.parse
      {|
program p;
nv int g0;
nv int unused;

task t0 {
  g0 = 1;
  g0 = 2;
  next t1;
}

task t1 {
  g0 = 3;
  stop;
}
|}
  in
  (* oracle: "g0 is ever assigned 2" — everything else should go *)
  let fails p =
    let found = ref false in
    List.iter
      (fun (t : Lang.Ast.task) ->
        Lang.Ast.iter_stmts
          (fun st ->
            match st.Lang.Ast.s with
            | Lang.Ast.Assign ("g0", Lang.Ast.Int 2) -> found := true
            | _ -> ())
          t.Lang.Ast.t_body)
      p.Lang.Ast.p_tasks;
    !found
  in
  let shrunk, accepted, _ = Shrink.minimize ~valid:Gen.valid ~fails prog in
  checkb "accepted deletions" true (accepted >= 3);
  checki "one task left" 1 (List.length shrunk.Lang.Ast.p_tasks);
  checki "two statements left" 2 (Gen.stmt_count shrunk);
  checki "unused global dropped" 1 (List.length shrunk.Lang.Ast.p_globals)

(* Shrinker soundness, as a qcheck property over generated programs:
   every intermediate program the shrinker accepts (a) pretty-prints to
   source that re-parses to itself, (b) satisfies the structural
   validity invariant, and (c) still fails the same judge key as the
   original — i.e. minimization never changes which bug is exhibited. *)
let prop_shrinker_soundness =
  QCheck.Test.make ~count:6 ~name:"every accepted shrink step is valid and fails the same way"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 199))
    (fun i ->
      let case = Gen.generate ~seed:(case_seed ~seed:1 i) in
      let out = Judge.judge ~stop_early:true ~config:ablated_config case in
      match (case.Gen.intent, out.Judge.violations) with
      | Gen.Expect _, _ | _, [] -> true (* nothing to shrink: trivially sound *)
      | Gen.Clean, vs ->
          let keys = List.map Judge.key vs in
          let fails p =
            let out' =
              Judge.judge ~stop_early:true ~config:ablated_config { case with Gen.prog = p }
            in
            List.exists (fun v -> List.mem (Judge.key v) keys) out'.Judge.violations
          in
          let sound = ref true in
          let on_accept p =
            let printed = Lang.Pretty.program_to_string p in
            (match Lang.Parser.parse printed with
            | reparsed ->
                if Lang.Ast.strip reparsed <> Lang.Ast.strip p then sound := false
            | exception Lang.Parser.Error _ -> sound := false);
            if not (Gen.valid p) then sound := false
          in
          let shrunk, _, _ =
            Shrink.minimize ~max_checks:60 ~on_accept ~valid:Gen.valid ~fails case.Gen.prog
          in
          !sound && fails shrunk)

(* {1 Campaign reports} *)

let small_options =
  { Fuzz.default_options with count = 12; seed = 2; budget = 8; max_shrink = 40 }

let test_fuzz_report_deterministic_across_jobs () =
  let a = Fuzz.run { small_options with jobs = 1 } in
  let b = Fuzz.run { small_options with jobs = 2 } in
  checks "byte-identical JSON for jobs 1 vs 2"
    (Expkit.Json.to_string (Fuzz.to_json a))
    (Expkit.Json.to_string (Fuzz.to_json b))

let test_fuzz_clean_campaign_passes () =
  let r = Fuzz.run { small_options with jobs = 2 } in
  checki "cases" 12 r.Fuzz.cases;
  checki "no violations on the shipped pipeline" 0 r.Fuzz.violating;
  checkb "campaign passes" true (Fuzz.passed r);
  checki "every case accounted for" 12 (r.Fuzz.clean + r.Fuzz.expected_diag + r.Fuzz.violating)

let test_fuzz_ablated_campaign_fails_with_reproducers () =
  let r = Fuzz.run { small_options with count = 20; seed = 1; jobs = 2; ablate_regions = true } in
  checkb "ablated campaign is caught" true (not (Fuzz.passed r));
  checkb "counterexamples recorded" true (r.Fuzz.counterexamples <> []);
  List.iter
    (fun c ->
      checkb "shrunk no larger than original" true
        (c.Fuzz.shrunk_stmts <= c.Fuzz.original_stmts);
      let text = Fuzz.reproducer r.Fuzz.options c in
      (* the reproducer must be a self-contained, re-parseable program *)
      let reparsed = Lang.Parser.parse text in
      checkb "reproducer parses to the shrunk program" true
        (Lang.Ast.strip reparsed = Lang.Ast.strip c.Fuzz.shrunk))
    r.Fuzz.counterexamples

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "conformance"
    [
      ( "generator",
        [
          tc "deterministic given seed" `Quick test_gen_deterministic;
          tc "clean cases valid" `Quick test_gen_clean_cases_valid;
          tc "pretty/parse identity" `Quick test_gen_roundtrips;
        ] );
      ( "judge",
        [
          tc "clean on shipped pipeline" `Slow test_judge_clean_on_shipped_pipeline;
          tc "ablated regions found and shrunk" `Slow test_ablated_regions_found_and_shrunk;
        ] );
      ( "shrinker",
        [
          tc "removes statements, tasks, globals" `Quick test_shrink_removes_statements_and_tasks;
          QCheck_alcotest.to_alcotest prop_shrinker_soundness;
        ] );
      ( "campaigns",
        [
          tc "deterministic across jobs" `Slow test_fuzz_report_deterministic_across_jobs;
          tc "clean campaign passes" `Slow test_fuzz_clean_campaign_passes;
          tc "ablated campaign fails with reproducers" `Slow test_fuzz_ablated_campaign_fails_with_reproducers;
        ] );
    ]
