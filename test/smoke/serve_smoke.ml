(* End-to-end smoke for the campaign service (`dune build @serve-smoke`):
   start the real `easeio serve` binary, push the Weather charge-boundary
   sweep through the real `easeio client` twice (cold, then warm from the
   result cache), diff both documents byte-for-byte against the one-shot
   `easeio faults --json` path, and shut the server down with SIGTERM.
   Everything here is the shipped binary talking to itself — no test
   libraries in the loop. *)

let cli = Sys.argv.(1)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "serve-smoke: %s\n%!" msg;
      exit 1)
    fmt

let run_cmd args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid = Unix.create_process cli (Array.of_list (cli :: args)) devnull devnull Unix.stderr in
  Unix.close devnull;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "%s exited %d" (String.concat " " args) c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
      die "%s killed by signal %d" (String.concat " " args) s

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  (* hard cap: a wedged server fails the alias instead of hanging CI *)
  ignore (Unix.alarm 60);
  let dir = Filename.temp_file "easeio_serve_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path name = Filename.concat dir name in
  let sock = path "serve.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let server =
    Unix.create_process cli [| cli; "serve"; "--socket"; sock; "--jobs"; "2" |] devnull devnull
      Unix.stderr
  in
  Unix.close devnull;
  Fun.protect ~finally:(fun () -> try Unix.kill server Sys.sigkill with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* the client retries while the server comes up, so no explicit wait *)
  let spec =
    {|{"id":1,"cmd":"faults","app":"Weather App.","sweep":"boundaries:100","seed":1}|}
  in
  run_cmd [ "faults"; "Weather App."; "--sweep"; "boundaries:100"; "--seed"; "1"; "--jobs"; "2";
            "--json"; path "oneshot.json" ];
  run_cmd [ "client"; "--socket"; sock; spec; "--out"; path "cold.json" ];
  run_cmd [ "client"; "--socket"; sock; spec; "--out"; path "warm.json" ];
  let oneshot = read_file (path "oneshot.json") in
  let cold = read_file (path "cold.json") in
  let warm = read_file (path "warm.json") in
  if cold <> oneshot then die "cold server document differs from one-shot easeio faults --json";
  if warm <> cold then die "warm (cached) document differs from the cold one";
  Unix.kill server Sys.sigterm;
  (match Unix.waitpid [] server with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "server exited %d after SIGTERM" c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> die "server killed by signal %d" s);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  Printf.printf "serve-smoke: cold == warm == one-shot (%d bytes), clean SIGTERM exit\n"
    (String.length cold)
