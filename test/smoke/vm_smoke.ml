(* CI smoke: compile every catalog application to bytecode and check
   the VM against the tree-walking oracle on a small seed set, under
   continuous power and the paper's timer failures. Exits non-zero on
   the first divergence — `dune build @vm-smoke`. *)

open Platform

let () =
  let failures = [ Failure.No_failures; Failure.paper_timer ] in
  let seeds = [ 1; 2 ] in
  let checked = ref 0 in
  let bad = ref 0 in
  List.iter
    (fun spec ->
      List.iter
        (fun variant ->
          List.iter
            (fun failure ->
              List.iter
                (fun seed ->
                  let run interp =
                    Apps.Common.default_interp := interp;
                    spec.Apps.Common.run variant ~failure ~seed
                  in
                  let tree = run Apps.Common.Tree_walk in
                  let vm = run Apps.Common.Bytecode in
                  incr checked;
                  if tree <> vm then begin
                    incr bad;
                    Printf.eprintf "vm-smoke: DIVERGENCE %s/%s/%s/seed%d\n%!"
                      spec.Apps.Common.app_name
                      (Apps.Common.variant_name variant)
                      (Failure.to_string failure) seed
                  end)
                seeds)
            failures)
        Apps.Common.all_variants)
    Apps.Catalog.all;
  if !bad > 0 then begin
    Printf.eprintf "vm-smoke: %d/%d configurations diverged\n%!" !bad !checked;
    exit 1
  end;
  Printf.printf "vm-smoke: VM == tree-walker on %d configurations\n%!" !checked
