(* Tests for the snapshottable-machine stack: total machine snapshots,
   the resumable engine stepper, and the reboot-space explorer. *)

open Platform

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* {1 Snapshot round-trip (property)}

   A total machine snapshot survives arbitrary perturbation: capture,
   scribble over both memories, restore — the machine must be
   indistinguishable from the capture point (word-exact memories and
   equal total-state hashes), no matter what was written in between. *)

let write_gen =
  QCheck.Gen.(
    triple (oneofl [ Memory.Fram; Memory.Sram ]) (int_bound 4095) (int_bound 0xFFFF))

let writes_arb =
  QCheck.make
    ~print:(fun ws ->
      String.concat ";"
        (List.map
           (fun (sp, a, v) ->
             Printf.sprintf "%s[%d]=%d"
               (match sp with Memory.Fram -> "fram" | _ -> "sram")
               a v)
           ws))
    QCheck.Gen.(list_size (int_range 0 64) write_gen)

let test_snapshot_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"snapshot/restore round-trip"
       (QCheck.pair writes_arb writes_arb)
       (fun (before, after) ->
         let m = Machine.create ~seed:11 () in
         let apply ws = List.iter (fun (sp, a, v) -> Memory.write (Machine.mem m sp) a v) ws in
         apply before;
         let s1 = Snapshot.capture m in
         apply after;
         Snapshot.restore m s1;
         let s2 = Snapshot.capture m in
         List.for_all
           (fun (sp, a, _) -> Memory.read (Machine.mem m sp) a = Memory.image_get
                                                                    (match sp with
                                                                    | Memory.Fram -> Snapshot.fram s1
                                                                    | _ -> Snapshot.sram s1)
                                                                    a)
           after
         && Snapshot.hash s1 = Snapshot.hash s2
         && Snapshot.behavior_hash s1 = Snapshot.behavior_hash s2))

(* {1 Stepper = Engine.run}

   Driving an app through the resumable stepper (start / pause at the
   boundary / resume) must be byte-identical to the one-shot
   [Engine.run] path used by [spec.run] — same outcome, metrics,
   energy, event counters and I/O executions — for every catalog app,
   runtime and failure shape. *)

let catalog =
  [
    ("dma", Apps.Uni.dma);
    ("temp", Apps.Uni.temp);
    ("lea", Apps.Uni.lea);
    ("fir", Apps.Fir.spec);
    ("weather", Apps.Weather.spec);
  ]

let drive session =
  let m = session.Apps.Common.ses_machine in
  session.Apps.Common.ses_begin ();
  let eng =
    Kernel.Engine.start ~hooks:session.Apps.Common.ses_hooks
      ?cur_slot:session.Apps.Common.ses_cur_slot m session.Apps.Common.ses_app
  in
  let rec go () =
    match Kernel.Engine.run_until_boundary eng with
    | Kernel.Engine.Paused ->
        Kernel.Engine.resume eng;
        go ()
    | Kernel.Engine.Finished o -> o
  in
  let o = go () in
  session.Apps.Common.ses_finish ();
  Expkit.Run.of_outcome m o

let test_stepper_matches_run () =
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun variant ->
          List.iter
            (fun failure ->
              let seed = 5 in
              let via_run = spec.Apps.Common.run variant ~failure ~seed in
              let session = (Option.get spec.Apps.Common.session) variant ~seed in
              Machine.set_failure session.Apps.Common.ses_machine failure;
              let via_stepper = drive session in
              checkb
                (Printf.sprintf "%s/%s/%s stepper = run" name
                   (Apps.Common.variant_name variant)
                   (Failure.to_string failure))
                true
                (via_run = via_stepper))
            [
              Failure.No_failures;
              Failure.Nth_charge 3;
              Failure.Nth_charge 7;
              Failure.paper_timer;
            ])
        [ Apps.Common.Easeio; Apps.Common.Alpaca; Apps.Common.Ink ])
    catalog

(* {1 Explorer vs the exhaustive boundary sweep} *)

let test_explorer_agrees_with_sweep () =
  List.iter
    (fun (name, spec) ->
      let variant = Apps.Common.Easeio in
      let r = Explore.explore spec variant ~seed:1 in
      let report =
        Faultkit.Campaign.run ~jobs:1
          ~sweep:(Faultkit.Campaign.Boundaries { stride = 1 })
          ~variants:[ variant ] spec
      in
      let cell = List.hd report.Faultkit.Campaign.cells in
      checkb (name ^ ": explorer clean") true (Explore.passed r);
      checkb (name ^ ": sweep clean") true (Faultkit.Campaign.passed report);
      checki (name ^ ": same boundary space") cell.Faultkit.Campaign.boundaries
        r.Explore.boundaries;
      checkb (name ^ ": pruning collapsed the space") true
        (r.Explore.states + r.Explore.pruned > r.Explore.states);
      checkb (name ^ ": not truncated") false r.Explore.truncated)
    [ ("weather", Apps.Weather.spec); ("fir", Apps.Fir.spec) ]

(* {1 Prune soundness (the explorer's core claim)}

   Pruning skips states with an already-visited behavior hash; equal-hash
   states evolve identically, so skipping one can drop a reboot
   *schedule* from the report but never a distinct *violation*. An
   ablated pipeline gives a violation-dense space: both walks must
   surface the same set of distinct violation payloads. *)

let violation_set r =
  List.sort_uniq compare
    (List.concat_map (fun f -> f.Explore.violations) r.Explore.findings)

let test_prune_soundness () =
  let spec = Apps.Fir.spec in
  let pruned = Explore.explore ~ablate_semantics:true spec Apps.Common.Easeio ~seed:1 in
  let full = Explore.explore ~prune:false ~ablate_semantics:true spec Apps.Common.Easeio ~seed:1 in
  checkb "ablated pipeline has findings" true (pruned.Explore.findings <> []);
  checki "no-prune walk prunes nothing" 0 full.Explore.pruned;
  checki "pruned walk visits fewer states" 0
    (if pruned.Explore.states < full.Explore.states then 0 else 1);
  checkb "pruned findings are a subset of the full walk's" true
    (List.for_all (fun f -> List.mem f full.Explore.findings) pruned.Explore.findings);
  checkb "same distinct violations with and without pruning" true
    (violation_set pruned = violation_set full)

let () =
  Alcotest.run "explore"
    [
      ("snapshot", [ test_snapshot_round_trip ]);
      ( "stepper",
        [ Alcotest.test_case "byte-identical to Engine.run" `Quick test_stepper_matches_run ] );
      ( "explorer",
        [
          Alcotest.test_case "agrees with the exhaustive sweep" `Quick
            test_explorer_agrees_with_sweep;
          Alcotest.test_case "pruning is sound" `Quick test_prune_soundness;
        ] );
    ]
