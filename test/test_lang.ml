(* Tests for the task language: parser, analyses, the EaseIO compiler
   front-end, the interpreter under all policies. *)

open Platform
open Lang

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* substring search for transformed-code assertions *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* {1 Parser} *)

let test_parse_expr () =
  let e = Parser.expr "1 + 2 * x" in
  checks "precedence" "1 + (2 * x)" (Pretty.expr_to_string e);
  let e = Parser.expr "a && b || !c" in
  checks "logic" "(a && b) || (!c)" (Pretty.expr_to_string e)

let fig2c_src =
  {|
program sense;
nv int stdy;
nv int alarm;
task sense {
  int temp;
  temp = call_io(Temp, Always);
  if (temp < 100) { stdy = 1; } else { alarm = 1; }
  stop;
}
|}

let test_parse_program () =
  let p = Parser.program fig2c_src in
  checks "name" "sense" p.Ast.p_name;
  checki "globals" 2 (List.length p.Ast.p_globals);
  checki "tasks" 1 (List.length p.Ast.p_tasks);
  checks "entry" "sense" p.Ast.p_entry

let test_parse_time_suffixes () =
  let p =
    Parser.program
      {|
program t;
task a {
  int x;
  x = call_io(Temp, Timely, 10ms);
  stop;
}
|}
  in
  match List.map (fun st -> st.Ast.s) (List.hd p.Ast.p_tasks).Ast.t_body with
  | [ Ast.Call_io { sem = Easeio.Semantics.Timely 10_000; _ }; Ast.Stop ] -> ()
  | _ -> Alcotest.fail "expected Timely 10ms = 10000us"

let test_parse_errors () =
  let expect_err src =
    match Parser.program src with
    | _ -> Alcotest.fail "expected parse error"
    | exception Parser.Error _ -> ()
    | exception Ast.Error _ -> ()
  in
  expect_err "program p; task t { next missing; }";
  expect_err "program p; nv int x; nv int x; task t { stop; }";
  expect_err "program p; vol int v = 3; task t { stop; }";
  expect_err "program p;";
  expect_err "program p; task t { x = ; }"

let test_roundtrip_through_printer () =
  let p = Parser.program fig2c_src in
  let printed = Pretty.program_to_string p in
  let p2 = Parser.program printed in
  checks "stable print" printed (Pretty.program_to_string p2)

(* Property: parse (print e) structurally equals e for random
   expressions — the printer and parser agree on precedence. *)
let expr_gen =
  let open QCheck.Gen in
  let var = oneofl [ "x"; "y"; "buf" ] in
  let binop =
    oneofl
      Ast.[ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or ]
  in
  fix
    (fun self depth ->
      if depth = 0 then
        oneof [ map (fun n -> Ast.Int n) (int_range 0 999); map (fun v -> Ast.Var v) var ]
      else
        frequency
          [
            (2, map (fun n -> Ast.Int n) (int_range 0 999));
            (2, map (fun v -> Ast.Var v) var);
            (1, map2 (fun a i -> Ast.Index (a, i)) var (self (depth - 1)));
            (1, map (fun e -> Ast.Unop (Ast.Not, e)) (self (depth - 1)));
            (3, map3 (fun op a b -> Ast.Binop (op, a, b)) binop (self (depth - 1)) (self (depth - 1)));
          ])
    4

let prop_printer_parser_roundtrip =
  QCheck.Test.make ~name:"printer/parser expression roundtrip" ~count:300
    (QCheck.make ~print:Pretty.expr_to_string expr_gen)
    (fun e -> Parser.expr (Pretty.expr_to_string e) = e)

(* {1 Analysis} *)

let fig6_src =
  {|
program fig6;
nv int a[4];
nv int b[4];
task t1 {
  int z;
  int tt;
  z = b[0];
  dma_copy(a[0], b[0], 4);
  tt = b[0];
  a[0] = z;
  stop;
}
|}

let test_war_analysis () =
  let p = Parser.program fig6_src in
  let t = List.hd p.Ast.p_tasks in
  (* CPU reads b, writes a: no single variable is both CPU-read and
     CPU-written, so the baselines privatize nothing *)
  Alcotest.(check (list string)) "no cpu WAR vars" [] (Analysis.war_vars p t)

let test_war_detects_cpu_war () =
  let p =
    Parser.program
      {|
program w;
nv int x;
task t { x = x + 1; stop; }
|}
  in
  Alcotest.(check (list string)) "x has WAR" [ "x" ]
    (Analysis.war_vars p (List.hd p.Ast.p_tasks))

let test_region_split () =
  let p = Parser.program fig6_src in
  let regions = Analysis.split_regions (List.hd p.Ast.p_tasks) in
  checki "N+1 regions" 2 (List.length regions);
  (match regions with
  | [ (r1, Some _); (r2, None) ] ->
      checki "region 1 stmts" 1 (List.length r1);
      checki "region 2 stmts" 3 (List.length r2)
  | _ -> Alcotest.fail "expected [r1, dma; r2]")

let test_check_supported_rejects () =
  let reject src =
    let p = Parser.program src in
    match Analysis.check_supported p with
    | () -> Alcotest.fail "expected rejection"
    | exception Ast.Error _ -> ()
  in
  reject
    {|
program bad;
nv int n;
task t { int x; while (x < n) { x = call_io(Temp, Single); } stop; }
|};
  reject
    {|
program bad;
nv int n;
task t { int x; for i = 0 to n { x = call_io(Temp, Single); } stop; }
|};
  reject
    {|
program bad;
task t { for i = 0 to 3 { for j = 0 to 3 { call_io(Temp, Single); } } stop; }
|};
  reject {|
program bad;
nv int a[4];
vol int v[4];
task t { if (1) { dma_copy(a[0], v[0], 4); } stop; }
|}

let test_always_in_loop_supported () =
  let p =
    Parser.program
      {|
program ok;
task t { for i = 0 to 3 { call_io(Temp, Always); } stop; }
|}
  in
  Analysis.check_supported p

let test_static_loop_single_supported () =
  (* §6 extension: annotated I/O in a statically bounded for loop *)
  let p =
    Parser.program
      {|
program ok;
nv int log[4];
task t { int s; for i = 0 to 3 { s = call_io(Temp, Single); log[i] = s; } stop; }
|}
  in
  Analysis.check_supported p

(* {1 Transform} *)

let transform src = Transform.apply (Parser.program src)

let test_transform_inserts_lock_flags () =
  let r =
    transform
      {|
program p;
task sense { int temp; temp = call_io(Temp, Single); stop; }
|}
  in
  let names = List.map (fun d -> d.Ast.v_name) r.Transform.prog.Ast.p_globals in
  checkb "lock flag declared" true (List.mem "__lock_Temp_sense_0" names);
  checkb "private copy declared" true (List.mem "__priv_Temp_sense_0" names);
  let printed = Pretty.program_to_string r.Transform.prog in
  checkb "guard present" true
    (contains printed "if (__lock_Temp_sense_0 == 0");
  checkb "restore present" true (contains printed "temp = __priv_Temp_sense_0;")

let test_transform_timely_uses_clock () =
  let r =
    transform
      {|
program p;
task sense { int temp; temp = call_io(Temp, Timely, 10ms); stop; }
|}
  in
  let printed = Pretty.program_to_string r.Transform.prog in
  checkb "staleness check" true (contains printed "get_time() - __time_Temp_sense_0) > 10000");
  checkb "timestamping" true (contains printed "__time_Temp_sense_0 = get_time();")

let test_transform_regions_and_seal () =
  let r = transform fig6_src in
  let printed = Pretty.program_to_string r.Transform.prog in
  checkb "region flag" true (contains printed "__region_t1_0 == 0");
  checkb "privatization memcpy" true (contains printed "memcpy(__rp_t1_");
  checkb "seal after region" true (contains printed "__seal_pending_dma();")

let test_transform_clear_flags_per_task () =
  let r = transform fig6_src in
  match r.Transform.clear_flags with
  | [ ("t1", flags) ] -> checkb "has region flags" true (List.length flags >= 1)
  | _ -> Alcotest.fail "one task expected"

let test_transform_dependence_marks_dma () =
  let r =
    transform
      {|
program p;
nv int out[2];
vol int buf[2];
task t {
  int v;
  v = call_io(Temp, Always);
  buf[0] = v;
  dma_copy(buf[0], out[0], 1);
  stop;
}
|}
  in
  let has_dep = ref false in
  List.iter
    (fun (t : Ast.task) ->
      Ast.iter_stmts
        (fun st ->
          match st.Ast.s with
          | Ast.Dma { dma_deps = _ :: _; _ } -> has_dep := true
          | _ -> ())
        t.Ast.t_body)
    r.Transform.prog.Ast.p_tasks;
  checkb "dma inherits dependence on Temp" true !has_dep

let test_transform_priv_buffer_check () =
  let src =
    {|
program p;
nv int big[4000];
vol int dst[4000];
task t { dma_copy(big[0], dst[0], 4000); stop; }
|}
  in
  match Transform.apply ~priv_buffer_words:2048 (Parser.program src) with
  | _ -> Alcotest.fail "expected overflow diagnostic"
  | exception Ast.Error msg ->
      checkb "mentions exclude" true (contains msg "dma_copy_exclude")

let test_transform_exclude_skips_demand () =
  let src =
    {|
program p;
nv int big[4000];
vol int dst[4000];
task t { dma_copy_exclude(big[0], dst[0], 4000); stop; }
|}
  in
  let r = Transform.apply ~priv_buffer_words:2048 (Parser.program src) in
  checki "no demand" 0 r.Transform.priv_demand_words

let test_transform_loop_indexed_arrays () =
  let r =
    transform
      {|
program p;
nv int log[4];
task grab { int s; for i = 0 to 3 { s = call_io(Temp, Single); log[i] = s; } stop; }
|}
  in
  let decls = r.Transform.prog.Ast.p_globals in
  (match List.find_opt (fun d -> d.Ast.v_name = "__lock_Temp_grab_0") decls with
  | Some d -> checki "lock is a 4-element array" 4 d.Ast.v_words
  | None -> Alcotest.fail "loop lock array not declared");
  let printed = Pretty.program_to_string r.Transform.prog in
  checkb "indexed guard" true (contains printed "__lock_Temp_grab_0[i - 0] == 0")

let test_transform_ablate_semantics () =
  let r =
    Transform.apply ~ablate_semantics:true
      (Parser.program
         {|
program p;
nv int out[2];
vol int v[2];
task t { int x; x = call_io(Temp, Single); dma_copy(out[0], v[0], 2); stop; }
|})
  in
  let printed = Pretty.program_to_string r.Transform.prog in
  checkb "no lock guards left" true (not (contains printed "__lock_Temp"));
  checkb "dma excluded" true (contains printed "dma_copy_exclude");
  checki "no privatization demand" 0 r.Transform.priv_demand_words

let test_transform_ablate_regions () =
  let r = Transform.apply ~ablate_regions:true (Parser.program fig6_src) in
  let printed = Pretty.program_to_string r.Transform.prog in
  checkb "no region flags" true (not (contains printed "__region_"));
  checkb "seal follows dma directly" true (contains printed "__seal_pending_dma();")

(* {1 Interpreter} *)

let run_src ?(policy = Interp.Easeio) ?seed ?failure src =
  let m = Machine.create ?seed ?failure () in
  let t = Interp.build ~policy m (Parser.program src) in
  let o = Interp.run t in
  (t, o)

let test_interp_basic_compute () =
  let t, o =
    run_src ~policy:Interp.Plain
      {|
program p;
nv int out;
task t1 {
  int acc;
  acc = 0;
  for i = 1 to 10 { acc = acc + i; }
  out = acc;
  next t2;
}
task t2 { out = out * 2; stop; }
|}
  in
  checkb "completed" true o.Kernel.Engine.completed;
  checki "sum doubled" 110 (Interp.read_global t "out" 0)

let test_interp_arrays_and_while () =
  let t, _ =
    run_src ~policy:Interp.Plain
      {|
program p;
nv int buf[8];
nv int n;
task t1 {
  int i;
  i = 0;
  while (i < 8) { buf[i] = i * i; i = i + 1; }
  n = buf[7];
  stop;
}
|}
  in
  checki "n = 49" 49 (Interp.read_global t "n" 0)

let test_interp_io_and_radio () =
  let t, _ =
    run_src ~policy:Interp.Plain
      {|
program p;
task t1 {
  int v;
  v = call_io(Temp, Always);
  call_io(Send, Single, v, 7);
  stop;
}
|}
  in
  checki "one packet" 1 (Periph.Radio.packets_sent (Interp.radio t));
  match Periph.Radio.log (Interp.radio t) with
  | [ (_, payload) ] ->
      checki "payload length" 2 (Array.length payload);
      checki "second word" 7 payload.(1)
  | _ -> Alcotest.fail "expected one packet"

let test_interp_lea_fir () =
  let t, _ =
    run_src ~policy:Interp.Plain
      {|
program p;
nv int input[8] = {1, 1, 1, 1, 1, 1, 1, 1};
nv int coefs[3] = {1, 2, 3};
nv int result[6];
vol int li[8];
vol int lc[3];
vol int lo[6];
task t1 {
  dma_copy(input[0], li[0], 8);
  dma_copy(coefs[0], lc[0], 3);
  call_io(Lea_fir, Always, li, lc, 3, lo, 6);
  dma_copy(lo[0], result[0], 6);
  stop;
}
|}
  in
  for i = 0 to 5 do
    checki "moving sum" 6 (Interp.read_global t "result" i)
  done

(* The Fig. 6 experiment end-to-end at language level: a power failure at
   the end of the task corrupts state under every baseline but not under
   EaseIO. "Die" is a test-only peripheral that fails on first attempt. *)
let die_io : string * Interp.io_impl =
  ( "Die",
    fun m _ ->
      if Machine.failures m = 0 then Machine.die m;
      0 )

let fig6_with_die =
  {|
program fig6;
nv int a[1];
nv int b[1];
task t1 {
  int z;
  int tt;
  z = b[0];
  dma_copy(a[0], b[0], 1);
  tt = b[0];
  a[0] = z;
  call_io(Die, Always);
  stop;
}
|}

let run_fig6 policy ~fail =
  let m = Machine.create () in
  let prog = Parser.program fig6_with_die in
  let t =
    Interp.build ~policy
      ~extra_io:(if fail then [ die_io ] else [ ("Die", fun _ _ -> 0) ])
      m prog
  in
  (* preload a=100, b=200 *)
  let la = Interp.global_loc t "a" and lb = Interp.global_loc t "b" in
  Memory.write (Machine.mem m Memory.Fram) la.Loc.addr 100;
  Memory.write (Machine.mem m Memory.Fram) lb.Loc.addr 200;
  let o = Interp.run t in
  checkb "completed" true o.Kernel.Engine.completed;
  (Interp.read_global t "a" 0, Interp.read_global t "b" 0)

let test_interp_fig6_baselines_corrupt () =
  List.iter
    (fun policy ->
      let golden = run_fig6 policy ~fail:false in
      Alcotest.(check (pair int int)) "golden" (200, 100) golden;
      let intermittent = run_fig6 policy ~fail:true in
      checkb (Interp.policy_name policy ^ " corrupts") true (intermittent <> golden))
    [ Interp.Plain; Interp.Alpaca; Interp.Ink ]

let test_interp_fig6_easeio_correct () =
  let golden = run_fig6 Interp.Easeio ~fail:false in
  Alcotest.(check (pair int int)) "golden" (200, 100) golden;
  let intermittent = run_fig6 Interp.Easeio ~fail:true in
  Alcotest.(check (pair int int)) "EaseIO consistent" golden intermittent

let test_interp_easeio_skips_single () =
  let m = Machine.create () in
  let prog =
    Parser.program
      {|
program p;
nv int out;
task t1 {
  int v;
  v = call_io(Temp, Single);
  out = v;
  call_io(Die, Always);
  stop;
}
|}
  in
  let t = Interp.build ~extra_io:[ die_io ] m prog in
  let o = Interp.run t in
  checkb "completed" true o.Kernel.Engine.completed;
  checki "sensor ran once despite re-execution" 1 (Machine.event m "io:Temp");
  checki "one failure" 1 o.Kernel.Engine.power_failures

let test_interp_baselines_reexecute_io () =
  let m = Machine.create () in
  let prog =
    Parser.program
      {|
program p;
task t1 { int v; v = call_io(Temp, Single); call_io(Die, Always); stop; }
|}
  in
  let t = Interp.build ~policy:Interp.Alpaca ~extra_io:[ die_io ] m prog in
  ignore (Interp.run t);
  checki "baseline re-reads regardless of annotation" 2 (Machine.event m "io:Temp")

let test_interp_easeio_branch_stability () =
  (* Fig. 2c: the branch must not flip across re-execution *)
  let m = Machine.create ~seed:33 () in
  let prog =
    Parser.program
      {|
program p;
nv int stdy;
nv int alarm;
task sense {
  int temp;
  temp = call_io(Temp, Single);
  if (temp < 100) { stdy = 1; } else { alarm = 1; }
  call_io(Die, Always);
  stop;
}
|}
  in
  let t = Interp.build ~extra_io:[ die_io ] m prog in
  ignore (Interp.run t);
  checki "exactly one flag set" 1 (Interp.read_global t "stdy" 0 + Interp.read_global t "alarm" 0)

let test_interp_timely_block_fig3 () =
  (* Fig. 3: temp@Timely,10ms + humd@Always inside a Single block *)
  let m = Machine.create () in
  let prog =
    Parser.program
      {|
program p;
nv int t_out;
nv int h_out;
task sense {
  int temp;
  int humd;
  io_block(Single) {
    temp = call_io(Temp, Timely, 10ms);
    humd = call_io(Humd, Always);
  }
  t_out = temp;
  h_out = humd;
  call_io(Die, Always);
  stop;
}
|}
  in
  let t = Interp.build ~extra_io:[ die_io ] m prog in
  let o = Interp.run t in
  checkb "completed" true o.Kernel.Engine.completed;
  (* block completed before the failure: nothing re-executes *)
  checki "temp once" 1 (Machine.event m "io:Temp");
  checki "humd once (Always overridden by completed Single block)" 1 (Machine.event m "io:Humd");
  checkb "outputs restored" true
    (Interp.read_global t "t_out" 0 <> 0 && Interp.read_global t "h_out" 0 <> 0)

let test_interp_under_timer_failures_matches_golden () =
  (* end-to-end: EaseIO under the paper's timer-failure emulation
     produces the same final state as continuous power *)
  let build failure seed =
    let m = Machine.create ~seed ~failure () in
    let t = Interp.build m (Parser.program fig6_src) in
    let la = Interp.global_loc t "a" and lb = Interp.global_loc t "b" in
    for i = 0 to 3 do
      Memory.write (Machine.mem m Memory.Fram) (la.Loc.addr + i) (100 + i);
      Memory.write (Machine.mem m Memory.Fram) (lb.Loc.addr + i) (200 + i)
    done;
    let o = Interp.run t in
    checkb "completed" true o.Kernel.Engine.completed;
    List.concat_map (fun n -> List.init 4 (Interp.read_global t n)) [ "a"; "b" ]
  in
  let golden = build Failure.No_failures 1 in
  for seed = 1 to 20 do
    let intermittent =
      build
        (Failure.Timer { on_min_us = 40; on_max_us = 120; off_min_us = 5; off_max_us = 30 })
        seed
    in
    Alcotest.(check (list int)) (Printf.sprintf "seed %d" seed) golden intermittent
  done

let test_interp_loop_indexed_no_repeats () =
  (* four Single samples in a loop; a failure mid-loop resumes without
     re-reading completed iterations *)
  let m = Machine.create () in
  let prog =
    Parser.program
      {|
program p;
nv int log[6];
task grab {
  int s;
  for i = 0 to 5 {
    s = call_io(Temp, Single);
    log[i] = s;
    if (i == 3) { call_io(Die, Always); }
  }
  stop;
}
|}
  in
  let t = Interp.build ~extra_io:[ die_io ] m prog in
  let o = Interp.run t in
  checkb "completed" true o.Kernel.Engine.completed;
  checki "six samples, no repeats" 6 (Machine.event m "io:Temp");
  for i = 0 to 5 do
    checkb (Printf.sprintf "log[%d] populated" i) true (Interp.read_global t "log" i > 0)
  done

let test_interp_loop_flags_clear_between_instances () =
  (* a second execution instance of the same task must re-sample *)
  let m = Machine.create () in
  let prog =
    Parser.program
      {|
program p;
nv int log[3];
nv int round;
task grab {
  int s;
  for i = 0 to 2 { s = call_io(Temp, Single); log[i] = s; }
  round = round + 1;
  if (round < 2) { next grab; }
  stop;
}
|}
  in
  let t = Interp.build m prog in
  ignore (Interp.run t);
  checki "three samples per instance" 6 (Machine.event m "io:Temp")

let test_interp_ablate_regions_corrupts () =
  (* without regional privatization the Fig. 6 pattern corrupts again,
     demonstrating why §4.4 is load-bearing *)
  let run ~ablate =
    let m = Machine.create () in
    let prog = Parser.program fig6_with_die in
    let t = Interp.build ~ablate_regions:ablate ~extra_io:[ die_io ] m prog in
    let la = Interp.global_loc t "a" and lb = Interp.global_loc t "b" in
    Memory.write (Machine.mem m Memory.Fram) la.Loc.addr 100;
    Memory.write (Machine.mem m Memory.Fram) lb.Loc.addr 200;
    ignore (Interp.run t);
    (Interp.read_global t "a" 0, Interp.read_global t "b" 0)
  in
  Alcotest.(check (pair int int)) "full easeio correct" (200, 100) (run ~ablate:false);
  checkb "ablated easeio corrupts" true (run ~ablate:true <> (200, 100))

let test_interp_ablate_semantics_reexecutes () =
  let m = Machine.create () in
  let prog =
    Parser.program
      {|
program p;
task t1 { int v; v = call_io(Temp, Single); call_io(Die, Always); stop; }
|}
  in
  let t = Interp.build ~ablate_semantics:true ~extra_io:[ die_io ] m prog in
  ignore (Interp.run t);
  checki "semantics ablated: re-reads like a baseline" 2 (Machine.event m "io:Temp")

(* the .eio programs shipped under examples/programs must keep parsing,
   transforming and running correctly under every policy *)
let test_shipped_programs () =
  List.iter
    (fun path ->
      let ic = open_in path in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let prog = Parser.program src in
      ignore (Transform.apply prog);
      List.iter
        (fun policy ->
          let m = Machine.create ~seed:5 ~failure:Failure.paper_timer () in
          let t = Interp.build ~policy m prog in
          let o = Interp.run t in
          checkb
            (Printf.sprintf "%s under %s completes" path (Interp.policy_name policy))
            true o.Kernel.Engine.completed)
        [ Interp.Alpaca; Interp.Ink; Interp.Easeio ])
    [ "../examples/programs/greenhouse.eio"; "../examples/programs/motion_log.eio" ]

let test_footprint_ordering () =
  (* EaseIO must carry more FRAM metadata than Alpaca for the same program *)
  let measure policy =
    let m = Machine.create () in
    let t = Interp.build ~policy m (Parser.program fig6_src) in
    Footprint.measure t
  in
  let a = measure Interp.Alpaca and e = measure Interp.Easeio in
  checkb "easeio runtime fram > alpaca" true
    (e.Footprint.fram_runtime_bytes > a.Footprint.fram_runtime_bytes);
  checkb "text positive" true (a.Footprint.text_bytes > 0)

let prop_easeio_always_matches_golden =
  QCheck.Test.make ~name:"easeio matches golden state under random failure timers" ~count:25
    QCheck.(pair small_int (int_range 30 200))
    (fun (seed, on_min) ->
      let src =
        {|
program rnd;
nv int a[4];
nv int b[4];
nv int out;
task t1 {
  int z;
  z = b[1] + a[2];
  dma_copy(a[0], b[0], 4);
  a[1] = z;
  next t2;
}
task t2 {
  out = a[1] + b[2];
  stop;
}
|}
      in
      let build failure =
        let m = Machine.create ~seed:(seed + 1) ~failure () in
        let t = Interp.build m (Parser.program src) in
        let la = Interp.global_loc t "a" and lb = Interp.global_loc t "b" in
        for i = 0 to 3 do
          Memory.write (Machine.mem m Memory.Fram) (la.Loc.addr + i) (10 + i);
          Memory.write (Machine.mem m Memory.Fram) (lb.Loc.addr + i) (20 + i)
        done;
        let o = Interp.run t in
        (o.Kernel.Engine.completed, Interp.read_global t "out" 0)
      in
      let golden = build Failure.No_failures in
      let test =
        build (Failure.Timer { on_min_us = on_min; on_max_us = on_min * 3; off_min_us = 3; off_max_us = 20 })
      in
      golden = test)

(* {1 Diagnostics and the staged pass pipeline} *)

let codes ds = List.map (fun d -> d.Diagnostics.code) ds

let test_resolve_collects_all () =
  (* one program, four distinct problems: the pipeline must report every
     one of them, not stop at the first *)
  let p =
    Parser.parse
      {|
program p;
nv int a;
nv int a;
task t {
  x = missing[2];
  call_io(Delay, Single);
  next nowhere;
}
|}
  in
  let ds = Analysis.resolve p in
  let cs = codes ds in
  checkb "dup global E0103" true (List.mem "E0103" cs);
  checkb "unknown next E0102" true (List.mem "E0102" cs);
  checkb "undeclared array E0106" true (List.mem "E0106" cs);
  checkb "bad arity E0107" true (List.mem "E0107" cs);
  checkb "all spans located" true
    (List.for_all (fun d -> not (Span.is_ghost d.Diagnostics.span)) ds)

let test_supported_collects_all () =
  let p =
    Parser.parse
      {|
program p;
nv int a[4];
vol int b[4];
task t {
  int x;
  while (x < 3) { x = call_io(Temp, Single); }
  if (x > 0) { dma_copy(a[0], b[0], 4); }
  stop;
}
|}
  in
  let cs = codes (Analysis.supported p) in
  checki "both violations" 2 (List.length cs);
  checkb "E0201 first (source order)" true (cs = [ "E0201"; "E0203" ])

let test_diagnostic_render_caret () =
  let src = "program p;\nnv int a;\nnv int a;\ntask t { stop; }\n" in
  let ds = Analysis.resolve (Parser.parse src) in
  checki "one diagnostic" 1 (List.length ds);
  let r = Diagnostics.render ~src (List.hd ds) in
  checkb "header has code" true (contains r "error[E0103]");
  checkb "location arrow" true (contains r "--> line 3");
  checkb "source excerpt" true (contains r "nv int a;");
  checkb "caret underline" true (contains r "^^^")

let test_parse_error_has_span () =
  match Parser.parse "program p;\ntask t { x = ; }" with
  | _ -> Alcotest.fail "expected syntax error"
  | exception Parser.Error (span, _) ->
      checki "error on line 2" 2 span.Span.s.Span.line

let test_diagnostic_json_shape () =
  let src = "program p;\nnv int a;\nnv int a;\ntask t { stop; }\n" in
  let ds = Analysis.resolve (Parser.parse src) in
  match Diagnostics.report_to_json ~file:"x.eio" ds with
  | Expkit.Json.Obj fields ->
      checkb "file field" true (List.mem_assoc "file" fields);
      checkb "errors field" true (List.assoc "errors" fields = Expkit.Json.Int 1);
      checkb "warnings field" true (List.assoc "warnings" fields = Expkit.Json.Int 0);
      (match List.assoc "diagnostics" fields with
      | Expkit.Json.List [ Expkit.Json.Obj d ] ->
          checkb "code" true (List.assoc "code" d = Expkit.Json.String "E0103");
          checkb "severity" true (List.assoc "severity" d = Expkit.Json.String "error");
          checkb "span present" true (List.mem_assoc "span" d)
      | _ -> Alcotest.fail "diagnostics not a one-element list")
  | _ -> Alcotest.fail "report not an object"

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let analysis_codes src =
  let _, ctx = Pass.run_pipeline Pass.analysis_passes (Parser.parse src) in
  List.sort_uniq compare (codes (Diagnostics.contents ctx.Pass.bag))

let test_lint_fixtures () =
  List.iter
    (fun (file, code) ->
      let src = read_file ("../examples/programs/lints/" ^ file) in
      Alcotest.(check (list string))
        (file ^ " triggers exactly " ^ code)
        [ code ] (analysis_codes src))
    [
      ("w0401_redundant_always.eio", "W0401");
      ("w0402_stale_deadline.eio", "W0402");
      ("w0403_unprivatized_war.eio", "W0403");
      ("e0301_flag_collision.eio", "E0301");
    ]

let test_lint_clean_on_compiled_output () =
  (* compiled programs legitimately own the __ namespace: re-checking
     them must not produce E0301 *)
  let src = read_file "../examples/programs/motion_log.eio" in
  let r = Transform.apply (Parser.program src) in
  let cs = analysis_codes (Pretty.program_to_string r.Transform.prog) in
  checkb "no E0301 on compiled output" true (not (List.mem "E0301" cs));
  checkb "no errors on compiled output" true
    (List.for_all (fun c -> c.[0] <> 'E') cs)

let test_capacitor_recharge () =
  let cap = Capacitor.mf1_powercast () in
  checki "mf1 at 1 nJ/us" 2_300_000 (Capacitor.worst_case_recharge_us cap ~power_nj_per_us:1.0);
  checki "doubling power halves time" 1_150_000
    (Capacitor.worst_case_recharge_us cap ~power_nj_per_us:2.0);
  checki "lint default agrees" 2_300_000 (Lint.default_recharge_us ());
  (* a deadline above the threshold is fine *)
  let ok =
    Lint.run ~recharge_us:100
      (Parser.parse
         "program p;\nnv int l;\ntask t { l = call_io(Temp, Timely, 200us); stop; }")
  in
  checkb "long deadline clean" true (not (List.mem "W0402" (codes ok)))

let test_pipeline_matches_apply () =
  (* the staged pipeline and the one-shot legacy entry must agree on
     everything observable: output text, clear schedule, demand *)
  List.iter
    (fun src ->
      let p () = Parser.program src in
      let r = Transform.apply (p ()) in
      let prog, ctx = Pass.run_pipeline Pass.compile_passes (p ()) in
      checkb "no errors" true
        (not (Diagnostics.has_errors (Diagnostics.contents ctx.Pass.bag)));
      checks "same program" (Pretty.program_to_string r.Transform.prog)
        (Pretty.program_to_string prog);
      checkb "same clear schedule" true
        (r.Transform.clear_flags = ctx.Pass.art.Pass.clear_flags);
      checki "same demand" r.Transform.priv_demand_words ctx.Pass.art.Pass.demand_words)
    [
      fig2c_src;
      fig6_src;
      read_file "../examples/programs/greenhouse.eio";
      read_file "../examples/programs/motion_log.eio";
    ]

let test_compile_fixed_point () =
  (* apply (parse (pretty (apply p))) is the identity: compiled
     artifacts re-compile to themselves *)
  List.iter
    (fun src ->
      let r = Transform.apply (Parser.program src) in
      let txt = Pretty.program_to_string r.Transform.prog in
      let p2 = Parser.parse txt in
      checkb "lowered detected" true (Transform.is_lowered p2);
      let r2 = Transform.apply p2 in
      checks "fixed point" txt (Pretty.program_to_string r2.Transform.prog);
      checki "no re-added demand" 0 r2.Transform.priv_demand_words)
    [ fig6_src; read_file "../examples/programs/greenhouse.eio" ]

let test_dump_after_reparses () =
  (* every intermediate program of the pipeline is valid concrete
     syntax, and parsing it back loses nothing but spans *)
  let src = read_file "../examples/programs/motion_log.eio" in
  let dumps = ref [] in
  let observe name prog = dumps := (name, prog) :: !dumps in
  let _ = Pass.run_pipeline ~observe Pass.compile_passes (Parser.parse src) in
  checki "eight passes observed" 8 (List.length !dumps);
  List.iter
    (fun (name, prog) ->
      let txt = Pretty.program_to_string prog in
      match Parser.parse txt with
      | reparsed ->
          checkb (name ^ " dump reparses losslessly") true
            (Ast.strip reparsed = Ast.strip prog)
      | exception Parser.Error (_, msg) ->
          Alcotest.fail (Printf.sprintf "dump after %s does not reparse: %s" name msg))
    !dumps

(* {1 Loop-indexed lock array edges} *)

let test_loop_trip_one () =
  let r =
    Transform.apply
      (Parser.program
         "program p;\nnv int o;\ntask t { int x; for i = 5 to 5 { x = call_io(Temp, Single); o \
          = o + x; } stop; }")
  in
  let txt = Pretty.program_to_string r.Transform.prog in
  checkb "indexed guard normalizes base" true (contains txt "__lock_Temp_t_0[i - 5] == 0");
  let decl =
    List.find (fun d -> d.Ast.v_name = "__lock_Temp_t_0") r.Transform.prog.Ast.p_globals
  in
  checki "single-element lock array" 1 decl.Ast.v_words

let test_loop_hi_below_lo () =
  (* a loop that never runs still compiles; its site gets a scalar slot
     (no loop context) and execution leaves the body untouched *)
  let src =
    "program p;\nnv int o = 7;\ntask t { int x; for i = 5 to 3 { x = call_io(Temp, Single); o \
     = o + x; } stop; }"
  in
  let r = Transform.apply (Parser.program src) in
  let decl =
    List.find (fun d -> d.Ast.v_name = "__lock_Temp_t_0") r.Transform.prog.Ast.p_globals
  in
  checki "scalar lock slot" 1 decl.Ast.v_words;
  let m = Machine.create () in
  let t = Interp.build m (Parser.program src) in
  let o = Interp.run t in
  checkb "completes" true o.Kernel.Engine.completed;
  checki "body never ran" 7 (Interp.read_global t "o" 0)

let test_nested_static_demoted () =
  (* nesting demotes even statically bounded loops: per-iteration state
     would need one slot per (i, j) pair, which the front-end does not
     model — must be rejected, not miscompiled *)
  let p =
    Parser.parse
      "program p;\nnv int o;\ntask t { int x; for i = 0 to 3 { for j = 0 to 3 { x = \
       call_io(Temp, Single); o = o + x; } } stop; }"
  in
  checkb "E0201 on nested static" true (List.mem "E0201" (codes (Analysis.supported p)))

(* {1 Footprint} *)

let test_footprint_accounting () =
  let measure policy src =
    let m = Machine.create () in
    let t = Interp.build ~policy m (Parser.program src) in
    Footprint.measure t
  in
  let f = measure Interp.Easeio fig6_src in
  checki "fram total = app + runtime" (Footprint.fram_total f)
    (f.Footprint.fram_app_bytes + f.Footprint.fram_runtime_bytes);
  (* app data is policy-independent; runtime metadata is not *)
  let a = measure Interp.Alpaca fig6_src and pl = measure Interp.Plain fig6_src in
  checki "app bytes match across policies" f.Footprint.fram_app_bytes
    a.Footprint.fram_app_bytes;
  checkb "plain carries least runtime fram" true
    (pl.Footprint.fram_runtime_bytes <= a.Footprint.fram_runtime_bytes
    && pl.Footprint.fram_runtime_bytes <= f.Footprint.fram_runtime_bytes);
  (* more statements, more text *)
  let small = measure Interp.Easeio fig2c_src in
  checkb "bigger program, bigger text" true (f.Footprint.text_bytes > small.Footprint.text_bytes)

(* {1 Whole-program print/parse round trip} *)

let roundtrip_ok src =
  let p = Parser.parse src in
  Ast.strip (Parser.parse (Pretty.program_to_string p)) = Ast.strip p

let test_examples_roundtrip () =
  List.iter
    (fun path ->
      checkb (path ^ " roundtrips modulo spans") true (roundtrip_ok (read_file path)))
    [ "../examples/programs/greenhouse.eio"; "../examples/programs/motion_log.eio" ]

let program_gen =
  let open QCheck.Gen in
  let sem =
    oneof
      [
        return Easeio.Semantics.Single;
        return Easeio.Semantics.Always;
        map (fun d -> Easeio.Semantics.Timely d) (int_range 1 50_000);
      ]
  in
  (* arity-0 sensors keep generated programs resolve-clean; arguments
     and peripheral arrays are exercised by the shipped examples *)
  let io = oneofl [ "Temp"; "Humd"; "Pres"; "Light" ] in
  let local = oneofl [ "x"; "y" ] in
  let base =
    oneof
      [
        map2 (fun v e -> Ast.mk (Ast.Assign (v, e))) local expr_gen;
        map3 (fun i e () -> Ast.mk (Ast.Store ("buf", i, e))) expr_gen expr_gen unit;
        map3
          (fun tgt io sem ->
            Ast.mk (Ast.Call_io { target = Some tgt; io; sem; args = []; guarded = false }))
          local io sem;
      ]
  in
  let stmts =
    oneof
      [
        list_size (int_range 1 3) base;
        map2
          (fun c body -> [ Ast.mk (Ast.If (c, body, [])) ])
          expr_gen
          (list_size (int_range 1 2) base);
        map2
          (fun sem body -> [ Ast.mk (Ast.Io_block { blk_sem = sem; blk_body = body }) ])
          sem
          (list_size (int_range 1 2) base);
        map3
          (fun lo n body -> [ Ast.mk (Ast.For ("i", Ast.Int lo, Ast.Int (lo + n), body)) ])
          (int_range 0 5) (int_range 0 3)
          (list_size (int_range 1 2) base);
      ]
  in
  let globals =
    let decl name space words init =
      { Ast.v_name = name; v_space = space; v_words = words; v_init = init; v_span = Span.ghost }
    in
    map2
      (fun n init_scalar ->
        [
          decl "g0" Ast.Nv 1 (if init_scalar then Some [| n |] else None);
          decl "buf" Ast.Nv 8 None;
          decl "g2" Ast.Vol 4 None;
        ])
      (int_range 0 99) bool
  in
  map3
    (fun globals b0 b1 ->
      {
        Ast.p_name = "rnd";
        p_entry = "t0";
        p_globals = globals;
        p_tasks =
          [
            { Ast.t_name = "t0"; t_body = b0 @ [ Ast.mk (Ast.Next "t1") ]; t_span = Span.ghost };
            { Ast.t_name = "t1"; t_body = b1 @ [ Ast.mk Ast.Stop ]; t_span = Span.ghost };
          ];
      })
    globals stmts stmts

let prop_program_roundtrip =
  QCheck.Test.make ~name:"parse (pretty p) = p modulo spans for random programs" ~count:100
    (QCheck.make ~print:(fun p -> Pretty.program_to_string p) program_gen)
    (fun p ->
      Ast.strip (Parser.parse (Pretty.program_to_string p)) = Ast.strip p)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "lang"
    [
      ( "parser",
        [
          tc "expressions" `Quick test_parse_expr;
          tc "program" `Quick test_parse_program;
          tc "time suffixes" `Quick test_parse_time_suffixes;
          tc "errors" `Quick test_parse_errors;
          tc "printer roundtrip" `Quick test_roundtrip_through_printer;
          QCheck_alcotest.to_alcotest prop_printer_parser_roundtrip;
        ] );
      ( "analysis",
        [
          tc "fig6 has no cpu WAR" `Quick test_war_analysis;
          tc "detects cpu WAR" `Quick test_war_detects_cpu_war;
          tc "region split" `Quick test_region_split;
          tc "rejects unsupported" `Quick test_check_supported_rejects;
          tc "always-in-loop supported" `Quick test_always_in_loop_supported;
          tc "static-loop single supported" `Quick test_static_loop_single_supported;
        ] );
      ( "transform",
        [
          tc "inserts lock flags" `Quick test_transform_inserts_lock_flags;
          tc "timely uses clock" `Quick test_transform_timely_uses_clock;
          tc "regions and seal" `Quick test_transform_regions_and_seal;
          tc "clear flags per task" `Quick test_transform_clear_flags_per_task;
          tc "dependence marks dma" `Quick test_transform_dependence_marks_dma;
          tc "privatization buffer check" `Quick test_transform_priv_buffer_check;
          tc "exclude skips demand" `Quick test_transform_exclude_skips_demand;
          tc "loop-indexed lock arrays" `Quick test_transform_loop_indexed_arrays;
          tc "ablate semantics" `Quick test_transform_ablate_semantics;
          tc "ablate regions" `Quick test_transform_ablate_regions;
        ] );
      ( "interp",
        [
          tc "basic compute" `Quick test_interp_basic_compute;
          tc "arrays and while" `Quick test_interp_arrays_and_while;
          tc "io and radio" `Quick test_interp_io_and_radio;
          tc "lea fir" `Quick test_interp_lea_fir;
          tc "fig6 baselines corrupt" `Quick test_interp_fig6_baselines_corrupt;
          tc "fig6 easeio correct" `Quick test_interp_fig6_easeio_correct;
          tc "easeio skips single io" `Quick test_interp_easeio_skips_single;
          tc "baselines re-execute io" `Quick test_interp_baselines_reexecute_io;
          tc "easeio branch stability" `Quick test_interp_easeio_branch_stability;
          tc "fig3 timely block" `Quick test_interp_timely_block_fig3;
          tc "timer failures match golden" `Quick test_interp_under_timer_failures_matches_golden;
          tc "loop-indexed no repeats" `Quick test_interp_loop_indexed_no_repeats;
          tc "loop flags clear between instances" `Quick test_interp_loop_flags_clear_between_instances;
          tc "ablate regions corrupts" `Quick test_interp_ablate_regions_corrupts;
          tc "ablate semantics re-executes" `Quick test_interp_ablate_semantics_reexecutes;
          tc "shipped programs run" `Quick test_shipped_programs;
          tc "footprint ordering" `Quick test_footprint_ordering;
          QCheck_alcotest.to_alcotest prop_easeio_always_matches_golden;
        ] );
      ( "diagnostics",
        [
          tc "resolve collects all" `Quick test_resolve_collects_all;
          tc "supported collects all" `Quick test_supported_collects_all;
          tc "caret render" `Quick test_diagnostic_render_caret;
          tc "parse error has span" `Quick test_parse_error_has_span;
          tc "json shape" `Quick test_diagnostic_json_shape;
        ] );
      ( "pipeline",
        [
          tc "lint fixtures" `Quick test_lint_fixtures;
          tc "lints clean on compiled output" `Quick test_lint_clean_on_compiled_output;
          tc "capacitor recharge lint threshold" `Quick test_capacitor_recharge;
          tc "pipeline matches apply" `Quick test_pipeline_matches_apply;
          tc "compile fixed point" `Quick test_compile_fixed_point;
          tc "dump-after reparses" `Quick test_dump_after_reparses;
        ] );
      ( "loop edges",
        [
          tc "trip count one" `Quick test_loop_trip_one;
          tc "hi below lo" `Quick test_loop_hi_below_lo;
          tc "nested static demoted" `Quick test_nested_static_demoted;
        ] );
      ( "footprint",
        [ tc "accounting identities" `Quick test_footprint_accounting ] );
      ( "roundtrip",
        [
          tc "shipped examples" `Quick test_examples_roundtrip;
          QCheck_alcotest.to_alcotest prop_program_roundtrip;
        ] );
    ]
