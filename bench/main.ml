(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) on the simulated platform, plus bechamel
   microbenchmarks of the simulator itself (one per table/figure
   workload).

   Usage: dune exec bench/main.exe --
            [--reps N] [--jobs N] [--json PATH] [--only fig7,table4,...]
   The paper runs each application 1000 times — pass --reps 1000 for
   the paper protocol. Seed sweeps fan out over --jobs domains
   (default: one per core, Expkit.Pool.default_jobs); the printed
   tables are bit-identical for every --jobs value because aggregates
   are folded in seed order. --json PATH additionally writes every
   aggregate plus wall-clock/speedup metadata as machine-readable
   JSON. *)

open Platform
open Apps

let jobs = ref (Expkit.Pool.default_jobs ())

(* One serialized stderr reporter for the whole harness: every stderr
   line goes through [Obs.Progress.log] (flushed, never interleaving
   with the heartbeat), and sweeps tick the optional --progress
   heartbeat. Pure observation — all printed aggregates are identical
   with any mode. *)
let reporter : Obs.Progress.t option ref = ref None

let tick_opt () = Option.map (fun p () -> Obs.Progress.tick p) !reporter
let add_total n = Option.iter (fun p -> Obs.Progress.add_total p n) !reporter

let baselines = [ Common.Alpaca; Common.Ink; Common.Easeio ]
let with_op = [ Common.Alpaca; Common.Ink; Common.Easeio; Common.Easeio_op ]

let spec_breakdown ~runs (spec : Common.spec) variants =
  add_total (runs * List.length variants);
  Expkit.Experiments.breakdown ~jobs:!jobs ?tick:(tick_opt ()) ~runs
    (fun ~variant ~failure ~seed -> spec.Common.run variant ~failure ~seed)
    ~label:Common.variant_name variants

(* {1 JSON collection (--json)}

   Every experiment records its aggregates as it computes them; the
   driver adds wall-clock and speedup metadata and writes one document
   at exit. Collection is append-only and cheap, so it is always on. *)

let breakdown_json (b : Expkit.Experiments.breakdown) =
  Expkit.Json.Obj
    [
      ("runtime", Expkit.Json.String b.Expkit.Experiments.b_label);
      ("app_ms", Expkit.Json.Float b.Expkit.Experiments.b_app_ms);
      ("overhead_ms", Expkit.Json.Float b.Expkit.Experiments.b_ovh_ms);
      ("wasted_ms", Expkit.Json.Float b.Expkit.Experiments.b_wasted_ms);
      ("total_ms", Expkit.Json.Float b.Expkit.Experiments.b_total_ms);
      ("energy_uj", Expkit.Json.Float b.Expkit.Experiments.b_energy_uj);
      ("power_failures", Expkit.Json.Float b.Expkit.Experiments.b_pf);
      ("io_execs", Expkit.Json.Float b.Expkit.Experiments.b_io);
      ("redundant_io", Expkit.Json.Float b.Expkit.Experiments.b_redundant);
      ("incorrect_runs", Expkit.Json.Int b.Expkit.Experiments.b_incorrect);
      ("runs", Expkit.Json.Int b.Expkit.Experiments.b_runs);
    ]

let json_workloads : (string * Expkit.Json.t) list ref = ref []

let record_workload key rows =
  if not (List.mem_assoc key !json_workloads) then
    json_workloads := !json_workloads @ [ (key, Expkit.Json.List (List.map breakdown_json rows)) ]

let json_experiments : (string * Expkit.Json.t) list ref = ref []

let record_experiment key v =
  if not (List.mem_assoc key !json_experiments) then
    json_experiments := !json_experiments @ [ (key, v) ]

(* {1 Table 3} *)

let table3 ~reps:_ =
  print_endline (Expkit.Tablefmt.heading "Table 3: tasks and I/O functions per application");
  let w = [ 14; 8; 10 ] in
  print_endline (Expkit.Tablefmt.row w [ "App"; "Tasks"; "I/O fns" ]);
  print_endline (Expkit.Tablefmt.rule w);
  List.iter
    (fun s ->
      print_endline
        (Expkit.Tablefmt.row w
           [ s.Common.app_name; string_of_int s.Common.tasks; string_of_int s.Common.io_functions ]))
    Catalog.all

(* {1 Figure 7 + Table 4 + Figure 8: uni-task applications} *)

let uni_results = Hashtbl.create 4

let uni ~reps spec =
  match Hashtbl.find_opt uni_results (spec.Common.app_name, reps) with
  | Some r -> r
  | None ->
      let r = spec_breakdown ~runs:reps spec baselines in
      Hashtbl.replace uni_results (spec.Common.app_name, reps) r;
      record_workload spec.Common.app_name r;
      r

let fig7 ~reps =
  Expkit.Experiments.print_breakdown_table
    ~title:"Figure 7a: Single semantic - NVM to NVM DMA (uni-task)"
    [ uni ~reps Uni.dma ];
  Expkit.Experiments.print_breakdown_table
    ~title:"Figure 7b: Timely semantic - temperature sensing (uni-task)"
    [ uni ~reps Uni.temp ];
  Expkit.Experiments.print_breakdown_table
    ~title:"Figure 7c: Always semantic - LEA (uni-task)"
    [ uni ~reps Uni.lea ]

let table4 ~reps =
  Expkit.Experiments.print_table4
    [
      ("Single (DMA)", uni ~reps Uni.dma);
      ("Timely (Temp)", uni ~reps Uni.temp);
      ("Always (LEA)", uni ~reps Uni.lea);
    ]

let fig8 ~reps =
  Expkit.Experiments.print_energy_table
    ~title:"Figure 8: average energy per uni-task application"
    [
      ("Single (DMA)", uni ~reps Uni.dma);
      ("Timely (Temp)", uni ~reps Uni.temp);
      ("Always (LEA)", uni ~reps Uni.lea);
    ]

(* {1 Figure 10 + Figure 11 + Figure 12: multi-task applications} *)

let multi_results = Hashtbl.create 4

let multi ~reps spec =
  match Hashtbl.find_opt multi_results (spec.Common.app_name, reps) with
  | Some r -> r
  | None ->
      let r = spec_breakdown ~runs:reps spec with_op in
      Hashtbl.replace multi_results (spec.Common.app_name, reps) r;
      record_workload spec.Common.app_name r;
      r

let fig10 ~reps =
  Expkit.Experiments.print_breakdown_table
    ~title:"Figure 10: FIR filter (multi-task, incl. EaseIO/Op)"
    [ multi ~reps Fir.spec ];
  Expkit.Experiments.print_breakdown_table
    ~title:"Figure 10: weather classifier (multi-task)"
    [ multi ~reps Weather.spec ]

let fig11 ~reps =
  Expkit.Experiments.print_energy_table
    ~title:"Figure 11: average energy of the multi-task applications"
    [ ("FIR filter", multi ~reps Fir.spec); ("Weather App.", multi ~reps Weather.spec) ]

let fig12 ~reps = Expkit.Experiments.print_fig12 (multi ~reps Fir.spec)

(* {1 Table 5: single- vs double-buffered DNN} *)

let table5 ~reps =
  print_endline
    (Expkit.Tablefmt.heading
       "Table 5: weather classifier, double- vs single-buffered DNN");
  let w = [ 10; 12; 12; 12; 6 ] in
  print_endline
    (Expkit.Tablefmt.row w [ "Runtime"; "Buffering"; "Cont."; "Intermittent"; "Corr." ]);
  print_endline (Expkit.Tablefmt.rule w);
  let reps = max 20 (reps / 5) in
  let rows = ref [] in
  List.iter
    (fun buffering ->
      List.iter
        (fun v ->
          let cont =
            Weather.run_once ~buffering v ~failure:Failure.No_failures ~seed:1
          in
          add_total reps;
          let ones =
            Expkit.Pool.map_seeds ~jobs:!jobs ?tick:(tick_opt ()) ~runs:reps (fun ~seed ->
                Weather.run_once ~buffering v ~failure:Expkit.Experiments.paper_failures ~seed)
          in
          let bad = ref 0 and total = ref 0. in
          Array.iter
            (fun one ->
              total := !total +. float_of_int one.Expkit.Run.total_us;
              match one.Expkit.Run.correct with Some false -> incr bad | _ -> ())
            ones;
          let buf_name = match buffering with `Double -> "double" | `Single -> "single" in
          let cont_ms = float_of_int cont.Expkit.Run.total_us /. 1000. in
          let avg_ms = !total /. float_of_int reps /. 1000. in
          rows :=
            !rows
            @ [
                Expkit.Json.Obj
                  [
                    ("runtime", Expkit.Json.String (Common.variant_name v));
                    ("buffering", Expkit.Json.String buf_name);
                    ("continuous_ms", Expkit.Json.Float cont_ms);
                    ("intermittent_ms", Expkit.Json.Float avg_ms);
                    ("incorrect_runs", Expkit.Json.Int !bad);
                    ("runs", Expkit.Json.Int reps);
                  ];
              ];
          print_endline
            (Expkit.Tablefmt.row w
               [
                 Common.variant_name v;
                 buf_name;
                 Expkit.Tablefmt.ms cont_ms;
                 Expkit.Tablefmt.ms avg_ms;
                 (if !bad = 0 then "ok" else Printf.sprintf "%dx" !bad);
               ]))
        baselines;
      print_endline (Expkit.Tablefmt.rule w))
    [ `Double; `Single ];
  record_experiment "table5" (Expkit.Json.List !rows)

(* {1 Table 6: memory and code size} *)

let ir_footprint variant src =
  let m = Machine.create () in
  let t =
    Lang.Interp.build ~policy:(Common.policy_of variant) ~extra_io:[ Common.lea_fir_seg ] m
      (Lang.Parser.program src)
  in
  Lang.Footprint.measure t

let weather_footprint variant =
  let m = Machine.create () in
  let app, _, _ = Weather.build variant m in
  ignore app;
  let fram = Machine.layout m Memory.Fram and sram = Machine.layout m Memory.Sram in
  let rt_words =
    Layout.used_matching fram ~prefix:"rt."
    + Layout.used_matching fram ~prefix:"easeio."
    + Layout.used_matching fram ~prefix:"kernel."
  in
  let text =
    match variant with
    | Common.Alpaca -> 2_900
    | Common.Ink -> 3_000
    | Common.Easeio | Common.Easeio_op -> 3_600
  in
  {
    Lang.Footprint.text_bytes = text;
    ram_bytes = 2 * Layout.used sram;
    fram_app_bytes = 2 * (Layout.used fram - rt_words);
    fram_runtime_bytes = 2 * rt_words;
  }

let table6 ~reps:_ =
  print_endline (Expkit.Tablefmt.heading "Table 6: memory and code size requirements (bytes)");
  let w = [ 14; 10; 8; 8; 10; 12 ] in
  print_endline
    (Expkit.Tablefmt.row w [ "App"; "Runtime"; ".text"; "RAM"; "FRAM"; "rt-FRAM" ]);
  print_endline (Expkit.Tablefmt.rule w);
  let apps =
    [
      ("LEA", `Ir Uni.lea_source);
      ("DMA", `Ir Uni.dma_source);
      ("Temp.", `Ir Uni.temp_source);
      ("FIR filter", `Ir (Fir.source ~exclude_coefs:false));
      ("Weather App.", `Weather);
    ]
  in
  List.iter
    (fun (name, kind) ->
      List.iter
        (fun v ->
          let fp =
            match kind with `Ir src -> ir_footprint v src | `Weather -> weather_footprint v
          in
          print_endline
            (Expkit.Tablefmt.row w
               [
                 name;
                 Common.variant_name v;
                 string_of_int fp.Lang.Footprint.text_bytes;
                 string_of_int fp.Lang.Footprint.ram_bytes;
                 string_of_int (Lang.Footprint.fram_total fp);
                 string_of_int fp.Lang.Footprint.fram_runtime_bytes;
               ]))
        baselines;
      print_endline (Expkit.Tablefmt.rule w))
    apps

(* {1 Figure 13: real-world RF harvesting across distance}

   The weather application on the energy-driven failure model: a small
   storage capacitor charged by a Powercast-style RF source. Close to
   the transmitter the harvest rate covers the application's draw and
   no failures occur; as distance grows, peripheral bursts (radio,
   camera) outrun the harvest, the capacitor empties, and the long
   recharge intervals dominate execution time — exactly the Fig. 13
   regime. Energy costs are scaled to the paper's board-level draw
   (our per-op model only covers the MCU core). *)

let fig13_distances = [ 52.; 55.; 58.; 61.; 64. ]
let fig13_episodes = 10

let fig13_run variant ~distance ~seed =
  let harvester = Harvester.rf ~efficiency:0.12 ~distance_inch:distance () in
  let capacitor = Capacitor.create ~capacity_nj:20_000. ~on_level_nj:15_000. in
  let cost = Cost.scale 2.0 Cost.msp430fr5994 in
  let m = Machine.create ~seed ~cost ~failure:Failure.Energy_driven ~harvester ~capacitor () in
  let app, hooks, _radio = Weather.build variant m in
  (* the device keeps classifying while harvesting: several executions
     back to back, sharing the capacitor state *)
  for _ = 1 to fig13_episodes do
    ignore (Kernel.Engine.run ~hooks m app)
  done;
  (Machine.now m, Machine.failures m)

let fig13 ~reps =
  print_endline
    (Expkit.Tablefmt.heading
       "Figure 13: execution time vs RF transmitter distance (difference to EaseIO/Op)");
  let reps = max 10 (reps / 50) in
  let w = [ 10; 12; 12; 12; 8 ] in
  print_endline
    (Expkit.Tablefmt.row w [ "Distance"; "Runtime"; "Total"; "vs EaseIO/Op"; "PF" ]);
  print_endline (Expkit.Tablefmt.rule w);
  let rows = ref [] in
  List.iter
    (fun distance ->
      let avg variant =
        add_total reps;
        let pairs =
          Expkit.Pool.map_seeds ~jobs:!jobs ?tick:(tick_opt ()) ~runs:reps (fun ~seed ->
              fig13_run variant ~distance ~seed)
        in
        let t = ref 0 and pf = ref 0 in
        Array.iter
          (fun (us, n) ->
            t := !t + us;
            pf := !pf + n)
          pairs;
        (float_of_int !t /. float_of_int reps /. 1000., float_of_int !pf /. float_of_int reps)
      in
      let base, _ = avg Common.Easeio_op in
      List.iter
        (fun v ->
          let total, pf = avg v in
          rows :=
            !rows
            @ [
                Expkit.Json.Obj
                  [
                    ("distance_inch", Expkit.Json.Float distance);
                    ("runtime", Expkit.Json.String (Common.variant_name v));
                    ("total_ms", Expkit.Json.Float total);
                    ("delta_vs_easeio_op_ms", Expkit.Json.Float (total -. base));
                    ("power_failures", Expkit.Json.Float pf);
                    ("runs", Expkit.Json.Int reps);
                  ];
              ];
          print_endline
            (Expkit.Tablefmt.row w
               [
                 Printf.sprintf "%.0fin" distance;
                 Common.variant_name v;
                 Expkit.Tablefmt.ms total;
                 Printf.sprintf "%+.2fms" (total -. base);
                 Expkit.Tablefmt.f1 pf;
               ]))
        with_op;
      print_endline (Expkit.Tablefmt.rule w))
    fig13_distances;
  record_experiment "fig13" (Expkit.Json.List !rows)

(* {1 Ablations (DESIGN.md §6): which EaseIO mechanism buys what}

   Three targeted experiments, each isolating one mechanism on the
   workload that depends on it:
   - regional privatization -> the Fig. 6 kernel (CPU reads around a
     Single NVM->NVM DMA);
   - re-execution semantics, correctness -> the FIR filter (WAR through
     the shared signal buffer);
   - re-execution semantics, efficiency -> the uni-task DMA app (wasted
     work returns to baseline levels). *)

let fig6_kernel =
  {|
program fig6pad;
nv int a[64];
nv int b[64];
nv int out;

task t {
  int z;
  int i;
  int acc;
  z = b[0];
  dma_copy(a[0], b[0], 64);
  acc = 0;
  for i = 0 to 1399 { acc = acc + ((z + i) % 7); }
  a[0] = z;
  out = acc;
  stop;
}
|}

let fig6_kernel_run ~ablate_regions ~seed =
  let setup t =
    let m = Common.Exec.machine t in
    Common.flash m (Common.Exec.global_loc t "a") (Array.init 64 (fun i -> 10 + i));
    Common.flash m (Common.Exec.global_loc t "b") (Array.init 64 (fun i -> 50 + i))
  in
  let check t =
    (* golden: b = old a; a unchanged except a[0] = old b[0] *)
    let ok = ref (Common.Exec.read_global t "a" 0 = 50) in
    for i = 1 to 63 do
      if Common.Exec.read_global t "a" i <> 10 + i then ok := false
    done;
    for i = 0 to 63 do
      if Common.Exec.read_global t "b" i <> 10 + i then ok := false
    done;
    !ok
  in
  Common.run_ir ~src:fig6_kernel ~setup ~check ~ablate_regions Common.Easeio
    ~failure:Expkit.Experiments.paper_failures ~seed

let ablations ~reps =
  let reps = max 100 (reps / 4) in
  let w = [ 34; 10; 10; 12 ] in
  let line label total wasted bad =
    print_endline
      (Expkit.Tablefmt.row w
         [
           label;
           Expkit.Tablefmt.ms total;
           Expkit.Tablefmt.ms wasted;
           Printf.sprintf "%d/%d" bad reps;
         ])
  in
  let aggregate runner =
    add_total reps;
    let ones = Expkit.Pool.map_seeds ~jobs:!jobs ?tick:(tick_opt ()) ~runs:reps runner in
    let total = ref 0. and wasted = ref 0. and bad = ref 0 in
    Array.iter
      (fun one ->
        total := !total +. float_of_int one.Expkit.Run.total_us;
        wasted := !wasted +. float_of_int one.Expkit.Run.wasted_us;
        match one.Expkit.Run.correct with Some false -> incr bad | _ -> ())
      ones;
    let n = float_of_int reps in
    (!total /. n /. 1000., !wasted /. n /. 1000., !bad)
  in
  print_endline
    (Expkit.Tablefmt.heading "Ablations: EaseIO with one mechanism disabled at a time");
  print_endline (Expkit.Tablefmt.row w [ "Configuration"; "Total"; "Wasted"; "Incorrect" ]);
  print_endline (Expkit.Tablefmt.rule w);
  let pf = Expkit.Experiments.paper_failures in
  let cases =
    [
      ( "fig6 kernel: full EaseIO",
        fun ~seed -> fig6_kernel_run ~ablate_regions:false ~seed );
      ( "fig6 kernel: no regional priv.",
        fun ~seed -> fig6_kernel_run ~ablate_regions:true ~seed );
      ( "FIR: full EaseIO",
        fun ~seed -> Fir.run_ablated ~ablate_regions:false ~ablate_semantics:false ~failure:pf ~seed () );
      ( "FIR: no re-exec semantics",
        fun ~seed -> Fir.run_ablated ~ablate_regions:false ~ablate_semantics:true ~failure:pf ~seed () );
      ( "DMA app: full EaseIO",
        fun ~seed -> Uni.dma_run_ablated ~ablate_semantics:false ~failure:pf ~seed );
      ( "DMA app: no re-exec semantics",
        fun ~seed -> Uni.dma_run_ablated ~ablate_semantics:true ~failure:pf ~seed );
    ]
  in
  let rows = ref [] in
  List.iter
    (fun (label, runner) ->
      let total, wasted, bad = aggregate runner in
      rows :=
        !rows
        @ [
            Expkit.Json.Obj
              [
                ("configuration", Expkit.Json.String label);
                ("total_ms", Expkit.Json.Float total);
                ("wasted_ms", Expkit.Json.Float wasted);
                ("incorrect_runs", Expkit.Json.Int bad);
                ("runs", Expkit.Json.Int reps);
              ];
          ];
      line label total wasted bad)
    cases;
  record_experiment "ablations" (Expkit.Json.List !rows)

(* {1 Prefix-resume: checkpointed vs from-power-on boundary sweep}

   Boundary sweeps resume each nth:k case from the pacer run's engine
   checkpoint instead of replaying the prefix from power on. Both
   paths are run sequentially over the same sweep, their reports must
   agree structurally (the harness exits nonzero otherwise — the
   byte-identity claim, enforced on every bench run), and both wall
   clocks land in the JSON: *_wall_s rows are informational,
   *_runs_per_s rows are gated against a throughput collapse. *)

let sweep_resume ~reps =
  (* the sweep cost is fixed (one case per boundary), so scale the
     stride, not the repetitions: exhaustive at gate/baseline reps,
     strided for the quick smoke *)
  let stride = if reps >= 100 then 1 else 8 in
  let sweep = Faultkit.Campaign.Boundaries { stride } in
  let timed resume =
    let t0 = Unix.gettimeofday () in
    let r =
      Faultkit.Campaign.run ~jobs:1 ~resume ~sweep ~variants:[ Common.Easeio ] Weather.spec
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let resumed, resumed_s = timed true in
  let replay, replay_s = timed false in
  if Faultkit.Campaign.to_json resumed <> Faultkit.Campaign.to_json replay then begin
    Obs.Progress.log "sweep-resume: resumed report differs from the from-power-on replay";
    exit 1
  end;
  let _, run = Faultkit.Campaign.coverage_totals resumed in
  let per_s wall = if wall > 0. then float_of_int run /. wall else 0. in
  print_endline
    (Expkit.Tablefmt.heading "Prefix-resume: checkpointed vs from-power-on boundary sweep");
  let w = [ 26; 12; 12; 10 ] in
  print_endline (Expkit.Tablefmt.row w [ "Sweep"; "resumed"; "replay"; "speedup" ]);
  print_endline (Expkit.Tablefmt.rule w);
  print_endline
    (Expkit.Tablefmt.row w
       [
         Printf.sprintf "Weather/EaseIO, %d cases" run;
         Printf.sprintf "%.2fs" resumed_s;
         Printf.sprintf "%.2fs" replay_s;
         Printf.sprintf "%.1fx" (if resumed_s > 0. then replay_s /. resumed_s else 1.);
       ]);
  record_experiment "sweep_resume"
    (Expkit.Json.Obj
       [
         ("app", Expkit.Json.String Weather.spec.Common.app_name);
         ("runtime", Expkit.Json.String "EaseIO");
         ("stride", Expkit.Json.Int stride);
         ("cases", Expkit.Json.Int run);
         ("reports_identical", Expkit.Json.Bool true);
         ("resumed_wall_s", Expkit.Json.Float resumed_s);
         ("replay_wall_s", Expkit.Json.Float replay_s);
         ("resumed_runs_per_s", Expkit.Json.Float (per_s resumed_s));
         ("replay_runs_per_s", Expkit.Json.Float (per_s replay_s));
       ])

(* {1 Campaign service: cold compute vs warm cache replay}

   The same Weather sweep pushed through an in-process `easeio serve`
   twice: the cold request computes, the warm one replays the memoized
   document. Both must be byte-identical to the one-shot
   [Campaign.run] path (the harness exits nonzero otherwise — the
   serve determinism claim, enforced on every bench run), and the warm
   replay must be at least 5x faster than the cold compute — that is
   the whole point of the result cache, so a miss here is a regression
   even though wall clocks are otherwise informational. *)

let serve_cache ~reps =
  let stride = if reps >= 100 then 1 else 8 in
  let sweep = Faultkit.Campaign.Boundaries { stride } in
  let server =
    Serve.Server.start { (Serve.Server.default_config (Serve.Server.Tcp 0)) with jobs = 2 }
  in
  Fun.protect ~finally:(fun () -> Serve.Server.stop server) @@ fun () ->
  let addr = Serve.Server.Tcp (Serve.Server.port server) in
  let payload =
    Serve.Protocol.faults_request ~id:1 ~runtime:Common.Easeio ~sweep ~seed:1
      ~app:Weather.spec.Common.app_name ()
  in
  let fetch () =
    let c = Serve.Client.connect_retry addr in
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    let t0 = Unix.gettimeofday () in
    match Serve.Client.rpc c ~id:1 payload with
    | Ok o -> (o, Unix.gettimeofday () -. t0)
    | Error _ ->
        Obs.Progress.log "serve-cache: request failed";
        exit 1
  in
  let cold, cold_s = fetch () in
  let warm, warm_s = fetch () in
  let report =
    Faultkit.Campaign.run ~jobs:1 ~resume:true ~sweep ~variants:[ Common.Easeio ] Weather.spec
  in
  let oneshot = Expkit.Json.to_string (Faultkit.Campaign.to_json report) in
  if cold.Serve.Client.doc <> oneshot || warm.Serve.Client.doc <> oneshot then begin
    Obs.Progress.log "serve-cache: server document differs from the one-shot campaign";
    exit 1
  end;
  let speedup = cold_s /. Float.max warm_s 1e-6 in
  if (not warm.Serve.Client.result_cached) || speedup < 5. then begin
    Obs.Progress.log "serve-cache: warm replay not cached or under the 5x floor (%.1fx)" speedup;
    exit 1
  end;
  let stats = Serve.Server.cache_stats server in
  let cases =
    List.fold_left
      (fun acc (c : Faultkit.Campaign.cell) -> acc + c.Faultkit.Campaign.cases)
      0 report.Faultkit.Campaign.cells
  in
  let per_s wall = if wall > 0. then float_of_int cases /. wall else 0. in
  print_endline (Expkit.Tablefmt.heading "Campaign service: cold compute vs warm cache replay");
  let w = [ 26; 12; 12; 10 ] in
  print_endline (Expkit.Tablefmt.row w [ "Sweep"; "cold"; "warm"; "speedup" ]);
  print_endline (Expkit.Tablefmt.rule w);
  print_endline
    (Expkit.Tablefmt.row w
       [
         Printf.sprintf "Weather/EaseIO, %d cases" cases;
         Printf.sprintf "%.2fs" cold_s;
         Printf.sprintf "%.4fs" warm_s;
         Printf.sprintf "%.0fx" speedup;
       ]);
  record_experiment "serve_cache"
    (Expkit.Json.Obj
       [
         ("app", Expkit.Json.String Weather.spec.Common.app_name);
         ("runtime", Expkit.Json.String "EaseIO");
         ("stride", Expkit.Json.Int stride);
         ("cases", Expkit.Json.Int cases);
         ("matches_oneshot", Expkit.Json.Bool true);
         ("warm_cached", Expkit.Json.Bool warm.Serve.Client.result_cached);
         ("cache_hits", Expkit.Json.Int stats.Serve.Cache.hits);
         ("cache_misses", Expkit.Json.Int stats.Serve.Cache.misses);
         ("cache_computes", Expkit.Json.Int stats.Serve.Cache.computes);
         ("cold_wall_s", Expkit.Json.Float cold_s);
         ("warm_wall_s", Expkit.Json.Float warm_s);
         ("warm_speedup_wall_s", Expkit.Json.Float speedup);
         ("cold_runs_per_s", Expkit.Json.Float (per_s cold_s));
       ])

(* {1 Bechamel microbenchmarks: simulator cost of each experiment's
   workload} *)

let microbenches () =
  let open Bechamel in
  let quick_failure =
    Failure.Timer { on_min_us = 5_000; on_max_us = 20_000; off_min_us = 2_000; off_max_us = 15_000 }
  in
  let tests =
    [
      Test.make ~name:"fig7-dma-app-run"
        (Staged.stage (fun () ->
             ignore (Uni.dma.Common.run Common.Easeio ~failure:quick_failure ~seed:1)));
      Test.make ~name:"fig7-temp-app-run"
        (Staged.stage (fun () ->
             ignore (Uni.temp.Common.run Common.Easeio ~failure:quick_failure ~seed:1)));
      Test.make ~name:"fig7-lea-app-run"
        (Staged.stage (fun () ->
             ignore (Uni.lea.Common.run Common.Easeio ~failure:quick_failure ~seed:1)));
      Test.make ~name:"fig10-fir-app-run"
        (Staged.stage (fun () ->
             ignore (Fir.spec.Common.run Common.Easeio ~failure:quick_failure ~seed:1)));
      Test.make ~name:"fig10-weather-app-run"
        (Staged.stage (fun () ->
             ignore (Weather.run_once Common.Easeio ~failure:quick_failure ~seed:1)));
      Test.make ~name:"table6-transform-fir"
        (Staged.stage (fun () ->
             ignore (Lang.Transform.apply (Lang.Parser.program (Fir.source ~exclude_coefs:false)))));
      Test.make ~name:"machine-charge-1k"
        (Staged.stage
           (let m = Machine.create () in
            fun () -> Machine.cpu m 1_000));
      Test.make ~name:"dma-copy-1k-words"
        (Staged.stage
           (let m = Machine.create () in
            let src = Machine.alloc m Memory.Fram ~name:"bsrc" ~words:1_000 in
            let dst = Machine.alloc m Memory.Fram ~name:"bdst" ~words:1_000 in
            fun () -> Periph.Dma.copy m ~src:(Loc.fram src) ~dst:(Loc.fram dst) ~words:1_000));
    ]
  in
  print_endline (Expkit.Tablefmt.heading "Simulator microbenchmarks (bechamel)");
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n%!" name est
        | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
      results
  in
  List.iter benchmark tests

(* {1 --trace-dir: one Chrome trace per runtime variant}

   Each trace is validated before it is written: the per-task buckets
   and I/O counts folded out of the event stream must equal the run's
   own [Kernel.Metrics] totals, and the trace-side redundant-I/O count
   must equal the golden-run comparison the aggregates use. Wired into
   @bench-smoke, so bitrot in the tracing subsystem fails the build. *)

let variant_slug v =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | '0' .. '9' | '-' | '_' -> c | _ -> '-')
    (String.lowercase_ascii (Common.variant_name v))

let trace_exports dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun v ->
      let recorder = Trace.Recorder.create () in
      let one =
        Weather.run_once
          ~sink:(Trace.Recorder.sink recorder)
          v ~failure:Expkit.Experiments.paper_failures ~seed:1
      in
      let events = Trace.Recorder.events recorder in
      let profile = Trace.Profile.of_events events in
      (match
         Trace.Profile.reconcile profile ~app_us:one.Expkit.Run.app_us
           ~ovh_us:one.Expkit.Run.ovh_us ~wasted_us:one.Expkit.Run.wasted_us
           ~commits:one.Expkit.Run.commits ~attempts:one.Expkit.Run.attempts
           ~io:one.Expkit.Run.io
       with
      | Ok () -> ()
      | Error msg ->
          Obs.Progress.log "trace validation failed (%s): %s" (Common.variant_name v) msg;
          exit 1);
      let golden = Weather.run_once v ~failure:Failure.No_failures ~seed:0 in
      let trace_red = Trace.Profile.redundant profile ~golden:golden.Expkit.Run.io in
      let metrics_red = Expkit.Run.redundant_vs_golden ~golden one in
      if trace_red <> metrics_red then begin
        Obs.Progress.log "trace validation failed (%s): redundant io %d from trace, %d from metrics"
          (Common.variant_name v) trace_red metrics_red;
        exit 1
      end;
      let path = Filename.concat dir (Printf.sprintf "weather-%s.json" (variant_slug v)) in
      Expkit.Json.to_file path (Trace.Export.chrome events);
      Printf.printf "trace: %s (%d events, %d redundant io)\n" path (List.length events) trace_red)
    with_op

(* {1 Driver} *)

let all_experiments =
  [
    ("table3", table3);
    ("fig7", fig7);
    ("table4", table4);
    ("fig8", fig8);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("table5", table5);
    ("table6", table6);
    ("fig13", fig13);
    ("ablations", ablations);
    ("sweep_resume", sweep_resume);
    ("serve_cache", serve_cache);
  ]

(* {1 Interpreter throughput}

   Single-run wall time of the tree-walking interpreter vs the bytecode
   VM over the task-language evaluation apps — the simulator hot path.
   The VM row is what every sweep above actually paid; the tree row is
   the conformance oracle's cost. Printed with --profile-interp, and
   always recorded in the --json meta. *)

let interp_workloads = [ Uni.dma; Uni.temp; Uni.lea; Fir.spec ]

let time_interp interp spec runs =
  Common.default_interp := interp;
  (* warm-up run: populates the per-domain arena cache (vm) and faults
     in allocations either way *)
  ignore (spec.Common.run Common.Easeio ~failure:Expkit.Experiments.paper_failures ~seed:1);
  let t0 = Unix.gettimeofday () in
  for seed = 1 to runs do
    ignore (spec.Common.run Common.Easeio ~failure:Expkit.Experiments.paper_failures ~seed)
  done;
  Unix.gettimeofday () -. t0

let interp_rows = ref None

let interp_profile ~reps =
  match !interp_rows with
  | Some rows -> rows
  | None ->
      let saved = !Common.default_interp in
      let runs = max 20 (min 200 reps) in
      let rows =
        List.map
          (fun spec ->
            let tree_s = time_interp Common.Tree_walk spec runs in
            let vm_s = time_interp Common.Bytecode spec runs in
            (spec.Common.app_name, runs, tree_s, vm_s))
          interp_workloads
      in
      Common.default_interp := saved;
      interp_rows := Some rows;
      rows

let print_interp_profile ~reps =
  let rows = interp_profile ~reps in
  print_endline
    (Expkit.Tablefmt.heading "Interpreter throughput: tree-walker vs bytecode VM (per run)");
  let w = [ 12; 10; 10; 10 ] in
  print_endline (Expkit.Tablefmt.row w [ "Workload"; "tree us"; "vm us"; "speedup" ]);
  print_endline (Expkit.Tablefmt.rule w);
  List.iter
    (fun (name, runs, tree_s, vm_s) ->
      let per u = u /. float_of_int runs *. 1e6 in
      print_endline
        (Expkit.Tablefmt.row w
           [
             name;
             Printf.sprintf "%.1f" (per tree_s);
             Printf.sprintf "%.1f" (per vm_s);
             Printf.sprintf "%.1fx" (if vm_s > 0. then tree_s /. vm_s else 1.);
           ]))
    rows

let interp_meta ~reps =
  let rows = interp_profile ~reps in
  let per_s t runs = if t > 0. then float_of_int runs /. t else 0. in
  ( Expkit.Json.Obj
      (List.map (fun (n, runs, tree_s, _) -> (n, Expkit.Json.Float (per_s tree_s runs))) rows),
    Expkit.Json.Obj
      (List.map (fun (n, runs, _, vm_s) -> (n, Expkit.Json.Float (per_s vm_s runs))) rows) )

(* {1 Provenance}

   Recorded in the --json meta so a committed baseline says where it
   came from. Every field is best-effort and host-dependent, so the
   report gate treats all of meta.* as informational. *)

let git_sha () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | ic ->
      let line = try input_line ic with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      if status = Unix.WEXITED 0 && line <> "" then line else "unknown"
  | exception Unix.Unix_error _ -> "unknown"

(* dune places the executable under _build/<profile>/bench/ *)
let dune_profile () =
  let parts = String.split_on_char '/' Sys.executable_name in
  let rec go = function
    | "_build" :: profile :: _ -> profile
    | _ :: tl -> go tl
    | [] -> "unknown"
  in
  go parts

(* Speedup metadata for --json: time one small representative sweep
   sequentially and at the configured --jobs. Runs only when a JSON
   report is requested so the default invocation's cost is unchanged. *)
let calibration ~reps =
  let runs = max 8 (min 48 reps) in
  let sweep j =
    let t0 = Unix.gettimeofday () in
    ignore
      (Expkit.Run.average ~jobs:j ~runs
         ~golden:(fun () -> Uni.temp.Common.run Common.Easeio ~failure:Failure.No_failures ~seed:0)
         (fun ~seed ->
           Uni.temp.Common.run Common.Easeio ~failure:Expkit.Experiments.paper_failures ~seed));
    Unix.gettimeofday () -. t0
  in
  let seq_s = sweep 1 in
  let par_s = if !jobs = 1 then seq_s else sweep !jobs in
  Expkit.Json.Obj
    [
      ("workload", Expkit.Json.String "Temp.");
      ("runs", Expkit.Json.Int runs);
      ("sequential_s", Expkit.Json.Float seq_s);
      ("parallel_s", Expkit.Json.Float par_s);
      ("speedup", Expkit.Json.Float (if par_s > 0. then seq_s /. par_s else 1.));
    ]

let () =
  let reps = ref 1000 in
  let only = ref [] in
  let bench = ref true in
  let json_path = ref None in
  let trace_dir = ref None in
  let profile = ref false in
  let usage =
    "usage: main.exe [--reps N] [--jobs N] [--json PATH] [--trace-dir DIR] [--only a,b] \
     [--no-micro] [--interp tree|vm] [--profile-interp] [--progress off|stderr|json]"
  in
  let int_arg flag n =
    match int_of_string_opt n with
    | Some v -> v
    | None ->
        Obs.Progress.log "%s expects an integer, got %S\n%s" flag n usage;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--reps" :: n :: rest ->
        reps := int_arg "--reps" n;
        parse rest
    | "--jobs" :: n :: rest ->
        let j = int_arg "--jobs" n in
        if j < 1 then (
          Obs.Progress.log "--jobs must be >= 1";
          exit 2);
        jobs := min j Expkit.Pool.max_jobs;
        parse rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--trace-dir" :: dir :: rest ->
        trace_dir := Some dir;
        parse rest
    | "--only" :: names :: rest ->
        only := String.split_on_char ',' names;
        parse rest
    | "--no-micro" :: rest ->
        bench := false;
        parse rest
    | "--interp" :: which :: rest ->
        (match which with
        | "tree" -> Common.default_interp := Common.Tree_walk
        | "vm" -> Common.default_interp := Common.Bytecode
        | _ ->
            Obs.Progress.log "--interp expects tree or vm, got %S\n%s" which usage;
            exit 2);
        parse rest
    | "--profile-interp" :: rest ->
        profile := true;
        parse rest
    | "--progress" :: mode :: rest ->
        (match Obs.Progress.mode_of_string mode with
        | Ok Obs.Progress.Off -> reporter := None
        | Ok m -> reporter := Some (Obs.Progress.create m ~label:"bench")
        | Error e ->
            Obs.Progress.log "%s\n%s" e usage;
            exit 2);
        parse rest
    | arg :: _ ->
        Obs.Progress.log "unknown argument %s\n%s" arg usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf
    "EaseIO evaluation harness — %d repetitions per data point\n" !reps;
  let timings = ref [] in
  let t_start = Unix.gettimeofday () in
  List.iter
    (fun (name, f) ->
      if !only = [] || List.mem name !only then begin
        let t0 = Unix.gettimeofday () in
        f ~reps:!reps;
        timings := !timings @ [ (name, Unix.gettimeofday () -. t0) ]
      end)
    all_experiments;
  if !bench && (!only = [] || List.mem "micro" !only) then microbenches ();
  if !profile then print_interp_profile ~reps:!reps;
  Option.iter trace_exports !trace_dir;
  Option.iter Obs.Progress.finish !reporter;
  let total_wall_s = Unix.gettimeofday () -. t_start in
  match !json_path with
  | None -> ()
  | Some path ->
      let doc =
        Expkit.Json.Obj
          [
            ( "meta",
              Expkit.Json.Obj
                [
                  ("harness", Expkit.Json.String "easeio-bench");
                  ("schema_version", Expkit.Json.Int 2);
                  ("git_sha", Expkit.Json.String (git_sha ()));
                  ("dune_profile", Expkit.Json.String (dune_profile ()));
                  ("ocaml_version", Expkit.Json.String Sys.ocaml_version);
                  ("reps", Expkit.Json.Int !reps);
                  ("jobs", Expkit.Json.Int !jobs);
                  ( "recommended_domains",
                    Expkit.Json.Int (Domain.recommended_domain_count ()) );
                  ("total_wall_s", Expkit.Json.Float total_wall_s);
                  ("interp", Expkit.Json.String (Common.interp_name !Common.default_interp));
                  ("calibration", calibration ~reps:!reps);
                  ("interp_runs_per_s", fst (interp_meta ~reps:!reps));
                  ("vm_runs_per_s", snd (interp_meta ~reps:!reps));
                ] );
            ( "experiment_wall_s",
              Expkit.Json.Obj (List.map (fun (n, s) -> (n, Expkit.Json.Float s)) !timings) );
            ("workloads", Expkit.Json.Obj !json_workloads);
            ("experiments", Expkit.Json.Obj !json_experiments);
          ]
      in
      Expkit.Json.to_file path doc;
      Obs.Progress.log "bench results written to %s" path
