open Platform

type hooks = {
  on_task_start : Machine.t -> string -> unit;
  on_commit : Machine.t -> string -> unit;
  on_reboot : Machine.t -> unit;
}

let no_hooks =
  {
    on_task_start = (fun _ _ -> ());
    on_commit = (fun _ _ -> ());
    on_reboot = (fun _ -> ());
  }

let compose_hooks a b =
  {
    on_task_start =
      (fun m name ->
        a.on_task_start m name;
        b.on_task_start m name);
    on_commit =
      (fun m name ->
        a.on_commit m name;
        b.on_commit m name);
    on_reboot =
      (fun m ->
        a.on_reboot m;
        b.on_reboot m);
  }

type outcome = {
  metrics : Metrics.t;
  completed : bool;
  power_failures : int;
  total_time_us : int;
  energy_nj : float;
  correct : bool option;
  gave_up : bool;
  stuck_task : string option;
}

(* Pseudo-task name for the sliver of work between a commit and the
   next task's identification (the task-pointer read): a power failure
   can land there, and its attempt must still appear in the trace for
   the Metrics reconciliation invariant to hold exactly. *)
let dispatch_task = "(dispatch)"

(* Campaign metric ids, interned once at module init so a metered run
   pays array bumps only (and an unmetered run a single branch). *)
let m_commits = Obs.Registry.counter "engine/commits"
let m_aborts = Obs.Registry.counter "engine/aborts"
let m_reboots = Obs.Registry.counter "engine/reboots"
let m_giveups = Obs.Registry.counter "engine/giveups"
let m_wasted_hist = Obs.Registry.hist "engine/wasted_attempt_us"

(* {1 The stepper}

   [run] used to be one while-loop that called [Machine.reboot] inline
   at every power failure. It is now expressed on top of a session +
   stepper: [start] performs the preamble and first boot,
   [run_until_boundary] executes attempts until the run either needs a
   reboot (— [Paused], exactly where the old loop called its local
   [reboot ()]) or ends ([Finished], exactly where it set [running :=
   false]), and [resume] is the old [reboot ()] body. Holding the
   machine at [Paused] is what lets campaigns fork the state instead
   of re-executing the prefix: the dead boundary is a stable point —
   no attempt in flight, SRAM about to be cleared — so a
   [Machine.snapshot] there (or at the attempt boundaries [on_attempt]
   exposes) captures everything the continuation depends on. *)

type session = {
  s_m : Machine.t;
  s_app : Task.app;
  s_hooks : hooks;
  s_max_failures : int;
  s_stall_limit : int;
  s_cur : int;  (* task-pointer slot *)
  s_metrics : Metrics.t;
  (* sink/meter presence, latched at [start] like the old preamble did;
     [restore] re-latches so a checkpoint can be revived under a
     different observer attachment *)
  mutable s_traced : bool;
  mutable s_meter : Obs.Sheet.t option;
  s_attempt_counts : (string, int) Hashtbl.t;
  mutable s_cur_name : string;
  mutable s_cur_att : int;
  (* the task being attempted, tracked even untraced so give-up reports
     can name it; never reset between attempts *)
  mutable s_last_task : string;
  mutable s_gave_up : bool;
  mutable s_stuck : string option;
  (* consecutive aborted attempts since the last commit: the forward-
     progress watchdog. A livelocked app (one task's cost exceeds every
     on-window) trips [stall_limit] long before [max_failures]. *)
  mutable s_stalled : int;
  mutable s_running : bool;
}

type step = Paused | Finished of outcome

let start ?(hooks = no_hooks) ?(max_failures = 100_000) ?(stall_limit = 1_000) ?cur_slot m
    (app : Task.app) =
  (* arena reuse passes a pre-allocated slot so repeated runs don't grow
     the static layout *)
  let cur =
    match cur_slot with
    | Some slot -> slot
    | None -> Machine.alloc m Memory.Fram ~name:"kernel.cur_task" ~words:1
  in
  (* flash-time initialization of the task pointer: not charged *)
  Memory.write (Machine.mem m Memory.Fram) cur (Task.index_of app app.entry);
  let traced = Machine.traced m in
  let s =
    {
      s_m = m;
      s_app = app;
      s_hooks = hooks;
      s_max_failures = max_failures;
      s_stall_limit = stall_limit;
      s_cur = cur;
      s_metrics = Metrics.create ();
      s_traced = traced;
      s_meter = Machine.meter m;
      s_attempt_counts = Hashtbl.create (if traced then 16 else 1);
      s_cur_name = dispatch_task;
      s_cur_att = 0;
      s_last_task = dispatch_task;
      s_gave_up = false;
      s_stuck = None;
      s_stalled = 0;
      s_running = true;
    }
  in
  Machine.boot m;
  s

let machine s = s.s_m
let running s = s.s_running

let give_up s =
  s.s_gave_up <- true;
  s.s_stuck <- Some s.s_last_task;
  match s.s_meter with None -> () | Some sheet -> Obs.Sheet.bump sheet m_giveups

(* a gave-up run never reached the app's final state, so its check
   would be meaningless: [correct] stays [None] and [gave_up] carries
   the verdict (campaign reports distinguish "livelocked" from
   "completed wrong") *)
let outcome s =
  let correct =
    if s.s_gave_up then None else Option.map (fun check -> check s.s_m) s.s_app.Task.check
  in
  {
    metrics = s.s_metrics;
    completed = not s.s_gave_up;
    power_failures = Machine.failures s.s_m;
    total_time_us = Machine.now s.s_m;
    energy_nj = Machine.energy_used_nj s.s_m;
    correct;
    gave_up = s.s_gave_up;
    stuck_task = s.s_stuck;
  }

let resume s =
  (match s.s_meter with None -> () | Some sheet -> Obs.Sheet.bump sheet m_reboots);
  Machine.reboot s.s_m;
  s.s_hooks.on_reboot s.s_m

let run_until_boundary ?on_attempt s =
  let m = s.s_m and app = s.s_app and hooks = s.s_hooks in
  let next_attempt name =
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt s.s_attempt_counts name) in
    Hashtbl.replace s.s_attempt_counts name n;
    n
  in
  let result = ref None in
  while !result = None && s.s_running do
    (match on_attempt with Some f -> f s | None -> ());
    match
      let idx = Machine.with_tag m Overhead (fun () -> Machine.read m Memory.Fram s.s_cur) in
      let task = Task.task_of_index app idx in
      s.s_last_task <- task.Task.name;
      if s.s_traced then begin
        s.s_cur_name <- task.Task.name;
        s.s_cur_att <- next_attempt task.Task.name;
        Machine.emit m (Trace.Event.Task_start { task = task.Task.name; attempt = s.s_cur_att })
      end;
      Machine.with_tag m Overhead (fun () -> hooks.on_task_start m task.Task.name);
      let transition = Machine.with_tag m App (fun () -> task.Task.body m) in
      (* the commit sequence (runtime commit + task-pointer advance) is
         failure-atomic, as in real runtimes' commit-replay protocols; a
         power failure striking inside it is deferred to its end, at
         which point the task HAS committed — the failure then simply
         lands between tasks *)
      let failed_after_commit =
        match
          Machine.critical m (fun () ->
              Machine.with_tag m Overhead (fun () ->
                  hooks.on_commit m task.Task.name;
                  match transition with
                  | Task.Next next -> Machine.write m Memory.Fram s.s_cur (Task.index_of app next)
                  | Task.Stop -> ()))
        with
        | () -> false
        | exception Machine.Power_failure -> true
      in
      (transition, failed_after_commit)
    with
    | transition, failed_after_commit ->
        s.s_stalled <- 0;
        let att = Machine.take_attempt m in
        Metrics.commit s.s_metrics att;
        (match s.s_meter with None -> () | Some sheet -> Obs.Sheet.bump sheet m_commits);
        if s.s_traced then begin
          Machine.emit m
            (Trace.Event.Task_commit
               {
                 task = s.s_cur_name;
                 attempt = s.s_cur_att;
                 app_us = att.Machine.app_us;
                 ovh_us = att.Machine.ovh_us;
                 app_nj = att.Machine.app_nj;
                 ovh_nj = att.Machine.ovh_nj;
               });
          s.s_cur_name <- dispatch_task;
          s.s_cur_att <- 0
        end;
        (match transition with
        | Task.Next _ -> ()
        | Task.Stop -> s.s_running <- false);
        if failed_after_commit && s.s_running then
          if Machine.failures m >= s.s_max_failures then begin
            give_up s;
            s.s_running <- false
          end
          else result := Some Paused
    | exception Machine.Power_failure ->
        s.s_stalled <- s.s_stalled + 1;
        let att = Machine.take_attempt m in
        Metrics.fail s.s_metrics att;
        (match s.s_meter with
        | None -> ()
        | Some sheet ->
            Obs.Sheet.bump sheet m_aborts;
            Obs.Sheet.observe sheet m_wasted_hist (att.Machine.app_us + att.Machine.ovh_us));
        if s.s_traced then begin
          Machine.emit m
            (Trace.Event.Task_abort
               {
                 task = s.s_cur_name;
                 attempt = s.s_cur_att;
                 app_us = att.Machine.app_us;
                 ovh_us = att.Machine.ovh_us;
                 app_nj = att.Machine.app_nj;
                 ovh_nj = att.Machine.ovh_nj;
               });
          s.s_cur_name <- dispatch_task;
          s.s_cur_att <- 0
        end;
        if Machine.failures m >= s.s_max_failures || s.s_stalled >= s.s_stall_limit then begin
          give_up s;
          s.s_running <- false
        end
        else result := Some Paused
  done;
  match !result with Some step -> step | None -> Finished (outcome s)

let run ?hooks ?max_failures ?stall_limit ?cur_slot m app =
  let s = start ?hooks ?max_failures ?stall_limit ?cur_slot m app in
  let rec go () =
    match run_until_boundary s with
    | Paused ->
        resume s;
        go ()
    | Finished o -> o
  in
  go ()

(* {1 Checkpoints}

   A checkpoint pairs a total machine snapshot with the engine's own
   loop state (metrics, attempt numbering, watchdog) — everything a
   revived session needs to continue byte-identically. Taken from an
   [on_attempt] hook (attempt boundaries) or at [Paused] (charge
   boundaries, post-death pre-reboot). *)

type checkpoint = {
  k_snap : Machine.snapshot;
  k_metrics : Metrics.t;
  k_attempts : (string, int) Hashtbl.t;
  k_cur_name : string;
  k_cur_att : int;
  k_last : string;
  k_stalled : int;
  k_running : bool;
}

let checkpoint s =
  {
    k_snap = Machine.snapshot s.s_m;
    k_metrics = Metrics.copy s.s_metrics;
    k_attempts = Hashtbl.copy s.s_attempt_counts;
    k_cur_name = s.s_cur_name;
    k_cur_att = s.s_cur_att;
    k_last = s.s_last_task;
    k_stalled = s.s_stalled;
    k_running = s.s_running;
  }

let restore s k =
  Machine.restore_snapshot s.s_m k.k_snap;
  Metrics.assign ~src:k.k_metrics ~dst:s.s_metrics;
  Hashtbl.reset s.s_attempt_counts;
  Hashtbl.iter (Hashtbl.replace s.s_attempt_counts) k.k_attempts;
  s.s_cur_name <- k.k_cur_name;
  s.s_cur_att <- k.k_cur_att;
  s.s_last_task <- k.k_last;
  s.s_stalled <- k.k_stalled;
  s.s_running <- k.k_running;
  s.s_gave_up <- false;
  s.s_stuck <- None;
  (* re-latch observers: the reviver attaches its own sink/meter before
     restoring, exactly as a fresh run would before [start] *)
  s.s_traced <- Machine.traced s.s_m;
  s.s_meter <- Machine.meter s.s_m

let checkpoint_charges k = Machine.snapshot_charges k.k_snap
let checkpoint_snapshot k = k.k_snap
let checkpoint_stalled k = k.k_stalled
