open Platform

type hooks = {
  on_task_start : Machine.t -> string -> unit;
  on_commit : Machine.t -> string -> unit;
  on_reboot : Machine.t -> unit;
}

let no_hooks =
  {
    on_task_start = (fun _ _ -> ());
    on_commit = (fun _ _ -> ());
    on_reboot = (fun _ -> ());
  }

let compose_hooks a b =
  {
    on_task_start =
      (fun m name ->
        a.on_task_start m name;
        b.on_task_start m name);
    on_commit =
      (fun m name ->
        a.on_commit m name;
        b.on_commit m name);
    on_reboot =
      (fun m ->
        a.on_reboot m;
        b.on_reboot m);
  }

type outcome = {
  metrics : Metrics.t;
  completed : bool;
  power_failures : int;
  total_time_us : int;
  energy_nj : float;
  correct : bool option;
  gave_up : bool;
  stuck_task : string option;
}

(* Pseudo-task name for the sliver of work between a commit and the
   next task's identification (the task-pointer read): a power failure
   can land there, and its attempt must still appear in the trace for
   the Metrics reconciliation invariant to hold exactly. *)
let dispatch_task = "(dispatch)"

(* Campaign metric ids, interned once at module init so a metered run
   pays array bumps only (and an unmetered run a single branch). *)
let m_commits = Obs.Registry.counter "engine/commits"
let m_aborts = Obs.Registry.counter "engine/aborts"
let m_reboots = Obs.Registry.counter "engine/reboots"
let m_giveups = Obs.Registry.counter "engine/giveups"
let m_wasted_hist = Obs.Registry.hist "engine/wasted_attempt_us"

let run ?(hooks = no_hooks) ?(max_failures = 100_000) ?(stall_limit = 1_000) ?cur_slot m
    (app : Task.app) =
  let metrics = Metrics.create () in
  (* arena reuse passes a pre-allocated slot so repeated runs don't grow
     the static layout *)
  let cur =
    match cur_slot with
    | Some slot -> slot
    | None -> Machine.alloc m Memory.Fram ~name:"kernel.cur_task" ~words:1
  in
  (* flash-time initialization of the task pointer: not charged *)
  Memory.write (Machine.mem m Memory.Fram) cur (Task.index_of app app.entry);
  let traced = Machine.traced m in
  let meter = Machine.meter m in
  let attempt_counts = Hashtbl.create (if traced then 16 else 1) in
  let next_attempt name =
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt attempt_counts name) in
    Hashtbl.replace attempt_counts name n;
    n
  in
  let cur_name = ref dispatch_task and cur_att = ref 0 in
  (* the task being attempted, tracked even untraced so give-up reports
     can name it; never reset between attempts *)
  let last_task = ref dispatch_task in
  Machine.boot m;
  let gave_up = ref false in
  let stuck_task = ref None in
  (* consecutive aborted attempts since the last commit: the forward-
     progress watchdog. A livelocked app (one task's cost exceeds every
     on-window) trips [stall_limit] long before [max_failures]. *)
  let stalled = ref 0 in
  let give_up () =
    gave_up := true;
    stuck_task := Some !last_task;
    match meter with None -> () | Some sheet -> Obs.Sheet.bump sheet m_giveups
  in
  let reboot () =
    (match meter with None -> () | Some sheet -> Obs.Sheet.bump sheet m_reboots);
    Machine.reboot m;
    hooks.on_reboot m
  in
  let running = ref true in
  while !running do
    match
      let idx = Machine.with_tag m Overhead (fun () -> Machine.read m Memory.Fram cur) in
      let task = Task.task_of_index app idx in
      last_task := task.Task.name;
      if traced then begin
        cur_name := task.Task.name;
        cur_att := next_attempt task.Task.name;
        Machine.emit m (Trace.Event.Task_start { task = task.Task.name; attempt = !cur_att })
      end;
      Machine.with_tag m Overhead (fun () -> hooks.on_task_start m task.Task.name);
      let transition = Machine.with_tag m App (fun () -> task.Task.body m) in
      (* the commit sequence (runtime commit + task-pointer advance) is
         failure-atomic, as in real runtimes' commit-replay protocols; a
         power failure striking inside it is deferred to its end, at
         which point the task HAS committed — the failure then simply
         lands between tasks *)
      let failed_after_commit =
        match
          Machine.critical m (fun () ->
              Machine.with_tag m Overhead (fun () ->
                  hooks.on_commit m task.Task.name;
                  match transition with
                  | Task.Next next -> Machine.write m Memory.Fram cur (Task.index_of app next)
                  | Task.Stop -> ()))
        with
        | () -> false
        | exception Machine.Power_failure -> true
      in
      (transition, failed_after_commit)
    with
    | transition, failed_after_commit ->
        stalled := 0;
        let att = Machine.take_attempt m in
        Metrics.commit metrics att;
        (match meter with None -> () | Some sheet -> Obs.Sheet.bump sheet m_commits);
        if traced then begin
          Machine.emit m
            (Trace.Event.Task_commit
               {
                 task = !cur_name;
                 attempt = !cur_att;
                 app_us = att.Machine.app_us;
                 ovh_us = att.Machine.ovh_us;
                 app_nj = att.Machine.app_nj;
                 ovh_nj = att.Machine.ovh_nj;
               });
          cur_name := dispatch_task;
          cur_att := 0
        end;
        (match transition with
        | Task.Next _ -> ()
        | Task.Stop -> running := false);
        if failed_after_commit && !running then
          if Machine.failures m >= max_failures then begin
            give_up ();
            running := false
          end
          else reboot ()
    | exception Machine.Power_failure ->
        incr stalled;
        let att = Machine.take_attempt m in
        Metrics.fail metrics att;
        (match meter with
        | None -> ()
        | Some sheet ->
            Obs.Sheet.bump sheet m_aborts;
            Obs.Sheet.observe sheet m_wasted_hist (att.Machine.app_us + att.Machine.ovh_us));
        if traced then begin
          Machine.emit m
            (Trace.Event.Task_abort
               {
                 task = !cur_name;
                 attempt = !cur_att;
                 app_us = att.Machine.app_us;
                 ovh_us = att.Machine.ovh_us;
                 app_nj = att.Machine.app_nj;
                 ovh_nj = att.Machine.ovh_nj;
               });
          cur_name := dispatch_task;
          cur_att := 0
        end;
        if Machine.failures m >= max_failures || !stalled >= stall_limit then begin
          give_up ();
          running := false
        end
        else reboot ()
  done;
  (* a gave-up run never reached the app's final state, so its check
     would be meaningless: [correct] stays [None] and [gave_up] carries
     the verdict (campaign reports distinguish "livelocked" from
     "completed wrong") *)
  let correct = if !gave_up then None else Option.map (fun check -> check m) app.Task.check in
  {
    metrics;
    completed = not !gave_up;
    power_failures = Machine.failures m;
    total_time_us = Machine.now m;
    energy_nj = Machine.energy_used_nj m;
    correct;
    gave_up = !gave_up;
    stuck_task = !stuck_task;
  }
