open Platform

type t = {
  mutable useful_app_us : int;
  mutable useful_ovh_us : int;
  mutable wasted_us : int;
  mutable useful_app_nj : float;
  mutable useful_ovh_nj : float;
  mutable wasted_nj : float;
  mutable commits : int;
  mutable attempts : int;
}

let create () =
  {
    useful_app_us = 0;
    useful_ovh_us = 0;
    wasted_us = 0;
    useful_app_nj = 0.;
    useful_ovh_nj = 0.;
    wasted_nj = 0.;
    commits = 0;
    attempts = 0;
  }

let commit t (a : Machine.attempt) =
  t.useful_app_us <- t.useful_app_us + a.app_us;
  t.useful_ovh_us <- t.useful_ovh_us + a.ovh_us;
  t.useful_app_nj <- t.useful_app_nj +. a.app_nj;
  t.useful_ovh_nj <- t.useful_ovh_nj +. a.ovh_nj;
  t.commits <- t.commits + 1;
  t.attempts <- t.attempts + 1

let fail t (a : Machine.attempt) =
  t.wasted_us <- t.wasted_us + a.app_us + a.ovh_us;
  t.wasted_nj <- t.wasted_nj +. a.app_nj +. a.ovh_nj;
  t.attempts <- t.attempts + 1

(* Snapshot support for the resumable engine: checkpoints copy the
   sheet, restores assign it back in place (the engine's outcome holds
   the session's metrics object, so identity must be preserved). *)
let copy t = { t with commits = t.commits }

let assign ~src ~dst =
  dst.useful_app_us <- src.useful_app_us;
  dst.useful_ovh_us <- src.useful_ovh_us;
  dst.wasted_us <- src.wasted_us;
  dst.useful_app_nj <- src.useful_app_nj;
  dst.useful_ovh_nj <- src.useful_ovh_nj;
  dst.wasted_nj <- src.wasted_nj;
  dst.commits <- src.commits;
  dst.attempts <- src.attempts

let total_us t = t.useful_app_us + t.useful_ovh_us + t.wasted_us
let total_nj t = t.useful_app_nj +. t.useful_ovh_nj +. t.wasted_nj

let to_json t =
  Trace.Json.Obj
    [
      ("useful_app_us", Trace.Json.Int t.useful_app_us);
      ("useful_ovh_us", Trace.Json.Int t.useful_ovh_us);
      ("wasted_us", Trace.Json.Int t.wasted_us);
      ("useful_app_nj", Trace.Json.Float t.useful_app_nj);
      ("useful_ovh_nj", Trace.Json.Float t.useful_ovh_nj);
      ("wasted_nj", Trace.Json.Float t.wasted_nj);
      ("commits", Trace.Json.Int t.commits);
      ("attempts", Trace.Json.Int t.attempts);
    ]

let pp ppf t =
  Format.fprintf ppf "app=%a ovh=%a wasted=%a commits=%d attempts=%d" Units.pp_time
    t.useful_app_us Units.pp_time t.useful_ovh_us Units.pp_time t.wasted_us t.commits t.attempts
