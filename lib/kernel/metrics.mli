(** Execution metrics.

    Work charged to the machine accumulates in per-attempt buckets; when
    a task commits, its attempt counts as useful (split into application
    work and runtime overhead), and when a power failure interrupts it,
    the whole attempt counts as wasted — the paper's "wasted work" metric
    (computational progress lost to power failures, §5.2). *)

open Platform

type t = {
  mutable useful_app_us : int;
  mutable useful_ovh_us : int;
  mutable wasted_us : int;
  mutable useful_app_nj : float;
  mutable useful_ovh_nj : float;
  mutable wasted_nj : float;
  mutable commits : int;
  mutable attempts : int;
}

val create : unit -> t
val commit : t -> Machine.attempt -> unit
val fail : t -> Machine.attempt -> unit

val copy : t -> t
(** Independent copy; engine checkpoints capture the sheet with it. *)

val assign : src:t -> dst:t -> unit
(** Overwrite [dst]'s fields from [src] in place — restore counterpart
    of {!copy}, preserving the identity of the session's sheet. *)

val total_us : t -> int
(** useful app + overhead + wasted (excludes off-time). *)

val total_nj : t -> float

val to_json : t -> Trace.Json.t
(** All eight fields as a flat object (the [--json] payload of
    [easeio run] and the reference side of the trace reconciliation). *)

val pp : Format.formatter -> t -> unit
