(** Intermittent execution engine.

    The engine persists the identity of the current task in FRAM (the
    "task pointer" of Alpaca/InK), runs task bodies, and catches
    {!Platform.Machine.Power_failure}: the machine reboots, SRAM is
    cleared, and the interrupted task re-executes from its beginning.
    Runtime systems plug in via {!hooks} — privatization at task start,
    commit at task end, recovery after reboot — all charged to the
    overhead bucket. *)

open Platform

type hooks = {
  on_task_start : Machine.t -> string -> unit;
      (** called (tagged Overhead) before each task attempt, with the
          task name; runtimes privatize/recover here *)
  on_commit : Machine.t -> string -> unit;
      (** called (tagged Overhead) after a body returns, before the task
          pointer advances; runtimes commit privatized state here *)
  on_reboot : Machine.t -> unit;
      (** called (untagged: device is off) right after a reboot *)
}

val no_hooks : hooks

val compose_hooks : hooks -> hooks -> hooks
(** Run both hook sets, first argument first. *)

type outcome = {
  metrics : Metrics.t;
  completed : bool;  (** [not gave_up] *)
  power_failures : int;
  total_time_us : int;  (** wall-clock including off intervals *)
  energy_nj : float;
  correct : bool option;
      (** result of the app's [check], if any; [None] on give-up (the
          final state was never reached, so the check is meaningless) *)
  gave_up : bool;
      (** the engine stopped before the app finished: [max_failures]
          exhausted, or the forward-progress watchdog tripped *)
  stuck_task : string option;
      (** on give-up, the task being attempted when the engine stopped
          (the livelocked task for a watchdog trip) *)
}

val run :
  ?hooks:hooks ->
  ?max_failures:int ->
  ?stall_limit:int ->
  ?cur_slot:int ->
  Machine.t ->
  Task.app ->
  outcome
(** Execute [app] to completion, or give up after [max_failures] power
    failures (default 100_000) or — the forward-progress watchdog —
    [stall_limit] consecutive aborted attempts without a single task
    commit (default 1_000). Both are proxies for the paper's
    non-termination bug (a task's energy cost exceeds the energy
    buffer); the watchdog reports the stuck task's name instead of
    silently burning to [max_failures]. The machine must be freshly
    created (or {!Platform.Machine.reset}); the engine boots it.
    [cur_slot] supplies a pre-allocated FRAM word for the persistent
    task pointer — recycled arenas pass one so repeated runs don't grow
    the static layout; by default the engine allocates its own.

    [run] is sugar over the stepper below: [start], then alternate
    [run_until_boundary]/[resume] until [Finished]. The two produce
    byte-identical observations (events, metrics, NV state) — verified
    by the test suite across the app catalog, runtimes, failure
    schedules and both interpreters. *)

(** {1 The stepper}

    The same loop, paused at power-failure boundaries instead of
    rebooting inline. At [Paused] the device is dead but the machine
    holds the complete pre-reboot state — the stable point campaigns
    and the explorer {!Platform.Machine.snapshot}, fork, and revive. *)

type session
(** An in-flight run: the machine plus the engine's loop state. *)

type step =
  | Paused
      (** a power failure ended the current attempt (or struck between
          tasks) and the run wants a {!resume}; exactly where [run]
          would have called [Machine.reboot] *)
  | Finished of outcome  (** the run ended; same outcome as [run] *)

val start :
  ?hooks:hooks ->
  ?max_failures:int ->
  ?stall_limit:int ->
  ?cur_slot:int ->
  Machine.t ->
  Task.app ->
  session
(** The preamble of [run]: allocate/adopt the task-pointer slot, write
    the entry task (uncharged), latch the observer attachments, and
    boot the machine. Defaults as in [run]. *)

val run_until_boundary : ?on_attempt:(session -> unit) -> session -> step
(** Execute attempts until the next power-failure boundary ([Paused])
    or the end of the run ([Finished]). [on_attempt] fires at the top
    of every attempt, before the task-pointer read — the engine's
    checkpoint hook: the machine is quiescent there (no attempt in
    flight), so {!checkpoint} from inside it captures a resumable
    state. Calling again after [Finished] returns the same outcome. *)

val resume : session -> unit
(** Reboot out of [Paused] — byte-identical to what [run] does between
    attempts: bump the reboot meter, advance time by the off interval,
    clear SRAM, re-arm the failure model, fire [on_reboot]. The session
    is then ready for the next [run_until_boundary]. *)

val machine : session -> Machine.t

val running : session -> bool
(** [false] once the run finished or gave up. *)

(** {2 Checkpoints}

    A checkpoint pairs a total {!Platform.Machine.snapshot} with the
    engine's own loop state (metrics, attempt numbering, watchdog
    counters): restoring one into its session and re-running the
    continuation is byte-identical to having re-executed the original
    prefix. Checkpoints are immutable and may be held across many
    restores — the prefix-sharing primitive behind campaign resume and
    the reboot-space explorer. *)

type checkpoint

val checkpoint : session -> checkpoint
(** Capture the session. Call at [Paused] or from [on_attempt]. *)

val restore : session -> checkpoint -> unit
(** Roll the session (and its machine) back. The observer attachments
    (sink/meter) are NOT part of the checkpoint: attach the desired
    observers to the machine first; [restore] re-latches them. *)

val checkpoint_charges : checkpoint -> int
(** The machine's cumulative charge count at capture — the key for
    picking the latest checkpoint strictly before an [Nth_charge]
    boundary. *)

val checkpoint_snapshot : checkpoint -> Machine.snapshot

val checkpoint_stalled : checkpoint -> int
(** The watchdog counter at capture; the explorer folds it into its
    convergence hash (machine state alone does not determine a
    give-up). *)
