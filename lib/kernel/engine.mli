(** Intermittent execution engine.

    The engine persists the identity of the current task in FRAM (the
    "task pointer" of Alpaca/InK), runs task bodies, and catches
    {!Platform.Machine.Power_failure}: the machine reboots, SRAM is
    cleared, and the interrupted task re-executes from its beginning.
    Runtime systems plug in via {!hooks} — privatization at task start,
    commit at task end, recovery after reboot — all charged to the
    overhead bucket. *)

open Platform

type hooks = {
  on_task_start : Machine.t -> string -> unit;
      (** called (tagged Overhead) before each task attempt, with the
          task name; runtimes privatize/recover here *)
  on_commit : Machine.t -> string -> unit;
      (** called (tagged Overhead) after a body returns, before the task
          pointer advances; runtimes commit privatized state here *)
  on_reboot : Machine.t -> unit;
      (** called (untagged: device is off) right after a reboot *)
}

val no_hooks : hooks

val compose_hooks : hooks -> hooks -> hooks
(** Run both hook sets, first argument first. *)

type outcome = {
  metrics : Metrics.t;
  completed : bool;  (** [not gave_up] *)
  power_failures : int;
  total_time_us : int;  (** wall-clock including off intervals *)
  energy_nj : float;
  correct : bool option;
      (** result of the app's [check], if any; [None] on give-up (the
          final state was never reached, so the check is meaningless) *)
  gave_up : bool;
      (** the engine stopped before the app finished: [max_failures]
          exhausted, or the forward-progress watchdog tripped *)
  stuck_task : string option;
      (** on give-up, the task being attempted when the engine stopped
          (the livelocked task for a watchdog trip) *)
}

val run :
  ?hooks:hooks ->
  ?max_failures:int ->
  ?stall_limit:int ->
  ?cur_slot:int ->
  Machine.t ->
  Task.app ->
  outcome
(** Execute [app] to completion, or give up after [max_failures] power
    failures (default 100_000) or — the forward-progress watchdog —
    [stall_limit] consecutive aborted attempts without a single task
    commit (default 1_000). Both are proxies for the paper's
    non-termination bug (a task's energy cost exceeds the energy
    buffer); the watchdog reports the stuck task's name instead of
    silently burning to [max_failures]. The machine must be freshly
    created (or {!Platform.Machine.reset}); the engine boots it.
    [cur_slot] supplies a pre-allocated FRAM word for the persistent
    task pointer — recycled arenas pass one so repeated runs don't grow
    the static layout; by default the engine allocates its own. *)
