(** Exhaustive reboot-space exploration.

    A boundary sweep ({!Faultkit.Campaign}) checks every {e single}
    power failure from power on. The explorer walks the full tree of
    reboot points up to a reboot-count [depth]: each post-reboot state
    is a node, forked as a copy-on-write {!Platform.Machine.snapshot}
    through the {!Kernel.Engine} stepper rather than replayed from
    power on; each node's continuation is judged against the clean
    run's golden NV image with the campaign oracles (livelock, app
    check, differential NV state, Always re-execution).

    Convergent states — equal {!Platform.Machine.snapshot_behavior_hash}
    plus engine watchdog counter — are visited once; pruning is what
    lets a [10^4]-boundary space collapse to the (much smaller) set of
    behaviorally distinct post-reboot states. Results are pure
    functions of (app, variant, seed, depth, max_states): the walk is
    sequential and deterministic.

    In the spirit of "Towards a Formal Foundation of Intermittent
    Computing" (Surbatovich et al., OOPSLA 2020), which defines
    correctness over {e all} possible reboot placements rather than
    sampled schedules. *)

type violation = Faultkit.Campaign.violation =
  | Livelock of string  (** stuck task name *)
  | App_incorrect
  | Nv_mismatch of Faultkit.Oracle.mismatch list
  | Always_skipped of string list

type finding = {
  reboots : int list;
      (** the charge indices of the injected reboots, in schedule
          order: [[k1; k2]] means "fail at charge k1, then at k2" *)
  violations : violation list;
}

type report = {
  app : string;
  variant : Apps.Common.variant;
  seed : int;
  depth : int;  (** reboot-count bound the walk ran with *)
  boundaries : int;  (** clean-run charge count (depth-1 space size) *)
  states : int;  (** nodes visited (continuations run and judged) *)
  pruned : int;  (** children skipped as behaviorally convergent *)
  truncated : bool;  (** [max_states] cut the walk short *)
  findings : finding list;
  snap : Obs.Snapshot.t;
      (** metric snapshot of the whole walk ([explore/states],
          [explore/pruned], [resume/prefix_us_saved],
          [snapshot/pages_copied], VM dispatch counts, ...) *)
  profile : Obs.Attr.profile;
      (** attribution over every simulated run, with the explorer's
          re-positioning time in a flamegraph-visible [explore] phase *)
}

val explore :
  ?depth:int ->
  ?max_states:int ->
  ?prune:bool ->
  ?ablate_regions:bool ->
  ?ablate_semantics:bool ->
  ?progress:Obs.Progress.t ->
  Apps.Common.spec ->
  Apps.Common.variant ->
  seed:int ->
  report
(** Walk the reboot space of an app (via its [session] runner; raises
    [Invalid_argument] if it has none, and [Failure] if the clean run
    itself fails its check). Defaults: [depth = 1] (exhaustive
    single-failure enumeration — the boundary sweep, shared-prefix
    style), no state cap, pruning on. [depth = 0] just runs and judges
    the clean continuation. [max_states] bounds visited nodes (the
    report is marked [truncated]); [prune:false] re-explores
    convergent states (slow — meant for the soundness property test).
    [progress] is ticked once per visited state. The ablation hooks
    mirror the fuzzer's: [ablate_semantics] forces every I/O
    annotation to [Always], [ablate_regions] disables regional
    privatization — exploring an ablated pipeline must surface
    findings that the shipped one does not. *)

val passed : report -> bool

val to_json : report -> Trace.Json.t
(** Stable JSON: exact coverage counts plus at most 20 detailed
    findings ([findings_count] always carries the true number). *)

val flamegraph : report -> string
(** Folded-stack flamegraph of the walk's attribution profile,
    including the [explore] re-positioning phase frame. *)
