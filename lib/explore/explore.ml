open Platform

(* Exhaustive reboot-space exploration.

   The paper's safety argument is per-boundary: for EVERY point where
   power can fail, the post-reboot continuation must commit the same
   final NV state as the uninterrupted run. A boundary sweep checks
   each single failure from power on; this module walks the full tree —
   every reboot point, then every reboot point of each continuation,
   up to a reboot-count depth — by forking copy-on-write machine
   snapshots at charge boundaries instead of replaying prefixes.

   A node is a quiescent post-reboot engine state (an
   {!Kernel.Engine.checkpoint} plus the extra-machine state of the
   app's session: radio log, VM dispatch counters). Visiting a node:

   - run its continuation to completion with the (now inert, one-shot)
     latched [Nth_charge] spec, recording a checkpoint at every attempt
     top ([run_until_boundary]'s [on_attempt] hook);
   - judge the final state with the campaign oracles (livelock, app
     check, differential NV image, Always re-execution);
   - for every charge boundary [k] the continuation crossed, restore
     the latest checkpoint strictly before [k], latch [Nth_charge k],
     run into the failure, reboot — that post-reboot state is a child.

   Children whose {!Machine.snapshot_behavior_hash} (plus engine
   watchdog counter) was already visited are pruned: equal-hash states
   evolve identically modulo time-derived (declared-volatile) columns,
   so re-exploring them cannot surface a new violation. Pruning is what
   makes the walk converge — every boundary inside a stretch that
   touches no non-volatile state collapses onto one representative.
   [~prune:false] disables it (the prune-soundness test runs both ways
   and demands the same set of distinct violations — a pruned state can
   drop a reboot schedule from the report, never a violation). *)

type violation = Faultkit.Campaign.violation =
  | Livelock of string
  | App_incorrect
  | Nv_mismatch of Faultkit.Oracle.mismatch list
  | Always_skipped of string list

type finding = { reboots : int list; violations : violation list }

type report = {
  app : string;
  variant : Apps.Common.variant;
  seed : int;
  depth : int;
  boundaries : int;
  states : int;
  pruned : int;
  truncated : bool;
  findings : finding list;
  snap : Obs.Snapshot.t;
  profile : Obs.Attr.profile;
}

let c_states = Obs.Registry.counter "explore/states"
let c_pruned = Obs.Registry.counter "explore/pruned"
let c_prefix_saved = Obs.Registry.counter "resume/prefix_us_saved"

let passed r = r.findings = []

(* Latest checkpoint strictly before charge [k], scanned with a moving
   cursor: the children loop visits boundaries in ascending order, so
   the best checkpoint index never moves backwards. *)
let advance_cursor cks cursor k =
  let n = Array.length cks in
  let charges i = Kernel.Engine.checkpoint_charges (fst cks.(i)) in
  while !cursor + 1 < n && charges (!cursor + 1) < k do
    incr cursor
  done;
  cks.(!cursor)

let explore ?(depth = 1) ?max_states ?(prune = true) ?ablate_regions ?ablate_semantics ?progress
    (spec : Apps.Common.spec) variant ~seed =
  let session =
    match spec.Apps.Common.session with
    | Some f -> f ?ablate_regions ?ablate_semantics variant ~seed
    | None ->
        invalid_arg
          (Printf.sprintf "Explore: %s has no session runner" spec.Apps.Common.app_name)
  in
  let m = session.Apps.Common.ses_machine in
  let sheet = Obs.Sheet.create () in
  Machine.set_meter m sheet;
  let attr = Obs.Attr.create () in
  let attr_sink = Obs.Attr.sink attr in
  (* one sink attachment for the whole exploration; the Always watch is
     swapped per continuation through this ref (positioning runs get a
     no-op: their decisions are replays of segments the parent's watch
     already screened) *)
  let no_watch (_ : Trace.Event.t) = () in
  let watch = ref no_watch in
  Machine.set_sink m (fun e ->
      !watch e;
      attr_sink e);
  session.Apps.Common.ses_begin ();
  let engine =
    Kernel.Engine.start ~hooks:session.Apps.Common.ses_hooks
      ?cur_slot:session.Apps.Common.ses_cur_slot m session.Apps.Common.ses_app
  in
  let golden = ref None in
  (* Run the engine's current position to completion, checkpointing at
     every attempt top. The latched failure spec is one-shot and has
     already fired (or is [No_failures] at the root), so the run cannot
     pause again. *)
  let run_continuation () =
    let w, skips = Faultkit.Oracle.always_skip_watch () in
    watch := w;
    let cks = ref [] in
    let on_attempt s =
      let ck = Kernel.Engine.checkpoint s in
      let extras = session.Apps.Common.ses_save () in
      cks := (ck, extras) :: !cks
    in
    let step = Kernel.Engine.run_until_boundary ~on_attempt engine in
    watch := no_watch;
    Obs.Attr.add_run attr;
    match step with
    | Kernel.Engine.Paused -> failwith "Explore: continuation paused under an inert failure spec"
    | Kernel.Engine.Finished o -> (o, Array.of_list (List.rev !cks), skips ())
  in
  let judge (o : Kernel.Engine.outcome) skips =
    if o.Kernel.Engine.gave_up then
      [ Livelock (Option.value ~default:"(unknown)" o.Kernel.Engine.stuck_task) ]
    else
      (if o.Kernel.Engine.correct = Some false then [ App_incorrect ] else [])
      @ (match
           Faultkit.Oracle.nv_diff ~extra_volatile:spec.Apps.Common.nv_volatile
             ~golden:(Option.get !golden) m
         with
        | [] -> []
        | ms -> [ Nv_mismatch ms ])
      @ match skips with [] -> [] | ss -> [ Always_skipped ss ]
  in
  let seen = Hashtbl.create 1024 in
  let states = ref 0
  and pruned = ref 0
  and truncated = ref false
  and findings = ref []
  and explore_us = ref 0 in
  let budget_left () =
    match max_states with
    | Some n when !states >= n ->
        truncated := true;
        false
    | _ -> true
  in
  let record ~reboots violations =
    if violations <> [] then findings := { reboots = List.rev reboots; violations } :: !findings
  in
  (* Visit the node the engine is currently positioned at: judge its
     continuation, then expand its children depth-first (boundaries in
     ascending charge order, so reports are deterministic). *)
  let rec visit ~reboots ~depth_left =
    incr states;
    Obs.Sheet.bump sheet c_states;
    Option.iter (fun p -> Obs.Progress.tick p) progress;
    let o, cks, skips = run_continuation () in
    record ~reboots (judge o skips);
    if depth_left > 0 then expand ~reboots ~depth_left cks
  and expand ~reboots ~depth_left cks =
    let n_final = Machine.charges m in
    if Array.length cks > 0 then begin
      let c0 = Kernel.Engine.checkpoint_charges (fst cks.(0)) in
      let cursor = ref 0 in
      let k = ref (c0 + 1) in
      while !k <= n_final && budget_left () do
        let ck, extras = advance_cursor cks cursor !k in
        Kernel.Engine.restore engine ck;
        extras ();
        let before = Machine.now m in
        Obs.Sheet.add sheet c_prefix_saved before;
        Machine.set_failure m (Failure.Nth_charge !k);
        (match Kernel.Engine.run_until_boundary engine with
        | Kernel.Engine.Finished o ->
            (* the failure was deferred into the final commit's critical
               section and the run completed first: a full execution,
               judged on its final state (its decisions replay the
               parent's, so no fresh Always watch is needed) *)
            explore_us := !explore_us + (Machine.now m - before);
            record ~reboots:(!k :: reboots) (judge o [])
        | Kernel.Engine.Paused ->
            Kernel.Engine.resume engine;
            explore_us := !explore_us + (Machine.now m - before);
            let child = Kernel.Engine.checkpoint engine in
            let key =
              ( Machine.snapshot_behavior_hash (Kernel.Engine.checkpoint_snapshot child),
                Kernel.Engine.checkpoint_stalled child )
            in
            if prune && Hashtbl.mem seen key then begin
              incr pruned;
              Obs.Sheet.bump sheet c_pruned
            end
            else begin
              if prune then Hashtbl.add seen key ();
              (* the engine is already positioned at the child *)
              visit ~reboots:(!k :: reboots) ~depth_left:(depth_left - 1)
            end);
        incr k
      done
    end
  in
  (* Root: the continuous run doubles as the golden capture — its
     checkpoints seed the whole boundary space (the first attempt top
     precedes every charge). *)
  incr states;
  Obs.Sheet.bump sheet c_states;
  Option.iter (fun p -> Obs.Progress.tick p) progress;
  let o0, cks0, skips0 = run_continuation () in
  golden := Some (Faultkit.Oracle.capture m);
  if o0.Kernel.Engine.gave_up || o0.Kernel.Engine.correct = Some false || skips0 <> [] then
    failwith
      (Printf.sprintf "Explore: golden (no-failure) run of %s under %s is not correct"
         spec.Apps.Common.app_name
         (Apps.Common.variant_name variant));
  let boundaries = Machine.charges m in
  if depth > 0 then expand ~reboots:[] ~depth_left:depth cks0;
  session.Apps.Common.ses_finish ();
  Obs.Attr.add_phase attr "explore" !explore_us;
  {
    app = spec.Apps.Common.app_name;
    variant;
    seed;
    depth;
    boundaries;
    states = !states;
    pruned = !pruned;
    truncated = !truncated;
    findings = List.rev !findings;
    snap = Obs.Snapshot.of_sheet ~events:(Machine.events m) sheet;
    profile = Obs.Attr.profile attr;
  }

(* {1 Exports} *)

let mismatch_json (mm : Faultkit.Oracle.mismatch) =
  Trace.Json.Obj
    [
      ("region", Trace.Json.String mm.Faultkit.Oracle.region);
      ("offset", Trace.Json.Int mm.Faultkit.Oracle.offset);
      ("expected", Trace.Json.Int mm.Faultkit.Oracle.expected);
      ("actual", Trace.Json.Int mm.Faultkit.Oracle.actual);
    ]

let violation_json = function
  | Livelock task ->
      Trace.Json.Obj
        [ ("kind", Trace.Json.String "livelock"); ("stuck_task", Trace.Json.String task) ]
  | App_incorrect -> Trace.Json.Obj [ ("kind", Trace.Json.String "app-incorrect") ]
  | Nv_mismatch ms ->
      Trace.Json.Obj
        [
          ("kind", Trace.Json.String "nv-mismatch");
          ("mismatches", Trace.Json.List (List.map mismatch_json ms));
        ]
  | Always_skipped sites ->
      Trace.Json.Obj
        [
          ("kind", Trace.Json.String "always-skipped");
          ("sites", Trace.Json.List (List.map (fun s -> Trace.Json.String s) sites));
        ]

let finding_json f =
  Trace.Json.Obj
    [
      ("reboots", Trace.Json.List (List.map (fun k -> Trace.Json.Int k) f.reboots));
      ("violations", Trace.Json.List (List.map violation_json f.violations));
    ]

let max_findings_in_json = 20

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let to_json r =
  Trace.Json.Obj
    [
      ("app", Trace.Json.String r.app);
      ("runtime", Trace.Json.String (Apps.Common.variant_name r.variant));
      ("seed", Trace.Json.Int r.seed);
      ("depth", Trace.Json.Int r.depth);
      ("boundaries", Trace.Json.Int r.boundaries);
      ("states", Trace.Json.Int r.states);
      ("pruned", Trace.Json.Int r.pruned);
      ("truncated", Trace.Json.Bool r.truncated);
      ("passed", Trace.Json.Bool (passed r));
      ("findings_count", Trace.Json.Int (List.length r.findings));
      ("findings", Trace.Json.List (List.map finding_json (take max_findings_in_json r.findings)));
      ("metrics", Obs.Snapshot.to_json r.snap);
      ("profile", Obs.Attr.to_json r.profile);
    ]

let flamegraph r = Obs.Attr.to_folded ~prefix:(r.app ^ "/explore") r.profile
