(** The paper's evaluation experiments (§5), one function per table or
    figure. Each returns printable rows so both the benchmark harness
    and the CLI can render them. *)

open Platform

val paper_failures : Failure.spec
(** §5.1: timer-emulated power failures, on-time U[5 ms, 20 ms]. *)

type breakdown = {
  b_label : string;  (** runtime name *)
  b_app_ms : float;
  b_ovh_ms : float;
  b_wasted_ms : float;
  b_total_ms : float;
  b_energy_uj : float;
  b_pf : float;
  b_io : float;
  b_redundant : float;
  b_incorrect : int;
  b_runs : int;
}

val breakdown :
  ?jobs:int ->
  ?tick:(unit -> unit) ->
  runs:int ->
  (variant:'v -> failure:Failure.spec -> seed:int -> Run.one) ->
  label:('v -> string) ->
  'v list ->
  breakdown list
(** Aggregate one application over [runs] seeded executions for each
    runtime variant, measuring redundant I/O against a continuous-power
    golden run of the same variant. [jobs] is forwarded to
    {!Run.average}: the sweep runs on that many domains and the
    resulting rows are bit-identical for every [jobs]. *)

val print_breakdown_table : title:string -> breakdown list list -> unit
(** Fig. 7/Fig. 10-style rows: app/overhead/wasted/total per runtime. *)

val print_energy_table : title:string -> (string * breakdown list) list -> unit
(** Fig. 8/Fig. 11-style rows. *)

val print_table4 : (string * breakdown list) list -> unit
val print_fig12 : breakdown list -> unit
