(* The emitter itself lives in [Trace.Json], at the bottom of the
   library stack, so the trace exporters can use it; this module
   re-exports it under the historical name. *)
include Trace.Json
