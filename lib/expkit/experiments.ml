open Platform

let paper_failures = Failure.paper_timer

type breakdown = {
  b_label : string;
  b_app_ms : float;
  b_ovh_ms : float;
  b_wasted_ms : float;
  b_total_ms : float;
  b_energy_uj : float;
  b_pf : float;
  b_io : float;
  b_redundant : float;
  b_incorrect : int;
  b_runs : int;
}

let breakdown ?jobs ?tick ~runs run ~label variants =
  List.map
    (fun v ->
      let agg =
        Run.average ?jobs ?tick ~runs
          ~golden:(fun () -> run ~variant:v ~failure:Failure.No_failures ~seed:0)
          (fun ~seed -> run ~variant:v ~failure:paper_failures ~seed)
      in
      {
        b_label = label v;
        b_app_ms = agg.Run.avg_app_ms;
        b_ovh_ms = agg.Run.avg_ovh_ms;
        b_wasted_ms = agg.Run.avg_wasted_ms;
        b_total_ms = agg.Run.avg_total_ms;
        b_energy_uj = agg.Run.avg_energy_uj;
        b_pf = agg.Run.avg_pf;
        b_io = agg.Run.avg_io;
        b_redundant = agg.Run.avg_redundant_io;
        b_incorrect = agg.Run.incorrect_runs;
        b_runs = agg.Run.runs;
      })
    variants

let widths = [ 14; 10; 10; 10; 10; 8 ]

let print_breakdown_table ~title groups =
  print_endline (Tablefmt.heading title);
  print_endline
    (Tablefmt.row widths [ "Runtime"; "App"; "Overhead"; "Wasted"; "Total"; "PF" ]);
  print_endline (Tablefmt.rule widths);
  List.iter
    (fun rows ->
      List.iter
        (fun b ->
          print_endline
            (Tablefmt.row widths
               [
                 b.b_label;
                 Tablefmt.ms b.b_app_ms;
                 Tablefmt.ms b.b_ovh_ms;
                 Tablefmt.ms b.b_wasted_ms;
                 Tablefmt.ms b.b_total_ms;
                 Tablefmt.f1 b.b_pf;
               ]))
        rows;
      print_endline (Tablefmt.rule widths))
    groups

let print_energy_table ~title groups =
  print_endline (Tablefmt.heading title);
  let w = [ 14; 14; 12 ] in
  print_endline (Tablefmt.row w [ "App"; "Runtime"; "Energy" ]);
  print_endline (Tablefmt.rule w);
  List.iter
    (fun (app, rows) ->
      List.iter
        (fun b -> print_endline (Tablefmt.row w [ app; b.b_label; Tablefmt.uj b.b_energy_uj ]))
        rows;
      print_endline (Tablefmt.rule w))
    groups

let print_table4 groups =
  print_endline
    (Tablefmt.heading
       "Table 4: power failures and redundant I/O re-executions (totals over all runs)");
  let w = [ 14; 12; 10; 12; 14 ] in
  print_endline (Tablefmt.row w [ "App"; "Runtime"; "PF"; "I/O execs"; "Redundant I/O" ]);
  print_endline (Tablefmt.rule w);
  List.iter
    (fun (app, rows) ->
      let base =
        match rows with b :: _ -> (b.b_redundant *. float_of_int b.b_runs) +. 1e-9 | [] -> 1.
      in
      List.iter
        (fun b ->
          let pf = b.b_pf *. float_of_int b.b_runs in
          let io = b.b_io *. float_of_int b.b_runs in
          let red = b.b_redundant *. float_of_int b.b_runs in
          let delta =
            if b.b_label = "Alpaca" || base <= 1e-6 then ""
            else Printf.sprintf " (%+.0f%%)" ((red -. base) /. base *. 100.)
          in
          print_endline
            (Tablefmt.row w
               [
                 app;
                 b.b_label;
                 Printf.sprintf "%.0f" pf;
                 Printf.sprintf "%.0f" io;
                 Printf.sprintf "%.0f%s" red delta;
               ]))
        rows;
      print_endline (Tablefmt.rule w))
    groups

let print_fig12 rows =
  print_endline
    (Tablefmt.heading "Figure 12: correct vs incorrect FIR executions under power failures");
  let w = [ 14; 10; 10 ] in
  print_endline (Tablefmt.row w [ "Runtime"; "Correct"; "Incorrect" ]);
  print_endline (Tablefmt.rule w);
  List.iter
    (fun b ->
      print_endline
        (Tablefmt.row w
           [
             b.b_label;
             string_of_int (b.b_runs - b.b_incorrect);
             string_of_int b.b_incorrect;
           ]))
    rows
