(** Fixed-size domain pool for deterministic parallel sweeps.

    The evaluation protocol runs each application once per seed; every
    run is a pure function of its seed (each constructs its own
    {!Platform.Machine.t}), so the sweep is embarrassingly parallel.
    This module fans a seed range out over stdlib [Domain]s in chunks
    and returns the per-seed results {e in input order}, so any fold
    over them is performed in the same order as the sequential loop and
    aggregates are bit-identical to the [jobs = 1] oracle. *)

val max_jobs : int
(** Upper cap on worker domains (spawning more domains than cores only
    adds scheduling overhead). *)

val default_jobs : unit -> int
(** [min (Domain.recommended_domain_count ()) max_jobs]; [1] on a
    single-core host, i.e. the sequential path. *)

val map : ?jobs:int -> ?chunk:int -> ?tick:(unit -> unit) -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [[| f 0; …; f (n-1) |]]. With [jobs = 1] (or
    [n <= 1]) everything runs in the calling domain, in index order —
    this is the sequential oracle. With [jobs > 1], [jobs - 1] extra
    domains are spawned and the calling domain participates; indices
    are handed out in contiguous chunks via an atomic cursor and each
    worker writes only its own slots, so every index runs exactly once
    and the result array is in index order regardless of scheduling.
    [f] must not touch mutable state shared across calls. The first
    exception raised by any call is re-raised (with its backtrace)
    after all workers have been joined.

    When [Domain.recommended_domain_count () = 1] the sequential path is
    always taken, even for an explicit [jobs > 1]: on a single core,
    spawned domains only time-slice against each other and measurably
    lose. Results are identical either way.

    [tick] is invoked once after each completed index — progress
    reporting, not data flow: it sees no result and runs on whichever
    domain completed the index, so it must be thread-safe
    ([Obs.Progress.tick] is). Results are unaffected by it.

    [chunk] overrides the contiguous chunk length handed out per
    cursor fetch (default: [max 1 (n / (jobs * 8))]). Any positive
    value yields the same results — it only shifts the
    contention/balance trade-off — which is exactly what the qcheck
    property in [test_pool] pins down.

    @raise Invalid_argument if [n < 0], [jobs < 1] or [chunk < 1]. *)

val map_seeds : ?jobs:int -> ?tick:(unit -> unit) -> runs:int -> (seed:int -> 'a) -> 'a array
(** [map_seeds ~runs f] is [map runs (fun i -> f ~seed:(i + 1))]: the
    paper protocol's 1-based seed range. *)
