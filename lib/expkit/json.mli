(** Minimal JSON emitter for machine-readable bench output.

    The container has no JSON dependency, and the bench harness only
    needs serialization, so this is a small value type plus a printer
    (RFC 8259-compliant escaping; non-finite floats become [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline,
    so the output file diffs cleanly between bench runs. *)

val to_file : string -> t -> unit
(** [to_file path v] writes [to_string v] to [path] atomically enough
    for our purposes (single [open_out]/[close_out]). *)
