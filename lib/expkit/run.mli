(** Per-run measurements and multi-seed aggregation.

    The paper executes each application 1000 times with pseudo-random
    seeds and reports averages (§5.3); {!average} implements that
    protocol over any single-run function. *)

open Platform

type one = {
  completed : bool;
  correct : bool option;
      (** app-check verdict; gave-up runs are folded to [Some false]
          here so aggregate incorrect-run counting is unchanged (the
          raw engine outcome reports [None] for them) *)
  gave_up : bool;  (** engine stopped before the app finished *)
  stuck_task : string option;  (** task being attempted at give-up *)
  total_us : int;  (** wall clock, including off intervals *)
  app_us : int;  (** useful application work *)
  ovh_us : int;  (** useful runtime overhead *)
  wasted_us : int;  (** work lost to power failures *)
  energy_nj : float;
  pf : int;  (** power failures *)
  commits : int;  (** committed task attempts *)
  attempts : int;  (** all task attempts (committed + aborted) *)
  io : (string * int) list;  (** per-kind I/O executions *)
}

val of_outcome : Machine.t -> Kernel.Engine.outcome -> one

type agg = {
  runs : int;
  avg_total_ms : float;
  avg_app_ms : float;
  avg_ovh_ms : float;
  avg_wasted_ms : float;
  avg_energy_uj : float;
  avg_pf : float;
  avg_io : float;  (** total I/O executions per run *)
  avg_redundant_io : float;  (** executions beyond the continuous-power need *)
  correct_runs : int;
  incorrect_runs : int;
}

val average :
  ?jobs:int ->
  ?tick:(unit -> unit) ->
  runs:int ->
  golden:(unit -> one) ->
  (seed:int -> one) ->
  agg
(** [average ~runs ~golden f] runs [f] for seeds 1..runs and aggregates;
    redundant I/O is measured against one golden (continuous-power)
    execution. The sweep is fanned out over [jobs] domains (default
    {!Pool.default_jobs}; [1] is the sequential oracle) via {!Pool};
    per-run results are folded in seed order, so the aggregate is
    bit-identical for every [jobs]. [f] must construct all of its
    mutable state — the [Machine], runtime, application — per call. *)

val io_total : one -> int

val redundant_vs_golden : golden:one -> one -> int
(** Per-kind I/O executions beyond the golden (continuous-power) run's
    need, summed: [Σ max 0 (n - golden_n)]. The same measure {!average}
    aggregates, exposed for single runs (CLI, trace validation). *)
