let max_jobs = 64
let default_jobs () = min (Domain.recommended_domain_count ()) max_jobs

(* Chunks amortize the atomic cursor without starving workers at the
   tail: a handful of chunks per worker balances load even when some
   seeds hit many more power failures than others. *)
let chunk_size n jobs = max 1 (n / (jobs * 8))

let no_tick () = ()

let fill_parallel results n jobs chunk tick f =
  let cursor = Atomic.make 0 in
  let error = Atomic.make None in
  let worker () =
    let rec loop () =
      let lo = Atomic.fetch_and_add cursor chunk in
      if lo < n && Atomic.get error = None then begin
        let hi = min n (lo + chunk) in
        (try
           for i = lo to hi - 1 do
             results.(i) <- Some (f i);
             tick ()
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set error None (Some (e, bt))));
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  match Atomic.get error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map ?jobs ?chunk ?(tick = no_tick) n f =
  if n < 0 then invalid_arg "Pool.map: negative size";
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j -> if j < 1 then invalid_arg "Pool.map: jobs must be positive" else j
  in
  let jobs = min jobs (max 1 n) in
  (* On a single-core host extra domains only time-slice against each
     other and lose (calibration measured --jobs 4 at 2.4x slower than
     sequential on a 1-core container), so an explicit jobs request is
     overridden down to the sequential path. *)
  let jobs = if Domain.recommended_domain_count () = 1 then 1 else jobs in
  let chunk =
    match chunk with
    | None -> chunk_size n jobs
    | Some c -> if c < 1 then invalid_arg "Pool.map: chunk must be positive" else c
  in
  let results = Array.make n None in
  if jobs = 1 then
    for i = 0 to n - 1 do
      results.(i) <- Some (f i);
      tick ()
    done
  else fill_parallel results n jobs chunk tick f;
  Array.map (function Some v -> v | None -> assert false) results

let map_seeds ?jobs ?tick ~runs f = map ?jobs ?tick runs (fun i -> f ~seed:(i + 1))
