
type one = {
  completed : bool;
  correct : bool option;
  gave_up : bool;
  stuck_task : string option;
  total_us : int;
  app_us : int;
  ovh_us : int;
  wasted_us : int;
  energy_nj : float;
  pf : int;
  commits : int;
  attempts : int;
  io : (string * int) list;
}

let of_outcome m (o : Kernel.Engine.outcome) =
  {
    completed = o.completed;
    (* a gave-up run counts as incorrect in aggregates (the engine
       itself reports [None]: the check never ran) *)
    correct = (if o.gave_up then Some false else o.correct);
    gave_up = o.gave_up;
    stuck_task = o.stuck_task;
    total_us = o.total_time_us;
    app_us = o.metrics.Kernel.Metrics.useful_app_us;
    ovh_us = o.metrics.Kernel.Metrics.useful_ovh_us;
    wasted_us = o.metrics.Kernel.Metrics.wasted_us;
    energy_nj = o.energy_nj;
    pf = o.power_failures;
    commits = o.metrics.Kernel.Metrics.commits;
    attempts = o.metrics.Kernel.Metrics.attempts;
    io = Kernel.Golden.io_executions m;
  }

type agg = {
  runs : int;
  avg_total_ms : float;
  avg_app_ms : float;
  avg_ovh_ms : float;
  avg_wasted_ms : float;
  avg_energy_uj : float;
  avg_pf : float;
  avg_io : float;
  avg_redundant_io : float;
  correct_runs : int;
  incorrect_runs : int;
}

let io_total one = List.fold_left (fun acc (_, n) -> acc + n) 0 one.io

(* The golden I/O counts used to be probed with [List.assoc] per entry
   per run — O(runs * kinds^2) over an aggregate. Build the lookup once
   per aggregate instead; first binding wins, like [List.assoc]. *)
let golden_io_table golden =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (name, n) -> if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name n) golden.io;
  tbl

let redundant_io gtbl one =
  List.fold_left
    (fun acc (name, n) ->
      let g = match Hashtbl.find_opt gtbl name with Some g -> g | None -> 0 in
      acc + max 0 (n - g))
    0 one.io

let redundant_vs_golden ~golden one = redundant_io (golden_io_table golden) one

let average ?jobs ?tick ~runs ~golden f =
  if runs < 1 then invalid_arg "Run.average: runs must be positive";
  let g = golden () in
  let gtbl = golden_io_table g in
  (* fan the seed sweep out over domains; [ones] comes back in seed
     order, so the float accumulation below happens in exactly the
     order the sequential loop used and the aggregate is bit-identical
     for any [jobs] *)
  let ones = Pool.map_seeds ?jobs ?tick ~runs f in
  let acc_total = ref 0. and acc_app = ref 0. and acc_ovh = ref 0. in
  let acc_wasted = ref 0. and acc_energy = ref 0. and acc_pf = ref 0. in
  let acc_io = ref 0. and acc_red = ref 0. in
  let correct = ref 0 and incorrect = ref 0 in
  Array.iter
    (fun one ->
      acc_total := !acc_total +. float_of_int one.total_us;
      acc_app := !acc_app +. float_of_int one.app_us;
      acc_ovh := !acc_ovh +. float_of_int one.ovh_us;
      acc_wasted := !acc_wasted +. float_of_int one.wasted_us;
      acc_energy := !acc_energy +. one.energy_nj;
      acc_pf := !acc_pf +. float_of_int one.pf;
      acc_io := !acc_io +. float_of_int (io_total one);
      acc_red := !acc_red +. float_of_int (redundant_io gtbl one);
      match one.correct with
      | Some true -> incr correct
      | Some false -> incr incorrect
      | None -> ())
    ones;
  let n = float_of_int runs in
  {
    runs;
    avg_total_ms = !acc_total /. n /. 1000.;
    avg_app_ms = !acc_app /. n /. 1000.;
    avg_ovh_ms = !acc_ovh /. n /. 1000.;
    avg_wasted_ms = !acc_wasted /. n /. 1000.;
    avg_energy_uj = !acc_energy /. n /. 1000.;
    avg_pf = !acc_pf /. n;
    avg_io = !acc_io /. n;
    avg_redundant_io = !acc_red /. n;
    correct_runs = !correct;
    incorrect_runs = !incorrect;
  }
