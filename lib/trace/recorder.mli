(** In-memory event recorder — the standard sink implementation.

    Prepend-on-emit, reverse-on-read: emission is O(1) so attaching a
    recorder perturbs host-side timing as little as possible. *)

type t

val create : unit -> t

val sink : t -> Event.sink
(** The sink to install with [Platform.Machine.set_sink]. *)

val events : t -> Event.t list
(** Recorded events in emission order. *)

val length : t -> int
val clear : t -> unit
