(** Structured execution-trace events.

    Everything the simulator can narrate about one run: power cycles,
    task attempts, I/O re-execution decisions, runtime privatization
    work and peripheral activity. The schema is deliberately built from
    primitives only (strings, ints, floats) so this library sits below
    [Platform] — the machine carries an optional {!sink} and every layer
    above it emits through [Platform.Machine.emit].

    Emission is pure observation: producing an event never charges
    simulated time or energy, so a run with a sink attached is
    numerically identical to the same run without one. *)

type sem = Single | Timely of int | Always
(** Mirror of [Easeio.Semantics.t] (which lives above this library);
    [Timely] carries the freshness window in µs. *)

val sem_name : sem -> string

(** What the runtime decided at a guarded I/O site:
    - [Exec] — first execution of the site in this task instance;
    - [Replay] — the site had already completed but is re-executed
      (dependence fired, enclosing block violated, freshness expired,
      or [Always] semantics);
    - [Skip] — the completed result is restored instead of re-running
      the operation. Only [Single]/[Timely] sites can skip. *)
type decision = Exec | Replay | Skip

val decision_name : decision -> string

type mem = Fram | Sram

val mem_name : mem -> string

type payload =
  | Boot of { index : int }  (** power-on number [index] (1 = first) *)
  | Power_failure of { index : int; cap_nj : float }
      (** the instant power is lost; [cap_nj] is the capacitor level *)
  | Cap_level of { nj : float }
      (** periodic capacitor sample (about one per simulated ms) *)
  | Task_start of { task : string; attempt : int }
      (** attempt [attempt] (1-based, per task) begins *)
  | Task_commit of {
      task : string;
      attempt : int;
      app_us : int;
      ovh_us : int;
      app_nj : float;
      ovh_nj : float;
    }  (** the attempt committed; fields are its work buckets *)
  | Task_abort of {
      task : string;
      attempt : int;
      app_us : int;
      ovh_us : int;
      app_nj : float;
      ovh_nj : float;
    }
      (** a power failure killed the attempt; its buckets are the
          wasted work. [task] is ["(dispatch)"] for the rare death
          inside the engine's task-pointer read, before a task was
          identified. *)
  | Io of { site : string; kind : string; sem : sem; decision : decision; reason : string }
      (** a guarded I/O site was evaluated. [kind] is ["call"],
          ["block"], ["dma"] or ["dma-priv"]; [reason] explains the
          decision (e.g. ["first"], ["done"], ["fresh"], ["expired"],
          ["dep"], ["block-skip"], ["block-force"], ["always"]). *)
  | Privatize of { runtime : string; task : string; words : int }
      (** a baseline runtime copied [words] words into private buffers
          at task start *)
  | Commit of { runtime : string; task : string; words : int }
      (** a baseline runtime made [words] words visible at task end *)
  | Region_priv of { region : string; words : int; restored : bool }
      (** EaseIO regional privatization: snapshot on first entry
          ([restored = false]) or recovery after a failure *)
  | Dma of { src : mem; dst : mem; words : int }  (** transfer programmed *)
  | Lea of { op : string; elements : int }  (** accelerator command issued *)
  | Radio_send of { words : int }  (** packet transmission started *)
  | Fault of { kind : string; index : int }
      (** an injected peripheral fault struck: [kind] is
          ["radio-drop"], ["sensor-glitch"] or ["dma-interrupt"];
          [index] is the 1-based occurrence number within its class
          (see [Platform.Faults]) *)
  | Radio_retry of { attempt : int; backoff_us : int }
      (** the retry policy re-arms a dropped transmission: attempt
          [attempt] failed and the sender backs off [backoff_us]
          before attempt [attempt + 1] *)
  | Radio_give_up of { attempts : int }
      (** retry budget exhausted after [attempts] tries; the sender
          degrades gracefully (drops the packet and continues) *)
  | Count of { name : string; count : int }
      (** a machine event counter ticked to [count]; names starting
          with ["io:"] are peripheral executions, and the final count
          per name equals [Platform.Machine.event] — the basis of the
          redundant-I/O reconciliation *)

type t = { ts_us : int; payload : payload }
(** An event stamped with the simulated time it occurred at. *)

type sink = t -> unit
(** Event consumer. The machine invokes it synchronously at emission;
    it must not touch the machine (the in-memory {!Recorder} is the
    standard sink). *)
