type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* make sure the token parses as a JSON number, not an integer that
       loses its floatness downstream *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* {1 Parser}

   Recursive descent over the same value type; [easeio report] diffs
   bench documents this library wrote, so the grammar is plain RFC 8259
   (no comments, no trailing commas). A numeric token without '.', 'e'
   or 'E' becomes [Int]; everything else numeric becomes [Float] —
   matching [float_repr], which always marks a float. *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun msg -> raise (Parse (Printf.sprintf "%s at byte %d" msg !pos))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, found %C" c c'
    | None -> fail "expected %C, found end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape %S" hex
              in
              (* our own emitter only escapes control characters; decode
                 the BMP point as UTF-8 so round-trips are lossless *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
              end;
              pos := !pos + 4
          | c -> fail "bad escape \\%C" c);
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_num_char = function
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* out-of-range integer literal: keep it as a float *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %C" c
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos) else Ok v
  | exception Parse msg -> Error msg

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

(* Write-then-rename: an interrupted run can leave PATH.tmp behind but
   never a truncated PATH, so downstream consumers (plot scripts, the
   bench validator) always see a complete document. *)
let to_file path v =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match output_string oc (to_string v) with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path
