type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* make sure the token parses as a JSON number, not an integer that
       loses its floatness downstream *)
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let rec emit buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf ": ";
          emit buf (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Write-then-rename: an interrupted run can leave PATH.tmp behind but
   never a truncated PATH, so downstream consumers (plot scripts, the
   bench validator) always see a complete document. *)
let to_file path v =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match output_string oc (to_string v) with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path
