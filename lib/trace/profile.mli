(** Derived per-task / per-I/O-site profile of a trace.

    Folds an event stream into the aggregate view the paper's figures
    are built from — and, crucially, into totals that must reconcile
    exactly with the simulator's own accounting ([Kernel.Metrics] and
    the golden-run redundant-I/O probe), making the end-of-run numbers
    auditable event-by-event. *)

type task_stats = {
  task : string;
  commits : int;
  aborts : int;
  app_us : int;  (** useful application work (committed attempts) *)
  ovh_us : int;  (** useful runtime overhead (committed attempts) *)
  wasted_us : int;  (** work lost to power failures (aborted attempts) *)
  app_nj : float;
  ovh_nj : float;
  wasted_nj : float;
  wasted_hist : int array;  (** aborted-attempt durations, log-bucketed *)
}

type site_stats = {
  site : string;
  kind : string;  (** "call" | "block" | "dma" | "dma-priv" *)
  sem : string;  (** "Single" | "Timely" | "Always" *)
  execs : int;
  replays : int;
  skips : int;
}

type t = {
  tasks : task_stats list;  (** sorted by task name *)
  sites : site_stats list;  (** sorted by site key *)
  io : (string * int) list;  (** final per-kind I/O execution counts, sorted *)
  boots : int;
  power_failures : int;
  privatized_words : int;  (** baseline-runtime privatization traffic *)
  committed_words : int;
  region_snapshots : int;  (** EaseIO regions: first-entry snapshots *)
  region_restores : int;  (** EaseIO regions: post-failure recoveries *)
}

val of_events : Event.t list -> t

val attempts_of : task_stats -> int
val total_attempts : t -> int
val total_commits : t -> int
val total_app_us : t -> int
val total_ovh_us : t -> int
val total_wasted_us : t -> int
val total_skips : t -> int

val redundant : t -> golden:(string * int) list -> int
(** [redundant t ~golden] counts traced I/O executions beyond the
    golden (continuous-power) run's per-kind counts — the trace-side
    recomputation of [Kernel.Golden.redundant_io]. *)

val reconcile :
  t ->
  app_us:int ->
  ovh_us:int ->
  wasted_us:int ->
  commits:int ->
  attempts:int ->
  io:(string * int) list ->
  (unit, string) result
(** Check the cross-layer invariant: summed traced attempt buckets must
    equal the [Kernel.Metrics] totals, and traced per-kind I/O counts
    must equal the machine's event counters. Returns the first
    discrepancy found. *)

val to_json : t -> Json.t

val hist_label : int -> string
(** Human-readable bucket bound for index [i] of [wasted_hist]. *)
