(** Trace exporters.

    Both exporters are pure functions of the event list, so the same
    seed always produces byte-identical output — a property the test
    suite enforces. *)

val chrome : Event.t list -> Json.t
(** Chrome trace-event format (the JSON object variant), loadable in
    ui.perfetto.dev or chrome://tracing: task attempts as duration
    events with outcome/attempt args, power failures as instants, off
    intervals as duration events on the power track, the capacitor
    level and per-kind I/O execution counts as counter tracks, and I/O
    decisions / peripheral activity as instants. *)

val text : Event.t list -> string
(** One line per event, timestamp-prefixed — the quick grep-able view. *)
