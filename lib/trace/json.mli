(** Minimal JSON emitter for machine-readable output.

    The container has no JSON dependency, and the harness only needs
    serialization, so this is a small value type plus a printer
    (RFC 8259-compliant escaping; non-finite floats become [null]). It
    lives at the bottom of the library stack so both the trace exporters
    and [Expkit.Json] (which re-exports it) can build on it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline,
    so the output file diffs cleanly between runs. *)

val to_file : string -> t -> unit
(** [to_file path v] writes [to_string v] atomically: the document goes
    to [path ^ ".tmp"] first and is renamed over [path] only once fully
    written, so an interrupted run never leaves a truncated file. *)

val of_string : string -> (t, string) result
(** Parse an RFC 8259 document. Numeric tokens without a fractional or
    exponent part become [Int], the rest [Float] — the inverse of
    [float_repr], which always marks floats, so emit/parse round-trips
    preserve the constructor. Errors carry a byte offset. *)

val of_file : string -> (t, string) result
(** [of_string] over a whole file; I/O failures are reported as
    [Error] rather than raised. *)
