(* {1 Chrome trace-event JSON (Perfetto / chrome://tracing)}

   One process (pid 0), four threads:
     tid 0 — task attempts as duration events (outcome in args)
     tid 1 — I/O re-execution decisions as instants
     tid 2 — peripheral activity (DMA, LEA, radio) as instants
     tid 3 — power: failure instants plus "off" duration events
   Capacitor level and the io:* execution counters are counter tracks
   ("ph": "C"). Timestamps are already µs, Chrome's native unit. *)

let thread_meta tid name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let instant ~ts ~tid ~name ~cat args =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Int ts);
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let duration ~ts ~dur ~tid ~name ~cat args =
  Json.Obj
    [
      ("name", Json.String name);
      ("cat", Json.String cat);
      ("ph", Json.String "X");
      ("ts", Json.Int ts);
      ("dur", Json.Int dur);
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj args);
    ]

let counter ~ts ~name value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Int ts);
      ("pid", Json.Int 0);
      ("args", Json.Obj [ ("value", value) ]);
    ]

let chrome events =
  let out = ref [] in
  let push e = out := e :: !out in
  List.iter push
    [
      thread_meta 0 "tasks";
      thread_meta 1 "io decisions";
      thread_meta 2 "peripherals";
      thread_meta 3 "power";
    ];
  (* pending task attempt: (ts, task, attempt) *)
  let pending = ref None in
  (* ts of the last power failure, to draw the off interval up to the
     following boot *)
  let last_failure = ref None in
  let attempt_end ~ts ~outcome task attempt app_us ovh_us =
    let start_ts = match !pending with Some (ts0, _, _) -> ts0 | None -> ts in
    pending := None;
    push
      (duration ~ts:start_ts ~dur:(ts - start_ts) ~tid:0 ~name:task ~cat:"task"
         [
           ("attempt", Json.Int attempt);
           ("outcome", Json.String outcome);
           ("app_us", Json.Int app_us);
           ("overhead_us", Json.Int ovh_us);
         ])
  in
  List.iter
    (fun (e : Event.t) ->
      let ts = e.ts_us in
      match e.payload with
      | Event.Boot { index } ->
          (match !last_failure with
          | Some fts when index > 1 ->
              push
                (duration ~ts:fts ~dur:(ts - fts) ~tid:3 ~name:"off" ~cat:"power"
                   [ ("boot", Json.Int index) ])
          | _ -> ());
          last_failure := None;
          push (instant ~ts ~tid:3 ~name:"boot" ~cat:"power" [ ("index", Json.Int index) ])
      | Event.Power_failure { index; cap_nj } ->
          last_failure := Some ts;
          push
            (Json.Obj
               [
                 ("name", Json.String "power_failure");
                 ("cat", Json.String "power");
                 ("ph", Json.String "i");
                 ("s", Json.String "g");
                 ("ts", Json.Int ts);
                 ("pid", Json.Int 0);
                 ("tid", Json.Int 3);
                 ( "args",
                   Json.Obj [ ("index", Json.Int index); ("cap_nj", Json.Float cap_nj) ] );
               ])
      | Event.Cap_level { nj } -> push (counter ~ts ~name:"capacitor_nj" (Json.Float nj))
      | Event.Task_start { task; attempt } -> pending := Some (ts, task, attempt)
      | Event.Task_commit { task; attempt; app_us; ovh_us; _ } ->
          attempt_end ~ts ~outcome:"commit" task attempt app_us ovh_us
      | Event.Task_abort { task; attempt; app_us; ovh_us; _ } ->
          attempt_end ~ts ~outcome:"abort" task attempt app_us ovh_us
      | Event.Io { site; kind; sem; decision; reason } ->
          push
            (instant ~ts ~tid:1
               ~name:(Event.decision_name decision ^ " " ^ site)
               ~cat:"io"
               [
                 ("site", Json.String site);
                 ("kind", Json.String kind);
                 ("sem", Json.String (Event.sem_name sem));
                 ("decision", Json.String (Event.decision_name decision));
                 ("reason", Json.String reason);
               ])
      | Event.Privatize { runtime; task; words } ->
          push
            (instant ~ts ~tid:2 ~name:"privatize" ~cat:"runtime"
               [
                 ("runtime", Json.String runtime);
                 ("task", Json.String task);
                 ("words", Json.Int words);
               ])
      | Event.Commit { runtime; task; words } ->
          push
            (instant ~ts ~tid:2 ~name:"commit" ~cat:"runtime"
               [
                 ("runtime", Json.String runtime);
                 ("task", Json.String task);
                 ("words", Json.Int words);
               ])
      | Event.Region_priv { region; words; restored } ->
          push
            (instant ~ts ~tid:2
               ~name:(if restored then "region restore" else "region snapshot")
               ~cat:"runtime"
               [ ("region", Json.String region); ("words", Json.Int words) ])
      | Event.Dma { src; dst; words } ->
          push
            (instant ~ts ~tid:2 ~name:"DMA" ~cat:"periph"
               [
                 ("src", Json.String (Event.mem_name src));
                 ("dst", Json.String (Event.mem_name dst));
                 ("words", Json.Int words);
               ])
      | Event.Lea { op; elements } ->
          push
            (instant ~ts ~tid:2 ~name:("LEA " ^ op) ~cat:"periph"
               [ ("elements", Json.Int elements) ])
      | Event.Radio_send { words } ->
          push (instant ~ts ~tid:2 ~name:"radio send" ~cat:"periph" [ ("words", Json.Int words) ])
      | Event.Fault { kind; index } ->
          push
            (instant ~ts ~tid:2 ~name:("fault " ^ kind) ~cat:"fault"
               [ ("kind", Json.String kind); ("index", Json.Int index) ])
      | Event.Radio_retry { attempt; backoff_us } ->
          push
            (instant ~ts ~tid:2 ~name:"radio retry" ~cat:"periph"
               [ ("attempt", Json.Int attempt); ("backoff_us", Json.Int backoff_us) ])
      | Event.Radio_give_up { attempts } ->
          push
            (instant ~ts ~tid:2 ~name:"radio give up" ~cat:"periph"
               [ ("attempts", Json.Int attempts) ])
      | Event.Count { name; count } -> push (counter ~ts ~name (Json.Int count)))
    events;
  (match !pending with
  | Some (ts0, task, attempt) ->
      (* run ended mid-attempt (gave up): close the span with zero length *)
      push
        (duration ~ts:ts0 ~dur:0 ~tid:0 ~name:task ~cat:"task"
           [ ("attempt", Json.Int attempt); ("outcome", Json.String "unfinished") ])
  | None -> ());
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !out)); ("displayTimeUnit", Json.String "ms") ]

(* {1 Plain-text timeline} *)

let text events =
  let buf = Buffer.create 4096 in
  let line ts fmt =
    Buffer.add_string buf (Printf.sprintf "[%10dus] " ts);
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  List.iter
    (fun (e : Event.t) ->
      let ts = e.ts_us in
      match e.payload with
      | Event.Boot { index } -> line ts "boot #%d" index
      | Event.Power_failure { index; cap_nj } ->
          line ts "POWER FAILURE #%d (capacitor %.0f nJ)" index cap_nj
      | Event.Cap_level { nj } -> line ts "capacitor %.0f nJ" nj
      | Event.Task_start { task; attempt } -> line ts "task %s attempt %d" task attempt
      | Event.Task_commit { task; attempt; app_us; ovh_us; _ } ->
          line ts "task %s attempt %d COMMIT (app %dus, overhead %dus)" task attempt app_us
            ovh_us
      | Event.Task_abort { task; attempt; app_us; ovh_us; _ } ->
          line ts "task %s attempt %d ABORT (wasted %dus)" task attempt (app_us + ovh_us)
      | Event.Io { site; kind; sem; decision; reason } ->
          line ts "io %-6s %s %s [%s, %s]" (Event.decision_name decision) site reason
            (Event.sem_name sem) kind
      | Event.Privatize { runtime; task; words } ->
          line ts "%s privatize %d words (task %s)" runtime words task
      | Event.Commit { runtime; task; words } ->
          line ts "%s commit %d words (task %s)" runtime words task
      | Event.Region_priv { region; words; restored } ->
          line ts "region %s %s (%d words)" region
            (if restored then "restore" else "snapshot")
            words
      | Event.Dma { src; dst; words } ->
          line ts "DMA %s -> %s, %d words" (Event.mem_name src) (Event.mem_name dst) words
      | Event.Lea { op; elements } -> line ts "LEA %s, %d elements" op elements
      | Event.Radio_send { words } -> line ts "radio send, %d words" words
      | Event.Fault { kind; index } -> line ts "FAULT %s #%d" kind index
      | Event.Radio_retry { attempt; backoff_us } ->
          line ts "radio retry after attempt %d (backoff %dus)" attempt backoff_us
      | Event.Radio_give_up { attempts } ->
          line ts "radio GIVE UP after %d attempts" attempts
      | Event.Count { name; count } -> line ts "count %s = %d" name count)
    events;
  Buffer.contents buf
