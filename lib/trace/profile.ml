(* Wasted-work histogram buckets: attempt durations lost to a failure,
   in µs. Five log-spaced bins cover everything from a failed flag
   check to a multi-layer DNN attempt. *)
let hist_edges_us = [| 100; 1_000; 10_000; 100_000 |]
let hist_buckets = Array.length hist_edges_us + 1

let hist_label i =
  if i = 0 then Printf.sprintf "<%dus" hist_edges_us.(0)
  else if i = hist_buckets - 1 then Printf.sprintf ">=%dus" hist_edges_us.(i - 1)
  else Printf.sprintf "%d-%dus" hist_edges_us.(i - 1) hist_edges_us.(i)

let bucket_of us =
  let rec go i = if i >= Array.length hist_edges_us || us < hist_edges_us.(i) then i else go (i + 1) in
  go 0

type task_stats = {
  task : string;
  commits : int;
  aborts : int;
  app_us : int;
  ovh_us : int;
  wasted_us : int;
  app_nj : float;
  ovh_nj : float;
  wasted_nj : float;
  wasted_hist : int array;
}

type site_stats = {
  site : string;
  kind : string;
  sem : string;
  execs : int;
  replays : int;
  skips : int;
}

type t = {
  tasks : task_stats list;
  sites : site_stats list;
  io : (string * int) list;
  boots : int;
  power_failures : int;
  privatized_words : int;
  committed_words : int;
  region_snapshots : int;
  region_restores : int;
}

let attempts_of ts = ts.commits + ts.aborts
let total_attempts t = List.fold_left (fun acc ts -> acc + attempts_of ts) 0 t.tasks
let total_commits t = List.fold_left (fun acc ts -> acc + ts.commits) 0 t.tasks
let total_app_us t = List.fold_left (fun acc ts -> acc + ts.app_us) 0 t.tasks
let total_ovh_us t = List.fold_left (fun acc ts -> acc + ts.ovh_us) 0 t.tasks
let total_wasted_us t = List.fold_left (fun acc ts -> acc + ts.wasted_us) 0 t.tasks
let total_skips t = List.fold_left (fun acc s -> acc + s.skips) 0 t.sites

let of_events events =
  let tasks : (string, task_stats) Hashtbl.t = Hashtbl.create 16 in
  let sites : (string, site_stats) Hashtbl.t = Hashtbl.create 32 in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let boots = ref 0 and pf = ref 0 in
  let priv_words = ref 0 and commit_words = ref 0 in
  let snapshots = ref 0 and restores = ref 0 in
  let task_entry name =
    match Hashtbl.find_opt tasks name with
    | Some ts -> ts
    | None ->
        let ts =
          {
            task = name;
            commits = 0;
            aborts = 0;
            app_us = 0;
            ovh_us = 0;
            wasted_us = 0;
            app_nj = 0.;
            ovh_nj = 0.;
            wasted_nj = 0.;
            wasted_hist = Array.make hist_buckets 0;
          }
        in
        Hashtbl.replace tasks name ts;
        ts
  in
  List.iter
    (fun (e : Event.t) ->
      match e.payload with
      | Event.Boot _ -> incr boots
      | Event.Power_failure _ -> incr pf
      | Event.Task_commit { task; app_us; ovh_us; app_nj; ovh_nj; _ } ->
          let ts = task_entry task in
          Hashtbl.replace tasks task
            {
              ts with
              commits = ts.commits + 1;
              app_us = ts.app_us + app_us;
              ovh_us = ts.ovh_us + ovh_us;
              app_nj = ts.app_nj +. app_nj;
              ovh_nj = ts.ovh_nj +. ovh_nj;
            }
      | Event.Task_abort { task; app_us; ovh_us; app_nj; ovh_nj; _ } ->
          let ts = task_entry task in
          ts.wasted_hist.(bucket_of (app_us + ovh_us)) <-
            ts.wasted_hist.(bucket_of (app_us + ovh_us)) + 1;
          Hashtbl.replace tasks task
            {
              ts with
              aborts = ts.aborts + 1;
              wasted_us = ts.wasted_us + app_us + ovh_us;
              wasted_nj = ts.wasted_nj +. app_nj +. ovh_nj;
            }
      | Event.Io { site; kind; sem; decision; _ } ->
          let s =
            match Hashtbl.find_opt sites site with
            | Some s -> s
            | None ->
                { site; kind; sem = Event.sem_name sem; execs = 0; replays = 0; skips = 0 }
          in
          let s =
            match decision with
            | Event.Exec -> { s with execs = s.execs + 1 }
            | Event.Replay -> { s with replays = s.replays + 1 }
            | Event.Skip -> { s with skips = s.skips + 1 }
          in
          Hashtbl.replace sites site s
      | Event.Privatize { words; _ } -> priv_words := !priv_words + words
      | Event.Commit { words; _ } -> commit_words := !commit_words + words
      | Event.Region_priv { restored; _ } -> if restored then incr restores else incr snapshots
      | Event.Count { name; count } -> Hashtbl.replace counts name count
      | Event.Task_start _ | Event.Cap_level _ | Event.Dma _ | Event.Lea _ | Event.Radio_send _
      | Event.Fault _ | Event.Radio_retry _ | Event.Radio_give_up _ -> ())
    events;
  let sorted fold = List.sort compare (fold []) in
  {
    tasks =
      List.sort
        (fun a b -> compare a.task b.task)
        (Hashtbl.fold (fun _ ts acc -> ts :: acc) tasks []);
    sites =
      List.sort
        (fun a b -> compare a.site b.site)
        (Hashtbl.fold (fun _ s acc -> s :: acc) sites []);
    io =
      sorted (fun acc ->
          Hashtbl.fold
            (fun name count acc ->
              if String.length name > 3 && String.sub name 0 3 = "io:" then (name, count) :: acc
              else acc)
            counts acc);
    boots = !boots;
    power_failures = !pf;
    privatized_words = !priv_words;
    committed_words = !commit_words;
    region_snapshots = !snapshots;
    region_restores = !restores;
  }

let redundant t ~golden =
  List.fold_left
    (fun acc (name, n) ->
      let g = match List.assoc_opt name golden with Some g -> g | None -> 0 in
      acc + max 0 (n - g))
    0 t.io

let reconcile t ~app_us ~ovh_us ~wasted_us ~commits ~attempts ~io =
  let check name expected got =
    if expected = got then Ok ()
    else Error (Printf.sprintf "%s: metrics say %d, trace says %d" name expected got)
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = check "useful app us" app_us (total_app_us t) in
  let* () = check "useful overhead us" ovh_us (total_ovh_us t) in
  let* () = check "wasted us" wasted_us (total_wasted_us t) in
  let* () = check "commits" commits (total_commits t) in
  let* () = check "attempts" attempts (total_attempts t) in
  let expected_io = List.sort compare io in
  if expected_io <> t.io then
    Error
      (Printf.sprintf "io executions: metrics say [%s], trace says [%s]"
         (String.concat "; " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) expected_io))
         (String.concat "; " (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) t.io)))
  else Ok ()

let task_json ts =
  Json.Obj
    [
      ("task", Json.String ts.task);
      ("attempts", Json.Int (attempts_of ts));
      ("commits", Json.Int ts.commits);
      ("aborts", Json.Int ts.aborts);
      ("app_us", Json.Int ts.app_us);
      ("overhead_us", Json.Int ts.ovh_us);
      ("wasted_us", Json.Int ts.wasted_us);
      ("app_nj", Json.Float ts.app_nj);
      ("overhead_nj", Json.Float ts.ovh_nj);
      ("wasted_nj", Json.Float ts.wasted_nj);
      ( "wasted_us_hist",
        Json.Obj
          (List.init hist_buckets (fun i -> (hist_label i, Json.Int ts.wasted_hist.(i)))) );
    ]

let site_json s =
  Json.Obj
    [
      ("site", Json.String s.site);
      ("kind", Json.String s.kind);
      ("sem", Json.String s.sem);
      ("exec", Json.Int s.execs);
      ("replay", Json.Int s.replays);
      ("skip", Json.Int s.skips);
    ]

let to_json t =
  Json.Obj
    [
      ("boots", Json.Int t.boots);
      ("power_failures", Json.Int t.power_failures);
      ("attempts", Json.Int (total_attempts t));
      ("commits", Json.Int (total_commits t));
      ("app_us", Json.Int (total_app_us t));
      ("overhead_us", Json.Int (total_ovh_us t));
      ("wasted_us", Json.Int (total_wasted_us t));
      ("skipped_io", Json.Int (total_skips t));
      ("privatized_words", Json.Int t.privatized_words);
      ("committed_words", Json.Int t.committed_words);
      ("region_snapshots", Json.Int t.region_snapshots);
      ("region_restores", Json.Int t.region_restores);
      ("io_executions", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) t.io));
      ("tasks", Json.List (List.map task_json t.tasks));
      ("io_sites", Json.List (List.map site_json t.sites));
    ]
