type sem = Single | Timely of int | Always

let sem_name = function Single -> "Single" | Timely _ -> "Timely" | Always -> "Always"

type decision = Exec | Replay | Skip

let decision_name = function Exec -> "exec" | Replay -> "replay" | Skip -> "skip"

type mem = Fram | Sram

let mem_name = function Fram -> "FRAM" | Sram -> "SRAM"

type payload =
  | Boot of { index : int }
  | Power_failure of { index : int; cap_nj : float }
  | Cap_level of { nj : float }
  | Task_start of { task : string; attempt : int }
  | Task_commit of {
      task : string;
      attempt : int;
      app_us : int;
      ovh_us : int;
      app_nj : float;
      ovh_nj : float;
    }
  | Task_abort of {
      task : string;
      attempt : int;
      app_us : int;
      ovh_us : int;
      app_nj : float;
      ovh_nj : float;
    }
  | Io of { site : string; kind : string; sem : sem; decision : decision; reason : string }
  | Privatize of { runtime : string; task : string; words : int }
  | Commit of { runtime : string; task : string; words : int }
  | Region_priv of { region : string; words : int; restored : bool }
  | Dma of { src : mem; dst : mem; words : int }
  | Lea of { op : string; elements : int }
  | Radio_send of { words : int }
  | Fault of { kind : string; index : int }
  | Radio_retry of { attempt : int; backoff_us : int }
  | Radio_give_up of { attempts : int }
  | Count of { name : string; count : int }

type t = { ts_us : int; payload : payload }
type sink = t -> unit
