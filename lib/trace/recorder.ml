type t = { mutable events : Event.t list; mutable length : int }

let create () = { events = []; length = 0 }

let sink t (e : Event.t) =
  t.events <- e :: t.events;
  t.length <- t.length + 1

let sink t : Event.sink = sink t
let events t = List.rev t.events
let length t = t.length

let clear t =
  t.events <- [];
  t.length <- 0
