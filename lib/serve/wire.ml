(* Length-prefixed framing for the campaign service: a 4-byte
   big-endian payload length followed by that many bytes of JSON. The
   prefix makes the stream self-synchronizing for well-behaved peers
   (a malformed JSON payload costs one frame, not the connection)
   while an oversized announced length is unrecoverable by design —
   skipping it would mean trusting the very header that just failed
   validation — so readers surface it and the server closes the
   connection with a stable error code. *)

(* Hard stream-sanity cap; servers enforce a much smaller per-request
   limit on top (Server.config.max_request_bytes). *)
let max_frame_bytes = 64 * 1024 * 1024

let write_frame oc payload =
  let n = String.length payload in
  if n > max_frame_bytes then invalid_arg "Wire.write_frame: frame too large";
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

type read_error =
  | Closed  (** EOF (clean or mid-frame) or a read error *)
  | Oversize of int  (** announced length exceeds the cap *)

let read_frame ?(max_bytes = max_frame_bytes) ic =
  match really_input_string ic 4 with
  | exception (End_of_file | Sys_error _) -> Error Closed
  | hdr -> (
      let b i = Char.code hdr.[i] in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n > max_bytes then Error (Oversize n)
      else
        match really_input_string ic n with
        | exception (End_of_file | Sys_error _) -> Error Closed
        | payload -> Ok payload)
