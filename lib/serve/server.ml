(* The long-running campaign service.

   Thread/domain layout:
   - one accept thread (select with a short timeout so shutdown is
     observed without signals);
   - one reader thread per connection (parses frames, answers control
     commands inline, spawns an orchestrator thread per job request —
     the reader must keep reading so a [cancel] can arrive mid-job);
   - [jobs] worker *domains* draining the job queue (compute must be
     on domains, not systhreads: the VM arenas are [Domain.DLS]-keyed
     and systhreads within one domain would share them);
   - one ticker thread broadcasting the cache condition periodically
     so waiting orchestrators observe cancellation/shutdown promptly
     (stdlib [Condition] has no timed wait).

   An orchestrator shards its request into cache units (one per
   variant for faults, one for everything else), admits each unit
   through the single-flight cache, enqueues compute jobs for the
   units it admitted first, then waits unit by unit in variant order —
   streaming a cell frame and a progress heartbeat as each resolves —
   and finally ships the assembled one-shot document verbatim. *)

module Json = Trace.Json

type addr = Unix_sock of string | Tcp of int

type config = {
  addr : addr;
  jobs : int;
  cache_cap : int;
  max_request_bytes : int;
}

let default_config addr =
  {
    addr;
    jobs = Expkit.Pool.default_jobs ();
    cache_cap = 256;
    max_request_bytes = 1024 * 1024;
  }

(* Cached unit values: a faults cell, or a whole finished document. *)
type value = Cell of Faultkit.Campaign.cell | Doc of string

type req_state = { mutable cancelled : bool }

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  wm : Mutex.t;
  mutable alive : bool;
  mutable fd_closed : bool;  (* guarded by [wm]; prevents double close / stale-fd shutdown *)
  reqs : (int, req_state) Hashtbl.t;  (* guarded by the server mutex *)
}

type job = { jkey : string; jtoken : int; jcompute : unit -> value }

type t = {
  config : config;
  lsock : Unix.file_descr;
  port : int;  (* resolved port for [Tcp 0] *)
  cache : value Cache.t;
  queue : job Jobq.t;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  mutable conns : conn list;
  mutable threads : Thread.t list;
  mutable stop_requested : bool;
  mutable stopped : bool;
  sheet : Obs.Sheet.t;  (* guarded by [m] *)
  started_at : float;
}

(* {1 Telemetry} *)

let c_requests = Obs.Registry.counter "serve/requests"
let c_hits = Obs.Registry.counter "serve/cache_hits"
let c_misses = Obs.Registry.counter "serve/cache_misses"
let c_computed = Obs.Registry.counter "serve/cells_computed"
let c_cancelled = Obs.Registry.counter "serve/cancelled"
let c_errors = Obs.Registry.counter "serve/errors"
let h_queue_depth = Obs.Registry.hist "serve/queue_depth"

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let bump t c = with_lock t (fun () -> Obs.Sheet.bump t.sheet c)
let observe t h v = with_lock t (fun () -> Obs.Sheet.observe t.sheet h v)

(* {1 Frame output}

   All writes to one connection go through its write mutex: concurrent
   orchestrators interleave whole frames, never bytes. Write failures
   (peer gone) mark the connection dead and are otherwise ignored —
   the reader thread owns teardown. *)

let send_raw conn payload =
  Mutex.lock conn.wm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wm)
    (fun () ->
      if conn.alive && not conn.fd_closed then
        try Wire.write_frame conn.oc payload with Sys_error _ | Unix.Unix_error _ -> conn.alive <- false)

let send_error conn ~id ~code msg =
  send_raw conn
    (Printf.sprintf "{\"id\":%d,\"frame\":\"error\",\"code\":\"%s\",\"msg\":\"%s\"}" id code
       (String.escaped msg))

let send_simple conn ~id frame = send_raw conn (Printf.sprintf "{\"id\":%d,\"frame\":\"%s\"}" id frame)

(* {1 Unit-of-work decomposition} *)

type unit_of_work = { ukey : string; ulabel : string; ucompute : unit -> value }

let resolve_app name =
  match Apps.Catalog.find name with
  | spec -> Ok spec
  | exception Not_found -> Error (Printf.sprintf "unknown application %S" name)
  | exception Apps.Catalog.Ambiguous names ->
      Error (Printf.sprintf "ambiguous application %S: matches %s" name (String.concat ", " names))

(* Split a request into cache units plus a final assembler from unit
   values (in unit order) to the response document. Validation errors
   come back as protocol errors before anything is admitted. *)
let plan (req : Protocol.request) :
    (unit_of_work list * (value list -> string), Protocol.error) result =
  match req with
  | Protocol.Run { src; policy; failure; seed } -> (
      (* surface syntax errors as bad-request now, not as a poisoned
         compute later *)
      match Lang.Parser.parse src with
      | exception Lang.Parser.Error (_, msg) ->
          Error { Protocol.code = "bad-request"; msg = Printf.sprintf "run: parse error: %s" msg }
      | _ ->
          let key = Protocol.run_key ~src ~policy ~failure ~seed in
          let compute () =
            Doc (Json.to_string (Oneshot.run_doc ~policy ~failure ~seed src))
          in
          Ok
            ( [ { ukey = key; ulabel = "run"; ucompute = compute } ],
              function [ Doc d ] -> d | _ -> assert false ))
  | Protocol.Faults { app; runtime; sweep; seed } -> (
      match resolve_app app with
      | Error msg -> Error { Protocol.code = "unknown-app"; msg }
      | Ok spec ->
          let variants =
            match runtime with None -> Apps.Common.all_variants | Some v -> [ v ]
          in
          let units =
            List.map
              (fun variant ->
                {
                  ukey =
                    Protocol.cell_key ~app:spec.Apps.Common.app_name ~variant ~sweep ~seed;
                  ulabel = Apps.Common.variant_name variant;
                  ucompute = (fun () -> Cell (Oneshot.faults_cell ~sweep ~seed spec variant));
                })
              variants
          in
          let assemble values =
            let cells =
              List.map (function Cell c -> c | Doc _ -> assert false) values
            in
            Oneshot.faults_doc ~app:spec.Apps.Common.app_name ~sweep ~seed cells
          in
          Ok (units, assemble))
  | Protocol.Fuzz { options } ->
      let key = Protocol.fuzz_key options in
      Ok
        ( [ { ukey = key; ulabel = "fuzz"; ucompute = (fun () -> Doc (Oneshot.fuzz_doc options)) } ],
          function [ Doc d ] -> d | _ -> assert false )
  | Protocol.Explore { app; runtime; depth; max_states; prune; ablate_regions; ablate_semantics; seed }
    -> (
      match resolve_app app with
      | Error msg -> Error { Protocol.code = "unknown-app"; msg }
      | Ok spec ->
          if spec.Apps.Common.session = None then
            Error
              {
                Protocol.code = "bad-request";
                msg =
                  Printf.sprintf "explore: %S exposes no session runner"
                    spec.Apps.Common.app_name;
              }
          else
            let key =
              Protocol.explore_key ~app:spec.Apps.Common.app_name ~runtime ~depth ~max_states
                ~prune ~ablate_regions ~ablate_semantics ~seed
            in
            let compute () =
              Doc
                (Oneshot.explore_doc ~depth ?max_states ~prune ~ablate_regions ~ablate_semantics
                   ~seed spec runtime)
            in
            Ok ([ { ukey = key; ulabel = "explore"; ucompute = compute } ], function
              | [ Doc d ] -> d
              | _ -> assert false))

(* {1 Orchestration} *)

let enqueue t job =
  observe t h_queue_depth (Jobq.depth t.queue);
  ignore (Jobq.push t.queue job : bool)

(* Summary line for one resolved unit, streamed incrementally. *)
let cell_frame ~id ~index ~label ~cached = function
  | Cell (c : Faultkit.Campaign.cell) ->
      Printf.sprintf
        "{\"id\":%d,\"frame\":\"cell\",\"index\":%d,\"runtime\":\"%s\",\"cached\":%b,\"cases\":%d,\"failed\":%d}"
        id index (String.escaped label) cached c.Faultkit.Campaign.cases
        (List.length c.Faultkit.Campaign.failed)
  | Doc d ->
      Printf.sprintf
        "{\"id\":%d,\"frame\":\"cell\",\"index\":%d,\"runtime\":\"%s\",\"cached\":%b,\"bytes\":%d}"
        id index (String.escaped label) cached (String.length d)

let handle_job t conn id (req_st : req_state) req =
  bump t c_requests;
  match plan req with
  | Error { Protocol.code; msg } ->
      bump t c_errors;
      send_error conn ~id ~code msg
  | Ok (units, assemble) -> (
      let units = Array.of_list units in
      let n = Array.length units in
      let progress =
        Obs.Progress.create ~interval_s:0. ~total:n
          (Obs.Progress.Sink
             (fun hb -> send_raw conn (Printf.sprintf "{\"id\":%d,\"frame\":\"progress\",\"hb\":%s}" id hb)))
          ~label:(Printf.sprintf "serve#%d" id)
      in
      let cancelled () = req_st.cancelled || t.stop_requested in
      (* admission pass: enqueue every unit we are first to want.
         Claim states per unit: [`Done] resolved, [`Pending] we hold a
         live claim, [`Settled] our claim was consumed by a cancelled
         or failed wait (never release it again). *)
      let claims =
        Array.map
          (fun u ->
            match Cache.acquire t.cache u.ukey with
            | Cache.Hit v ->
                bump t c_hits;
                `Done (v, true)
            | Cache.Compute token ->
                bump t c_misses;
                enqueue t { jkey = u.ukey; jtoken = token; jcompute = u.ucompute };
                `Pending
            | Cache.Wait ->
                bump t c_misses;
                `Pending)
          units
      in
      let release_pending () =
        Array.iteri
          (fun j c -> match c with `Pending -> Cache.release t.cache units.(j).ukey | _ -> ())
          claims
      in
      let runs_of = function Cell c -> c.Faultkit.Campaign.cases | Doc _ -> 1 in
      (* resolution pass, in unit order; each resolved unit streams a
         cell frame and a heartbeat *)
      let results = Array.make n None in
      let failure = ref None in
      (try
         for i = 0 to n - 1 do
           let u = units.(i) in
           let v, cached =
             match claims.(i) with
             | `Done (v, cached) -> (v, cached)
             | `Settled -> assert false
             | `Pending ->
                 let rec await () =
                   match Cache.wait t.cache u.ukey ~cancelled with
                   | Cache.Value v -> (v, false)
                   | Cache.Failed_with msg ->
                       claims.(i) <- `Settled;
                       failure := Some (`Failed msg);
                       raise Exit
                   | Cache.Cancelled ->
                       claims.(i) <- `Settled;
                       failure := Some `Cancelled;
                       raise Exit
                   | Cache.Resubmit token ->
                       enqueue t { jkey = u.ukey; jtoken = token; jcompute = u.ucompute };
                       await ()
                 in
                 await ()
           in
           claims.(i) <- `Done (v, cached);
           results.(i) <- Some (v, cached);
           send_raw conn (cell_frame ~id ~index:i ~label:u.ulabel ~cached v);
           Obs.Progress.tick ~runs:(runs_of v) progress
         done
       with Exit -> ());
      match !failure with
      | None ->
          let resolved = Array.map (function Some r -> r | None -> assert false) results in
          let doc = assemble (Array.to_list (Array.map fst resolved)) in
          let cached = Array.for_all snd resolved in
          Obs.Progress.finish progress;
          (* the result header, then the document bytes verbatim *)
          send_raw conn
            (Printf.sprintf "{\"id\":%d,\"frame\":\"result\",\"cached\":%b,\"bytes\":%d}" id cached
               (String.length doc));
          send_raw conn doc
      | Some `Cancelled ->
          bump t c_cancelled;
          release_pending ();
          send_simple conn ~id "cancelled"
      | Some (`Failed msg) ->
          bump t c_errors;
          release_pending ();
          send_error conn ~id ~code:"internal" msg)

(* {1 Control commands} *)

let stats_payload t =
  let s = Cache.stats t.cache in
  let snap = with_lock t (fun () -> Obs.Snapshot.of_sheet t.sheet) in
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int 0);
         ("frame", Json.String "stats");
         ("jobs", Json.Int t.config.jobs);
         ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
         ("queue_depth", Json.Int (Jobq.depth t.queue));
         ("queue_max_depth", Json.Int (Jobq.max_depth t.queue));
         ( "cache",
           Json.Obj
             [
               ("hits", Json.Int s.Cache.hits);
               ("misses", Json.Int s.Cache.misses);
               ("computes", Json.Int s.Cache.computes);
               ("failures", Json.Int s.Cache.failures);
               ("abandoned", Json.Int s.Cache.abandoned);
               ("evictions", Json.Int s.Cache.evictions);
               ("entries", Json.Int s.Cache.entries);
               ("cap", Json.Int t.config.cache_cap);
             ] );
         ("metrics", Obs.Snapshot.to_json snap);
       ])

let request_stop t =
  t.stop_requested <- true;
  Jobq.close t.queue;
  Cache.broadcast t.cache

let handle_control t conn = function
  | Protocol.Ping -> send_simple conn ~id:0 "pong"
  | Protocol.Stats -> send_raw conn (stats_payload t)
  | Protocol.Shutdown ->
      send_simple conn ~id:0 "bye";
      request_stop t
  | Protocol.Cancel target -> (
      match with_lock t (fun () -> Hashtbl.find_opt conn.reqs target) with
      | Some st ->
          st.cancelled <- true;
          Cache.broadcast t.cache
      | None ->
          (* addressed to the *target* id, not 0: a cancel that lost
             the race against its own request's completion must not
             look like a connection-level error to other requests *)
          send_error conn ~id:target ~code:"bad-request"
            (Printf.sprintf "no request #%d" target))

(* {1 Connection lifecycle} *)

let track_thread t th = with_lock t (fun () -> t.threads <- th :: t.threads)

let cancel_conn_requests t conn =
  with_lock t (fun () -> Hashtbl.iter (fun _ st -> st.cancelled <- true) conn.reqs);
  Cache.broadcast t.cache

(* Interrupt a blocked reader without closing the fd (close alone does
   not wake a blocked read, and the fd number must stay reserved until
   the final close so it cannot be reused under a stale shutdown). *)
let shutdown_conn conn =
  Mutex.lock conn.wm;
  conn.alive <- false;
  if not conn.fd_closed then
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.unlock conn.wm

let close_conn t conn =
  with_lock t (fun () -> t.conns <- List.filter (fun c -> c != conn) t.conns);
  Mutex.lock conn.wm;
  conn.alive <- false;
  if not conn.fd_closed then begin
    conn.fd_closed <- true;
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.wm

(* After the reader stops reading, in-flight orchestrators may still
   be streaming results (half-closed peers read them); close only once
   they drain, so the fd can never be reused under a live writer. *)
let drain_then_close t conn =
  let in_flight () = with_lock t (fun () -> Hashtbl.length conn.reqs > 0) in
  while in_flight () && not t.stop_requested do
    Thread.delay 0.05
  done;
  close_conn t conn

let reader_loop t conn =
  let rec loop () =
    if t.stop_requested then ()
    else
      match Wire.read_frame ~max_bytes:t.config.max_request_bytes conn.ic with
      | Error Wire.Closed ->
          (* EOF: a half-closed peer stops sending but still reads, so
             in-flight requests run to completion and stream their
             results before the connection is torn down. Never fatal
             to the server. *)
          ()
      | Error (Wire.Oversize n) ->
          (* the stream is desynchronized beyond this frame: report,
             cancel what this connection had in flight, hang up *)
          send_error conn ~id:0 ~code:"oversize"
            (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
               t.config.max_request_bytes);
          cancel_conn_requests t conn
      | Ok payload -> (
          match Json.of_string payload with
          | Error msg ->
              send_error conn ~id:0 ~code:"bad-frame" msg;
              loop ()
          | Ok json -> (
              match Protocol.parse json with
              | Error { Protocol.code; msg } ->
                  send_error conn ~id:0 ~code msg;
                  loop ()
              | Ok (Protocol.Control c) ->
                  handle_control t conn c;
                  loop ()
              | Ok (Protocol.Job (id, req)) ->
                  let dup =
                    with_lock t (fun () ->
                        if Hashtbl.mem conn.reqs id then true
                        else begin
                          Hashtbl.replace conn.reqs id { cancelled = false };
                          false
                        end)
                  in
                  if dup then
                    send_error conn ~id ~code:"bad-request"
                      (Printf.sprintf "request #%d already in flight" id)
                  else begin
                    let st = with_lock t (fun () -> Hashtbl.find conn.reqs id) in
                    let th =
                      Thread.create
                        (fun () ->
                          (try handle_job t conn id st req
                           with e ->
                             send_error conn ~id ~code:"internal" (Printexc.to_string e));
                          with_lock t (fun () -> Hashtbl.remove conn.reqs id))
                        ()
                    in
                    track_thread t th
                  end;
                  loop ()))
  in
  (try loop () with Sys_error _ | Unix.Unix_error _ -> cancel_conn_requests t conn);
  drain_then_close t conn

let accept_loop t =
  let rec loop () =
    if not t.stop_requested then begin
      (match Unix.select [ t.lsock ] [] [] 0.25 with
      | [ _ ], _, _ when not t.stop_requested -> (
          match Unix.accept t.lsock with
          | fd, _ ->
              let conn =
                {
                  fd;
                  ic = Unix.in_channel_of_descr fd;
                  oc = Unix.out_channel_of_descr fd;
                  wm = Mutex.create ();
                  alive = true;
                  fd_closed = false;
                  reqs = Hashtbl.create 4;
                }
              in
              with_lock t (fun () -> t.conns <- conn :: t.conns);
              track_thread t (Thread.create (fun () -> reader_loop t conn) ())
          | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ());
      loop ()
    end
  in
  loop ()

(* Periodic broadcast so orchestrators blocked in [Cache.wait] poll
   their cancellation flags even when no cache transition happens. *)
let ticker_loop t =
  while not t.stop_requested do
    Thread.delay 0.2;
    Cache.broadcast t.cache
  done;
  Cache.broadcast t.cache

let worker_loop t () =
  let rec loop () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some j ->
        if Cache.start t.cache j.jkey j.jtoken then begin
          match j.jcompute () with
          | v ->
              Cache.fill t.cache j.jkey j.jtoken v;
              bump t c_computed
          | exception e -> Cache.poison t.cache j.jkey j.jtoken (Printexc.to_string e)
        end;
        loop ()
  in
  loop ()

(* {1 Lifecycle} *)

let start config =
  if config.jobs < 1 then invalid_arg "Server.start: jobs must be >= 1";
  (* a peer vanishing mid-write must be an EPIPE error, not a signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain, sockaddr =
    match config.addr with
    | Unix_sock path ->
        if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let lsock = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock sockaddr;
  Unix.listen lsock 64;
  let port =
    match Unix.getsockname lsock with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> 0
  in
  let t =
    {
      config;
      lsock;
      port;
      cache = Cache.create ~cap:config.cache_cap;
      queue = Jobq.create ();
      workers = [||];
      m = Mutex.create ();
      conns = [];
      threads = [];
      stop_requested = false;
      stopped = false;
      sheet = Obs.Sheet.create ();
      started_at = Unix.gettimeofday ();
    }
  in
  t.workers <- Array.init config.jobs (fun _ -> Domain.spawn (worker_loop t));
  track_thread t (Thread.create (fun () -> accept_loop t) ());
  track_thread t (Thread.create (fun () -> ticker_loop t) ());
  t

let port t = t.port
let stop_requested t = t.stop_requested
let cache_stats t = Cache.stats t.cache
let queue_max_depth t = Jobq.max_depth t.queue
let snapshot t = with_lock t (fun () -> Obs.Snapshot.of_sheet t.sheet)

(* Graceful stop: new work is refused (queue closed), running jobs
   finish and fill the cache, waiting orchestrators observe the stop
   flag and bail, every thread and domain is joined, sockets closed,
   the unix socket path unlinked. Idempotent. *)
let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    request_stop t;
    (* wake blocked reader threads: shutdown is what interrupts a
       blocked read (close alone does not) *)
    let conns = with_lock t (fun () -> t.conns) in
    List.iter shutdown_conn conns;
    Array.iter Domain.join t.workers;
    Cache.broadcast t.cache;
    let threads = with_lock t (fun () -> t.threads) in
    List.iter Thread.join threads;
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    match t.config.addr with
    | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ()
  end

(* Block until a stop is requested (shutdown command or [request_stop]
   from a signal handler), then tear down. *)
let run t =
  while not t.stop_requested do
    Thread.delay 0.2
  done;
  stop t
