(* Scheduler-independent FIFO job queue between connection threads
   (producers) and the worker domain set (consumers). Deliberately
   knows nothing about what a job is: ordering, blocking pop and
   shutdown only. Cancellation is not the queue's business — an
   abandoned job is detected at pop time by its stale cache token and
   skipped, which keeps push/cancel free of queue surgery. *)

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  mutable closed : bool;
  mutable max_depth : int;
}

let create () =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    closed = false;
    max_depth = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Returns false when the queue is already closed (server stopping):
   the job is dropped and the caller's wait sees the shutdown flag. *)
let push t x =
  locked t (fun () ->
      if t.closed then false
      else begin
        Queue.add x t.q;
        t.max_depth <- max t.max_depth (Queue.length t.q);
        Condition.signal t.nonempty;
        true
      end)

(* Blocks until a job or shutdown; [None] tells a worker to exit. *)
let pop t =
  locked t (fun () ->
      let rec loop () =
        if not (Queue.is_empty t.q) then Some (Queue.take t.q)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.m;
          loop ()
        end
      in
      loop ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.q)
let max_depth t = locked t (fun () -> t.max_depth)
