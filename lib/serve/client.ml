(* Client side of the campaign service: connect, send request
   payloads, stream frames back. Synchronous by design — one thread
   per connection is exactly the load-generator and test shape, and
   the protocol interleaves nothing within a connection except frames
   for distinct request ids, which [rpc] filters. *)

module Json = Trace.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect (addr : Server.addr) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain, sockaddr =
    match addr with
    | Server.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Server.Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

(* Poll-connect until the server is accepting (spawned-binary tests
   and the smoke harness race server startup). *)
let connect_retry ?(attempts = 100) ?(delay_s = 0.05) addr =
  let rec go n =
    match connect addr with
    | c -> c
    | exception (Unix.Unix_error _ | Sys_error _) when n > 1 ->
        Thread.delay delay_s;
        go (n - 1)
  in
  go attempts

let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Half-close the sending side: the server sees EOF but can still
   stream responses (used by the protocol contract tests). *)
let shutdown_send t = try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let send t payload = Wire.write_frame t.oc payload

type frame =
  | Progress of { id : int; hb : string }
  | Cell of { id : int; index : int; runtime : string; cached : bool }
  | Result of { id : int; cached : bool; doc : string }
  | Error_frame of { id : int; code : string; msg : string }
  | Cancelled of { id : int }
  | Pong
  | Stats of Json.t
  | Bye

let field fields key = List.assoc_opt key fields

let int_field fields key ~default =
  match field fields key with Some (Json.Int n) -> n | _ -> default

let string_field fields key ~default =
  match field fields key with Some (Json.String s) -> s | _ -> default

let bool_field fields key ~default =
  match field fields key with Some (Json.Bool b) -> b | _ -> default

(* Read and decode one frame. A [Result] header consumes the
   follow-up frame too and returns the document bytes verbatim. *)
let next t : (frame, string) result =
  match Wire.read_frame t.ic with
  | Error Wire.Closed -> Error "connection closed"
  | Error (Wire.Oversize n) -> Error (Printf.sprintf "oversized frame (%d bytes)" n)
  | Ok payload -> (
      match Json.of_string payload with
      | Error msg -> Error (Printf.sprintf "bad frame from server: %s" msg)
      | Ok (Json.Obj fields) -> (
          let id = int_field fields "id" ~default:0 in
          match string_field fields "frame" ~default:"" with
          | "progress" -> (
              match field fields "hb" with
              | Some hb -> Ok (Progress { id; hb = Json.to_string hb })
              | None -> Error "progress frame without hb")
          | "cell" ->
              Ok
                (Cell
                   {
                     id;
                     index = int_field fields "index" ~default:0;
                     runtime = string_field fields "runtime" ~default:"";
                     cached = bool_field fields "cached" ~default:false;
                   })
          | "result" -> (
              let cached = bool_field fields "cached" ~default:false in
              match Wire.read_frame t.ic with
              | Ok doc -> Ok (Result { id; cached; doc })
              | Error _ -> Error "connection closed before the result document")
          | "error" ->
              Ok
                (Error_frame
                   {
                     id;
                     code = string_field fields "code" ~default:"?";
                     msg = string_field fields "msg" ~default:"";
                   })
          | "cancelled" -> Ok (Cancelled { id })
          | "pong" -> Ok Pong
          | "stats" -> Ok (Stats (Json.Obj fields))
          | "bye" -> Ok Bye
          | f -> Error (Printf.sprintf "unknown frame kind %S" f))
      | Ok _ -> Error "bad frame from server: not an object")

type outcome = {
  doc : string;
  result_cached : bool;
  cells : int;  (** incremental cell frames observed *)
  cached_cells : int;
  heartbeats : int;
}

(* Send one job request and drive the connection until its terminal
   frame. Frames for other ids (pipelined requests) are ignored here. *)
let rpc ?(on_frame = fun (_ : frame) -> ()) t ~id payload :
    (outcome, [ `Error of string * string | `Cancelled | `Transport of string ]) result =
  send t payload;
  let cells = ref 0 and cached_cells = ref 0 and heartbeats = ref 0 in
  let rec loop () =
    match next t with
    | Error msg -> Error (`Transport msg)
    | Ok f -> (
        on_frame f;
        match f with
        | Result r when r.id = id ->
            Ok
              {
                doc = r.doc;
                result_cached = r.cached;
                cells = !cells;
                cached_cells = !cached_cells;
                heartbeats = !heartbeats;
              }
        | Error_frame e when e.id = id || e.id = 0 -> Error (`Error (e.code, e.msg))
        | Cancelled c when c.id = id -> Error `Cancelled
        | Cell c when c.id = id ->
            incr cells;
            if c.cached then incr cached_cells;
            loop ()
        | Progress p when p.id = id ->
            incr heartbeats;
            loop ()
        | _ -> loop ())
  in
  loop ()

let ping t =
  send t Protocol.ping_request;
  match next t with Ok Pong -> Ok () | Ok _ -> Error "unexpected frame" | Error e -> Error e

let stats t =
  send t Protocol.stats_request;
  match next t with
  | Ok (Stats j) -> Ok j
  | Ok _ -> Error "unexpected frame"
  | Error e -> Error e

let shutdown t =
  send t Protocol.shutdown_request;
  match next t with Ok Bye -> Ok () | Ok _ -> Error "unexpected frame" | Error e -> Error e

let cancel t ~target = send t (Protocol.cancel_request ~target)
