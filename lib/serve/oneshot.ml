(* The one-shot document builders the server memoizes and streams.

   Byte-identity with the CLI is by construction, not by testing luck:
   [easeio run --json] prints [run_doc] through the same canonical
   emitter, and a faults response is [Campaign.to_json] over cells
   produced by the same [Campaign.run_cell] calls [Campaign.run]
   makes — the server only changes *where* cells are computed, never
   how, and ships the resulting document bytes verbatim. *)

module Json = Trace.Json

(* Exactly the [easeio run --json] document. *)
let run_doc ~policy ~failure ~seed src =
  let m = Platform.Machine.create ~seed ~failure () in
  let sheet = Obs.Sheet.create () in
  Platform.Machine.set_meter m sheet;
  let prog = Lang.Parser.program src in
  let o = Vm.run (Vm.compile ~policy ~extra_io:[ Apps.Common.lea_fir_seg ] m prog) in
  let io = Kernel.Golden.io_executions m in
  Json.Obj
    [
      ("runtime", Json.String (Lang.Interp.policy_name policy));
      ("failure", Json.String (Platform.Failure.to_string failure));
      ("seed", Json.Int seed);
      ("completed", Json.Bool o.Kernel.Engine.completed);
      ("gave_up", Json.Bool o.Kernel.Engine.gave_up);
      ( "stuck_task",
        match o.Kernel.Engine.stuck_task with
        | Some t -> Json.String t
        | None -> Json.Null );
      ("power_failures", Json.Int o.Kernel.Engine.power_failures);
      ("total_time_us", Json.Int o.Kernel.Engine.total_time_us);
      ("energy_nj", Json.Float o.Kernel.Engine.energy_nj);
      ("metrics", Kernel.Metrics.to_json o.Kernel.Engine.metrics);
      ( "obs",
        Obs.Snapshot.to_json
          (Obs.Snapshot.of_sheet ~events:(Platform.Machine.events m) sheet) );
      ("io_executions", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) io));
    ]

(* One campaign cell, computed exactly as [Campaign.run] computes it
   (resume on, sequential inside the cell: the server's parallelism is
   across cells and requests, and cell contents are jobs-invariant
   anyway). *)
let faults_cell ~sweep ~seed spec variant =
  Faultkit.Campaign.run_cell ~jobs:1 ~resume:true ~sweep ~seed spec variant

(* Reassemble a full campaign report from per-variant cells (in the
   caller's variant order — the order [Campaign.run] would have used). *)
let faults_doc ~app ~sweep ~seed cells =
  Json.to_string
    (Faultkit.Campaign.to_json { Faultkit.Campaign.app; sweep; seed; cells })

let fuzz_doc options =
  Json.to_string (Conformance.Fuzz.to_json (Conformance.Fuzz.run options))

let explore_doc ~depth ?max_states ~prune ~ablate_regions ~ablate_semantics ~seed spec runtime =
  Json.to_string
    (Explore.to_json
       (Explore.explore ~depth ?max_states ~prune ~ablate_regions ~ablate_semantics spec runtime
          ~seed))
