(* Bounded LRU result cache with single-flight admission.

   One entry per key. A key is either [Done] (a cached value, subject
   to LRU eviction) or in flight. In-flight entries carry a claimant
   count (how many requests currently want the value) and a token that
   uniquely names this admission: queued jobs carry the token, and a
   job whose token no longer matches the table is a no-op. That is the
   whole exactly-once story —

   - the first claimant of an absent key gets [Compute] and enqueues
     one job; every later claimant gets [Wait];
   - cancelling claimants decrement the count; when it reaches zero
     before a worker has called {!start}, the entry is removed, so the
     orphaned queue job is skipped on pop (token mismatch);
   - once {!start} succeeds the job runs to completion and fills the
     cache even if every claimant has since cancelled — aborting a
     running simulation buys nothing and would forfeit the result.

   So for any key, the number of computations actually started is at
   most (abandoned admissions + 1), never two concurrently. Eviction
   only considers [Done] entries; an evicted-then-rewanted key is a
   fresh admission. All state is under one mutex with one condition
   variable broadcast on every transition; waiters re-check their key
   (and their caller's cancellation flag) on each wakeup. *)

type 'v state = Done of 'v | Running | Failed of string

type 'v entry = {
  token : int;
  mutable state : 'v state;
  mutable claimants : int;
  mutable started : bool;
  mutable tick : int;  (* LRU clock; refreshed on every hit *)
}

type stats = {
  hits : int;
  misses : int;
  computes : int;  (** jobs that ran to completion and filled an entry *)
  failures : int;  (** jobs that raised *)
  abandoned : int;  (** admissions cancelled before a worker started *)
  evictions : int;
  entries : int;  (** live [Done] entries *)
}

type 'v t = {
  cap : int;
  m : Mutex.t;
  changed : Condition.t;
  tbl : (string, 'v entry) Hashtbl.t;
  mutable clock : int;
  mutable next_token : int;
  mutable hits : int;
  mutable misses : int;
  mutable computes : int;
  mutable failures : int;
  mutable abandoned : int;
  mutable evictions : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Cache.create: cap must be >= 1";
  {
    cap;
    m = Mutex.create ();
    changed = Condition.create ();
    tbl = Hashtbl.create 64;
    clock = 0;
    next_token = 0;
    hits = 0;
    misses = 0;
    computes = 0;
    failures = 0;
    abandoned = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Wake every waiter in the process; also poked periodically by the
   server's ticker so waiters re-check cancellation flags. *)
let broadcast t = locked t (fun () -> Condition.broadcast t.changed)

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let done_count t =
  Hashtbl.fold (fun _ e n -> match e.state with Done _ -> n + 1 | _ -> n) t.tbl 0

let evict_excess t =
  while done_count t > t.cap do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match (e.state, acc) with
          | Done _, None -> Some (k, e.tick)
          | Done _, Some (_, best) when e.tick < best -> Some (k, e.tick)
          | _ -> acc)
        t.tbl None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1
    | None -> ()
  done

type 'v claim =
  | Hit of 'v
  | Compute of int  (** this caller must enqueue one job carrying the token *)
  | Wait

let acquire t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some ({ state = Done v; _ } as e) ->
          touch t e;
          t.hits <- t.hits + 1;
          Hit v
      | Some e ->
          (* Running or Failed(draining): join the flight *)
          e.claimants <- e.claimants + 1;
          Wait
      | None ->
          t.next_token <- t.next_token + 1;
          let token = t.next_token in
          t.clock <- t.clock + 1;
          Hashtbl.replace t.tbl key
            { token; state = Running; claimants = 1; started = false; tick = t.clock };
          t.misses <- t.misses + 1;
          Compute token)

(* Worker side: claim the right to run the job named [token]. False
   means the admission was abandoned or superseded — skip the job. *)
let start t key token =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e when e.token = token && e.state = Running && not e.started ->
          e.started <- true;
          true
      | _ -> false)

let fill t key token v =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some e when e.token = token ->
          e.state <- Done v;
          touch t e;
          t.computes <- t.computes + 1;
          evict_excess t
      | _ -> ());
      Condition.broadcast t.changed)

let poison t key token msg =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some e when e.token = token ->
          t.failures <- t.failures + 1;
          (* transient: current waiters observe the failure, then the
             entry drains away so a later request retries *)
          if e.claimants <= 0 then Hashtbl.remove t.tbl key else e.state <- Failed msg
      | _ -> ());
      Condition.broadcast t.changed)

(* Drop one claim without waiting (cleanup paths). *)
let release t key =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some ({ state = Running; _ } as e) ->
          e.claimants <- e.claimants - 1;
          if e.claimants <= 0 && not e.started then begin
            Hashtbl.remove t.tbl key;
            t.abandoned <- t.abandoned + 1
          end
      | Some ({ state = Failed _; _ } as e) ->
          e.claimants <- e.claimants - 1;
          if e.claimants <= 0 then Hashtbl.remove t.tbl key
      | _ -> ());
      Condition.broadcast t.changed)

type 'v outcome =
  | Value of 'v
  | Failed_with of string
  | Cancelled
  | Resubmit of int  (** entry vanished (eviction race): caller holds a fresh admission *)

(* Block until the key resolves. [cancelled] is polled on every wakeup;
   the server's ticker broadcasts periodically so a cancel or shutdown
   is observed within a tick even if no cache transition happens. *)
let wait t key ~cancelled =
  locked t (fun () ->
      let rec loop () =
        match Hashtbl.find_opt t.tbl key with
        | Some ({ state = Done v; _ } as e) ->
            touch t e;
            Value v
        | Some ({ state = Failed msg; _ } as e) ->
            e.claimants <- e.claimants - 1;
            if e.claimants <= 0 then Hashtbl.remove t.tbl key;
            Condition.broadcast t.changed;
            Failed_with msg
        | Some ({ state = Running; _ } as e) ->
            if cancelled () then begin
              e.claimants <- e.claimants - 1;
              if e.claimants <= 0 && not e.started then begin
                Hashtbl.remove t.tbl key;
                t.abandoned <- t.abandoned + 1
              end;
              Condition.broadcast t.changed;
              Cancelled
            end
            else begin
              Condition.wait t.changed t.m;
              loop ()
            end
        | None ->
            (* our Done entry was evicted between fill and wakeup: the
               caller must re-enqueue under this fresh admission *)
            t.next_token <- t.next_token + 1;
            let token = t.next_token in
            t.clock <- t.clock + 1;
            Hashtbl.replace t.tbl key
              { token; state = Running; claimants = 1; started = false; tick = t.clock };
            t.misses <- t.misses + 1;
            Resubmit token
      in
      loop ())

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        computes = t.computes;
        failures = t.failures;
        abandoned = t.abandoned;
        evictions = t.evictions;
        entries = done_count t;
      })
