(* Load generator for the campaign service: closed-loop (a fixed set
   of client threads issuing requests back to back) and open-loop
   (requests fired on a fixed arrival schedule regardless of
   completions). Latencies are wall-clock and host-dependent — they
   feed the report schema's informational/throughput rows, never a
   correctness check. *)

type result = {
  concurrency : int;
  requests : int;  (** completed successfully *)
  errors : int;
  wall_s : float;
  latencies_s : float array;  (** per-request, sorted ascending *)
  cached_results : int;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let p50 r = percentile r.latencies_s 50.
let p99 r = percentile r.latencies_s 99.

let campaigns_per_s r =
  if r.wall_s <= 0. then 0. else float_of_int r.requests /. r.wall_s

(* [payload ~id i] builds the i-th request payload; ids are allocated
   by the generator so each connection's ids stay unique. *)
let closed_loop ~addr ~concurrency ~requests ~payload () =
  let next_req = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let cached = Atomic.make 0 in
  let lat = Array.make requests 0. in
  let worker () =
    let c = Client.connect_retry addr in
    let rec loop id =
      let i = Atomic.fetch_and_add next_req 1 in
      if i < requests then begin
        let t0 = Unix.gettimeofday () in
        (match Client.rpc c ~id (payload ~id i) with
        | Ok o ->
            lat.(i) <- Unix.gettimeofday () -. t0;
            Atomic.incr completed;
            if o.Client.result_cached then Atomic.incr cached
        | Error _ -> Atomic.incr errors);
        loop (id + 1)
      end
    in
    (try loop 1 with _ -> Atomic.incr errors);
    Client.close c
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init concurrency (fun _ -> Thread.create worker ()) in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let latencies_s =
    Array.sub lat 0 (min requests (Atomic.get completed + Atomic.get errors))
    |> Array.to_list
    |> List.filter (fun l -> l > 0.)
    |> Array.of_list
  in
  Array.sort compare latencies_s;
  {
    concurrency;
    requests = Atomic.get completed;
    errors = Atomic.get errors;
    wall_s;
    latencies_s;
    cached_results = Atomic.get cached;
  }

(* Open loop: request i departs at [i /. rate] seconds after start, on
   its own connection and thread, whether or not earlier requests have
   completed — the arrival process does not back off, so queueing
   shows up in the latency tail rather than in the throughput. *)
let open_loop ~addr ~rate ~requests ~payload () =
  if rate <= 0. then invalid_arg "Load.open_loop: rate must be positive";
  let errors = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let cached = Atomic.make 0 in
  let lat = Array.make requests 0. in
  let t0 = Unix.gettimeofday () in
  let one i () =
    match Client.connect_retry addr with
    | c ->
        (match Client.rpc c ~id:1 (payload ~id:1 i) with
        | Ok o ->
            lat.(i) <- Unix.gettimeofday () -. t0 -. (float_of_int i /. rate);
            Atomic.incr completed;
            if o.Client.result_cached then Atomic.incr cached
        | Error _ -> Atomic.incr errors);
        Client.close c
    | exception _ -> Atomic.incr errors
  in
  let threads =
    Array.init requests (fun i ->
        let depart = float_of_int i /. rate in
        let now = Unix.gettimeofday () -. t0 in
        if depart > now then Thread.delay (depart -. now);
        Thread.create (one i) ())
  in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let latencies_s =
    Array.to_list lat |> List.filter (fun l -> l > 0.) |> Array.of_list
  in
  Array.sort compare latencies_s;
  {
    concurrency = requests;
    requests = Atomic.get completed;
    errors = Atomic.get errors;
    wall_s;
    latencies_s;
    cached_results = Atomic.get cached;
  }
