(* Request grammar and validation for the campaign service.

   Every frame payload is one JSON object with a "cmd" field. Job
   commands (run/faults/fuzz/explore) carry a positive client-chosen
   "id" that names the request in every frame streamed back; control
   commands (cancel/ping/stats/shutdown) are answered immediately.

   Validation is strict: a missing required field, an ill-typed value
   or an unknown field is a [bad-request] — silently ignoring unknown
   fields would let a misspelled option change what gets simulated
   while still returning a plausible document. The stable error codes
   (the contract pinned by test/cli) are:

     bad-frame    payload is not a JSON object
     oversize     announced frame length exceeds the server limit
     bad-request  unknown command, bad/missing/unknown field
     unknown-app  app name matches no (or several) catalog entries
     internal     a compute job raised
     shutdown     server is stopping

   Responses from the server are also single JSON objects, tagged by a
   "frame" field: progress | cell | result | error | cancelled | pong
   | stats | bye. A result frame announces the byte length of the
   verbatim one-shot document, which follows as the next raw frame —
   shipping the exact bytes (rather than re-emitting a parsed tree)
   is what makes the byte-identity guarantee float-proof. *)

module Json = Trace.Json

type error = { code : string; msg : string }

type request =
  | Run of {
      src : string;
      policy : Lang.Interp.policy;
      failure : Platform.Failure.spec;
      seed : int;
    }
  | Faults of {
      app : string;
      runtime : Apps.Common.variant option;  (** [None] = all four *)
      sweep : Faultkit.Campaign.sweep;
      seed : int;
    }
  | Fuzz of { options : Conformance.Fuzz.options }
  | Explore of {
      app : string;
      runtime : Apps.Common.variant;
      depth : int;
      max_states : int option;
      prune : bool;
      ablate_regions : bool;
      ablate_semantics : bool;
      seed : int;
    }

type control = Cancel of int | Ping | Stats | Shutdown
type incoming = Job of int * request | Control of control

let err code fmt = Printf.ksprintf (fun msg -> Error { code; msg }) fmt
let bad fmt = err "bad-request" fmt

let variant_of_string = function
  | "alpaca" -> Ok Apps.Common.Alpaca
  | "ink" -> Ok Apps.Common.Ink
  | "easeio" -> Ok Apps.Common.Easeio
  | "easeio-op" -> Ok Apps.Common.Easeio_op
  | s -> bad "unknown runtime %S (alpaca|ink|easeio|easeio-op)" s

let policy_of_string = function
  | "plain" -> Ok Lang.Interp.Plain
  | "alpaca" -> Ok Lang.Interp.Alpaca
  | "ink" -> Ok Lang.Interp.Ink
  | "easeio" -> Ok Lang.Interp.Easeio
  | s -> bad "unknown runtime %S (plain|alpaca|ink|easeio)" s

(* {1 Typed field access over one object} *)

let ( let* ) = Result.bind

let check_fields ~cmd ~allowed fields =
  let rec go = function
    | [] -> Ok ()
    | (k, _) :: tl ->
        if List.mem k allowed then go tl else bad "%s: unknown field %S" cmd k
  in
  go fields

let get_int fields ~cmd key ~default =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some (Json.Int n) -> Ok n
  | Some _ -> bad "%s: field %S must be an integer" cmd key

let get_bool fields ~cmd key ~default =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> bad "%s: field %S must be a boolean" cmd key

let get_string_opt fields ~cmd key =
  match List.assoc_opt key fields with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> bad "%s: field %S must be a string" cmd key

let get_string fields ~cmd key =
  let* v = get_string_opt fields ~cmd key in
  match v with None -> bad "%s: missing required field %S" cmd key | Some s -> Ok s

(* {1 Per-command parsers} *)

let common = [ "id"; "cmd" ]

let parse_run fields =
  let cmd = "run" in
  let* () = check_fields ~cmd ~allowed:(common @ [ "src"; "runtime"; "failure"; "seed" ]) fields in
  let* src = get_string fields ~cmd "src" in
  let* runtime = get_string_opt fields ~cmd "runtime" in
  let* policy =
    match runtime with None -> Ok Lang.Interp.Easeio | Some s -> policy_of_string s
  in
  let* failure_s = get_string_opt fields ~cmd "failure" in
  let* failure =
    match failure_s with
    | None -> Ok Platform.Failure.No_failures
    | Some s -> (
        match Platform.Failure.of_string s with
        | Ok f -> Ok f
        | Error e -> bad "run: bad failure spec: %s" e)
  in
  let* seed = get_int fields ~cmd "seed" ~default:1 in
  Ok (Run { src; policy; failure; seed })

let parse_faults fields =
  let cmd = "faults" in
  let* () = check_fields ~cmd ~allowed:(common @ [ "app"; "runtime"; "sweep"; "seed" ]) fields in
  let* app = get_string fields ~cmd "app" in
  let* runtime_s = get_string_opt fields ~cmd "runtime" in
  let* runtime =
    match runtime_s with
    | None -> Ok None
    | Some s ->
        let* v = variant_of_string s in
        Ok (Some v)
  in
  let* sweep_s = get_string_opt fields ~cmd "sweep" in
  let* sweep =
    match sweep_s with
    | None -> Ok (Faultkit.Campaign.Boundaries { stride = 1 })
    | Some s -> (
        match Faultkit.Campaign.sweep_of_string s with
        | Ok sw -> Ok sw
        | Error e -> bad "faults: %s" e)
  in
  let* seed = get_int fields ~cmd "seed" ~default:1 in
  Ok (Faults { app; runtime; sweep; seed })

let parse_fuzz fields =
  let cmd = "fuzz" in
  let* () =
    check_fields ~cmd
      ~allowed:
        (common @ [ "count"; "seed"; "budget"; "max_shrink"; "ablate_regions"; "ablate_semantics" ])
      fields
  in
  let d = Conformance.Fuzz.default_options in
  let* count = get_int fields ~cmd "count" ~default:d.Conformance.Fuzz.count in
  let* seed = get_int fields ~cmd "seed" ~default:d.Conformance.Fuzz.seed in
  let* budget = get_int fields ~cmd "budget" ~default:d.Conformance.Fuzz.budget in
  let* max_shrink = get_int fields ~cmd "max_shrink" ~default:d.Conformance.Fuzz.max_shrink in
  let* ablate_regions = get_bool fields ~cmd "ablate_regions" ~default:false in
  let* ablate_semantics = get_bool fields ~cmd "ablate_semantics" ~default:false in
  if count < 1 then bad "fuzz: count must be >= 1"
  else
    Ok
      (Fuzz
         {
           options =
             {
               Conformance.Fuzz.count;
               seed;
               (* the server shards across requests, not inside one *)
               jobs = 1;
               budget;
               max_shrink;
               ablate_regions;
               ablate_semantics;
               check_vm = true;
             };
         })

let parse_explore fields =
  let cmd = "explore" in
  let* () =
    check_fields ~cmd
      ~allowed:
        (common
        @ [
            "app"; "runtime"; "depth"; "max_states"; "prune"; "ablate_regions";
            "ablate_semantics"; "seed";
          ])
      fields
  in
  let* app = get_string fields ~cmd "app" in
  let* runtime_s = get_string_opt fields ~cmd "runtime" in
  let* runtime =
    match runtime_s with None -> Ok Apps.Common.Easeio | Some s -> variant_of_string s
  in
  let* depth = get_int fields ~cmd "depth" ~default:1 in
  let* max_states =
    match List.assoc_opt "max_states" fields with
    | None | Some Json.Null -> Ok None
    | Some (Json.Int n) -> Ok (Some n)
    | Some _ -> bad "explore: field \"max_states\" must be an integer"
  in
  let* prune = get_bool fields ~cmd "prune" ~default:true in
  let* ablate_regions = get_bool fields ~cmd "ablate_regions" ~default:false in
  let* ablate_semantics = get_bool fields ~cmd "ablate_semantics" ~default:false in
  let* seed = get_int fields ~cmd "seed" ~default:1 in
  if depth < 1 then bad "explore: depth must be >= 1"
  else Ok (Explore { app; runtime; depth; max_states; prune; ablate_regions; ablate_semantics; seed })

let parse json =
  match json with
  | Json.Obj fields -> (
      let* cmd = get_string fields ~cmd:"request" "cmd" in
      let* id =
        match List.assoc_opt "id" fields with
        | None -> Ok 0
        | Some (Json.Int n) -> Ok n
        | Some _ -> bad "request: field \"id\" must be an integer"
      in
      let job parse_fields =
        if id < 1 then bad "%s: job requests need a positive \"id\"" cmd
        else
          let* r = parse_fields fields in
          Ok (Job (id, r))
      in
      match cmd with
      | "run" -> job parse_run
      | "faults" -> job parse_faults
      | "fuzz" -> job parse_fuzz
      | "explore" -> job parse_explore
      | "cancel" -> (
          let* () = check_fields ~cmd:"cancel" ~allowed:(common @ [ "target" ]) fields in
          match List.assoc_opt "target" fields with
          | Some (Json.Int t) -> Ok (Control (Cancel t))
          | Some _ | None -> bad "cancel: missing integer field \"target\"")
      | "ping" ->
          let* () = check_fields ~cmd:"ping" ~allowed:common fields in
          Ok (Control Ping)
      | "stats" ->
          let* () = check_fields ~cmd:"stats" ~allowed:common fields in
          Ok (Control Stats)
      | "shutdown" ->
          let* () = check_fields ~cmd:"shutdown" ~allowed:common fields in
          Ok (Control Shutdown)
      | c -> bad "unknown command %S" c)
  | _ -> err "bad-frame" "payload is not a JSON object"

(* {1 Request payload builders (client side)}

   Built through [Trace.Json] so embedded program sources are escaped
   correctly; the server parses frames, so pretty-printed multi-line
   payloads are fine on the wire. *)

let to_payload obj = Json.to_string (Json.Obj obj)

(* The wire names are the CLI option slugs, not the display names
   ([Apps.Common.variant_name] renders "EaseIO/Op" etc. for tables). *)
let variant_slug = function
  | Apps.Common.Alpaca -> "alpaca"
  | Apps.Common.Ink -> "ink"
  | Apps.Common.Easeio -> "easeio"
  | Apps.Common.Easeio_op -> "easeio-op"

let policy_slug = function
  | Lang.Interp.Plain -> "plain"
  | Lang.Interp.Alpaca -> "alpaca"
  | Lang.Interp.Ink -> "ink"
  | Lang.Interp.Easeio -> "easeio"

let run_request ~id ?(runtime = Lang.Interp.Easeio) ?(failure = Platform.Failure.No_failures)
    ?(seed = 1) ~src () =
  to_payload
    [
      ("id", Json.Int id);
      ("cmd", Json.String "run");
      ("src", Json.String src);
      ("runtime", Json.String (policy_slug runtime));
      ("failure", Json.String (Platform.Failure.to_string failure));
      ("seed", Json.Int seed);
    ]

let faults_request ~id ?runtime ?(sweep = Faultkit.Campaign.Boundaries { stride = 1 }) ?(seed = 1)
    ~app () =
  to_payload
    ([ ("id", Json.Int id); ("cmd", Json.String "faults"); ("app", Json.String app) ]
    @ (match runtime with
      | None -> []
      | Some v -> [ ("runtime", Json.String (variant_slug v)) ])
    @ [
        ("sweep", Json.String (Faultkit.Campaign.sweep_to_string sweep));
        ("seed", Json.Int seed);
      ])

let fuzz_request ~id ?(options = Conformance.Fuzz.default_options) () =
  to_payload
    [
      ("id", Json.Int id);
      ("cmd", Json.String "fuzz");
      ("count", Json.Int options.Conformance.Fuzz.count);
      ("seed", Json.Int options.Conformance.Fuzz.seed);
      ("budget", Json.Int options.Conformance.Fuzz.budget);
      ("max_shrink", Json.Int options.Conformance.Fuzz.max_shrink);
      ("ablate_regions", Json.Bool options.Conformance.Fuzz.ablate_regions);
      ("ablate_semantics", Json.Bool options.Conformance.Fuzz.ablate_semantics);
    ]

let explore_request ~id ?(runtime = Apps.Common.Easeio) ?(depth = 1) ?max_states ?(prune = true)
    ?(seed = 1) ~app () =
  to_payload
    ([
       ("id", Json.Int id);
       ("cmd", Json.String "explore");
       ("app", Json.String app);
       ("runtime", Json.String (variant_slug runtime));
       ("depth", Json.Int depth);
     ]
    @ (match max_states with None -> [] | Some n -> [ ("max_states", Json.Int n) ])
    @ [ ("prune", Json.Bool prune); ("seed", Json.Int seed) ])

let cancel_request ~target = to_payload [ ("cmd", Json.String "cancel"); ("target", Json.Int target) ]
let ping_request = to_payload [ ("cmd", Json.String "ping") ]
let stats_request = to_payload [ ("cmd", Json.String "stats") ]
let shutdown_request = to_payload [ ("cmd", Json.String "shutdown") ]

(* {1 Cache keys}

   Content digests over everything a result document is a function of.
   Components are joined with NUL (none of the inputs contain NUL), a
   leading kind tag keeps the key spaces disjoint, and app names are
   the catalog's canonical [app_name] (resolved before keying), so a
   prefix alias and the full name share cache cells. *)

let digest_key parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let run_key ~src ~policy ~failure ~seed =
  digest_key
    [
      "run";
      src;
      Lang.Interp.policy_name policy;
      Platform.Failure.to_string failure;
      string_of_int seed;
    ]

let cell_key ~app ~variant ~sweep ~seed =
  digest_key
    [
      "cell";
      app;
      Apps.Common.variant_name variant;
      Faultkit.Campaign.sweep_to_string sweep;
      string_of_int seed;
    ]

let fuzz_key (o : Conformance.Fuzz.options) =
  digest_key
    [
      "fuzz";
      string_of_int o.Conformance.Fuzz.count;
      string_of_int o.Conformance.Fuzz.seed;
      string_of_int o.Conformance.Fuzz.budget;
      string_of_int o.Conformance.Fuzz.max_shrink;
      string_of_bool o.Conformance.Fuzz.ablate_regions;
      string_of_bool o.Conformance.Fuzz.ablate_semantics;
      string_of_bool o.Conformance.Fuzz.check_vm;
    ]

let explore_key ~app ~runtime ~depth ~max_states ~prune ~ablate_regions ~ablate_semantics ~seed =
  digest_key
    [
      "explore";
      app;
      Apps.Common.variant_name runtime;
      string_of_int depth;
      (match max_states with None -> "-" | Some n -> string_of_int n);
      string_of_bool prune;
      string_of_bool ablate_regions;
      string_of_bool ablate_semantics;
      string_of_int seed;
    ]
