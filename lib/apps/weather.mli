(** The DNN weather-classification application (§5.4.1, Fig. 9).

    Eleven tasks over five I/O functions: sense temperature (Timely,
    10 ms) and humidity (Always) inside a Single I/O block, capture an
    image (Single), infer the weather with the 4-stage DNN (DMA + LEA
    per layer), and send temperature, humidity and the inferred class
    over the radio (Single, data-dependent on the sensor reads).

    Built directly against the library APIs (the shallow embedding):
    baselines use raw peripherals plus the {!Runtimes.Manager};
    EaseIO uses {!Easeio.Runtime}. [buffering] selects the activation
    discipline of Table 5: [`Double] is the defensive two-buffer idiom,
    [`Single] reuses one buffer in place (safe only under EaseIO). *)

open Platform

val tasks : int
(** 11. *)

val io_functions : int
(** 5. *)

val run_once :
  ?buffering:[ `Single | `Double ] ->
  ?sink:Trace.Event.sink ->
  ?meter:Obs.Sheet.t ->
  ?faults:Faults.plan ->
  ?probe:(Machine.t -> unit) ->
  Common.variant ->
  failure:Failure.spec ->
  seed:int ->
  Expkit.Run.one
(** One execution; default buffering [`Double]. The run is judged
    correct when the stored class equals the bit-exact reference
    inference on the stored image and the transmitted packet matches
    the stored sensor values and class. *)

val build :
  ?buffering:[ `Single | `Double ] ->
  Common.variant ->
  Machine.t ->
  Kernel.Task.app * Kernel.Engine.hooks * Periph.Radio.t
(** Construct the application on an existing machine (used by the
    footprint accounting and the examples). *)

val spec : Common.spec
