open Platform

type variant = Alpaca | Ink | Easeio | Easeio_op

let variant_name = function
  | Alpaca -> "Alpaca"
  | Ink -> "InK"
  | Easeio -> "EaseIO"
  | Easeio_op -> "EaseIO/Op"

let all_variants = [ Alpaca; Ink; Easeio; Easeio_op ]

let policy_of = function
  | Alpaca -> Lang.Interp.Alpaca
  | Ink -> Lang.Interp.Ink
  | Easeio | Easeio_op -> Lang.Interp.Easeio

let lea_fir_seg : string * Lang.Interp.io_impl =
  ( "Lea_fir_seg",
    fun m args ->
      match args with
      | [
       Lang.Interp.Arr (input, in_words);
       Val in_off;
       Arr (coeffs, _);
       Val taps;
       Arr (output, out_words);
       Val out_off;
       Val samples;
      ] ->
          if in_off + samples + taps - 1 > in_words || out_off + samples > out_words then
            Lang.Ast.error "Lea_fir_seg: segment out of bounds";
          let sram_addr (loc : Loc.t) what =
            match loc.Loc.space with
            | Memory.Sram -> loc.Loc.addr
            | Memory.Fram -> Lang.Ast.error "Lea_fir_seg: %s must be in LEA-RAM" what
          in
          Periph.Lea.fir m
            ~input:(sram_addr input "input" + in_off)
            ~coeffs:(sram_addr coeffs "coeffs")
            ~taps
            ~output:(sram_addr output "output" + out_off)
            ~samples;
          0
      | _ -> Lang.Ast.error "Lea_fir_seg(input, in_off, coeffs, taps, output, out_off, samples)" )

let run_ir ~src ?(setup = fun _ -> ()) ?check ?(extra_io = []) ?ablate_regions
    ?ablate_semantics ?sink ?faults ?probe variant ~failure ~seed =
  let m = Machine.create ~seed ~failure ?faults () in
  Option.iter (Machine.set_sink m) sink;
  let prog = Lang.Parser.program src in
  let t =
    Lang.Interp.build ~policy:(policy_of variant) ~extra_io:(lea_fir_seg :: extra_io) ?check
      ?ablate_regions ?ablate_semantics m prog
  in
  setup t;
  let o = Lang.Interp.run t in
  Option.iter (fun f -> f m) probe;
  Expkit.Run.of_outcome m o

let flash m (loc : Loc.t) values =
  let mem = Machine.mem m loc.Loc.space in
  Array.iteri (fun i v -> Memory.write mem (loc.Loc.addr + i) v) values

type spec = {
  app_name : string;
  tasks : int;
  io_functions : int;
  nv_volatile : string list;
  run :
    ?sink:Trace.Event.sink ->
    ?faults:Faults.plan ->
    ?probe:(Machine.t -> unit) ->
    variant ->
    failure:Failure.spec ->
    seed:int ->
    Expkit.Run.one;
}
