open Platform

type variant = Alpaca | Ink | Easeio | Easeio_op

let variant_name = function
  | Alpaca -> "Alpaca"
  | Ink -> "InK"
  | Easeio -> "EaseIO"
  | Easeio_op -> "EaseIO/Op"

let all_variants = [ Alpaca; Ink; Easeio; Easeio_op ]

let policy_of = function
  | Alpaca -> Lang.Interp.Alpaca
  | Ink -> Lang.Interp.Ink
  | Easeio | Easeio_op -> Lang.Interp.Easeio

let lea_fir_seg : string * Lang.Interp.io_impl =
  ( "Lea_fir_seg",
    fun m args ->
      match args with
      | [
       Lang.Interp.Arr (input, in_words);
       Val in_off;
       Arr (coeffs, _);
       Val taps;
       Arr (output, out_words);
       Val out_off;
       Val samples;
      ] ->
          if in_off + samples + taps - 1 > in_words || out_off + samples > out_words then
            Lang.Ast.error "Lea_fir_seg: segment out of bounds";
          let sram_addr (loc : Loc.t) what =
            match loc.Loc.space with
            | Memory.Sram -> loc.Loc.addr
            | Memory.Fram -> Lang.Ast.error "Lea_fir_seg: %s must be in LEA-RAM" what
          in
          Periph.Lea.fir m
            ~input:(sram_addr input "input" + in_off)
            ~coeffs:(sram_addr coeffs "coeffs")
            ~taps
            ~output:(sram_addr output "output" + out_off)
            ~samples;
          0
      | _ -> Lang.Ast.error "Lea_fir_seg(input, in_off, coeffs, taps, output, out_off, samples)" )

module Exec = struct
  type t = Tree of Lang.Interp.t | Vm of Vm.t

  let machine = function Tree t -> Lang.Interp.machine t | Vm v -> Vm.machine v

  let read_global = function
    | Tree t -> Lang.Interp.read_global t
    | Vm v -> Vm.read_global v

  let read_global_block = function
    | Tree t -> Lang.Interp.read_global_block t
    | Vm v -> Vm.read_global_block v

  let global_loc = function
    | Tree t -> Lang.Interp.global_loc t
    | Vm v -> Vm.global_loc v
end

type interp = Tree_walk | Bytecode

let interp_name = function Tree_walk -> "tree" | Bytecode -> "vm"
let default_interp = ref Bytecode

(* One compiled arena per (program, variant, ablations) per domain.
   Keyed per-domain so parallel sweeps (Expkit.Pool) never share a
   machine; Vm.reset recycles the arena between seeds. *)
let vm_arenas :
    (string * variant * bool option * bool option, Vm.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let run_ir ~src ?interp ?(setup = fun _ -> ()) ?check ?(extra_io = []) ?ablate_regions
    ?ablate_semantics ?sink ?meter ?faults ?probe variant ~failure ~seed =
  let interp = match interp with Some i -> i | None -> !default_interp in
  match interp with
  | Tree_walk ->
      let m = Machine.create ~seed ~failure ?faults () in
      Option.iter (Machine.set_sink m) sink;
      Option.iter (Machine.set_meter m) meter;
      let prog = Lang.Parser.program src in
      let t =
        Lang.Interp.build ~policy:(policy_of variant) ~extra_io:(lea_fir_seg :: extra_io)
          ?check:(Option.map (fun f t -> f (Exec.Tree t)) check)
          ?ablate_regions ?ablate_semantics m prog
      in
      setup (Exec.Tree t);
      let o = Lang.Interp.run t in
      Option.iter (fun f -> f m) probe;
      Expkit.Run.of_outcome m o
  | Bytecode ->
      let vm =
        if extra_io <> [] then
          (* custom peripherals are closures we can't key a cache on;
             compile a one-shot arena *)
          Vm.compile ~policy:(policy_of variant) ~extra_io:(lea_fir_seg :: extra_io)
            ?ablate_regions ?ablate_semantics
            (Machine.create ~seed ~failure ?faults ())
            (Lang.Parser.program src)
        else
          let arenas = Domain.DLS.get vm_arenas in
          let key = (src, variant, ablate_regions, ablate_semantics) in
          match Hashtbl.find_opt arenas key with
          | Some vm ->
              Vm.reset ~seed ~failure ?faults vm;
              vm
          | None ->
              let vm =
                Vm.compile ~policy:(policy_of variant) ~extra_io:[ lea_fir_seg ]
                  ?ablate_regions ?ablate_semantics
                  (Machine.create ~seed ~failure ?faults ())
                  (Lang.Parser.program src)
              in
              Hashtbl.add arenas key vm;
              vm
      in
      let m = Vm.machine vm in
      Option.iter (Machine.set_sink m) sink;
      Option.iter (Machine.set_meter m) meter;
      setup (Exec.Vm vm);
      let o = Vm.run ?check:(Option.map (fun f v -> f (Exec.Vm v)) check) vm in
      Option.iter (fun f -> f m) probe;
      Expkit.Run.of_outcome m o

let flash m (loc : Loc.t) values = Memory.load (Machine.mem m loc.Loc.space) loc.Loc.addr values

(* {1 Sessions}

   A session exposes an app as raw engine inputs (app, hooks, machine)
   instead of a one-shot [run], so snapshot-based drivers — the
   prefix-resume campaign path, the reboot-space explorer — can push
   it through the {!Kernel.Engine} stepper and fork its state at
   boundaries. [ses_save]/[ses_finish] cover the state and bookkeeping
   that live OUTSIDE the machine: the radio's receiver log and, when
   metered, the VM's dispatch counters. The machine starts under
   [No_failures]; drivers steer it with {!Platform.Machine.set_failure}
   after restoring a snapshot. *)

type session = {
  ses_machine : Machine.t;
  ses_app : Kernel.Task.app;
  ses_hooks : Kernel.Engine.hooks;
  ses_cur_slot : int option;  (* pre-allocated task-pointer slot (arenas) *)
  ses_begin : unit -> unit;
      (* latch metering after observers are attached, before the engine *)
  ses_save : unit -> unit -> unit;
      (* capture extra-machine state (radio log, VM counters); returns
         the restorer to pair with [Engine.restore] *)
  ses_finish : unit -> unit;  (* end-of-run flush (VM dispatch counts) *)
}

(* Session builder for task-language apps: always the bytecode VM (one
   recycled arena per (program, variant) per domain — sequential
   snapshot drivers hold exactly one live session per arena key). *)
let session_ir ~src ?(setup = fun _ -> ()) ?check () ?ablate_regions ?ablate_semantics
    variant ~seed =
  let arenas = Domain.DLS.get vm_arenas in
  let key = (src, variant, ablate_regions, ablate_semantics) in
  let vm =
    match Hashtbl.find_opt arenas key with
    | Some vm ->
        Vm.reset ~seed vm;
        vm
    | None ->
        let vm =
          Vm.compile ~policy:(policy_of variant) ~extra_io:[ lea_fir_seg ] ?ablate_regions
            ?ablate_semantics
            (Machine.create ~seed ())
            (Lang.Parser.program src)
        in
        Hashtbl.add arenas key vm;
        vm
  in
  setup (Exec.Vm vm);
  let app, hooks, cur_slot =
    Vm.prepare ?check:(Option.map (fun f v -> f (Exec.Vm v)) check) vm
  in
  let m = Vm.machine vm in
  {
    ses_machine = m;
    ses_app = app;
    ses_hooks = hooks;
    ses_cur_slot = Some cur_slot;
    ses_begin = (fun () -> Vm.begin_metered vm);
    ses_save =
      (fun () ->
        let radio = Periph.Radio.snapshot (Vm.radio vm) in
        let counts = if Machine.metered m then Some (Vm.save_counts vm) else None in
        fun () ->
          Periph.Radio.restore (Vm.radio vm) radio;
          Option.iter (Vm.restore_counts vm) counts);
    ses_finish = (fun () -> Vm.flush_counts vm);
  }

type spec = {
  app_name : string;
  tasks : int;
  io_functions : int;
  nv_volatile : string list;
  run :
    ?sink:Trace.Event.sink ->
    ?meter:Obs.Sheet.t ->
    ?faults:Faults.plan ->
    ?probe:(Machine.t -> unit) ->
    variant ->
    failure:Failure.spec ->
    seed:int ->
    Expkit.Run.one;
  session :
    (?ablate_regions:bool -> ?ablate_semantics:bool -> variant -> seed:int -> session) option;
      (** stepper-compatible access for snapshot-based drivers; [None]
          when the app cannot (yet) expose one *)
}
