(** Shared plumbing for the evaluation applications. *)

open Platform

type variant =
  | Alpaca
  | Ink
  | Easeio
  | Easeio_op  (** EaseIO with the Exclude annotation applied ("EaseIO/Op") *)

val variant_name : variant -> string
val all_variants : variant list
val policy_of : variant -> Lang.Interp.policy

val lea_fir_seg : string * Lang.Interp.io_impl
(** [Lea_fir_seg(input, in_off, coeffs, taps, output, out_off, samples)]
    — a windowed FIR block, so the paper's "four LEA calls in a loop"
    can address segments of the staged signal. *)

(** Executor-neutral handle: application setup/check code works the
    same against the tree-walking interpreter and the bytecode VM. *)
module Exec : sig
  type t = Tree of Lang.Interp.t | Vm of Vm.t

  val machine : t -> Machine.t
  val read_global : t -> string -> int -> int

  val read_global_block : t -> string -> words:int -> int array
  (** Bulk {!read_global}: one name resolution for [words] elements;
      use in checks that scan whole arrays. *)

  val global_loc : t -> string -> Loc.t
end

type interp = Tree_walk | Bytecode

val interp_name : interp -> string

val default_interp : interp ref
(** Executor used by {!run_ir} when no explicit [?interp] is given.
    Defaults to [Bytecode]; the CLI's [--interp tree] flips it back to
    the tree-walking oracle. *)

val run_ir :
  src:string ->
  ?interp:interp ->
  ?setup:(Exec.t -> unit) ->
  ?check:(Exec.t -> bool) ->
  ?extra_io:(string * Lang.Interp.io_impl) list ->
  ?ablate_regions:bool ->
  ?ablate_semantics:bool ->
  ?sink:Trace.Event.sink ->
  ?meter:Obs.Sheet.t ->
  ?faults:Faults.plan ->
  ?probe:(Machine.t -> unit) ->
  variant ->
  failure:Failure.spec ->
  seed:int ->
  Expkit.Run.one
(** Parse, build under the variant's policy, execute, and summarize one
    run of a task-language application. Under [Bytecode] (the default)
    the program is compiled once per (source, variant, ablations) per
    domain and the arena is recycled across seeds with {!Vm.reset};
    under [Tree_walk] every run builds a fresh interpreter. Results are
    observationally identical either way. [sink] attaches a trace sink
    to the machine before execution (pure observation: the summary is
    identical with or without one). [faults] installs a peripheral
    fault-injection plan; [probe] runs against the machine after the
    engine returns (uncharged post-run inspection — faultkit oracles
    snapshot final NV state here). [meter] attaches a campaign metrics
    sheet (also pure observation); unlike a sink it usually outlives
    the run — campaigns pass one sheet to every run of a shard. *)

val flash : Machine.t -> Loc.t -> int array -> unit
(** Uncharged (link-time) initialization of a memory range. *)

(** {1 Sessions}

    Raw engine inputs for snapshot-based drivers (the prefix-resume
    campaign path, the reboot-space explorer): instead of a one-shot
    [run], a session hands out the app/hooks/machine to push through
    the {!Kernel.Engine} stepper, plus capture/restore of the state
    that lives outside the machine (the radio's receiver log; the VM's
    dispatch counters when metered). The machine starts under
    [No_failures]; drivers steer it with
    {!Platform.Machine.set_failure} after restoring snapshots. *)

type session = {
  ses_machine : Machine.t;
  ses_app : Kernel.Task.app;
  ses_hooks : Kernel.Engine.hooks;
  ses_cur_slot : int option;
      (** pre-allocated task-pointer slot for [Engine.start] (recycled
          arenas); [None] lets the engine allocate one *)
  ses_begin : unit -> unit;
      (** call once per run, after attaching observers and before
          [Engine.start] — latches VM metering *)
  ses_save : unit -> unit -> unit;
      (** capture extra-machine state now; the returned thunk restores
          it (pair with [Engine.restore]) *)
  ses_finish : unit -> unit;
      (** call when a run reaches [Finished] — flushes VM dispatch
          counts to the attached sheet *)
}

val session_ir :
  src:string ->
  ?setup:(Exec.t -> unit) ->
  ?check:(Exec.t -> bool) ->
  unit ->
  ?ablate_regions:bool ->
  ?ablate_semantics:bool ->
  variant ->
  seed:int ->
  session
(** Session builder for task-language apps, always on the bytecode VM
    (one recycled arena per (program, variant, ablations) per domain;
    hold at most one live session per arena key). The ablation hooks
    come after [()] so an app spec can close over its source and still
    expose them through the [session] field. *)

type spec = {
  app_name : string;
  tasks : int;
  io_functions : int;
  nv_volatile : string list;
      (** FRAM allocation-name prefixes whose final contents {e
          legitimately} differ across failure schedules — everything
          derived from sensor/image samples, whose values are functions
          of the (schedule-shifted) sampling time. The differential
          NV-state oracle ignores these regions; an empty list means
          the whole committed image must match the golden run. *)
  run :
    ?sink:Trace.Event.sink ->
    ?meter:Obs.Sheet.t ->
    ?faults:Faults.plan ->
    ?probe:(Machine.t -> unit) ->
    variant ->
    failure:Failure.spec ->
    seed:int ->
    Expkit.Run.one;
  session :
    (?ablate_regions:bool -> ?ablate_semantics:bool -> variant -> seed:int -> session) option;
      (** stepper-compatible access for snapshot-based drivers; [None]
          when the app cannot (yet) expose one. The ablation test hooks
          mirror {!run_ir}'s (apps that cannot ablate raise
          [Invalid_argument] when one is set). *)
}
(** One evaluation application (a Table 3 row + a runner). *)
