let block = 2500
let compute_iters = 599

(* {1 DMA application — Single semantics, NVM -> NVM} *)

(* Each task performs one large single-shot block copy followed by
   independent computation (the paper's DMA benchmark pattern): once the
   copy completed, re-executing it after a failure in the compute part
   is pure waste — which EaseIO's Single annotation eliminates. *)
let dma_task ~k ~next =
  Printf.sprintf
    {|
task t%d {
  int i;
  int acc;
  dma_copy(src%d[0], dst%d[0], %d);
  acc = 0;
  for i = 0 to %d { acc = acc + ((i * %d) %% 31); }
  out%d = acc;
  %s
}
|}
    k k k block compute_iters k k next

let dma_source =
  Printf.sprintf
    {|
program dma_app;
nv int src1[%d];
nv int dst1[%d];
nv int src2[%d];
nv int dst2[%d];
nv int src3[%d];
nv int dst3[%d];
nv int out1;
nv int out2;
nv int out3;
%s%s%s|}
    block block block block block block
    (dma_task ~k:1 ~next:"next t2;")
    (dma_task ~k:2 ~next:"next t3;")
    (dma_task ~k:3 ~next:"stop;")

let dma_pattern k i = ((i * 7) + (k * 13)) land 0x3FFF

(* pure patterns, computed once — setup/check run on every benchmark
   repetition *)
let dma_images = lazy (Array.init 3 (fun k -> Array.init block (dma_pattern (k + 1))))

let dma_setup t =
  let m = Common.Exec.machine t in
  List.iteri
    (fun k name -> Common.flash m (Common.Exec.global_loc t name) (Lazy.force dma_images).(k))
    [ "src1"; "src2"; "src3" ]

let dma_compute_reference k =
  let acc = ref 0 in
  for i = 0 to compute_iters do
    acc := !acc + (i * k mod 31)
  done;
  !acc

let dma_references = lazy (Array.init 3 (fun k -> dma_compute_reference (k + 1)))

let dma_check t =
  let ok = ref true in
  List.iteri
    (fun k name ->
      let got = Common.Exec.read_global_block t name ~words:block in
      if got <> (Lazy.force dma_images).(k) then ok := false)
    [ "dst1"; "dst2"; "dst3" ];
  List.iteri
    (fun k name ->
      if Common.Exec.read_global t name 0 <> (Lazy.force dma_references).(k) then ok := false)
    [ "out1"; "out2"; "out3" ];
  !ok

(* ablation runner: EaseIO with all annotations forced to Always *)
let dma_run_ablated ~ablate_semantics ~failure ~seed =
  Common.run_ir ~src:dma_source ~setup:dma_setup ~check:dma_check ~ablate_regions:false
    ~ablate_semantics Common.Easeio ~failure ~seed

let dma =
  {
    Common.app_name = "DMA";
    tasks = 3;
    io_functions = 1;
    (* no sensor inputs: the whole committed image is schedule-invariant *)
    nv_volatile = [];
    run =
      (fun ?sink ?meter ?faults ?probe variant ~failure ~seed ->
        Common.run_ir ~src:dma_source ~setup:dma_setup ~check:dma_check ?sink ?meter ?faults ?probe
          variant ~failure ~seed);
    session = Some (Common.session_ir ~src:dma_source ~setup:dma_setup ~check:dma_check ());
  }

(* {1 Temperature application — Timely semantics} *)

let temp_iters = 199
let temp_samples = 8

let temp_source =
  Printf.sprintf
    {|
program temp_app;
nv int tsum;
nv int tcnt;
nv int tlast;
nv int out1;

task sense {
  int v;
  int acc;
  int i;
  v = call_io(Temp, Timely, 10ms);
  tlast = v;
  acc = 0;
  for i = 0 to %d { acc = acc + ((v + i) %% 13); }
  tsum = tsum + v + (acc %% 3);
  tcnt = tcnt + 1;
  if (tcnt < %d) { next sense; } else { next report; }
}

task report {
  out1 = tsum / tcnt;
  next finish;
}

task finish { stop; }
|}
    temp_iters temp_samples

let temp_check t =
  (* sensed values vary across runs, so the check is an invariant: the
     loop ran exactly [temp_samples] times and the average is a
     plausible (accumulated) temperature *)
  let cnt = Common.Exec.read_global t "tcnt" 0 in
  let sum = Common.Exec.read_global t "tsum" 0 in
  let avg = Common.Exec.read_global t "out1" 0 in
  cnt = temp_samples && avg = sum / cnt && avg > 0 && avg < 400

let temp =
  {
    Common.app_name = "Temp.";
    tasks = 3;
    io_functions = 1;
    (* temperature samples are functions of sampling time, which failure
       schedules shift; tcnt (always 8) stays comparable *)
    nv_volatile = [ "tsum"; "tlast"; "out1" ];
    run =
      (fun ?sink ?meter ?faults ?probe variant ~failure ~seed ->
        Common.run_ir ~src:temp_source ~check:temp_check ?sink ?meter ?faults ?probe variant ~failure
          ~seed);
    session = Some (Common.session_ir ~src:temp_source ~check:temp_check ());
  }

(* {1 LEA application — Always semantics} *)

let vec = 256

let lea_iters = 249

let lea_task ~name ~mult ~accum ~next =
  Printf.sprintf
    {|
task %s {
  int i;
  int r;
  int post;
  for i = 0 to %d {
    va[i] = i %% 16;
    vb[i] = (i * %d) %% 16;
  }
  r = call_io(Lea_mac, Always, va, vb, %d);
  post = 0;
  for i = 0 to %d { post = post + ((r + i) %% 11); }
  r = r + (post %% 5);
  %s
  %s
}
|}
    name (vec - 1) mult vec lea_iters accum next

let lea_source =
  Printf.sprintf
    {|
program lea_app;
vol int va[%d];
vol int vb[%d];
nv int acc1;
nv int acc2;
nv int acc3;
%s%s%s|}
    vec vec
    (lea_task ~name:"mac1" ~mult:3 ~accum:"acc1 = r;" ~next:"next mac2;")
    (lea_task ~name:"mac2" ~mult:5 ~accum:"acc2 = acc1 + r;" ~next:"next mac3;")
    (lea_task ~name:"mac3" ~mult:7 ~accum:"acc3 = acc2 + r;" ~next:"stop;")

let lea_reference mult =
  let acc = ref 0 in
  for i = 0 to vec - 1 do
    acc := !acc + (i mod 16 * (i * mult mod 16))
  done;
  let r = !acc in
  let post = ref 0 in
  for i = 0 to lea_iters do
    post := !post + ((r + i) mod 11)
  done;
  r + (!post mod 5)

let lea_check t =
  let r1 = lea_reference 3 and r2 = lea_reference 5 and r3 = lea_reference 7 in
  Common.Exec.read_global t "acc1" 0 = r1
  && Common.Exec.read_global t "acc2" 0 = r1 + r2
  && Common.Exec.read_global t "acc3" 0 = r1 + r2 + r3

let lea =
  {
    Common.app_name = "LEA";
    tasks = 3;
    io_functions = 1;
    nv_volatile = [];
    run =
      (fun ?sink ?meter ?faults ?probe variant ~failure ~seed ->
        Common.run_ir ~src:lea_source ~check:lea_check ?sink ?meter ?faults ?probe variant ~failure
          ~seed);
    session = Some (Common.session_ir ~src:lea_source ~check:lea_check ());
  }
