(** The evaluation-application catalog (Table 3). *)

val all : Common.spec list
(** LEA, DMA, Temp, FIR filter, Weather — in the paper's Table 3
    order. *)

val uni_task : Common.spec list
(** The three phase-1 applications. *)

exception Ambiguous of string list
(** A prefix that matches several applications, none exactly: the full
    names of every match, in catalog order. *)

val find : ?candidates:Common.spec list -> string -> Common.spec
(** Lookup by [app_name], exactly or by case-insensitive
    letters-and-digits prefix (["weather"] finds ["Weather App."],
    ["fir"] the ["FIR filter"]). An exact normalized match wins over
    longer names sharing the prefix. Raises [Not_found] when nothing
    matches and {!Ambiguous} when several do — silently picking the
    first match could run the wrong experiment. [candidates] defaults
    to {!all} (overridable for tests; the shipped names are
    prefix-free). *)
