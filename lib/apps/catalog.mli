(** The evaluation-application catalog (Table 3). *)

val all : Common.spec list
(** LEA, DMA, Temp, FIR filter, Weather — in the paper's Table 3
    order. *)

val uni_task : Common.spec list
(** The three phase-1 applications. *)

val find : string -> Common.spec
(** Lookup by [app_name], exactly or by case-insensitive
    letters-and-digits prefix (["weather"] finds ["Weather App."],
    ["fir"] the ["FIR filter"]); raises [Not_found]. *)
