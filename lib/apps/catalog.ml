let all = [ Uni.lea; Uni.dma; Uni.temp; Fir.spec; Weather.spec ]
let uni_task = [ Uni.dma; Uni.temp; Uni.lea ]

exception Ambiguous of string list

(* "weather" should find "Weather App.", "fir" the "FIR filter": compare
   case-insensitively on letters and digits only, accepting a prefix. *)
let normalize s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | _ -> ())
    s;
  Buffer.contents b

let find ?(candidates = all) name =
  match List.find_opt (fun s -> s.Common.app_name = name) candidates with
  | Some s -> s
  | None -> (
      let n = normalize name in
      if n = "" then raise Not_found
      else
        let matches =
          List.filter
            (fun s ->
              let cand = normalize s.Common.app_name in
              String.length cand >= String.length n && String.sub cand 0 (String.length n) = n)
            candidates
        in
        (* an exact normalized match ("temp" vs "Temp.") beats other
           candidates that merely extend the prefix *)
        match List.filter (fun s -> normalize s.Common.app_name = n) matches with
        | [ s ] -> s
        | _ -> (
            match matches with
            | [] -> raise Not_found
            | [ s ] -> s
            | ms -> raise (Ambiguous (List.map (fun s -> s.Common.app_name) ms))))
