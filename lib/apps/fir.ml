let signal_words = 511
let taps = 8
let samples = signal_words - taps + 1 (* 504, filtered in 4 segments of 126 *)
let seg = samples / 4

let table_words = 256

let source ~exclude_coefs =
  Printf.sprintf
    {|
program fir_app;
nv int signal[%d];
nv int coefs[%d];
nv int wtab[%d];
nv int chksum;
nv int progress;
vol int li[%d];
vol int lc[%d];
vol int lo[%d];
vol int lw[%d];

task start { progress = 1; next fir; }

task fir {
  int b;
  int i;
  int acc;
  %s(coefs[0], lc[0], %d);
  %s(wtab[0], lw[0], %d);
  dma_copy(signal[0], li[0], %d);
  for b = 0 to 3 {
    call_io(Lea_fir_seg, Always, li, b * %d, lc, %d, lo, b * %d, %d);
  }
  dma_copy(lo[0], signal[0], %d);
  acc = 0;
  for i = 0 to %d { acc = acc + (lo[i * 2] * lw[(i * 2) %% %d]); }
  chksum = acc;
  next verify;
}

task verify {
  if (chksum > 0) { progress = 2; }
  next send;
}

task send { call_io(Delay, Single, 2000); next finish; }

task finish { progress = 3; stop; }
|}
    signal_words taps table_words signal_words taps samples table_words
    (if exclude_coefs then "dma_copy_exclude" else "dma_copy")
    taps
    (if exclude_coefs then "dma_copy_exclude" else "dma_copy")
    table_words signal_words seg taps seg seg samples ((samples / 2) - 1) table_words

let signal_pattern i = ((i * 5) + 3) mod 16
let coef_pattern i = (i * 3 mod 7) + 1
let table_pattern i = (i * 7 mod 5) + 1

(* pure input images and the expected filter output, computed once —
   setup/check run on every benchmark repetition *)
let signal_image = lazy (Array.init signal_words signal_pattern)
let coefs_image = lazy (Array.init taps coef_pattern)
let table_image = lazy (Array.init table_words table_pattern)

let reference_output =
  lazy
    (let input = Lazy.force signal_image in
     let coefs = Lazy.force coefs_image in
     Array.init samples (fun i ->
         let acc = ref 0 in
         for j = 0 to taps - 1 do
           acc := !acc + (input.(i + j) * coefs.(j))
         done;
         !acc))

let setup t =
  let m = Common.Exec.machine t in
  Common.flash m (Common.Exec.global_loc t "signal") (Lazy.force signal_image);
  Common.flash m (Common.Exec.global_loc t "coefs") (Lazy.force coefs_image);
  Common.flash m (Common.Exec.global_loc t "wtab") (Lazy.force table_image)

let check t =
  let expected = Lazy.force reference_output in
  let ok = ref true in
  let signal = Common.Exec.read_global_block t "signal" ~words:signal_words in
  for i = 0 to samples - 1 do
    if signal.(i) <> expected.(i) then ok := false
  done;
  (* the unfiltered tail of the shared buffer must keep the input *)
  for i = samples to signal_words - 1 do
    if signal.(i) <> signal_pattern i then ok := false
  done;
  let chk = ref 0 in
  for i = 0 to (samples / 2) - 1 do
    chk := !chk + (expected.(i * 2) * table_pattern (i * 2 mod table_words))
  done;
  !ok && Common.Exec.read_global t "chksum" 0 = !chk

(* DESIGN.md §6 ablations, run by the bench harness *)
let run_ablated ?sink ?meter ?faults ?probe ~ablate_regions ~ablate_semantics ~failure ~seed () =
  Common.run_ir ~src:(source ~exclude_coefs:false) ~setup ~check ?sink ?meter ?faults ?probe
    ~ablate_regions ~ablate_semantics Common.Easeio ~failure ~seed

let spec =
  {
    Common.app_name = "FIR filter";
    tasks = 5;
    io_functions = 2;
    (* the signal is flashed, not sensed: fully schedule-invariant *)
    nv_volatile = [];
    run =
      (fun ?sink ?meter ?faults ?probe variant ~failure ~seed ->
        let exclude_coefs = variant = Common.Easeio_op in
        Common.run_ir ~src:(source ~exclude_coefs) ~setup ~check ?sink ?meter ?faults ?probe variant
          ~failure ~seed);
    session =
      Some
        (fun ?ablate_regions ?ablate_semantics variant ~seed ->
          let exclude_coefs = variant = Common.Easeio_op in
          Common.session_ir ~src:(source ~exclude_coefs) ~setup ~check () ?ablate_regions
            ?ablate_semantics variant ~seed);
  }
