open Platform
open Kernel

let tasks = 11
let io_functions = 5
let packet_words = 3

(* Non-volatile application state shared by the tasks. *)
type state = {
  act_stats : int;  (** per-stage activation checksums (one word per stage) *)
  img_mean : int;  (** mean brightness, computed right after capture *)
  count : int;  (** measurement counter (CPU WAR: privatized by baselines) *)
  temp_v : int;
  humd_v : int;
  packet : int;  (** 3 words: temp, humd, class *)
  valid : int;  (** set by the validate task *)
}

let alloc_state m =
  let a name words = Machine.alloc m Memory.Fram ~name:("weather." ^ name) ~words in
  {
    act_stats = a "act_stats" Dnn.Network.layer_count;
    img_mean = a "img_mean" 1;
    count = a "count" 1;
    temp_v = a "temp_v" 1;
    humd_v = a "humd_v" 1;
    packet = a "packet" packet_words;
    valid = a "valid" 1;
  }

(* The runtime-specific plumbing each flavor provides to the task bodies. *)
type plumbing = {
  mover : Dnn.Layers.mover;
  sense : Machine.t -> state -> unit;
  capture : Machine.t -> Dnn.Network.t -> unit;
  send : Machine.t -> Periph.Radio.t -> state -> unit;
  bump_count : Machine.t -> state -> unit;
      (** the measurement counter has a CPU WAR dependence: baselines
          privatize it through the manager, EaseIO protects it with
          regional privatization *)
  end_of_dma_task : Machine.t -> unit;  (** seal point after layer/store DMAs *)
  hooks : Engine.hooks;
  read_nv : Machine.t -> int -> int;  (** charged scalar read through the runtime *)
  write_nv : Machine.t -> int -> int -> unit;
}

let direct_plumbing m mgr_strategy =
  let mgr = Runtimes.Manager.create m mgr_strategy in
  let count_var = Runtimes.Manager.declare ~war:true mgr ~name:"weather.count" ~words:1 in
  {
    bump_count =
      (fun _ _ ->
        Runtimes.Manager.write mgr count_var 0 (Runtimes.Manager.read mgr count_var 0 + 1));
    mover = Dnn.Layers.raw_mover m;
    sense =
      (fun m st ->
        let t = Periph.Sensors.temperature_dc m in
        let h = Periph.Sensors.humidity_pct m in
        ignore (Periph.Sensors.pressure_pa10 m);
        Machine.write m Memory.Fram st.temp_v t;
        Machine.write m Memory.Fram st.humd_v h);
    capture =
      (fun m net ->
        Periph.Camera.capture m ~exposure_us:8_000 ~dst:(Dnn.Network.image_loc net)
          ~pixels:(Dnn.Network.input_dim * Dnn.Network.input_dim));
    send =
      (fun m radio st ->
        ignore
          (Runtimes.Manager.with_backoff m (fun () ->
               Periph.Radio.send_from radio ~src:(Loc.fram st.packet) ~words:packet_words));
        (* listen window for the acknowledgement *)
        Machine.idle m 2_500);
    end_of_dma_task = (fun _ -> ());
    hooks = Runtimes.Manager.hooks mgr;
    read_nv = (fun m a -> Machine.read m Memory.Fram a);
    write_nv = (fun m a v -> Machine.write m Memory.Fram a v);
  }

(* the weather app's NV->volatile fetches need at most ~1 K words of
   privatization buffer (activations + weights staged per layer) *)
let easeio_plumbing m =
  let rt = Easeio.Runtime.create ~priv_buffer_words:1024 m in
  {
    bump_count =
      (fun m st ->
        Easeio.Runtime.region rt ~id:0 ~vars:[ (Loc.fram st.count, 1) ] (fun () ->
            Machine.write m Memory.Fram st.count (Machine.read m Memory.Fram st.count + 1)));
    mover = Dnn.Layers.easeio_mover rt;
    sense =
      (fun m st ->
        (* Fig. 3: the sensing pair is atomic with Single semantics; the
           temperature is Timely (10 ms), the humidity Always *)
        Easeio.Runtime.io_block rt ~name:"sense_blk" ~sem:Easeio.Semantics.Single (fun () ->
            let t =
              Easeio.Runtime.call_io rt ~name:"Temp" ~sem:(Easeio.Semantics.Timely 10_000)
                (fun m -> Periph.Sensors.temperature_dc m)
            in
            ignore
              (Easeio.Runtime.call_io rt ~name:"Pres" ~sem:Easeio.Semantics.Single (fun m ->
                   Periph.Sensors.pressure_pa10 m));
            let h =
              Easeio.Runtime.call_io rt ~name:"Humd" ~sem:Easeio.Semantics.Always (fun m ->
                  Periph.Sensors.humidity_pct m)
            in
            Machine.write m Memory.Fram st.temp_v t;
            Machine.write m Memory.Fram st.humd_v h));
    capture =
      (fun m net ->
        Easeio.Runtime.call_io_unit rt ~name:"Capture" ~sem:Easeio.Semantics.Single (fun m ->
            Periph.Camera.capture m ~exposure_us:8_000 ~dst:(Dnn.Network.image_loc net)
              ~pixels:(Dnn.Network.input_dim * Dnn.Network.input_dim));
        ignore m);
    send =
      (fun m radio st ->
        Easeio.Runtime.call_io_unit rt ~deps:[ "Temp"; "Humd" ] ~name:"Send"
          ~sem:Easeio.Semantics.Single (fun m ->
            ignore
              (Runtimes.Manager.with_backoff m (fun () ->
                   Periph.Radio.send_from radio ~src:(Loc.fram st.packet) ~words:packet_words)));
        (* the acknowledgement window must re-open after every reboot *)
        Easeio.Runtime.call_io_unit rt ~name:"AckWindow" ~sem:Easeio.Semantics.Always (fun m ->
            Machine.idle m 2_500);
        ignore m);
    end_of_dma_task = (fun _ -> Easeio.Runtime.seal_dmas rt);
    hooks = Easeio.Runtime.hooks rt;
    read_nv = (fun m a -> Machine.read m Memory.Fram a);
    write_nv = (fun m a v -> Machine.write m Memory.Fram a v);
  }

let build ?(buffering = `Double) variant m =
  let pl =
    match (variant : Common.variant) with
    | Common.Alpaca -> direct_plumbing m Runtimes.Manager.Alpaca
    | Common.Ink -> direct_plumbing m Runtimes.Manager.Ink
    | Common.Easeio | Common.Easeio_op -> easeio_plumbing m
  in
  let st = alloc_state m in
  let net = Dnn.Network.create m ~buffering in
  let radio = Periph.Radio.create m in
  let layer_task i name next =
    {
      Task.name;
      body =
        (fun m ->
          Dnn.Network.run_layer m pl.mover net i;
          pl.end_of_dma_task m;
          (* post-store pass: fold the stored activations into a running
             checksum (quantization statistics); the CPU reads the freshly
             DMA-written buffer, which is exactly the access pattern that
             re-executed DMA corrupts when layers share one buffer *)
          let loc, words = Dnn.Network.stage_output net i in
          let acc = ref 0 in
          for j = 0 to words - 1 do
            acc := !acc + Machine.read m loc.Loc.space (loc.Loc.addr + j);
            Machine.cpu m 2
          done;
          (* second pass: dynamic range, used to pick the next layer's
             fixed-point scale *)
          let peak = ref 0 in
          for j = 0 to words - 1 do
            let v = abs (Machine.read m loc.Loc.space (loc.Loc.addr + j)) in
            if v > !peak then peak := v;
            Machine.cpu m 3
          done;
          ignore !peak;
          pl.write_nv m (st.act_stats + i) (!acc land 0xFFFF);
          Task.Next next);
    }
  in
  let app_tasks =
    [
      {
        Task.name = "init";
        body =
          (fun m ->
            pl.bump_count m st;
            pl.write_nv m st.valid 0;
            Task.Next "sense");
      };
      {
        Task.name = "sense";
        body =
          (fun m ->
            pl.sense m st;
            Task.Next "capture");
      };
      {
        Task.name = "capture";
        body =
          (fun m ->
            pl.capture m net;
            (* exposure statistics: mean brightness over the stored
               frame; a failure here makes the baselines re-expose the
               whole frame, while EaseIO restores the Single capture *)
            let img = Dnn.Network.image_loc net in
            let pixels = Dnn.Network.input_dim * Dnn.Network.input_dim in
            let acc = ref 0 in
            for j = 0 to pixels - 1 do
              acc := !acc + Machine.read m img.Loc.space (img.Loc.addr + j);
              Machine.cpu m 2
            done;
            let mean = !acc / pixels in
            let contrast = ref 0 in
            for j = 0 to pixels - 1 do
              contrast := !contrast + abs (Machine.read m img.Loc.space (img.Loc.addr + j) - mean);
              Machine.cpu m 3
            done;
            pl.write_nv m st.img_mean mean;
            Task.Next "conv1");
      };
      layer_task 0 "conv1" "conv2";
      layer_task 1 "conv2" "fc";
      layer_task 2 "fc" "infer";
      layer_task 3 "infer" "pack";
      {
        Task.name = "pack";
        body =
          (fun m ->
            pl.write_nv m st.packet (pl.read_nv m st.temp_v);
            pl.write_nv m (st.packet + 1) (pl.read_nv m st.humd_v);
            pl.write_nv m (st.packet + 2) (Dnn.Network.result m net);
            Task.Next "send");
      };
      {
        Task.name = "send";
        body =
          (fun m ->
            pl.send m radio st;
            Task.Next "validate");
      };
      {
        Task.name = "validate";
        body =
          (fun m ->
            (* lightweight plausibility pass over the packet *)
            let cls = pl.read_nv m (st.packet + 2) in
            pl.write_nv m st.valid (if cls >= 0 && cls < Dnn.Network.classes then 1 else 0);
            Task.Next "finish");
      };
      { Task.name = "finish"; body = (fun _ -> Task.Stop) };
    ]
  in
  let fram = Machine.mem m Memory.Fram in
  let check _m =
    let stored_class = Dnn.Network.result m net in
    let image = Dnn.Network.stored_image m net in
    let reference = Dnn.Network.infer_reference image in
    let expected_stats = Dnn.Network.reference_stats image in
    let stats_ok = ref true in
    for i = 0 to Dnn.Network.layer_count - 1 do
      if Memory.read fram (st.act_stats + i) <> expected_stats.(i) then stats_ok := false
    done;
    let packet_ok =
      match Periph.Radio.log radio with
      | [] -> false
      | log ->
          let _, last = List.nth log (List.length log - 1) in
          Array.length last = packet_words
          && last.(0) = Memory.read fram st.temp_v
          && last.(1) = Memory.read fram st.humd_v
          && last.(2) = stored_class
      in
    stored_class = reference && !stats_ok && packet_ok && Memory.read fram st.valid = 1
  in
  let app = Task.make_app ~check ~name:"weather" ~entry:"init" app_tasks in
  (app, pl.hooks, radio)

(* Session builder: a fresh machine per session (the weather app has
   no recycled arena — allocation is deterministic, so its layout
   matches the golden machine's). The radio's receiver log is the only
   state outside the machine; [ses_save] snapshots it in O(1). *)
let session ?buffering variant ~seed =
  let m = Machine.create ~seed () in
  let app, hooks, radio = build ?buffering variant m in
  {
    Common.ses_machine = m;
    ses_app = app;
    ses_hooks = hooks;
    ses_cur_slot = None;
    ses_begin = (fun () -> ());
    ses_save =
      (fun () ->
        let r = Periph.Radio.snapshot radio in
        fun () -> Periph.Radio.restore radio r);
    ses_finish = (fun () -> ());
  }

let run_once ?buffering ?sink ?meter ?faults ?probe variant ~failure ~seed =
  let m = Machine.create ~seed ~failure ?faults () in
  Option.iter (Machine.set_sink m) sink;
  Option.iter (Machine.set_meter m) meter;
  let app, hooks, _radio = build ?buffering variant m in
  let o = Engine.run ~hooks m app in
  Option.iter (fun f -> f m) probe;
  Expkit.Run.of_outcome m o

let spec =
  {
    Common.app_name = "Weather App.";
    tasks;
    io_functions;
    (* everything downstream of the sensors and the camera: samples,
       the captured frame and all DNN state derived from it, the
       activation stats, and the packet staged from those values.
       weather.count and weather.valid stay schedule-invariant. *)
    nv_volatile =
      [
        "weather.temp_v";
        "weather.humd_v";
        "weather.packet";
        "weather.img_mean";
        "weather.act_stats";
        "dnn.";
      ];
    run =
      (fun ?sink ?meter ?faults ?probe variant ~failure ~seed ->
        run_once ?sink ?meter ?faults ?probe variant ~failure ~seed);
    session =
      Some
        (fun ?(ablate_regions = false) ?(ablate_semantics = false) variant ~seed ->
          if ablate_regions || ablate_semantics then
            invalid_arg "Weather App.: ablation hooks only apply to task-language apps";
          session variant ~seed);
  }
