(** The FIR-filter application (§5.4.1).

    Five tasks; the core task stages the signal and the filter
    coefficients from FRAM into LEA-RAM with two DMA transfers, runs
    four windowed LEA FIR commands in a loop, and DMA-stores the result
    {e over the same non-volatile signal buffer} — the write-after-read
    pattern that makes re-executed DMA corrupt memory under Alpaca/InK
    (the Fig. 12 experiment). Under EaseIO the fetches resolve to
    Private and the store to Single; the EaseIO/Op variant additionally
    marks the constant-coefficient fetch with Exclude. *)

val spec : Common.spec

val source : exclude_coefs:bool -> string
(** The .eio source (the [EaseIO/Op] variant uses
    [dma_copy_exclude] for the coefficient fetch). *)

val run_ablated :
  ?sink:Trace.Event.sink ->
  ?meter:Obs.Sheet.t ->
  ?faults:Platform.Faults.plan ->
  ?probe:(Platform.Machine.t -> unit) ->
  ablate_regions:bool ->
  ablate_semantics:bool ->
  failure:Platform.Failure.spec ->
  seed:int ->
  unit ->
  Expkit.Run.one
(** EaseIO with parts switched off, for the ablation benches and
    broken-variant oracle tests. *)

val signal_words : int
val taps : int
val samples : int
