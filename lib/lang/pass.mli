(** The staged compiler pipeline.

    The front-end is organized as named passes threading one shared
    diagnostics bag: analyses ([resolve], [supported], [lint], [war],
    [taint], [regions]) report but never rewrite; the two transform
    stages ([guards], [privatize]) rewrite and are skipped as soon as
    the bag holds an error — so a broken program still yields {e every}
    diagnostic, not just the first, and never a half-compiled output.

    Drivers observe the program after each pass ([?observe]) to
    implement [--dump-after PASS]; every intermediate program is
    concrete syntax the parser accepts back. *)

type options = {
  recharge_us : int option;  (** W0402 threshold; [None] = platform default *)
  priv_buffer_words : int;  (** E0204 threshold (default 2048 — the paper's 4 KB) *)
  ablate_regions : bool;
  ablate_semantics : bool;
}

val default_options : options

type artifacts = {
  mutable war : (string * string list) list;  (** per task: WAR variables *)
  mutable regions : (string * int) list;  (** per task: region count *)
  mutable dma_deps : (string * string list list) list;
      (** per task: dependence markers of each top-level DMA in order *)
  mutable locks : (string * string list) list;  (** per task: guard lock flags *)
  mutable clear_flags : (string * string list) list;
      (** per task: commit-clear schedule (after [privatize]) *)
  mutable demand_words : int;  (** privatization-buffer demand *)
}

type ctx = {
  bag : Diagnostics.bag;
  opts : options;
  art : artifacts;
  mutable orig : Ast.program option;
}

val make_ctx : ?opts:options -> unit -> ctx

type t = {
  name : string;
  doc : string;
  transform : bool;
  run : ctx -> Ast.program -> Ast.program;
}

val resolve : t
val supported : t
val lint : t
val war : t
val taint : t
val regions : t
val guards : t
val privatize : t

val analysis_passes : t list
(** What [easeio check] runs: all analyses and lints, no rewriting. *)

val compile_passes : t list
(** What [easeio compile] runs: analyses, then [guards] and
    [privatize]. *)

val find : t list -> string -> t option
val names : t list -> string list

val run_pipeline :
  ?observe:(string -> Ast.program -> unit) ->
  ?opts:options ->
  t list ->
  Ast.program ->
  Ast.program * ctx
(** Fold the passes over a program. [observe name prog] fires after
    every pass with the current program. The returned context carries
    the diagnostics bag and analysis artifacts; when the bag has
    errors the returned program is the last analysis input, never a
    partial compile. *)
