open Ast
module SS = Analysis.SS

let reserved_prefixes =
  [ "__lock_"; "__time_"; "__priv_"; "__region_"; "__rp_"; "__exec_"; "__viol_"; "__t_" ]

let has_prefix pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

let default_recharge_us () =
  Platform.Capacitor.worst_case_recharge_us (Platform.Capacitor.mf1_powercast ())
    ~power_nj_per_us:1.0

(* Names a statement sequence {e reads} (write positions — assignment
   targets, store arrays, DMA/loop-variable destinations — excluded).
   Peripheral array arguments and DMA sources count as consumption. *)
let reads_of stmts =
  let acc = ref SS.empty in
  let expr e = List.iter (fun v -> acc := SS.add v !acc) (expr_reads e []) in
  iter_stmts
    (fun st ->
      match st.s with
      | Assign (_, e) -> expr e
      | Store (_, i, e) ->
          expr i;
          expr e
      | If (c, _, _) | While (c, _) -> expr c
      | For (_, lo, hi, _) ->
          expr lo;
          expr hi
      | Call_io { args; _ } ->
          List.iter
            (function Aexpr e -> expr e | Aarr a -> acc := SS.add a !acc)
            args
      | Dma { dma_src; dma_dst; dma_words; _ } ->
          acc := SS.add dma_src.ref_arr !acc;
          expr dma_src.ref_off;
          expr dma_dst.ref_off;
          expr dma_words
      | Memcpy { cp_dst; cp_src; cp_words } ->
          acc := SS.add cp_src.ref_arr !acc;
          expr cp_dst.ref_off;
          expr cp_src.ref_off;
          expr cp_words
      | Io_block _ | Seal_dmas | Next _ | Stop -> ())
    stmts;
  !acc

(* W0401 — an [Always] operation whose result nobody reads re-executes
   on every reboot for nothing. Locals are consumed if read anywhere in
   their own task, globals if read anywhere in the program. Targetless
   calls (pure side effects, e.g. Send) are exempt. *)
let redundant_always p =
  let global_reads =
    lazy (List.fold_left (fun acc t -> SS.union acc (reads_of t.t_body)) SS.empty p.p_tasks)
  in
  let ds = ref [] in
  List.iter
    (fun t ->
      let task_reads = lazy (reads_of t.t_body) in
      iter_stmts
        (fun st ->
          match st.s with
          | Call_io { sem = Easeio.Semantics.Always; target = Some tgt; io; guarded = false; _ }
            ->
              let consumed =
                if is_global p tgt then SS.mem tgt (Lazy.force global_reads)
                else SS.mem tgt (Lazy.force task_reads)
              in
              if not consumed then
                ds :=
                  Diagnostics.warning ~code:"W0401" ~span:st.sp
                    ~hint:"drop the target, or use Single if one sample is enough"
                    "task %s: Always-annotated call_io(%s) stores into %s, which is never read \
                     — the re-execution after every reboot is wasted work"
                    t.t_name io tgt
                  :: !ds
          | _ -> ())
        t.t_body)
    p.p_tasks;
  List.rev !ds

(* W0402 — a [Timely] deadline shorter than the worst-case capacitor
   recharge can never hold across a power failure: by the time the
   device reboots, the data is already stale, so the operation always
   re-executes and the annotation buys nothing over [Always]. *)
let stale_deadline ~recharge_us p =
  let ds = ref [] in
  let warn ~span ~what d =
    if d < recharge_us then
      ds :=
        Diagnostics.warning ~code:"W0402" ~span
          ~hint:"raise the deadline above the recharge time, or use Always"
          "%s deadline %dus is shorter than the worst-case capacitor recharge (%dus); the data \
           is always stale after a power failure"
          what d recharge_us
        :: !ds
  in
  List.iter
    (fun t ->
      iter_stmts
        (fun st ->
          match st.s with
          | Call_io { sem = Easeio.Semantics.Timely d; io; guarded = false; _ } ->
              warn ~span:st.sp ~what:(Printf.sprintf "Timely call_io(%s)" io) d
          | Io_block { blk_sem = Easeio.Semantics.Timely d; _ } ->
              warn ~span:st.sp ~what:"Timely io_block" d
          | _ -> ())
        t.t_body)
    p.p_tasks;
  List.rev !ds

(* W0403 — the Fig. 6 hazard spelled out: a protected DMA's NV
   destination that CPU code reads before the transfer and writes after
   it has a WAR dependence {e across} the DMA. Correctness then hinges
   on regional privatization re-establishing the transfer's effect when
   a completed DMA is skipped; flag it so the pattern is visible (and so
   the region ablation's unsafety has a source-level witness). *)
let unprivatized_war p =
  let ds = ref [] in
  List.iter
    (fun t ->
      let regions = Analysis.split_regions t in
      let accesses =
        List.map (fun (stmts, dma) -> (Analysis.nv_cpu_accesses p stmts, dma)) regions
      in
      List.iteri
        (fun k (_, dma) ->
          match dma with
          | Some d when not d.exclude -> (
              let dst = d.dma_dst.ref_arr in
              match find_global p dst with
              | Some g when g.v_space = Nv ->
                  let read_before =
                    List.exists
                      (fun ((reads, _), _) -> SS.mem dst reads)
                      (List.filteri (fun i _ -> i <= k) accesses)
                  in
                  let written_after =
                    List.exists
                      (fun ((_, writes), _) -> SS.mem dst writes)
                      (List.filteri (fun i _ -> i > k) accesses)
                  in
                  if read_before && written_after then
                    let span =
                      match List.nth_opt regions k with
                      | Some (stmts, _) -> (
                          match List.rev stmts with s :: _ -> s.sp | [] -> Span.ghost)
                      | None -> Span.ghost
                    in
                    ds :=
                      Diagnostics.warning ~code:"W0403" ~span
                        ~hint:
                          "regional privatization (§4.4) must stay enabled for this program; \
                           under --ablate-regions a skipped transfer leaves stale data"
                        "task %s: NV destination %s of a protected dma_copy is read before and \
                         written after the transfer (WAR across the DMA)"
                        t.t_name dst
                      :: !ds
              | Some _ | None -> ())
          | Some _ | None -> ())
        accesses)
    p.p_tasks;
  List.rev !ds

(* Structural (statement-level) evidence that a program is compiler
   output: guarded calls, DMA seals and block copies only exist in
   lowered programs. Generated-prefix {e globals} alone are not
   evidence — a user declaring [__lock_x] is precisely the E0301 bug —
   so this is deliberately narrower than [Transform.is_lowered]. *)
let has_lowered_stmts p =
  List.exists
    (fun t ->
      let found = ref false in
      iter_stmts
        (fun st ->
          match st.s with
          | Call_io { guarded = true; _ } | Seal_dmas | Memcpy _ -> found := true
          | _ -> ())
        t.t_body;
      !found)
    p.p_tasks

(* E0301 — user declarations in the compiler's reserved namespace make
   the front-end misidentify the program as already lowered (and can
   collide with a generated lock flag outright). *)
let reserved_collision p =
  List.filter_map
    (fun d ->
      match List.find_opt (fun pre -> has_prefix pre d.v_name) reserved_prefixes with
      | Some pre ->
          Some
            (Diagnostics.error ~code:"E0301" ~span:d.v_span
               ~hint:"the __ namespace is reserved for compiler-generated state"
               "global %s collides with the compiler's reserved %s prefix" d.v_name pre)
      | None -> None)
    p.p_globals

let run ?recharge_us p =
  let recharge_us =
    match recharge_us with Some r -> r | None -> default_recharge_us ()
  in
  (if has_lowered_stmts p then [] else reserved_collision p)
  @ redundant_always p @ stale_deadline ~recharge_us p @ unprivatized_war p
