(** Interpreter: executes task-language programs on the simulated
    machine under a chosen runtime policy.

    - [Plain] — no protection at all: NV accesses go straight to FRAM
      (demonstrates the bugs).
    - [Alpaca] / [Ink] — the baseline task runtimes: every I/O operation
      re-executes with the task, CPU-visible WAR variables are
      privatized by the {!Runtimes.Manager}, DMA bypasses it.
    - [Easeio] — the program is first rewritten by the compiler
      front-end ({!Transform}); the interpreter then executes the
      explicit guard code, uses the {!Easeio.Runtime} for
      runtime-resolved [_DMA_copy] and pending-flag sealing, and clears
      the task's lock flags at commit.

    Accounting follows the paper's methodology: work performed by
    transform-inserted code (accesses to ["__"]-prefixed variables,
    privatization [memcpy]s, persistent-clock reads) and by manager
    privatization/commit is charged to the overhead bucket; everything
    else is application work. *)

open Platform

type policy = Plain | Alpaca | Ink | Easeio

val policy_name : policy -> string

type io_arg_v =
  | Val of int
  | Arr of Loc.t * int  (** location and declared size *)

type io_impl = Machine.t -> io_arg_v list -> int
(** Peripheral implementations receive evaluated arguments and return a
    result (0 for void operations). They charge their own costs and
    bump their ["io:…"] event counters. *)

val default_io : Periph.Radio.t -> (string * io_impl) list
(** The standard peripheral set (Temp, Humd, Pres, Light, Send, Capture,
    Delay, Lea_mac, Lea_fir) closed over the given radio. Exposed so the
    bytecode VM ({!Vm}) registers the exact same implementations. *)

type t
(** A prepared execution: machine + program + runtime plumbing. *)

val build :
  ?policy:policy ->
  ?extra_io:(string * io_impl) list ->
  ?check:(t -> bool) ->
  ?priv_buffer_words:int ->
  ?ablate_regions:bool ->
  ?ablate_semantics:bool ->
  Machine.t ->
  Ast.program ->
  t
(** Allocate globals, set up the runtime for [policy] (default
    [Easeio]), register default peripherals (Temp, Humd, Pres, Light,
    Send, Capture, Delay, Lea_mac, Lea_fir) plus [extra_io]. The ablate
    flags are forwarded to {!Transform.apply} (Easeio policy only). *)

val run : ?max_failures:int -> t -> Kernel.Engine.outcome
(** Execute to completion through the kernel engine. *)

val machine : t -> Machine.t
val radio : t -> Periph.Radio.t
val program : t -> Ast.program
(** The program actually executed (transformed under [Easeio]). *)

val transformed : t -> Transform.result option

val read_global : t -> string -> int -> int
(** Uncharged post-run read of a global (committed view under
    Alpaca/InK). Raises [Not_found] for unknown names. *)

val read_global_block : t -> string -> words:int -> int array
(** [read_global_block t name ~words] snapshots the first [words]
    elements of a global in one call — equivalent to [words] calls of
    {!read_global} but resolving [name] only once, so result checks
    over large arrays stay cheap. *)

val global_loc : t -> string -> Loc.t
(** Raw backing location of a global (for golden-state comparison). *)
