(** The EaseIO compiler front-end (§4 of the paper).

    A source-to-source rewrite of the task language that compiles the
    programmer's I/O annotations into explicit guard code and runtime
    state, exactly as the paper's Clang/LibTooling tool does (Fig. 5).
    It is staged as two named passes (see {!Pass}):

    {b guards} — per-site locks, timestamps, private copies:

    - every [Single]/[Timely] [_call_IO] site gets a non-volatile lock
      flag [__lock_<fn>_<task>_<n>], a timestamp [__time_…] (Timely
      only) and a private result copy [__priv_…]; the call is wrapped in
      an [if] whose condition checks the flag, staleness, enclosing
      block violations, and data dependences; the original target
      variable is assigned from the private copy afterwards, so skipped
      re-executions restore the previous result;
    - every [_IO_block] gets a block flag and timestamp; a violated
      block forces every inner operation to re-execute, a completed
      valid block skips its whole body and restores inner results
      (scope precedence, §3.3.1);
    - data dependences between I/O operations (§3.3.2) are compiled to
      volatile per-cycle execution markers [__exec_…] that force
      dependent operations (and [_DMA_copy]s, §4.3.1) to re-execute when
      a producer ran in the current energy cycle; the guards stage also
      sums the worst-case privatization-buffer demand of NV→volatile
      transfers so the driver can report overflow ([E0204]).

    {b privatize} — regional privatization (§4.4, Fig. 6):

    - each task is split into regions at its [_DMA_copy] statements and
      region-head code is inserted: snapshot the region's CPU-accessed
      NV variables on first entry, restore them on re-execution; pending
      DMA completion flags are sealed right after the region guard,
      making DMA completion atomic with the privatization. Region
      variable sets are computed on the {e original} (pre-guards)
      program so inserted restore code does not perturb them.

    The transformed program contains only plain statements plus guarded
    [io_exec] calls and the [Dma]/[Seal_dmas] primitives; all inserted
    variables are prefixed with ["__"] so the footprint accounting can
    attribute them to the runtime. Transform output is concrete syntax
    the parser accepts back, and re-applying {!apply} to an already
    lowered program is the identity ({!is_lowered}). *)

type result = {
  prog : Ast.program;  (** the transformed program *)
  clear_flags : (string * string list) list;
      (** per task: NV lock/region flags the runtime clears at commit,
          in the order the runtime must clear them (observable under
          mid-commit power failure) *)
  priv_demand_words : int;
      (** worst-case privatization-buffer demand of NV→volatile DMAs *)
}

type guards_result = {
  g_prog : Ast.program;  (** program with per-site guard code inserted *)
  g_locks : (string * string list) list;
      (** per task: lock flags in registration (program) order *)
  g_demand : int;  (** total privatization-buffer demand, words *)
  g_demand_sites : (Span.t * int) list;
      (** each contributing DMA site and its demand, for diagnostics *)
}

val force_always : Ast.program -> Ast.program
(** Ablation rewrite: every annotation becomes [Always], every DMA
    [exclude] — EaseIO's machinery with none of its savings. *)

val is_lowered : Ast.program -> bool
(** Whether the program already contains compiler output (generated
    [__lock_]/[__time_]/[__priv_]/[__region_]/[__rp_] globals, guarded
    [io_exec] calls, or DMA seals). *)

val guards : Ast.program -> guards_result
(** Stage 1. Precondition: the program passes {!Analysis.supported}
    (the staged pipeline gates on it; {!apply} checks it). *)

val privatize :
  ?ablate_regions:bool ->
  orig:Ast.program ->
  locks:(string * string list) list ->
  Ast.program ->
  Ast.program * (string * string list) list
(** Stage 2. [orig] is the pre-guards program (drives region variable
    sets and snapshot tracking); [locks] is {!guards_result.g_locks}.
    Returns the privatized program and the per-task commit-clear flag
    lists (region flag, then that region's site locks, per region in
    order). *)

val apply :
  ?ablate_regions:bool ->
  ?ablate_semantics:bool ->
  ?priv_buffer_words:int ->
  Ast.program ->
  result
(** [guards] then [privatize], plus support and overflow checking — the
    single-call entry the interpreter and benches use. Raises
    {!Ast.Error} on unsupported constructs or when the static
    privatization demand exceeds [priv_buffer_words] (default 2048
    words — the paper's 4 KB). Identity on already-lowered programs.

    The ablation knobs support the DESIGN.md §6 experiments:
    [ablate_regions] removes regional privatization (Single DMAs seal
    immediately after the copy, so skipped transfers leave
    WAR-inconsistent state behind); [ablate_semantics] rewrites every
    annotation to Always and marks every DMA Exclude, keeping the
    transform's costs but none of its savings. *)
