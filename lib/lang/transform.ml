open Ast
module SS = Analysis.SS

type result = {
  prog : program;
  clear_flags : (string * string list) list;
  priv_demand_words : int;
}

type guards_result = {
  g_prog : program;
  g_locks : (string * string list) list;
  g_demand : int;
  g_demand_sites : (Span.t * int) list;
}

type env = {
  prog : program;
  task : string;
  mutable counter : int;  (** per-task call-site counter *)
  mutable new_globals : var_decl list;
  mutable flags : string list;  (** NV flags cleared at task commit *)
  taint : (string, SS.t) Hashtbl.t;
      (** variable/array -> volatile execution markers of the I/O sites
          whose data it carries *)
  mutable priv_demand : int;
  mutable demand_sites : (Span.t * int) list;
}

let make_env prog task =
  {
    prog;
    task;
    counter = 0;
    new_globals = [];
    flags = [];
    taint = Hashtbl.create 16;
    priv_demand = 0;
    demand_sites = [];
  }

let nv_scalar env name =
  env.new_globals <-
    { v_name = name; v_space = Nv; v_words = 1; v_init = None; v_span = Span.ghost }
    :: env.new_globals;
  name

let nv_array env name words =
  env.new_globals <-
    { v_name = name; v_space = Nv; v_words = words; v_init = None; v_span = Span.ghost }
    :: env.new_globals;
  name

let taint_of env e =
  List.fold_left
    (fun acc v ->
      match Hashtbl.find_opt env.taint v with Some s -> SS.union s acc | None -> acc)
    SS.empty (expr_reads e [])

let add_taint env var set =
  if SS.is_empty set then Hashtbl.remove env.taint var else Hashtbl.replace env.taint var set

let or_all = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc e -> Binop (Or, acc, e)) e rest)

let dep_exprs deps = List.map (fun d -> Binop (Eq, Var d, Int 1)) (SS.elements deps)

(* Guard condition for one I/O site: flag unset, OR stale, OR a block
   violation in scope, OR a producer re-executed this cycle. [lock_e]
   and [time_e] are expressions so that loop-indexed sites (lock-flag
   arrays, §6) use the same logic. *)
let guard_expr ~lock_e ~time_e ~(sem : Easeio.Semantics.t) ~force ~deps =
  let base = Binop (Eq, lock_e, Int 0) in
  let stale =
    match sem with
    | Timely d -> [ Binop (Gt, Binop (Sub, Get_time, time_e), Int d) ]
    | Single | Always -> []
  in
  let force = match force with Some f -> [ f ] | None -> [] in
  List.fold_left (fun acc e -> Binop (Or, acc, e)) base (stale @ force @ dep_exprs deps)

(* {1 Stage 1 — guards: per-site lock/time/priv state and guard code} *)

let rec transform_stmts ?loop env ~force stmts =
  List.concat_map (transform_stmt ?loop env ~force) stmts

and transform_stmt ?loop env ~force st =
  match st.s with
  | Assign (v, e) ->
      add_taint env v (taint_of env e);
      [ st ]
  | Store (a, _, e) ->
      let prev = Option.value ~default:SS.empty (Hashtbl.find_opt env.taint a) in
      add_taint env a (SS.union prev (taint_of env e));
      [ st ]
  | If (c, a, b) ->
      [
        {
          st with
          s = If (c, transform_stmts ?loop env ~force a, transform_stmts ?loop env ~force b);
        };
      ]
  | While (c, b) -> [ { st with s = While (c, transform_stmts env ~force b) } ]
  | For (v, lo, hi, b) -> (
      (* statically bounded loops carry a loop context so annotated I/O
         inside them gets per-iteration lock-flag arrays (§6) *)
      match (loop, lo, hi) with
      | None, Int l, Int h when h >= l ->
          [ { st with s = For (v, lo, hi, transform_stmts ~loop:(v, l, h) env ~force b) } ]
      | _ -> [ { st with s = For (v, lo, hi, transform_stmts env ~force b) } ])
  | Call_io c when c.guarded -> [ st ]  (* already lowered *)
  | Call_io c -> transform_call ?loop env ~force ~sp:st.sp c
  | Io_block { blk_sem; blk_body } -> transform_block env ~force ~sp:st.sp blk_sem blk_body
  | Dma d -> transform_dma env ~sp:st.sp d
  | Memcpy _ | Seal_dmas -> [ st ]
  | Next _ | Stop -> [ st ]

and transform_call ?loop env ~force ~sp c =
  let n = env.counter in
  env.counter <- n + 1;
  let site = Printf.sprintf "%s_%s_%d" c.io env.task n in
  let execl = "__exec_" ^ site in
  let deps =
    List.fold_left
      (fun acc -> function Aexpr e -> SS.union acc (taint_of env e) | Aarr a -> (
           match Hashtbl.find_opt env.taint a with Some s -> SS.union acc s | None -> acc))
      SS.empty c.args
  in
  let result_local = "__t_" ^ site in
  (* per-iteration state for loop-indexed sites: slots become arrays of
     the loop's trip count, indexed by the (normalized) loop variable *)
  let trip = match loop with Some (_, l, h) -> h - l + 1 | None -> 1 in
  let idx = match loop with Some (v, l, _) -> Some (Binop (Sub, Var v, Int l)) | None -> None in
  let slot name =
    match idx with
    | None -> ((fun n -> Var n), (fun n e -> mk (Assign (n, e))), nv_scalar env name)
    | Some i -> ((fun n -> Index (n, i)), (fun n e -> mk (Store (n, i, e))), nv_array env name trip)
  in
  let privv =
    match c.target with Some _ -> Some (slot ("__priv_" ^ site)) | None -> None
  in
  let exec_seq =
    [
      mk ~sp
        (Call_io { c with target = Option.map (fun _ -> result_local) c.target; guarded = true });
    ]
    @ (match privv with Some (_, pw, p) -> [ pw p (Var result_local) ] | None -> [])
    @ [ mk (Assign (execl, Int 1)) ]
  in
  let restore =
    match (c.target, privv) with
    | Some tgt, Some (pr, _, p) -> [ mk (Assign (tgt, pr p)) ]
    | _ -> []
  in
  (match c.target with
  | Some tgt -> add_taint env tgt (SS.singleton execl)
  | None -> ());
  match c.sem with
  | Always ->
      (* no lock: the operation re-executes after every reboot; the
         private copy still exists so enclosing completed blocks can
         restore the result *)
      exec_seq @ restore
  | Single | Timely _ ->
      let lr, lw, lock = slot ("__lock_" ^ site) in
      env.flags <- lock :: env.flags;
      let tslot =
        match c.sem with Timely _ -> Some (slot ("__time_" ^ site)) | _ -> None
      in
      let time_e = match tslot with Some (tr, _, tv) -> tr tv | None -> Int 0 in
      let exec_seq =
        exec_seq
        @ (match tslot with Some (_, tw, tv) -> [ tw tv Get_time ] | None -> [])
        @ [ lw lock (Int 1) ]
      in
      [ mk ~sp (If (guard_expr ~lock_e:(lr lock) ~time_e ~sem:c.sem ~force ~deps, exec_seq, [])) ]
      @ restore

and transform_block env ~force ~sp sem body =
  let n = env.counter in
  env.counter <- n + 1;
  let site = Printf.sprintf "block_%s_%d" env.task n in
  let lock = nv_scalar env ("__lock_" ^ site) in
  env.flags <- lock :: env.flags;
  let time =
    match sem with Easeio.Semantics.Timely _ -> nv_scalar env ("__time_" ^ site) | _ -> "__unused"
  in
  let violl = "__viol_" ^ site in
  let viol_expr =
    match (sem : Easeio.Semantics.t) with
    | Timely d ->
        Binop (And, Binop (Eq, Var lock, Int 1), Binop (Gt, Binop (Sub, Get_time, Var time), Int d))
    | Always -> Binop (Eq, Var lock, Int 1)
    | Single -> Int 0
  in
  let inner_force =
    or_all ((match force with Some f -> [ f ] | None -> []) @ [ Binop (Eq, Var violl, Int 1) ])
  in
  let body' = transform_stmts env ~force:inner_force body in
  let enter =
    let base = Binop (Or, Binop (Eq, Var lock, Int 0), Binop (Eq, Var violl, Int 1)) in
    match force with Some f -> Binop (Or, base, f) | None -> base
  in
  let complete =
    (match sem with Easeio.Semantics.Timely _ -> [ mk (Assign (time, Get_time)) ] | _ -> [])
    @ [ mk (Assign (lock, Int 1)) ]
  in
  (* restores after the block: for each inner result target, its __priv
     copy — recovered by scanning the transformed body for the pattern
     Assign(tgt, Var "__priv_…"), so a skipped block still delivers the
     stored values (Fig. 5: pres = pres_priv after the block's if) *)
  let post_restores =
    let rec find acc st =
      match st.s with
      | Assign (tgt, Var p) when String.length p > 7 && String.sub p 0 7 = "__priv_" ->
          (tgt, p) :: acc
      | If (_, a, b) -> List.fold_left find (List.fold_left find acc a) b
      | _ -> acc
    in
    let pairs = List.fold_left find [] body' in
    List.rev_map (fun (tgt, p) -> mk (Assign (tgt, Var p))) pairs
  in
  [ mk (Assign (violl, viol_expr)); mk ~sp (If (enter, body' @ complete, [])) ] @ post_restores

and transform_dma env ~sp d =
  let n = env.counter in
  env.counter <- n + 1;
  (* dependences: markers carried by the source array or offset exprs *)
  let src_taint =
    SS.union
      (Option.value ~default:SS.empty (Hashtbl.find_opt env.taint d.dma_src.ref_arr))
      (taint_of env d.dma_src.ref_off)
  in
  (* the destination now carries whatever the source carried *)
  let prev = Option.value ~default:SS.empty (Hashtbl.find_opt env.taint d.dma_dst.ref_arr) in
  add_taint env d.dma_dst.ref_arr (SS.union prev src_taint);
  (* static privatization-buffer demand (§6): NV -> volatile transfers
     of a statically-known size *)
  (if not d.exclude then
     let src_nv =
       match find_global env.prog d.dma_src.ref_arr with
       | Some g -> g.v_space = Nv
       | None -> false
     in
     let dst_nv =
       match find_global env.prog d.dma_dst.ref_arr with
       | Some g -> g.v_space = Nv
       | None -> false
     in
     if src_nv && not dst_nv then
       match d.dma_words with
       | Int w ->
           env.priv_demand <- env.priv_demand + w;
           env.demand_sites <- (sp, w) :: env.demand_sites
       | _ -> ());
  [ mk ~sp (Dma { d with dma_deps = SS.elements src_taint }) ]

(* Generated-name detection: a program is already lowered when it
   declares compiler-inserted state or contains guarded calls / seals —
   re-applying the transform is then the identity, making compilation
   idempotent ([compile --out] artifacts re-compile to a fixed point). *)
let generated_prefixes = [ "__lock_"; "__time_"; "__priv_"; "__region_"; "__rp_" ]

let has_prefix pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

let is_lowered p =
  List.exists (fun d -> List.exists (fun pre -> has_prefix pre d.v_name) generated_prefixes)
    p.p_globals
  || List.exists
       (fun t ->
         let found = ref false in
         iter_stmts
           (fun st ->
             match st.s with
             | Call_io { guarded = true; _ } | Seal_dmas -> found := true
             | _ -> ())
           t.t_body;
         !found)
       p.p_tasks

(* The guards stage over a whole program: one env per task, whole-body
   traversal — top-level DMAs are reached in the same order as the
   fused per-region rewrite used to, so site counters, taint threading
   and flag registration are unchanged. *)
let guards p =
  let new_globals = ref [] and locks = ref [] in
  let demand = ref 0 and sites = ref [] in
  let tasks =
    List.map
      (fun t ->
        let env = make_env p t.t_name in
        let body = transform_stmts env ~force:None t.t_body in
        new_globals := !new_globals @ List.rev env.new_globals;
        locks := (t.t_name, List.rev env.flags) :: !locks;
        demand := !demand + env.priv_demand;
        sites := !sites @ List.rev env.demand_sites;
        { t with t_body = body })
      p.p_tasks
  in
  {
    g_prog = { p with p_globals = p.p_globals @ !new_globals; p_tasks = tasks };
    g_locks = List.rev !locks;
    g_demand = !demand;
    g_demand_sites = !sites;
  }

(* {1 Stage 2 — privatize: regional privatization and commit flags} *)

(* Regional privatization (§4.4): privatize the region's CPU-accessed NV
   variables at its head; seal the completion flags of the DMAs that
   precede it right after the guard. *)
let region_guard env ~k ~vars ~seal =
  let seal_stmts = if seal then [ mk Seal_dmas ] else [] in
  if vars = [] then ([], seal_stmts)
    (* no variables to privatize: allocating the region flag anyway
       would leave an orphan __region_ global that nothing reads — and
       the E0301 reserved-namespace lint (rightly) rejects such a
       program on re-compilation, breaking the compile fixed point *)
  else
    let rflag = nv_scalar env (Printf.sprintf "__region_%s_%d" env.task k) in
    let save, recover =
      List.fold_left
        (fun (save, recover) v ->
          let decl = Option.get (find_global env.prog v) in
          let priv = nv_array env (Printf.sprintf "__rp_%s_%d_%s" env.task k v) decl.v_words in
          let cp dst src =
            mk
              (Memcpy
                 {
                   cp_dst = { ref_arr = dst; ref_off = Int 0 };
                   cp_src = { ref_arr = src; ref_off = Int 0 };
                   cp_words = Int decl.v_words;
                 })
          in
          (cp priv v :: save, cp v priv :: recover))
        ([], []) vars
    in
    let guard =
      [
        mk
          (If
             ( Binop (Eq, Var rflag, Int 0),
               List.rev (mk (Assign (rflag, Int 1)) :: save),
               List.rev recover ));
      ]
    in
    ([ rflag ], guard @ seal_stmts)

(* Region split that keeps the Dma statements themselves (the guards
   stage already attached dependence markers to them). *)
let split_regions_keep stmts =
  let rec go current acc = function
    | [] -> List.rev ((List.rev current, None) :: acc)
    | ({ s = Dma _; _ } as st) :: rest -> go [] ((List.rev current, Some st) :: acc) rest
    | st :: rest -> go (st :: current) acc rest
  in
  go [] [] stmts

(* First appearance order of [want] names in a statement sequence —
   used to reconstruct, per region, the order in which the guards stage
   registered its commit-cleared lock flags. The clear order is
   behaviorally observable (a power failure can interrupt the commit
   hook mid-clear), so it must match the historical fused rewrite:
   region flag first, then the region's site locks in program order. *)
let scan_names ~want stmts =
  let found = ref [] in
  let seen = Hashtbl.create 8 in
  let mark v =
    if List.mem v want && not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      found := v :: !found
    end
  in
  let rec expr = function
    | Int _ | Get_time -> ()
    | Var v -> mark v
    | Index (a, e) ->
        mark a;
        expr e
    | Unop (_, e) -> expr e
    | Binop (_, a, b) ->
        expr a;
        expr b
  in
  let mem_ref r =
    mark r.ref_arr;
    expr r.ref_off
  in
  let rec stmt st =
    match st.s with
    | Assign (v, e) ->
        mark v;
        expr e
    | Store (a, i, e) ->
        mark a;
        expr i;
        expr e
    | If (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | While (c, b) ->
        expr c;
        List.iter stmt b
    | For (v, lo, hi, b) ->
        mark v;
        expr lo;
        expr hi;
        List.iter stmt b
    | Call_io { target; args; _ } ->
        Option.iter mark target;
        List.iter (function Aexpr e -> expr e | Aarr a -> mark a) args
    | Io_block { blk_body; _ } -> List.iter stmt blk_body
    | Dma d ->
        mem_ref d.dma_src;
        mem_ref d.dma_dst;
        expr d.dma_words;
        List.iter mark d.dma_deps
    | Memcpy { cp_dst; cp_src; cp_words } ->
        mem_ref cp_dst;
        mem_ref cp_src;
        expr cp_words
    | Seal_dmas | Next _ | Stop -> ()
  in
  List.iter stmt stmts;
  List.rev !found

(* Privatize one task. [ot] is the task {e before} the guards stage:
   region variable sets must be computed on the original statements
   (guarded restore assignments would otherwise count I/O targets as
   CPU writes and inflate the snapshot set), and the original DMA
   records drive the snapshotted-destination logic. *)
let privatize_task ~ablate_regions env ~task_locks ot gt =
  let orig_regions = Analysis.split_regions ot in
  let guarded_regions = split_regions_keep gt.t_body in
  if List.length orig_regions <> List.length guarded_regions then
    error "task %s: guards stage changed the region structure" ot.t_name;
  (* Tracks arrays already covered by an earlier region's snapshot: when
     such a region's recovery rolls one of them back while a completed
     (skipped) Single DMA had written it, the region *after* the DMA
     must also snapshot the destination so that its recovery
     re-establishes the transfer's effect (Fig. 6 caption: the DMA is
     complete only when the following privatization ends). Destinations
     never touched by earlier regions need no snapshot — nothing can
     roll them back. *)
  let snapshotted = ref SS.empty in
  let prev_dma = ref None in
  let remaining = ref task_locks in
  let clear = ref [] in
  let body =
    List.concat
      (List.mapi
         (fun k ((o_stmts, o_dma), (g_stmts, g_dma)) ->
           let reads, writes = Analysis.nv_cpu_accesses env.prog o_stmts in
           let dma_dst =
             match !prev_dma with
             | Some prev when (not prev.exclude) && SS.mem prev.dma_dst.ref_arr !snapshotted
               -> (
                 match find_global env.prog prev.dma_dst.ref_arr with
                 | Some g when g.v_space = Nv -> SS.singleton prev.dma_dst.ref_arr
                 | Some _ | None -> SS.empty)
             | Some _ | None -> SS.empty
           in
           let accessed = SS.union dma_dst (SS.union reads writes) in
           let vars =
             List.filter_map
               (fun d -> if SS.mem d.v_name accessed then Some d.v_name else None)
               env.prog.p_globals
           in
           snapshotted := SS.union !snapshotted accessed;
           prev_dma := o_dma;
           (* a single-region task (no DMA) still gets privatization so
              its CPU writes are idempotent across re-executions *)
           let rflags, head =
             if ablate_regions then ([], []) else region_guard env ~k ~vars ~seal:(k > 0)
           in
           let tail =
             match g_dma with
             | Some d ->
                 (* ablated: seal immediately after the copy — skipped
                    transfers are then unprotected by any snapshot *)
                 [ d ] @ if ablate_regions then [ mk Seal_dmas ] else []
             | None -> []
           in
           let region_locks = scan_names ~want:!remaining (g_stmts @ tail) in
           remaining := List.filter (fun l -> not (List.mem l region_locks)) !remaining;
           clear := !clear @ rflags @ region_locks;
           head @ g_stmts @ tail)
         (List.combine orig_regions guarded_regions))
  in
  (* every guard lock lives in exactly one region; anything unmatched
     (there should be none) is still cleared, at the end *)
  let clear = !clear @ !remaining in
  ({ gt with t_body = body }, clear)

let privatize ?(ablate_regions = false) ~orig ~locks p =
  let new_globals = ref [] and clear = ref [] in
  let tasks =
    List.map2
      (fun ot gt ->
        let env = make_env orig ot.t_name in
        let task_locks = Option.value ~default:[] (List.assoc_opt ot.t_name locks) in
        let t', task_clear = privatize_task ~ablate_regions env ~task_locks ot gt in
        new_globals := !new_globals @ List.rev env.new_globals;
        clear := (ot.t_name, task_clear) :: !clear;
        t')
      orig.p_tasks p.p_tasks
  in
  ({ p with p_globals = p.p_globals @ !new_globals; p_tasks = tasks }, List.rev !clear)

(* Ablation knobs (DESIGN.md §6): [ablate_regions] drops regional
   privatization (Single DMAs are sealed immediately after the copy) —
   skipped DMAs then leave WAR-inconsistent memory behind, demonstrating
   why §4.4 is necessary. [ablate_semantics] rewrites every annotation
   to Always and excludes every DMA — EaseIO's machinery with none of
   its savings, isolating the cost of the transform itself. *)
let force_always p =
  let rec stmt st =
    let s =
      match st.s with
      | Call_io c -> Call_io { c with sem = Easeio.Semantics.Always }
      | Io_block b ->
          Io_block { blk_sem = Easeio.Semantics.Always; blk_body = List.map stmt b.blk_body }
      | Dma d -> Dma { d with exclude = true }
      | If (e, a, b) -> If (e, List.map stmt a, List.map stmt b)
      | While (e, b) -> While (e, List.map stmt b)
      | For (v, lo, hi, b) -> For (v, lo, hi, List.map stmt b)
      | (Assign _ | Store _ | Memcpy _ | Seal_dmas | Next _ | Stop) as s -> s
    in
    { st with s }
  in
  { p with p_tasks = List.map (fun t -> { t with t_body = List.map stmt t.t_body }) p.p_tasks }

let overflow_error ~demand ~priv_buffer_words =
  error
    "privatization buffer overflow: NV->volatile DMA transfers need up to %d words but the \
     buffer holds %d; enlarge it or annotate constant-source copies with dma_copy_exclude"
    demand priv_buffer_words

let apply ?(ablate_regions = false) ?(ablate_semantics = false) ?(priv_buffer_words = 2048) p =
  let p = if ablate_semantics then force_always p else p in
  Analysis.check_supported p;
  if is_lowered p then { prog = p; clear_flags = []; priv_demand_words = 0 }
  else begin
    let g = guards p in
    if g.g_demand > priv_buffer_words then
      overflow_error ~demand:g.g_demand ~priv_buffer_words;
    let prog, clear_flags = privatize ~ablate_regions ~orig:p ~locks:g.g_locks g.g_prog in
    validate prog;
    { prog; clear_flags; priv_demand_words = g.g_demand }
  end
