(** Hand-written lexer for the task language (.eio files).

    Tokens carry their source span so the parser can attach locations to
    every statement and declaration. *)

type token =
  | IDENT of string
  | INT of int
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

type t = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

exception Error of Span.t * string

let pos_of t = { Span.line = t.line; col = t.pos - t.bol + 1 }

let error t fmt =
  let p = pos_of t in
  Printf.ksprintf (fun s -> raise (Error ({ Span.s = p; e = p }, s))) fmt

let create src = { src; pos = 0; line = 1; bol = 0 }
let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t =
  let nl = peek_char t = Some '\n' in
  t.pos <- t.pos + 1;
  if nl then begin
    t.line <- t.line + 1;
    t.bol <- t.pos
  end

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do
        advance t
      done;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      advance t;
      advance t;
      let rec go () =
        match peek_char t with
        | None -> error t "unterminated comment"
        | Some '*' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
            advance t;
            advance t
        | Some _ ->
            advance t;
            go ()
      in
      go ();
      skip_ws t
  | _ -> ()

let lex_number t =
  let start = t.pos in
  while match peek_char t with Some c when is_digit c -> true | _ -> false do
    advance t
  done;
  let n = int_of_string (String.sub t.src start (t.pos - start)) in
  (* time-unit suffixes: 10ms, 500us — scaled to microseconds *)
  let rest = String.length t.src - t.pos in
  if rest >= 2 && String.sub t.src t.pos 2 = "ms" then begin
    advance t;
    advance t;
    INT (n * 1000)
  end
  else if rest >= 2 && String.sub t.src t.pos 2 = "us" then begin
    advance t;
    advance t;
    INT n
  end
  else INT n

(* One token, assuming leading whitespace/comments are already skipped. *)
let lex_token t =
  match peek_char t with
  | None -> EOF
  | Some c when is_digit c -> lex_number t
  | Some c when is_ident_start c ->
      let start = t.pos in
      while match peek_char t with Some c when is_ident c -> true | _ -> false do
        advance t
      done;
      IDENT (String.sub t.src start (t.pos - start))
  | Some c ->
      advance t;
      let two expected tok fallback =
        if peek_char t = Some expected then begin
          advance t;
          tok
        end
        else fallback
      in
      (match c with
      | '(' -> LPAREN
      | ')' -> RPAREN
      | '{' -> LBRACE
      | '}' -> RBRACE
      | '[' -> LBRACKET
      | ']' -> RBRACKET
      | ',' -> COMMA
      | ';' -> SEMI
      | '+' -> PLUS
      | '-' -> MINUS
      | '*' -> STAR
      | '/' -> SLASH
      | '%' -> PERCENT
      | '=' -> two '=' EQ ASSIGN
      | '!' -> two '=' NE BANG
      | '<' -> two '=' LE LT
      | '>' -> two '=' GE GT
      | '&' ->
          if peek_char t = Some '&' then begin
            advance t;
            ANDAND
          end
          else error t "expected &&"
      | '|' ->
          if peek_char t = Some '|' then begin
            advance t;
            OROR
          end
          else error t "expected ||"
      | c -> error t "unexpected character %c" c)

let next t =
  skip_ws t;
  lex_token t

let tokens src =
  let t = create src in
  let rec go acc =
    skip_ws t;
    let start = pos_of t in
    let tok = lex_token t in
    (* spans are inclusive: the end column is that of the last consumed
       character (tokens never cross a newline) *)
    let e =
      if t.pos > 0 && t.pos - t.bol > 0 then { Span.line = t.line; col = t.pos - t.bol }
      else start
    in
    let sp = { Span.s = start; e = (match tok with EOF -> start | _ -> e) } in
    match tok with EOF -> List.rev ((EOF, sp) :: acc) | _ -> go ((tok, sp) :: acc)
  in
  go []

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "end of input"
