(** Source-located diagnostics with stable codes.

    Every front-end pass reports findings as values of {!t}: a stable
    code ([E01xx] resolution, [E02xx] structural support and resource
    limits, [E03xx] namespace safety, [W04xx] lints), a {!Span.t}, a
    message and an optional hint. Renderers produce either compiler-style
    text with a caret/underline source excerpt or JSON (via the
    [Trace.Json] value type that [Expkit.Json] re-exports).

    Diagnostic codes in use:

    - [E0001] lexical or syntax error (from the parser)
    - [E0101] unknown entry task
    - [E0102] [next] to an unknown task
    - [E0103] duplicate global declaration
    - [E0104] non-positive array size
    - [E0105] initializer on a volatile global
    - [E0106] undeclared array (indexing, DMA or peripheral operand)
    - [E0107] wrong argument count for a built-in I/O function
    - [E0108] duplicate task name
    - [E0201] Single/Timely I/O inside a dynamically bounded or nested loop
    - [E0202] [io_block] inside a loop
    - [E0203] [_DMA_copy] not a top-level task statement
    - [E0204] privatization buffer overflow
    - [E0301] user global colliding with the compiler's reserved [__] prefix
    - [W0401] redundant [Always] on an I/O site whose result is never read
    - [W0402] [Timely] deadline below the capacitor's worst-case recharge time
    - [W0403] WAR variable written after a Single DMA but never privatized *)

type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  span : Span.t;
  message : string;
  hint : string option;
}

val error : ?hint:string -> code:string -> span:Span.t -> ('a, unit, string, t) format4 -> 'a
val warning : ?hint:string -> code:string -> span:Span.t -> ('a, unit, string, t) format4 -> 'a
val severity_str : severity -> string
val is_error : t -> bool
val has_errors : t list -> bool

(** An accumulating collection threaded through a pass pipeline;
    {!contents} returns diagnostics in insertion order. *)
type bag

val create_bag : unit -> bag
val add : bag -> t -> unit
val add_all : bag -> t list -> unit
val contents : bag -> t list

val render : ?src:string -> t -> string
(** Compiler-style text: header line, then (when [src] is given and the
    span is not ghost) the source line with a caret/underline excerpt,
    then the hint. *)

val render_all : ?src:string -> t list -> string

val to_json : t -> Trace.Json.t
val report_to_json : file:string -> t list -> Trace.Json.t
(** [{file; diagnostics; errors; warnings}] — the [easeio check --json]
    document. *)
