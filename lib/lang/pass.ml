open Ast

type options = {
  recharge_us : int option;
  priv_buffer_words : int;
  ablate_regions : bool;
  ablate_semantics : bool;
}

let default_options =
  {
    recharge_us = None;
    priv_buffer_words = 2048;
    ablate_regions = false;
    ablate_semantics = false;
  }

type artifacts = {
  mutable war : (string * string list) list;
  mutable regions : (string * int) list;
  mutable dma_deps : (string * string list list) list;
  mutable locks : (string * string list) list;
  mutable clear_flags : (string * string list) list;
  mutable demand_words : int;
}

type ctx = {
  bag : Diagnostics.bag;
  opts : options;
  art : artifacts;
  mutable orig : Ast.program option;
      (** set when the guards pass actually transforms: the pre-guards
          program privatize needs for its region analysis *)
}

let make_ctx ?(opts = default_options) () =
  {
    bag = Diagnostics.create_bag ();
    opts;
    art =
      {
        war = [];
        regions = [];
        dma_deps = [];
        locks = [];
        clear_flags = [];
        demand_words = 0;
      };
    orig = None;
  }

type t = {
  name : string;
  doc : string;
  transform : bool;
      (** whether the pass rewrites the program — transform passes are
          skipped once the bag holds errors, so analyses and lints still
          run to completion over broken input *)
  run : ctx -> Ast.program -> Ast.program;
}

let analysis name doc f = { name; doc; transform = false; run = f }

let resolve =
  analysis "resolve" "structural well-formedness, undeclared arrays, built-in arity (E01xx)"
    (fun ctx p ->
      Diagnostics.add_all ctx.bag (Analysis.resolve p);
      p)

let supported =
  analysis "supported" "front-end structural restrictions, every violation (E02xx)" (fun ctx p ->
      Diagnostics.add_all ctx.bag (Analysis.supported p);
      p)

let lint =
  analysis "lint" "annotation-misuse warnings and reserved-name collisions (E0301, W04xx)"
    (fun ctx p ->
      Diagnostics.add_all ctx.bag (Lint.run ?recharge_us:ctx.opts.recharge_us p);
      p)

let war =
  analysis "war" "per-task CPU-visible WAR variables" (fun ctx p ->
      ctx.art.war <- List.map (fun t -> (t.t_name, Analysis.war_vars p t)) p.p_tasks;
      p)

let taint =
  analysis "taint" "per-DMA dependence markers the guards stage will attach (§4.3.1)"
    (fun ctx p ->
      let deps_of body =
        List.filter_map
          (fun st -> match st.s with Dma d -> Some d.dma_deps | _ -> None)
          body
      in
      ctx.art.dma_deps <-
        (if Transform.is_lowered p then
           List.map (fun t -> (t.t_name, deps_of t.t_body)) p.p_tasks
         else
           let g = Transform.guards p in
           List.map (fun t -> (t.t_name, deps_of t.t_body)) g.Transform.g_prog.p_tasks);
      p)

let regions =
  analysis "regions" "per-task region decomposition at top-level DMAs (§4.4)" (fun ctx p ->
      ctx.art.regions <-
        List.map (fun t -> (t.t_name, List.length (Analysis.split_regions t))) p.p_tasks;
      p)

let guards =
  {
    name = "guards";
    doc = "per-site lock/timestamp/private-copy guard code";
    transform = true;
    run =
      (fun ctx p ->
        if Transform.is_lowered p then p
        else begin
          let g = Transform.guards p in
          ctx.orig <- Some p;
          ctx.art.locks <- g.Transform.g_locks;
          ctx.art.demand_words <- g.Transform.g_demand;
          (if g.Transform.g_demand > ctx.opts.priv_buffer_words then
             let span =
               (* anchor the overflow at the largest contributing site *)
               match
                 List.sort (fun (_, a) (_, b) -> compare b a) g.Transform.g_demand_sites
               with
               | (sp, _) :: _ -> sp
               | [] -> Span.ghost
             in
             Diagnostics.add ctx.bag
               (Diagnostics.error ~code:"E0204" ~span
                  ~hint:"enlarge the buffer or annotate constant-source copies with \
                         dma_copy_exclude"
                  "privatization buffer overflow: NV->volatile DMA transfers need up to %d \
                   words but the buffer holds %d"
                  g.Transform.g_demand ctx.opts.priv_buffer_words));
          g.Transform.g_prog
        end);
  }

let privatize =
  {
    name = "privatize";
    doc = "regional privatization and commit-flag schedule (§4.4)";
    transform = true;
    run =
      (fun ctx p ->
        match ctx.orig with
        | None -> p (* guards did not run (already-lowered input) *)
        | Some orig ->
            let prog, clear =
              Transform.privatize ~ablate_regions:ctx.opts.ablate_regions ~orig
                ~locks:ctx.art.locks p
            in
            ctx.art.clear_flags <- clear;
            prog);
  }

let analysis_passes = [ resolve; supported; lint; war; taint; regions ]
let compile_passes = analysis_passes @ [ guards; privatize ]
let find passes name = List.find_opt (fun p -> p.name = name) passes
let names passes = List.map (fun p -> p.name) passes

let run_pipeline ?observe ?(opts = default_options) passes p =
  let ctx = make_ctx ~opts () in
  let p = if opts.ablate_semantics then Transform.force_always p else p in
  let prog =
    List.fold_left
      (fun prog pass ->
        let prog' =
          if pass.transform && Diagnostics.has_errors (Diagnostics.contents ctx.bag) then prog
          else pass.run ctx prog
        in
        (match observe with Some f -> f pass.name prog' | None -> ());
        prog')
      p passes
  in
  (prog, ctx)
