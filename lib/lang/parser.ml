open Ast

exception Error = Lexer.Error

type st = { toks : (Lexer.token * Span.t) array; mutable pos : int }

let span_at st i = snd st.toks.(min (max i 0) (Array.length st.toks - 1))
let here st = span_at st st.pos
let prev_span st = span_at st (st.pos - 1)

let error st fmt =
  Printf.ksprintf (fun s -> raise (Error (here st, s))) fmt

let peek st = fst st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got = next st in
  if got <> tok then begin
    st.pos <- st.pos - 1;
    error st "expected %s, got %s" (Lexer.token_to_string tok) (Lexer.token_to_string got)
  end

let ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t ->
      st.pos <- st.pos - 1;
      error st "expected identifier, got %s" (Lexer.token_to_string t)

let int_lit st =
  match next st with
  | Lexer.INT n -> n
  | Lexer.MINUS -> (
      match next st with
      | Lexer.INT n -> -n
      | t ->
          st.pos <- st.pos - 1;
          error st "expected integer, got %s" (Lexer.token_to_string t))
  | t ->
      st.pos <- st.pos - 1;
      error st "expected integer, got %s" (Lexer.token_to_string t)

let accept st tok = if peek st = tok then (advance st; true) else false

(* [finish st start k] — a statement whose span runs from [start] to the
   last consumed token. *)
let finish st start k = { s = k; sp = Span.merge start (prev_span st) }

(* {1 Expressions} — precedence climbing *)

let rec parse_primary st =
  match next st with
  | Lexer.INT n -> Int n
  | Lexer.IDENT "get_time" ->
      expect st Lexer.LPAREN;
      expect st Lexer.RPAREN;
      Get_time
  | Lexer.IDENT name ->
      if accept st Lexer.LBRACKET then begin
        let i = parse_expr st in
        expect st Lexer.RBRACKET;
        Index (name, i)
      end
      else Var name
  | Lexer.LPAREN ->
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.MINUS -> Unop (Neg, parse_primary st)
  | Lexer.BANG -> Unop (Not, parse_primary st)
  | t ->
      st.pos <- st.pos - 1;
      error st "expected expression, got %s" (Lexer.token_to_string t)

and parse_mul st =
  let rec go acc =
    match peek st with
    | Lexer.STAR ->
        advance st;
        go (Binop (Mul, acc, parse_primary st))
    | Lexer.SLASH ->
        advance st;
        go (Binop (Div, acc, parse_primary st))
    | Lexer.PERCENT ->
        advance st;
        go (Binop (Mod, acc, parse_primary st))
    | _ -> acc
  in
  go (parse_primary st)

and parse_add st =
  let rec go acc =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        go (Binop (Add, acc, parse_mul st))
    | Lexer.MINUS ->
        advance st;
        go (Binop (Sub, acc, parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.EQ -> Some Eq
    | Lexer.NE -> Some Ne
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Binop (op, lhs, parse_add st)

and parse_and st =
  let rec go acc =
    if peek st = Lexer.ANDAND then begin
      advance st;
      go (Binop (And, acc, parse_cmp st))
    end
    else acc
  in
  go (parse_cmp st)

and parse_expr st =
  let rec go acc =
    if peek st = Lexer.OROR then begin
      advance st;
      go (Binop (Or, acc, parse_and st))
    end
    else acc
  in
  go (parse_and st)

(* {1 Semantics annotations} *)

let parse_sem st : Easeio.Semantics.t =
  match ident st with
  | "Single" -> Single
  | "Always" -> Always
  | "Timely" ->
      expect st Lexer.COMMA;
      Timely (int_lit st)
  | s -> error st "unknown re-execution semantic %s (expected Single, Timely or Always)" s

(* {1 Statements} *)

let parse_mem_ref st =
  let name = ident st in
  if accept st Lexer.LBRACKET then begin
    let off = parse_expr st in
    expect st Lexer.RBRACKET;
    { ref_arr = name; ref_off = off }
  end
  else { ref_arr = name; ref_off = Int 0 }

let parse_call_io st ~target =
  expect st Lexer.LPAREN;
  let io = ident st in
  expect st Lexer.COMMA;
  let sem = parse_sem st in
  let args = ref [] in
  while accept st Lexer.COMMA do
    args := Aexpr (parse_expr st) :: !args
  done;
  expect st Lexer.RPAREN;
  Call_io { target; io; sem; args = List.rev !args; guarded = false }

(* [io_exec(Name, Sem, args…)] — a guarded call in transform output:
   the annotation is already compiled into explicit guards, so the
   interpreter must run the call unconditionally. Same shape as
   [call_io] so compiled programs re-parse with this parser. *)
let parse_io_exec st ~target =
  match parse_call_io st ~target with
  | Call_io c -> Call_io { c with guarded = true }
  | _ -> assert false

(* optional [depends(d1, d2, …)] clause after a dma_copy *)
let parse_dma_deps st =
  if accept st (Lexer.IDENT "depends") then begin
    expect st Lexer.LPAREN;
    let deps = ref [ ident st ] in
    while accept st Lexer.COMMA do
      deps := ident st :: !deps
    done;
    expect st Lexer.RPAREN;
    List.rev !deps
  end
  else []

let rec parse_stmt st =
  let start = here st in
  match peek st with
  | Lexer.IDENT "int" ->
      (* local declaration: purely syntactic, locals are implicit *)
      advance st;
      let rec names () =
        let _ = ident st in
        if accept st Lexer.COMMA then names ()
      in
      names ();
      expect st Lexer.SEMI;
      None
  | Lexer.IDENT "if" ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      let then_ = parse_block st in
      let else_ = if accept st (Lexer.IDENT "else") then parse_block st else [] in
      Some (finish st start (If (cond, then_, else_)))
  | Lexer.IDENT "while" ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expr st in
      expect st Lexer.RPAREN;
      Some (finish st start (While (cond, parse_block st)))
  | Lexer.IDENT "for" ->
      advance st;
      let v = ident st in
      expect st Lexer.ASSIGN;
      let lo = parse_expr st in
      expect st (Lexer.IDENT "to");
      let hi = parse_expr st in
      Some (finish st start (For (v, lo, hi, parse_block st)))
  | Lexer.IDENT "io_block" ->
      advance st;
      expect st Lexer.LPAREN;
      let sem = parse_sem st in
      expect st Lexer.RPAREN;
      Some (finish st start (Io_block { blk_sem = sem; blk_body = parse_block st }))
  | Lexer.IDENT "call_io" ->
      advance st;
      let s = parse_call_io st ~target:None in
      expect st Lexer.SEMI;
      Some (finish st start s)
  | Lexer.IDENT "io_exec" ->
      advance st;
      let s = parse_io_exec st ~target:None in
      expect st Lexer.SEMI;
      Some (finish st start s)
  | Lexer.IDENT ("dma_copy" | "dma_copy_exclude") ->
      let exclude = peek st = Lexer.IDENT "dma_copy_exclude" in
      advance st;
      expect st Lexer.LPAREN;
      let src = parse_mem_ref st in
      expect st Lexer.COMMA;
      let dst = parse_mem_ref st in
      expect st Lexer.COMMA;
      let words = parse_expr st in
      expect st Lexer.RPAREN;
      let deps = parse_dma_deps st in
      expect st Lexer.SEMI;
      Some
        (finish st start
           (Dma { dma_src = src; dma_dst = dst; dma_words = words; exclude; dma_deps = deps }))
  | Lexer.IDENT "memcpy" ->
      advance st;
      expect st Lexer.LPAREN;
      let dst = parse_mem_ref st in
      expect st Lexer.COMMA;
      let src = parse_mem_ref st in
      expect st Lexer.COMMA;
      let words = parse_expr st in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Some (finish st start (Memcpy { cp_dst = dst; cp_src = src; cp_words = words }))
  | Lexer.IDENT "__seal_pending_dma" ->
      advance st;
      expect st Lexer.LPAREN;
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Some (finish st start Seal_dmas)
  | Lexer.IDENT "next" ->
      advance st;
      let t = ident st in
      expect st Lexer.SEMI;
      Some (finish st start (Next t))
  | Lexer.IDENT "stop" ->
      advance st;
      expect st Lexer.SEMI;
      Some (finish st start Stop)
  | Lexer.IDENT _ -> (
      let name = ident st in
      if accept st Lexer.LBRACKET then begin
        let i = parse_expr st in
        expect st Lexer.RBRACKET;
        expect st Lexer.ASSIGN;
        let e = parse_expr st in
        expect st Lexer.SEMI;
        Some (finish st start (Store (name, i, e)))
      end
      else begin
        expect st Lexer.ASSIGN;
        match peek st with
        | Lexer.IDENT "call_io" ->
            advance st;
            let s = parse_call_io st ~target:(Some name) in
            expect st Lexer.SEMI;
            Some (finish st start s)
        | Lexer.IDENT "io_exec" ->
            advance st;
            let s = parse_io_exec st ~target:(Some name) in
            expect st Lexer.SEMI;
            Some (finish st start s)
        | _ ->
            let e = parse_expr st in
            expect st Lexer.SEMI;
            Some (finish st start (Assign (name, e)))
      end)
  | t -> error st "expected statement, got %s" (Lexer.token_to_string t)

and parse_block st =
  expect st Lexer.LBRACE;
  let rec go acc =
    if accept st Lexer.RBRACE then List.rev acc
    else
      match parse_stmt st with Some s -> go (s :: acc) | None -> go acc
  in
  go []

(* {1 Declarations and program} *)

let parse_init st =
  if accept st Lexer.LBRACE then begin
    let vals = ref [ int_lit st ] in
    while accept st Lexer.COMMA do
      vals := int_lit st :: !vals
    done;
    expect st Lexer.RBRACE;
    Array.of_list (List.rev !vals)
  end
  else [| int_lit st |]

let parse_decl st ~space =
  let start = here st in
  advance st;
  expect st (Lexer.IDENT "int");
  let name = ident st in
  let words =
    if accept st Lexer.LBRACKET then begin
      let n = int_lit st in
      expect st Lexer.RBRACKET;
      n
    end
    else 1
  in
  let init = if accept st Lexer.ASSIGN then Some (parse_init st) else None in
  expect st Lexer.SEMI;
  {
    v_name = name;
    v_space = space;
    v_words = words;
    v_init = init;
    v_span = Span.merge start (prev_span st);
  }

let parse_task st =
  let start = here st in
  advance st;
  let name = ident st in
  let header_end = prev_span st in
  { t_name = name; t_body = parse_block st; t_span = Span.merge start header_end }

(* Resolve [Aexpr (Var a)] io arguments naming array globals into [Aarr]. *)
let resolve_io_args p =
  let is_array name =
    match find_global p name with Some d -> d.v_words > 1 | None -> false
  in
  let resolve_arg = function
    | Aexpr (Var a) when is_array a -> Aarr a
    | arg -> arg
  in
  let rec resolve_stmt st =
    let s =
      match st.s with
      | Call_io c -> Call_io { c with args = List.map resolve_arg c.args }
      | If (e, a, b) -> If (e, List.map resolve_stmt a, List.map resolve_stmt b)
      | While (e, b) -> While (e, List.map resolve_stmt b)
      | For (v, lo, hi, b) -> For (v, lo, hi, List.map resolve_stmt b)
      | Io_block b -> Io_block { b with blk_body = List.map resolve_stmt b.blk_body }
      | (Assign _ | Store _ | Dma _ | Memcpy _ | Seal_dmas | Next _ | Stop) as s -> s
    in
    { st with s }
  in
  {
    p with
    p_tasks = List.map (fun t -> { t with t_body = List.map resolve_stmt t.t_body }) p.p_tasks;
  }

(* Parse without validation — the pass pipeline reports structural
   problems as diagnostics instead of exceptions. *)
let parse src =
  let st = { toks = Array.of_list (Lexer.tokens src); pos = 0 } in
  expect st (Lexer.IDENT "program");
  let name = ident st in
  expect st Lexer.SEMI;
  let globals = ref [] and tasks = ref [] in
  let rec go () =
    match peek st with
    | Lexer.IDENT "nv" ->
        globals := parse_decl st ~space:Nv :: !globals;
        go ()
    | Lexer.IDENT "vol" ->
        globals := parse_decl st ~space:Vol :: !globals;
        go ()
    | Lexer.IDENT "task" ->
        tasks := parse_task st :: !tasks;
        go ()
    | Lexer.EOF -> ()
    | t -> error st "expected declaration or task, got %s" (Lexer.token_to_string t)
  in
  go ();
  let tasks = List.rev !tasks in
  (match tasks with [] -> error st "program has no tasks" | _ -> ());
  let p =
    {
      p_name = name;
      p_globals = List.rev !globals;
      p_tasks = tasks;
      p_entry = (List.hd tasks).t_name;
    }
  in
  resolve_io_args p

let program src =
  let p = parse src in
  validate p;
  p

let expr src =
  let st = { toks = Array.of_list (Lexer.tokens src); pos = 0 } in
  let e = parse_expr st in
  expect st Lexer.EOF;
  e
