(** Recursive-descent parser for the task language.

    Concrete syntax example:
    {v
    program weather;

    nv int input[64];
    nv int coefs[8] = {1, 2, 3, 4, 4, 3, 2, 1};
    vol int lebuf[72];
    nv int stdy;

    task sense {
      int temp;
      io_block(Single) {
        temp = call_io(Temp, Timely, 10ms);
        call_io(Humd, Always);
      }
      if (temp < 100) { stdy = 1; }
      dma_copy(input[0], lebuf[0], 64);
      next filter;
    }

    task filter { stop; }
    v}

    The first task is the entry point. [int x, y;] declares volatile
    task locals (semantically implicit — any non-global scalar is a
    local). Integer literals accept [ms]/[us] suffixes and are
    normalized to microseconds.

    Transform output is also concrete syntax the same parser accepts:
    [io_exec(Name, Sem, args…)] is a guarded call, [memcpy(dst, src,
    n);] a CPU block copy, [__seal_pending_dma();] the DMA seal, and
    [dma_copy(src, dst, n) depends(d1, d2);] carries §4.3.1 dependence
    markers — so compiled programs re-parse ([easeio compile --out]
    artifacts and [--dump-after] dumps are valid task-language text). *)

exception Error of Span.t * string
(** Lexical or syntax error at a source location. *)

val parse : string -> Ast.program
(** Parse only — no structural validation. The pass pipeline reports
    problems ({!Ast.validate_diags}, {!Analysis.resolve}) as
    diagnostics; use this entry from drivers that render them. *)

val program : string -> Ast.program
(** Parse and validate a complete program from source text. Raises
    {!Error} on syntax errors and {!Ast.Error} (with every violation)
    on structural ones. *)

val expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
