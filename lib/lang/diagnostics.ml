type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  span : Span.t;
  message : string;
  hint : string option;
}

let make ?hint ~code ~severity ~span fmt =
  Printf.ksprintf (fun message -> { code; severity; span; message; hint }) fmt

let error ?hint ~code ~span fmt = make ?hint ~code ~severity:Error ~span fmt
let warning ?hint ~code ~span fmt = make ?hint ~code ~severity:Warning ~span fmt

let severity_str = function Error -> "error" | Warning -> "warning"
let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds

(* {1 Collection} *)

type bag = { mutable rev : t list }

let create_bag () = { rev = [] }
let add bag d = bag.rev <- d :: bag.rev
let add_all bag ds = List.iter (add bag) ds
let contents bag = List.rev bag.rev

(* {1 Text rendering} *)

(* 0-based line lookup over the original source, tolerant of spans past
   the end (e.g. an EOF-anchored parse error). *)
let source_line src n =
  let lines = String.split_on_char '\n' src in
  List.nth_opt lines (n - 1)

let render ?src d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s[%s]: %s" (severity_str d.severity) d.code d.message);
  if not (Span.is_ghost d.span) then begin
    Buffer.add_string buf (Printf.sprintf "\n  --> line %s" (Span.to_string d.span));
    match Option.bind src (fun s -> source_line s d.span.Span.s.Span.line) with
    | None -> ()
    | Some line ->
        let gutter = Printf.sprintf "%4d | " d.span.Span.s.Span.line in
        Buffer.add_string buf (Printf.sprintf "\n%s%s\n" gutter line);
        let sc = d.span.Span.s.Span.col in
        (* underline to the span end when it closes on the same line,
           otherwise to the end of the excerpted line *)
        let ec =
          if d.span.Span.e.Span.line = d.span.Span.s.Span.line then d.span.Span.e.Span.col
          else String.length line
        in
        let ec = max sc (min ec (max sc (String.length line))) in
        Buffer.add_string buf (String.make (String.length gutter + sc - 1) ' ');
        Buffer.add_string buf (String.make (ec - sc + 1) '^')
  end;
  (match d.hint with
  | Some h -> Buffer.add_string buf (Printf.sprintf "\n  hint: %s" h)
  | None -> ());
  Buffer.contents buf

let render_all ?src ds = String.concat "\n\n" (List.map (render ?src) ds)

(* {1 JSON rendering} *)

let pos_to_json (p : Span.pos) =
  Trace.Json.Obj [ ("line", Trace.Json.Int p.Span.line); ("col", Trace.Json.Int p.Span.col) ]

let span_to_json sp =
  if Span.is_ghost sp then Trace.Json.Null
  else Trace.Json.Obj [ ("start", pos_to_json sp.Span.s); ("end", pos_to_json sp.Span.e) ]

let to_json d =
  Trace.Json.Obj
    [
      ("code", Trace.Json.String d.code);
      ("severity", Trace.Json.String (severity_str d.severity));
      ("span", span_to_json d.span);
      ("message", Trace.Json.String d.message);
      ("hint", match d.hint with Some h -> Trace.Json.String h | None -> Trace.Json.Null);
    ]

let report_to_json ~file ds =
  let errs = List.length (List.filter is_error ds) in
  Trace.Json.Obj
    [
      ("file", Trace.Json.String file);
      ("diagnostics", Trace.Json.List (List.map to_json ds));
      ("errors", Trace.Json.Int errs);
      ("warnings", Trace.Json.Int (List.length ds - errs));
    ]
