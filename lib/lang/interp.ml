open Platform
open Ast

type policy = Plain | Alpaca | Ink | Easeio

let policy_name = function
  | Plain -> "Plain"
  | Alpaca -> "Alpaca"
  | Ink -> "InK"
  | Easeio -> "EaseIO"

type io_arg_v = Val of int | Arr of Loc.t * int
type io_impl = Machine.t -> io_arg_v list -> int

(* How a global is stored: managed by the baseline runtime's variable
   manager, or a raw location. *)
type ginfo = Managed of Runtimes.Manager.var * int | Raw of Loc.t * int

type t = {
  m : Machine.t;
  policy : policy;
  prog : program;
  radio : Periph.Radio.t;
  io : (string, io_impl) Hashtbl.t;
  globals : (string, ginfo) Hashtbl.t;
  mgr : Runtimes.Manager.t option;
  rt : Easeio.Runtime.t option;
  clear : (string, (int * int) list) Hashtbl.t;
      (** task -> easeio flag (addr, words) cleared at commit; loop-
          indexed sites have whole lock-flag arrays *)
  locals : (string, int) Hashtbl.t;
  transformed : Transform.result option;
  mutable check : (t -> bool) option;
  mutable steps : int;
}

exception Transition of Kernel.Task.transition

let step_limit = 20_000_000

let machine t = t.m
let radio t = t.radio
let program t = t.prog
let transformed t = t.transformed

(* Work on transform-inserted state counts as runtime overhead. *)
let is_runtime_name name = String.length name >= 2 && name.[0] = '_' && name.[1] = '_'

let ovh_if cond m f = if cond then Machine.with_tag m Machine.Overhead f else f ()

let ginfo t name =
  match Hashtbl.find_opt t.globals name with
  | Some g -> Some g
  | None -> None

let global_loc t name =
  match Hashtbl.find_opt t.globals name with
  | Some (Raw (loc, _)) -> loc
  | Some (Managed (v, _)) -> (
      match t.mgr with
      | Some mgr -> Runtimes.Manager.raw_loc mgr v
      | None -> assert false)
  | None -> raise Not_found

let read_global t name i =
  match Hashtbl.find_opt t.globals name with
  | Some (Managed (v, _)) -> Runtimes.Manager.committed (Option.get t.mgr) v i
  | Some (Raw (loc, _)) -> Memory.read (Machine.mem t.m loc.Loc.space) (loc.Loc.addr + i)
  | None -> raise Not_found

(* Bulk observation: resolves [name] once instead of per element, so
   result checks over large arrays don't pay a string-keyed lookup per
   word (which used to dominate harness time on the DMA/FIR apps). *)
let read_global_block t name ~words =
  match Hashtbl.find_opt t.globals name with
  | Some (Managed (v, _)) ->
      let mgr = Option.get t.mgr in
      Array.init words (fun i -> Runtimes.Manager.committed mgr v i)
  | Some (Raw (loc, _)) ->
      let mem = Machine.mem t.m loc.Loc.space in
      Array.init words (fun i -> Memory.read mem (loc.Loc.addr + i))
  | None -> raise Not_found

(* {1 Charged variable access} *)

let read_scalar t name =
  match ginfo t name with
  | Some (Managed (v, _)) -> Runtimes.Manager.read (Option.get t.mgr) v 0
  | Some (Raw (loc, _)) ->
      ovh_if (is_runtime_name name) t.m (fun () -> Machine.read t.m loc.Loc.space loc.Loc.addr)
  | None ->
      (* volatile task-local; registers are free beyond the op cost *)
      Machine.cpu t.m 1;
      Option.value ~default:0 (Hashtbl.find_opt t.locals name)

let write_scalar t name v =
  match ginfo t name with
  | Some (Managed (var, _)) -> Runtimes.Manager.write (Option.get t.mgr) var 0 v
  | Some (Raw (loc, _)) ->
      ovh_if (is_runtime_name name) t.m (fun () -> Machine.write t.m loc.Loc.space loc.Loc.addr v)
  | None ->
      Machine.cpu t.m 1;
      Hashtbl.replace t.locals name v

let read_elem t name i =
  match ginfo t name with
  | Some (Managed (v, words)) ->
      if i < 0 || i >= words then error "index %d out of bounds for %s[%d]" i name words;
      Runtimes.Manager.read (Option.get t.mgr) v i
  | Some (Raw (loc, words)) ->
      if i < 0 || i >= words then error "index %d out of bounds for %s[%d]" i name words;
      ovh_if (is_runtime_name name) t.m (fun () ->
          Machine.read t.m loc.Loc.space (loc.Loc.addr + i))
  | None -> error "unknown array %s" name

let write_elem t name i v =
  match ginfo t name with
  | Some (Managed (var, words)) ->
      if i < 0 || i >= words then error "index %d out of bounds for %s[%d]" i name words;
      Runtimes.Manager.write (Option.get t.mgr) var i v
  | Some (Raw (loc, words)) ->
      if i < 0 || i >= words then error "index %d out of bounds for %s[%d]" i name words;
      ovh_if (is_runtime_name name) t.m (fun () ->
          Machine.write t.m loc.Loc.space (loc.Loc.addr + i) v)
  | None -> error "unknown array %s" name

(* Raw location for peripherals (DMA, LEA): bypasses any mediation. *)
let loc_words t name =
  match ginfo t name with
  | Some (Raw (loc, words)) -> (loc, words)
  | Some (Managed (v, words)) -> (Runtimes.Manager.raw_loc (Option.get t.mgr) v, words)
  | None -> error "unknown array %s (peripherals need declared globals)" name

(* {1 Expression evaluation} *)

let bool_int b = if b then 1 else 0

let rec eval t e =
  t.steps <- t.steps + 1;
  if t.steps > step_limit then error "step limit exceeded (infinite loop?)";
  match e with
  | Int n -> n
  | Var v -> read_scalar t v
  | Index (a, i) ->
      let i = eval t i in
      read_elem t a i
  | Unop (Neg, e) ->
      Machine.cpu t.m 1;
      -eval t e
  | Unop (Not, e) ->
      Machine.cpu t.m 1;
      bool_int (eval t e = 0)
  | Binop (And, a, b) ->
      Machine.cpu t.m 1;
      if eval t a = 0 then 0 else bool_int (eval t b <> 0)
  | Binop (Or, a, b) ->
      Machine.cpu t.m 1;
      if eval t a <> 0 then 1 else bool_int (eval t b <> 0)
  | Binop (op, a, b) ->
      Machine.cpu t.m 1;
      let x = eval t a and y = eval t b in
      (match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> if y = 0 then error "division by zero" else x / y
      | Mod -> if y = 0 then error "modulo by zero" else x mod y
      | Eq -> bool_int (x = y)
      | Ne -> bool_int (x <> y)
      | Lt -> bool_int (x < y)
      | Le -> bool_int (x <= y)
      | Gt -> bool_int (x > y)
      | Ge -> bool_int (x >= y)
      | And | Or -> assert false)
  | Get_time -> Machine.with_tag t.m Machine.Overhead (fun () -> Timekeeper.read t.m)

let mem_loc t { ref_arr; ref_off } =
  let loc, words = loc_words t ref_arr in
  let off = eval t ref_off in
  if off < 0 || off > words then error "offset %d out of bounds for %s[%d]" off ref_arr words;
  (Loc.offset loc off, words - off)

(* {1 Statement execution} *)

let rec exec_stmts t stmts = List.iter (exec_stmt t) stmts

and exec_stmt t stmt =
  t.steps <- t.steps + 1;
  if t.steps > step_limit then error "step limit exceeded (infinite loop?)";
  Machine.cpu t.m 1;
  match stmt.s with
  | Assign (v, e) -> write_scalar t v (eval t e)
  | Store (a, i, e) ->
      let i = eval t i in
      write_elem t a i (eval t e)
  | If (c, a, b) -> if eval t c <> 0 then exec_stmts t a else exec_stmts t b
  | While (c, b) ->
      while eval t c <> 0 do
        exec_stmts t b
      done
  | For (v, lo, hi, b) ->
      let lo = eval t lo and hi = eval t hi in
      write_scalar t v lo;
      let i = ref lo in
      while !i <= hi do
        exec_stmts t b;
        incr i;
        write_scalar t v !i
      done
  | Call_io c -> exec_call t c
  | Io_block { blk_body; _ } ->
      (* only reached under baseline policies (the transform eliminates
         blocks): baselines have no block semantics, the body just runs *)
      exec_stmts t blk_body
  | Dma d -> exec_dma t d
  | Memcpy { cp_dst; cp_src; cp_words } ->
      let words = eval t cp_words in
      let dst, dst_room = mem_loc t cp_dst in
      let src, src_room = mem_loc t cp_src in
      if words > dst_room || words > src_room then error "memcpy out of bounds";
      Machine.with_tag t.m Machine.Overhead (fun () ->
          for i = 0 to words - 1 do
            Machine.write t.m dst.Loc.space (dst.Loc.addr + i)
              (Machine.read t.m src.Loc.space (src.Loc.addr + i))
          done)
  | Seal_dmas -> (
      match t.rt with Some rt -> Easeio.Runtime.seal_dmas rt | None -> ())
  | Next name -> raise (Transition (Kernel.Task.Next name))
  | Stop -> raise (Transition Kernel.Task.Stop)

and exec_call t c =
  let impl =
    match Hashtbl.find_opt t.io c.io with
    | Some impl -> impl
    | None -> error "unknown I/O function %s" c.io
  in
  let args =
    List.map
      (function
        | Aexpr e -> Val (eval t e)
        | Aarr a ->
            let loc, words = loc_words t a in
            Arr (loc, words))
      c.args
  in
  let v = impl t.m args in
  match c.target with Some tgt -> write_scalar t tgt v | None -> ()

and exec_dma t d =
  let words = eval t d.dma_words in
  let src, src_room = mem_loc t d.dma_src in
  let dst, dst_room = mem_loc t d.dma_dst in
  if words > src_room || words > dst_room then error "dma_copy out of bounds";
  match t.rt with
  | None ->
      (* baselines: raw transfer, re-executed with the task *)
      Periph.Dma.copy t.m ~src ~dst ~words
  | Some rt ->
      let force =
        List.exists (fun dep -> Option.value ~default:0 (Hashtbl.find_opt t.locals dep) <> 0)
          d.dma_deps
      in
      Easeio.Runtime.dma_copy ~exclude:d.exclude ~force rt ~src ~dst ~words

(* {1 Default peripherals} *)

let arr_sram name = function
  | Arr ({ Loc.space = Memory.Sram; addr }, words) -> (addr, words)
  | Arr ({ Loc.space = Memory.Fram; _ }, _) ->
      error "%s: LEA operands must live in SRAM (LEA-RAM)" name
  | Val _ -> error "%s: expected an array argument" name

let default_io radio : (string * io_impl) list =
  [
    ("Temp", fun m _ -> Periph.Sensors.temperature_dc m);
    ("Humd", fun m _ -> Periph.Sensors.humidity_pct m);
    ("Pres", fun m _ -> Periph.Sensors.pressure_pa10 m);
    ("Light", fun m _ -> Periph.Sensors.light_lux m);
    ( "Send",
      fun m args ->
        let payload =
          List.map (function Val v -> v | Arr _ -> error "Send takes scalar values") args
        in
        (* dropped packets are retried with backoff, then abandoned:
           graceful degradation, never an app-visible exception *)
        ignore
          (Runtimes.Manager.with_backoff m (fun () ->
               Periph.Radio.send radio (Array.of_list payload)));
        0 );
    ( "Capture",
      fun m args ->
        match args with
        | [ Arr (dst, words); Val pixels ] ->
            if pixels > words then error "Capture: frame larger than buffer";
            Periph.Camera.capture m ~dst ~pixels;
            0
        | _ -> error "Capture(buffer, pixels)" );
    ( "Delay",
      fun m args ->
        match args with
        | [ Val us ] ->
            Machine.idle m us;
            0
        | _ -> error "Delay(us)" );
    ( "Lea_mac",
      fun m args ->
        match args with
        | [ a; b; Val len ] ->
            let a, _ = arr_sram "Lea_mac" a and b, _ = arr_sram "Lea_mac" b in
            Periph.Lea.vector_mac m ~a ~b ~len
        | _ -> error "Lea_mac(a, b, len)" );
    ( "Lea_fir",
      fun m args ->
        match args with
        | [ input; coeffs; Val taps; output; Val samples ] ->
            let input, _ = arr_sram "Lea_fir" input in
            let coeffs, _ = arr_sram "Lea_fir" coeffs in
            let output, _ = arr_sram "Lea_fir" output in
            Periph.Lea.fir m ~input ~coeffs ~taps ~output ~samples;
            0
        | _ -> error "Lea_fir(input, coeffs, taps, output, samples)" );
  ]

(* {1 Setup} *)

let alloc_globals t prog =
  List.iter
    (fun d ->
      let space = match d.v_space with Nv -> Memory.Fram | Vol -> Memory.Sram in
      let info =
        match (t.mgr, d.v_space) with
        | Some mgr, Nv ->
            (* WAR in any task -> privatized by the baseline runtime *)
            let war =
              List.exists (fun task -> List.mem d.v_name (Analysis.war_vars prog task))
                prog.p_tasks
            in
            Managed (Runtimes.Manager.declare ~war mgr ~name:d.v_name ~words:d.v_words, d.v_words)
        | _ ->
            let addr = Machine.alloc t.m space ~name:d.v_name ~words:d.v_words in
            Raw ({ Loc.space; addr }, d.v_words)
      in
      Hashtbl.replace t.globals d.v_name info;
      (* flash-time initialization (uncharged) *)
      match d.v_init with
      | None -> ()
      | Some init ->
          let loc =
            match info with
            | Raw (loc, _) -> loc
            | Managed (v, _) -> Runtimes.Manager.flash_loc (Option.get t.mgr) v
          in
          Array.iteri
            (fun i v ->
              if i < d.v_words then
                Memory.write (Machine.mem t.m loc.Loc.space) (loc.Loc.addr + i) v)
            init)
    prog.p_globals

let build ?(policy = Easeio) ?(extra_io = []) ?check ?priv_buffer_words ?ablate_regions
    ?ablate_semantics m prog =
  validate prog;
  let transformed =
    match policy with
    | Easeio ->
        (* with no explicit size the buffer is fitted to the statically
           computed demand (zero for DMA-free applications — the paper's
           6-byte-overhead case) *)
        Some
          (Transform.apply ?ablate_regions ?ablate_semantics
             ~priv_buffer_words:(Option.value ~default:max_int priv_buffer_words)
             prog)
    | Plain | Alpaca | Ink -> None
  in
  let priv_buffer_words =
    match (priv_buffer_words, transformed) with
    | Some w, _ -> Some w
    | None, Some r -> Some r.Transform.priv_demand_words
    | None, None -> None
  in
  let exec_prog = match transformed with Some r -> r.Transform.prog | None -> prog in
  let mgr =
    match policy with
    | Alpaca -> Some (Runtimes.Manager.create m Runtimes.Manager.Alpaca)
    | Ink -> Some (Runtimes.Manager.create m Runtimes.Manager.Ink)
    | Plain | Easeio -> None
  in
  let rt = match policy with Easeio -> Some (Easeio.Runtime.create ?priv_buffer_words m) | _ -> None in
  let radio = Periph.Radio.create m in
  let t =
    {
      m;
      policy;
      prog = exec_prog;
      radio;
      io = Hashtbl.create 16;
      globals = Hashtbl.create 32;
      mgr;
      rt;
      clear = Hashtbl.create 8;
      locals = Hashtbl.create 16;
      transformed;
      check = None;
      steps = 0;
    }
  in
  t.check <- check;
  List.iter (fun (name, impl) -> Hashtbl.replace t.io name impl) (default_io radio);
  List.iter (fun (name, impl) -> Hashtbl.replace t.io name impl) extra_io;
  alloc_globals t exec_prog;
  (* resolve the transform's per-task commit-cleared flags to addresses *)
  (match transformed with
  | Some { Transform.clear_flags; _ } ->
      List.iter
        (fun (task, flags) ->
          let ranges =
            List.map
              (fun f ->
                match Hashtbl.find_opt t.globals f with
                | Some (Raw (loc, words)) -> (loc.Loc.addr, words)
                | Some (Managed _) | None -> ((global_loc t f).Loc.addr, 1))
              flags
          in
          Hashtbl.replace t.clear task ranges)
        clear_flags
  | None -> ());
  t

let to_app t =
  let body_of task m =
    ignore m;
    Hashtbl.reset t.locals;
    t.steps <- 0;
    match exec_stmts t task.t_body with
    | () -> error "task %s fell through without next/stop" task.t_name
    | exception Transition tr -> tr
  in
  let check = Option.map (fun f _m -> f t) t.check in
  Kernel.Task.make_app ?check ~name:t.prog.p_name ~entry:t.prog.p_entry
    (List.map (fun task -> { Kernel.Task.name = task.t_name; body = body_of task }) t.prog.p_tasks)

let hooks t =
  let base =
    match (t.mgr, t.rt) with
    | Some mgr, _ -> Runtimes.Manager.hooks mgr
    | _, Some rt -> Easeio.Runtime.hooks rt
    | None, None -> Kernel.Engine.no_hooks
  in
  let clear_hook =
    {
      Kernel.Engine.on_task_start = (fun _ _ -> ());
      on_commit =
        (fun m task ->
          match Hashtbl.find_opt t.clear task with
          | None -> ()
          | Some ranges ->
              List.iter
                (fun (addr, words) ->
                  for i = 0 to words - 1 do
                    Machine.write m Memory.Fram (addr + i) 0
                  done)
                ranges);
      on_reboot = (fun _ -> ());
    }
  in
  Kernel.Engine.compose_hooks base clear_hook

let run ?max_failures t =
  Kernel.Engine.run ~hooks:(hooks t) ?max_failures t.m (to_app t)
