(** Abstract syntax of the task language.

    The language is the C-like subset the EaseIO paper programs in: a
    set of atomic tasks over non-volatile ([nv]) and volatile ([vol])
    global variables plus implicitly-declared volatile task locals, with
    [_call_IO], [_IO_block_begin/end] and [_DMA_copy] as the peripheral
    interface. The compiler front-end ({!Transform}) rewrites these
    constructs into explicit guard code, extra non-volatile flag
    variables and regional privatization, mirroring the paper's Fig. 5
    and Fig. 6 output; {!Interp} executes programs on the simulated
    machine under a choice of runtime policy.

    Every statement, declaration and task carries a {!Span.t} so the
    pass pipeline can report source-located diagnostics; spans are
    ignored by the pretty-printer and interpreter, and synthesized code
    carries {!Span.ghost}.

    A few constructors ([Get_time], [Memcpy], [Seal_dmas]) appear only
    in transformed programs. *)

type space = Nv | Vol

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Int of int
  | Var of string  (** scalar global or task-local *)
  | Index of string * expr  (** array element *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Get_time  (** persistent clock read (transform output) *)

type io_arg =
  | Aexpr of expr  (** scalar argument *)
  | Aarr of string  (** array argument, passed by reference *)

type mem_ref = { ref_arr : string; ref_off : expr }
(** [arr[off]] — the base of a block transfer. *)

type stmt = { s : stmt_k; sp : Span.t }

and stmt_k =
  | Assign of string * expr
  | Store of string * expr * expr  (** arr[i] = e *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list  (** for v = e1 to e2 (inclusive) *)
  | Call_io of call_io
  | Io_block of { blk_sem : Easeio.Semantics.t; blk_body : stmt list }
  | Dma of dma
  | Memcpy of { cp_dst : mem_ref; cp_src : mem_ref; cp_words : expr }
      (** CPU word-by-word copy (transform output: privatization code) *)
  | Seal_dmas  (** mark pending Single DMA transfers complete (transform output) *)
  | Next of string
  | Stop

and call_io = {
  target : string option;  (** variable receiving the result, if any *)
  io : string;  (** I/O function name, resolved by the interpreter *)
  sem : Easeio.Semantics.t;
  args : io_arg list;
  guarded : bool;
      (** set by the transform: semantics already compiled into explicit
          guards, the interpreter must execute the call unconditionally *)
}

and dma = {
  dma_src : mem_ref;
  dma_dst : mem_ref;
  dma_words : expr;
  exclude : bool;  (** the Exclude annotation: compile-time Always, no privatization *)
  dma_deps : string list;
      (** names of volatile dependence locals (transform output, §4.3.1):
          if any is non-zero the transfer is forced to re-execute *)
}

type var_decl = {
  v_name : string;
  v_space : space;
  v_words : int;  (** 1 for scalars *)
  v_init : int array option;  (** flash-time initial contents (nv only) *)
  v_span : Span.t;
}

type task = { t_name : string; t_body : stmt list; t_span : Span.t }

type program = {
  p_name : string;
  p_globals : var_decl list;
  p_tasks : task list;
  p_entry : string;
}

exception Error of string
(** Raised on malformed programs (unknown variables, bad structure). *)

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** Statement constructor; synthesized code omits [sp]. *)
let mk ?(sp = Span.ghost) s = { s; sp }

let find_global p name = List.find_opt (fun d -> d.v_name = name) p.p_globals
let is_global p name = Option.is_some (find_global p name)
let find_task p name = List.find_opt (fun t -> t.t_name = name) p.p_tasks

(** Replace every span with {!Span.ghost} — for structural comparisons
    (parse/pretty round-trips) that must ignore locations. *)
let rec strip_stmt st =
  let s =
    match st.s with
    | If (c, a, b) -> If (c, List.map strip_stmt a, List.map strip_stmt b)
    | While (c, b) -> While (c, List.map strip_stmt b)
    | For (v, lo, hi, b) -> For (v, lo, hi, List.map strip_stmt b)
    | Io_block b -> Io_block { b with blk_body = List.map strip_stmt b.blk_body }
    | (Assign _ | Store _ | Call_io _ | Dma _ | Memcpy _ | Seal_dmas | Next _ | Stop) as s -> s
  in
  { s; sp = Span.ghost }

let strip p =
  {
    p with
    p_globals = List.map (fun d -> { d with v_span = Span.ghost }) p.p_globals;
    p_tasks =
      List.map
        (fun t -> { t with t_body = List.map strip_stmt t.t_body; t_span = Span.ghost })
        p.p_tasks;
  }

(** Structural well-formedness as diagnostics: every task named by
    [Next] plus the entry must exist, globals are unique with sane
    sizes, task names are unique. Collects {e all} violations. *)
let validate_diags p =
  let ds = ref [] in
  let err ~code ~span fmt =
    Printf.ksprintf
      (fun message ->
        ds := { Diagnostics.code; severity = Diagnostics.Error; span; message; hint = None } :: !ds)
      fmt
  in
  if Option.is_none (find_task p p.p_entry) then
    err ~code:"E0101" ~span:Span.ghost "unknown entry task %s" p.p_entry;
  let rec check_stmt t st =
    match st.s with
    | Next name ->
        if Option.is_none (find_task p name) then
          err ~code:"E0102" ~span:st.sp "task %s: transition to unknown task %s" t name
    | If (_, a, b) ->
        List.iter (check_stmt t) a;
        List.iter (check_stmt t) b
    | While (_, b) | For (_, _, _, b) -> List.iter (check_stmt t) b
    | Io_block { blk_body; _ } -> List.iter (check_stmt t) blk_body
    | Assign _ | Store _ | Call_io _ | Dma _ | Memcpy _ | Seal_dmas | Stop -> ()
  in
  List.iter (fun t -> List.iter (check_stmt t.t_name) t.t_body) p.p_tasks;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem seen d.v_name then
        err ~code:"E0103" ~span:d.v_span "duplicate global %s" d.v_name;
      Hashtbl.add seen d.v_name ();
      if d.v_words < 1 then
        err ~code:"E0104" ~span:d.v_span "global %s has non-positive size" d.v_name;
      match (d.v_space, d.v_init) with
      | Vol, Some _ ->
          err ~code:"E0105" ~span:d.v_span "volatile global %s cannot have an initializer"
            d.v_name
      | _ -> ())
    p.p_globals;
  let tseen = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if Hashtbl.mem tseen t.t_name then
        err ~code:"E0108" ~span:t.t_span "duplicate task %s" t.t_name;
      Hashtbl.add tseen t.t_name ())
    p.p_tasks;
  List.rev !ds

(** Legacy entry point: raises {!Error} with {e every} violation (one
    per line), never just the first. *)
let validate p =
  match validate_diags p with
  | [] -> ()
  | ds -> raise (Error (String.concat "\n" (List.map (fun d -> d.Diagnostics.message) ds)))

(** Fold over all statements of a body, recursing into control flow. *)
let rec iter_stmts f stmts =
  List.iter
    (fun st ->
      f st;
      match st.s with
      | If (_, a, b) ->
          iter_stmts f a;
          iter_stmts f b
      | While (_, b) | For (_, _, _, b) -> iter_stmts f b
      | Io_block { blk_body; _ } -> iter_stmts f blk_body
      | Assign _ | Store _ | Call_io _ | Dma _ | Memcpy _ | Seal_dmas | Next _ | Stop -> ())
    stmts

(** Variables read by an expression. *)
let rec expr_reads e acc =
  match e with
  | Int _ | Get_time -> acc
  | Var v -> v :: acc
  | Index (a, i) -> expr_reads i (a :: acc)
  | Unop (_, e) -> expr_reads e acc
  | Binop (_, a, b) -> expr_reads a (expr_reads b acc)
