(** EaseIO lint passes — advisory diagnostics about annotation misuse
    the transform itself cannot reject (plus one hard error):

    - [E0301] a user global in the compiler's reserved [__] namespace
      (collides with generated lock/timestamp/privatization state and
      makes {!Transform.is_lowered} misfire);
    - [W0401] an [Always] operation whose result is never read — its
      per-reboot re-execution is pure waste;
    - [W0402] a [Timely] deadline shorter than the worst-case capacitor
      recharge — the freshness test can never pass after a power
      failure, degenerating to [Always];
    - [W0403] a WAR dependence across a protected DMA (destination read
      before, written after the transfer) — the Fig. 6 pattern whose
      safety depends on regional privatization. *)

val reserved_prefixes : string list
(** Generated-name prefixes the compiler owns. *)

val default_recharge_us : unit -> int
(** Worst-case recharge of the paper's MF-1/Powercast setup at a 1
    nJ/µs constant harvest — the [W0402] threshold when the driver does
    not supply one. *)

val run : ?recharge_us:int -> Ast.program -> Diagnostics.t list
(** All lints over a {e source} (pre-transform) program, grouped by
    code. [recharge_us] overrides the [W0402] staleness threshold. *)
