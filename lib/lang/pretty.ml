open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec expr_to_string = function
  | Int n -> string_of_int n
  | Var v -> v
  | Index (a, i) -> Printf.sprintf "%s[%s]" a (expr_to_string i)
  | Unop (Neg, e) -> Printf.sprintf "-%s" (atom e)
  | Unop (Not, e) -> Printf.sprintf "!%s" (atom e)
  | Binop (op, a, b) -> Printf.sprintf "%s %s %s" (atom a) (binop_str op) (atom b)
  | Get_time -> "get_time()"

and atom e =
  match e with
  | Int _ | Var _ | Index _ | Get_time -> expr_to_string e
  | Unop _ | Binop _ -> Printf.sprintf "(%s)" (expr_to_string e)

let sem_str : Easeio.Semantics.t -> string = function
  | Single -> "Single"
  | Always -> "Always"
  | Timely d -> Printf.sprintf "Timely, %dus" d

let mem_ref_str { ref_arr; ref_off } =
  Printf.sprintf "%s[%s]" ref_arr (expr_to_string ref_off)

let io_arg_str = function Aexpr e -> expr_to_string e | Aarr a -> a

let rec pp_stmt ppf stmt =
  match stmt.s with
  | Assign (v, e) -> Format.fprintf ppf "%s = %s;" v (expr_to_string e)
  | Store (a, i, e) ->
      Format.fprintf ppf "%s[%s] = %s;" a (expr_to_string i) (expr_to_string e)
  | If (c, a, []) ->
      Format.fprintf ppf "@[<v 2>if (%s) {%a@]@,}" (expr_to_string c) pp_body a
  | If (c, a, b) ->
      Format.fprintf ppf "@[<v 2>if (%s) {%a@]@,@[<v 2>} else {%a@]@,}" (expr_to_string c)
        pp_body a pp_body b
  | While (c, b) -> Format.fprintf ppf "@[<v 2>while (%s) {%a@]@,}" (expr_to_string c) pp_body b
  | For (v, lo, hi, b) ->
      Format.fprintf ppf "@[<v 2>for %s = %s to %s {%a@]@,}" v (expr_to_string lo)
        (expr_to_string hi) pp_body b
  | Call_io { target; io; sem; args; guarded } ->
      (* guarded calls print as io_exec(...) — concrete syntax the
         parser accepts back, keeping compiled programs round-trippable *)
      let call =
        Printf.sprintf "%s(%s, %s%s)"
          (if guarded then "io_exec" else "call_io")
          io (sem_str sem)
          (match args with
          | [] -> ""
          | args -> ", " ^ String.concat ", " (List.map io_arg_str args))
      in
      (match target with
      | Some t -> Format.fprintf ppf "%s = %s;" t call
      | None -> Format.fprintf ppf "%s;" call)
  | Io_block { blk_sem; blk_body } ->
      Format.fprintf ppf "@[<v 2>io_block(%s) {%a@]@,}" (sem_str blk_sem) pp_body blk_body
  | Dma { dma_src; dma_dst; dma_words; exclude; dma_deps } ->
      Format.fprintf ppf "%s(%s, %s, %s)%s;"
        (if exclude then "dma_copy_exclude" else "dma_copy")
        (mem_ref_str dma_src) (mem_ref_str dma_dst) (expr_to_string dma_words)
        (match dma_deps with
        | [] -> ""
        | deps -> Printf.sprintf " depends(%s)" (String.concat ", " deps))
  | Memcpy { cp_dst; cp_src; cp_words } ->
      Format.fprintf ppf "memcpy(%s, %s, %s);" (mem_ref_str cp_dst) (mem_ref_str cp_src)
        (expr_to_string cp_words)
  | Seal_dmas -> Format.fprintf ppf "__seal_pending_dma();"
  | Next t -> Format.fprintf ppf "next %s;" t
  | Stop -> Format.fprintf ppf "stop;"

and pp_body ppf stmts = List.iter (fun s -> Format.fprintf ppf "@,%a" pp_stmt s) stmts

let pp_decl ppf d =
  let space = match d.v_space with Nv -> "nv" | Vol -> "vol" in
  let size = if d.v_words = 1 then "" else Printf.sprintf "[%d]" d.v_words in
  let init =
    match d.v_init with
    | None -> ""
    | Some [| v |] -> Printf.sprintf " = %d" v
    | Some vs ->
        Printf.sprintf " = {%s}" (String.concat ", " (Array.to_list (Array.map string_of_int vs)))
  in
  Format.fprintf ppf "%s int %s%s%s;" space d.v_name size init

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s;@,@," p.p_name;
  List.iter (fun d -> Format.fprintf ppf "%a@," pp_decl d) p.p_globals;
  List.iter
    (fun t -> Format.fprintf ppf "@,@[<v 2>task %s {%a@]@,}@," t.t_name pp_body t.t_body)
    p.p_tasks;
  Format.fprintf ppf "@]"

let program_to_string p = Format.asprintf "%a" pp_program p
