open Ast
module SS = Set.Make (String)

let is_nv p name =
  match find_global p name with Some d -> d.v_space = Nv | None -> false

let nv_cpu_accesses p stmts =
  let reads = ref SS.empty and writes = ref SS.empty in
  let add_reads e =
    List.iter (fun v -> if is_nv p v then reads := SS.add v !reads) (expr_reads e [])
  in
  let add_write v = if is_nv p v then writes := SS.add v !writes in
  iter_stmts
    (fun st ->
      match st.s with
      | Assign (v, e) ->
          add_write v;
          add_reads e
      | Store (a, i, e) ->
          add_write a;
          add_reads i;
          add_reads e
      | If (c, _, _) | While (c, _) -> add_reads c
      | For (v, lo, hi, _) ->
          add_write v;
          add_reads lo;
          add_reads hi
      | Call_io { args; _ } ->
          (* scalar args are CPU reads; array args go to the peripheral *)
          List.iter (function Aexpr e -> add_reads e | Aarr _ -> ()) args
      | Dma { dma_words; dma_src; dma_dst; _ } ->
          (* only the transfer size and offsets are CPU-evaluated *)
          add_reads dma_words;
          add_reads dma_src.ref_off;
          add_reads dma_dst.ref_off
      | Memcpy { cp_words; _ } -> add_reads cp_words
      | Io_block _ | Seal_dmas | Next _ | Stop -> ())
    stmts;
  (!reads, !writes)

let war_vars p task =
  let reads, writes = nv_cpu_accesses p task.t_body in
  let war = SS.inter reads writes in
  List.filter_map
    (fun d -> if SS.mem d.v_name war then Some d.v_name else None)
    p.p_globals

let split_regions task =
  let rec go current acc = function
    | [] -> List.rev ((List.rev current, None) :: acc)
    | { s = Dma d; _ } :: rest -> go [] ((List.rev current, Some d) :: acc) rest
    | s :: rest -> go (s :: current) acc rest
  in
  go [] [] task.t_body

(* {1 Name and arity resolution} *)

(* Fixed argument counts of the built-in I/O functions; [None] means
   variadic ([Send]) or unknown (app-registered extras — unchecked). *)
let io_arity = function
  | "Temp" | "Humd" | "Pres" | "Light" -> Some 0
  | "Delay" -> Some 1
  | "Capture" -> Some 2
  | "Lea_mac" -> Some 3
  | "Lea_fir" -> Some 5
  | _ -> None

(** Name resolution: structural well-formedness ({!Ast.validate_diags})
    plus undeclared arrays (indexing, DMA and peripheral operands need
    declared globals) and built-in I/O arity. *)
let resolve p =
  let ds = ref (Ast.validate_diags p) in
  let add d = ds := !ds @ [ d ] in
  let seen_arr = Hashtbl.create 16 in
  let arr ~span ~what name =
    if not (is_global p name) && not (Hashtbl.mem seen_arr (name, what)) then begin
      Hashtbl.add seen_arr (name, what) ();
      add
        (Diagnostics.error ~code:"E0106" ~span
           ~hint:"peripherals and array indexing need a declared nv/vol global"
           "%s refers to undeclared array %s" what name)
    end
  in
  let rec expr_arrays ~span ~what = function
    | Int _ | Var _ | Get_time -> ()
    | Index (a, i) ->
        arr ~span ~what a;
        expr_arrays ~span ~what i
    | Unop (_, e) -> expr_arrays ~span ~what e
    | Binop (_, a, b) ->
        expr_arrays ~span ~what a;
        expr_arrays ~span ~what b
  in
  List.iter
    (fun t ->
      iter_stmts
        (fun st ->
          let span = st.sp in
          let e = expr_arrays ~span ~what:"expression" in
          match st.s with
          | Assign (_, rhs) -> e rhs
          | Store (a, i, v) ->
              arr ~span ~what:"array store" a;
              e i;
              e v
          | If (c, _, _) | While (c, _) -> e c
          | For (_, lo, hi, _) ->
              e lo;
              e hi
          | Call_io { io; args; _ } ->
              List.iter
                (function
                  | Aexpr ae -> e ae
                  | Aarr a -> arr ~span ~what:(Printf.sprintf "call_io(%s)" io) a)
                args;
              (match io_arity io with
              | Some n when List.length args <> n ->
                  add
                    (Diagnostics.error ~code:"E0107" ~span
                       "%s takes %d argument%s but is called with %d" io n
                       (if n = 1 then "" else "s")
                       (List.length args))
              | _ -> ())
          | Dma { dma_src; dma_dst; dma_words; _ } ->
              arr ~span ~what:"dma_copy source" dma_src.ref_arr;
              arr ~span ~what:"dma_copy destination" dma_dst.ref_arr;
              e dma_src.ref_off;
              e dma_dst.ref_off;
              e dma_words
          | Memcpy { cp_dst; cp_src; cp_words } ->
              arr ~span ~what:"memcpy destination" cp_dst.ref_arr;
              arr ~span ~what:"memcpy source" cp_src.ref_arr;
              e cp_dst.ref_off;
              e cp_src.ref_off;
              e cp_words
          | Io_block _ | Seal_dmas | Next _ | Stop -> ())
        t.t_body)
    p.p_tasks;
  !ds

(* {1 Structural support checking} *)

(* [`No_loop] — not inside a loop; [`Static] — inside one statically
   bounded [for] (annotated I/O is supported via loop-indexed lock
   arrays, §6); [`Dynamic] — inside [while], a dynamically bounded
   [for], or nested loops. *)
let supported p =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let rec walk ~loop ~nested t st =
    match st.s with
    | Call_io { sem; io; _ } when loop = `Dynamic && sem <> Easeio.Semantics.Always ->
        add
          (Diagnostics.error ~code:"E0201" ~span:st.sp
             ~hint:"use a statically bounded for loop or unroll it"
             "task %s: %s-annotated call_io(%s) inside a dynamically bounded or nested loop is \
              unsupported; use a statically bounded for loop or unroll it"
             t (Easeio.Semantics.to_string sem) io)
    | Io_block _ when loop <> `No_loop ->
        add
          (Diagnostics.error ~code:"E0202" ~span:st.sp
             "task %s: io_block inside a loop is unsupported" t);
        (* still walk the body for further findings *)
        (match st.s with
        | Io_block { blk_body; _ } -> List.iter (walk ~loop ~nested:true t) blk_body
        | _ -> ())
    | Dma _ ->
        if loop <> `No_loop || nested then
          add
            (Diagnostics.error ~code:"E0203" ~span:st.sp
               ~hint:"regions are cut at top-level DMA statements (§4.4)"
               "task %s: _DMA_copy must be a top-level task statement (regions)" t)
    | If (_, a, b) ->
        List.iter (walk ~loop ~nested:true t) a;
        List.iter (walk ~loop ~nested:true t) b
    | While (_, b) -> List.iter (walk ~loop:`Dynamic ~nested:true t) b
    | For (_, lo, hi, b) ->
        let inner =
          match (loop, lo, hi) with
          | `No_loop, Int _, Int _ -> `Static
          | _ -> `Dynamic
        in
        List.iter (walk ~loop:inner ~nested:true t) b
    | Io_block { blk_body; _ } -> List.iter (walk ~loop ~nested:true t) blk_body
    | Assign _ | Store _ | Call_io _ | Memcpy _ | Seal_dmas | Next _ | Stop -> ()
  in
  List.iter
    (fun task -> List.iter (walk ~loop:`No_loop ~nested:false task.t_name) task.t_body)
    p.p_tasks;
  List.rev !ds

(** Legacy entry point: raises {!Ast.Error} with {e every} violation
    (one message per line), never just the first. *)
let check_supported p =
  match supported p with
  | [] -> ()
  | ds -> raise (Error (String.concat "\n" (List.map (fun d -> d.Diagnostics.message) ds)))
