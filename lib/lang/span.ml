(** Source locations for the task language.

    Positions are 1-based line/column pairs; a span covers an inclusive
    range of characters. Statements and declarations synthesized by the
    compiler (guards, privatization code) carry the {!ghost} span, which
    renderers treat as "no source excerpt available". *)

type pos = { line : int; col : int }

type t = { s : pos; e : pos }

let ghost = { s = { line = 0; col = 0 }; e = { line = 0; col = 0 } }
let is_ghost sp = sp.s.line = 0

let make ~s ~e = { s; e }

(** Cover of two spans (in source order); ghost operands are ignored so
    merging a synthesized piece into a located one keeps the location. *)
let merge a b =
  if is_ghost a then b
  else if is_ghost b then a
  else { s = a.s; e = b.e }

let to_string sp =
  if is_ghost sp then "<generated>"
  else if sp.s.line = sp.e.line then Printf.sprintf "%d:%d-%d" sp.s.line sp.s.col sp.e.col
  else Printf.sprintf "%d:%d-%d:%d" sp.s.line sp.s.col sp.e.line sp.e.col
