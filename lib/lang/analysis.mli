(** Compile-time analyses over task-language programs.

    These are the analyses the EaseIO front-end (and the baseline
    runtimes' compilers) perform:

    - {b CPU-visible non-volatile accesses}: which NV globals a piece of
      code reads/writes through the CPU. DMA transfers and peripheral
      array arguments are deliberately excluded — neither Alpaca's nor
      InK's idempotency analysis can see them, which is what makes
      re-executed DMA unsafe (§2.1.2).
    - {b WAR variables}: NV globals both read and written by a task's
      CPU code; these are the variables the baselines privatize.
    - {b Region splitting}: cut a task body at its top-level [_DMA_copy]
      statements into N+1 regions (§4.4).
    - {b Name resolution}: undeclared arrays and built-in I/O arity,
      plus the structural checks of {!Ast.validate_diags} ([E01xx]).
    - {b Support checking}: the front-end's structural restrictions
      (Single/Timely operations inside loops need the loop-indexed
      extension; DMA must be a top-level statement so regions are
      well-defined) — reported as [E02xx] diagnostics, {e all} of them,
      not just the first. *)

module SS : Set.S with type elt = string

val nv_cpu_accesses : Ast.program -> Ast.stmt list -> SS.t * SS.t
(** [(reads, writes)] of non-volatile globals by CPU code. *)

val war_vars : Ast.program -> Ast.task -> string list
(** NV globals with a CPU-visible WAR dependence in the task (read and
    written), in declaration order. *)

val split_regions : Ast.task -> (Ast.stmt list * Ast.dma option) list
(** Top-level region decomposition: each element is a run of statements
    followed by the DMA that terminates it ([None] for the final
    region). A task with N top-level DMA statements yields N+1
    regions. *)

val io_arity : string -> int option
(** Fixed argument count of a built-in I/O function; [None] for
    variadic ([Send]) or app-registered names. *)

val resolve : Ast.program -> Diagnostics.t list
(** Name-resolution diagnostics ([E0101]–[E0108]): structural
    well-formedness, undeclared arrays, built-in arity. *)

val supported : Ast.program -> Diagnostics.t list
(** Structural-support diagnostics ([E0201]–[E0203]), all violations
    collected in source order. *)

val check_supported : Ast.program -> unit
(** Raises {!Ast.Error} carrying {e every} violation message (one per
    line) when the program uses constructs the front-end cannot
    transform (annotated I/O inside [while]/[for], DMA nested in
    control flow). *)
