(** Campaign progress reporter and serialized stderr logging.

    One mutex guards all stderr output from this module: the heartbeat
    rewrites a single line in place, and {!log} terminates any active
    heartbeat line before printing, so messages never interleave
    mid-line under [--jobs > 1]. Ticks are thread-safe and touch no
    run state — attaching progress cannot perturb results. *)

type mode =
  | Off
  | Stderr  (** single rewritten heartbeat line *)
  | Jsonl  (** one compact JSON object per heartbeat line *)
  | Sink of (string -> unit)
      (** each heartbeat is formatted as the [Jsonl] object (without
          the trailing newline) and handed to the callback instead of
          stderr — used by the campaign server to forward heartbeats
          as socket frames. The callback runs under the module mutex:
          keep it quick and never let it raise. *)

val mode_of_string : string -> (mode, string) result
(** Accepts ["off"], ["stderr"] and ["json"] (plus aliases ["none"],
    ["bar"], ["jsonl"]). *)

val log : ('a, unit, string, unit) format4 -> 'a
(** Serialized, flushed stderr line (a newline is appended). Use this
    instead of [Printf.eprintf] anywhere that can run concurrently
    with a heartbeat. *)

type t

val create : ?interval_s:float -> ?total:int -> mode -> label:string -> t
(** [interval_s] rate-limits heartbeats (default 0.5 s). [total] is
    the expected cell count (settable later via {!set_total}). *)

val set_total : t -> int -> unit

val add_total : t -> int -> unit
(** Grow the expected total as work is discovered (a campaign learns
    each cell's sweep size only after its golden run). *)

val tick : ?runs:int -> t -> unit
(** One cell finished; [runs] is how many simulator runs it contained
    (feeds the runs/s rate, default 1). *)

val finish : t -> unit
(** Emit a final heartbeat ([Stderr]: terminated with a newline;
    [Jsonl]: with a ["done": true] field). *)
