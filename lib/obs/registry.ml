(* One process-global name table per metric kind. Instrumented code
   interns its metric name once (usually in a module-level [let]) and
   pays only an array index per update; the registry itself is touched
   on the cold path only. The mutex makes interning safe from worker
   domains, but note that id ASSIGNMENT ORDER is then racy across
   domains — which is why [Snapshot] canonicalizes by name, never by
   id, before anything is merged or printed. *)

type kind = Counter | Hist

(* Histogram bucket edges are fixed, global and log-10 spaced: merging
   two histograms is element-wise integer addition, which is exact and
   associative regardless of how a campaign was sharded. The range
   covers everything the simulator measures in µs or words: from a
   single flag check (<10) to a multi-minute campaign aggregate. *)
let edges = [| 10; 100; 1_000; 10_000; 100_000; 1_000_000 |]
let buckets = Array.length edges + 1

let bucket v =
  let rec go i = if i >= Array.length edges || v < edges.(i) then i else go (i + 1) in
  go 0

let bucket_label i =
  if i = 0 then Printf.sprintf "<%d" edges.(0)
  else if i = buckets - 1 then Printf.sprintf ">=%d" edges.(i - 1)
  else Printf.sprintf "%d-%d" edges.(i - 1) edges.(i)

type table = {
  mutable names : string array;
  mutable count : int;
  ids : (string, int) Hashtbl.t;
}

let make_table () = { names = Array.make 64 ""; count = 0; ids = Hashtbl.create 64 }
let counters_tbl = make_table ()
let hists_tbl = make_table ()
let lock = Mutex.create ()

let intern tbl name =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt tbl.ids name with
    | Some id -> id
    | None ->
        let id = tbl.count in
        if id >= Array.length tbl.names then begin
          let grown = Array.make (2 * Array.length tbl.names) "" in
          Array.blit tbl.names 0 grown 0 id;
          tbl.names <- grown
        end;
        tbl.names.(id) <- name;
        tbl.count <- id + 1;
        Hashtbl.replace tbl.ids name id;
        id
  in
  Mutex.unlock lock;
  id

let counter name = intern counters_tbl name
let hist name = intern hists_tbl name

let name_of tbl id =
  Mutex.lock lock;
  let n = if id < tbl.count then tbl.names.(id) else invalid_arg "Obs.Registry: unknown id" in
  Mutex.unlock lock;
  n

let counter_name id = name_of counters_tbl id
let hist_name id = name_of hists_tbl id

let size tbl =
  Mutex.lock lock;
  let n = tbl.count in
  Mutex.unlock lock;
  n

let counters () = size counters_tbl
let hists () = size hists_tbl
