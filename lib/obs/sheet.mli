(** Per-run mutable metric scratchpad.

    A sheet is owned by a single run: updates are unsynchronized array
    stores indexed by {!Registry} id, costing an array write on the
    hot path (plus a rare grow when the registry gained names since
    the sheet was created). Snapshotting and merging live in
    {!Snapshot}; a sheet itself never crosses domains. *)

type t

val create : unit -> t

val bump : t -> int -> unit
(** [bump t id] increments counter [id] by one. *)

val add : t -> int -> int -> unit
(** [add t id n] increments counter [id] by [n]. *)

val observe : t -> int -> int -> unit
(** [observe t id v] adds one sample of value [v] to histogram [id]
    (bucketed by {!Registry.bucket}). *)

val copy : t -> t
(** Deep copy. Prefix-resume drivers copy the pacer run's sheet at
    each checkpoint so every resumed case starts from the prefix's
    exact totals. *)

val reset : t -> unit
(** Zero every row, keeping the allocations. *)

val counter : t -> int -> int
(** Current value of a counter (0 if never touched). *)

val fold_counters : t -> ('a -> string -> int -> 'a) -> 'a -> 'a
(** Fold over non-zero counters in id order, resolving names. *)

val fold_hists : t -> ('a -> string -> int array -> 'a) -> 'a -> 'a
(** Fold over non-empty histograms in id order; rows are copies. *)
