(** Process-global metric name registry.

    Instrumented modules intern each metric name once ([counter] /
    [hist] are idempotent) and update a {!Sheet} by dense integer id —
    the hot path never touches a hash table. Interning is
    mutex-protected and safe from worker domains, but id assignment
    order may differ between domains; {!Snapshot} therefore
    canonicalizes by name before merging, and ids must never appear in
    output. *)

type kind = Counter | Hist

val edges : int array
(** Global log-10 histogram bucket edges. Fixed edges make histogram
    merge an element-wise integer sum — exact and associative, so any
    [--jobs] sharding of a campaign yields the identical merged
    histogram. *)

val buckets : int
(** [Array.length edges + 1]: one bucket below each edge plus an
    overflow bucket. *)

val bucket : int -> int
(** Bucket index for an observed value. *)

val bucket_label : int -> string
(** Human label, e.g. ["10-100"] or [">=1000000"]. Unitless — the
    metric name carries the unit suffix (["_us"], ["_words"]). *)

val counter : string -> int
(** Intern a counter name; returns its dense id. *)

val hist : string -> int
(** Intern a histogram name; ids are a separate space from counters. *)

val counter_name : int -> string
val hist_name : int -> string

val counters : unit -> int
(** Number of counter names registered so far. *)

val hists : unit -> int
