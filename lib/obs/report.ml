(* Diffing two bench documents with per-metric tolerances — the perf
   gate behind [easeio report --check].

   The simulator is deterministic, so most numbers in
   BENCH_results.json reproduce exactly and even the generous default
   tolerance catches a real regression (like the interp→vm cliff PR 6
   chased by hand). Wall-clock-derived numbers (throughput,
   calibration, *_wall_s) are host-dependent: throughput gets a wide
   multiplicative band and pure timing metadata is informational only.

   Documents are flattened to [path -> leaf] rows. Arrays of records
   are keyed by the record's string fields (["runtime"], ["buffering"],
   …) rather than position, so reordering or appending rows diffs
   cleanly; colliding keys get a [#n] suffix. *)

type tol = {
  rel : float;  (* one-sided relative slack for simulated metrics *)
  abs : float;  (* absolute floor so tiny integers don't trip [rel] *)
  wall_factor : float;  (* allowed throughput slowdown factor *)
}

let default_tol = { rel = 0.75; abs = 1.0; wall_factor = 4.0 }

type level = Note | Regression

type finding = { path : string; base : string; cur : string; level : level; detail : string }

(* {1 Flattening} *)

let path_append path k = if path = "" then k else path ^ "." ^ k

let item_key seen i (item : Trace.Json.t) =
  let base =
    match item with
    | Trace.Json.Obj fields ->
        let strs =
          List.filter_map
            (fun (_, v) -> match v with Trace.Json.String s -> Some s | _ -> None)
            fields
        in
        if strs = [] then string_of_int i else String.concat "/" strs
    | _ -> string_of_int i
  in
  let n = (match Hashtbl.find_opt seen base with Some n -> n | None -> 0) + 1 in
  Hashtbl.replace seen base n;
  if n = 1 then base else Printf.sprintf "%s#%d" base n

let flatten doc =
  let rows = ref [] in
  let rec go path (v : Trace.Json.t) =
    match v with
    | Trace.Json.Obj fields -> List.iter (fun (k, v) -> go (path_append path k) v) fields
    | Trace.Json.List items ->
        let seen = Hashtbl.create 8 in
        List.iteri (fun i item -> go (path_append path (item_key seen i item)) item) items
    | leaf -> rows := (path, leaf) :: !rows
  in
  go "" doc;
  List.rev !rows

(* {1 Classification} *)

let last_seg path =
  match String.rindex_opt path '.' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let ends_with suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let contains sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  ls = 0 || go 0

(* Population/config counts and anything measured in host wall time:
   report deltas but never fail on them. *)
let informational path =
  let name = last_seg path in
  starts_with "meta." path
  || starts_with "experiment_wall_s." path
  || contains "calibration" path
  || ends_with "_wall_s" name
  || List.mem name
       [
         "schema_version";
         "reps";
         "jobs";
         "recommended_domains";
         "seed";
         "runs";
         "count";
         "cases";
         "boundaries";
       ]

let throughput path = ends_with "_runs_per_s" (last_seg path)

(* {1 Diff} *)

let num_repr (v : Trace.Json.t) =
  match v with
  | Trace.Json.Int i -> string_of_int i
  | Trace.Json.Float f -> Printf.sprintf "%.6g" f
  | Trace.Json.String s -> Printf.sprintf "%S" s
  | Trace.Json.Bool b -> string_of_bool b
  | Trace.Json.Null -> "null"
  | _ -> "<composite>"

let as_number (v : Trace.Json.t) =
  match v with
  | Trace.Json.Int i -> Some (float_of_int i)
  | Trace.Json.Float f -> Some f
  | _ -> None

let pct base cur = if base = 0. then None else Some ((cur -. base) /. Float.abs base *. 100.)

let delta_str base cur =
  match pct base cur with
  | Some p -> Printf.sprintf "%+.1f%%" p
  | None -> Printf.sprintf "%+.6g" (cur -. base)

let compare_row tol path bv cv =
  match (as_number bv, as_number cv) with
  | Some b, Some c when b = c -> None
  | Some b, Some c ->
      let d = delta_str b c in
      if informational path then Some { path; base = num_repr bv; cur = num_repr cv; level = Note; detail = d ^ " (informational)" }
      else if throughput path then
        (* higher is better; host-dependent, so only a gross collapse
           (beyond 1/wall_factor of the baseline) fails *)
        if c < b /. tol.wall_factor then
          Some
            {
              path;
              base = num_repr bv;
              cur = num_repr cv;
              level = Regression;
              detail = Printf.sprintf "%s (slower than 1/%.0fx throughput band)" d tol.wall_factor;
            }
        else Some { path; base = num_repr bv; cur = num_repr cv; level = Note; detail = d ^ " (within throughput band)" }
      else if
        (* lower is better for simulated metrics (time, energy,
           redundant I/O, incorrect runs); improvements never fail *)
        c > b +. (tol.rel *. Float.abs b) +. tol.abs
      then
        Some
          {
            path;
            base = num_repr bv;
            cur = num_repr cv;
            level = Regression;
            detail = Printf.sprintf "%s (over +%.0f%% + %.3g tolerance)" d (tol.rel *. 100.) tol.abs;
          }
      else Some { path; base = num_repr bv; cur = num_repr cv; level = Note; detail = d }
  | _ ->
      if bv = cv then None
      else
        Some
          { path; base = num_repr bv; cur = num_repr cv; level = Note; detail = "value changed" }

let diff ?(tol = default_tol) ~base ~cur () =
  let base_rows = flatten base and cur_rows = flatten cur in
  let base_tbl = Hashtbl.create 256 in
  List.iter (fun (p, v) -> Hashtbl.replace base_tbl p v) base_rows;
  let findings = ref [] in
  let push f = findings := f :: !findings in
  List.iter
    (fun (p, cv) ->
      match Hashtbl.find_opt base_tbl p with
      | Some bv ->
          Hashtbl.remove base_tbl p;
          Option.iter push (compare_row tol p bv cv)
      | None -> push { path = p; base = "-"; cur = num_repr cv; level = Note; detail = "new metric" })
    cur_rows;
  (* rows only in the baseline, in their original order *)
  List.iter
    (fun (p, bv) ->
      if Hashtbl.mem base_tbl p then
        push { path = p; base = num_repr bv; cur = "-"; level = Note; detail = "metric removed" })
    base_rows;
  List.rev !findings

let regressions findings = List.filter (fun f -> f.level = Regression) findings
let rows doc = List.map (fun (p, v) -> (p, num_repr v)) (flatten doc)

let render findings =
  if findings = [] then "no differences\n"
  else begin
    let buf = Buffer.create 1024 in
    let w_path = List.fold_left (fun w f -> max w (String.length f.path)) 4 findings in
    let w_base = List.fold_left (fun w f -> max w (String.length f.base)) 4 findings in
    let w_cur = List.fold_left (fun w f -> max w (String.length f.cur)) 3 findings in
    Buffer.add_string buf
      (Printf.sprintf "%-*s  %*s  %*s  %s\n" w_path "path" w_base "base" w_cur "new" "delta");
    List.iter
      (fun f ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %*s  %*s  %s%s\n" w_path f.path w_base f.base w_cur f.cur
             f.detail
             (match f.level with Regression -> "  <-- REGRESSION" | Note -> "")))
      findings;
    let regs = List.length (regressions findings) in
    Buffer.add_string buf
      (if regs = 0 then Printf.sprintf "%d differences, no regressions\n" (List.length findings)
       else Printf.sprintf "%d differences, %d REGRESSIONS\n" (List.length findings) regs);
    Buffer.contents buf
  end
