(** Campaign attribution profiles: per-task and per-I/O-site
    time/energy/redundancy aggregated over a whole sweep.

    A collector folds [Trace.Event] streams in place — attach {!sink}
    to each run of a campaign and only the aggregate is retained, so
    memory stays O(tasks + sites) however many runs the sweep has.
    Freeze with {!profile}; combine shards with {!merge}.

    Integer µs fields merge exactly and are checked by {!reconcile}
    against summed [Kernel.Metrics], mirroring [Trace.Profile]'s
    single-run reconciliation. Energy fields are floats, so profiles
    must be merged in a fixed fold order (campaigns use seed/schedule
    order) to stay deterministic. *)

type task = {
  task : string;
  commits : int;
  aborts : int;
  app_us : int;
  ovh_us : int;
  wasted_us : int;
  app_nj : float;
  ovh_nj : float;
  wasted_nj : float;
}

type site = { site : string; kind : string; sem : string; execs : int; replays : int; skips : int }

type profile = {
  tasks : task list;  (** sorted by task name *)
  sites : site list;  (** sorted by site name *)
  boots : int;
  power_failures : int;
  runs : int;
  phases : (string * int) list;
      (** sorted by name; driver-level µs buckets (e.g. the explorer's
          [explore] phase) — emitted as extra flamegraph frames, not
          part of the simulated-time {!reconcile} *)
}

val empty : profile

type t
(** A mutable collector (single-domain use only). *)

val create : unit -> t

val sink : t -> Trace.Event.sink
(** The event consumer to install via [Platform.Machine.set_sink] (or
    compose with other sinks). Pure observation: folding an event
    never touches the machine. *)

val add_run : t -> unit
(** Count one completed run into the profile's [runs] field. *)

val add_phase : t -> string -> int -> unit
(** [add_phase t name us] accumulates driver-level time into the named
    phase bucket (shows up as a [prefix;phase;name] flamegraph frame). *)

val profile : t -> profile
(** Freeze the collector into a canonical (name-sorted) profile. The
    collector remains usable. *)

val merge : profile -> profile -> profile
(** Sum two profiles. Exact for the int fields; the float energy sums
    depend on fold order, so always merge shards in a fixed order. *)

val total_app_us : profile -> int
val total_ovh_us : profile -> int
val total_wasted_us : profile -> int
val total_commits : profile -> int
val total_attempts : profile -> int

val reconcile :
  profile ->
  app_us:int ->
  ovh_us:int ->
  wasted_us:int ->
  commits:int ->
  attempts:int ->
  (unit, string) result
(** Exact integer cross-check against summed [Kernel.Metrics] totals
    for the same set of runs. *)

val to_folded : ?prefix:string -> profile -> string
(** Folded-stack flamegraph text ([frames... weight] lines, one per
    [task × {app,overhead,wasted}] cell, weight in µs). Frame totals
    sum exactly to the µs totals {!reconcile} checks. *)

val perfetto_counters : (string * int array) list -> Trace.Json.t
(** Chrome/Perfetto counter tracks for per-cell series across a sweep.
    The timestamp axis is the logical cell index (not wall time), so
    the export is identical for any [--jobs]. *)

val to_json : profile -> Trace.Json.t
