(* The per-run mutable scratchpad. One sheet belongs to exactly one
   run (or one sequentially-folded campaign shard), so updates are
   plain unsynchronized array stores — the same discipline as
   [Platform.Machine]'s event counters. Rows grow on demand because
   the registry keeps interning lazily as new code paths are hit. *)

type t = { mutable c : int array; mutable h : int array array }

let create () = { c = Array.make 32 0; h = Array.make 8 [||] }

let ensure_counter t id =
  if id >= Array.length t.c then begin
    let grown = Array.make (max (2 * Array.length t.c) (id + 1)) 0 in
    Array.blit t.c 0 grown 0 (Array.length t.c);
    t.c <- grown
  end

let ensure_hist t id =
  if id >= Array.length t.h then begin
    let grown = Array.make (max (2 * Array.length t.h) (id + 1)) [||] in
    Array.blit t.h 0 grown 0 (Array.length t.h);
    t.h <- grown
  end;
  if Array.length t.h.(id) = 0 then t.h.(id) <- Array.make Registry.buckets 0

let add t id n =
  ensure_counter t id;
  t.c.(id) <- t.c.(id) + n

let bump t id = add t id 1

let observe t id v =
  ensure_hist t id;
  let row = t.h.(id) in
  let b = Registry.bucket v in
  row.(b) <- row.(b) + 1

(* Deep copy, for forking a metering context at a snapshot point: the
   prefix-resume drivers copy the pacer's sheet at each checkpoint so
   every resumed case starts from the prefix's exact totals. *)
let copy t = { c = Array.copy t.c; h = Array.map Array.copy t.h }

let reset t =
  Array.fill t.c 0 (Array.length t.c) 0;
  Array.iter (fun row -> if Array.length row > 0 then Array.fill row 0 (Array.length row) 0) t.h

let counter t id = if id < Array.length t.c then t.c.(id) else 0

let fold_counters t f acc =
  let acc = ref acc in
  let n = min (Array.length t.c) (Registry.counters ()) in
  for id = 0 to n - 1 do
    if t.c.(id) <> 0 then acc := f !acc (Registry.counter_name id) t.c.(id)
  done;
  !acc

let fold_hists t f acc =
  let acc = ref acc in
  let n = min (Array.length t.h) (Registry.hists ()) in
  for id = 0 to n - 1 do
    let row = t.h.(id) in
    if Array.length row > 0 && Array.exists (fun x -> x <> 0) row then
      acc := f !acc (Registry.hist_name id) (Array.copy row)
  done;
  !acc
