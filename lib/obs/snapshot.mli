(** Immutable, canonical metric snapshots.

    A snapshot is a name-sorted association of integer counters and
    fixed-edge integer histograms, with zero rows dropped. Because
    every value is an int and the bucket edges are global
    ({!Registry.edges}), {!merge} is exact and associative — merging
    per-run snapshots in seed order yields byte-identical output for
    any worker count, which is the determinism contract campaigns rely
    on. Floats (energy) deliberately live in {!Attr}, whose merges are
    always performed in a fixed fold order instead. *)

type t = { counters : (string * int) list; hists : (string * int array) list }
(** Exposed for tests and renderers; construct via {!make},
    {!of_sheet} or {!merge} so invariants hold. *)

val zero : t

val make : counters:(string * int) list -> hists:(string * int array) list -> t
(** Canonicalize arbitrary rows: sort by name, sum duplicates, drop
    zeros. Histogram rows are copied. *)

val of_sheet : ?events:(string * int) list -> Sheet.t -> t
(** Freeze a sheet. [events] (typically [Platform.Machine.events])
    are folded in as counters under an ["event/"] prefix, giving
    peripheral activity (radio sends, DMA interrupts, I/O executions)
    registry coverage without instrumenting each peripheral. *)

val merge : t -> t -> t
(** Exact element-wise sum; associative and commutative, [zero] is the
    identity. *)

val counter : t -> string -> int
(** Value of a counter, 0 when absent. *)

val equal : t -> t -> bool

val to_json : t -> Trace.Json.t
val of_json : Trace.Json.t -> (t, string) result

val render : t -> string
(** Human-readable text table (used by [easeio report FILE]). *)
