(* Campaign-scale attribution: where a whole sweep's time, energy and
   redundant I/O went, per task and per I/O site. A collector is a
   fold over [Trace.Event] streams — attach [sink] to each run and the
   events are aggregated in place, so a 10^4-run campaign never holds
   more than one run's worth of events (contrast [Trace.Profile],
   which stores the event list of a single run).

   Energy is a float, and float addition is not associative — so
   unlike [Snapshot], profiles must only ever be merged in a fixed
   fold order (campaigns fold per-case profiles in schedule order,
   then per-cell profiles in sweep order). The integer µs fields are
   what [reconcile] checks exactly. *)

type task = {
  task : string;
  commits : int;
  aborts : int;
  app_us : int;
  ovh_us : int;
  wasted_us : int;
  app_nj : float;
  ovh_nj : float;
  wasted_nj : float;
}

type site = { site : string; kind : string; sem : string; execs : int; replays : int; skips : int }

type profile = {
  tasks : task list;  (* sorted by task name *)
  sites : site list;  (* sorted by site name *)
  boots : int;
  power_failures : int;
  runs : int;
  phases : (string * int) list;
      (* sorted by phase name; driver-level µs buckets (e.g. the
         explorer's own bookkeeping vs simulated time) — flamegraph
         frames only, excluded from [reconcile] which checks simulated
         machine time *)
}

let empty = { tasks = []; sites = []; boots = 0; power_failures = 0; runs = 0; phases = [] }

(* {1 Collector} *)

type task_row = {
  mutable r_commits : int;
  mutable r_aborts : int;
  mutable r_app_us : int;
  mutable r_ovh_us : int;
  mutable r_wasted_us : int;
  mutable r_app_nj : float;
  mutable r_ovh_nj : float;
  mutable r_wasted_nj : float;
}

type site_row = {
  s_kind : string;
  s_sem : string;
  mutable s_execs : int;
  mutable s_replays : int;
  mutable s_skips : int;
}

type t = {
  task_rows : (string, task_row) Hashtbl.t;
  site_rows : (string, site_row) Hashtbl.t;
  phase_rows : (string, int ref) Hashtbl.t;
  mutable c_boots : int;
  mutable c_pf : int;
  mutable c_runs : int;
}

let create () =
  {
    task_rows = Hashtbl.create 16;
    site_rows = Hashtbl.create 32;
    phase_rows = Hashtbl.create 4;
    c_boots = 0;
    c_pf = 0;
    c_runs = 0;
  }

let task_row t name =
  match Hashtbl.find_opt t.task_rows name with
  | Some r -> r
  | None ->
      let r =
        {
          r_commits = 0;
          r_aborts = 0;
          r_app_us = 0;
          r_ovh_us = 0;
          r_wasted_us = 0;
          r_app_nj = 0.;
          r_ovh_nj = 0.;
          r_wasted_nj = 0.;
        }
      in
      Hashtbl.replace t.task_rows name r;
      r

let sink t (e : Trace.Event.t) =
  match e.payload with
  | Trace.Event.Boot _ -> t.c_boots <- t.c_boots + 1
  | Trace.Event.Power_failure _ -> t.c_pf <- t.c_pf + 1
  | Trace.Event.Task_commit { task; app_us; ovh_us; app_nj; ovh_nj; _ } ->
      let r = task_row t task in
      r.r_commits <- r.r_commits + 1;
      r.r_app_us <- r.r_app_us + app_us;
      r.r_ovh_us <- r.r_ovh_us + ovh_us;
      r.r_app_nj <- r.r_app_nj +. app_nj;
      r.r_ovh_nj <- r.r_ovh_nj +. ovh_nj
  | Trace.Event.Task_abort { task; app_us; ovh_us; app_nj; ovh_nj; _ } ->
      let r = task_row t task in
      r.r_aborts <- r.r_aborts + 1;
      r.r_wasted_us <- r.r_wasted_us + app_us + ovh_us;
      r.r_wasted_nj <- r.r_wasted_nj +. app_nj +. ovh_nj
  | Trace.Event.Io { site; kind; sem; decision; _ } ->
      let s =
        match Hashtbl.find_opt t.site_rows site with
        | Some s -> s
        | None ->
            let s =
              {
                s_kind = kind;
                s_sem = Trace.Event.sem_name sem;
                s_execs = 0;
                s_replays = 0;
                s_skips = 0;
              }
            in
            Hashtbl.replace t.site_rows site s;
            s
      in
      (match decision with
      | Trace.Event.Exec -> s.s_execs <- s.s_execs + 1
      | Trace.Event.Replay -> s.s_replays <- s.s_replays + 1
      | Trace.Event.Skip -> s.s_skips <- s.s_skips + 1)
  | _ -> ()

let add_run t = t.c_runs <- t.c_runs + 1

let add_phase t name us =
  match Hashtbl.find_opt t.phase_rows name with
  | Some r -> r := !r + us
  | None -> Hashtbl.replace t.phase_rows name (ref us)

let profile t =
  {
    tasks =
      List.sort
        (fun a b -> compare a.task b.task)
        (Hashtbl.fold
           (fun name r acc ->
             {
               task = name;
               commits = r.r_commits;
               aborts = r.r_aborts;
               app_us = r.r_app_us;
               ovh_us = r.r_ovh_us;
               wasted_us = r.r_wasted_us;
               app_nj = r.r_app_nj;
               ovh_nj = r.r_ovh_nj;
               wasted_nj = r.r_wasted_nj;
             }
             :: acc)
           t.task_rows []);
    sites =
      List.sort
        (fun a b -> compare a.site b.site)
        (Hashtbl.fold
           (fun name s acc ->
             {
               site = name;
               kind = s.s_kind;
               sem = s.s_sem;
               execs = s.s_execs;
               replays = s.s_replays;
               skips = s.s_skips;
             }
             :: acc)
           t.site_rows []);
    boots = t.c_boots;
    power_failures = t.c_pf;
    runs = t.c_runs;
    phases =
      List.sort compare (Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.phase_rows []);
  }

(* {1 Profiles} *)

(* Merge preserves name-sorted order. NOT order-insensitive for the nj
   floats — callers must fold shards in a fixed order (Pool.map
   returns results in seed order precisely so this is easy). *)
let merge a b =
  let rec tasks xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (x : task) :: xs', (y : task) :: ys' ->
        let c = compare x.task y.task in
        if c < 0 then x :: tasks xs' ys
        else if c > 0 then y :: tasks xs ys'
        else
          {
            task = x.task;
            commits = x.commits + y.commits;
            aborts = x.aborts + y.aborts;
            app_us = x.app_us + y.app_us;
            ovh_us = x.ovh_us + y.ovh_us;
            wasted_us = x.wasted_us + y.wasted_us;
            app_nj = x.app_nj +. y.app_nj;
            ovh_nj = x.ovh_nj +. y.ovh_nj;
            wasted_nj = x.wasted_nj +. y.wasted_nj;
          }
          :: tasks xs' ys'
  in
  let rec sites xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (x : site) :: xs', (y : site) :: ys' ->
        let c = compare x.site y.site in
        if c < 0 then x :: sites xs' ys
        else if c > 0 then y :: sites xs ys'
        else
          {
            site = x.site;
            kind = x.kind;
            sem = x.sem;
            execs = x.execs + y.execs;
            replays = x.replays + y.replays;
            skips = x.skips + y.skips;
          }
          :: sites xs' ys'
  in
  let rec phases xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | ((xn, xv) as x) :: xs', ((yn, yv) as y) :: ys' ->
        let c = compare xn yn in
        if c < 0 then x :: phases xs' ys
        else if c > 0 then y :: phases xs ys'
        else (xn, xv + yv) :: phases xs' ys'
  in
  {
    tasks = tasks a.tasks b.tasks;
    sites = sites a.sites b.sites;
    boots = a.boots + b.boots;
    power_failures = a.power_failures + b.power_failures;
    runs = a.runs + b.runs;
    phases = phases a.phases b.phases;
  }

let total_app_us p = List.fold_left (fun acc (t : task) -> acc + t.app_us) 0 p.tasks
let total_ovh_us p = List.fold_left (fun acc (t : task) -> acc + t.ovh_us) 0 p.tasks
let total_wasted_us p = List.fold_left (fun acc (t : task) -> acc + t.wasted_us) 0 p.tasks
let total_commits p = List.fold_left (fun acc (t : task) -> acc + t.commits) 0 p.tasks
let total_attempts p = List.fold_left (fun acc (t : task) -> acc + t.commits + t.aborts) 0 p.tasks

let reconcile p ~app_us ~ovh_us ~wasted_us ~commits ~attempts =
  let check name expected got =
    if expected = got then Ok ()
    else Error (Printf.sprintf "%s: metrics say %d, profile says %d" name expected got)
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = check "useful app us" app_us (total_app_us p) in
  let* () = check "useful overhead us" ovh_us (total_ovh_us p) in
  let* () = check "wasted us" wasted_us (total_wasted_us p) in
  let* () = check "commits" commits (total_commits p) in
  check "attempts" attempts (total_attempts p)

(* {1 Exports} *)

(* Folded-stack format for flamegraph.pl / speedscope: one line per
   stack, semicolon-separated frames, space, integer weight. We use µs
   as the weight so frame totals reconcile exactly with the summed
   Kernel.Metrics — the same invariant [reconcile] checks. *)
let to_folded ?(prefix = "campaign") p =
  let buf = Buffer.create 1024 in
  let line frames v =
    if v > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" (String.concat ";" frames) v)
  in
  List.iter
    (fun (t : task) ->
      line [ prefix; t.task; "app" ] t.app_us;
      line [ prefix; t.task; "overhead" ] t.ovh_us;
      line [ prefix; t.task; "wasted" ] t.wasted_us)
    p.tasks;
  List.iter (fun (name, us) -> line [ prefix; "phase"; name ] us) p.phases;
  Buffer.contents buf

(* Perfetto counter tracks over a sweep: the timestamp axis is the
   LOGICAL cell index, never wall time — wall time depends on --jobs
   and host load, cell index does not, so the export stays
   byte-identical across worker counts. *)
let perfetto_counters series =
  let out = ref [] in
  List.iter
    (fun (name, values) ->
      Array.iteri
        (fun i v ->
          out :=
            Trace.Json.Obj
              [
                ("name", Trace.Json.String name);
                ("ph", Trace.Json.String "C");
                ("ts", Trace.Json.Int i);
                ("pid", Trace.Json.Int 0);
                ("args", Trace.Json.Obj [ ("value", Trace.Json.Int v) ]);
              ]
            :: !out)
        values)
    series;
  Trace.Json.Obj
    [
      ("traceEvents", Trace.Json.List (List.rev !out));
      ("displayTimeUnit", Trace.Json.String "ms");
    ]

let task_json (t : task) =
  Trace.Json.Obj
    [
      ("task", Trace.Json.String t.task);
      ("commits", Trace.Json.Int t.commits);
      ("aborts", Trace.Json.Int t.aborts);
      ("app_us", Trace.Json.Int t.app_us);
      ("overhead_us", Trace.Json.Int t.ovh_us);
      ("wasted_us", Trace.Json.Int t.wasted_us);
      ("app_nj", Trace.Json.Float t.app_nj);
      ("overhead_nj", Trace.Json.Float t.ovh_nj);
      ("wasted_nj", Trace.Json.Float t.wasted_nj);
    ]

let site_json (s : site) =
  Trace.Json.Obj
    [
      ("site", Trace.Json.String s.site);
      ("kind", Trace.Json.String s.kind);
      ("sem", Trace.Json.String s.sem);
      ("exec", Trace.Json.Int s.execs);
      ("replay", Trace.Json.Int s.replays);
      ("skip", Trace.Json.Int s.skips);
    ]

let to_json p =
  Trace.Json.Obj
    [
      ("runs", Trace.Json.Int p.runs);
      ("boots", Trace.Json.Int p.boots);
      ("power_failures", Trace.Json.Int p.power_failures);
      ("app_us", Trace.Json.Int (total_app_us p));
      ("overhead_us", Trace.Json.Int (total_ovh_us p));
      ("wasted_us", Trace.Json.Int (total_wasted_us p));
      ("commits", Trace.Json.Int (total_commits p));
      ("attempts", Trace.Json.Int (total_attempts p));
      ("tasks", Trace.Json.List (List.map task_json p.tasks));
      ("io_sites", Trace.Json.List (List.map site_json p.sites));
      ( "phases",
        Trace.Json.Obj (List.map (fun (name, us) -> (name, Trace.Json.Int us)) p.phases) );
    ]
