(* The immutable, canonical form of a sheet. Canonical means:
   counters and histograms are sorted by NAME (id order can differ
   between domains that raced on interning), zero rows are dropped,
   and every value is an int. Integer addition is associative, so
   [merge] is too — the property the jobs-invariance tests pin down —
   and equal snapshots render to byte-identical JSON. *)

type t = { counters : (string * int) list; hists : (string * int array) list }

let zero = { counters = []; hists = [] }

let canon_counters rows =
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let rec squash = function
    | (n1, v1) :: (n2, v2) :: rest when String.equal n1 n2 -> squash ((n1, v1 + v2) :: rest)
    | row :: rest -> row :: squash rest
    | [] -> []
  in
  List.filter (fun (_, v) -> v <> 0) (squash rows)

let merge_rows a b =
  let pad row =
    if Array.length row >= Registry.buckets then row
    else begin
      let grown = Array.make Registry.buckets 0 in
      Array.blit row 0 grown 0 (Array.length row);
      grown
    end
  in
  let a = pad a and b = pad b in
  Array.init (Array.length a) (fun i -> a.(i) + b.(i))

let canon_hists rows =
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let rec squash = function
    | (n1, r1) :: (n2, r2) :: rest when String.equal n1 n2 -> squash ((n1, merge_rows r1 r2) :: rest)
    | row :: rest -> row :: squash rest
    | [] -> []
  in
  List.filter (fun (_, row) -> Array.exists (fun x -> x <> 0) row) (squash rows)

let make ~counters ~hists =
  { counters = canon_counters counters; hists = canon_hists (List.map (fun (n, r) -> (n, Array.copy r)) hists) }

let of_sheet ?(events = []) sheet =
  let counters = Sheet.fold_counters sheet (fun acc n v -> (n, v) :: acc) [] in
  let counters =
    List.fold_left (fun acc (n, v) -> ("event/" ^ n, v) :: acc) counters events
  in
  let hists = Sheet.fold_hists sheet (fun acc n row -> (n, row) :: acc) [] in
  make ~counters ~hists

(* Merge two already-canonical snapshots. A plain merge of two sorted
   lists — no re-sort, no re-squash — so the cost is linear and the
   result is canonical by construction. *)
let merge a b =
  let rec counters xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (nx, vx) :: xs', (ny, vy) :: ys' ->
        let c = compare nx ny in
        if c < 0 then (nx, vx) :: counters xs' ys
        else if c > 0 then (ny, vy) :: counters xs ys'
        else
          let v = vx + vy in
          if v = 0 then counters xs' ys' else (nx, v) :: counters xs' ys'
  in
  let rec hists xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (nx, rx) :: xs', (ny, ry) :: ys' ->
        let c = compare nx ny in
        if c < 0 then (nx, rx) :: hists xs' ys
        else if c > 0 then (ny, ry) :: hists xs ys'
        else (nx, merge_rows rx ry) :: hists xs' ys'
  in
  { counters = counters a.counters b.counters; hists = hists a.hists b.hists }

let counter t name = match List.assoc_opt name t.counters with Some v -> v | None -> 0
let equal a b = a.counters = b.counters && a.hists = b.hists

let hist_json row =
  Trace.Json.Obj
    (List.init Registry.buckets (fun i -> (Registry.bucket_label i, Trace.Json.Int row.(i))))

let to_json t =
  Trace.Json.Obj
    [
      ("counters", Trace.Json.Obj (List.map (fun (n, v) -> (n, Trace.Json.Int v)) t.counters));
      ("hists", Trace.Json.Obj (List.map (fun (n, row) -> (n, hist_json row)) t.hists));
    ]

let of_json j =
  let open Trace.Json in
  let field name = function Obj fields -> List.assoc_opt name fields | _ -> None in
  let counters =
    match field "counters" j with
    | Some (Obj fields) ->
        Ok (List.filter_map (fun (n, v) -> match v with Int i -> Some (n, i) | _ -> None) fields)
    | Some _ -> Error "snapshot: \"counters\" is not an object"
    | None -> Error "snapshot: missing \"counters\""
  in
  let hists =
    match field "hists" j with
    | Some (Obj fields) ->
        Ok
          (List.filter_map
             (fun (n, v) ->
               match v with
               | Obj cells ->
                   let row = Array.make Registry.buckets 0 in
                   List.iteri
                     (fun i (_, cell) ->
                       match cell with
                       | Int c when i < Registry.buckets -> row.(i) <- c
                       | _ -> ())
                     cells;
                   Some (n, row)
               | _ -> None)
             fields)
    | Some _ -> Error "snapshot: \"hists\" is not an object"
    | None -> Error "snapshot: missing \"hists\""
  in
  match (counters, hists) with
  | Ok counters, Ok hists -> Ok (make ~counters ~hists)
  | Error e, _ | _, Error e -> Error e

let render t =
  let buf = Buffer.create 1024 in
  let width =
    List.fold_left (fun w (n, _) -> max w (String.length n)) 0 t.counters
  in
  Buffer.add_string buf "counters:\n";
  if t.counters = [] then Buffer.add_string buf "  (none)\n";
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-*s %d\n" width n v))
    t.counters;
  if t.hists <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (n, row) ->
        Buffer.add_string buf (Printf.sprintf "  %s:" n);
        Array.iteri
          (fun i c ->
            if c <> 0 then
              Buffer.add_string buf (Printf.sprintf " %s=%d" (Registry.bucket_label i) c))
          row;
        Buffer.add_char buf '\n')
      t.hists
  end;
  Buffer.contents buf
