(* Campaign progress reporting. Two channels share stderr: the
   heartbeat (a single rewritten line, rate-limited) and ordinary log
   messages. Both go through one mutex and a "heartbeat line active"
   flag, so a log message first terminates the in-place line instead
   of interleaving with it — the raw [Printf.eprintf] scattering this
   replaces garbled output under [--jobs > 1].

   Progress is pure observation: ticks never touch run results, and
   nothing here is part of any deterministic output (heartbeats carry
   wall-clock rates by design). *)

type mode = Off | Stderr | Jsonl | Sink of (string -> unit)

let mode_of_string = function
  | "off" | "none" -> Ok Off
  | "stderr" | "bar" -> Ok Stderr
  | "json" | "jsonl" -> Ok Jsonl
  | s -> Error (Printf.sprintf "unknown progress mode %S (expected off, stderr or json)" s)

let lock = Mutex.create ()

(* true while the last thing written to stderr is an unterminated
   heartbeat line *)
let line_active = ref false

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let end_line () =
  if !line_active then begin
    output_char stderr '\n';
    line_active := false
  end

let log fmt =
  Printf.ksprintf
    (fun s ->
      locked (fun () ->
          end_line ();
          output_string stderr s;
          output_char stderr '\n';
          flush stderr))
    fmt

type t = {
  mode : mode;
  label : string;
  interval : float;
  start : float;
  mutable total : int;
  mutable cells : int;
  mutable runs : int;
  mutable last : float;
}

let create ?(interval_s = 0.5) ?(total = 0) mode ~label =
  { mode; label; interval = interval_s; start = Unix.gettimeofday (); total; cells = 0; runs = 0; last = 0. }

let set_total t total = locked (fun () -> t.total <- total)
let add_total t n = locked (fun () -> t.total <- t.total + n)

let rates t now =
  let elapsed = max 1e-9 (now -. t.start) in
  let rps = float_of_int t.runs /. elapsed in
  let eta =
    if t.cells = 0 || t.total <= t.cells then 0.
    else elapsed /. float_of_int t.cells *. float_of_int (t.total - t.cells)
  in
  (rps, eta)

let emit t ~final now =
  let rps, eta = rates t now in
  match t.mode with
  | Off -> ()
  | Stderr ->
      end_line ();
      Printf.fprintf stderr "\r[%s] %d/%d cells | %d runs | %.1f runs/s | ETA %.0fs" t.label
        t.cells t.total t.runs rps eta;
      if final then output_char stderr '\n' else line_active := true;
      flush stderr
  | Jsonl ->
      (* one compact machine-readable object per line, hand-formatted:
         the pretty printer in Trace.Json is multi-line by design *)
      Printf.fprintf stderr
        "{\"progress\":\"%s\",\"cells\":%d,\"total\":%d,\"runs\":%d,\"runs_per_s\":%.1f,\"eta_s\":%.1f%s}\n"
        (String.escaped t.label) t.cells t.total t.runs rps eta
        (if final then ",\"done\":true" else "");
      flush stderr
  | Sink f ->
      let line =
        Printf.sprintf
          "{\"progress\":\"%s\",\"cells\":%d,\"total\":%d,\"runs\":%d,\"runs_per_s\":%.1f,\"eta_s\":%.1f%s}"
          (String.escaped t.label) t.cells t.total t.runs rps eta
          (if final then ",\"done\":true" else "")
      in
      (try f line with _ -> ())

let tick ?(runs = 1) t =
  if t.mode <> Off then
    locked (fun () ->
        t.cells <- t.cells + 1;
        t.runs <- t.runs + runs;
        let now = Unix.gettimeofday () in
        if now -. t.last >= t.interval then begin
          t.last <- now;
          emit t ~final:false now
        end)

let finish t =
  if t.mode <> Off then locked (fun () -> emit t ~final:true (Unix.gettimeofday ()))
