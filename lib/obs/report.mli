(** Tolerance-aware diff of two bench/metrics JSON documents — the
    engine behind [easeio report] and the CI perf gate.

    Documents are flattened to [path -> leaf] rows; arrays of records
    are keyed by the records' string fields (e.g.
    [workloads.DMA.Alpaca.app_ms]) so row reordering diffs cleanly.
    Each differing row is classified: provenance/config/wall-clock
    rows are informational, throughput rows ([*_runs_per_s], higher is
    better) fail only on a gross collapse, and simulated metrics
    (lower is better) fail one-sided past a relative-plus-absolute
    tolerance — improvements never fail. *)

type tol = {
  rel : float;  (** one-sided relative slack for simulated metrics *)
  abs : float;  (** absolute floor so small integers don't trip [rel] *)
  wall_factor : float;  (** allowed throughput slowdown factor *)
}

val default_tol : tol
(** [{ rel = 0.75; abs = 1.0; wall_factor = 4.0 }] — generous on
    purpose: the gate should only fire on cliffs, not noise. *)

type level = Note | Regression

type finding = { path : string; base : string; cur : string; level : level; detail : string }

val diff : ?tol:tol -> base:Trace.Json.t -> cur:Trace.Json.t -> unit -> finding list
(** All differing rows, current-document order first, then rows only
    present in the baseline. Equal rows produce no finding. *)

val regressions : finding list -> finding list

val rows : Trace.Json.t -> (string * string) list
(** Flattened [(path, printed leaf)] rows of one document — what
    [easeio report FILE] lists when the file is not a metric
    snapshot. *)

val render : finding list -> string
(** Aligned table with a trailing summary line; regressions are
    marked. *)
