(** Bytecode VM: the simulator's hot-path executor.

    The tree-walking interpreter ({!Lang.Interp}) resolves every
    variable name through hashtables and dispatches on runtime policy at
    each access — fine for an oracle, wasteful for million-run sweeps.
    This module lowers a checked (and, under [Easeio], transformed)
    program once into a flat [int array] instruction stream whose
    operands are preresolved: raw globals carry their absolute
    FRAM/SRAM addresses, managed globals carry their {!Runtimes.Manager}
    handles, locals are dense array slots, and the runtime policy's
    charging behavior is baked into the opcode choice at compile time.

    The contract is {e exact observational equivalence} with the tree
    walker: the same sequence of {!Platform.Machine.charge} calls (order
    matters — [Nth_charge] failures latch on a specific charge), the
    same step counts and step-limit error, the same App/Overhead
    attribution, the same event bumps, the same error messages, and the
    same final non-volatile state. The conformance judge cross-checks
    this on every fuzzing run.

    A compiled program owns a reusable arena (machine, stack, locals,
    loop registers, scratch): [compile] once per (program, policy), then
    [reset]+[run] per seed, with no per-run allocation beyond what the
    kernel engine itself does. *)

open Platform

type t
(** A compiled program plus its reusable execution arena. *)

val compile :
  ?policy:Lang.Interp.policy ->
  ?extra_io:(string * Lang.Interp.io_impl) list ->
  ?priv_buffer_words:int ->
  ?ablate_regions:bool ->
  ?ablate_semantics:bool ->
  Machine.t ->
  Lang.Ast.program ->
  t
(** Validate, transform (Easeio), allocate globals and runtime state on
    [m], and lower every task to bytecode. Mirrors {!Lang.Interp.build}
    step for step so memory layouts and flash-time initialization are
    identical. The machine is captured as the arena; use [reset] to
    recycle it between runs. *)

val reset : ?seed:int -> ?failure:Failure.spec -> ?faults:Faults.plan -> t -> unit
(** Reinitialize the arena for a fresh run: clear both memories, reset
    counters/clock/energy/events, reseed the RNG, install the given
    failure schedule and fault plan, and replay the program's flash-time
    global initialization. Compile-time memory layouts are kept, so a
    [reset] arena is observationally identical to a freshly [compile]d
    one. *)

val run : ?check:(t -> bool) -> ?max_failures:int -> t -> Kernel.Engine.outcome
(** Execute to completion through the kernel engine. [check] is the
    end-of-run application check (same role as [Interp.build]'s
    [?check]), supplied per run so one compiled arena serves many
    seeds. *)

(** {2 Session access}

    [run] decomposed, for drivers that push the arena through the
    {!Kernel.Engine} stepper (prefix-resume campaigns, the explorer)
    instead of [Engine.run]: [prepare] + [begin_metered], then
    [Engine.start ~hooks ~cur_slot] and step; [flush_counts] when the
    run finishes. The VM's volatile execution state is dead at attempt
    boundaries (the per-attempt prologue re-zeroes it), so a
    checkpoint needs only {!save_counts} (when metered) and the
    radio's snapshot beyond the machine's own. *)

val prepare : ?check:(t -> bool) -> t -> Kernel.Task.app * Kernel.Engine.hooks * int
(** The engine inputs for this arena: the compiled app (with [check]
    wired in, same role as {!run}'s), the runtime hooks, and the
    pre-allocated task-pointer slot. *)

val begin_metered : t -> unit
(** Latch whether the machine carries a metrics sheet and zero the
    per-run dispatch counters; call once per run before the engine. *)

val flush_counts : t -> unit
(** Push the run's opcode/callsite dispatch counts to the attached
    sheet (no-op unmetered); call once when the run finishes. *)

val save_counts : t -> int array * int array
(** Copy the dispatch counters (checkpoint side-state when metered). *)

val restore_counts : t -> int array * int array -> unit

val machine : t -> Machine.t
val radio : t -> Periph.Radio.t

val program : t -> Lang.Ast.program
(** The program actually executed (transformed under [Easeio]). *)

val policy : t -> Lang.Interp.policy
val transformed : t -> Lang.Transform.result option

val read_global : t -> string -> int -> int
(** Uncharged post-run read of a global (committed view under
    Alpaca/InK). Raises [Not_found] for unknown names. *)

val read_global_block : t -> string -> words:int -> int array
(** [read_global_block t name ~words] snapshots the first [words]
    elements of a global in one call — equivalent to [words] calls of
    {!read_global} but resolving [name] only once, so result checks
    over large arrays stay cheap. *)

val global_loc : t -> string -> Loc.t
(** Raw backing location of a global (for golden-state comparison). *)
