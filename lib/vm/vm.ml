(* Bytecode VM for the task language: a lowering of checked/transformed
   programs into a flat [int array] instruction stream plus operand
   tables, executed by a threaded dispatch loop.

   The contract is strict observational equivalence with the tree-walker
   ([Lang.Interp]): the same sequence of [Machine.charge] calls (so the
   same [Nth_charge] boundary behavior), the same step counting, the
   same accounting tags, the same event bumps and trace emissions, the
   same error strings, the same final NV state. The tree-walker remains
   the conformance oracle; every opcode here is justified line-by-line
   against the corresponding [Interp] clause.

   What the lowering buys:
   - every global access is resolved at compile time to a concrete word
     address (raw globals) or a manager var (Alpaca/InK), every local to
     an int-array slot — no Hashtbl lookup, no name resolution, no
     [ginfo] dispatch per access;
   - the whole front-end (parse, validate, transform, allocation) runs
     once per (program, policy) pair instead of once per run; [reset]
     rewinds the machine arena between runs (see [Machine.reset]). *)

open Platform
open Lang
open Lang.Ast

let step_limit = 20_000_000

(* {1 Operand tables} *)

(* How a global is stored, resolved once at compile time. [ovh] marks
   transform-inserted ["__"] state whose raw accesses are charged to the
   overhead bucket (mirrors [Interp.is_runtime_name]). *)
type backing =
  | Braw of { space : Memory.space; addr : int; ovh : bool }
  | Bman of Runtimes.Manager.var

type access = { back : backing; words : int; aname : string }

type argspec =
  | Sval  (** evaluated scalar, on the stack *)
  | Sarr_static of Memory.space * int * int  (** raw array: space, addr, words *)
  | Sarr_dyn of int  (** managed array: base addr on the stack (pushed by PUSHLOC), words *)

type callsite = {
  c_impl : Interp.io_impl;
  c_name : string;  (* the .eio I/O function name, for metering *)
  c_specs : argspec array;
  c_npop : int;
}
type dmasite = { d_exclude : bool; d_deps : int array  (** local slots *) }

type t = {
  m : Machine.t;
  policy : Interp.policy;
  prog : program;  (* the executed (transformed under Easeio) program *)
  radio : Periph.Radio.t;
  mgr : Runtimes.Manager.t option;
  rt : Easeio.Runtime.t option;
  transformed : Transform.result option;
  globals : (string, access) Hashtbl.t;  (* cold paths: read_global / global_loc *)
  code : int array;
  task_pcs : int array;  (* entry pc per task, in p_tasks order *)
  accs : access array;
  calls : callsite array;
  dmas : dmasite array;
  strs : string array;
  hooks : Kernel.Engine.hooks;
  mutable app : Kernel.Task.app option;
  cur_slot : int;  (* pre-allocated engine task pointer (arena reuse) *)
  flash : (Memory.space * int * int) array;  (* replayed by [reset] *)
  (* the reusable machine arena: per-run state, reinitialized by the
     per-attempt prologue / [reset], never reallocated *)
  stack : int array;
  locals : int array;
  regs : int array;
  mutable steps : int;
  (* campaign metering: latched from [Machine.metered] once per run so
     the dispatch loop tests a plain bool, counts flushed to the sheet
     after the run (see [run]) *)
  mutable metered : bool;
  opcounts : int array;  (* per-opcode dispatch counts, length n_ops *)
  callcounts : int array;  (* per-callsite executions, indexed like [calls] *)
  mutable sc_src_space : Memory.space;
  mutable sc_src_addr : int;
  mutable sc_src_room : int;
  mutable sc_dst_space : Memory.space;
  mutable sc_dst_addr : int;
  mutable sc_dst_room : int;
}

let machine t = t.m
let radio t = t.radio
let program t = t.prog
let policy t = t.policy
let transformed t = t.transformed

let read_global t name i =
  match Hashtbl.find_opt t.globals name with
  | Some { back = Bman v; _ } -> Runtimes.Manager.committed (Option.get t.mgr) v i
  | Some { back = Braw { space; addr; _ }; _ } -> Memory.read (Machine.mem t.m space) (addr + i)
  | None -> raise Not_found

(* Bulk observation: resolves [name] once instead of per element (see
   Interp.read_global_block, which this mirrors). *)
let read_global_block t name ~words =
  match Hashtbl.find_opt t.globals name with
  | Some { back = Bman v; _ } ->
      let mgr = Option.get t.mgr in
      Array.init words (fun i -> Runtimes.Manager.committed mgr v i)
  | Some { back = Braw { space; addr; _ }; _ } ->
      let mem = Machine.mem t.m space in
      Array.init words (fun i -> Memory.read mem (addr + i))
  | None -> raise Not_found

let global_loc t name =
  match Hashtbl.find_opt t.globals name with
  | Some { back = Braw { space; addr; _ }; _ } -> { Loc.space; addr }
  | Some { back = Bman v; _ } -> Runtimes.Manager.raw_loc (Option.get t.mgr) v
  | None -> raise Not_found

(* {1 Opcodes}

   Layout: [op; operand...] with per-opcode arity; jumps carry absolute
   code indices. The dispatch loop matches on the literal numbers (a
   dense match compiles to a jump table); keep this table and the match
   arms in [exec] in sync. *)

let o_stmt = 0 (* steps++/limit; cpu 1 — statement head *)
let o_step = 1 (* steps++/limit — eval-node head (Index) *)
let o_pre1 = 2 (* steps++/limit; cpu 1 — eval-node head (Unop/Binop) *)
let o_push = 3 (* k — steps++/limit; push k (Int) *)
let o_pushraw = 4 (* k — push k, no accounting (And/Or joins) *)
let o_ldloc = 5 (* l — steps++/limit; cpu 1; push locals[l] *)
let o_stloc = 6 (* l — cpu 1; locals[l] <- pop *)
let o_ldg = 7 (* a — steps++/limit; charged raw scalar read; push *)
let o_stg = 8 (* a — charged raw scalar write of pop *)
let o_ldgm = 9 (* a — steps++/limit; managed scalar read; push *)
let o_stgm = 10 (* a — managed scalar write of pop *)
let o_lde = 11 (* a — pop i; bounds; charged raw elem read; push *)
let o_ste = 12 (* a — pop v, i; bounds; charged raw elem write *)
let o_ldem = 13 (* a — pop i; bounds; managed elem read; push *)
let o_stem = 14 (* a — pop v, i; bounds; managed elem write *)
let o_jmp = 15 (* p *)
let o_jz = 16 (* p — pop; jump if 0 *)
let o_jnz = 17 (* p — pop; jump if <> 0 *)
let o_tobool = 18 (* pop x; push (x <> 0) *)
let o_add = 19
let o_sub = 20
let o_mul = 21
let o_div = 22
let o_mod = 23
let o_eq = 24
let o_ne = 25
let o_lt = 26
let o_le = 27
let o_gt = 28
let o_ge = 29
let o_neg = 30
let o_not = 31
let o_gettime = 32 (* steps++/limit; Overhead-tagged Timekeeper.read; push *)
let o_forsetup = 33 (* r — pop hi, lo into regs[r+1], regs[r] *)
let o_pushreg = 34 (* r — push regs[r], no accounting *)
let o_fortest = 35 (* r p — if regs[r] > regs[r+1] jump p *)
let o_forincr = 36 (* r — regs[r]++ *)
let o_call = 37 (* c — pop per spec; run impl; push result *)
let o_pop = 38
let o_fail = 39 (* s — raise Ast.Error strs[s] *)
let o_next = 40 (* s — transition Next strs[s] *)
let o_stop = 41 (* transition Stop *)
let o_pushloc = 42 (* a — push (Manager.raw_loc).addr — charged for InK-privatized *)
let o_rsrc = 43 (* a — pop off; bounds; set src scratch from static base *)
let o_rsrcd = 44 (* a — pop off, base; bounds; set src scratch (FRAM) *)
let o_rdst = 45 (* a — pop off; bounds; set dst scratch from static base *)
let o_rdstd = 46 (* a — pop off, base; bounds; set dst scratch (FRAM) *)
let o_dmago = 47 (* d — pop words; bounds; run the transfer *)
let o_cpygo = 48 (* pop words; bounds; Overhead word-copy loop *)
let o_seal = 49 (* Easeio.Runtime.seal_dmas (no-op under baselines) *)

let n_ops = 50

(* Keep in sync with the opcode table above; index = opcode. *)
let op_names =
  [|
    "stmt"; "step"; "pre1"; "push"; "pushraw"; "ldloc"; "stloc"; "ldg"; "stg"; "ldgm";
    "stgm"; "lde"; "ste"; "ldem"; "stem"; "jmp"; "jz"; "jnz"; "tobool"; "add";
    "sub"; "mul"; "div"; "mod"; "eq"; "ne"; "lt"; "le"; "gt"; "ge";
    "neg"; "not"; "gettime"; "forsetup"; "pushreg"; "fortest"; "forincr"; "call"; "pop"; "fail";
    "next"; "stop"; "pushloc"; "rsrc"; "rsrcd"; "rdst"; "rdstd"; "dmago"; "cpygo"; "seal";
  |]

let () = assert (Array.length op_names = n_ops)

(* "vm/op/<name>" counter ids, interned once at module init. *)
let vm_op_ids = Array.map (fun n -> Obs.Registry.counter ("vm/op/" ^ n)) op_names

(* {1 Dispatch loop} *)

let[@inline] bump_step t =
  t.steps <- t.steps + 1;
  if t.steps > step_limit then error "step limit exceeded (infinite loop?)"

(* Single charged access under the Overhead tag, restoring the caller's
   tag even on Power_failure (as [Interp.ovh_if]'s Fun.protect does). *)
let ovh_read m space addr =
  let saved = Machine.tag m in
  Machine.set_tag m Machine.Overhead;
  match Machine.read m space addr with
  | v ->
      Machine.set_tag m saved;
      v
  | exception e ->
      Machine.set_tag m saved;
      raise e

let ovh_write m space addr v =
  let saved = Machine.tag m in
  Machine.set_tag m Machine.Overhead;
  match Machine.write m space addr v with
  | () -> Machine.set_tag m saved
  | exception e ->
      Machine.set_tag m saved;
      raise e

let[@inline] check_index i { words; aname; _ } =
  if i < 0 || i >= words then error "index %d out of bounds for %s[%d]" i aname words

let[@inline] check_offset off { words; aname; _ } =
  if off < 0 || off > words then error "offset %d out of bounds for %s[%d]" off aname words

let exec t pc0 =
  let code = t.code
  and stack = t.stack
  and locals = t.locals
  and regs = t.regs
  and m = t.m in
  let rec go pc sp =
    let op = code.(pc) in
    (* one well-predicted branch per dispatch when off; counting when
       on stays out of the simulated cost model entirely *)
    if t.metered then begin
      t.opcounts.(op) <- t.opcounts.(op) + 1;
      if op = 37 (* CALL *) then
        t.callcounts.(code.(pc + 1)) <- t.callcounts.(code.(pc + 1)) + 1
    end;
    match op with
    | 0 (* STMT *) ->
        bump_step t;
        Machine.cpu m 1;
        go (pc + 1) sp
    | 1 (* STEP *) ->
        bump_step t;
        go (pc + 1) sp
    | 2 (* PRE1 *) ->
        bump_step t;
        Machine.cpu m 1;
        go (pc + 1) sp
    | 3 (* PUSH *) ->
        bump_step t;
        stack.(sp) <- code.(pc + 1);
        go (pc + 2) (sp + 1)
    | 4 (* PUSHRAW *) ->
        stack.(sp) <- code.(pc + 1);
        go (pc + 2) (sp + 1)
    | 5 (* LDLOC *) ->
        bump_step t;
        Machine.cpu m 1;
        stack.(sp) <- locals.(code.(pc + 1));
        go (pc + 2) (sp + 1)
    | 6 (* STLOC *) ->
        Machine.cpu m 1;
        locals.(code.(pc + 1)) <- stack.(sp - 1);
        go (pc + 2) (sp - 1)
    | 7 (* LDG *) ->
        bump_step t;
        let a = t.accs.(code.(pc + 1)) in
        (match a.back with
        | Braw { space; addr; ovh } ->
            stack.(sp) <- (if ovh then ovh_read m space addr else Machine.read m space addr)
        | Bman _ -> assert false);
        go (pc + 2) (sp + 1)
    | 8 (* STG *) ->
        let a = t.accs.(code.(pc + 1)) in
        let v = stack.(sp - 1) in
        (match a.back with
        | Braw { space; addr; ovh } ->
            if ovh then ovh_write m space addr v else Machine.write m space addr v
        | Bman _ -> assert false);
        go (pc + 2) (sp - 1)
    | 9 (* LDGM *) ->
        bump_step t;
        let a = t.accs.(code.(pc + 1)) in
        (match a.back with
        | Bman v -> stack.(sp) <- Runtimes.Manager.read (Option.get t.mgr) v 0
        | Braw _ -> assert false);
        go (pc + 2) (sp + 1)
    | 10 (* STGM *) ->
        let a = t.accs.(code.(pc + 1)) in
        let x = stack.(sp - 1) in
        (match a.back with
        | Bman v -> Runtimes.Manager.write (Option.get t.mgr) v 0 x
        | Braw _ -> assert false);
        go (pc + 2) (sp - 1)
    | 11 (* LDE *) ->
        let a = t.accs.(code.(pc + 1)) in
        let i = stack.(sp - 1) in
        check_index i a;
        (match a.back with
        | Braw { space; addr; ovh } ->
            stack.(sp - 1) <-
              (if ovh then ovh_read m space (addr + i) else Machine.read m space (addr + i))
        | Bman _ -> assert false);
        go (pc + 2) sp
    | 12 (* STE *) ->
        let a = t.accs.(code.(pc + 1)) in
        let v = stack.(sp - 1) and i = stack.(sp - 2) in
        check_index i a;
        (match a.back with
        | Braw { space; addr; ovh } ->
            if ovh then ovh_write m space (addr + i) v else Machine.write m space (addr + i) v
        | Bman _ -> assert false);
        go (pc + 2) (sp - 2)
    | 13 (* LDEM *) ->
        let a = t.accs.(code.(pc + 1)) in
        let i = stack.(sp - 1) in
        check_index i a;
        (match a.back with
        | Bman v -> stack.(sp - 1) <- Runtimes.Manager.read (Option.get t.mgr) v i
        | Braw _ -> assert false);
        go (pc + 2) sp
    | 14 (* STEM *) ->
        let a = t.accs.(code.(pc + 1)) in
        let v = stack.(sp - 1) and i = stack.(sp - 2) in
        check_index i a;
        (match a.back with
        | Bman var -> Runtimes.Manager.write (Option.get t.mgr) var i v
        | Braw _ -> assert false);
        go (pc + 2) (sp - 2)
    | 15 (* JMP *) -> go code.(pc + 1) sp
    | 16 (* JZ *) -> if stack.(sp - 1) = 0 then go code.(pc + 1) (sp - 1) else go (pc + 2) (sp - 1)
    | 17 (* JNZ *) ->
        if stack.(sp - 1) <> 0 then go code.(pc + 1) (sp - 1) else go (pc + 2) (sp - 1)
    | 18 (* TOBOOL *) ->
        stack.(sp - 1) <- (if stack.(sp - 1) <> 0 then 1 else 0);
        go (pc + 1) sp
    | 19 (* ADD *) ->
        stack.(sp - 2) <- stack.(sp - 2) + stack.(sp - 1);
        go (pc + 1) (sp - 1)
    | 20 (* SUB *) ->
        stack.(sp - 2) <- stack.(sp - 2) - stack.(sp - 1);
        go (pc + 1) (sp - 1)
    | 21 (* MUL *) ->
        stack.(sp - 2) <- stack.(sp - 2) * stack.(sp - 1);
        go (pc + 1) (sp - 1)
    | 22 (* DIV *) ->
        let y = stack.(sp - 1) in
        if y = 0 then error "division by zero";
        stack.(sp - 2) <- stack.(sp - 2) / y;
        go (pc + 1) (sp - 1)
    | 23 (* MOD *) ->
        let y = stack.(sp - 1) in
        if y = 0 then error "modulo by zero";
        stack.(sp - 2) <- stack.(sp - 2) mod y;
        go (pc + 1) (sp - 1)
    | 24 (* EQ *) ->
        stack.(sp - 2) <- (if stack.(sp - 2) = stack.(sp - 1) then 1 else 0);
        go (pc + 1) (sp - 1)
    | 25 (* NE *) ->
        stack.(sp - 2) <- (if stack.(sp - 2) <> stack.(sp - 1) then 1 else 0);
        go (pc + 1) (sp - 1)
    | 26 (* LT *) ->
        stack.(sp - 2) <- (if stack.(sp - 2) < stack.(sp - 1) then 1 else 0);
        go (pc + 1) (sp - 1)
    | 27 (* LE *) ->
        stack.(sp - 2) <- (if stack.(sp - 2) <= stack.(sp - 1) then 1 else 0);
        go (pc + 1) (sp - 1)
    | 28 (* GT *) ->
        stack.(sp - 2) <- (if stack.(sp - 2) > stack.(sp - 1) then 1 else 0);
        go (pc + 1) (sp - 1)
    | 29 (* GE *) ->
        stack.(sp - 2) <- (if stack.(sp - 2) >= stack.(sp - 1) then 1 else 0);
        go (pc + 1) (sp - 1)
    | 30 (* NEG *) ->
        stack.(sp - 1) <- -stack.(sp - 1);
        go (pc + 1) sp
    | 31 (* NOT *) ->
        stack.(sp - 1) <- (if stack.(sp - 1) = 0 then 1 else 0);
        go (pc + 1) sp
    | 32 (* GETTIME *) ->
        bump_step t;
        let saved = Machine.tag m in
        Machine.set_tag m Machine.Overhead;
        let v =
          match Timekeeper.read m with
          | v ->
              Machine.set_tag m saved;
              v
          | exception e ->
              Machine.set_tag m saved;
              raise e
        in
        stack.(sp) <- v;
        go (pc + 1) (sp + 1)
    | 33 (* FORSETUP *) ->
        let r = code.(pc + 1) in
        regs.(r + 1) <- stack.(sp - 1);
        regs.(r) <- stack.(sp - 2);
        go (pc + 2) (sp - 2)
    | 34 (* PUSHREG *) ->
        stack.(sp) <- regs.(code.(pc + 1));
        go (pc + 2) (sp + 1)
    | 35 (* FORTEST *) ->
        let r = code.(pc + 1) in
        if regs.(r) > regs.(r + 1) then go code.(pc + 2) sp else go (pc + 3) sp
    | 36 (* FORINCR *) ->
        let r = code.(pc + 1) in
        regs.(r) <- regs.(r) + 1;
        go (pc + 2) sp
    | 37 (* CALL *) ->
        let cs = t.calls.(code.(pc + 1)) in
        let base = sp - cs.c_npop in
        (* stack slots base..sp-1 hold the evaluated Sval / Sarr_dyn
           operands in spec order *)
        let rec build i si =
          if i = Array.length cs.c_specs then []
          else
            match cs.c_specs.(i) with
            | Sval -> Interp.Val stack.(si) :: build (i + 1) (si + 1)
            | Sarr_static (space, addr, words) ->
                Interp.Arr ({ Loc.space; addr }, words) :: build (i + 1) si
            | Sarr_dyn words -> Interp.Arr (Loc.fram stack.(si), words) :: build (i + 1) (si + 1)
        in
        let args = build 0 base in
        let v = cs.c_impl m args in
        stack.(base) <- v;
        go (pc + 2) (base + 1)
    | 38 (* POP *) -> go (pc + 1) (sp - 1)
    | 39 (* FAIL *) -> raise (Error t.strs.(code.(pc + 1)))
    | 40 (* NEXT *) -> Kernel.Task.Next t.strs.(code.(pc + 1))
    | 41 (* STOP *) -> Kernel.Task.Stop
    | 42 (* PUSHLOC *) ->
        let a = t.accs.(code.(pc + 1)) in
        (match a.back with
        | Bman v -> stack.(sp) <- (Runtimes.Manager.raw_loc (Option.get t.mgr) v).Loc.addr
        | Braw _ -> assert false);
        go (pc + 2) (sp + 1)
    | 43 (* RSRC *) ->
        let a = t.accs.(code.(pc + 1)) in
        let off = stack.(sp - 1) in
        check_offset off a;
        (match a.back with
        | Braw { space; addr; _ } ->
            t.sc_src_space <- space;
            t.sc_src_addr <- addr + off
        | Bman _ -> assert false);
        t.sc_src_room <- a.words - off;
        go (pc + 2) (sp - 1)
    | 44 (* RSRCD *) ->
        let a = t.accs.(code.(pc + 1)) in
        let off = stack.(sp - 1) and base = stack.(sp - 2) in
        check_offset off a;
        t.sc_src_space <- Memory.Fram;
        t.sc_src_addr <- base + off;
        t.sc_src_room <- a.words - off;
        go (pc + 2) (sp - 2)
    | 45 (* RDST *) ->
        let a = t.accs.(code.(pc + 1)) in
        let off = stack.(sp - 1) in
        check_offset off a;
        (match a.back with
        | Braw { space; addr; _ } ->
            t.sc_dst_space <- space;
            t.sc_dst_addr <- addr + off
        | Bman _ -> assert false);
        t.sc_dst_room <- a.words - off;
        go (pc + 2) (sp - 1)
    | 46 (* RDSTD *) ->
        let a = t.accs.(code.(pc + 1)) in
        let off = stack.(sp - 1) and base = stack.(sp - 2) in
        check_offset off a;
        t.sc_dst_space <- Memory.Fram;
        t.sc_dst_addr <- base + off;
        t.sc_dst_room <- a.words - off;
        go (pc + 2) (sp - 2)
    | 47 (* DMAGO *) ->
        let words = stack.(sp - 1) in
        if words > t.sc_src_room || words > t.sc_dst_room then error "dma_copy out of bounds";
        let src = { Loc.space = t.sc_src_space; addr = t.sc_src_addr } in
        let dst = { Loc.space = t.sc_dst_space; addr = t.sc_dst_addr } in
        (match t.rt with
        | None -> Periph.Dma.copy m ~src ~dst ~words
        | Some rt ->
            let d = t.dmas.(code.(pc + 1)) in
            let force = ref false in
            Array.iter (fun slot -> if locals.(slot) <> 0 then force := true) d.d_deps;
            Easeio.Runtime.dma_copy ~exclude:d.d_exclude ~force:!force rt ~src ~dst ~words);
        go (pc + 2) (sp - 1)
    | 48 (* CPYGO *) ->
        let words = stack.(sp - 1) in
        if words > t.sc_dst_room || words > t.sc_src_room then error "memcpy out of bounds";
        let saved = Machine.tag m in
        Machine.set_tag m Machine.Overhead;
        (try
           for i = 0 to words - 1 do
             Machine.write m t.sc_dst_space (t.sc_dst_addr + i)
               (Machine.read m t.sc_src_space (t.sc_src_addr + i))
           done
         with e ->
           Machine.set_tag m saved;
           raise e);
        Machine.set_tag m saved;
        go (pc + 1) (sp - 1)
    | 49 (* SEAL *) ->
        (match t.rt with Some rt -> Easeio.Runtime.seal_dmas rt | None -> ());
        go (pc + 1) sp
    | op -> Printf.ksprintf failwith "Vm.exec: bad opcode %d at pc %d" op pc
  in
  go pc0 0

(* {1 Compiler} *)

let is_runtime_name name = String.length name >= 2 && name.[0] = '_' && name.[1] = '_'

(* growable code buffer *)
type buf = { mutable b : int array; mutable len : int }

let buf_create () = { b = Array.make 256 0; len = 0 }

let emit buf x =
  if buf.len = Array.length buf.b then begin
    let bigger = Array.make (2 * Array.length buf.b) 0 in
    Array.blit buf.b 0 bigger 0 buf.len;
    buf.b <- bigger
  end;
  buf.b.(buf.len) <- x;
  buf.len <- buf.len + 1

(* append-only operand tables with dedup where keys allow it *)
type 'a tbl = { mutable items : 'a list; mutable n : int }

let tbl_create () = { items = []; n = 0 }

let tbl_add tbl x =
  tbl.items <- x :: tbl.items;
  tbl.n <- tbl.n + 1;
  tbl.n - 1

let tbl_to_array tbl = Array.of_list (List.rev tbl.items)

type ctx = {
  cb : buf;
  xaccs : access tbl;
  acc_ids : (string, int * access) Hashtbl.t;  (* global name -> accs index *)
  xcalls : callsite tbl;
  xdmas : dmasite tbl;
  xstrs : string tbl;
  str_ids : (string, int) Hashtbl.t;
  local_ids : (string, int) Hashtbl.t;
  mutable n_locals : int;
  mutable n_regs : int;
  cglobals : (string, access) Hashtbl.t;
  cio : (string, Interp.io_impl) Hashtbl.t;
}

let op1 ctx o = emit ctx.cb o

let op2 ctx o x =
  emit ctx.cb o;
  emit ctx.cb x

let here ctx = ctx.cb.len

(* emit [o 0] and return the operand slot index for backpatching *)
let hole ctx o =
  emit ctx.cb o;
  emit ctx.cb 0;
  ctx.cb.len - 1

let patch ctx at = ctx.cb.b.(at) <- here ctx

let str_id ctx s =
  match Hashtbl.find_opt ctx.str_ids s with
  | Some i -> i
  | None ->
      let i = tbl_add ctx.xstrs s in
      Hashtbl.add ctx.str_ids s i;
      i

let acc_id ctx name =
  match Hashtbl.find_opt ctx.acc_ids name with
  | Some ia -> Some ia
  | None -> (
      match Hashtbl.find_opt ctx.cglobals name with
      | None -> None
      | Some a ->
          let i = tbl_add ctx.xaccs a in
          Hashtbl.add ctx.acc_ids name (i, a);
          Some (i, a))

let local_slot ctx name =
  match Hashtbl.find_opt ctx.local_ids name with
  | Some s -> s
  | None ->
      let s = ctx.n_locals in
      Hashtbl.add ctx.local_ids name s;
      ctx.n_locals <- ctx.n_locals + 1;
      s

(* store the value on top of the stack into scalar [name]; mirrors
   [Interp.write_scalar]'s three-way resolution *)
let cstore ctx name =
  match acc_id ctx name with
  | Some (i, { back = Braw _; _ }) -> op2 ctx o_stg i
  | Some (i, { back = Bman _; _ }) -> op2 ctx o_stgm i
  | None -> op2 ctx o_stloc (local_slot ctx name)

let rec cexpr ctx e =
  match e with
  | Int n -> op2 ctx o_push n
  | Var name -> (
      match acc_id ctx name with
      | Some (i, { back = Braw _; _ }) -> op2 ctx o_ldg i
      | Some (i, { back = Bman _; _ }) -> op2 ctx o_ldgm i
      | None -> op2 ctx o_ldloc (local_slot ctx name))
  | Index (name, i) -> (
      op1 ctx o_step;
      cexpr ctx i;
      match acc_id ctx name with
      | Some (a, { back = Braw _; _ }) -> op2 ctx o_lde a
      | Some (a, { back = Bman _; _ }) -> op2 ctx o_ldem a
      | None -> op2 ctx o_fail (str_id ctx (Printf.sprintf "unknown array %s" name)))
  | Unop (Neg, e) ->
      op1 ctx o_pre1;
      cexpr ctx e;
      op1 ctx o_neg
  | Unop (Not, e) ->
      op1 ctx o_pre1;
      cexpr ctx e;
      op1 ctx o_not
  | Binop (And, a, b) ->
      op1 ctx o_pre1;
      cexpr ctx a;
      let jz = hole ctx o_jz in
      cexpr ctx b;
      op1 ctx o_tobool;
      let jend = hole ctx o_jmp in
      patch ctx jz;
      op2 ctx o_pushraw 0;
      patch ctx jend
  | Binop (Or, a, b) ->
      op1 ctx o_pre1;
      cexpr ctx a;
      let jnz = hole ctx o_jnz in
      cexpr ctx b;
      op1 ctx o_tobool;
      let jend = hole ctx o_jmp in
      patch ctx jnz;
      op2 ctx o_pushraw 1;
      patch ctx jend
  | Binop (op, a, b) ->
      op1 ctx o_pre1;
      cexpr ctx a;
      cexpr ctx b;
      op1 ctx
        (match op with
        | Add -> o_add
        | Sub -> o_sub
        | Mul -> o_mul
        | Div -> o_div
        | Mod -> o_mod
        | Eq -> o_eq
        | Ne -> o_ne
        | Lt -> o_lt
        | Le -> o_le
        | Gt -> o_gt
        | Ge -> o_ge
        | And | Or -> assert false)
  | Get_time -> op1 ctx o_gettime

(* compile one [mem_ref]; returns false when the array is unknown (a
   FAIL was emitted — the rest of the statement is unreachable, exactly
   as the tree-walker raises from [loc_words] before evaluating the
   offset) *)
let cmemref ctx { ref_arr; ref_off } ~static_op ~dyn_op =
  match acc_id ctx ref_arr with
  | None ->
      op2 ctx o_fail
        (str_id ctx (Printf.sprintf "unknown array %s (peripherals need declared globals)" ref_arr));
      false
  | Some (a, { back = Braw _; _ }) ->
      cexpr ctx ref_off;
      op2 ctx static_op a;
      true
  | Some (a, { back = Bman _; _ }) ->
      op2 ctx o_pushloc a;
      cexpr ctx ref_off;
      op2 ctx dyn_op a;
      true

let ccall ctx (c : call_io) =
  match Hashtbl.find_opt ctx.cio c.io with
  | None -> op2 ctx o_fail (str_id ctx (Printf.sprintf "unknown I/O function %s" c.io))
  | Some impl ->
      let specs = ref [] and npop = ref 0 and aborted = ref false in
      List.iter
        (fun arg ->
          if not !aborted then
            match arg with
            | Aexpr e ->
                cexpr ctx e;
                incr npop;
                specs := Sval :: !specs
            | Aarr name -> (
                match acc_id ctx name with
                | Some (_, { back = Braw { space; addr; _ }; words; _ }) ->
                    specs := Sarr_static (space, addr, words) :: !specs
                | Some (a, { back = Bman _; words; _ }) ->
                    op2 ctx o_pushloc a;
                    incr npop;
                    specs := Sarr_dyn words :: !specs
                | None ->
                    op2 ctx o_fail
                      (str_id ctx
                         (Printf.sprintf "unknown array %s (peripherals need declared globals)"
                            name));
                    aborted := true))
        c.args;
      if not !aborted then begin
        let site =
          { c_impl = impl; c_name = c.io; c_specs = Array.of_list (List.rev !specs); c_npop = !npop }
        in
        op2 ctx o_call (tbl_add ctx.xcalls site);
        match c.target with Some tgt -> cstore ctx tgt | None -> op1 ctx o_pop
      end

let rec cstmts ctx stmts = List.iter (cstmt ctx) stmts

and cstmt ctx st =
  op1 ctx o_stmt;
  match st.s with
  | Assign (v, e) ->
      cexpr ctx e;
      cstore ctx v
  | Store (name, i, e) -> (
      cexpr ctx i;
      cexpr ctx e;
      match acc_id ctx name with
      | Some (a, { back = Braw _; _ }) -> op2 ctx o_ste a
      | Some (a, { back = Bman _; _ }) -> op2 ctx o_stem a
      | None -> op2 ctx o_fail (str_id ctx (Printf.sprintf "unknown array %s" name)))
  | If (c, a, b) -> (
      cexpr ctx c;
      let jz = hole ctx o_jz in
      cstmts ctx a;
      match b with
      | [] -> patch ctx jz
      | _ ->
          let jend = hole ctx o_jmp in
          patch ctx jz;
          cstmts ctx b;
          patch ctx jend)
  | While (c, b) ->
      let top = here ctx in
      cexpr ctx c;
      let jz = hole ctx o_jz in
      cstmts ctx b;
      op2 ctx o_jmp top;
      patch ctx jz
  | For (v, lo, hi, b) ->
      let r = ctx.n_regs in
      ctx.n_regs <- ctx.n_regs + 2;
      cexpr ctx lo;
      cexpr ctx hi;
      op2 ctx o_forsetup r;
      op2 ctx o_pushreg r;
      cstore ctx v;
      let test = here ctx in
      emit ctx.cb o_fortest;
      emit ctx.cb r;
      emit ctx.cb 0;
      let jend = ctx.cb.len - 1 in
      cstmts ctx b;
      op2 ctx o_forincr r;
      op2 ctx o_pushreg r;
      cstore ctx v;
      op2 ctx o_jmp test;
      patch ctx jend
  | Call_io c -> ccall ctx c
  | Io_block { blk_body; _ } -> cstmts ctx blk_body
  | Dma d ->
      cexpr ctx d.dma_words;
      if cmemref ctx d.dma_src ~static_op:o_rsrc ~dyn_op:o_rsrcd then
        if cmemref ctx d.dma_dst ~static_op:o_rdst ~dyn_op:o_rdstd then begin
          let deps = Array.of_list (List.map (local_slot ctx) d.dma_deps) in
          op2 ctx o_dmago (tbl_add ctx.xdmas { d_exclude = d.exclude; d_deps = deps })
        end
  | Memcpy { cp_dst; cp_src; cp_words } ->
      cexpr ctx cp_words;
      if cmemref ctx cp_dst ~static_op:o_rdst ~dyn_op:o_rdstd then
        if cmemref ctx cp_src ~static_op:o_rsrc ~dyn_op:o_rsrcd then op1 ctx o_cpygo
  | Seal_dmas -> op1 ctx o_seal
  | Next name -> op2 ctx o_next (str_id ctx name)
  | Stop -> op1 ctx o_stop

(* conservative per-statement stack bound: every value-pushing node of
   the statement's own expressions, plus slack for resolver scratch;
   nested statements run with an empty stack, so the per-statement
   maximum over [iter_stmts] bounds the whole task *)
let rec esize = function
  | Int _ | Var _ | Get_time -> 1
  | Index (_, i) -> esize i + 1
  | Unop (_, e) -> esize e + 1
  | Binop (_, a, b) -> esize a + esize b + 1

let own_stack st =
  match st.s with
  | Assign (_, e) -> esize e
  | Store (_, i, e) -> esize i + esize e
  | If (c, _, _) -> esize c
  | While (c, _) -> esize c
  | For (_, lo, hi, _) -> esize lo + esize hi + 2
  | Call_io c ->
      List.fold_left
        (fun acc -> function Aexpr e -> acc + esize e | Aarr _ -> acc + 1)
        1 c.args
  | Dma d -> esize d.dma_words + esize d.dma_src.ref_off + esize d.dma_dst.ref_off + 4
  | Memcpy c -> esize c.cp_words + esize c.cp_dst.ref_off + esize c.cp_src.ref_off + 4
  | Io_block _ | Seal_dmas | Next _ | Stop -> 0

let max_stack prog =
  let mx = ref 8 in
  List.iter
    (fun task -> iter_stmts (fun st -> mx := max !mx (own_stack st + 8)) task.t_body)
    prog.p_tasks;
  !mx

let compile ?(policy = Interp.Easeio) ?(extra_io = []) ?priv_buffer_words ?ablate_regions
    ?ablate_semantics m prog =
  validate prog;
  (* front-end, runtime and allocation: step-for-step the same sequence
     as [Interp.build], so layouts and flash state are identical *)
  let transformed =
    match policy with
    | Interp.Easeio ->
        Some
          (Transform.apply ?ablate_regions ?ablate_semantics
             ~priv_buffer_words:(Option.value ~default:max_int priv_buffer_words)
             prog)
    | Interp.Plain | Interp.Alpaca | Interp.Ink -> None
  in
  let priv_buffer_words =
    match (priv_buffer_words, transformed) with
    | Some w, _ -> Some w
    | None, Some r -> Some r.Transform.priv_demand_words
    | None, None -> None
  in
  let exec_prog = match transformed with Some r -> r.Transform.prog | None -> prog in
  let mgr =
    match policy with
    | Interp.Alpaca -> Some (Runtimes.Manager.create m Runtimes.Manager.Alpaca)
    | Interp.Ink -> Some (Runtimes.Manager.create m Runtimes.Manager.Ink)
    | Interp.Plain | Interp.Easeio -> None
  in
  let rt =
    match policy with
    | Interp.Easeio -> Some (Easeio.Runtime.create ?priv_buffer_words m)
    | _ -> None
  in
  let radio = Periph.Radio.create m in
  let io = Hashtbl.create 16 in
  List.iter (fun (name, impl) -> Hashtbl.replace io name impl) (Interp.default_io radio);
  List.iter (fun (name, impl) -> Hashtbl.replace io name impl) extra_io;
  let globals = Hashtbl.create 32 in
  let flash = ref [] in
  List.iter
    (fun d ->
      let space = match d.v_space with Nv -> Memory.Fram | Vol -> Memory.Sram in
      let info =
        match (mgr, d.v_space) with
        | Some mgr, Nv ->
            let war =
              List.exists
                (fun task -> List.mem d.v_name (Analysis.war_vars exec_prog task))
                exec_prog.p_tasks
            in
            {
              back = Bman (Runtimes.Manager.declare ~war mgr ~name:d.v_name ~words:d.v_words);
              words = d.v_words;
              aname = d.v_name;
            }
        | _ ->
            let addr = Machine.alloc m space ~name:d.v_name ~words:d.v_words in
            {
              back = Braw { space; addr; ovh = is_runtime_name d.v_name };
              words = d.v_words;
              aname = d.v_name;
            }
      in
      Hashtbl.replace globals d.v_name info;
      match d.v_init with
      | None -> ()
      | Some init ->
          let loc =
            match info.back with
            | Braw { space; addr; _ } -> { Loc.space; addr }
            | Bman v -> Runtimes.Manager.flash_loc (Option.get mgr) v
          in
          Array.iteri
            (fun i v ->
              if i < d.v_words then begin
                Memory.write (Machine.mem m loc.Loc.space) (loc.Loc.addr + i) v;
                flash := (loc.Loc.space, loc.Loc.addr + i, v) :: !flash
              end)
            init)
    exec_prog.p_globals;
  let clear = Hashtbl.create 8 in
  (match transformed with
  | Some { Transform.clear_flags; _ } ->
      List.iter
        (fun (task, flags) ->
          let ranges =
            List.map
              (fun f ->
                match Hashtbl.find_opt globals f with
                | Some { back = Braw { addr; _ }; words; _ } -> (addr, words)
                | Some { back = Bman v; _ } ->
                    ((Runtimes.Manager.raw_loc (Option.get mgr) v).Loc.addr, 1)
                | None -> raise Not_found)
              flags
          in
          Hashtbl.replace clear task ranges)
        clear_flags
  | None -> ());
  (* lower every task into one shared code buffer *)
  let ctx =
    {
      cb = buf_create ();
      xaccs = tbl_create ();
      acc_ids = Hashtbl.create 32;
      xcalls = tbl_create ();
      xdmas = tbl_create ();
      xstrs = tbl_create ();
      str_ids = Hashtbl.create 16;
      local_ids = Hashtbl.create 16;
      n_locals = 0;
      n_regs = 0;
      cglobals = globals;
      cio = io;
    }
  in
  let task_pcs =
    Array.of_list
      (List.map
         (fun task ->
           let pc = here ctx in
           cstmts ctx task.t_body;
           op2 ctx o_fail
             (str_id ctx
                (Printf.sprintf "task %s fell through without next/stop" task.t_name));
           pc)
         exec_prog.p_tasks)
  in
  let cur_slot = Machine.alloc m Memory.Fram ~name:"kernel.cur_task" ~words:1 in
  let calls = tbl_to_array ctx.xcalls in
  let t =
    {
      m;
      policy;
      prog = exec_prog;
      radio;
      mgr;
      rt;
      transformed;
      globals;
      code = Array.sub ctx.cb.b 0 ctx.cb.len;
      task_pcs;
      accs = tbl_to_array ctx.xaccs;
      calls;
      dmas = tbl_to_array ctx.xdmas;
      strs = tbl_to_array ctx.xstrs;
      hooks = Kernel.Engine.no_hooks;
      app = None;
      cur_slot;
      flash = Array.of_list (List.rev !flash);
      stack = Array.make (max_stack exec_prog) 0;
      locals = Array.make (max 1 ctx.n_locals) 0;
      regs = Array.make (max 1 ctx.n_regs) 0;
      steps = 0;
      metered = false;
      opcounts = Array.make n_ops 0;
      callcounts = Array.make (max 1 (Array.length calls)) 0;
      sc_src_space = Memory.Fram;
      sc_src_addr = 0;
      sc_src_room = 0;
      sc_dst_space = Memory.Fram;
      sc_dst_addr = 0;
      sc_dst_room = 0;
    }
  in
  (* hooks: runtime base + the transform's commit-time flag clearing,
     composed exactly as [Interp.hooks] *)
  let base =
    match (mgr, rt) with
    | Some mgr, _ -> Runtimes.Manager.hooks mgr
    | _, Some rt -> Easeio.Runtime.hooks rt
    | None, None -> Kernel.Engine.no_hooks
  in
  let clear_hook =
    {
      Kernel.Engine.on_task_start = (fun _ _ -> ());
      on_commit =
        (fun m task ->
          match Hashtbl.find_opt clear task with
          | None -> ()
          | Some ranges ->
              List.iter
                (fun (addr, words) ->
                  for i = 0 to words - 1 do
                    Machine.write m Memory.Fram (addr + i) 0
                  done)
                ranges);
      on_reboot = (fun _ -> ());
    }
  in
  let t = { t with hooks = Kernel.Engine.compose_hooks base clear_hook } in
  let body_of idx _m =
    (* per-attempt prologue, as [Interp.to_app]: fresh locals, fresh step
       budget *)
    Array.fill t.locals 0 (Array.length t.locals) 0;
    t.steps <- 0;
    exec t t.task_pcs.(idx)
  in
  let tasks =
    List.mapi
      (fun idx task -> { Kernel.Task.name = task.t_name; body = body_of idx })
      exec_prog.p_tasks
  in
  t.app <-
    Some (Kernel.Task.make_app ~name:exec_prog.p_name ~entry:exec_prog.p_entry tasks);
  t

let reset ?(seed = 1) ?(failure = Failure.No_failures) ?faults t =
  Machine.reset ~seed ~failure ?faults t.m;
  Periph.Radio.reset t.radio;
  (* replay flash-time initialization (uncharged, as at build) *)
  Array.iter (fun (space, addr, v) -> Memory.write (Machine.mem t.m space) addr v) t.flash

(* {1 Session access}

   [run] decomposes into three reusable pieces so session-based
   drivers (prefix-resume campaigns, the explorer) can run the arena
   through the engine stepper instead of [Kernel.Engine.run]: [prepare]
   yields the engine inputs, [begin_metered] latches metering and
   zeroes the dispatch counters, [flush_counts] pushes them to the
   attached sheet at the end. The VM's volatile execution state (stack,
   locals, registers, step budget) is dead at attempt boundaries — the
   per-attempt prologue in [body_of] re-zeroes it — so engine-boundary
   checkpoints only need the metered dispatch counters
   ([save_counts]/[restore_counts]) and the radio, not the arrays. *)

let prepare ?check t =
  let app = Option.get t.app in
  let app =
    match check with
    | None -> app
    | Some f -> { app with Kernel.Task.check = Some (fun _m -> f t) }
  in
  (app, t.hooks, t.cur_slot)

let begin_metered t =
  t.metered <- Machine.metered t.m;
  if t.metered then begin
    Array.fill t.opcounts 0 n_ops 0;
    Array.fill t.callcounts 0 (Array.length t.callcounts) 0
  end

let flush_counts t =
  match Machine.meter t.m with
  | None -> ()
  | Some sheet ->
      (* flush the run's dispatch counts to the campaign sheet; the
         per-callsite intern is a hash lookup once per run, cold *)
      Array.iteri (fun op n -> if n > 0 then Obs.Sheet.add sheet vm_op_ids.(op) n) t.opcounts;
      Array.iteri
        (fun i n ->
          if n > 0 then
            Obs.Sheet.add sheet (Obs.Registry.counter ("vm/call/" ^ t.calls.(i).c_name)) n)
        t.callcounts

let save_counts t = (Array.copy t.opcounts, Array.copy t.callcounts)

let restore_counts t (ops, calls) =
  Array.blit ops 0 t.opcounts 0 (Array.length ops);
  Array.blit calls 0 t.callcounts 0 (Array.length calls)

let run ?check ?max_failures t =
  let app, hooks, cur_slot = prepare ?check t in
  begin_metered t;
  let outcome = Kernel.Engine.run ~hooks ?max_failures ~cur_slot t.m app in
  flush_counts t;
  outcome
