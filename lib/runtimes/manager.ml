open Platform

type strategy = Direct | Alpaca | Ink

let strategy_name = function Direct -> "Direct" | Alpaca -> "Alpaca" | Ink -> "InK"

type var = {
  name : string;
  primary : int;  (** canonical backing store in FRAM *)
  shadow : int;  (** Alpaca private copy / InK second buffer (-1 if none) *)
  index : int;  (** InK active-buffer index word (-1 if none) *)
  words : int;
  war : bool;
}

type t = { m : Machine.t; strategy : strategy; mutable vars : var list }

(* InK's reactive kernel runs a scheduler step at every task boundary. *)
let ink_scheduler_ops = 35

(* Alpaca writes a commit-list record (entry + ready flag) per
   privatized variable during two-phase commit. *)
let alpaca_commit_records = 2

(* Campaign metric ids (see Obs.Registry); interned once at module
   init. *)
let m_privatize_words = Obs.Registry.counter "runtime/privatize_words"
let m_commit_words = Obs.Registry.counter "runtime/commit_words"
let m_privatizes = Obs.Registry.counter "runtime/privatizes"
let m_commits = Obs.Registry.counter "runtime/commits"
let m_retries = Obs.Registry.counter "radio/backoff_retries"
let m_giveups = Obs.Registry.counter "radio/backoff_giveups"

let create m strategy = { m; strategy; vars = [] }
let machine t = t.m
let strategy t = t.strategy

let declare ?(war = false) t ~name ~words =
  let alloc suffix = Machine.alloc t.m Memory.Fram ~name:(name ^ suffix) ~words in
  let primary = alloc "" in
  let privatized = war && t.strategy <> Direct in
  let shadow =
    if privatized then
      Machine.alloc t.m Memory.Fram
        ~name:
          (match t.strategy with
          | Alpaca -> "rt.alpaca.priv." ^ name
          | Ink -> "rt.ink.buf2." ^ name
          | Direct -> assert false)
        ~words
    else -1
  in
  let index =
    if privatized && t.strategy = Ink then
      Machine.alloc t.m Memory.Fram ~name:("rt.ink.idx." ^ name) ~words:1
    else -1
  in
  let v = { name; primary; shadow; index; words; war } in
  t.vars <- v :: t.vars;
  v

let privatized t v = v.war && t.strategy <> Direct

(* InK: the two buffers swap roles; [active] is where committed data
   lives, the other buffer is the task's working copy. *)
let ink_active t v = if Machine.read t.m Memory.Fram v.index = 0 then v.primary else v.shadow
let ink_working t v = if Machine.read t.m Memory.Fram v.index = 0 then v.shadow else v.primary

let var_loc _t v = Loc.fram v.primary

let raw_loc t v =
  match t.strategy with
  | Direct | Alpaca -> Loc.fram v.primary
  | Ink -> if privatized t v then Loc.fram (ink_active t v) else Loc.fram v.primary

(* Like [raw_loc], but the InK index flag is peeked without charging:
   flash-time initialization precedes first power-up, so it must not
   tick the failure model (an [Nth_charge 1] schedule would otherwise
   fire before the engine can field it). *)
let flash_loc t v =
  match t.strategy with
  | Direct | Alpaca -> Loc.fram v.primary
  | Ink ->
      if privatized t v && Memory.read (Machine.mem t.m Memory.Fram) v.index <> 0 then
        Loc.fram v.shadow
      else Loc.fram v.primary

let working_base t v =
  if not (privatized t v) then v.primary
  else match t.strategy with Alpaca -> v.shadow | Ink -> ink_working t v | Direct -> v.primary

let check v i =
  if i < 0 || i >= v.words then
    invalid_arg (Printf.sprintf "Manager: index %d out of bounds for %s[%d]" i v.name v.words)

let read t v i =
  check v i;
  Machine.read t.m Memory.Fram (working_base t v + i)

let committed t v i =
  check v i;
  let base =
    if not (privatized t v) then v.primary
    else
      match t.strategy with
      | Alpaca | Direct -> v.primary
      | Ink ->
          (* uncharged: post-run inspection must not touch the failure model *)
          if Memory.read (Machine.mem t.m Memory.Fram) v.index = 0 then v.primary else v.shadow
  in
  Memory.read (Machine.mem t.m Memory.Fram) (base + i)

let write t v i x =
  check v i;
  Machine.write t.m Memory.Fram (working_base t v + i) x

let copy_words t ~src ~dst ~words =
  for i = 0 to words - 1 do
    Machine.write t.m Memory.Fram (dst + i) (Machine.read t.m Memory.Fram (src + i))
  done

let privatized_words t =
  List.fold_left (fun acc v -> if privatized t v then acc + v.words else acc) 0 t.vars

let on_task_start t task =
  (match t.strategy with
  | Direct -> ()
  | Alpaca ->
      List.iter
        (fun v -> if privatized t v then copy_words t ~src:v.primary ~dst:v.shadow ~words:v.words)
        t.vars
  | Ink ->
      Machine.cpu t.m ink_scheduler_ops;
      List.iter
        (fun v ->
          if privatized t v then
            copy_words t ~src:(ink_active t v) ~dst:(ink_working t v) ~words:v.words)
        t.vars);
  if t.strategy <> Direct then begin
    (match Machine.meter t.m with
    | None -> ()
    | Some sheet ->
        Obs.Sheet.bump sheet m_privatizes;
        Obs.Sheet.add sheet m_privatize_words (privatized_words t));
    if Machine.traced t.m then
      Machine.emit t.m
        (Trace.Event.Privatize
           { runtime = strategy_name t.strategy; task; words = privatized_words t })
  end

let on_commit t task =
  (match t.strategy with
  | Direct -> ()
  | Alpaca ->
      List.iter
        (fun v ->
          if privatized t v then begin
            copy_words t ~src:v.shadow ~dst:v.primary ~words:v.words;
            (* commit-list record: entry + ready flag *)
            Machine.charge_op t.m (Machine.cost t.m).Cost.fram_write alpaca_commit_records
          end)
        t.vars
  | Ink ->
      Machine.cpu t.m ink_scheduler_ops;
      List.iter
        (fun v ->
          if privatized t v then
            Machine.write t.m Memory.Fram v.index (1 - Machine.read t.m Memory.Fram v.index))
        t.vars);
  if t.strategy <> Direct then begin
    (match Machine.meter t.m with
    | None -> ()
    | Some sheet ->
        Obs.Sheet.bump sheet m_commits;
        Obs.Sheet.add sheet m_commit_words (privatized_words t));
    if Machine.traced t.m then
      Machine.emit t.m
        (Trace.Event.Commit
           { runtime = strategy_name t.strategy; task; words = privatized_words t })
  end

let hooks t =
  {
    Kernel.Engine.on_task_start = (fun _m task -> on_task_start t task);
    on_commit = (fun _m task -> on_commit t task);
    on_reboot = (fun _m -> ());
  }

(* {1 Radio retry / backoff} *)

type retry_policy = { max_attempts : int; base_backoff_us : int }

let default_retry = { max_attempts = 4; base_backoff_us = 500 }

let log_src = Logs.Src.create "runtimes.radio" ~doc:"radio retry/backoff policy"

module Log = (val Logs.src_log log_src : Logs.LOG)

let ev_retry = Machine.event_id "radio:retry"
let ev_giveup = Machine.event_id "radio:giveup"

let with_backoff ?(policy = default_retry) m send =
  if policy.max_attempts < 1 then invalid_arg "with_backoff: max_attempts must be >= 1";
  let rec attempt n backoff_us =
    match send () with
    | () -> true
    | exception Periph.Radio.Tx_dropped _ ->
        if n >= policy.max_attempts then begin
          Machine.bump_id m ev_giveup;
          (match Machine.meter m with
          | None -> ()
          | Some sheet -> Obs.Sheet.bump sheet m_giveups);
          if Machine.traced m then
            Machine.emit m (Trace.Event.Radio_give_up { attempts = n });
          Log.warn (fun k ->
              k "radio: dropping packet after %d failed attempts (t=%dus)" n (Machine.now m));
          false
        end
        else begin
          Machine.bump_id m ev_retry;
          (match Machine.meter m with
          | None -> ()
          | Some sheet -> Obs.Sheet.bump sheet m_retries);
          if Machine.traced m then
            Machine.emit m (Trace.Event.Radio_retry { attempt = n; backoff_us });
          (* the wait is runtime bookkeeping, not useful app work *)
          Machine.with_tag m Overhead (fun () -> Machine.idle m backoff_us);
          attempt (n + 1) (2 * backoff_us)
        end
  in
  attempt 1 policy.base_backoff_us
