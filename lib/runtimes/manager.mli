(** Task-shared non-volatile variable managers for the baseline
    runtimes (Alpaca, InK).

    Task-based systems keep task-shared state consistent across power
    failures by mediating the CPU's accesses to non-volatile variables:

    - {b Alpaca} (Maeng et al., OOPSLA '17): compile-time idempotency
      analysis finds variables with write-after-read dependences inside a
      task and privatizes exactly those — copy-in at task start, two-phase
      commit (copy-out + commit record) at task end.
    - {b InK} (Yildirim et al., SenSys '18): task-shared values are
      double-buffered; the task works on the inactive buffer and an index
      flip at commit publishes it. A small reactive-kernel scheduler adds
      a fixed per-boundary cost.
    - {b Direct}: no mediation (broken under power failures; used to
      demonstrate bugs).

    The defining limitation reproduced here: the analysis only sees {e
    CPU} accesses. Variables that are read or written by DMA are declared
    with [`war:false`] (the analysis cannot know), and {!raw_loc} hands
    DMA the unmediated backing address — so re-executed DMA corrupts
    memory behind the manager's back, exactly as in §2.1.2 of the
    paper. *)

open Platform

type strategy = Direct | Alpaca | Ink

val strategy_name : strategy -> string

type t
type var

val create : Machine.t -> strategy -> t
val machine : t -> Machine.t
val strategy : t -> strategy

val declare : ?war:bool -> t -> name:string -> words:int -> var
(** Declare a task-shared non-volatile variable. [war] marks a
    CPU-visible write-after-read dependence (what Alpaca's/InK's
    compile-time analysis would find); only such variables are
    privatized. Allocation is link-time (uncharged). *)

val var_loc : t -> var -> Loc.t
(** The variable's canonical FRAM location. *)

val raw_loc : t -> var -> Loc.t
(** Address DMA should use — always the unmediated backing store. *)

val flash_loc : t -> var -> Loc.t
(** Same resolution as {!raw_loc} but uncharged: for flash-time
    initialization, which happens before the device has ever been
    powered and must not advance the failure model. *)

val read : t -> var -> int -> int
(** [read t v i] — charged, mediated word read of element [i]. *)

val write : t -> var -> int -> int -> unit
(** [write t v i x] — charged, mediated word write. *)

val committed : t -> var -> int -> int
(** Uncharged read of the last *committed* value (for InK this is the
    active buffer, not the working copy). Use for post-run inspection
    and golden-state comparison, not from task bodies. *)

val hooks : t -> Kernel.Engine.hooks
(** Engine hooks performing privatization at task start and commit at
    task end (charged to the overhead bucket by the engine). *)

(** {1 Radio retry / backoff}

    Real intermittent stacks treat a lost packet as expected weather,
    not a crash: bounded retries with exponential backoff, then drop
    the packet and move on (graceful degradation — the node's next
    sample matters more than this one). *)

type retry_policy = {
  max_attempts : int;  (** total tries, including the first *)
  base_backoff_us : int;  (** wait before the 2nd try; doubles after *)
}

val default_retry : retry_policy
(** 4 attempts, 500 µs initial backoff (500 → 1000 → 2000). *)

val with_backoff : ?policy:retry_policy -> Machine.t -> (unit -> unit) -> bool
(** [with_backoff m send] runs [send ()], retrying on
    [Periph.Radio.Tx_dropped] with exponential backoff (charged to the
    overhead bucket; interruptible by power failures). Returns [true]
    on success; on budget exhaustion logs a warning, bumps
    ["radio:giveup"], emits [Radio_give_up], and returns [false] —
    {e never} lets [Tx_dropped] escape. Each retry bumps
    ["radio:retry"] and emits [Radio_retry]. *)
