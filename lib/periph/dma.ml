open Platform

let chunk_words = 16
let ev_dma = Machine.event_id "io:DMA"

let copy m ~(src : Loc.t) ~(dst : Loc.t) ~words =
  if words < 0 then invalid_arg "Dma.copy: negative length";
  let c = Machine.cost m in
  (* executions are counted when the transfer is programmed, so an
     interrupted transfer still counts as (wasted) I/O work *)
  Machine.bump_id m ev_dma;
  if Machine.traced m then begin
    let kind = function Memory.Fram -> Trace.Event.Fram | Memory.Sram -> Trace.Event.Sram in
    Machine.emit m (Trace.Event.Dma { src = kind src.space; dst = kind dst.space; words })
  end;
  let fault_index, interrupted = Faults.next_dma (Machine.faults m) in
  Machine.charge_op m c.Cost.dma_setup 1;
  let src_mem = Machine.mem m src.space and dst_mem = Machine.mem m dst.space in
  (* an injected interruption kills the transfer at its midpoint: the
     chunks already blitted stay written, the rest never happen — the
     same partial-copy state a power failure mid-transfer leaves. The
     re-executed copy draws a fresh occurrence index, so it completes. *)
  let cut = if interrupted then max 1 (words / 2) else max_int in
  let rec go done_ =
    if done_ < words then
      if done_ >= cut then begin
        if Machine.traced m then
          Machine.emit m (Trace.Event.Fault { kind = "dma-interrupt"; index = fault_index });
        (* halts the transfer even if death is deferred by an enclosing
           critical section: the DMA engine stops, the copy stays partial *)
        Machine.die m
      end
      else begin
        (* int-specialized: polymorphic [min] calls the generic
           comparator once per chunk *)
        let left = words - done_ in
        let n = if chunk_words < left then chunk_words else left in
        (* charge first: if power fails inside the chunk, the chunk is not
           written, but earlier chunks already are -> partial copy. *)
        Machine.charge_op m c.Cost.dma_word n;
        Memory.blit ~src:src_mem ~src_addr:(src.addr + done_) ~dst:dst_mem
          ~dst_addr:(dst.addr + done_) ~words:n;
        go (done_ + n)
      end
  in
  go 0
