open Platform

(* A glitched sample returns a deterministic corruption of the true
   value (bit-flip-style distortion) rather than random noise, so
   faulted runs stay reproducible. *)
let glitch v = 0x7FFF - v

(* event ids interned once at module init; sampling bumps by id *)
let ev_temp = Machine.event_id "io:Temp"
let ev_humd = Machine.event_id "io:Humd"
let ev_pres = Machine.event_id "io:Pres"
let ev_light = Machine.event_id "io:Light"

let sample m ~event ~us ~nj read =
  Machine.bump_id m event;
  Machine.charge m ~us ~nj;
  let v = read (Machine.world m) (Machine.now m) in
  let index, glitched = Faults.next_read (Machine.faults m) in
  if glitched then begin
    if Machine.traced m then
      Machine.emit m (Trace.Event.Fault { kind = "sensor-glitch"; index });
    glitch v
  end
  else v

let temperature_dc m = sample m ~event:ev_temp ~us:900 ~nj:700. World.temperature_dc
let humidity_pct m = sample m ~event:ev_humd ~us:700 ~nj:550. World.humidity_pct
let pressure_pa10 m = sample m ~event:ev_pres ~us:600 ~nj:450. World.pressure_pa10
let light_lux m = sample m ~event:ev_light ~us:400 ~nj:300. World.light_lux
