open Platform

type t = { m : Machine.t; mutable log : (Units.time_us * int array) list }

let create m = { m; log = [] }
let preamble_us = 2_000
let preamble_nj = 4_000.
let word_us = 40
let word_nj = 60.

let transmit t payload =
  let n = Array.length payload in
  Machine.bump t.m "io:Send";
  if Machine.traced t.m then Machine.emit t.m (Trace.Event.Radio_send { words = n });
  Machine.charge t.m ~us:preamble_us ~nj:preamble_nj;
  (* charge per-word in slices so failures can interrupt a long packet;
     the packet is logged only if the whole transmission completes. *)
  let rec go i =
    if i < n then begin
      let k = min 8 (n - i) in
      Machine.charge t.m ~us:(word_us * k) ~nj:(word_nj *. float_of_int k);
      go (i + k)
    end
  in
  go 0;
  t.log <- (Machine.now t.m, Array.copy payload) :: t.log

let send t payload = transmit t payload

let send_from t ~(src : Loc.t) ~words =
  let payload = Array.init words (fun i -> Machine.read t.m src.space (src.addr + i)) in
  transmit t payload

let log t = List.rev t.log
let packets_sent t = List.length t.log
