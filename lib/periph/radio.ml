open Platform

exception Tx_dropped of int

type t = {
  m : Machine.t;
  log_cap : int option;
  mutable log : (Units.time_us * int array) list;  (* newest first *)
  mutable log_len : int;
  mutable sent : int;
}

let create ?log_cap m =
  (match log_cap with
  | Some c when c <= 0 -> invalid_arg "Radio.create: log_cap must be positive"
  | _ -> ());
  { m; log_cap; log = []; log_len = 0; sent = 0 }

let reset t =
  t.log <- [];
  t.log_len <- 0;
  t.sent <- 0

(* O(1) capture/restore: the log is built of immutable conses over
   payload arrays that are copied at push time and never mutated, so
   sharing the spine with a snapshot is safe. *)
type snapshot = {
  sn_log : (Units.time_us * int array) list;
  sn_log_len : int;
  sn_sent : int;
}

let snapshot t = { sn_log = t.log; sn_log_len = t.log_len; sn_sent = t.sent }

let restore t sn =
  t.log <- sn.sn_log;
  t.log_len <- sn.sn_log_len;
  t.sent <- sn.sn_sent

let ev_send = Machine.event_id "io:Send"

let preamble_us = 2_000
let preamble_nj = 4_000.
let word_us = 40
let word_nj = 60.

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let push_log t entry =
  t.log <- entry :: t.log;
  t.log_len <- t.log_len + 1;
  match t.log_cap with
  | Some cap when t.log_len > cap ->
      (* O(cap) truncation per overflowing push keeps retention bounded
         for long campaigns without touching the hot uncapped path. *)
      t.log <- take cap t.log;
      t.log_len <- cap
  | _ -> ()

let transmit t payload =
  let n = Array.length payload in
  Machine.bump_id t.m ev_send;
  if Machine.traced t.m then Machine.emit t.m (Trace.Event.Radio_send { words = n });
  (* The occurrence index is drawn when the transmission starts, so
     attempts cut short by power failures still advance the fault plan. *)
  let index, dropped = Faults.next_send (Machine.faults t.m) in
  Machine.charge t.m ~us:preamble_us ~nj:preamble_nj;
  (* charge per-word in slices so failures can interrupt a long packet;
     the packet is logged only if the whole transmission completes. *)
  let rec go i =
    if i < n then begin
      let k = min 8 (n - i) in
      Machine.charge t.m ~us:(word_us * k) ~nj:(word_nj *. float_of_int k);
      go (i + k)
    end
  in
  go 0;
  if dropped then begin
    (* full TX cost paid, packet lost in flight *)
    if Machine.traced t.m then
      Machine.emit t.m (Trace.Event.Fault { kind = "radio-drop"; index });
    raise (Tx_dropped index)
  end;
  t.sent <- t.sent + 1;
  push_log t (Machine.now t.m, Array.copy payload)

let send t payload = transmit t payload

let send_from t ~(src : Loc.t) ~words =
  let payload = Array.init words (fun i -> Machine.read t.m src.space (src.addr + i)) in
  transmit t payload

let log t = List.rev t.log
let packets_sent t = t.sent
