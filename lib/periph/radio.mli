(** Packet radio.

    Transmission is the most energy-hungry operation on the board; the
    paper's headline example of wasted I/O is re-sending a packet that
    already went out before the power failure. Sent packets land in a
    receiver-side log that survives the device's power failures (the
    base station has mains power), so tests can observe duplicate
    transmissions.

    The machine's fault plan ([Platform.Faults]) can mark transmissions
    as dropped in flight: the full TX cost is paid, no packet arrives,
    and {!Tx_dropped} is raised for the retry policy
    ([Runtimes.Manager.with_backoff]) to handle. *)

open Platform

exception Tx_dropped of int
(** An injected TX drop: the payload carries the 1-based occurrence
    index of the faulted transmission. *)

type t

val create : ?log_cap:int -> Machine.t -> t
(** [log_cap] bounds the retained receiver log to the newest [cap]
    packets (unbounded by default); {!packets_sent} still counts every
    completed transmission. Raises [Invalid_argument] if [cap <= 0]. *)

val reset : t -> unit
(** Empty the receiver log and the sent counter; pairs with
    {!Platform.Machine.reset} when an arena is recycled between runs. *)

type snapshot
(** The receiver-side state (log + counters), captured in O(1): log
    entries are immutable and payloads are copied at push time, so a
    snapshot safely shares the list spine. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Pair with {!Platform.Machine.restore_snapshot} when rolling a run
    back to a checkpoint. *)

val send : t -> int array -> unit
(** Transmit a packet; ~2 ms preamble + 40 µs/word, high energy. Bumps
    ["io:Send"]. The packet is appended to the receiver log only when
    the transmission completes. Raises {!Tx_dropped} if the machine's
    fault plan drops this transmission (after charging the full cost). *)

val send_from : t -> src:Loc.t -> words:int -> unit
(** Transmit straight out of memory (charged reads). *)

val log : t -> (Units.time_us * int array) list
(** Received packets, oldest first (at most [log_cap] newest when
    capped). *)

val packets_sent : t -> int
(** Completed transmissions, all-time — O(1), unaffected by
    [log_cap] eviction. *)
