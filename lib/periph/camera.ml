open Platform

(* the imager draws real power while integrating the frame *)
let exposure_nj_per_us = 0.8
let ev_capture = Machine.event_id "io:Capture"

let capture ?(exposure_us = 4_000) m ~(dst : Loc.t) ~pixels =
  Machine.bump_id m ev_capture;
  let slice = 250 in
  let rec expose remaining =
    if remaining > 0 then begin
      let step = min slice remaining in
      Machine.charge m ~us:step ~nj:(exposure_nj_per_us *. float_of_int step);
      expose (remaining - step)
    end
  in
  expose exposure_us;
  let shot_at = Machine.now m in
  let w = Machine.world m in
  for i = 0 to pixels - 1 do
    Machine.write m dst.space (dst.addr + i) (World.image_pixel w shot_at i)
  done
