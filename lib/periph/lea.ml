open Platform

let leram_words = 2048
let ev_lea = Machine.event_id "io:LEA"

(* The LEA-RAM window is just a named SRAM region; allocating through the
   machine's SRAM layout keeps footprint accounting unified. *)
let alloc_leram m ~name ~words =
  Machine.alloc m Memory.Sram ~name:("leram." ^ name) ~words

let check_sram m addr len op =
  let size = Memory.size (Machine.mem m Memory.Sram) in
  if addr < 0 || addr + len > size then
    invalid_arg (Printf.sprintf "Lea.%s: operand [%d,%d) outside SRAM" op addr (addr + len))

let start m ~op elements =
  let c = Machine.cost m in
  (* executions are counted when the command is issued, so interrupted
     commands still count as spent I/O work *)
  Machine.bump_id m ev_lea;
  if Machine.traced m then Machine.emit m (Trace.Event.Lea { op; elements });
  Machine.charge_op m c.Cost.lea_setup 1;
  Machine.charge_op m c.Cost.lea_element elements

let vector_mac ?(shift = 0) m ~a ~b ~len =
  check_sram m a len "vector_mac";
  check_sram m b len "vector_mac";
  start m ~op:"vector_mac" len;
  let sram = Machine.mem m Memory.Sram in
  let acc = ref 0 in
  for i = 0 to len - 1 do
    acc := !acc + (Memory.read sram (a + i) * Memory.read sram (b + i))
  done;
  !acc asr shift

let fir ?(shift = 0) m ~input ~coeffs ~taps ~output ~samples =
  check_sram m input (samples + taps - 1) "fir";
  check_sram m coeffs taps "fir";
  check_sram m output samples "fir";
  start m ~op:"fir" (samples * taps);
  let sram = Machine.mem m Memory.Sram in
  for i = 0 to samples - 1 do
    let acc = ref 0 in
    for j = 0 to taps - 1 do
      acc := !acc + (Memory.read sram (input + i + j) * Memory.read sram (coeffs + j))
    done;
    Memory.write sram (output + i) (!acc asr shift)
  done

let vector_add m ~a ~b ~dst ~len =
  check_sram m a len "vector_add";
  check_sram m b len "vector_add";
  check_sram m dst len "vector_add";
  start m ~op:"vector_add" len;
  let sram = Machine.mem m Memory.Sram in
  for i = 0 to len - 1 do
    Memory.write sram (dst + i) (Memory.read sram (a + i) + Memory.read sram (b + i))
  done

let vector_max m ~a ~len =
  if len <= 0 then invalid_arg "Lea.vector_max: empty vector";
  check_sram m a len "vector_max";
  start m ~op:"vector_max" len;
  let sram = Machine.mem m Memory.Sram in
  let best = ref 0 in
  for i = 1 to len - 1 do
    if Memory.read sram (a + i) > Memory.read sram (a + !best) then best := i
  done;
  !best
