open Platform

type golden = {
  fram : Memory.image;
  entries : Layout.entry list;
  charges : int;
  total_us : int;
}

let capture m =
  {
    fram = Memory.snapshot (Machine.mem m Memory.Fram);
    entries = Layout.entries (Machine.layout m Memory.Fram);
    charges = Machine.charges m;
    total_us = Machine.now m;
  }

type mismatch = { region : string; offset : int; expected : int; actual : int }

let pp_mismatch fmt { region; offset; expected; actual } =
  Format.fprintf fmt "%s[%d]: golden %d, got %d" region offset expected actual

(* Runtime bookkeeping is legitimately schedule-dependent: InK's
   inactive buffer holds the working copy of the last (possibly
   aborted) attempt; Alpaca's shadows, EaseIO's privatization buffers
   and the source transform's inserted state (locks, timestamps,
   privatization scratch — all "__"-prefixed) likewise mirror wherever
   failures happened to strike. The set mirrors Footprint's overhead
   accounting: only app-visible committed state must match the golden
   run. *)
let default_ignores = [ "__"; "rt."; "easeio." ]

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

let max_reported = 16

let nv_diff ?(ignores = default_ignores) ?(extra_volatile = []) ~golden m =
  let skip = ignores @ extra_volatile in
  let ignored name = List.exists (fun p -> has_prefix p name) skip in
  let mem = Machine.mem m Memory.Fram in
  let entries = Layout.entries (Machine.layout m Memory.Fram) in
  (* deterministic schedules never change what the program allocates;
     a layout divergence is itself an oracle violation *)
  if entries <> golden.entries then
    [ { region = "(layout)"; offset = 0; expected = List.length golden.entries;
        actual = List.length entries } ]
  else begin
    let mismatches = ref [] and count = ref 0 in
    List.iter
      (fun { Layout.name; addr; words } ->
        if not (ignored name) then
          (* report at most one mismatch per region: the first word
             tells which region corrupted; the rest is noise *)
          let rec scan i =
            if i < words && !count < max_reported then begin
              let expected = Memory.image_get golden.fram (addr + i)
              and actual = Memory.read mem (addr + i) in
              if expected <> actual then begin
                mismatches := { region = name; offset = i; expected; actual } :: !mismatches;
                incr count
              end
              else scan (i + 1)
            end
          in
          scan 0)
      entries;
    List.rev !mismatches
  end

(* {1 Always-re-execution oracle} *)

let always_skip_watch () =
  let skipped = ref [] in
  let sink (e : Trace.Event.t) =
    match e.payload with
    | Trace.Event.Io { site; sem = Trace.Event.Always; decision = Trace.Event.Skip; _ } ->
        skipped := site :: !skipped
    | _ -> ()
  in
  (sink, fun () -> List.rev !skipped)
