(** Correctness oracles for fault-injection campaigns.

    The simulator's determinism contract — every run is a pure function
    of (spec, seed) — turns correctness checking into {e differential}
    testing: run the app once on continuous power ({!capture} the
    golden state), then demand that every failure schedule commits the
    same final non-volatile image, modulo regions that legitimately
    depend on {e when} the world was sampled (the app's
    [Common.spec.nv_volatile] list) and runtime-internal bookkeeping
    ({!default_ignores}). A surviving difference is exactly the class
    of bug EaseIO's safety claims rule out: WAR-inconsistent committed
    state from a skipped or re-executed I/O. *)

open Platform

type golden = {
  fram : Memory.image;  (** full committed FRAM image (COW snapshot) *)
  entries : Layout.entry list;  (** FRAM allocation map at capture *)
  charges : int;
      (** total {!Machine.charge} calls of the clean run — the probe
          an exhaustive [Nth_charge] boundary sweep iterates over *)
  total_us : int;  (** clean-run duration (bounds [At_times] draws) *)
}

val capture : Machine.t -> golden
(** Snapshot a machine after a completed run (uncharged). Call from a
    run's [probe] hook. *)

type mismatch = { region : string; offset : int; expected : int; actual : int }

val pp_mismatch : Format.formatter -> mismatch -> unit

val default_ignores : string list
(** Allocation-name prefixes never compared — the same set
    [Lang.Footprint] counts as runtime overhead: ["__"] (source
    transform: locks, timestamps, privatization scratch), ["rt."]
    (Alpaca shadows, InK second buffers/indices) and ["easeio."]
    (privatization buffers, site flags). They hold attempt-local
    working state that lawfully differs across schedules. *)

val nv_diff :
  ?ignores:string list -> ?extra_volatile:string list -> golden:golden -> Machine.t -> mismatch list
(** Compare the machine's final FRAM image against [golden], skipping
    regions whose name starts with any of [ignores] (default
    {!default_ignores}) or [extra_volatile] (the app's [nv_volatile]).
    Reports at most one mismatch per region and at most 16 total; an
    allocation-map divergence is reported as a single ["(layout)"]
    pseudo-mismatch. Empty result = oracle passed. Uncharged: call
    after the engine returns. *)

val always_skip_watch : unit -> Trace.Event.sink * (unit -> string list)
(** The [Always]-re-execution oracle: a streaming trace sink that
    records every I/O site with [Always] semantics whose decision was
    [Skip] — which the semantics forbids, ever. Returns the sink (pass
    to the run) and a getter for the violating site names, in order. *)
