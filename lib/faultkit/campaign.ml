open Platform

type sweep = Boundaries of { stride : int } | Random of { cases : int }

let sweep_to_string = function
  | Boundaries { stride = 1 } -> "boundaries"
  | Boundaries { stride } -> Printf.sprintf "boundaries:%d" stride
  | Random { cases } -> Printf.sprintf "random:%d" cases

let sweep_of_string s =
  match s with
  | "boundaries" -> Ok (Boundaries { stride = 1 })
  | _ -> (
      match String.index_opt s ':' with
      | None -> Error (Printf.sprintf "unknown sweep %S (try boundaries[:STRIDE]|random:N)" s)
      | Some i -> (
          let kind = String.sub s 0 i in
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match (kind, int_of_string_opt arg) with
          | "boundaries", Some stride when stride >= 1 -> Ok (Boundaries { stride })
          | "random", Some cases when cases >= 1 -> Ok (Random { cases })
          | ("boundaries" | "random"), _ ->
              Error (Printf.sprintf "sweep %s: expected a positive integer, got %S" kind arg)
          | _, _ -> Error (Printf.sprintf "unknown sweep kind %S" kind)))

type violation =
  | Livelock of string
  | App_incorrect
  | Nv_mismatch of Oracle.mismatch list
  | Always_skipped of string list

type case = { schedule : Failure.spec; pf : int; violations : violation list }

(* Summed Kernel.Metrics across a set of runs — the exact-integer side
   of the attribution reconciliation (Obs.Attr.reconcile). *)
type totals = { app_us : int; ovh_us : int; wasted_us : int; commits : int; attempts : int }

let zero_totals = { app_us = 0; ovh_us = 0; wasted_us = 0; commits = 0; attempts = 0 }

let add_totals a b =
  {
    app_us = a.app_us + b.app_us;
    ovh_us = a.ovh_us + b.ovh_us;
    wasted_us = a.wasted_us + b.wasted_us;
    commits = a.commits + b.commits;
    attempts = a.attempts + b.attempts;
  }

type cell = {
  variant : Apps.Common.variant;
  boundaries : int;
  cases : int;
  boundaries_run : int;
  strided : bool;
  failed : case list;
  snap : Obs.Snapshot.t;
  cell_profile : Obs.Attr.profile;
  cell_totals : totals;
}

(* Exact boundary coverage of a sweep: how many of the [boundaries]
   charge points were actually run as [Nth_charge] cases. Random sweeps
   cover none (their schedules are time-driven). *)
let coverage ~sweep ~cases =
  match sweep with
  | Boundaries { stride } -> (cases, stride > 1)
  | Random _ -> (0, false)

type report = { app : string; sweep : sweep; seed : int; cells : cell list }

let golden_of (spec : Apps.Common.spec) variant ~seed =
  let captured = ref None in
  let run =
    spec.run
      ~probe:(fun m -> captured := Some (Oracle.capture m))
      variant ~failure:Failure.No_failures ~seed
  in
  let g =
    match !captured with
    | Some g -> g
    | None -> failwith "Campaign: app runner ignored the probe hook"
  in
  if run.Expkit.Run.gave_up || run.Expkit.Run.correct = Some false then
    failwith
      (Printf.sprintf "Campaign: golden (no-failure) run of %s under %s is not correct" spec.app_name
         (Apps.Common.variant_name variant));
  g

(* Random schedules are derived from (campaign seed, case index) only,
   so a campaign is reproducible and independent of evaluation order.
   On-times stay in the paper's ballpark: long enough that every
   benchmark makes forward progress, short enough to exercise plenty of
   reboot paths. *)
let random_schedule ~seed ~golden i =
  let rng = Rng.create (Rng.hash2 seed (i + 1)) in
  if i mod 2 = 0 then begin
    let k = 1 + Rng.int rng 3 in
    let horizon = max 2 golden.Oracle.total_us in
    let ts = List.init k (fun _ -> 1 + Rng.int rng horizon) in
    Failure.At_times (List.sort_uniq compare ts)
  end
  else begin
    let on_min_us = Rng.int_in rng 5_000 12_000 in
    let on_max_us = on_min_us + Rng.int_in rng 1_000 8_000 in
    let off_min_us = Rng.int_in rng 1_000 5_000 in
    let off_max_us = off_min_us + Rng.int_in rng 1_000 10_000 in
    Failure.Timer { on_min_us; on_max_us; off_min_us; off_max_us }
  end

let schedules ~sweep ~seed ~golden =
  match sweep with
  | Boundaries { stride } ->
      if stride < 1 then invalid_arg "Campaign: stride must be >= 1";
      let rec go k acc =
        if k > golden.Oracle.charges then List.rev acc
        else go (k + stride) (Failure.Nth_charge k :: acc)
      in
      go 1 []
  | Random { cases } ->
      if cases < 1 then invalid_arg "Campaign: random case count must be >= 1";
      List.init cases (random_schedule ~seed ~golden)

(* A case is one full app run plus its observability harvest. Each
   case gets a fresh sheet and attribution collector (never shared
   across domains); the fold back into the cell happens in schedule
   order, so everything downstream is jobs-invariant. Campaigns meter
   unconditionally — every case already carries a trace sink for the
   Always oracle, so this is not a hot path. *)
let run_case (spec : Apps.Common.spec) variant ~golden ~seed schedule =
  let watch, skips = Oracle.always_skip_watch () in
  let attr = Obs.Attr.create () in
  let attr_sink = Obs.Attr.sink attr in
  let sink e =
    watch e;
    attr_sink e
  in
  let sheet = Obs.Sheet.create () in
  let diff = ref [] in
  let events = ref [] in
  let probe m =
    diff := Oracle.nv_diff ~extra_volatile:spec.nv_volatile ~golden m;
    events := Machine.events m
  in
  let one = spec.run ~sink ~meter:sheet ~probe variant ~failure:schedule ~seed in
  Obs.Attr.add_run attr;
  let violations =
    if one.Expkit.Run.gave_up then
      (* the final state was never reached: the NV diff is meaningless,
         the livelock itself is the violation *)
      [ Livelock (Option.value ~default:"(unknown)" one.Expkit.Run.stuck_task) ]
    else
      (if one.Expkit.Run.correct = Some false then [ App_incorrect ] else [])
      @ (match !diff with [] -> [] | ms -> [ Nv_mismatch ms ])
      @ (match skips () with [] -> [] | ss -> [ Always_skipped ss ])
  in
  ( { schedule; pf = one.Expkit.Run.pf; violations },
    Obs.Snapshot.of_sheet ~events:!events sheet,
    Obs.Attr.profile attr,
    {
      app_us = one.Expkit.Run.app_us;
      ovh_us = one.Expkit.Run.ovh_us;
      wasted_us = one.Expkit.Run.wasted_us;
      commits = one.Expkit.Run.commits;
      attempts = one.Expkit.Run.attempts;
    } )

(* Fold an array of per-case results (in schedule order) into a cell.
   Shared by the from-power-on and prefix-resume paths — the folds
   happen in the same order either way, so the two paths produce
   bit-identical cells. *)
let cell_of_results ~sweep ~golden variant results =
  let failed =
    List.filter_map
      (fun (c, _, _, _) -> if c.violations <> [] then Some c else None)
      (Array.to_list results)
  in
  let snap =
    Array.fold_left (fun acc (_, s, _, _) -> Obs.Snapshot.merge acc s) Obs.Snapshot.zero results
  in
  let cell_profile =
    Array.fold_left (fun acc (_, _, p, _) -> Obs.Attr.merge acc p) Obs.Attr.empty results
  in
  let cell_totals =
    Array.fold_left (fun acc (_, _, _, t) -> add_totals acc t) zero_totals results
  in
  let cases = Array.length results in
  let boundaries_run, strided = coverage ~sweep ~cases in
  {
    variant;
    boundaries = golden.Oracle.charges;
    cases;
    boundaries_run;
    strided;
    failed;
    snap;
    cell_profile;
    cell_totals;
  }

let c_prefix_saved = Obs.Registry.counter "resume/prefix_us_saved"

(* Prefix-sharing boundary sweep. Apps with a [session] runner expose
   raw engine inputs, so an exhaustive [Nth_charge] sweep need not
   replay the whole prefix from power on once per boundary: a single
   continuous pacer run checkpoints the engine at every attempt top
   (copy-on-write machine snapshot + a copy of the metering sheet + a
   cursor into the recorded event stream + the session's extra-machine
   state), and each case restores the latest checkpoint strictly before
   its boundary, latches [Nth_charge k] and runs only the suffix.
   [Nth_charge] deadlines are absolute charge counts and the machine's
   charge counter is part of the snapshot, so a resumed case fails at
   exactly the boundary a from-power-on run would. Replaying the
   buffered prefix events into each case's fresh Always-watch and
   attribution collector makes every harvested artifact — violations,
   metric snapshot, profile, totals — byte-identical to the
   from-power-on path (the equivalence test holds the two against each
   other). Sequential by construction: all cases share one arena. The
   skipped simulated prefix time is accounted under
   [resume/prefix_us_saved] on an internal sheet (kept out of the
   report so both paths serialize identically). *)
let run_cell_resumed ?progress ~sweep ~seed (spec : Apps.Common.spec) mk_session variant =
  let session = mk_session ?ablate_regions:None ?ablate_semantics:None variant ~seed in
  let m = session.Apps.Common.ses_machine in
  let pacer_sheet = Obs.Sheet.create () in
  let ev_buf = ref [] and ev_len = ref 0 in
  Machine.set_sink m (fun e ->
      ev_buf := e :: !ev_buf;
      incr ev_len);
  Machine.set_meter m pacer_sheet;
  session.Apps.Common.ses_begin ();
  let engine =
    Kernel.Engine.start ~hooks:session.Apps.Common.ses_hooks
      ?cur_slot:session.Apps.Common.ses_cur_slot m session.Apps.Common.ses_app
  in
  let cks = ref [] in
  let on_attempt s =
    (* sheet copy, event cursor and session state first: the engine
       checkpoint's own page-copy accounting must stay out of the case
       prefixes (a from-power-on case takes no snapshots) *)
    let sheet_at = Obs.Sheet.copy pacer_sheet in
    let extras = session.Apps.Common.ses_save () in
    let cursor = !ev_len in
    Machine.clear_meter m;
    let ck = Kernel.Engine.checkpoint s in
    Machine.set_meter m pacer_sheet;
    cks := (ck, sheet_at, cursor, extras) :: !cks
  in
  let drive ?on_attempt () =
    let rec go () =
      match Kernel.Engine.run_until_boundary ?on_attempt engine with
      | Kernel.Engine.Paused ->
          Kernel.Engine.resume engine;
          go ()
      | Kernel.Engine.Finished o -> o
    in
    go ()
  in
  (* the pacer run doubles as the golden capture *)
  let o0 = drive ~on_attempt () in
  let golden = Oracle.capture m in
  if o0.Kernel.Engine.gave_up || o0.Kernel.Engine.correct = Some false then
    failwith
      (Printf.sprintf "Campaign: golden (no-failure) run of %s under %s is not correct" spec.app_name
         (Apps.Common.variant_name variant));
  let cks = Array.of_list (List.rev !cks) in
  let events = Array.of_list (List.rev !ev_buf) in
  let scheds = Array.of_list (schedules ~sweep ~seed ~golden) in
  Option.iter (fun p -> Obs.Progress.add_total p (Array.length scheds)) progress;
  (* latest checkpoint strictly before charge [k]; schedules come in
     ascending boundary order, so a moving cursor never backtracks *)
  let cursor = ref 0 in
  let ck_charges i =
    let ck, _, _, _ = cks.(i) in
    Kernel.Engine.checkpoint_charges ck
  in
  let advance k =
    while !cursor + 1 < Array.length cks && ck_charges (!cursor + 1) < k do
      incr cursor
    done;
    cks.(!cursor)
  in
  let resumed_case k schedule =
    let ck, sheet_at, ev_idx, extras = advance k in
    let watch, skips = Oracle.always_skip_watch () in
    let attr = Obs.Attr.create () in
    let attr_sink = Obs.Attr.sink attr in
    let sink e =
      watch e;
      attr_sink e
    in
    for i = 0 to ev_idx - 1 do
      sink events.(i)
    done;
    let sheet = Obs.Sheet.copy sheet_at in
    Machine.set_sink m sink;
    Machine.set_meter m sheet;
    Kernel.Engine.restore engine ck;
    extras ();
    Obs.Sheet.add pacer_sheet c_prefix_saved (Machine.now m);
    Machine.set_failure m schedule;
    let o = drive () in
    session.Apps.Common.ses_finish ();
    Obs.Attr.add_run attr;
    let violations =
      if o.Kernel.Engine.gave_up then
        [ Livelock (Option.value ~default:"(unknown)" o.Kernel.Engine.stuck_task) ]
      else
        (if o.Kernel.Engine.correct = Some false then [ App_incorrect ] else [])
        @ (match Oracle.nv_diff ~extra_volatile:spec.nv_volatile ~golden m with
          | [] -> []
          | ms -> [ Nv_mismatch ms ])
        @ match skips () with [] -> [] | ss -> [ Always_skipped ss ]
    in
    let mt = o.Kernel.Engine.metrics in
    ( { schedule; pf = o.Kernel.Engine.power_failures; violations },
      Obs.Snapshot.of_sheet ~events:(Machine.events m) sheet,
      Obs.Attr.profile attr,
      {
        app_us = mt.Kernel.Metrics.useful_app_us;
        ovh_us = mt.Kernel.Metrics.useful_ovh_us;
        wasted_us = mt.Kernel.Metrics.wasted_us;
        commits = mt.Kernel.Metrics.commits;
        attempts = mt.Kernel.Metrics.attempts;
      } )
  in
  (* boundaries at or before the first checkpoint's charge count (power
     failed during the initial boot, before the first attempt top) have
     no resumable prefix; they fall back to from-power-on runs AFTER the
     resumed pass, because [spec.run] resets the shared arena *)
  let c0 = if Array.length cks = 0 then max_int else ck_charges 0 in
  let n = Array.length scheds in
  let results = Array.make n None in
  let k_of = function Failure.Nth_charge k -> k | _ -> invalid_arg "Campaign: resumed sweep" in
  Array.iteri
    (fun i schedule ->
      let k = k_of schedule in
      if k > c0 then begin
        results.(i) <- Some (resumed_case k schedule);
        Option.iter (fun p -> Obs.Progress.tick p) progress
      end)
    scheds;
  Array.iteri
    (fun i schedule ->
      if results.(i) = None then begin
        results.(i) <- Some (run_case spec variant ~golden ~seed schedule);
        Option.iter (fun p -> Obs.Progress.tick p) progress
      end)
    scheds;
  cell_of_results ~sweep ~golden variant (Array.map Option.get results)

let run_cell ?jobs ?progress ~resume ~sweep ~seed (spec : Apps.Common.spec) variant =
  match (sweep, spec.Apps.Common.session) with
  | Boundaries _, Some mk_session when resume ->
      run_cell_resumed ?progress ~sweep ~seed spec mk_session variant
  | _ ->
      let golden = golden_of spec variant ~seed in
      let scheds = Array.of_list (schedules ~sweep ~seed ~golden) in
      Option.iter (fun p -> Obs.Progress.add_total p (Array.length scheds)) progress;
      let tick = Option.map (fun p () -> Obs.Progress.tick p) progress in
      (* one case per schedule, fanned over the domain pool; results come
         back in schedule order, so the folds below (and hence the report,
         its metrics and its JSON) are bit-identical for any [jobs] *)
      let results =
        Expkit.Pool.map ?jobs ?tick (Array.length scheds) (fun i ->
            run_case spec variant ~golden ~seed scheds.(i))
      in
      cell_of_results ~sweep ~golden variant results

let run ?jobs ?progress ?(resume = true) ?(seed = 1) ~sweep ~variants (spec : Apps.Common.spec) =
  {
    app = spec.app_name;
    sweep;
    seed;
    cells = List.map (run_cell ?jobs ?progress ~resume ~sweep ~seed spec) variants;
  }

let cell_passed c = c.failed = []
let passed r = List.for_all cell_passed r.cells

let coverage_totals r =
  List.fold_left (fun (t, run) c -> (t + c.boundaries, run + c.boundaries_run)) (0, 0) r.cells

let strided r = List.exists (fun c -> c.strided) r.cells

(* {1 Campaign-wide observability} *)

let snapshot r =
  List.fold_left (fun acc c -> Obs.Snapshot.merge acc c.snap) Obs.Snapshot.zero r.cells

let profile r = List.fold_left (fun acc c -> Obs.Attr.merge acc c.cell_profile) Obs.Attr.empty r.cells
let totals r = List.fold_left (fun acc c -> add_totals acc c.cell_totals) zero_totals r.cells

let reconcile r =
  let t = totals r in
  Obs.Attr.reconcile (profile r) ~app_us:t.app_us ~ovh_us:t.ovh_us ~wasted_us:t.wasted_us
    ~commits:t.commits ~attempts:t.attempts

let flamegraph r = Obs.Attr.to_folded ~prefix:r.app (profile r)

let perfetto r =
  let cells = Array.of_list r.cells in
  let series f = Array.map f cells in
  Obs.Attr.perfetto_counters
    [
      ("campaign/app_us", series (fun c -> c.cell_totals.app_us));
      ("campaign/ovh_us", series (fun c -> c.cell_totals.ovh_us));
      ("campaign/wasted_us", series (fun c -> c.cell_totals.wasted_us));
      ("campaign/power_failures", series (fun c -> c.cell_profile.Obs.Attr.power_failures));
      ("campaign/failed_cases", series (fun c -> List.length c.failed));
    ]

(* {1 JSON} *)

let max_failed_in_json = 20

let violation_json = function
  | Livelock task ->
      Trace.Json.Obj
        [ ("kind", Trace.Json.String "livelock"); ("stuck_task", Trace.Json.String task) ]
  | App_incorrect -> Trace.Json.Obj [ ("kind", Trace.Json.String "app-incorrect") ]
  | Nv_mismatch ms ->
      Trace.Json.Obj
        [
          ("kind", Trace.Json.String "nv-mismatch");
          ( "mismatches",
            Trace.Json.List
              (List.map
                 (fun (m : Oracle.mismatch) ->
                   Trace.Json.Obj
                     [
                       ("region", Trace.Json.String m.region);
                       ("offset", Trace.Json.Int m.offset);
                       ("expected", Trace.Json.Int m.expected);
                       ("actual", Trace.Json.Int m.actual);
                     ])
                 ms) );
        ]
  | Always_skipped sites ->
      Trace.Json.Obj
        [
          ("kind", Trace.Json.String "always-skipped");
          ("sites", Trace.Json.List (List.map (fun s -> Trace.Json.String s) sites));
        ]

let case_json c =
  Trace.Json.Obj
    [
      ("schedule", Trace.Json.String (Failure.to_string c.schedule));
      ("power_failures", Trace.Json.Int c.pf);
      ("violations", Trace.Json.List (List.map violation_json c.violations));
    ]

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let totals_json t =
  Trace.Json.Obj
    [
      ("app_us", Trace.Json.Int t.app_us);
      ("ovh_us", Trace.Json.Int t.ovh_us);
      ("wasted_us", Trace.Json.Int t.wasted_us);
      ("commits", Trace.Json.Int t.commits);
      ("attempts", Trace.Json.Int t.attempts);
    ]

let cell_json c =
  Trace.Json.Obj
    [
      ("runtime", Trace.Json.String (Apps.Common.variant_name c.variant));
      ("boundaries", Trace.Json.Int c.boundaries);
      ("cases", Trace.Json.Int c.cases);
      ("boundaries_total", Trace.Json.Int c.boundaries);
      ("boundaries_run", Trace.Json.Int c.boundaries_run);
      ("strided", Trace.Json.Bool c.strided);
      ("passed", Trace.Json.Bool (cell_passed c));
      ("failed_count", Trace.Json.Int (List.length c.failed));
      ("failed_cases", Trace.Json.List (List.map case_json (take max_failed_in_json c.failed)));
      ("totals", totals_json c.cell_totals);
      ("metrics", Obs.Snapshot.to_json c.snap);
      ("profile", Obs.Attr.to_json c.cell_profile);
    ]

let to_json r =
  let boundaries_total, boundaries_run = coverage_totals r in
  Trace.Json.Obj
    [
      ("app", Trace.Json.String r.app);
      ("sweep", Trace.Json.String (sweep_to_string r.sweep));
      ("seed", Trace.Json.Int r.seed);
      ("boundaries_total", Trace.Json.Int boundaries_total);
      ("boundaries_run", Trace.Json.Int boundaries_run);
      ("strided", Trace.Json.Bool (strided r));
      ("passed", Trace.Json.Bool (passed r));
      ("cells", Trace.Json.List (List.map cell_json r.cells));
      ("totals", totals_json (totals r));
      ("metrics", Obs.Snapshot.to_json (snapshot r));
      ("profile", Obs.Attr.to_json (profile r));
    ]
