(** Fault-injection campaign runner.

    A campaign fans a list of failure schedules over the domain pool —
    one full app execution per schedule — and judges every run with the
    {!Oracle} suite:

    - {e livelock}: the engine gave up (forward-progress watchdog or
      failure budget); the stuck task is reported;
    - {e app-incorrect}: the app's own output check failed;
    - {e nv-mismatch}: the committed FRAM image differs from the
      no-failure golden run outside declared-volatile regions;
    - {e always-skipped}: an [Always] I/O site skipped re-execution.

    Two sweep shapes: [Boundaries] replays the app once per
    {!Platform.Failure.Nth_charge} boundary of the golden run (stride 1
    is the exhaustive sweep — {e every} possible failure placement at
    charge granularity); [Random] draws [At_times]/[Timer] schedules
    from the campaign seed. Reports are pure functions of
    (app, variants, sweep, seed): bit-identical for any [jobs]. *)

open Platform

type sweep = Boundaries of { stride : int } | Random of { cases : int }

val sweep_to_string : sweep -> string

val sweep_of_string : string -> (sweep, string) result
(** [boundaries], [boundaries:STRIDE] or [random:N]. *)

type violation =
  | Livelock of string  (** stuck task name *)
  | App_incorrect
  | Nv_mismatch of Oracle.mismatch list
  | Always_skipped of string list  (** offending site names *)

type case = { schedule : Failure.spec; pf : int; violations : violation list }

type cell = {
  variant : Apps.Common.variant;
  boundaries : int;  (** golden-run charge count (sweep space size) *)
  cases : int;  (** schedules actually run *)
  failed : case list;  (** cases with at least one violation *)
}

type report = { app : string; sweep : sweep; seed : int; cells : cell list }

val run :
  ?jobs:int ->
  ?seed:int ->
  sweep:sweep ->
  variants:Apps.Common.variant list ->
  Apps.Common.spec ->
  report
(** Run one campaign: per variant, a golden capture then the sweep.
    Raises [Failure] if a golden (no-failure) run is itself incorrect.
    Default seed 1. [jobs] sizes the domain pool; the report is
    bit-identical for any value. *)

val cell_passed : cell -> bool
val passed : report -> bool

val to_json : report -> Trace.Json.t
(** Stable JSON (at most 20 failed cases detailed per cell;
    [failed_count] always carries the true number). *)
