(** Fault-injection campaign runner.

    A campaign fans a list of failure schedules over the domain pool —
    one full app execution per schedule — and judges every run with the
    {!Oracle} suite:

    - {e livelock}: the engine gave up (forward-progress watchdog or
      failure budget); the stuck task is reported;
    - {e app-incorrect}: the app's own output check failed;
    - {e nv-mismatch}: the committed FRAM image differs from the
      no-failure golden run outside declared-volatile regions;
    - {e always-skipped}: an [Always] I/O site skipped re-execution.

    Two sweep shapes: [Boundaries] replays the app once per
    {!Platform.Failure.Nth_charge} boundary of the golden run (stride 1
    is the exhaustive sweep — {e every} possible failure placement at
    charge granularity); [Random] draws [At_times]/[Timer] schedules
    from the campaign seed. Reports are pure functions of
    (app, variants, sweep, seed): bit-identical for any [jobs]. *)

open Platform

type sweep = Boundaries of { stride : int } | Random of { cases : int }

val sweep_to_string : sweep -> string

val sweep_of_string : string -> (sweep, string) result
(** [boundaries], [boundaries:STRIDE] or [random:N]. *)

type violation =
  | Livelock of string  (** stuck task name *)
  | App_incorrect
  | Nv_mismatch of Oracle.mismatch list
  | Always_skipped of string list  (** offending site names *)

type case = { schedule : Failure.spec; pf : int; violations : violation list }

type totals = { app_us : int; ovh_us : int; wasted_us : int; commits : int; attempts : int }
(** Summed [Kernel.Metrics] over a set of runs — the ground truth the
    attribution profile reconciles against. *)

type cell = {
  variant : Apps.Common.variant;
  boundaries : int;  (** golden-run charge count (sweep space size) *)
  cases : int;  (** schedules actually run *)
  boundaries_run : int;
      (** exact coverage: boundaries run as [Nth_charge] cases (equals
          [cases] for boundary sweeps, [0] for random ones) *)
  strided : bool;  (** a stride > 1 skipped boundaries *)
  failed : case list;  (** cases with at least one violation *)
  snap : Obs.Snapshot.t;  (** metrics merged over the cell, schedule order *)
  cell_profile : Obs.Attr.profile;  (** attribution merged over the cell *)
  cell_totals : totals;
}

type report = { app : string; sweep : sweep; seed : int; cells : cell list }

val run_cell :
  ?jobs:int ->
  ?progress:Obs.Progress.t ->
  resume:bool ->
  sweep:sweep ->
  seed:int ->
  Apps.Common.spec ->
  Apps.Common.variant ->
  cell
(** One variant's cell, exactly as {!run} computes it. [run] is
    [List.map] of this over the variants — callers that shard a
    campaign (the serve fleet) reassemble a byte-identical report from
    independently computed cells. *)

val run :
  ?jobs:int ->
  ?progress:Obs.Progress.t ->
  ?resume:bool ->
  ?seed:int ->
  sweep:sweep ->
  variants:Apps.Common.variant list ->
  Apps.Common.spec ->
  report
(** Run one campaign: per variant, a golden capture then the sweep.
    Raises [Failure] if a golden (no-failure) run is itself incorrect.
    Default seed 1. [jobs] sizes the domain pool; the report is
    bit-identical for any value. Every sweep case is metered (a fresh
    per-case sheet and attribution collector, folded in schedule
    order); the golden capture itself is not part of the profile.
    [progress] is ticked once per finished case ({!Obs.Progress.finish}
    is the caller's job).

    [resume] (default [true]): boundary sweeps of apps that expose a
    {!Apps.Common.spec} [session] run prefix-sharing — one continuous
    pacer run checkpoints the engine at every attempt top, and each
    [Nth_charge] case restores the latest checkpoint before its
    boundary instead of replaying from power on. The report is
    byte-identical to [~resume:false]; only the wall-clock changes.
    Resumed sweeps are sequential ([jobs] is ignored for them). *)

val cell_passed : cell -> bool
val passed : report -> bool

val coverage_totals : report -> int * int
(** [(boundaries_total, boundaries_run)] summed over cells — the exact
    fraction of the boundary space the sweep actually executed. *)

val strided : report -> bool

(** {1 Campaign-wide observability}

    Cell snapshots/profiles merged in cell (variant) order. *)

val snapshot : report -> Obs.Snapshot.t
val profile : report -> Obs.Attr.profile
val totals : report -> totals

val reconcile : report -> (unit, string) result
(** Exact integer cross-check: the merged attribution profile must sum
    to the summed per-run [Kernel.Metrics] of every sweep case. *)

val flamegraph : report -> string
(** Folded-stack flamegraph of the merged profile, root frame = app
    name. Line weights sum exactly to the reconciled µs totals. *)

val perfetto : report -> Trace.Json.t
(** Chrome/Perfetto counter tracks (app/overhead/wasted µs, power
    failures, failed cases) with the logical cell index as the
    timestamp axis — identical output for any [jobs]. *)

val to_json : report -> Trace.Json.t
(** Stable JSON (at most 20 failed cases detailed per cell;
    [failed_count] always carries the true number). Embeds per-cell
    and campaign-wide metric snapshots, attribution profiles and
    metric totals. *)
