open Platform

type slot = { flag : int; stamp : int; value : int }

(* Effective execution mode imposed by enclosing I/O blocks (§3.3.1):
   [Skip] — the block already completed and is still valid, inner
   operations restore their stored results; [Force] — the block's
   semantics were violated, inner operations re-execute regardless of
   their own flags; [Normal] — no enclosing decision, each operation
   follows its own semantics. *)
type mode = Normal | Force | Skip

type t = {
  m : Machine.t;
  slots : (string, slot) Hashtbl.t;
  task_flags : (string, int list ref) Hashtbl.t;
  priv_base : int;
  priv_words : int;
  mutable priv_next : int;
  priv_sites : (string, int) Hashtbl.t;
  region_priv : (string, int) Hashtbl.t;
  mutable cur_task : string;
  counters : (string, int) Hashtbl.t;
  mutable executed : string list;
  mutable modes : mode list;
  mutable pending_dma : int list;
      (* completion flags of Single DMA transfers executed in this
         attempt but not yet sealed: the paper treats a DMA as complete
         only once the following region's privatization ends (Fig. 6),
         so a failure in between re-executes the DMA instead of leaving
         a hole in the region snapshots *)
}

type dma_kind = Dma_single | Dma_private | Dma_always

let create ?(priv_buffer_words = 2048) m =
  let priv_base =
    if priv_buffer_words > 0 then
      Machine.alloc m Memory.Fram ~name:"easeio.dma_priv_buffer" ~words:priv_buffer_words
    else 0
  in
  {
    m;
    slots = Hashtbl.create 64;
    task_flags = Hashtbl.create 16;
    priv_base;
    priv_words = priv_buffer_words;
    priv_next = priv_base;
    priv_sites = Hashtbl.create 16;
    region_priv = Hashtbl.create 16;
    cur_task = "<none>";
    counters = Hashtbl.create 16;
    executed = [];
    modes = [];
    pending_dma = [];
  }

let machine t = t.m
let ovh t f = Machine.with_tag t.m Machine.Overhead f
let effective t = match t.modes with [] -> Normal | m :: _ -> m

let executed_this_cycle t name = List.mem name t.executed

let deps_executed t deps =
  Machine.cpu t.m (List.length deps);
  List.exists (fun d -> executed_this_cycle t d) deps

let register_flag t addr =
  let flags =
    match Hashtbl.find_opt t.task_flags t.cur_task with
    | Some f -> f
    | None ->
        let f = ref [] in
        Hashtbl.add t.task_flags t.cur_task f;
        f
  in
  flags := addr :: !flags

(* Persistent per-call-site slot: the compiler front-end's
   lock_<fn>_<task>_<n>, time_<fn> and <fn>_priv variables. Allocation is
   link-time (uncharged); accesses are charged where they happen. *)
let site t name index =
  let key =
    match index with
    | Some i -> Printf.sprintf "%s/%s[%d]" t.cur_task name i
    | None ->
        let occ = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
        Hashtbl.replace t.counters name (occ + 1);
        Printf.sprintf "%s/%s#%d" t.cur_task name occ
  in
  match Hashtbl.find_opt t.slots key with
  | Some s -> (s, key)
  | None ->
      let flag = Machine.alloc t.m Memory.Fram ~name:("easeio.lock." ^ key) ~words:1 in
      let stamp = Machine.alloc t.m Memory.Fram ~name:("easeio.time." ^ key) ~words:1 in
      let value = Machine.alloc t.m Memory.Fram ~name:("easeio.priv." ^ key) ~words:1 in
      let s = { flag; stamp; value } in
      Hashtbl.add t.slots key s;
      register_flag t flag;
      (s, key)

let read_flag t s = Machine.read t.m Memory.Fram s.flag = 1

(* {2 Trace-only helpers}

   These never charge the machine: the Exec/Replay distinction needs the
   flag value in paths that don't read it (block-forced re-execution),
   and a charged read there would shift every later failure — violating
   the traced-run-is-numerically-identical guarantee. *)

let trace_sem : Semantics.t -> Trace.Event.sem = function
  | Semantics.Single -> Trace.Event.Single
  | Semantics.Timely d -> Trace.Event.Timely d
  | Semantics.Always -> Trace.Event.Always

let flag_set_uncharged t s = Memory.read (Machine.mem t.m Memory.Fram) s.flag = 1

(* Campaign metric ids: every guarded-I/O verdict lands in exactly one
   of these three counters, so [io/exec + io/replay] is the campaign's
   I/O execution count and [io/replay] its redundancy. *)
let m_io_exec = Obs.Registry.counter "io/exec"
let m_io_replay = Obs.Registry.counter "io/replay"
let m_io_skip = Obs.Registry.counter "io/skip"

let trace_io t s ~site ~kind ~sem verdict ~reason =
  (match Machine.meter t.m with
  | None -> ()
  | Some sheet ->
      Obs.Sheet.bump sheet
        (match verdict with
        | `Skip -> m_io_skip
        | `Exec -> if flag_set_uncharged t s then m_io_replay else m_io_exec));
  if Machine.traced t.m then begin
    let decision =
      match verdict with
      | `Skip -> Trace.Event.Skip
      | `Exec ->
          (* a set flag means the site already completed once: this
             execution is a replay, whatever forced it *)
          if flag_set_uncharged t s then Trace.Event.Replay else Trace.Event.Exec
    in
    Machine.emit t.m
      (Trace.Event.Io { site; kind; sem = trace_sem sem; decision; reason })
  end

(* Decide whether a guarded operation must execute, per its own
   semantics, its dependences, and the enclosing block mode. Returns the
   verdict plus the reason that produced it (trace vocabulary); the
   charged operations are exactly those of the untraced decision. *)
let decide t s ~sem ~deps =
  ovh t (fun () ->
      Machine.cpu t.m 2;
      match effective t with
      | Skip -> (`Skip, "block-skip")
      | Force -> (`Exec, "block-force")
      | Normal ->
          if not (read_flag t s) then (`Exec, "first")
          else if deps_executed t deps then (`Exec, "dep")
          else begin
            match (sem : Semantics.t) with
            | Always -> (`Exec, "always")
            | Single -> (`Skip, "done")
            | Timely d ->
                let last = Machine.read t.m Memory.Fram s.stamp in
                if Timekeeper.elapsed_since t.m last > d then (`Exec, "expired")
                else (`Skip, "fresh")
          end)

let complete t s ~sem ~value =
  ovh t (fun () ->
      (match value with
      | Some v -> Machine.write t.m Memory.Fram s.value v
      | None -> ());
      (match (sem : Semantics.t) with
      | Timely _ -> Machine.write t.m Memory.Fram s.stamp (Timekeeper.read t.m)
      | Single | Always -> ());
      (* the flag write is the commit point: a failure before it simply
         re-executes the operation *)
      Machine.write t.m Memory.Fram s.flag 1)

let call_io t ?(deps = []) ?index ~name ~sem f =
  let s, key = site t name index in
  let verdict, reason = decide t s ~sem ~deps in
  trace_io t s ~site:key ~kind:"call" ~sem verdict ~reason;
  match verdict with
  | `Skip -> ovh t (fun () -> Machine.read t.m Memory.Fram s.value)
  | `Exec ->
      let v = f t.m in
      t.executed <- name :: t.executed;
      complete t s ~sem ~value:(Some v);
      v

let call_io_unit t ?(deps = []) ?index ~name ~sem f =
  let s, key = site t name index in
  let verdict, reason = decide t s ~sem ~deps in
  trace_io t s ~site:key ~kind:"call" ~sem verdict ~reason;
  match verdict with
  | `Skip -> ()
  | `Exec ->
      f t.m;
      t.executed <- name :: t.executed;
      complete t s ~sem ~value:None

let io_block t ?(deps = []) ~name ~sem body =
  let s, key = site t name None in
  let mode, reason =
    ovh t (fun () ->
        Machine.cpu t.m 2;
        match effective t with
        | Skip -> (Skip, "block-skip")
        | Force -> (Force, "block-force")
        | Normal ->
            if deps_executed t deps then (Force, "dep")
            else if not (read_flag t s) then (Normal, "first")
            else begin
              match (sem : Semantics.t) with
              | Always -> (Force, "always")
              | Single -> (Skip, "done")
              | Timely d ->
                  let last = Machine.read t.m Memory.Fram s.stamp in
                  if Timekeeper.elapsed_since t.m last > d then (Force, "expired")
                  else (Skip, "fresh")
            end)
  in
  trace_io t s ~site:key ~kind:"block" ~sem
    (match mode with Skip -> `Skip | Normal | Force -> `Exec)
    ~reason;
  t.modes <- mode :: t.modes;
  let v =
    Fun.protect ~finally:(fun () -> t.modes <- List.tl t.modes) body
  in
  (match mode with
  | Skip -> ()
  | Normal | Force ->
      t.executed <- name :: t.executed;
      complete t s ~sem ~value:None);
  v

let classify_dma ~src ~dst =
  if Loc.is_nv dst then Dma_single else if Loc.is_nv src then Dma_private else Dma_always

let priv_site t key words =
  match Hashtbl.find_opt t.priv_sites key with
  | Some off -> off
  | None ->
      if t.priv_next + words > t.priv_base + t.priv_words then
        failwith
          (Printf.sprintf
             "EaseIO: DMA privatization buffer exhausted at %s (%d words needed, %d free); \
              enlarge the buffer or annotate constant-source copies with Exclude"
             key words (t.priv_base + t.priv_words - t.priv_next));
      let off = t.priv_next in
      t.priv_next <- off + words;
      Hashtbl.add t.priv_sites key off;
      off

let dma_site t name =
  (* reuse the slot machinery: the flag doubles as the completion lock
     (Dma_single) or the phase-1 privatization flag (Dma_private) *)
  let occ = Option.value ~default:0 (Hashtbl.find_opt t.counters name) in
  Hashtbl.replace t.counters name (occ + 1);
  let key = Printf.sprintf "%s/%s#%d" t.cur_task name occ in
  let s =
    match Hashtbl.find_opt t.slots key with
    | Some s -> s
    | None ->
        let flag = Machine.alloc t.m Memory.Fram ~name:("easeio.lock." ^ key) ~words:1 in
        let s = { flag; stamp = flag; value = flag } in
        Hashtbl.add t.slots key s;
        register_flag t flag;
        s
  in
  (s, key)

let dma_copy ?(exclude = false) ?(force = false) ?(deps = []) ?(name = "DMA") t ~src ~dst ~words =
  if exclude then
    (* Exclude (§4.3): the compiler fixes the type to Always; no
       classification, no privatization — programmer asserts the source
       is constant. *)
    Periph.Dma.copy t.m ~src ~dst ~words
  else begin
    let s, key = dma_site t name in
    match classify_dma ~src ~dst with
    | Dma_always ->
        trace_io t s ~site:key ~kind:"dma" ~sem:Semantics.Always `Exec ~reason:"always";
        Periph.Dma.copy t.m ~src ~dst ~words
    | Dma_single -> begin
        let verdict, reason =
          if force then (`Exec, "force") else decide t s ~sem:Semantics.Single ~deps
        in
        trace_io t s ~site:key ~kind:"dma" ~sem:Semantics.Single verdict ~reason;
        match verdict with
        | `Skip -> ()
        | `Exec ->
            Periph.Dma.copy t.m ~src ~dst ~words;
            t.executed <- name :: t.executed;
            (* completion is deferred: the flag is sealed by the next
               region's privatization (or an explicit seal), making DMA
               and regional privatization atomic *)
            t.pending_dma <- s.flag :: t.pending_dma
      end
    | Dma_private ->
        let priv = ovh t (fun () -> priv_site t key words) in
        let phase1_done =
          ovh t (fun () ->
              Machine.cpu t.m 2;
              (not force) && effective t <> Force && read_flag t s)
        in
        (* phase 2 always runs (the destination is volatile): the
           decision reflects whether phase 1 (the snapshot) was fresh *)
        (if Machine.traced t.m then
           let reason =
             if phase1_done then "done"
             else if force then "force"
             else if effective t = Force then "block-force"
             else "first"
           in
           trace_io t s ~site:key ~kind:"dma-priv" ~sem:Semantics.Single `Exec ~reason);
        if not phase1_done then begin
          (* phase 1: snapshot the (non-volatile) source into the
             privatization buffer; runtime bookkeeping, hence overhead *)
          ovh t (fun () ->
              Periph.Dma.copy t.m ~src ~dst:(Loc.fram priv) ~words;
              Machine.write t.m Memory.Fram s.flag 1)
        end;
        (* phase 2: deliver from the stable private copy; re-executed
           after every reboot because the destination is volatile, but
           immune to later mutation of the original source (WAR safety) *)
        Periph.Dma.copy t.m ~src:(Loc.fram priv) ~dst ~words;
        t.executed <- name :: t.executed
  end

let seal_dmas t =
  ovh t (fun () -> List.iter (fun flag -> Machine.write t.m Memory.Fram flag 1) t.pending_dma);
  t.pending_dma <- []

let region t ~id ~vars body =
  List.iter
    (fun ((loc : Loc.t), _) ->
      if not (Loc.is_nv loc) then
        invalid_arg "Runtime.region: only non-volatile variables can be privatized")
    vars;
  let key = Printf.sprintf "%s#region%d" t.cur_task id in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 vars in
  let flag =
    match Hashtbl.find_opt t.slots key with
    | Some s -> s.flag
    | None ->
        let flag = Machine.alloc t.m Memory.Fram ~name:("easeio.regionflag." ^ key) ~words:1 in
        Hashtbl.add t.slots key { flag; stamp = flag; value = flag };
        register_flag t flag;
        flag
  in
  let priv =
    match Hashtbl.find_opt t.region_priv key with
    | Some p -> p
    | None ->
        let p = Machine.alloc t.m Memory.Fram ~name:("easeio.region_priv." ^ key) ~words:total in
        Hashtbl.add t.region_priv key p;
        p
  in
  ovh t (fun () ->
      Machine.cpu t.m 2;
      if Machine.read t.m Memory.Fram flag <> 1 then begin
        (* first entry in this execution instance: privatize *)
        let off = ref priv in
        List.iter
          (fun ((loc : Loc.t), w) ->
            for i = 0 to w - 1 do
              Machine.write t.m Memory.Fram (!off + i) (Machine.read t.m loc.space (loc.addr + i))
            done;
            off := !off + w)
          vars;
        Machine.write t.m Memory.Fram flag 1;
        if Machine.traced t.m then
          Machine.emit t.m
            (Trace.Event.Region_priv { region = key; words = total; restored = false })
      end
      else begin
        (* re-entry after a power failure: recover *)
        let off = ref priv in
        List.iter
          (fun ((loc : Loc.t), w) ->
            for i = 0 to w - 1 do
              Machine.write t.m loc.space (loc.addr + i) (Machine.read t.m Memory.Fram (!off + i))
            done;
            off := !off + w)
          vars;
        if Machine.traced t.m then
          Machine.emit t.m
            (Trace.Event.Region_priv { region = key; words = total; restored = true })
      end);
  (* the region snapshot now reflects the DMA's effects (fresh or
     recovered), so the transfers that preceded this region are complete *)
  seal_dmas t;
  body ()

let hooks t =
  {
    Kernel.Engine.on_task_start =
      (fun _m task ->
        t.cur_task <- task;
        Hashtbl.reset t.counters;
        t.executed <- [];
        t.modes <- [];
        t.pending_dma <- []);
    on_commit =
      (fun _m task ->
        match Hashtbl.find_opt t.task_flags task with
        | None -> ()
        | Some flags -> List.iter (fun addr -> Machine.write t.m Memory.Fram addr 0) !flags);
    on_reboot = (fun _m -> ());
  }

let priv_buffer_used t = t.priv_next - t.priv_base
let slot_count t = Hashtbl.length t.slots
