(** Total machine-state images — alias over {!Machine}'s snapshot
    support, so clients can hold a [Snapshot.t] without reaching into
    the machine namespace.

    [restore t (capture t)] is the identity on every observable except
    the attached sink/meter (pure observers) and the static layouts
    (link-time data, monotone across runs). See {!Machine.snapshot}. *)

type t = Machine.snapshot

val capture : Machine.t -> t
val restore : Machine.t -> t -> unit

val hash : t -> int
(** Structural state hash; equal hashes are the explorer's convergence
    test (see {!Machine.snapshot_hash}). *)

val behavior_hash : t -> int
(** Clock/energy-insensitive convergence key for reboot-space pruning
    (see {!Machine.snapshot_behavior_hash}). *)

val charges : t -> int
val now : t -> Units.time_us
val failure_spec : t -> Failure.spec
val fram : t -> Memory.image
val sram : t -> Memory.image
