type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = Int64.of_int seed }
let reseed t seed = t.state <- Int64.of_int seed
let state t = t.state
let set_state t s = t.state <- s
let split t = { state = next t }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (r /. 9007199254740992.)

let bool t = Int64.logand (next t) 1L = 1L

let hash2 a b =
  let z = Int64.add (Int64.mul (Int64.of_int a) golden) (Int64.of_int b) in
  Int64.to_int (Int64.shift_right_logical (mix z) 2)
