type plan = { drop_sends : int list; glitch_reads : int list; interrupt_dmas : int list }

let none = { drop_sends = []; glitch_reads = []; interrupt_dmas = [] }
let is_none p = p.drop_sends = [] && p.glitch_reads = [] && p.interrupt_dmas = []

type t = {
  plan : plan;
  mutable sends : int;
  mutable reads : int;
  mutable dmas : int;
}

let create plan = { plan; sends = 0; reads = 0; dmas = 0 }
let plan t = t.plan
let save t = (t.sends, t.reads, t.dmas)

let load t (sends, reads, dmas) =
  t.sends <- sends;
  t.reads <- reads;
  t.dmas <- dmas

(* Counters are cumulative over the whole run (they do NOT reset on
   reboot): a re-executed transmit is a new attempt, so "drop send #2"
   means the second transmission the radio ever starts, retries and
   re-executions included. That keeps plans meaningful under power
   failures and lets retry tests drop k consecutive attempts with
   [1; 2; ...; k]. *)

let next_send t =
  t.sends <- t.sends + 1;
  (t.sends, List.mem t.sends t.plan.drop_sends)

let next_read t =
  t.reads <- t.reads + 1;
  (t.reads, List.mem t.reads t.plan.glitch_reads)

let next_dma t =
  t.dmas <- t.dmas + 1;
  (t.dmas, List.mem t.dmas t.plan.interrupt_dmas)
