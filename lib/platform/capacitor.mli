(** Energy-storage capacitor.

    Batteryless devices buffer harvested energy in a small capacitor and
    operate between two voltage thresholds. We model the usable energy
    window directly in nanojoules: the device boots when the stored level
    reaches [on_level] and dies when it falls to zero (the off
    threshold). *)

type t = { capacity : float; on_level : float; mutable level : float }
(** All-float record, stored flat: the fields are public so the
    simulator's charge path can drain it without a cross-module call
    (which would box the energy argument on every simulated
    instruction). Treat [capacity] and [on_level] as immutable and go
    through the functions below everywhere that is not a proven hot
    path. *)

val create : capacity_nj:float -> on_level_nj:float -> t
(** [create ~capacity_nj ~on_level_nj] makes a capacitor whose usable
    window holds [capacity_nj] and which turns the device on once charge
    reaches [on_level_nj]. The capacitor starts full. *)

val mf1_powercast : unit -> t
(** The paper's real-world setup: a 1 mF capacitor operating between
    ~3.3 V and ~1.8 V gives a usable window of roughly 3 mJ. Returns a
    fresh capacitor each call — the level is mutable per-device state. *)

val level : t -> float
val capacity : t -> float

val drain : t -> float -> [ `Ok | `Dead ]
(** [drain t nj] removes energy; returns [`Dead] when the level hits the
    off threshold (level clamps at 0). *)

val harvest : t -> float -> unit
(** [harvest t nj] adds energy, saturating at capacity. *)

val worst_case_recharge_us : t -> power_nj_per_us:float -> int
(** Worst-case time to recharge from empty to the boot threshold under a
    constant harvest rate — the longest possible off period. A [Timely]
    deadline shorter than this can never be met after an inopportune
    power failure (the W0402 lint). *)

val ready : t -> bool
(** Whether the level has reached the boot threshold. *)

val on_level : t -> float
(** The boot threshold. *)

val set_full : t -> unit

val set_ready : t -> unit
(** Raise the level to exactly the boot threshold (no-op if already
    above); models the end of a recharge phase. *)
