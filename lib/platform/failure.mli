(** Power-failure models.

    The paper's controlled experiments emulate power failures with an
    MCU timer firing a soft reset after a uniformly distributed on-time
    in [5 ms, 20 ms] (§5.1); the real-world experiment (Fig. 13) instead
    dies when the capacitor is exhausted and reboots after it recharges
    from the RF harvester. Both models are provided, plus [No_failures]
    for continuous-power golden runs, and two {e deterministic}
    schedules used by fault-injection campaigns ({!At_times},
    {!Nth_charge}) that place the failure at an exact point of the
    execution instead of sampling it. *)

type spec =
  | No_failures  (** continuous power *)
  | Timer of {
      on_min_us : int;
      on_max_us : int;  (** uniform on-time before the soft reset *)
      off_min_us : int;
      off_max_us : int;  (** uniform off-time before reboot *)
    }
  | Energy_driven
      (** die when the capacitor empties; off-time = recharge time *)
  | At_times of int list
      (** die the first time simulated time reaches each listed µs
          instant. Entries that fall inside an off interval are
          unreachable and are silently dropped at the next boot.
          Off-time is the fixed {!deterministic_off_us}. *)
  | Nth_charge of int
      (** die during the N-th (1-based) {!Machine.charge} call of the
          run, once. Charge calls are the simulator's finest-grained
          failure boundaries, so sweeping N over a clean run's charge
          count visits every place a power failure can strike. *)

val paper_timer : spec
(** The §5.1 emulation: on-time U[5 ms, 20 ms], off-time U[2 ms, 15 ms].
    The off-time range straddles the 10 ms freshness windows used by the
    Timely benchmarks, so some failures violate timeliness and some do
    not — as in the paper's testbed. *)

val deterministic_off_us : int
(** Fixed off interval applied on [At_times]/[Nth_charge] reboots
    (5 ms), keeping deterministic runs a pure function of
    (spec, seed). *)

type t

val create : spec -> t
val spec : t -> spec

val arm : t -> Rng.t -> now:Units.time_us -> unit
(** Called at each boot: draws the next reset deadline (timer model) or
    advances to the next scheduled instant ([At_times]). *)

val fires : t -> now:Units.time_us -> charges:int -> bool
(** Whether the model kills the machine at this charge: [now] has
    passed the armed deadline (timer / [At_times]) or [charges] — the
    machine's cumulative {!Machine.charge} count — reached the
    [Nth_charge] target. [Nth_charge] is a one-shot latch: it fires at
    most once per run. Always [false] for [No_failures] and
    [Energy_driven] (the latter dies by capacitor drain instead). *)

val energy_driven : t -> bool

val save : t -> int * int * int list
(** The model's complete mutable state (armed deadline, [Nth_charge]
    target, pending [At_times] instants) — machine snapshots capture it
    so a restored run re-fires exactly like the original. *)

val load : t -> int * int * int list -> unit
(** Restore state captured by {!save} (specs must match). *)

val off_time : t -> Rng.t -> Units.time_us
(** Off-duration to apply on a (non-energy-driven) reboot. *)

(** {1 Spec syntax}

    [none | paper | energy | timer:ON_MIN,ON_MAX,OFF_MIN,OFF_MAX |
    at:T1,T2,... | nth:N] — used by the CLI [--failure] option and
    campaign reports; [of_string] and [to_string] round-trip. *)

val to_string : spec -> string

val of_string : string -> (spec, string) result
(** Parse the syntax above; [Error] carries a human-readable reason. *)
