(* Global event-name interning.

   Event counters used to live in a per-machine string-keyed Hashtbl,
   paying a hash + string compare on every I/O site in the hot loop.
   Names are now interned once into small dense ids (peripheral modules
   intern theirs at module-init time) and each machine keeps a plain
   int-array of counters indexed by id.

   The registry is global and append-only. All mutation happens under a
   mutex; lookups also take the mutex — they only occur on cold paths
   (string-API shims, trace emission, per-run report folding), never in
   the per-operation fast path, which carries a pre-interned id. *)

let mu = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 64
let names : string array ref = ref (Array.make 16 "")
let count = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let id name =
  locked (fun () ->
      match Hashtbl.find_opt ids name with
      | Some i -> i
      | None ->
          let i = !count in
          Hashtbl.add ids name i;
          if i >= Array.length !names then begin
            let bigger = Array.make (2 * Array.length !names) "" in
            Array.blit !names 0 bigger 0 (Array.length !names);
            names := bigger
          end;
          !names.(i) <- name;
          incr count;
          i)

let find name = locked (fun () -> Hashtbl.find_opt ids name)
let name i = locked (fun () -> !names.(i))
let registered () = locked (fun () -> !count)
