(** Peripheral fault-injection plans.

    A {!plan} names, by 1-based occurrence index, which peripheral
    operations of a run misbehave: radio transmissions that are dropped
    in flight, sensor reads that return glitched values, DMA transfers
    interrupted mid-copy. The machine carries one mutable occurrence
    counter per class ({!t}); peripherals ask it whether their next
    operation is faulted. Indices count {e every} attempt — including
    retries and post-failure re-executions — so plans stay deterministic
    under power failures. *)

type plan = {
  drop_sends : int list;  (** radio transmissions lost after full TX cost *)
  glitch_reads : int list;  (** sensor samples returning corrupted values *)
  interrupt_dmas : int list;  (** DMA copies killed mid-transfer *)
}

val none : plan
val is_none : plan -> bool

type t
(** Per-run mutable counters over a plan. *)

val create : plan -> t

val plan : t -> plan

val save : t -> int * int * int
(** The three cumulative occurrence counters — machine snapshots
    capture them so a restored run faults the same occurrences. *)

val load : t -> int * int * int -> unit
(** Restore counters captured by {!save}. *)

val next_send : t -> int * bool
(** Advance the send counter; returns (occurrence index, faulted?). *)

val next_read : t -> int * bool
val next_dma : t -> int * bool
