exception Power_failure

type tag = App | Overhead

type attempt = { app_us : int; ovh_us : int; app_nj : float; ovh_nj : float }

type t = {
  fram : Memory.t;
  sram : Memory.t;
  fram_layout : Layout.t;
  sram_layout : Layout.t;
  cost : Cost.t;
  failure : Failure.t;
  harvester : Harvester.t;
  cap : Capacitor.t;
  rng : Rng.t;
  world : World.t;
  mutable now : Units.time_us;
  mutable on : bool;
  mutable tag : tag;
  mutable boots : int;
  mutable failures : int;
  mutable charges : int;
  faults : Faults.t;
  mutable critical_depth : int;
  mutable pending_death : bool;
  mutable energy_used : float;
  mutable att_app_us : int;
  mutable att_ovh_us : int;
  mutable att_app_nj : float;
  mutable att_ovh_nj : float;
  events : (string, int) Hashtbl.t;
  mutable sink : Trace.Event.sink option;
  mutable next_cap_sample_us : int;
}

(* Periodic capacitor samples are emitted at most this often (simulated
   time); one per ms keeps Perfetto counter tracks readable without
   inflating traces. *)
let cap_sample_interval_us = 1_000

let create ?(seed = 1) ?(cost = Cost.msp430fr5994) ?(failure = Failure.No_failures)
    ?(faults = Faults.none) ?(harvester = Harvester.constant 1.0)
    ?(capacitor = Capacitor.mf1_powercast ()) ?(world = World.create ())
    ?(fram_words = 131_072) ?(sram_words = 4_096) () =
  {
    fram = Memory.create Fram ~words:fram_words;
    sram = Memory.create Sram ~words:sram_words;
    fram_layout = Layout.create ~words:fram_words;
    sram_layout = Layout.create ~words:sram_words;
    cost;
    failure = Failure.create failure;
    harvester;
    cap = capacitor;
    rng = Rng.create seed;
    world;
    now = 0;
    on = true;
    tag = App;
    boots = 0;
    failures = 0;
    charges = 0;
    faults = Faults.create faults;
    critical_depth = 0;
    pending_death = false;
    energy_used = 0.;
    att_app_us = 0;
    att_ovh_us = 0;
    att_app_nj = 0.;
    att_ovh_nj = 0.;
    events = Hashtbl.create 32;
    sink = None;
    next_cap_sample_us = 0;
  }

(* {1 Tracing}

   Emission is pure observation: no simulated time or energy is ever
   charged for it, so attaching a sink cannot change a run's numbers,
   and the nil-sink default costs one branch per charge. *)

let set_sink t sink = t.sink <- Some sink
let traced t = match t.sink with None -> false | Some _ -> true

let emit t payload =
  match t.sink with
  | None -> ()
  | Some sink -> sink { Trace.Event.ts_us = t.now; payload }

let maybe_sample_cap t =
  match t.sink with
  | None -> ()
  | Some sink ->
      if t.now >= t.next_cap_sample_us then begin
        t.next_cap_sample_us <- t.now + cap_sample_interval_us;
        sink
          {
            Trace.Event.ts_us = t.now;
            payload = Trace.Event.Cap_level { nj = Capacitor.level t.cap };
          }
      end

let now t = t.now
let on t = t.on
let rng t = t.rng
let world t = t.world
let cost t = t.cost
let boots t = t.boots
let failures t = t.failures
let charges t = t.charges
let faults t = t.faults
let energy_used_nj t = t.energy_used
let capacitor t = t.cap
let failure_spec t = Failure.spec t.failure
let set_tag t tag = t.tag <- tag
let tag t = t.tag

let with_tag t tag f =
  let saved = t.tag in
  t.tag <- tag;
  Fun.protect ~finally:(fun () -> t.tag <- saved) f

(* Every power loss funnels through [kill] so the trace always carries
   the failure instant (with the capacitor level at death). *)
let kill t =
  t.on <- false;
  if traced t then
    emit t (Trace.Event.Power_failure { index = t.failures + 1; cap_nj = Capacitor.level t.cap });
  raise Power_failure

let die t = if t.critical_depth > 0 then t.pending_death <- true else kill t

(* Failure-atomic section: real task runtimes make their commit sequence
   atomic with replay protocols (e.g. Alpaca's commit list); we model
   that by deferring a power failure that strikes inside the section to
   its end. Time and energy are still charged normally. *)
let critical t f =
  t.critical_depth <- t.critical_depth + 1;
  let finish () =
    t.critical_depth <- t.critical_depth - 1;
    if t.critical_depth = 0 && t.pending_death then begin
      t.pending_death <- false;
      kill t
    end
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      t.critical_depth <- t.critical_depth - 1;
      raise e

let charge t ~us ~nj =
  if us < 0 then invalid_arg "Machine.charge: negative time";
  t.charges <- t.charges + 1;
  let nj = nj +. (t.cost.Cost.idle_nj_per_us *. float_of_int us) in
  t.now <- t.now + us;
  t.energy_used <- t.energy_used +. nj;
  (match t.tag with
  | App ->
      t.att_app_us <- t.att_app_us + us;
      t.att_app_nj <- t.att_app_nj +. nj
  | Overhead ->
      t.att_ovh_us <- t.att_ovh_us + us;
      t.att_ovh_nj <- t.att_ovh_nj +. nj);
  if Failure.energy_driven t.failure then begin
    Capacitor.harvest t.cap (Harvester.energy t.harvester ~at:(t.now - us) ~dur:us);
    (match Capacitor.drain t.cap nj with `Dead -> die t | `Ok -> ());
    maybe_sample_cap t
  end
  else begin
    ignore (Capacitor.drain t.cap nj);
    if Failure.fires t.failure ~now:t.now ~charges:t.charges then die t;
    maybe_sample_cap t
  end

let charge_op t (op : Cost.op_cost) n =
  if n > 0 then charge t ~us:(op.time_us * n) ~nj:(op.energy_nj *. float_of_int n)

let cpu t n = charge_op t t.cost.Cost.cpu_op n

let idle t dur =
  (* slice so the failure model can interrupt long delay loops *)
  let slice = 250 in
  let rec go remaining =
    if remaining > 0 then begin
      let step = min slice remaining in
      charge t ~us:step ~nj:0.;
      go (remaining - step)
    end
  in
  go dur

let mem t = function Memory.Fram -> t.fram | Memory.Sram -> t.sram
let layout t = function Memory.Fram -> t.fram_layout | Memory.Sram -> t.sram_layout
let alloc t space ~name ~words = Layout.alloc (layout t space) ~name ~words

let read t space addr =
  (match space with
  | Memory.Fram -> charge_op t t.cost.Cost.fram_read 1
  | Memory.Sram -> charge_op t t.cost.Cost.sram_read 1);
  Memory.read (mem t space) addr

let write t space addr v =
  (match space with
  | Memory.Fram -> charge_op t t.cost.Cost.fram_write 1
  | Memory.Sram -> charge_op t t.cost.Cost.sram_write 1);
  Memory.write (mem t space) addr v

let boot t =
  t.boots <- t.boots + 1;
  t.on <- true;
  t.pending_death <- false;
  Failure.arm t.failure t.rng ~now:t.now;
  if traced t then begin
    emit t (Trace.Event.Boot { index = t.boots });
    emit t (Trace.Event.Cap_level { nj = Capacitor.level t.cap });
    t.next_cap_sample_us <- t.now + cap_sample_interval_us
  end

let reboot t =
  t.failures <- t.failures + 1;
  let off =
    if Failure.energy_driven t.failure then begin
      (* recharge from the off threshold back to the boot threshold *)
      let needed = Capacitor.on_level t.cap -. Capacitor.level t.cap in
      match Harvester.time_to_harvest t.harvester ~at:t.now ~nj:needed with
      | Some dur ->
          Capacitor.set_ready t.cap;
          dur
      | None -> failwith "Machine.reboot: harvester yields no power; device never reboots"
    end
    else Failure.off_time t.failure t.rng
  in
  t.now <- t.now + off;
  Memory.clear t.sram;
  boot t

let take_attempt t =
  let a =
    { app_us = t.att_app_us; ovh_us = t.att_ovh_us; app_nj = t.att_app_nj; ovh_nj = t.att_ovh_nj }
  in
  t.att_app_us <- 0;
  t.att_ovh_us <- 0;
  t.att_app_nj <- 0.;
  t.att_ovh_nj <- 0.;
  a

let bump t name =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.events name) in
  Hashtbl.replace t.events name n;
  if traced t then emit t (Trace.Event.Count { name; count = n })

let event t name = Option.value ~default:0 (Hashtbl.find_opt t.events name)

let events t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.events []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
