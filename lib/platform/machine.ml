exception Power_failure

type tag = App | Overhead

type attempt = { app_us : int; ovh_us : int; app_nj : float; ovh_nj : float }

(* Energy accounting lives in its own all-float record: OCaml stores
   all-float records flat, so the per-charge accumulations below mutate
   unboxed doubles in place. Keeping these as float fields of the mixed
   [t] record would box a fresh float on every charge — two minor
   allocations per simulated instruction, which dominates the hot
   loop. *)
type acct = { mutable total_nj : float; mutable app_nj : float; mutable ovh_nj : float }

type t = {
  fram : Memory.t;
  sram : Memory.t;
  fram_layout : Layout.t;
  sram_layout : Layout.t;
  cost : Cost.t;
  mutable failure : Failure.t;
  harvester : Harvester.t;
  cap : Capacitor.t;
  rng : Rng.t;
  world : World.t;
  mutable now : Units.time_us;
  mutable on : bool;
  mutable tag : tag;
  mutable boots : int;
  mutable failures : int;
  mutable charges : int;
  mutable faults : Faults.t;
  mutable critical_depth : int;
  mutable pending_death : bool;
  acct : acct;
  (* [Failure.energy_driven failure], cached: probed on every charge *)
  mutable energy_mode : bool;
  mutable att_app_us : int;
  mutable att_ovh_us : int;
  (* event counters, indexed by interned id (see {!Events}) *)
  mutable ev_counts : int array;
  mutable sink : Trace.Event.sink option;
  (* metrics sheet; same zero-cost-when-off discipline as [sink] *)
  mutable meter : Obs.Sheet.t option;
  mutable next_cap_sample_us : int;
}

(* Periodic capacitor samples are emitted at most this often (simulated
   time); one per ms keeps Perfetto counter tracks readable without
   inflating traces. *)
let cap_sample_interval_us = 1_000

let create ?(seed = 1) ?(cost = Cost.msp430fr5994) ?(failure = Failure.No_failures)
    ?(faults = Faults.none) ?(harvester = Harvester.constant 1.0)
    ?(capacitor = Capacitor.mf1_powercast ()) ?(world = World.create ())
    ?(fram_words = 131_072) ?(sram_words = 4_096) () =
  let failure = Failure.create failure in
  {
    fram = Memory.create Fram ~words:fram_words;
    sram = Memory.create Sram ~words:sram_words;
    fram_layout = Layout.create ~words:fram_words;
    sram_layout = Layout.create ~words:sram_words;
    cost;
    failure;
    harvester;
    cap = capacitor;
    rng = Rng.create seed;
    world;
    now = 0;
    on = true;
    tag = App;
    boots = 0;
    failures = 0;
    charges = 0;
    faults = Faults.create faults;
    critical_depth = 0;
    pending_death = false;
    acct = { total_nj = 0.; app_nj = 0.; ovh_nj = 0. };
    energy_mode = Failure.energy_driven failure;
    att_app_us = 0;
    att_ovh_us = 0;
    ev_counts = Array.make (max 16 (Events.registered ())) 0;
    sink = None;
    meter = None;
    next_cap_sample_us = 0;
  }

(* Recycle a machine for a fresh run: equivalent to [create] with the
   same structural parameters (cost model, harvester, capacitor, world,
   memory sizes) but without reallocating the word arrays — the static
   layouts survive, which is exactly what a compiled-program arena
   needs. Every piece of run state is re-zeroed by hand; keep this in
   sync with the record fields above. *)
let reset ?(seed = 1) ?(failure = Failure.No_failures) ?(faults = Faults.none) t =
  (* every program-reachable address comes from Layout.alloc, so only
     the allocated prefix can be dirty — skip memset-ing the tail *)
  Memory.untrack t.fram;
  Memory.untrack t.sram;
  Memory.clear_prefix t.fram (Layout.used t.fram_layout);
  Memory.clear_prefix t.sram (Layout.used t.sram_layout);
  Memory.reset_counters t.fram;
  Memory.reset_counters t.sram;
  t.failure <- Failure.create failure;
  t.faults <- Faults.create faults;
  Rng.reseed t.rng seed;
  Capacitor.set_full t.cap;
  t.now <- 0;
  t.on <- true;
  t.tag <- App;
  t.boots <- 0;
  t.failures <- 0;
  t.charges <- 0;
  t.critical_depth <- 0;
  t.pending_death <- false;
  t.energy_mode <- Failure.energy_driven t.failure;
  t.acct.total_nj <- 0.;
  t.acct.app_nj <- 0.;
  t.acct.ovh_nj <- 0.;
  t.att_app_us <- 0;
  t.att_ovh_us <- 0;
  Array.fill t.ev_counts 0 (Array.length t.ev_counts) 0;
  t.sink <- None;
  t.meter <- None;
  t.next_cap_sample_us <- 0

(* {1 Tracing}

   Emission is pure observation: no simulated time or energy is ever
   charged for it, so attaching a sink cannot change a run's numbers,
   and the nil-sink default costs one branch per charge. *)

let set_sink t sink = t.sink <- Some sink
let traced t = match t.sink with None -> false | Some _ -> true

(* {1 Metering}

   The campaign-metrics analogue of the sink: instrumented layers test
   [meter] (one branch when off) and bump interned [Obs] counters when
   on. Like emission, metering is pure observation — it never charges
   simulated time or energy. *)

let set_meter t sheet = t.meter <- Some sheet
let clear_meter t = t.meter <- None
let meter t = t.meter
let metered t = match t.meter with None -> false | Some _ -> true

let emit t payload =
  match t.sink with
  | None -> ()
  | Some sink -> sink { Trace.Event.ts_us = t.now; payload }

let maybe_sample_cap t =
  match t.sink with
  | None -> ()
  | Some sink ->
      if t.now >= t.next_cap_sample_us then begin
        t.next_cap_sample_us <- t.now + cap_sample_interval_us;
        sink
          {
            Trace.Event.ts_us = t.now;
            payload = Trace.Event.Cap_level { nj = Capacitor.level t.cap };
          }
      end

let now t = t.now
let on t = t.on
let rng t = t.rng
let world t = t.world
let cost t = t.cost
let boots t = t.boots
let failures t = t.failures
let charges t = t.charges
let faults t = t.faults
let energy_used_nj t = t.acct.total_nj
let capacitor t = t.cap
let failure_spec t = Failure.spec t.failure
let set_tag t tag = t.tag <- tag
let tag t = t.tag

let with_tag t tag f =
  let saved = t.tag in
  t.tag <- tag;
  Fun.protect ~finally:(fun () -> t.tag <- saved) f

(* Every power loss funnels through [kill] so the trace always carries
   the failure instant (with the capacitor level at death). *)
let kill t =
  t.on <- false;
  if traced t then
    emit t (Trace.Event.Power_failure { index = t.failures + 1; cap_nj = Capacitor.level t.cap });
  raise Power_failure

let die t = if t.critical_depth > 0 then t.pending_death <- true else kill t

(* Failure-atomic section: real task runtimes make their commit sequence
   atomic with replay protocols (e.g. Alpaca's commit list); we model
   that by deferring a power failure that strikes inside the section to
   its end. Time and energy are still charged normally. *)
let critical t f =
  t.critical_depth <- t.critical_depth + 1;
  let finish () =
    t.critical_depth <- t.critical_depth - 1;
    if t.critical_depth = 0 && t.pending_death then begin
      t.pending_death <- false;
      kill t
    end
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      t.critical_depth <- t.critical_depth - 1;
      raise e

(* The accounting every simulated instruction pays. [@inline] lets
   [charge_op]/[cpu]/[read]/[write] absorb the body, so the energy
   argument stays in a float register instead of being boxed at each
   call boundary (non-flambda boxes float arguments of out-of-line
   calls); the capacitor drain is open-coded for the same reason. *)
let[@inline] charge t ~us ~nj =
  if us < 0 then invalid_arg "Machine.charge: negative time";
  t.charges <- t.charges + 1;
  let nj = nj +. (t.cost.Cost.idle_nj_per_us *. float_of_int us) in
  t.now <- t.now + us;
  t.acct.total_nj <- t.acct.total_nj +. nj;
  (match t.tag with
  | App ->
      t.att_app_us <- t.att_app_us + us;
      t.acct.app_nj <- t.acct.app_nj +. nj
  | Overhead ->
      t.att_ovh_us <- t.att_ovh_us + us;
      t.acct.ovh_nj <- t.acct.ovh_nj +. nj);
  if t.energy_mode then begin
    Capacitor.harvest t.cap (Harvester.energy t.harvester ~at:(t.now - us) ~dur:us);
    (match Capacitor.drain t.cap nj with `Dead -> die t | `Ok -> ());
    maybe_sample_cap t
  end
  else begin
    (* Capacitor.drain, open-coded (result unused in timer modes) *)
    let cap = t.cap in
    let lvl = cap.Capacitor.level -. nj in
    cap.Capacitor.level <- (if lvl <= 0. then 0. else lvl);
    if Failure.fires t.failure ~now:t.now ~charges:t.charges then die t;
    maybe_sample_cap t
  end

let[@inline] charge_op t (op : Cost.op_cost) n =
  if n > 0 then charge t ~us:(op.time_us * n) ~nj:(op.energy_nj *. float_of_int n)

let[@inline] cpu t n = charge_op t t.cost.Cost.cpu_op n

let idle t dur =
  (* slice so the failure model can interrupt long delay loops *)
  let slice = 250 in
  let rec go remaining =
    if remaining > 0 then begin
      let step = min slice remaining in
      charge t ~us:step ~nj:0.;
      go (remaining - step)
    end
  in
  go dur

let mem t = function Memory.Fram -> t.fram | Memory.Sram -> t.sram
let layout t = function Memory.Fram -> t.fram_layout | Memory.Sram -> t.sram_layout
let alloc t space ~name ~words = Layout.alloc (layout t space) ~name ~words

let[@inline] read t space addr =
  (match space with
  | Memory.Fram -> charge_op t t.cost.Cost.fram_read 1
  | Memory.Sram -> charge_op t t.cost.Cost.sram_read 1);
  Memory.read (mem t space) addr

let[@inline] write t space addr v =
  (match space with
  | Memory.Fram -> charge_op t t.cost.Cost.fram_write 1
  | Memory.Sram -> charge_op t t.cost.Cost.sram_write 1);
  Memory.write (mem t space) addr v

let boot t =
  t.boots <- t.boots + 1;
  t.on <- true;
  t.pending_death <- false;
  Failure.arm t.failure t.rng ~now:t.now;
  if traced t then begin
    emit t (Trace.Event.Boot { index = t.boots });
    emit t (Trace.Event.Cap_level { nj = Capacitor.level t.cap });
    t.next_cap_sample_us <- t.now + cap_sample_interval_us
  end

let reboot t =
  t.failures <- t.failures + 1;
  let off =
    if Failure.energy_driven t.failure then begin
      (* recharge from the off threshold back to the boot threshold *)
      let needed = Capacitor.on_level t.cap -. Capacitor.level t.cap in
      match Harvester.time_to_harvest t.harvester ~at:t.now ~nj:needed with
      | Some dur ->
          Capacitor.set_ready t.cap;
          dur
      | None -> failwith "Machine.reboot: harvester yields no power; device never reboots"
    end
    else Failure.off_time t.failure t.rng
  in
  t.now <- t.now + off;
  Memory.clear_prefix t.sram (Layout.used t.sram_layout);
  boot t

let take_attempt t =
  let a =
    { app_us = t.att_app_us; ovh_us = t.att_ovh_us; app_nj = t.acct.app_nj; ovh_nj = t.acct.ovh_nj }
  in
  t.att_app_us <- 0;
  t.att_ovh_us <- 0;
  t.acct.app_nj <- 0.;
  t.acct.ovh_nj <- 0.;
  a

(* Event counters are a dense int array indexed by interned id; hot
   sites (peripherals) intern once at module init and call [bump_id].
   The string API survives as a shim for tests and ad-hoc callers. *)

let event_id = Events.id

let bump_id t id =
  if id >= Array.length t.ev_counts then begin
    let bigger = Array.make (max (2 * Array.length t.ev_counts) (id + 1)) 0 in
    Array.blit t.ev_counts 0 bigger 0 (Array.length t.ev_counts);
    t.ev_counts <- bigger
  end;
  let n = t.ev_counts.(id) + 1 in
  t.ev_counts.(id) <- n;
  if traced t then emit t (Trace.Event.Count { name = Events.name id; count = n })

let bump t name = bump_id t (event_id name)

let event t name =
  match Events.find name with
  | Some id when id < Array.length t.ev_counts -> t.ev_counts.(id)
  | Some _ | None -> 0

let events t =
  let acc = ref [] in
  Array.iteri (fun id n -> if n > 0 then acc := (Events.name id, n) :: !acc) t.ev_counts;
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

(* {1 Snapshots}

   A snapshot is a total capture of the machine's run state: memory
   images (copy-on-write, so repeated captures cost O(pages written
   between them)), the failure/fault models' mutable state, capacitor
   level, RNG state, clocks, counters and accounting buckets. It
   deliberately EXCLUDES the static layouts (monotone link-time data
   shared by every run of an arena) and the attached sink/meter (pure
   observers, re-attached by whoever restores). Restoring a snapshot
   and re-running is byte-identical to having re-executed the original
   prefix — the resumable-engine and explorer layers build on exactly
   that guarantee. *)

let c_pages_copied = Obs.Registry.counter "snapshot/pages_copied"

type snapshot = {
  sn_fram : Memory.image;
  sn_sram : Memory.image;
  sn_fram_reads : int;
  sn_fram_writes : int;
  sn_sram_reads : int;
  sn_sram_writes : int;
  sn_failure_spec : Failure.spec;
  sn_failure : int * int * int list;
  sn_faults_plan : Faults.plan;
  sn_faults : int * int * int;
  sn_cap_level : float;
  sn_rng : int64;
  sn_now : Units.time_us;
  sn_on : bool;
  sn_tag : tag;
  sn_boots : int;
  sn_failures : int;
  sn_charges : int;
  sn_critical_depth : int;
  sn_pending_death : bool;
  sn_total_nj : float;
  sn_app_nj : float;
  sn_ovh_nj : float;
  sn_energy_mode : bool;
  sn_att_app_us : int;
  sn_att_ovh_us : int;
  sn_ev_counts : int array;
  sn_next_cap : int;
  sn_hash : int;
}

(* Structural hash of everything that can influence future evolution or
   end-of-run checks: memories, clock, power state, energy, RNG, fault
   counters, event counts and the failure model's mutable state (but
   NOT its spec — the explorer compares states reached under different
   [Nth_charge] targets whose latched post-fire state is identical).
   Pure observers (memory access counters, sink, meter) are excluded. *)
let hash_of t ~fram ~sram =
  let h = ref 0x811c9dc5 in
  let add v = h := (!h * 0x01000193) lxor v in
  let addf f = add (Int64.to_int (Int64.bits_of_float f)) in
  add (Memory.image_hash fram);
  add (Memory.image_hash sram);
  add t.now;
  add (Bool.to_int t.on);
  add (match t.tag with App -> 0 | Overhead -> 1);
  add t.boots;
  add t.failures;
  add t.charges;
  add t.critical_depth;
  add (Bool.to_int t.pending_death);
  addf t.acct.total_nj;
  addf t.acct.app_nj;
  addf t.acct.ovh_nj;
  addf t.cap.Capacitor.level;
  add (Int64.to_int (Rng.state t.rng));
  let sends, reads, dmas = Faults.save t.faults in
  add sends;
  add reads;
  add dmas;
  add t.att_app_us;
  add t.att_ovh_us;
  Array.iter add t.ev_counts;
  let deadline, charge_deadline, remaining = Failure.save t.failure in
  add deadline;
  add charge_deadline;
  List.iter add remaining;
  !h land max_int

let snapshot t =
  let sn_fram = Memory.snapshot t.fram in
  let sn_sram = Memory.snapshot t.sram in
  (match t.meter with
  | Some sheet ->
      Obs.Sheet.add sheet c_pages_copied
        (Memory.image_copied sn_fram + Memory.image_copied sn_sram)
  | None -> ());
  {
    sn_fram;
    sn_sram;
    sn_fram_reads = Memory.reads t.fram;
    sn_fram_writes = Memory.writes t.fram;
    sn_sram_reads = Memory.reads t.sram;
    sn_sram_writes = Memory.writes t.sram;
    sn_failure_spec = Failure.spec t.failure;
    sn_failure = Failure.save t.failure;
    sn_faults_plan = Faults.plan t.faults;
    sn_faults = Faults.save t.faults;
    sn_cap_level = t.cap.Capacitor.level;
    sn_rng = Rng.state t.rng;
    sn_now = t.now;
    sn_on = t.on;
    sn_tag = t.tag;
    sn_boots = t.boots;
    sn_failures = t.failures;
    sn_charges = t.charges;
    sn_critical_depth = t.critical_depth;
    sn_pending_death = t.pending_death;
    sn_total_nj = t.acct.total_nj;
    sn_app_nj = t.acct.app_nj;
    sn_ovh_nj = t.acct.ovh_nj;
    sn_energy_mode = t.energy_mode;
    sn_att_app_us = t.att_app_us;
    sn_att_ovh_us = t.att_ovh_us;
    sn_ev_counts = Array.copy t.ev_counts;
    sn_next_cap = t.next_cap_sample_us;
    sn_hash = hash_of t ~fram:sn_fram ~sram:sn_sram;
  }

let restore_snapshot t sn =
  Memory.restore t.fram sn.sn_fram;
  Memory.restore t.sram sn.sn_sram;
  Memory.set_counters t.fram ~reads:sn.sn_fram_reads ~writes:sn.sn_fram_writes;
  Memory.set_counters t.sram ~reads:sn.sn_sram_reads ~writes:sn.sn_sram_writes;
  t.failure <- Failure.create sn.sn_failure_spec;
  Failure.load t.failure sn.sn_failure;
  t.faults <- Faults.create sn.sn_faults_plan;
  Faults.load t.faults sn.sn_faults;
  t.cap.Capacitor.level <- sn.sn_cap_level;
  Rng.set_state t.rng sn.sn_rng;
  t.now <- sn.sn_now;
  t.on <- sn.sn_on;
  t.tag <- sn.sn_tag;
  t.boots <- sn.sn_boots;
  t.failures <- sn.sn_failures;
  t.charges <- sn.sn_charges;
  t.critical_depth <- sn.sn_critical_depth;
  t.pending_death <- sn.sn_pending_death;
  t.acct.total_nj <- sn.sn_total_nj;
  t.acct.app_nj <- sn.sn_app_nj;
  t.acct.ovh_nj <- sn.sn_ovh_nj;
  t.energy_mode <- sn.sn_energy_mode;
  t.att_app_us <- sn.sn_att_app_us;
  t.att_ovh_us <- sn.sn_att_ovh_us;
  (if Array.length t.ev_counts = Array.length sn.sn_ev_counts then
     Array.blit sn.sn_ev_counts 0 t.ev_counts 0 (Array.length sn.sn_ev_counts)
   else t.ev_counts <- Array.copy sn.sn_ev_counts);
  t.next_cap_sample_us <- sn.sn_next_cap

let snapshot_hash sn = sn.sn_hash

(* Convergence key for reboot-space pruning: everything that determines
   future {e decisions and committed values} — memories, RNG, power
   flags, failure/fault latches — but NOT the clock, energy accounting
   or monotone counters (boots/failures/charges, event counts), which
   differ at every reboot point of a sweep yet only shift time-derived
   observations, i.e. exactly the regions apps must declare
   [nv_volatile]. Two snapshots with equal behavior hashes evolve
   identically modulo those declared-volatile columns; the capacitor
   level is also excluded (only consulted in energy-driven failure
   modes, which boundary exploration never uses). *)
let snapshot_behavior_hash sn =
  let h = ref 0x811c9dc5 in
  let add v = h := (!h * 0x01000193) lxor v in
  add (Memory.image_hash sn.sn_fram);
  add (Memory.image_hash sn.sn_sram);
  add (Int64.to_int sn.sn_rng);
  add (Bool.to_int sn.sn_on);
  add (match sn.sn_tag with App -> 0 | Overhead -> 1);
  add sn.sn_critical_depth;
  add (Bool.to_int sn.sn_pending_death);
  let sends, reads, dmas = sn.sn_faults in
  add sends;
  add reads;
  add dmas;
  let deadline, charge_deadline, remaining = sn.sn_failure in
  add deadline;
  add charge_deadline;
  List.iter add remaining;
  !h land max_int

let snapshot_charges sn = sn.sn_charges
let snapshot_now sn = sn.sn_now
let snapshot_failure_spec sn = sn.sn_failure_spec
let snapshot_fram sn = sn.sn_fram
let snapshot_sram sn = sn.sn_sram

(* Swap the failure model under a live machine — the resume primitive:
   restore a snapshot taken before boundary [k], then [set_failure
   (Nth_charge k)] to steer the continuation into the k-th boundary.
   Mid-run (the machine has booted), arming here matches what [boot]
   would have done; before the first boot it would be one arm too many
   — [boot] is about to arm, and a double arm draws the RNG twice for
   [Timer] specs, perturbing the stream relative to a machine created
   with the failure latched — so it is left to [boot]. *)
let set_failure t spec =
  t.failure <- Failure.create spec;
  t.energy_mode <- Failure.energy_driven t.failure;
  if t.on && t.boots > 0 then Failure.arm t.failure t.rng ~now:t.now
