type space = Fram | Sram

let space_to_string = function Fram -> "FRAM" | Sram -> "SRAM"
let pp_space ppf s = Format.pp_print_string ppf (space_to_string s)

(* {1 Copy-on-write images}

   A snapshot is an immutable [image]: an array of page refs (64 words
   per page) plus one structural hash per page. Consecutive snapshots
   share every page that was not written between them — the memory
   keeps a dirty-page set, maintained by the write path (one branch
   when tracking is off), so the second and later snapshots cost
   O(dirty pages), not O(size). Pages inside an image are never
   aliased by the live word array and never mutated after creation, so
   images can be held, compared and restored freely. *)

let page_bits = 6
let page_words = 1 lsl page_bits

type image = {
  i_words : int;
  i_pages : int array array;
  i_hashes : int array;
  i_copied : int;  (** pages freshly copied for this image (diagnostic) *)
}

type t = {
  space : space;
  words : int array;
  mutable reads : int;
  mutable writes : int;
  (* snapshot support; [dirty]/[dirty_pages] stay empty until the first
     snapshot so untracked memories pay one dead branch per write *)
  mutable track : bool;
  mutable dirty : Bytes.t;  (* one byte per page; '\001' = dirty *)
  mutable dirty_pages : int array;  (* stack of dirty page indices *)
  mutable n_dirty : int;
  mutable base : image option;  (* image the dirty set is relative to *)
}

let create space ~words =
  {
    space;
    words = Array.make words 0;
    reads = 0;
    writes = 0;
    track = false;
    dirty = Bytes.empty;
    dirty_pages = [||];
    n_dirty = 0;
    base = None;
  }

let space t = t.space
let size t = Array.length t.words
let n_pages t = (Array.length t.words + page_words - 1) lsr page_bits

let check t addr op =
  if addr < 0 || addr >= Array.length t.words then
    invalid_arg
      (Printf.sprintf "Memory.%s: address %d out of bounds for %s[%d]" op addr
         (space_to_string t.space) (Array.length t.words))

(* Dirty marking. Only reachable with [t.track] set, which implies the
   structures were allocated by the first [snapshot]. *)
let[@inline] mark t addr =
  let p = addr lsr page_bits in
  if Bytes.unsafe_get t.dirty p = '\000' then begin
    Bytes.unsafe_set t.dirty p '\001';
    t.dirty_pages.(t.n_dirty) <- p;
    t.n_dirty <- t.n_dirty + 1
  end

let mark_range t addr words =
  if words > 0 then
    for p = addr lsr page_bits to (addr + words - 1) lsr page_bits do
      if Bytes.unsafe_get t.dirty p = '\000' then begin
        Bytes.unsafe_set t.dirty p '\001';
        t.dirty_pages.(t.n_dirty) <- p;
        t.n_dirty <- t.n_dirty + 1
      end
    done

let clear_dirty t =
  for i = 0 to t.n_dirty - 1 do
    Bytes.unsafe_set t.dirty t.dirty_pages.(i) '\000'
  done;
  t.n_dirty <- 0

let read t addr =
  check t addr "read";
  t.reads <- t.reads + 1;
  t.words.(addr)

let write t addr v =
  check t addr "write";
  t.writes <- t.writes + 1;
  if t.track then mark t addr;
  t.words.(addr) <- v

let blit ~src ~src_addr ~dst ~dst_addr ~words =
  if words < 0 then invalid_arg "Memory.blit: negative length";
  if words > 0 then begin
    check src src_addr "blit";
    check src (src_addr + words - 1) "blit";
    check dst dst_addr "blit";
    check dst (dst_addr + words - 1) "blit";
    Array.blit src.words src_addr dst.words dst_addr words;
    src.reads <- src.reads + words;
    dst.writes <- dst.writes + words;
    if dst.track then mark_range dst dst_addr words
  end

(* Bulk image store: counters advance exactly as [write] per word would,
   so metrics are unchanged — only the per-word call overhead goes. *)
let load t addr values =
  let words = Array.length values in
  if words > 0 then begin
    check t addr "load";
    check t (addr + words - 1) "load";
    Array.blit values 0 t.words addr words;
    t.writes <- t.writes + words;
    if t.track then mark_range t addr words
  end

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  if t.track then mark_range t 0 (Array.length t.words)

let clear_prefix t words =
  if words < 0 || words > Array.length t.words then invalid_arg "Memory.clear_prefix";
  Array.fill t.words 0 words 0;
  if t.track then mark_range t 0 words

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0

let reads t = t.reads
let writes t = t.writes

let set_counters t ~reads ~writes =
  t.reads <- reads;
  t.writes <- writes

(* FNV-1a-style page hash over word contents; the stdlib's generic hash
   truncates deep structures, so we fold by hand. *)
let hash_page page =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length page - 1 do
    h := (!h * 0x01000193) lxor page.(i)
  done;
  !h land max_int

let copy_page t p =
  let base = p lsl page_bits in
  let len = min page_words (Array.length t.words - base) in
  Array.sub t.words base len

let snapshot t =
  let pages = n_pages t in
  if Bytes.length t.dirty < pages then begin
    t.dirty <- Bytes.make pages '\000';
    t.dirty_pages <- Array.make pages 0;
    t.n_dirty <- 0
  end;
  let img =
    match t.base with
    | None ->
        (* first snapshot (or first after [untrack]): full copy *)
        let i_pages = Array.init pages (fun p -> copy_page t p) in
        let i_hashes = Array.map hash_page i_pages in
        { i_words = Array.length t.words; i_pages; i_hashes; i_copied = pages }
    | Some base ->
        let i_pages = Array.copy base.i_pages in
        let i_hashes = Array.copy base.i_hashes in
        for i = 0 to t.n_dirty - 1 do
          let p = t.dirty_pages.(i) in
          let page = copy_page t p in
          i_pages.(p) <- page;
          i_hashes.(p) <- hash_page page
        done;
        { i_words = Array.length t.words; i_pages; i_hashes; i_copied = t.n_dirty }
  in
  clear_dirty t;
  t.base <- Some img;
  t.track <- true;
  img

let restore t img =
  if img.i_words <> Array.length t.words then invalid_arg "Memory.restore: size mismatch";
  (match t.base with
  | None ->
      Array.iteri
        (fun p page -> Array.blit page 0 t.words (p lsl page_bits) (Array.length page))
        img.i_pages;
      if Bytes.length t.dirty < Array.length img.i_pages then begin
        t.dirty <- Bytes.make (Array.length img.i_pages) '\000';
        t.dirty_pages <- Array.make (Array.length img.i_pages) 0;
        t.n_dirty <- 0
      end
  | Some base ->
      (* a live page differs from [img] only if it was written since
         [base] was taken (dirty) or the two images disagree on it; a
         physical page-ref compare over-approximates the latter, which
         only costs a redundant copy *)
      for p = 0 to Array.length img.i_pages - 1 do
        if
          Bytes.unsafe_get t.dirty p = '\001'
          || img.i_pages.(p) != base.i_pages.(p)
        then
          let page = img.i_pages.(p) in
          Array.blit page 0 t.words (p lsl page_bits) (Array.length page)
      done);
  clear_dirty t;
  t.base <- Some img;
  t.track <- true

let untrack t =
  clear_dirty t;
  t.track <- false;
  t.base <- None

let image_get img addr =
  if addr < 0 || addr >= img.i_words then invalid_arg "Memory.image_get: out of bounds";
  img.i_pages.(addr lsr page_bits).(addr land (page_words - 1))

let image_size img = img.i_words
let image_copied img = img.i_copied

let image_hash img =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length img.i_hashes - 1 do
    h := (!h * 0x01000193) lxor img.i_hashes.(i)
  done;
  !h land max_int

let image_equal a b =
  a.i_words = b.i_words
  && begin
       let eq = ref true in
       for p = 0 to Array.length a.i_pages - 1 do
         if !eq && a.i_pages.(p) != b.i_pages.(p) && a.i_pages.(p) <> b.i_pages.(p)
         then eq := false
       done;
       !eq
     end

let to_array t = Array.copy t.words
