type space = Fram | Sram

let space_to_string = function Fram -> "FRAM" | Sram -> "SRAM"
let pp_space ppf s = Format.pp_print_string ppf (space_to_string s)

type t = {
  space : space;
  words : int array;
  mutable reads : int;
  mutable writes : int;
}

let create space ~words = { space; words = Array.make words 0; reads = 0; writes = 0 }
let space t = t.space
let size t = Array.length t.words

let check t addr op =
  if addr < 0 || addr >= Array.length t.words then
    invalid_arg
      (Printf.sprintf "Memory.%s: address %d out of bounds for %s[%d]" op addr
         (space_to_string t.space) (Array.length t.words))

let read t addr =
  check t addr "read";
  t.reads <- t.reads + 1;
  t.words.(addr)

let write t addr v =
  check t addr "write";
  t.writes <- t.writes + 1;
  t.words.(addr) <- v

let blit ~src ~src_addr ~dst ~dst_addr ~words =
  if words < 0 then invalid_arg "Memory.blit: negative length";
  if words > 0 then begin
    check src src_addr "blit";
    check src (src_addr + words - 1) "blit";
    check dst dst_addr "blit";
    check dst (dst_addr + words - 1) "blit";
    Array.blit src.words src_addr dst.words dst_addr words;
    src.reads <- src.reads + words;
    dst.writes <- dst.writes + words
  end

(* Bulk image store: counters advance exactly as [write] per word would,
   so metrics are unchanged — only the per-word call overhead goes. *)
let load t addr values =
  let words = Array.length values in
  if words > 0 then begin
    check t addr "load";
    check t (addr + words - 1) "load";
    Array.blit values 0 t.words addr words;
    t.writes <- t.writes + words
  end

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let clear_prefix t words =
  if words < 0 || words > Array.length t.words then invalid_arg "Memory.clear_prefix";
  Array.fill t.words 0 words 0

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0

let reads t = t.reads
let writes t = t.writes
let snapshot t = Array.copy t.words

let restore t a =
  if Array.length a <> Array.length t.words then
    invalid_arg "Memory.restore: size mismatch";
  Array.blit a 0 t.words 0 (Array.length a)
