(* Thin alias over {!Machine}'s snapshot support so client layers can
   say [Snapshot.t] / [Snapshot.capture] without reaching into the
   machine namespace. See {!Machine.snapshot} for the contract. *)

type t = Machine.snapshot

let capture = Machine.snapshot
let restore = Machine.restore_snapshot
let hash = Machine.snapshot_hash
let behavior_hash = Machine.snapshot_behavior_hash
let charges = Machine.snapshot_charges
let now = Machine.snapshot_now
let failure_spec = Machine.snapshot_failure_spec
let fram = Machine.snapshot_fram
let sram = Machine.snapshot_sram
