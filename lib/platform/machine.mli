(** The simulated intermittently-powered MCU.

    A machine bundles the two memory spaces, the cost model, the energy
    subsystem (harvester + capacitor) and the failure model. Every
    operation performed on the machine — CPU work, memory accesses,
    peripheral activity — is routed through {!charge}, which advances
    simulated time, drains energy, and raises {!Power_failure} the moment
    the failure model fires. Higher layers (the task kernel) catch the
    exception, call {!reboot}, and re-execute the interrupted task: this
    reproduces the all-or-nothing task semantics of intermittent
    runtimes.

    Charged work is tagged either [App] (the application's own
    computation and I/O) or [Overhead] (bookkeeping inserted by a
    runtime: privatization, commit, flag checks). The per-attempt buckets
    let the kernel attribute each microsecond to useful work, runtime
    overhead, or wasted (lost to a power failure) — the three bars of the
    paper's Figures 7 and 10. *)

exception Power_failure
(** Raised mid-operation when power is lost. Never escapes the kernel
    engine. *)

type tag = App | Overhead

type attempt = {
  app_us : int;
  ovh_us : int;
  app_nj : float;
  ovh_nj : float;
}
(** Work accumulated since the last {!take_attempt}. *)

type t

val create :
  ?seed:int ->
  ?cost:Cost.t ->
  ?failure:Failure.spec ->
  ?faults:Faults.plan ->
  ?harvester:Harvester.t ->
  ?capacitor:Capacitor.t ->
  ?world:World.t ->
  ?fram_words:int ->
  ?sram_words:int ->
  unit ->
  t
(** Defaults: MSP430FR5994 profile — 128 Ki FRAM words (256 KB), 4 Ki
    SRAM words (8 KB), no failures, no peripheral faults, constant
    1 nJ/µs harvester, the paper's 1 mF capacitor window. *)

val reset : ?seed:int -> ?failure:Failure.spec -> ?faults:Faults.plan -> t -> unit
(** Recycle the machine for a fresh run: clear both memories and their
    diagnostic counters, re-create the failure/fault models, reseed the
    RNG, refill the capacitor and zero every clock, counter and
    accounting bucket — observationally identical to {!create} with the
    same structural parameters, minus the allocation. Static {!alloc}
    layouts are {e kept}: this is the arena-reuse primitive behind
    [Vm.reset]. Defaults mirror {!create} ([seed 1], no failures, no
    faults). The trace sink and the metrics sheet are detached. *)

(** {1 Tracing}

    A machine optionally carries a {!Trace.Event.sink}; when one is
    attached, the machine (and every layer above it: kernel, runtimes,
    peripherals) narrates execution as structured events. Emission is
    pure observation — it charges no simulated time or energy — so a
    traced run is numerically identical to an untraced one, and the
    default nil sink costs a single branch per operation. *)

val set_sink : t -> Trace.Event.sink -> unit
(** Attach an event sink (normally [Trace.Recorder.sink]). *)

val traced : t -> bool
(** Whether a sink is attached. Emitting layers guard event
    construction with this so disabled runs allocate nothing. *)

val emit : t -> Trace.Event.payload -> unit
(** Stamp the payload with the current simulated time and hand it to
    the sink (no-op without one). *)

(** {1 Metering}

    The campaign-metrics analogue of tracing: a machine optionally
    carries an {!Obs.Sheet.t}, and instrumented layers (engine, VM,
    baseline runtimes, I/O guards) bump interned counters on it when
    attached. Metering is pure observation — no simulated time or
    energy is charged — and the nil default costs one branch per
    instrumented site. Unlike the sink, the sheet accumulates ACROSS
    runs: campaigns attach one sheet to many runs and snapshot it once
    per shard. [reset] detaches it like the sink. *)

val set_meter : t -> Obs.Sheet.t -> unit

val clear_meter : t -> unit
(** Detach the sheet. Prefix-resume drivers bracket their own
    checkpoint captures with this so driver-side snapshot accounting
    stays out of the metered run's sheet. *)

val meter : t -> Obs.Sheet.t option

val metered : t -> bool
(** Whether a sheet is attached; instrumented layers guard updates with
    this (or pattern-match {!meter}) so unmetered runs pay one
    branch. *)

(** {1 Observation} *)

val now : t -> Units.time_us
val on : t -> bool
val rng : t -> Rng.t
val world : t -> World.t
val cost : t -> Cost.t
val boots : t -> int
val failures : t -> int

val charges : t -> int
(** Cumulative {!charge} calls — the run's failure-boundary count. A
    clean run's final value is the probe used by exhaustive
    [Nth_charge] sweeps (see {!Failure.spec}). *)

val faults : t -> Faults.t
(** The machine's peripheral fault-injection counters (see
    {!Faults}). *)

val energy_used_nj : t -> float
val capacitor : t -> Capacitor.t
val failure_spec : t -> Failure.spec

(** {1 Charged operations} *)

val set_tag : t -> tag -> unit
val tag : t -> tag

val with_tag : t -> tag -> (unit -> 'a) -> 'a
(** Run a thunk with the given accounting tag, restoring the previous
    tag afterwards (also on exception). *)

val charge : t -> us:int -> nj:float -> unit
(** Low-level: consume time and energy; may raise {!Power_failure}. *)

val charge_op : t -> Cost.op_cost -> int -> unit
(** [charge_op t op n] charges [n] repetitions of [op]. *)

val cpu : t -> int -> unit
(** [cpu t n] charges [n] CPU instructions. *)

val idle : t -> Units.time_us -> unit
(** Busy-wait (delay loop) for a duration; charges CPU time at idle
    energy. Charged in slices so failures can interrupt it. *)

(** {1 Memory} *)

val mem : t -> Memory.space -> Memory.t
val layout : t -> Memory.space -> Layout.t

val alloc : t -> Memory.space -> name:string -> words:int -> int
(** Static allocation (cost-free: happens at "link time"). *)

val read : t -> Memory.space -> int -> int
(** Charged word read. *)

val write : t -> Memory.space -> int -> int -> unit
(** Charged word write. *)

(** {1 Power-cycle control (kernel only)} *)

val boot : t -> unit
(** Arm the failure model at first power-on. Called once by the engine
    before the first task. *)

val reboot : t -> unit
(** After {!Power_failure}: advance time by the off interval, clear
    SRAM, recharge, arm the failure timer, count the failure. *)

val die : t -> unit
(** Force a power failure from outside the charge path (tests). Inside
    a {!critical} section the failure is deferred to the section's
    end. *)

val critical : t -> (unit -> 'a) -> 'a
(** Failure-atomic section: a power failure striking inside is deferred
    until the section completes (time and energy are charged normally).
    Models the atomicity real runtimes obtain from commit-replay
    protocols; the kernel engine wraps the task-boundary commit sequence
    in it. Nestable. *)

(** {1 Accounting} *)

val take_attempt : t -> attempt
(** Return work accumulated since the previous call and reset the
    buckets. *)

val event_id : string -> int
(** Intern an event name into its dense global id (see {!Events}).
    Peripherals do this once at module init so per-operation bumps touch
    no hash table. *)

val bump_id : t -> int -> unit
(** Increment the counter behind a pre-interned id — the hot-loop
    counterpart of {!bump}. *)

val bump : t -> string -> unit
(** Increment a named event counter (e.g. ["io:Temp"] per sensor
    execution). Shim over {!event_id} + {!bump_id}; prefer those on hot
    paths. *)

val event : t -> string -> int
val events : t -> (string * int) list

(** {1 Snapshots}

    A {!snapshot} is a total, immutable capture of the machine's run
    state: both memory images (copy-on-write — see {!Memory.snapshot} —
    so repeated captures along one run cost O(pages written between
    them)), the failure and fault models' mutable state, capacitor
    level, RNG state, clocks, counters, energy accounting and event
    counts. Static {!alloc} layouts are {e not} captured (they are
    monotone link-time data shared by every run of an arena), and
    neither are the attached trace sink / metrics sheet (pure
    observers; whoever restores re-attaches its own). The contract:
    [restore_snapshot] followed by identical charges replays the
    original execution byte for byte. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the current state. When a metrics sheet is attached, bumps
    the [snapshot/pages_copied] counter by the pages freshly copied. *)

val restore_snapshot : t -> snapshot -> unit
(** Roll the machine back to a captured state, O(pages changed since).
    The sink and meter are left as they are. *)

val snapshot_hash : snapshot -> int
(** Structural hash (precomputed at capture) of everything that can
    influence future evolution or end-of-run checks — memories, clock,
    power, energy, RNG, fault counters, event counts, armed failure
    state — excluding the failure {e spec} and pure observers. Equal
    hashes are the explorer's convergence test. *)

val snapshot_behavior_hash : snapshot -> int
(** Convergence key for reboot-space pruning: hashes what determines
    future decisions and committed values (memories, RNG, power flags,
    failure/fault latches) but excludes the clock, energy accounting
    and monotone counters — which differ at every reboot point yet only
    shift time-derived (declared-volatile) observations. Coarser than
    {!snapshot_hash}: states equal under it evolve identically modulo
    [nv_volatile] regions. *)

val snapshot_charges : snapshot -> int
val snapshot_now : snapshot -> Units.time_us
val snapshot_failure_spec : snapshot -> Failure.spec
val snapshot_fram : snapshot -> Memory.image
val snapshot_sram : snapshot -> Memory.image

val set_failure : t -> Failure.spec -> unit
(** Swap the failure model under a live machine and (re-)arm it — the
    resume primitive: restore a snapshot taken before boundary [k],
    then [set_failure (Nth_charge k)] to steer the continuation into
    the k-th boundary. For the deterministic specs arming draws nothing
    from the RNG, so resumed runs match from-power-on runs exactly. *)
