type t = { capacity : float; on_level : float; mutable level : float }

let create ~capacity_nj ~on_level_nj =
  if capacity_nj <= 0. then invalid_arg "Capacitor.create: capacity";
  { capacity = capacity_nj; on_level = min on_level_nj capacity_nj; level = capacity_nj }

(* 0.5 * 1e-3 F * (3.3^2 - 1.8^2) V^2 ~= 3.8 mJ usable; boot at ~60 %.
   A function: each machine must own a fresh capacitor, since the level
   is mutable state. *)
let mf1_powercast () = create ~capacity_nj:3_800_000. ~on_level_nj:2_300_000.

let level t = t.level
let capacity t = t.capacity

let drain t nj =
  t.level <- t.level -. nj;
  if t.level <= 0. then begin
    t.level <- 0.;
    `Dead
  end
  else `Ok

(* float-specialized saturation: polymorphic [min] would box both
   floats and call the generic comparator on every harvest *)
let harvest t nj =
  let lvl = t.level +. nj in
  t.level <- (if lvl > t.capacity then t.capacity else lvl)

let worst_case_recharge_us t ~power_nj_per_us =
  if power_nj_per_us <= 0. then invalid_arg "Capacitor.worst_case_recharge_us: power";
  int_of_float (ceil (t.on_level /. power_nj_per_us))

let ready t = t.level >= t.on_level
let on_level t = t.on_level
let set_full t = t.level <- t.capacity
let set_ready t = t.level <- max t.level t.on_level
