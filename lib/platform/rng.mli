(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator (failure timers, sensor
    noise, workload generation) draws from an explicit generator so that
    experiments are reproducible from a single seed and independent of
    evaluation order. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val reseed : t -> int -> unit
(** [reseed t seed] rewinds [t] to the state of [create seed]; used when
    a machine arena is recycled between runs. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val state : t -> int64
(** The generator's complete internal state; machine snapshots capture
    it so a restored run draws the same stream. *)

val set_state : t -> int64 -> unit
(** Restore a state captured by {!state}. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val hash2 : int -> int -> int
(** [hash2 a b] is a stateless 62-bit positive mix of [a] and [b]; used
    for deterministic "noise" that must not depend on draw order. *)
