(** Word-addressed memories.

    The machine exposes two memory spaces mirroring the MSP430FR5994:
    non-volatile FRAM (256 KB, survives power failures) and volatile SRAM
    (8 KB, cleared on reboot). Words hold OCaml [int]s; conceptually they
    are 16-bit cells, and the cost model charges per-word. The memory
    module itself is cost-free — the machine charges energy/time around
    each access — but it keeps access counters for diagnostics. *)

type space = Fram | Sram

val pp_space : Format.formatter -> space -> unit
val space_to_string : space -> string

type t

val create : space -> words:int -> t
val space : t -> space
val size : t -> int

val read : t -> int -> int
(** [read t addr] returns the word at [addr]. Raises [Invalid_argument]
    when out of bounds. *)

val write : t -> int -> int -> unit
(** [write t addr v] stores [v] at [addr]. *)

val blit : src:t -> src_addr:int -> dst:t -> dst_addr:int -> words:int -> unit
(** Raw block copy; used by the DMA engine. Handles overlapping ranges
    within the same memory like [Array.blit]. *)

val load : t -> int -> int array -> unit
(** [load t addr values] stores the whole image at [addr] in one blit.
    The write counter advances by [Array.length values], exactly as the
    equivalent per-word {!write} loop would — harness setup helper. *)

val clear : t -> unit
(** Zero the whole memory; models SRAM content loss on reboot. *)

val clear_prefix : t -> int -> unit
(** [clear_prefix t words] zeroes only the first [words] cells.
    Equivalent to {!clear} whenever every address the program can touch
    lies below [words] (e.g. the memory's layout high-water mark) —
    used by arena resets to avoid memset-ing the untouched tail of a
    131k-word FRAM on every run. *)

val reset_counters : t -> unit
(** Zero the diagnostic read/write counters ({!clear} leaves them
    running); used when a machine arena is recycled between runs. *)

val reads : t -> int
val writes : t -> int

val snapshot : t -> int array
(** Copy of the current contents; used by golden-run comparison. *)

val restore : t -> int array -> unit
(** Overwrite contents from a snapshot of the same size. *)
