(** Word-addressed memories.

    The machine exposes two memory spaces mirroring the MSP430FR5994:
    non-volatile FRAM (256 KB, survives power failures) and volatile SRAM
    (8 KB, cleared on reboot). Words hold OCaml [int]s; conceptually they
    are 16-bit cells, and the cost model charges per-word. The memory
    module itself is cost-free — the machine charges energy/time around
    each access — but it keeps access counters for diagnostics. *)

type space = Fram | Sram

val pp_space : Format.formatter -> space -> unit
val space_to_string : space -> string

type t

val create : space -> words:int -> t
val space : t -> space
val size : t -> int

val read : t -> int -> int
(** [read t addr] returns the word at [addr]. Raises [Invalid_argument]
    when out of bounds. *)

val write : t -> int -> int -> unit
(** [write t addr v] stores [v] at [addr]. *)

val blit : src:t -> src_addr:int -> dst:t -> dst_addr:int -> words:int -> unit
(** Raw block copy; used by the DMA engine. Handles overlapping ranges
    within the same memory like [Array.blit]. *)

val load : t -> int -> int array -> unit
(** [load t addr values] stores the whole image at [addr] in one blit.
    The write counter advances by [Array.length values], exactly as the
    equivalent per-word {!write} loop would — harness setup helper. *)

val clear : t -> unit
(** Zero the whole memory; models SRAM content loss on reboot. *)

val clear_prefix : t -> int -> unit
(** [clear_prefix t words] zeroes only the first [words] cells.
    Equivalent to {!clear} whenever every address the program can touch
    lies below [words] (e.g. the memory's layout high-water mark) —
    used by arena resets to avoid memset-ing the untouched tail of a
    131k-word FRAM on every run. *)

val reset_counters : t -> unit
(** Zero the diagnostic read/write counters ({!clear} leaves them
    running); used when a machine arena is recycled between runs. *)

val reads : t -> int
val writes : t -> int

val set_counters : t -> reads:int -> writes:int -> unit
(** Overwrite the diagnostic counters; snapshot restore uses this to
    roll them back together with contents. *)

(** {1 Copy-on-write snapshots}

    An {!image} is an immutable, persistent copy of the memory's
    contents, chunked into 64-word pages. The first {!snapshot} of a
    memory copies every page and switches on dirty-page tracking (one
    extra branch on the write path — memories that never snapshot pay
    only that dead branch); each later snapshot copies {e only the
    pages written since the previous one} and shares the rest with it
    structurally. {!restore} is likewise O(pages changed since the
    restored image). Images never alias the live word array and are
    never mutated after creation, so they can be held indefinitely and
    compared in O(shared-page short-circuits). *)

type image

val snapshot : t -> image
(** Capture the current contents as a persistent image and make it the
    new copy-on-write base. O(size) on the first call after [create] or
    {!untrack}; O(dirty pages) afterwards. *)

val restore : t -> image -> unit
(** Overwrite contents from an image of the same size (O(pages that
    differ from the live contents)) and make it the new base. Raises
    [Invalid_argument] on size mismatch. Access counters are {e not}
    touched; use {!set_counters} to roll them back. *)

val untrack : t -> unit
(** Drop the copy-on-write base and switch dirty tracking off; the next
    {!snapshot} is a full copy again. Arena resets call this so
    recycled runs do not pay for a stale dirty set. *)

val image_get : image -> int -> int
(** [image_get img addr] reads one word of an image, O(1). *)

val image_size : image -> int

val image_copied : image -> int
(** Pages freshly copied when this image was taken (the rest are shared
    with its predecessor) — feeds the [snapshot/pages_copied] obs
    counter. *)

val image_hash : image -> int
(** Structural hash of the full contents, folded from per-page hashes
    computed when each page was captured — O(pages), no word
    traversal. *)

val image_equal : image -> image -> bool
(** Content equality; shared pages compare by reference first. *)

val to_array : t -> int array
(** Plain copy of the current contents (diagnostics; not COW). *)
