type spec =
  | No_failures
  | Timer of { on_min_us : int; on_max_us : int; off_min_us : int; off_max_us : int }
  | Energy_driven
  | At_times of int list
  | Nth_charge of int

let paper_timer =
  Timer { on_min_us = 5_000; on_max_us = 20_000; off_min_us = 2_000; off_max_us = 15_000 }

(* Deterministic schedules reboot after a fixed off interval so the whole
   run stays a pure function of (spec, seed). *)
let deterministic_off_us = 5_000

(* Both triggers are normalized to integer deadlines with [max_int] as
   the "never" sentinel, so the per-charge liveness probe ({!fires},
   inlined into [Machine.charge]) is two compares — no constructor
   dispatch on the hot path. The [Nth_charge] one-shot latch is encoded
   by bumping [charge_deadline] back to [max_int] when it fires. *)
type t = {
  spec : spec;
  mutable deadline : Units.time_us;  (* Timer / At_times; max_int otherwise *)
  mutable charge_deadline : int;  (* Nth_charge target; max_int otherwise *)
  mutable remaining : int list;  (* At_times: schedule entries not yet armed *)
}

let create spec =
  let remaining = match spec with At_times ts -> List.sort_uniq compare ts | _ -> [] in
  let charge_deadline = match spec with Nth_charge n -> n | _ -> max_int in
  { spec; deadline = max_int; charge_deadline; remaining }

let spec t = t.spec

let arm t rng ~now =
  match t.spec with
  | No_failures | Energy_driven | Nth_charge _ -> t.deadline <- max_int
  | Timer { on_min_us; on_max_us; _ } -> t.deadline <- now + Rng.int_in rng on_min_us on_max_us
  | At_times _ ->
      (* Scheduled instants that fall inside the off interval we just
         slept through are unreachable: drop them. *)
      t.remaining <- List.filter (fun at -> at > now) t.remaining;
      t.deadline <- (match t.remaining with [] -> max_int | at :: _ -> at)

let[@inline] fires t ~now ~charges =
  now >= t.deadline
  || charges >= t.charge_deadline
     && begin
          (* one-shot: Nth_charge fires at most once per run *)
          t.charge_deadline <- max_int;
          true
        end

let energy_driven t =
  match t.spec with
  | Energy_driven -> true
  | No_failures | Timer _ | At_times _ | Nth_charge _ -> false

(* Snapshot support: the three mutable fields are the model's entire
   run state; capturing them (the [remaining] list is immutable) makes
   a machine snapshot total over the failure model. *)
let save t = (t.deadline, t.charge_deadline, t.remaining)

let load t (deadline, charge_deadline, remaining) =
  t.deadline <- deadline;
  t.charge_deadline <- charge_deadline;
  t.remaining <- remaining

let off_time t rng =
  match t.spec with
  | No_failures | Energy_driven -> 0
  | Timer { off_min_us; off_max_us; _ } -> Rng.int_in rng off_min_us off_max_us
  | At_times _ | Nth_charge _ -> deterministic_off_us

(* {1 Spec syntax}

   none | paper | energy | timer:ON_MIN,ON_MAX,OFF_MIN,OFF_MAX
        | at:T1,T2,... | nth:N *)

let to_string = function
  | No_failures -> "none"
  | Energy_driven -> "energy"
  | Timer { on_min_us; on_max_us; off_min_us; off_max_us } ->
      Printf.sprintf "timer:%d,%d,%d,%d" on_min_us on_max_us off_min_us off_max_us
  | At_times ts -> "at:" ^ String.concat "," (List.map string_of_int ts)
  | Nth_charge n -> Printf.sprintf "nth:%d" n

let of_string s =
  let ints body =
    String.split_on_char ',' body
    |> List.filter (fun f -> f <> "")
    |> List.fold_left
         (fun acc f ->
           match (acc, int_of_string_opt (String.trim f)) with
           | Error _, _ -> acc
           | Ok _, None -> Error (Printf.sprintf "not an integer: %S" f)
           | Ok l, Some n -> Ok (n :: l))
         (Ok [])
    |> Result.map List.rev
  in
  match s with
  | "none" -> Ok No_failures
  | "paper" -> Ok paper_timer
  | "energy" -> Ok Energy_driven
  | _ -> (
      match String.index_opt s ':' with
      | None -> Error (Printf.sprintf "unknown failure spec %S (try none|paper|energy|timer:..|at:..|nth:N)" s)
      | Some i -> (
          let kind = String.sub s 0 i in
          let body = String.sub s (i + 1) (String.length s - i - 1) in
          match kind with
          | "timer" -> (
              match ints body with
              | Ok [ on_min_us; on_max_us; off_min_us; off_max_us ] ->
                  if on_min_us <= 0 || on_max_us < on_min_us || off_min_us < 0 || off_max_us < off_min_us
                  then Error "timer: need 0 < ON_MIN <= ON_MAX and 0 <= OFF_MIN <= OFF_MAX"
                  else Ok (Timer { on_min_us; on_max_us; off_min_us; off_max_us })
              | Ok _ -> Error "timer: expected 4 integers ON_MIN,ON_MAX,OFF_MIN,OFF_MAX"
              | Error e -> Error ("timer: " ^ e))
          | "at" -> (
              match ints body with
              | Ok [] -> Error "at: expected at least one instant"
              | Ok ts ->
                  if List.exists (fun at -> at <= 0) ts then Error "at: times must be positive"
                  else Ok (At_times ts)
              | Error e -> Error ("at: " ^ e))
          | "nth" -> (
              match ints body with
              | Ok [ n ] when n > 0 -> Ok (Nth_charge n)
              | Ok _ -> Error "nth: expected one positive integer"
              | Error e -> Error ("nth: " ^ e))
          | _ -> Error (Printf.sprintf "unknown failure spec kind %S" kind)))
