(** Global interning of event-counter names.

    Peripheral modules intern their event names once ("io:Temp",
    "io:DMA", ...) and bump per-machine int-array counters by id — the
    hot-loop replacement for the old per-machine string-keyed Hashtbl.
    The registry is global, append-only and mutex-protected; ids are
    small and dense, so a machine's counter array is indexed directly.

    Hot paths must carry a pre-interned id (see {!Machine.bump_id});
    every function here takes the registry lock. *)

val id : string -> int
(** Intern a name, returning its dense id (stable for the process
    lifetime). *)

val find : string -> int option
(** Lookup without interning — for read-side queries of names that may
    never have been bumped. *)

val name : int -> string
(** The name behind an id (ids come only from {!id}). *)

val registered : unit -> int
(** Number of names interned so far. *)
