(** The differential judge: one generated case, four checks.

    1. {b Diagnostics}: the analysis passes must be error-clean for a
       [Clean] case, or report exactly the intended code for an
       [Expect] near-miss.
    2. {b Compiler identities}: the source pretty-prints and re-parses
       to itself; the compiled output re-parses; compiling the
       compiled output is the identity (fixed point).
    3. {b Differential execution}: run the program continuously under
       all four runtime policies (per-variant goldens), then sweep
       [Failure.Nth_charge] boundaries per variant, demanding

       - final-NV-state equality with that variant's golden on every
         global {!Taint} does not excuse — enforced unconditionally for
         EaseIO, for Alpaca/InK only on DMA-free programs, and for
         Plain only on DMA-free, WAR-free programs (the baselines are
         {e expected} unsafe outside those envelopes; such mismatches
         are counted, not flagged);
       - cross-variant golden equality of untainted NV state against
         Plain, and of per-kind I/O execution counts when counts are
         schedule-independent;
       - the trace invariants: [Always] sites never [Skip]
         ({!Faultkit.Oracle.always_skip_watch}), DMA-site decisions
         carry only the runtime's legal (semantics, decision, reason)
         triples, and per-kind I/O execution counts never fall below
         the golden run's (every site executes at least as often as on
         continuous power — skipping can only ever suppress
         {e re}-execution);
       - forward progress (no livelock, no interpreter crash).
    4. {b Bytecode-VM equivalence}: every tree-walker run above is
       shadowed by the same run on the bytecode VM ({!Vm}), recycling
       one compiled arena per variant across the whole sweep — the
       production configuration. The VM must match the tree walker
       observably: crash message, outcome/metrics summary, charge
       count, event counters, committed state of every declared
       global, and the trace-visible I/O decision sequence. Any
       mismatch is a [vm-diverge] violation. Boundary-sweep shadows
       resume from the continuous shadow's engine checkpoints instead
       of replaying the prefix from power on — every compared artifact
       is byte-identical either way. Disabled with [check_vm = false].

    A violation is anything the shipped pipeline must never produce;
    expected-unsafe baseline divergence is reported separately as
    statistics. *)

type config = {
  budget : int;  (** max [Nth_charge] probes per variant (boundaries are strided to fit) *)
  machine_seed : int;
  ablate_regions : bool;  (** test hook: disable regional privatization (the W0403 guard) *)
  ablate_semantics : bool;  (** test hook: force every annotation to [Always] *)
  check_vm : bool;  (** shadow every run on the bytecode VM (check 4) *)
}

val default_config : config

type violation = {
  vkind : string;
      (** stable kind: [intent], [errors], [roundtrip], [fixed-point],
          [golden], [livelock], [crash], [nv-state],
          [cross-variant-nv], [io-floor], [cross-variant-io],
          [always-skip], [dma-reason], [vm-diverge] *)
  variant : string;  (** runtime policy, or [""] when not applicable *)
  schedule : string;  (** failure spec ([nth:K]), or [""] *)
  detail : string;
}

val key : violation -> string
(** [vkind ^ "/" ^ variant] — what the shrinker preserves. *)

val describe : violation -> string
val violation_to_json : violation -> Expkit.Json.t

type outcome = {
  diag_codes : string list;  (** sorted distinct codes, warnings included *)
  violations : violation list;
  runs : int;  (** machine executions this judgement performed *)
  boundaries_total : int;
      (** summed charge boundaries of the per-variant golden runs — the
          exact size of this case's reboot space *)
  boundaries_run : int;  (** [Nth_charge] probes actually executed *)
  strided : bool;  (** the budget forced a stride over some variant *)
  tainted_nv : string list;  (** NV globals excused from state equality *)
  unsafe_baseline : (string * int) list;
      (** per expected-unsafe variant: schedules whose NV state
          diverged — the paper's claim, observed, not a violation *)
}

val judge : ?stop_early:bool -> ?config:config -> Gen.case -> outcome
(** [stop_early] returns at the first violation (what shrinking
    needs); default [false] collects everything. Deterministic for a
    given (case, config). *)
