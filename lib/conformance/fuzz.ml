module Rng = Platform.Rng
module Json = Expkit.Json

type options = {
  count : int;
  seed : int;
  jobs : int;
  budget : int;
  max_shrink : int;
  ablate_regions : bool;
  ablate_semantics : bool;
  check_vm : bool;
}

let default_options =
  {
    count = 100;
    seed = 1;
    jobs = 1;
    budget = 24;
    max_shrink = 300;
    ablate_regions = false;
    ablate_semantics = false;
    check_vm = true;
  }

type counterexample = {
  case_index : int;
  gen_seed : int;
  violations : Judge.violation list;
  original_stmts : int;
  shrunk_stmts : int;
  shrink_accepted : int;
  shrink_checks : int;
  shrunk : Lang.Ast.program;
}

type report = {
  options : options;
  cases : int;
  clean : int;
  expected_diag : int;
  violating : int;
  total_runs : int;
  boundaries_total : int;
  boundaries_run : int;
  strided : bool;
  unsafe_baseline : (string * int) list;
  violation_kinds : (string * int) list;
  counterexamples : counterexample list;
  snap : Obs.Snapshot.t;
}

let salt = 0x6a77

let config_of (o : options) =
  {
    Judge.default_config with
    Judge.budget = o.budget;
    ablate_regions = o.ablate_regions;
    ablate_semantics = o.ablate_semantics;
    check_vm = o.check_vm;
  }

(* One case, pure in (options, index): generate, judge, and — when a
   clean-intent case is violated — shrink while preserving one of the
   original violation keys. *)
let one_case (o : options) i =
  let cfg = config_of o in
  let gen_seed = Rng.hash2 (Rng.hash2 o.seed salt) i in
  let case = Gen.generate ~seed:gen_seed in
  let out = Judge.judge ~config:cfg case in
  let extra_runs = ref 0 in
  let cex =
    if out.Judge.violations = [] || case.Gen.intent <> Gen.Clean then None
    else begin
      let keys = List.sort_uniq compare (List.map Judge.key out.Judge.violations) in
      let fails p =
        let out' =
          Judge.judge ~stop_early:true ~config:cfg { case with Gen.prog = p; intent = Gen.Clean }
        in
        extra_runs := !extra_runs + out'.Judge.runs;
        List.exists (fun v -> List.mem (Judge.key v) keys) out'.Judge.violations
      in
      let shrunk, accepted, checks =
        Shrink.minimize ~max_checks:o.max_shrink ~valid:Gen.valid ~fails case.Gen.prog
      in
      Some
        {
          case_index = i;
          gen_seed;
          violations = out.Judge.violations;
          original_stmts = Gen.stmt_count case.Gen.prog;
          shrunk_stmts = Gen.stmt_count shrunk;
          shrink_accepted = accepted;
          shrink_checks = checks;
          shrunk;
        }
    end
  in
  (case, out, cex, out.Judge.runs + !extra_runs)

(* Campaign metrics live on one sheet filled by the sequential fold
   below — never inside the per-case workers — so the snapshot is a
   pure function of (options) and byte-identical for any [jobs]. *)
let m_cases = Obs.Registry.counter "fuzz/cases"
let m_clean = Obs.Registry.counter "fuzz/clean"
let m_expected = Obs.Registry.counter "fuzz/expected_diag"
let m_violating = Obs.Registry.counter "fuzz/violating"
let m_runs = Obs.Registry.counter "fuzz/total_runs"
let m_boundaries_total = Obs.Registry.counter "fuzz/boundaries_total"
let m_boundaries_run = Obs.Registry.counter "fuzz/boundaries_run"
let m_shrink_checks = Obs.Registry.counter "fuzz/shrink_checks"
let m_shrink_accepted = Obs.Registry.counter "fuzz/shrink_accepted"
let m_case_runs = Obs.Registry.hist "fuzz/case_runs"

let run ?progress (o : options) =
  Option.iter (fun p -> Obs.Progress.add_total p o.count) progress;
  let tick = Option.map (fun p () -> Obs.Progress.tick p) progress in
  let results = Expkit.Pool.map ~jobs:(max 1 o.jobs) ?tick o.count (one_case o) in
  let sheet = Obs.Sheet.create () in
  let clean = ref 0
  and expected = ref 0
  and violating = ref 0
  and runs = ref 0
  and b_total = ref 0
  and b_run = ref 0
  and strided = ref false
  and unsafe = Hashtbl.create 4
  and kinds = Hashtbl.create 8
  and cexs = ref [] in
  Array.iter
    (fun (case, (out : Judge.outcome), cex, case_runs) ->
      runs := !runs + case_runs;
      b_total := !b_total + out.Judge.boundaries_total;
      b_run := !b_run + out.Judge.boundaries_run;
      if out.Judge.strided then strided := true;
      Obs.Sheet.bump sheet m_cases;
      Obs.Sheet.add sheet m_runs case_runs;
      Obs.Sheet.add sheet m_boundaries_total out.Judge.boundaries_total;
      Obs.Sheet.add sheet m_boundaries_run out.Judge.boundaries_run;
      Obs.Sheet.observe sheet m_case_runs case_runs;
      (match cex with
      | Some c ->
          Obs.Sheet.add sheet m_shrink_checks c.shrink_checks;
          Obs.Sheet.add sheet m_shrink_accepted c.shrink_accepted
      | None -> ());
      if out.Judge.violations = [] then begin
        match case.Gen.intent with
        | Gen.Clean ->
            incr clean;
            Obs.Sheet.bump sheet m_clean
        | Gen.Expect _ ->
            incr expected;
            Obs.Sheet.bump sheet m_expected
      end
      else begin
        incr violating;
        Obs.Sheet.bump sheet m_violating;
        List.iter
          (fun v ->
            let k = Judge.key v in
            Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)))
          out.Judge.violations
      end;
      List.iter
        (fun (v, n) ->
          Hashtbl.replace unsafe v (n + Option.value ~default:0 (Hashtbl.find_opt unsafe v)))
        out.Judge.unsafe_baseline;
      match cex with Some c -> cexs := c :: !cexs | None -> ())
    results;
  {
    options = o;
    cases = o.count;
    clean = !clean;
    expected_diag = !expected;
    violating = !violating;
    total_runs = !runs;
    boundaries_total = !b_total;
    boundaries_run = !b_run;
    strided = !strided;
    unsafe_baseline =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) unsafe []);
    violation_kinds = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) kinds []);
    counterexamples = List.rev !cexs;
    snap = Obs.Snapshot.of_sheet sheet;
  }

let passed r = r.violating = 0

let max_cex_in_json = 20

let to_json (r : report) =
  let o = r.options in
  Json.Obj
    [
      ( "options",
        Json.Obj
          [
            ("count", Json.Int o.count);
            ("seed", Json.Int o.seed);
            ("budget", Json.Int o.budget);
            ("max_shrink", Json.Int o.max_shrink);
            ("ablate_regions", Json.Bool o.ablate_regions);
            ("ablate_semantics", Json.Bool o.ablate_semantics);
          ] );
      ("cases", Json.Int r.cases);
      ("clean", Json.Int r.clean);
      ("expected_diag", Json.Int r.expected_diag);
      ("violating", Json.Int r.violating);
      ("total_runs", Json.Int r.total_runs);
      ("boundaries_total", Json.Int r.boundaries_total);
      ("boundaries_run", Json.Int r.boundaries_run);
      ("strided", Json.Bool r.strided);
      ( "unsafe_baseline",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.unsafe_baseline) );
      ( "violation_kinds",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.violation_kinds) );
      ("metrics", Obs.Snapshot.to_json r.snap);
      ( "counterexamples",
        Json.List
          (List.filteri
             (fun i _ -> i < max_cex_in_json)
             r.counterexamples
          |> List.map (fun c ->
                 Json.Obj
                   [
                     ("case_index", Json.Int c.case_index);
                     ("gen_seed", Json.Int c.gen_seed);
                     ("original_stmts", Json.Int c.original_stmts);
                     ("shrunk_stmts", Json.Int c.shrunk_stmts);
                     ("shrink_accepted", Json.Int c.shrink_accepted);
                     ("shrink_checks", Json.Int c.shrink_checks);
                     ("violations", Json.List (List.map Judge.violation_to_json c.violations));
                     ("shrunk", Json.String (Lang.Pretty.program_to_string c.shrunk));
                   ])) );
    ]

let reproducer (o : options) (c : counterexample) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "// easeio fuzz counterexample: campaign seed %d, case %d, generator seed %d\n"
       o.seed c.case_index c.gen_seed);
  List.iter
    (fun v -> Buffer.add_string b (Printf.sprintf "// violation: %s\n" (Judge.describe v)))
    c.violations;
  let flags =
    (if o.ablate_regions then " --ablate-regions" else "")
    ^ if o.ablate_semantics then " --ablate-semantics" else ""
  in
  Buffer.add_string b
    (Printf.sprintf "// replay: easeio fuzz --replay fuzz_%d.eio --budget %d%s\n\n" c.gen_seed
       o.budget flags);
  Buffer.add_string b (Lang.Pretty.program_to_string c.shrunk);
  Buffer.add_char b '\n';
  Buffer.contents b

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_atomic path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match output_string oc s with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let save_reproducers ~dir (o : options) (r : report) =
  mkdir_p dir;
  List.map
    (fun c ->
      let path = Filename.concat dir (Printf.sprintf "fuzz_%d.eio" c.gen_seed) in
      write_atomic path (reproducer o c);
      path)
    r.counterexamples
