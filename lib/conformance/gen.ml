open Lang
open Ast
module Rng = Platform.Rng
module SS = Analysis.SS

type intent = Clean | Expect of string
type case = { gen_seed : int; intent : intent; prog : Ast.program }

(* Every array — NV or volatile — is [words] long, so constant indices
   below [words] and full-width loops are always in bounds and "fully
   defined" is a syntactic property. *)
let words = 8
let sensors = [ "Temp"; "Humd"; "Pres"; "Light" ]

(* {1 Generator state} *)

type st = {
  rng : Rng.t;
  gs : string list;  (** NV scalars *)
  arrs : string list;  (** NV arrays *)
  vols : string list;  (** volatile arrays *)
  mutable tainted : SS.t;
      (** variables that may carry input-derived (schedule-dependent)
          data; once tainted, never cleared — must stay a superset of
          what {!Taint.analyze} would compute, so conditions we pick
          from the complement are schedule-independent *)
  mutable written : SS.t;  (** arrays stored to or used as a DMA destination *)
  mutable frozen : SS.t;
      (** sources of Exclude DMAs: an Exclude transfer lawfully
          re-executes, so its source must stay constant forever *)
  mutable defined : SS.t;
      (** volatile arrays fully defined so far in the current task *)
}

let pick rng l = List.nth l (Rng.int rng (List.length l))
let taint st v = st.tainted <- SS.add v st.tainted
let is_tainted st v = SS.mem v st.tainted
let untainted st l = List.filter (fun v -> not (is_tainted st v)) l
let writable st l = List.filter (fun v -> not (SS.mem v st.frozen)) l

(* Schedule-independent expressions: constants and untainted NV
   scalars. *)
let atom st =
  let pool = untainted st st.gs in
  if pool <> [] && Rng.bool st.rng then Var (pick st.rng pool)
  else Int (Rng.int st.rng 10)

let rec expr st depth =
  if depth = 0 || Rng.int st.rng 3 = 0 then atom st
  else
    let op = pick st.rng [ Add; Sub; Mul; Add ] in
    Binop (op, expr st (depth - 1), atom st)

let cond st =
  let op = pick st.rng [ Lt; Le; Gt; Ge; Eq; Ne ] in
  Binop (op, atom st, Int (Rng.int st.rng 10))

let any_sem st =
  match Rng.int st.rng 10 with
  | 0 | 1 | 2 | 3 -> Easeio.Semantics.Single
  | 4 | 5 | 6 -> Easeio.Semantics.Timely (Rng.int_in st.rng 1_000 20_000)
  | _ -> Easeio.Semantics.Always

let call ?target io sem args = mk (Call_io { target; io; sem; args; guarded = false })
let mref a off = { ref_arr = a; ref_off = off }

let dma ?(exclude = false) src dst n =
  mk (Dma { dma_src = src; dma_dst = dst; dma_words = Int n; exclude; dma_deps = [] })

let sensor_call st tgt =
  taint st tgt;
  call ~target:tgt (pick st.rng sensors) (any_sem st) []

let fill_loop st arr =
  st.written <- SS.add arr st.written;
  let c1 = Rng.int_in st.rng 1 5 and c2 = Rng.int st.rng 20 in
  mk
    (For
       ( "i0",
         Int 0,
         Int (words - 1),
         [ mk (Store (arr, Var "i0", Binop (Add, Binop (Mul, Var "i0", Int c1), Int c2))) ] ))

let reduce_loop st src g =
  if is_tainted st src then taint st g;
  [
    mk (Assign (g, Int (Rng.int st.rng 5)));
    mk
      (For
         ("i0", Int 0, Int (words - 1), [ mk (Assign (g, Binop (Add, Var g, Index (src, Var "i0")))) ]));
  ]

(* {1 Statement shapes}

   Each returns the statements to append and updates the taint /
   written / defined / frozen books. Weights bias toward the DMA
   family — the shapes the regions/privatize stages exist for. *)

let shape_menu =
  [
    (3, `Nv_arith);
    (2, `War_inc);
    (2, `Local_set);
    (3, `Sensor);
    (1, `Block);
    (2, `Fill_nv);
    (1, `Fill_vol);
    (2, `Reduce);
    (1, `Loop_io);
    (2, `Dma_nv);
    (2, `Dma_in);
    (1, `Dma_out);
    (4, `Dma_war);
    (1, `Lea);
    (1, `Send);
    (1, `Delay);
    (1, `If_);
    (1, `While_);
  ]

let total_weight = List.fold_left (fun a (w, _) -> a + w) 0 shape_menu

let pick_shape rng =
  let n = Rng.int rng total_weight in
  let rec go acc = function
    | (w, s) :: rest -> if n < acc + w then s else go (acc + w) rest
    | [] -> `Nv_arith
  in
  go 0 shape_menu

let emit_shape st shape =
  let locals = [ "l0"; "l1"; "l2"; "l3" ] in
  match shape with
  | `Nv_arith ->
      let g = pick st.rng st.gs in
      [ mk (Assign (g, expr st 2)) ]
  | `War_inc ->
      let g = pick st.rng st.gs in
      [ mk (Assign (g, Binop (Add, Var g, Int (Rng.int_in st.rng 1 3)))) ]
  | `Local_set ->
      let l = pick st.rng locals in
      [ mk (Assign (l, expr st 2)) ]
  | `Sensor ->
      let tgt = pick st.rng (st.gs @ locals) in
      [ sensor_call st tgt ]
  | `Block ->
      let n = Rng.int_in st.rng 1 2 in
      let body = List.init n (fun _ -> sensor_call st (pick st.rng (st.gs @ locals))) in
      [ mk (Io_block { blk_sem = any_sem st; blk_body = body }) ]
  | `Fill_nv -> (
      match writable st st.arrs with [] -> [] | ws -> [ fill_loop st (pick st.rng ws) ])
  | `Fill_vol -> (
      match st.vols with
      | [] -> []
      | vs ->
          let v = pick st.rng vs in
          let s = fill_loop st v in
          st.defined <- SS.add v st.defined;
          [ s ])
  | `Reduce -> (
      match st.arrs @ SS.elements st.defined with
      | [] -> []
      | srcs -> reduce_loop st (pick st.rng srcs) (pick st.rng st.gs))
  | `Loop_io -> (
      match writable st st.arrs with
      | [] -> []
      | ws ->
          let a = pick st.rng ws and l = pick st.rng locals in
          let k = Rng.int_in st.rng 2 (words - 1) in
          taint st l;
          taint st a;
          st.written <- SS.add a st.written;
          [
            mk
              (For
                 ( "i0",
                   Int 0,
                   Int k,
                   [
                     call ~target:l (pick st.rng sensors) (any_sem st) [];
                     mk (Store (a, Var "i0", Var l));
                   ] ));
          ])
  | `Dma_nv -> (
      (* NV -> NV block copy, occasionally with the Exclude annotation
         when the source can be frozen (never written anywhere). *)
      match writable st st.arrs with
      | [] | [ _ ] -> []
      | ws -> (
          let dst = pick st.rng ws in
          match List.filter (fun a -> a <> dst) st.arrs with
          | [] -> []
          | srcs ->
              let src = pick st.rng srcs in
              let exclude =
                Rng.int st.rng 4 = 0 && (not (SS.mem src st.written)) && not (is_tainted st src)
              in
              if exclude then st.frozen <- SS.add src st.frozen;
              if is_tainted st src then taint st dst;
              st.written <- SS.add dst st.written;
              [ dma ~exclude (mref src (Int 0)) (mref dst (Int 0)) (Rng.int_in st.rng 4 words) ]))
  | `Dma_in -> (
      (* stage NV data into SRAM, then consume it *)
      match (st.arrs, st.vols) with
      | [], _ | _, [] -> []
      | arrs, vols ->
          let src = pick st.rng arrs and v = pick st.rng vols in
          if is_tainted st src then taint st v;
          st.defined <- SS.add v st.defined;
          let d = dma (mref src (Int 0)) (mref v (Int 0)) words in
          if Rng.bool st.rng then d :: reduce_loop st v (pick st.rng st.gs) else [ d ])
  | `Dma_out -> (
      match (SS.elements st.defined, writable st st.arrs) with
      | [], _ | _, [] -> []
      | vs, ws ->
          let v = pick st.rng vs and dst = pick st.rng ws in
          if is_tainted st v then taint st dst;
          st.written <- SS.add dst st.written;
          [ dma (mref v (Int 0)) (mref dst (Int 0)) words ])
  | `Dma_war -> (
      (* the paper's hazard: read the destination, overwrite it with a
         transfer, then write it from the stale read — W0403 territory,
         what regional privatization exists to make safe *)
      match writable st st.arrs with
      | [] -> []
      | ws -> (
          let dst = pick st.rng ws in
          let srcs =
            List.filter (fun a -> a <> dst) st.arrs @ SS.elements st.defined
          in
          match srcs with
          | [] -> []
          | _ ->
              let src = pick st.rng srcs and g = pick st.rng st.gs in
              if is_tainted st dst then taint st g;
              if is_tainted st src || is_tainted st g then taint st dst;
              st.written <- SS.add dst st.written;
              let base =
                [
                  mk (Assign (g, Index (dst, Int 0)));
                  dma (mref src (Int 0)) (mref dst (Int 0)) words;
                  mk (Store (dst, Int 0, Binop (Add, Var g, Int (Rng.int_in st.rng 1 4))));
                ]
              in
              if Rng.bool st.rng then
                base
                @ [ mk (Store (dst, Int 1, Binop (Add, Var g, Int (Rng.int_in st.rng 5 9)))) ]
              else base))
  | `Lea -> (
      (* LEA operands must live in SRAM: fill two volatile arrays, run
         the MAC, fold the result into an NV scalar *)
      match st.vols with
      | v1 :: v2 :: _ ->
          let fills =
            List.filter_map
              (fun v ->
                if SS.mem v st.defined then None
                else begin
                  st.defined <- SS.add v st.defined;
                  Some (fill_loop st v)
                end)
              [ v1; v2 ]
          in
          let l = "l4" and g = pick st.rng st.gs in
          if is_tainted st v1 || is_tainted st v2 then begin
            taint st l;
            taint st g
          end;
          let sem = if Rng.bool st.rng then Easeio.Semantics.Single else Easeio.Semantics.Always in
          fills
          @ [
              call ~target:l "Lea_mac" sem [ Aarr v1; Aarr v2; Aexpr (Int words) ];
              mk (Assign (g, Binop (Mod, Var l, Int 997)));
            ]
      | _ -> [])
  | `Send ->
      let n = Rng.int_in st.rng 1 2 in
      let args = List.init n (fun _ -> Aexpr (Var (pick st.rng st.gs))) in
      let sem = if Rng.bool st.rng then Easeio.Semantics.Single else Easeio.Semantics.Always in
      [ call "Send" sem args ]
  | `Delay -> [ call "Delay" Easeio.Semantics.Always [ Aexpr (Int (Rng.int_in st.rng 50 200)) ] ]
  | `If_ ->
      if untainted st st.gs = [] then []
      else
        let c = cond st in
        let simple () =
          match (Rng.int st.rng 3, writable st st.arrs) with
          | 0, a :: _ ->
              st.written <- SS.add a st.written;
              mk (Store (a, Int (Rng.int st.rng words), expr st 1))
          | _ -> mk (Assign (pick st.rng st.gs, expr st 1))
        in
        let then_ = List.init (Rng.int_in st.rng 1 2) (fun _ -> simple ()) in
        let else_ = if Rng.bool st.rng then [ simple () ] else [] in
        [ mk (If (c, then_, else_)) ]
  | `While_ ->
      let cnt = "l9" in
      let k = Rng.int_in st.rng 2 4 in
      let core =
        if Rng.bool st.rng then mk (Assign (pick st.rng st.gs, expr st 1))
        else begin
          taint st "l5";
          (* inside a dynamically bounded loop only Always is supported *)
          call ~target:"l5" (pick st.rng sensors) Easeio.Semantics.Always []
        end
      in
      [
        mk (Assign (cnt, Int 0));
        mk
          (While
             ( Binop (Lt, Var cnt, Int k),
               [ core; mk (Assign (cnt, Binop (Add, Var cnt, Int 1))) ] ));
      ]

(* {1 Tasks and programs} *)

let terminator st ~index ~n_tasks =
  let tname i = Printf.sprintf "t%d" i in
  if index = n_tasks - 1 then [ mk Stop ]
  else if Rng.int st.rng 100 < 85 || untainted st st.gs = [] then [ mk (Next (tname (index + 1))) ]
  else
    (* conditional forward branch: both arms transition, both targets
       are later tasks, and the condition is schedule-independent *)
    let j = Rng.int_in st.rng (index + 1) (n_tasks - 1) in
    [ mk (If (cond st, [ mk (Next (tname (index + 1))) ], [ mk (Next (tname j)) ])) ]

let gen_clean rng seed =
  let n_g = Rng.int_in rng 2 4 in
  let n_a = Rng.int_in rng 2 3 in
  let n_v = Rng.int_in rng 0 2 in
  let n_t = Rng.int_in rng 2 4 in
  let names prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i) in
  let st =
    {
      rng;
      gs = names "g" n_g;
      arrs = names "a" n_a;
      vols = names "v" n_v;
      tainted = SS.empty;
      written = SS.empty;
      frozen = SS.empty;
      defined = SS.empty;
    }
  in
  let decl name space w init =
    { v_name = name; v_space = space; v_words = w; v_init = init; v_span = Span.ghost }
  in
  let globals =
    List.map
      (fun g ->
        let init = if Rng.bool rng then Some [| Rng.int rng 10 |] else None in
        decl g Nv 1 init)
      st.gs
    @ List.map
        (fun a -> decl a Nv words (Some (Array.init words (fun _ -> Rng.int_in rng 1 99))))
        st.arrs
    @ List.map (fun v -> decl v Vol words None) st.vols
  in
  let task index =
    st.defined <- SS.empty;
    let n = Rng.int_in st.rng 1 5 in
    let body = List.concat (List.init n (fun _ -> emit_shape st (pick_shape st.rng))) in
    {
      t_name = Printf.sprintf "t%d" index;
      t_body = body @ terminator st ~index ~n_tasks:n_t;
      t_span = Span.ghost;
    }
  in
  {
    p_name = Printf.sprintf "fuzz_%d" (abs seed);
    p_globals = globals;
    p_tasks = List.init n_t task;
    p_entry = "t0";
  }

(* {1 Near-miss mutations}

   Take a clean program, apply one mutation, record the single error
   code the analyses must now produce. *)

let prepend_t0 p stmts =
  {
    p with
    p_tasks =
      List.map (fun t -> if t.t_name = p.p_entry then { t with t_body = stmts @ t.t_body } else t) p.p_tasks;
  }

let rec retarget_stmt ~from ~to_ st =
  let s =
    match st.s with
    | Next n when n = from -> Next to_
    | If (c, a, b) ->
        If (c, List.map (retarget_stmt ~from ~to_) a, List.map (retarget_stmt ~from ~to_) b)
    | While (c, b) -> While (c, List.map (retarget_stmt ~from ~to_) b)
    | For (v, lo, hi, b) -> For (v, lo, hi, List.map (retarget_stmt ~from ~to_) b)
    | Io_block b -> Io_block { b with blk_body = List.map (retarget_stmt ~from ~to_) b.blk_body }
    | s -> s
  in
  { st with s }

let mutate rng p =
  match Rng.int rng 8 with
  | 0 ->
      (* E0102: [next] to a task that does not exist *)
      let t0 = List.hd p.p_tasks in
      let t1 = Printf.sprintf "t%d" 1 in
      let t0' = { t0 with t_body = List.map (retarget_stmt ~from:t1 ~to_:"nowhere") t0.t_body } in
      ({ p with p_tasks = t0' :: List.tl p.p_tasks }, "E0102")
  | 1 -> ({ p with p_globals = p.p_globals @ [ List.hd p.p_globals ] }, "E0103")
  | 2 ->
      ( prepend_t0 p
          [
            mk
              (Call_io
                 {
                   target = Some "l0";
                   io = "Temp";
                   sem = Easeio.Semantics.Single;
                   args = [ Aexpr (Int 1) ];
                   guarded = false;
                 });
          ],
        "E0107" )
  | 3 ->
      ( prepend_t0 p
          [
            mk
              (While
                 ( Binop (Lt, Var "l8", Int 2),
                   [
                     mk
                       (Call_io
                          {
                            target = Some "l7";
                            io = "Temp";
                            sem = Easeio.Semantics.Single;
                            args = [];
                            guarded = false;
                          });
                     mk (Assign ("l8", Binop (Add, Var "l8", Int 1)));
                   ] ));
          ],
        "E0201" )
  | 4 ->
      ( prepend_t0 p
          [
            mk
              (For
                 ( "i1",
                   Int 0,
                   Int 1,
                   [
                     mk
                       (Io_block
                          {
                            blk_sem = Easeio.Semantics.Always;
                            blk_body =
                              [
                                mk
                                  (Call_io
                                     {
                                       target = Some "l7";
                                       io = "Humd";
                                       sem = Easeio.Semantics.Always;
                                       args = [];
                                       guarded = false;
                                     });
                              ];
                          });
                   ] ));
          ],
        "E0202" )
  | 5 ->
      let a = (List.find (fun d -> d.v_words > 1 && d.v_space = Nv) p.p_globals).v_name in
      ( prepend_t0 p
          [ mk (If (Int 1, [ dma (mref a (Int 0)) (mref a (Int 1)) 2 ], [])) ],
        "E0203" )
  | 6 ->
      ( {
          p with
          p_globals =
            p.p_globals
            @ [
                (* must use a reserved prefix: the E0301 lint checks
                   Lint.reserved_prefixes, not bare "__" *)
                { v_name = "__lock_fuzz"; v_space = Nv; v_words = 1; v_init = None; v_span = Span.ghost };
              ];
        },
        "E0301" )
  | _ -> (prepend_t0 p [ mk (Assign ("l0", Index ("zz", Int 0))) ], "E0106")

let generate ~seed =
  let rng = Rng.create seed in
  let p = gen_clean rng seed in
  if Rng.int rng 8 = 0 then
    let p', code = mutate rng p in
    { gen_seed = seed; intent = Expect code; prog = p' }
  else { gen_seed = seed; intent = Clean; prog = p }

(* {1 Validity — the shrinker's invariant} *)

let rec terminates body =
  match List.rev body with
  | [] -> false
  | last :: _ -> (
      match last.s with
      | Next _ | Stop -> true
      | If (_, a, b) -> terminates a && terminates b
      | _ -> false)

let forward_only p =
  let idx = Hashtbl.create 8 in
  List.iteri (fun i t -> Hashtbl.replace idx t.t_name i) p.p_tasks;
  let ok = ref true in
  List.iteri
    (fun i t ->
      iter_stmts
        (fun st ->
          match st.s with
          | Next n -> (
              match Hashtbl.find_opt idx n with
              | Some j when j > i -> ()
              | _ -> ok := false)
          | _ -> ())
        t.t_body)
    p.p_tasks;
  !ok

(* A [while] the shrinker has gutted (condition variable never
   reassigned in the body) would spin to the step limit; reject it
   structurally instead of paying 20M interpreter steps to find out. *)
let whiles_progress p =
  let ok = ref true in
  List.iter
    (fun t ->
      iter_stmts
        (fun st ->
          match st.s with
          | While (c, body) ->
              let cond_vars = expr_reads c [] in
              let assigns = ref SS.empty in
              iter_stmts
                (fun s ->
                  match s.s with
                  | Assign (x, _) -> assigns := SS.add x !assigns
                  | Call_io { target = Some x; _ } -> assigns := SS.add x !assigns
                  | _ -> ())
                body;
              if not (List.exists (fun v -> SS.mem v !assigns) cond_vars) then ok := false
          | _ -> ())
        t.t_body)
    p.p_tasks;
  !ok

(* Volatile arrays must be fully defined at the top level of a task
   before anything in that task reads them: SRAM does not survive a
   reboot, so a cross-task (or undefined) volatile read compares
   incomparable states across schedules. *)
let vol_def_before_use p =
  let vols =
    List.filter_map (fun d -> if d.v_space = Vol then Some d.v_name else None) p.p_globals
  in
  if vols = [] then true
  else begin
    let is_vol v = List.mem v vols in
    let ok = ref true in
    List.iter
      (fun t ->
        let defined = ref SS.empty in
        let reads_of st =
          let acc = ref [] in
          let add_expr e = acc := expr_reads e !acc in
          let rec go s =
            match s.s with
            | Assign (_, e) -> add_expr e
            | Store (_, i, e) ->
                add_expr i;
                add_expr e
            | If (c, a, b) ->
                add_expr c;
                List.iter go a;
                List.iter go b
            | While (c, b) ->
                add_expr c;
                List.iter go b
            | For (_, lo, hi, b) ->
                add_expr lo;
                add_expr hi;
                List.iter go b
            | Call_io c ->
                List.iter
                  (function Aexpr e -> add_expr e | Aarr a -> acc := a :: !acc)
                  c.args
            | Io_block b -> List.iter go b.blk_body
            | Dma d ->
                acc := d.dma_src.ref_arr :: !acc;
                add_expr d.dma_src.ref_off;
                add_expr d.dma_dst.ref_off;
                add_expr d.dma_words
            | Memcpy c ->
                acc := c.cp_src.ref_arr :: !acc;
                add_expr c.cp_src.ref_off;
                add_expr c.cp_dst.ref_off;
                add_expr c.cp_words
            | Seal_dmas | Next _ | Stop -> ()
          in
          go st;
          !acc
        in
        List.iter
          (fun st ->
            List.iter
              (fun v -> if is_vol v && not (SS.mem v !defined) then ok := false)
              (reads_of st);
            (* then credit definitions this statement provides *)
            match st.s with
            | For (i, Int 0, Int hi, body) when hi = words - 1 ->
                List.iter
                  (fun s ->
                    match s.s with
                    | Store (a, Var i', _) when i' = i && is_vol a -> defined := SS.add a !defined
                    | _ -> ())
                  body
            | Dma { dma_dst; dma_words = Int n; _ }
              when is_vol dma_dst.ref_arr && dma_dst.ref_off = Int 0 && n = words ->
                defined := SS.add dma_dst.ref_arr !defined
            | _ -> ())
          t.t_body)
      p.p_tasks;
    !ok
  end

let valid p =
  (not (Diagnostics.has_errors (Analysis.resolve p)))
  && (not (Diagnostics.has_errors (Analysis.supported p)))
  && List.for_all (fun t -> terminates t.t_body) p.p_tasks
  && forward_only p && whiles_progress p && vol_def_before_use p

let stmt_count p =
  let n = ref 0 in
  List.iter (fun t -> iter_stmts (fun _ -> incr n) t.t_body) p.p_tasks;
  !n
