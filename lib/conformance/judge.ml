open Lang
open Platform

type config = {
  budget : int;
  machine_seed : int;
  ablate_regions : bool;
  ablate_semantics : bool;
  check_vm : bool;
}

let default_config =
  {
    budget = 24;
    machine_seed = 7;
    ablate_regions = false;
    ablate_semantics = false;
    check_vm = true;
  }

type violation = { vkind : string; variant : string; schedule : string; detail : string }

let key v = v.vkind ^ "/" ^ v.variant

let describe v =
  let where =
    match (v.variant, v.schedule) with
    | "", "" -> ""
    | va, "" -> Printf.sprintf " [%s]" va
    | va, s -> Printf.sprintf " [%s %s]" va s
  in
  Printf.sprintf "%s%s: %s" v.vkind where v.detail

let violation_to_json v =
  Expkit.Json.Obj
    [
      ("kind", Expkit.Json.String v.vkind);
      ("variant", Expkit.Json.String v.variant);
      ("schedule", Expkit.Json.String v.schedule);
      ("detail", Expkit.Json.String v.detail);
    ]

type outcome = {
  diag_codes : string list;
  violations : violation list;
  runs : int;
  boundaries_total : int;
  boundaries_run : int;
  strided : bool;
  tainted_nv : string list;
  unsafe_baseline : (string * int) list;
}

let variants = [ Interp.Plain; Interp.Alpaca; Interp.Ink; Interp.Easeio ]

(* The runtime's legal (semantics, decision, reason) vocabulary at DMA
   sites — the only guarded sites the task-language interpreter
   narrates (calls compile to inline guard code). Anything else is a
   runtime bug. *)
let dma_reason_ok sem (decision : Trace.Event.decision) reason =
  match (sem, decision) with
  | Trace.Event.Always, (Trace.Event.Exec | Trace.Event.Replay) -> reason = "always"
  | Trace.Event.Always, Trace.Event.Skip -> false (* also caught by the Always oracle *)
  | Trace.Event.Single, Trace.Event.Skip -> reason = "done"
  | Trace.Event.Single, (Trace.Event.Exec | Trace.Event.Replay) ->
      List.mem reason [ "first"; "dep"; "force" ]
  | Trace.Event.Timely _, _ -> List.mem reason [ "first"; "dep"; "force"; "fresh"; "expired" ]

(* Streaming sink: collect DMA-site vocabulary violations. *)
let dma_reason_watch () =
  let bad = ref [] in
  let sink (e : Trace.Event.t) =
    match e.payload with
    | Trace.Event.Io { site; kind = "dma"; sem; decision; reason } ->
        if not (dma_reason_ok sem decision reason) then
          bad :=
            Printf.sprintf "%s: %s %s/%s" site (Trace.Event.sem_name sem)
              (Trace.Event.decision_name decision)
              reason
            :: !bad
    | _ -> ()
  in
  (sink, fun () -> List.rev !bad)

(* Boundary probes: every charge index when they fit the budget,
   otherwise a stride covering [1, charges] including the last
   boundary. *)
let probes ~charges ~budget =
  if charges <= 0 then []
  else if charges <= budget then List.init charges (fun i -> i + 1)
  else
    let stride = charges / budget in
    List.sort_uniq compare (List.init budget (fun i -> 1 + (i * stride)) @ [ charges ])

type golden = { g_nv : (string * int array) list; g_io : (string * int) list; g_charges : int }

let judge ?(stop_early = false) ?(config = default_config) (case : Gen.case) =
  let prog = case.Gen.prog in
  let violations = ref [] in
  let runs = ref 0 in
  let boundaries_total = ref 0 and boundaries_run = ref 0 and strided = ref false in
  let unsafe = Hashtbl.create 4 in
  let tainted_names = ref [] in
  let exception Done in
  let push v =
    violations := v :: !violations;
    if stop_early then raise Done
  in
  let vio ?(variant = "") ?(schedule = "") vkind detail = { vkind; variant; schedule; detail } in
  let _, actx = Pass.run_pipeline Pass.analysis_passes prog in
  let diags = Diagnostics.contents actx.Pass.bag in
  let codes = List.sort_uniq compare (List.map (fun d -> d.Diagnostics.code) diags) in
  let errs =
    List.sort_uniq compare
      (List.filter_map
         (fun d -> if Diagnostics.is_error d then Some d.Diagnostics.code else None)
         diags)
  in
  (try
     (match case.Gen.intent with
     | Gen.Expect code ->
         if errs <> [ code ] then
           push
             (vio "intent"
                (Printf.sprintf "expected exactly %s, analyses reported [%s]" code
                   (String.concat "; " errs)));
         raise Done
     | Gen.Clean ->
         if errs <> [] then begin
           push (vio "errors" ("analyses reported [" ^ String.concat "; " errs ^ "]"));
           raise Done
         end);
     (* check 2: compiler identities *)
     (match Parser.parse (Pretty.program_to_string prog) with
     | p' ->
         if Ast.strip p' <> Ast.strip prog then
           push (vio "roundtrip" "source pretty/parse round-trip is not the identity")
     | exception Parser.Error (_, msg) ->
         push (vio "roundtrip" ("pretty-printed source does not re-parse: " ^ msg)));
     let compiled, cctx = Pass.run_pipeline Pass.compile_passes prog in
     let cds = Diagnostics.contents cctx.Pass.bag in
     if Diagnostics.has_errors cds then begin
       let cerrs =
         List.sort_uniq compare
           (List.filter_map
              (fun d -> if Diagnostics.is_error d then Some d.Diagnostics.code else None)
              cds)
       in
       push (vio "errors" ("compile reported [" ^ String.concat "; " cerrs ^ "]"));
       raise Done
     end;
     (match Parser.parse (Pretty.program_to_string compiled) with
     | exception Parser.Error (_, msg) ->
         push (vio "roundtrip" ("compiled output does not re-parse: " ^ msg))
     | relowered -> (
         let recompiled, rctx = Pass.run_pipeline Pass.compile_passes relowered in
         if Diagnostics.has_errors (Diagnostics.contents rctx.Pass.bag) then
           push (vio "fixed-point" "re-compiling the compiled output reports errors")
         else if Ast.strip recompiled <> Ast.strip relowered then
           push (vio "fixed-point" "compile is not a fixed point on its own output")));
     (* check 3: differential execution *)
     let info = Taint.analyze prog in
     let tainted = Taint.tainted_nv prog info in
     tainted_names := tainted;
     let counts_stable = (not info.Taint.io_under_taint) && not info.Taint.divergent in
     let war_free = List.for_all (fun t -> Analysis.war_vars prog t = []) prog.Ast.p_tasks in
     let nv_names =
       List.filter_map
         (fun d ->
           if d.Ast.v_space = Ast.Nv && not (List.mem d.Ast.v_name tainted) then
             Some (d.Ast.v_name, d.Ast.v_words)
           else None)
         prog.Ast.p_globals
     in
     let enforce_nv = function
       | Interp.Easeio -> true
       | Interp.Alpaca | Interp.Ink -> not info.Taint.has_dma
       | Interp.Plain -> (not info.Taint.has_dma) && war_free
     in
     let first_diff a b =
       (* both are name-keyed value arrays over the same names *)
       List.fold_left2
         (fun acc (n, xs) (_, ys) ->
           match acc with
           | Some _ -> acc
           | None ->
               let d = ref None in
               Array.iteri (fun i x -> if !d = None && x <> ys.(i) then d := Some (n, i, x, ys.(i))) xs;
               !d)
         None a b
     in
     let run_tree ~variant ~failure ~sink =
       let m = Machine.create ~seed:config.machine_seed ~failure () in
       (match sink with Some s -> Machine.set_sink m s | None -> ());
       let t =
         Interp.build ~policy:variant ~ablate_regions:config.ablate_regions
           ~ablate_semantics:config.ablate_semantics m prog
       in
       let o = Interp.run t in
       (m, t, o)
     in
     (* check 4: bytecode-VM equivalence. One compiled arena per variant
        is recycled across the whole sweep with [Vm.reset] — exactly the
        production configuration — and every tree-walker run is shadowed
        by a VM run that must match it observably: crash message,
        outcome and metrics summary, charge count, event counters,
        committed state of every declared global, and the trace-visible
        I/O decision sequence. *)
     let vm_arena : (Interp.policy, Vm.t) Hashtbl.t = Hashtbl.create 4 in
     let vm_for variant =
       match Hashtbl.find_opt vm_arena variant with
       | Some vm -> vm
       | None ->
           let vm =
             Vm.compile ~policy:variant ~ablate_regions:config.ablate_regions
               ~ablate_semantics:config.ablate_semantics
               (Machine.create ~seed:config.machine_seed ~failure:Failure.No_failures ())
               prog
           in
           Hashtbl.add vm_arena variant vm;
           vm
     in
     (* VM-shadow prefix resume: the continuous shadow run of each
        variant is driven through the engine stepper and checkpointed at
        every attempt top (copy-on-write machine snapshot + radio + a
        cursor into its recorded event stream). Each [Nth_charge] shadow
        in the boundary sweep then restores the latest checkpoint before
        its boundary and runs only the suffix — the tree walker stays
        from-power-on (it IS the oracle) while the VM side, whose
        equivalence the stepper already pins down, skips the shared
        prefix. Replaying the buffered prefix events into the case's
        decision recorder keeps every comparison byte-exact. *)
     let vm_pacers = Hashtbl.create 4 in
     let drive_vm eng ~on_attempt =
       let rec go () =
         match Kernel.Engine.run_until_boundary ?on_attempt eng with
         | Kernel.Engine.Paused ->
             Kernel.Engine.resume eng;
             go ()
         | Kernel.Engine.Finished o -> o
       in
       go ()
     in
     let vm_continuous variant rec_v =
       let vm = vm_for variant in
       Vm.reset ~seed:config.machine_seed vm;
       let vm_m = Vm.machine vm in
       let buf = ref [] and len = ref 0 in
       Machine.set_sink vm_m (fun e ->
           rec_v e;
           buf := e :: !buf;
           incr len);
       let app, hooks, cur_slot = Vm.prepare vm in
       Vm.begin_metered vm;
       let eng = Kernel.Engine.start ~hooks ~cur_slot vm_m app in
       let cks = ref [] in
       let on_attempt s =
         let radio = Periph.Radio.snapshot (Vm.radio vm) in
         let cursor = !len in
         let ck = Kernel.Engine.checkpoint s in
         cks := (ck, cursor, radio) :: !cks
       in
       let o = drive_vm eng ~on_attempt:(Some on_attempt) in
       Vm.flush_counts vm;
       Hashtbl.replace vm_pacers variant
         (vm, eng, Array.of_list (List.rev !cks), Array.of_list (List.rev !buf));
       (vm, o)
     in
     let vm_resumed variant k rec_v =
       match Hashtbl.find_opt vm_pacers variant with
       | None -> None
       | Some (vm, eng, cks, events) ->
           (* latest checkpoint strictly before charge [k] *)
           let idx = ref (-1) in
           Array.iteri
             (fun i (ck, _, _) -> if Kernel.Engine.checkpoint_charges ck < k then idx := i)
             cks;
           if !idx < 0 then None
           else begin
             let ck, cursor, radio = cks.(!idx) in
             for i = 0 to cursor - 1 do
               rec_v events.(i)
             done;
             let vm_m = Vm.machine vm in
             Machine.set_sink vm_m rec_v;
             Kernel.Engine.restore eng ck;
             Periph.Radio.restore (Vm.radio vm) radio;
             Machine.set_failure vm_m (Failure.Nth_charge k);
             Some (vm, drive_vm eng ~on_attempt:None)
           end
     in
     let decision_recorder () =
       let log = ref [] in
       let sink (e : Trace.Event.t) =
         match e.payload with
         | Trace.Event.Io { site; kind; sem; decision; reason } ->
             log :=
               ( site,
                 kind,
                 Trace.Event.sem_name sem,
                 Trace.Event.decision_name decision,
                 reason )
               :: !log
         | _ -> ()
       in
       (sink, fun () -> List.rev !log)
     in
     let all_globals read =
       List.map
         (fun d -> (d.Ast.v_name, Array.init d.Ast.v_words (read d.Ast.v_name)))
         prog.Ast.p_globals
     in
     let run_one ~variant ~failure ~sink =
       incr runs;
       if not config.check_vm then run_tree ~variant ~failure ~sink
       else begin
         let vname = Interp.policy_name variant in
         let schedule =
           match failure with Failure.No_failures -> "" | f -> Failure.to_string f
         in
         let diverge detail = push (vio ~variant:vname ~schedule "vm-diverge" detail) in
         let rec_t, decisions_t = decision_recorder () in
         let tree_sink e =
           rec_t e;
           match sink with Some s -> s e | None -> ()
         in
         let tree =
           try Ok (run_tree ~variant ~failure ~sink:(Some tree_sink))
           with Ast.Error msg -> Error msg
         in
         incr runs;
         let rec_v, decisions_v = decision_recorder () in
         let vm_from_power_on () =
           let vm = vm_for variant in
           Vm.reset ~seed:config.machine_seed ~failure vm;
           Machine.set_sink (Vm.machine vm) rec_v;
           (vm, Vm.run vm)
         in
         let vmr =
           try
             Ok
               (match failure with
               | Failure.No_failures -> vm_continuous variant rec_v
               | Failure.Nth_charge k -> (
                   match vm_resumed variant k rec_v with
                   | Some r -> r
                   | None -> vm_from_power_on ())
               | _ -> vm_from_power_on ())
           with Ast.Error msg -> Error msg
         in
         (match (tree, vmr) with
         | Error a, Error b ->
             if a <> b then
               diverge (Printf.sprintf "tree crashed with %S, vm with %S" a b)
         | Ok _, Error b -> diverge (Printf.sprintf "vm crashed (%s), tree did not" b)
         | Error a, Ok _ -> diverge (Printf.sprintf "tree crashed (%s), vm did not" a)
         | Ok (m, t, o), Ok (vm, vo) ->
             let vm_m = Vm.machine vm in
             if Expkit.Run.of_outcome m o <> Expkit.Run.of_outcome vm_m vo then
               diverge "run summaries (outcome, attribution, I/O counts) differ";
             if Machine.charges m <> Machine.charges vm_m then
               diverge
                 (Printf.sprintf "charges: tree %d, vm %d" (Machine.charges m)
                    (Machine.charges vm_m));
             if Machine.events m <> Machine.events vm_m then diverge "event counters differ";
             (match
                first_diff (all_globals (Interp.read_global t)) (all_globals (Vm.read_global vm))
              with
             | Some (n, i, exp, got) ->
                 diverge (Printf.sprintf "%s[%d] = %d under tree, %d under vm" n i exp got)
             | None -> ());
             if decisions_t () <> decisions_v () then diverge "I/O decision traces differ");
         match tree with Ok r -> r | Error msg -> raise (Ast.Error msg)
       end
     in
     let capture_nv t = List.map (fun (n, w) -> (n, Array.init w (Interp.read_global t n))) nv_names in
     let goldens =
       List.map
         (fun variant ->
           let vname = Interp.policy_name variant in
           match run_one ~variant ~failure:Failure.No_failures ~sink:None with
           | exception Ast.Error msg ->
               push (vio ~variant:vname "crash" ("continuous run crashed: " ^ msg));
               (variant, None)
           | m, t, o ->
               if not o.Kernel.Engine.completed then begin
                 push (vio ~variant:vname "golden" "continuous-power run did not complete");
                 (variant, None)
               end
               else
                 ( variant,
                   Some
                     {
                       g_nv = capture_nv t;
                       g_io = List.sort compare (Kernel.Golden.io_executions m);
                       g_charges = Machine.charges m;
                     } ))
         variants
     in
     (* cross-variant: continuous runs must agree with Plain on every
        schedule-independent NV global (except where DMA legitimately
        bypasses a baseline manager), and on non-DMA I/O counts when
        counts are schedule-independent. [io:DMA] is excluded: EaseIO's
        region privatization performs extra transfers by design — that
        is the paper's overhead story, not a conformance bug. *)
     let stable_io io = List.filter (fun (k, _) -> k <> "io:DMA") io in
     (match List.assoc Interp.Plain goldens with
     | None -> ()
     | Some plain_g ->
         List.iter
           (fun (variant, g) ->
             match g with
             | None -> ()
             | Some g when variant <> Interp.Plain -> (
                 let vname = Interp.policy_name variant in
                 (match first_diff plain_g.g_nv g.g_nv with
                 | Some (n, i, exp, got) ->
                     if enforce_nv variant then
                       push
                         (vio ~variant:vname "cross-variant-nv"
                            (Printf.sprintf "%s[%d] = %d under plain, %d under %s" n i exp got
                               vname))
                     else
                       Hashtbl.replace unsafe vname
                         (1 + Option.value ~default:0 (Hashtbl.find_opt unsafe vname))
                 | None -> ());
                 let g_io = stable_io g.g_io and plain_io = stable_io plain_g.g_io in
                 if counts_stable && g_io <> plain_io then
                   match
                     List.find_opt (fun (k, n) -> List.assoc_opt k plain_io <> Some n) g_io
                   with
                   | Some (k, n) ->
                       push
                         (vio ~variant:vname "cross-variant-io"
                            (Printf.sprintf "%s executed %d times under %s, %d under plain" k n
                               vname
                               (Option.value ~default:0 (List.assoc_opt k plain_io))))
                   | None -> push (vio ~variant:vname "cross-variant-io" "I/O count sets differ"))
             | Some _ -> ())
           goldens);
     (* per-variant boundary sweep *)
     List.iter
       (fun (variant, g) ->
         match g with
         | None -> ()
         | Some g ->
             let vname = Interp.policy_name variant in
             let ps = probes ~charges:g.g_charges ~budget:config.budget in
             boundaries_total := !boundaries_total + g.g_charges;
             if List.length ps < g.g_charges then strided := true;
             List.iter
               (fun k ->
                 incr boundaries_run;
                 let failure = Failure.Nth_charge k in
                 let schedule = Failure.to_string failure in
                 let skip_sink, skipped = Faultkit.Oracle.always_skip_watch () in
                 let reason_sink, bad_reasons = dma_reason_watch () in
                 let sink e =
                   skip_sink e;
                   reason_sink e
                 in
                 match run_one ~variant ~failure ~sink:(Some sink) with
                 | exception Ast.Error msg ->
                     push (vio ~variant:vname ~schedule "crash" ("run crashed: " ^ msg))
                 | m, t, o ->
                     if o.Kernel.Engine.gave_up then
                       push
                         (vio ~variant:vname ~schedule "livelock"
                            ("no forward progress in task "
                            ^ Option.value ~default:"?" o.Kernel.Engine.stuck_task))
                     else begin
                       (match first_diff g.g_nv (capture_nv t) with
                       | Some (n, i, exp, got) ->
                           if enforce_nv variant then
                             push
                               (vio ~variant:vname ~schedule "nv-state"
                                  (Printf.sprintf "%s[%d] = %d on continuous power, %d under %s" n
                                     i exp got schedule))
                           else
                             Hashtbl.replace unsafe vname
                               (1 + Option.value ~default:0 (Hashtbl.find_opt unsafe vname))
                       | None -> ());
                       (if counts_stable then
                          let io = Kernel.Golden.io_executions m in
                          List.iter
                            (fun (kind, n) ->
                              let got = Option.value ~default:0 (List.assoc_opt kind io) in
                              if got < n then
                                push
                                  (vio ~variant:vname ~schedule "io-floor"
                                     (Printf.sprintf "%s executed %d times, golden run needs >= %d"
                                        kind got n)))
                            g.g_io);
                       (match skipped () with
                       | [] -> ()
                       | sites ->
                           push
                             (vio ~variant:vname ~schedule "always-skip"
                                ("Always I/O skipped at " ^ String.concat ", " sites)));
                       match bad_reasons () with
                       | [] -> ()
                       | bad ->
                           push
                             (vio ~variant:vname ~schedule "dma-reason"
                                ("illegal DMA decision: " ^ String.concat "; " bad))
                     end)
               ps)
       goldens
   with Done -> ());
  {
    diag_codes = codes;
    violations = List.rev !violations;
    runs = !runs;
    boundaries_total = !boundaries_total;
    boundaries_run = !boundaries_run;
    strided = !strided;
    tainted_nv = !tainted_names;
    unsafe_baseline =
      List.filter_map
        (fun v ->
          let n = Interp.policy_name v in
          Option.map (fun c -> (n, c)) (Hashtbl.find_opt unsafe n))
        variants;
  }
