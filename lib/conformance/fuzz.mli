(** The fuzzing campaign: generate, judge, shrink, report.

    Case [i] of a campaign derives its generator seed as
    [hash2 (hash2 seed salt) i], each case is a pure function of that
    seed and the config, and {!Expkit.Pool.map} returns results in
    index order — so the report (and its JSON) is byte-identical for
    every [--jobs] value and across runs. Violating [Clean] cases are
    minimized with {!Shrink} (preserving a violation {!Judge.key} of
    the original), and can be saved as commented, re-runnable [.eio]
    reproducers ([easeio fuzz --replay FILE]). *)

type options = {
  count : int;
  seed : int;
  jobs : int;
  budget : int;  (** [Nth_charge] probes per variant per case *)
  max_shrink : int;  (** judge probes the shrinker may spend per counterexample *)
  ablate_regions : bool;
  ablate_semantics : bool;
  check_vm : bool;  (** shadow every judge run on the bytecode VM *)
}

val default_options : options

val config_of : options -> Judge.config
(** The judge configuration a campaign with these options uses for
    every case (and that [--replay] must reuse to reproduce). *)

type counterexample = {
  case_index : int;
  gen_seed : int;
  violations : Judge.violation list;
  original_stmts : int;
  shrunk_stmts : int;
  shrink_accepted : int;
  shrink_checks : int;
  shrunk : Lang.Ast.program;
}

type report = {
  options : options;
  cases : int;
  clean : int;  (** Clean-intent cases with no violations *)
  expected_diag : int;  (** near-miss cases whose diagnostic matched *)
  violating : int;
  total_runs : int;
  boundaries_total : int;
      (** summed reboot-space sizes of every judged case (all variants) *)
  boundaries_run : int;  (** [Nth_charge] probes actually executed *)
  strided : bool;  (** some case's budget forced a stride *)
  unsafe_baseline : (string * int) list;
      (** aggregated expected-unsafe baseline divergences per variant *)
  violation_kinds : (string * int) list;  (** sorted histogram of {!Judge.key}s *)
  counterexamples : counterexample list;
  snap : Obs.Snapshot.t;
      (** campaign metrics ([fuzz/*] counters plus a [fuzz/case_runs]
          histogram), built by the sequential result fold — a pure
          function of [options], byte-identical for any [jobs] *)
}

val run : ?progress:Obs.Progress.t -> options -> report
(** [progress] is ticked once per finished case (the caller calls
    {!Obs.Progress.finish}). *)

val passed : report -> bool
val to_json : report -> Expkit.Json.t

val reproducer : options -> counterexample -> string
(** The committed-artifact form of a counterexample: header comments
    (seeds, violations, the replay command line) followed by the shrunk
    program source. *)

val save_reproducers : dir:string -> options -> report -> string list
(** Write one [fuzz_<genseed>.eio] per counterexample under [dir]
    (created if needed); returns the paths written. *)
