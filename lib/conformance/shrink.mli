(** Counterexample minimization by whole-statement / whole-task
    deletion.

    Greedy fixpoint: repeatedly try deleting one task (re-targeting
    [next] edges past it), one statement (top-level or nested, deepest
    candidates first within a task), or one unreferenced global, and
    keep any candidate that still satisfies [valid] {e and} still
    [fails] the judge the same way. Each [fails] probe counts against
    [max_checks], since it costs a full differential judgement. The
    candidate order is deterministic, so minimization is reproducible
    from the seed like everything else. *)

val minimize :
  ?max_checks:int ->
  ?on_accept:(Lang.Ast.program -> unit) ->
  valid:(Lang.Ast.program -> bool) ->
  fails:(Lang.Ast.program -> bool) ->
  Lang.Ast.program ->
  Lang.Ast.program * int * int
(** [minimize ~valid ~fails p] returns [(smallest, accepted, checks)]:
    the minimized program, how many deletions were accepted, and how
    many [fails] probes were spent (bounded by [max_checks], default
    300). [on_accept] fires with every intermediate accepted program —
    the shrinker-soundness property hooks in here. *)
