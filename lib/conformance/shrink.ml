open Lang
open Ast
module SS = Analysis.SS

(* Delete the [n]-th statement in pre-order (its nested body goes with
   it). The counter advances through children of a deleted node too, so
   indices agree with the enumeration that sized the program. *)
let remove_nth_stmt p n =
  let i = ref (-1) in
  let rec stmts body = List.concat_map stmt body
  and stmt st =
    incr i;
    let me = !i in
    let s' =
      match st.s with
      | If (c, a, b) -> If (c, stmts a, stmts b)
      | While (c, b) -> While (c, stmts b)
      | For (v, lo, hi, b) -> For (v, lo, hi, stmts b)
      | Io_block b -> Io_block { b with blk_body = stmts b.blk_body }
      | s -> s
    in
    if me = n then [] else [ { st with s = s' } ]
  in
  { p with p_tasks = List.map (fun t -> { t with t_body = stmts t.t_body }) p.p_tasks }

(* Delete task [i], re-routing [next] edges to its successor in program
   order (or [stop] when it was the last task) so the remaining chain
   still only moves forward. *)
let delete_task p i =
  let tasks = p.p_tasks in
  let n = List.length tasks in
  if n <= 1 || i < 0 || i >= n then None
  else
    let victim = List.nth tasks i in
    let succ = if i + 1 < n then Some (List.nth tasks (i + 1)).t_name else None in
    let rec fix st =
      let s =
        match st.s with
        | Next t when t = victim.t_name -> ( match succ with Some s -> Next s | None -> Stop)
        | If (c, a, b) -> If (c, List.map fix a, List.map fix b)
        | While (c, b) -> While (c, List.map fix b)
        | For (v, lo, hi, b) -> For (v, lo, hi, List.map fix b)
        | Io_block b -> Io_block { b with blk_body = List.map fix b.blk_body }
        | s -> s
      in
      { st with s }
    in
    let tasks' =
      List.filteri (fun j _ -> j <> i) tasks
      |> List.map (fun t -> { t with t_body = List.map fix t.t_body })
    in
    let entry =
      if p.p_entry = victim.t_name then (List.hd tasks').t_name else p.p_entry
    in
    Some { p with p_tasks = tasks'; p_entry = entry }

let used_names p =
  let acc = ref SS.empty in
  let add v = acc := SS.add v !acc in
  let add_expr e = List.iter add (expr_reads e []) in
  List.iter
    (fun t ->
      iter_stmts
        (fun st ->
          match st.s with
          | Assign (x, e) ->
              add x;
              add_expr e
          | Store (a, i, e) ->
              add a;
              add_expr i;
              add_expr e
          | If (c, _, _) | While (c, _) -> add_expr c
          | For (v, lo, hi, _) ->
              add v;
              add_expr lo;
              add_expr hi
          | Call_io c ->
              Option.iter add c.target;
              List.iter (function Aexpr e -> add_expr e | Aarr a -> add a) c.args
          | Dma d ->
              add d.dma_src.ref_arr;
              add d.dma_dst.ref_arr;
              add_expr d.dma_src.ref_off;
              add_expr d.dma_dst.ref_off;
              add_expr d.dma_words;
              List.iter add d.dma_deps
          | Memcpy c ->
              add c.cp_src.ref_arr;
              add c.cp_dst.ref_arr;
              add_expr c.cp_src.ref_off;
              add_expr c.cp_dst.ref_off;
              add_expr c.cp_words
          | Io_block _ | Seal_dmas | Next _ | Stop -> ())
        t.t_body)
    p.p_tasks;
  !acc

let minimize ?(max_checks = 300) ?(on_accept = fun _ -> ()) ~valid ~fails p0 =
  let checks = ref 0 and accepted = ref 0 in
  let cur = ref p0 in
  let attempt cand =
    (* [valid] is a cheap structural filter; only survivors spend a
       judge probe from the budget *)
    if !checks < max_checks && valid cand then begin
      incr checks;
      if fails cand then begin
        cur := cand;
        incr accepted;
        on_accept cand;
        true
      end
      else false
    end
    else false
  in
  let improved = ref true in
  while !improved && !checks < max_checks do
    improved := false;
    (* whole tasks, last first *)
    let i = ref (List.length (!cur).p_tasks - 1) in
    while !i >= 0 && !checks < max_checks do
      (match delete_task !cur !i with
      | Some cand -> if attempt cand then improved := true
      | None -> ());
      decr i
    done;
    (* single statements, last first (indices below a deletion are
       unaffected, so one descending scan stays consistent) *)
    let n = ref (Gen.stmt_count !cur - 1) in
    while !n >= 0 && !checks < max_checks do
      if attempt (remove_nth_stmt !cur !n) then improved := true;
      decr n
    done;
    (* globals nothing references anymore *)
    let used = used_names !cur in
    List.iter
      (fun d ->
        if (not (SS.mem d.v_name used)) && !checks < max_checks then
          let cand =
            { !cur with p_globals = List.filter (fun d' -> d'.v_name <> d.v_name) (!cur).p_globals }
          in
          if attempt cand then improved := true)
      (!cur).p_globals
  done;
  (!cur, !accepted, !checks)
