open Lang
open Ast
module SS = Analysis.SS

type info = { tainted : SS.t; divergent : bool; io_under_taint : bool; has_dma : bool }

(* Peripheral data flow. Results of sensors (and any unknown function)
   are time-dependent; [Delay]/[Send] return 0; [Lea_mac] computes a
   pure function of its operand arrays. Array arguments are read-only
   for [Lea_mac]/[Send]; anything else ([Capture], [Lea_fir], unknown
   app-registered I/O) may write its array operands. *)
let result_pure io = match io with "Delay" | "Send" | "Lea_mac" -> true | _ -> false
let args_read_only io = match io with "Lea_mac" | "Send" | "Delay" -> true | _ -> false

let analyze (p : program) =
  let tainted = ref SS.empty in
  let divergent = ref false in
  let io_under_taint = ref false in
  let has_dma = ref false in
  let changed = ref true in
  let is_t v = SS.mem v !tainted in
  let expr_t e = List.exists is_t (expr_reads e []) in
  let add v =
    if not (SS.mem v !tainted) then begin
      tainted := SS.add v !tainted;
      changed := true
    end
  in
  let rec stmts ctl body = List.iter (stmt ctl) body
  and stmt ctl st =
    match st.s with
    | Assign (x, e) -> if ctl || expr_t e then add x
    | Store (a, i, e) -> if ctl || expr_t i || expr_t e then add a
    | If (c, a, b) ->
        let ctl = ctl || expr_t c in
        stmts ctl a;
        stmts ctl b
    | While (c, b) -> stmts (ctl || expr_t c) b
    | For (v, lo, hi, b) ->
        let bounds_t = expr_t lo || expr_t hi in
        if ctl || bounds_t then add v;
        stmts (ctl || bounds_t) b
    | Call_io c ->
        if ctl then io_under_taint := true;
        let arg_t =
          List.exists (function Aexpr e -> expr_t e | Aarr a -> is_t a) c.args
        in
        if not (args_read_only c.io) then
          List.iter (function Aarr a -> add a | Aexpr _ -> ()) c.args;
        (match c.target with
        | Some t -> if ctl || arg_t || not (result_pure c.io) then add t
        | None -> ())
    | Io_block b ->
        if ctl then io_under_taint := true;
        stmts ctl b.blk_body
    | Dma d ->
        has_dma := true;
        if ctl then io_under_taint := true;
        if
          ctl || is_t d.dma_src.ref_arr || expr_t d.dma_src.ref_off || expr_t d.dma_dst.ref_off
          || expr_t d.dma_words
        then add d.dma_dst.ref_arr
    | Memcpy c ->
        if
          ctl || is_t c.cp_src.ref_arr || expr_t c.cp_src.ref_off || expr_t c.cp_dst.ref_off
          || expr_t c.cp_words
        then add c.cp_dst.ref_arr
    | Seal_dmas -> ()
    | Next _ | Stop -> if ctl then divergent := true
  in
  while !changed do
    changed := false;
    divergent := false;
    io_under_taint := false;
    List.iter (fun t -> stmts false t.t_body) p.p_tasks
  done;
  (* one final pass with the fixed taint set settles the flags *)
  List.iter (fun t -> stmts false t.t_body) p.p_tasks;
  { tainted = !tainted; divergent = !divergent; io_under_taint = !io_under_taint; has_dma = !has_dma }

let tainted_nv (p : program) (i : info) =
  List.filter_map
    (fun d ->
      if d.v_space = Nv && (i.divergent || SS.mem d.v_name i.tainted) then Some d.v_name else None)
    p.p_globals
