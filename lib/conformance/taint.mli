(** Input-sensitivity analysis: which NV state may lawfully differ
    across runtime variants and failure schedules.

    Sensor values are pure functions of (world seed, simulated time),
    and failures shift time — so any variable that is data- or
    control-dependent on an I/O result is {e legitimately}
    schedule-dependent, and a differential NV-state oracle that
    compared it would drown in false positives. This module computes a
    conservative may-taint fixpoint over the whole program (sources:
    peripheral results and peripheral-written arrays; propagation:
    assignments, stores, DMA/memcpy, LEA data flow, and control
    dependence through [if]/[while]/[for]); the judge then compares
    only the untainted NV globals, the automated analog of the
    hand-written [nv_volatile] lists the built-in apps carry.

    Two derived flags gate the remaining oracles: [divergent] (a
    tainted condition guards a task transition, so even control flow is
    schedule-dependent — every NV global must be excused) and
    [io_under_taint] (an I/O operation sits under tainted control or a
    tainted loop bound, so per-kind execution counts may lawfully
    differ and the count-floor invariant must be disarmed). *)

module SS = Lang.Analysis.SS

type info = {
  tainted : SS.t;  (** variables (globals, arrays, locals) carrying input-derived data *)
  divergent : bool;  (** a [next]/[stop] executes under tainted control *)
  io_under_taint : bool;  (** some I/O executes under tainted control *)
  has_dma : bool;  (** the program issues [_DMA_copy] (baselines cannot mediate it) *)
}

val analyze : Lang.Ast.program -> info
(** Whole-program fixpoint; never un-taints, so the result is sound for
    any interleaving of task re-executions. *)

val tainted_nv : Lang.Ast.program -> info -> string list
(** The NV globals to exclude from final-state equality: every NV
    global when [divergent], otherwise the tainted ones — in
    declaration order. *)
