(** Seeded random generator of well-formed task-language programs.

    The generator draws every choice from a {!Platform.Rng.t}, so a
    case is a pure function of its seed: equal seeds yield structurally
    identical programs on every host and job count. Programs are built
    from a fixed name universe (NV scalars [g0..], 8-word NV arrays
    [a0..], 8-word volatile arrays [v0..], locals [l0..], tasks [t0..])
    and a weighted menu of statement shapes deliberately biased toward
    what stresses the [guards]/[privatize] stages: Single/Timely/Always
    sensor calls and [io_block]s, loop-indexed I/O, NV<->volatile DMA
    staging, LEA calls over SRAM operands, radio sends, and — with the
    highest DMA-family weight — the paper's WAR-across-DMA hazard
    ([g = a[0]; dma_copy(src, a, 8); a[0] = g + 1]).

    Three structural disciplines keep every clean case a valid
    differential-testing subject (see {!valid}):

    - task transitions only go forward ([next] targets a later task),
      so programs terminate under every runtime and schedule;
    - volatile arrays are fully (re)defined at the top level of a task
      before that task reads them — SRAM is cleared on reboot, so any
      cross-task volatile liveness would diverge legitimately;
    - [while] bodies assign a variable of their own condition, so
      whole-statement deletion by the shrinker cannot create an
      unbounded loop that survives {!valid}.

    About one case in eight is an intentional {e near-miss}: a clean
    program plus one mutation that must trigger exactly one known
    diagnostic code ([Expect code] intent), exercising the checker
    rather than the runtimes. *)

type intent =
  | Clean  (** the analyses must report no errors *)
  | Expect of string  (** the analyses must report exactly this error code *)

type case = { gen_seed : int; intent : intent; prog : Lang.Ast.program }

val generate : seed:int -> case
(** Deterministic: equal seeds give equal cases. *)

val valid : Lang.Ast.program -> bool
(** The invariant the shrinker re-checks after every deletion:
    [resolve] and [supported] report no errors, every task body ends in
    a terminator ([next]/[stop], or an [if] whose both branches do),
    transitions only go forward, volatile arrays are defined before
    use within each task, and every [while] can make progress. Clean
    generated programs always satisfy it. *)

val stmt_count : Lang.Ast.program -> int
(** Total statements, including nested bodies — the size the shrinker
    minimizes and the acceptance criterion counts. *)
