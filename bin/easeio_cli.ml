(* easeio: command-line front door to the library.

   - [easeio check prog.eio --json] — run the analysis and lint passes
     and report every diagnostic (nonzero exit on errors);
   - [easeio compile prog.eio --dump-after PASS --out f.eio] — run the
     full pass pipeline and write the transformed source (Fig. 5 /
     Fig. 6 style); [transform] is the historical alias;
   - [easeio run prog.eio --runtime easeio --failures --seed 3] —
     execute a task-language program on the simulated MCU;
   - [easeio apps] — list the built-in evaluation applications;
   - [easeio app weather --runtime alpaca --runs 100] — run a built-in
     application and print its measurements;
   - [easeio trace weather --runtime easeio --seed 1 --out t.json] —
     record one traced run and export it (Chrome trace / text /
     profile). *)

open Cmdliner
open Platform

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let runtime_conv =
  let parse = function
    | "plain" -> Ok Lang.Interp.Plain
    | "alpaca" -> Ok Lang.Interp.Alpaca
    | "ink" -> Ok Lang.Interp.Ink
    | "easeio" -> Ok Lang.Interp.Easeio
    | s -> Error (`Msg (Printf.sprintf "unknown runtime %s (plain|alpaca|ink|easeio)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Lang.Interp.policy_name p))

let interp_conv =
  let parse = function
    | "tree" -> Ok Apps.Common.Tree_walk
    | "vm" -> Ok Apps.Common.Bytecode
    | s -> Error (`Msg (Printf.sprintf "unknown interpreter %s (tree|vm)" s))
  in
  Arg.conv (parse, fun ppf i -> Format.pp_print_string ppf (Apps.Common.interp_name i))

let interp_arg =
  Arg.(
    value
    & opt interp_conv Apps.Common.Bytecode
    & info [ "interp" ] ~docv:"EXEC"
        ~doc:
          "Executor: $(b,vm) (default) lowers the program to bytecode and runs it on a reusable            machine arena; $(b,tree) is the tree-walking reference interpreter (the conformance            oracle). Results are observationally identical.")

let variant_conv =
  let parse = function
    | "alpaca" -> Ok Apps.Common.Alpaca
    | "ink" -> Ok Apps.Common.Ink
    | "easeio" -> Ok Apps.Common.Easeio
    | "easeio-op" -> Ok Apps.Common.Easeio_op
    | s -> Error (`Msg (Printf.sprintf "unknown runtime %s (alpaca|ink|easeio|easeio-op)" s))
  in
  Arg.conv (parse, fun ppf v -> Format.pp_print_string ppf (Apps.Common.variant_name v))

let progress_arg =
  let progress_conv =
    let parse s = Result.map_error (fun e -> `Msg e) (Obs.Progress.mode_of_string s) in
    Arg.conv
      ( parse,
        fun ppf m ->
          Format.pp_print_string ppf
            (match m with
            | Obs.Progress.Off -> "off"
            | Obs.Progress.Stderr -> "stderr"
            | Obs.Progress.Jsonl -> "json"
            | Obs.Progress.Sink _ -> "sink") )
  in
  Arg.(
    value
    & opt progress_conv Obs.Progress.Off
    & info [ "progress" ] ~docv:"MODE"
        ~doc:
          "Progress heartbeat on stderr: $(b,off) (default), $(b,stderr) (one rewritten line: \
           cells done/total, runs/s, ETA), or $(b,json) (one compact JSON object per \
           heartbeat). Pure observation — results are identical for every mode.")

(* Build the reporter for a campaign command and run [f] with it,
   always finishing the heartbeat line. *)
let with_progress mode ~label f =
  let progress =
    match mode with Obs.Progress.Off -> None | m -> Some (Obs.Progress.create m ~label)
  in
  let r = f progress in
  Option.iter Obs.Progress.finish progress;
  r

let failure_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Failure.of_string s) in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Failure.to_string s))

let failure_opt_arg =
  Arg.(
    value
    & opt (some failure_conv) None
    & info [ "failure" ] ~docv:"SPEC"
        ~doc:
          "Power-failure model: $(b,none), $(b,paper), $(b,energy), \
           $(b,timer:ON_MIN,ON_MAX,OFF_MIN,OFF_MAX) (µs), $(b,at:T1,T2,...) (die at exact \
           simulated µs instants), or $(b,nth:N) (die on the N-th charge call).")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.eio" ~doc:"Task-language source file.")

(* Same write-then-rename discipline as [Expkit.Json.to_file], for the
   plain-text exports. *)
let write_file_atomic path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match output_string oc s with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

(* {1 check / compile / transform} *)

(* Parse without validation: structural problems come back as
   diagnostics from the pipeline, syntax errors as E0001. *)
let parse_or_e0001 src =
  match Lang.Parser.parse src with
  | p -> Ok p
  | exception Lang.Parser.Error (span, msg) ->
      Error [ Lang.Diagnostics.error ~code:"E0001" ~span "%s" msg ]

let print_diags ~json ~file ~src ds =
  if json then
    print_endline (Expkit.Json.to_string (Lang.Diagnostics.report_to_json ~file ds))
  else if ds <> [] then print_endline (Lang.Diagnostics.render_all ~src ds)

let check_cmd =
  let run file json expect recharge_us =
    let src = read_file file in
    let ds =
      match parse_or_e0001 src with
      | Error ds -> ds
      | Ok p ->
          let opts = { Lang.Pass.default_options with recharge_us } in
          let _, ctx = Lang.Pass.run_pipeline ~opts Lang.Pass.analysis_passes p in
          Lang.Diagnostics.contents ctx.Lang.Pass.bag
    in
    print_diags ~json ~file ~src ds;
    match expect with
    | Some code ->
        (* fixture mode: succeed iff the program triggers exactly the
           expected code (at least once, and nothing else) *)
        let codes =
          List.sort_uniq compare (List.map (fun d -> d.Lang.Diagnostics.code) ds)
        in
        if codes <> [ code ] then begin
          Printf.eprintf "easeio check: expected exactly %s, got [%s]\n" code
            (String.concat "; " codes);
          exit 1
        end
    | None -> if Lang.Diagnostics.has_errors ds then exit 1
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the diagnostics report as JSON.")
  in
  let expect =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect" ] ~docv:"CODE"
          ~doc:
            "Succeed only if the program triggers exactly the diagnostic $(docv) (and no \
             other) — used by the negative lint fixtures.")
  in
  let recharge_us =
    Arg.(
      value
      & opt (some int) None
      & info [ "recharge-us" ] ~docv:"US"
          ~doc:
            "Worst-case capacitor recharge time for the W0402 staleness lint (default: the \
             MF-1/Powercast platform value).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the analysis and lint passes over a program and report every diagnostic with \
          source locations. Exits nonzero when there are errors (warnings alone succeed).")
    Term.(const run $ file_arg $ json $ expect $ recharge_us)

let compile ~dump_after ~out file =
  let src = read_file file in
  (match dump_after with
  | Some pass when Lang.Pass.find Lang.Pass.compile_passes pass = None ->
      Printf.eprintf "easeio compile: unknown pass %S (one of: %s)\n" pass
        (String.concat ", " (Lang.Pass.names Lang.Pass.compile_passes));
      exit 1
  | _ -> ());
  match parse_or_e0001 src with
  | Error ds ->
      prerr_endline (Lang.Diagnostics.render_all ~src ds);
      exit 1
  | Ok p ->
      let observe name prog =
        if dump_after = Some name then
          print_endline (Lang.Pretty.program_to_string prog)
      in
      let prog, ctx = Lang.Pass.run_pipeline ~observe Lang.Pass.compile_passes p in
      let ds = Lang.Diagnostics.contents ctx.Lang.Pass.bag in
      if Lang.Diagnostics.has_errors ds then begin
        prerr_endline (Lang.Diagnostics.render_all ~src ds);
        exit 1
      end;
      (* warnings are advisory: show them on stderr, keep compiling *)
      if ds <> [] then prerr_endline (Lang.Diagnostics.render_all ~src ds);
      let text = Lang.Pretty.program_to_string prog in
      (match out with
      | Some path -> write_file_atomic path (text ^ "\n")
      | None -> if dump_after = None then print_endline text);
      if dump_after = None then
        Printf.printf "// privatization-buffer demand: %d words\n"
          ctx.Lang.Pass.art.Lang.Pass.demand_words

let dump_after_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-after" ] ~docv:"PASS"
        ~doc:
          "Print the program as it stands after the named pass (one of: resolve, supported, \
           lint, war, taint, regions, guards, privatize). The dump is valid task-language \
           source.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"PATH"
        ~doc:"Write the compiled program to $(docv) (atomically) instead of stdout.")

let compile_cmd =
  let run file dump_after out = compile ~dump_after ~out file in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Run the full EaseIO pass pipeline (analyses, lints, guards, regional privatization) \
          and print or write the transformed source. Compiled output re-parses, and \
          re-compiling it is the identity.")
    Term.(const run $ file_arg $ dump_after_arg $ out_arg)

let transform_cmd =
  let run file dump_after out = compile ~dump_after ~out file in
  Cmd.v
    (Cmd.info "transform" ~doc:"Alias of $(b,compile) (historical name)")
    Term.(const run $ file_arg $ dump_after_arg $ out_arg)

(* {1 run} *)

let run_cmd =
  let run file policy interp failures failure_spec seed json =
    let failure =
      match failure_spec with
      | Some f -> f
      | None -> if failures then Failure.paper_timer else Failure.No_failures
    in
    (* the VM JSON document is built by [Serve.Oneshot.run_doc] — the
       same function the campaign service memoizes and streams, so the
       CLI and server bytes can never drift apart *)
    if json && interp = Apps.Common.Bytecode then
      print_string
        (Expkit.Json.to_string (Serve.Oneshot.run_doc ~policy ~failure ~seed (read_file file)))
    else begin
    let m = Machine.create ~seed ~failure () in
    let sheet = Obs.Sheet.create () in
    Machine.set_meter m sheet;
    let prog = Lang.Parser.program (read_file file) in
    let o =
      match interp with
      | Apps.Common.Tree_walk ->
          Lang.Interp.run
            (Lang.Interp.build ~policy ~extra_io:[ Apps.Common.lea_fir_seg ] m prog)
      | Apps.Common.Bytecode ->
          Vm.run (Vm.compile ~policy ~extra_io:[ Apps.Common.lea_fir_seg ] m prog)
    in
    (* one sorted-by-name pass over the I/O counters feeds both the
       text and the JSON output *)
    let io = Kernel.Golden.io_executions m in
    if json then
      print_string
        (Expkit.Json.to_string
           (Expkit.Json.Obj
              [
                ("runtime", Expkit.Json.String (Lang.Interp.policy_name policy));
                ("failure", Expkit.Json.String (Failure.to_string failure));
                ("seed", Expkit.Json.Int seed);
                ("completed", Expkit.Json.Bool o.Kernel.Engine.completed);
                ("gave_up", Expkit.Json.Bool o.Kernel.Engine.gave_up);
                ( "stuck_task",
                  match o.Kernel.Engine.stuck_task with
                  | Some t -> Expkit.Json.String t
                  | None -> Expkit.Json.Null );
                ("power_failures", Expkit.Json.Int o.Kernel.Engine.power_failures);
                ("total_time_us", Expkit.Json.Int o.Kernel.Engine.total_time_us);
                ("energy_nj", Expkit.Json.Float o.Kernel.Engine.energy_nj);
                ("metrics", Kernel.Metrics.to_json o.Kernel.Engine.metrics);
                ( "obs",
                  Obs.Snapshot.to_json
                    (Obs.Snapshot.of_sheet ~events:(Machine.events m) sheet) );
                ( "io_executions",
                  Expkit.Json.Obj (List.map (fun (k, n) -> (k, Expkit.Json.Int n)) io) );
              ]))
    else begin
      Printf.printf "runtime:        %s\n" (Lang.Interp.policy_name policy);
      Printf.printf "failure:        %s\n" (Failure.to_string failure);
      Printf.printf "completed:      %b\n" o.Kernel.Engine.completed;
      (match o.Kernel.Engine.stuck_task with
      | Some t when o.Kernel.Engine.gave_up -> Printf.printf "gave up in:     %s\n" t
      | _ -> ());
      Printf.printf "power failures: %d\n" o.Kernel.Engine.power_failures;
      Printf.printf "total time:     %.2f ms\n"
        (float_of_int o.Kernel.Engine.total_time_us /. 1000.);
      Printf.printf "useful app:     %.2f ms\n"
        (float_of_int o.Kernel.Engine.metrics.Kernel.Metrics.useful_app_us /. 1000.);
      Printf.printf "overhead:       %.2f ms\n"
        (float_of_int o.Kernel.Engine.metrics.Kernel.Metrics.useful_ovh_us /. 1000.);
      Printf.printf "wasted:         %.2f ms\n"
        (float_of_int o.Kernel.Engine.metrics.Kernel.Metrics.wasted_us /. 1000.);
      Printf.printf "energy:         %.1f uJ\n" (o.Kernel.Engine.energy_nj /. 1000.);
      List.iter (fun (k, n) -> Printf.printf "%-15s %d\n" (k ^ ":") n) io
    end
    end
  in
  let policy =
    Arg.(value & opt runtime_conv Lang.Interp.Easeio & info [ "runtime"; "r" ] ~doc:"Runtime policy.")
  in
  let failures =
    Arg.(
      value & flag
      & info [ "failures"; "f" ]
          ~doc:"Emulate the paper's power failures (shorthand for $(b,--failure paper).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the measurements as JSON instead of text.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a task-language program on the simulated MCU")
    Term.(const run $ file_arg $ policy $ interp_arg $ failures $ failure_opt_arg $ seed $ json)

(* {1 apps / app} *)

let find_app name =
  match Apps.Catalog.find name with
  | spec -> spec
  | exception Not_found ->
      Printf.eprintf "unknown application %S (see `easeio apps`)\n" name;
      exit 1
  | exception Apps.Catalog.Ambiguous names ->
      Printf.eprintf "ambiguous application %S: matches %s\n" name (String.concat ", " names);
      exit 1

let apps_cmd =
  let run () =
    Printf.printf "%-14s %6s %8s\n" "name" "tasks" "io fns";
    List.iter
      (fun s ->
        Printf.printf "%-14s %6d %8d\n" s.Apps.Common.app_name s.Apps.Common.tasks
          s.Apps.Common.io_functions)
      Apps.Catalog.all
  in
  Cmd.v (Cmd.info "apps" ~doc:"List the built-in evaluation applications") Term.(const run $ const ())

let app_cmd =
  let run name variant interp runs jobs =
    Apps.Common.default_interp := interp;
    match find_app name with
    | spec ->
        if jobs < 1 then (
          Printf.eprintf "easeio: --jobs must be >= 1\n";
          exit 1);
        let jobs = min jobs Expkit.Pool.max_jobs in
        let agg =
          Expkit.Run.average ~jobs ~runs
            ~golden:(fun () -> spec.Apps.Common.run variant ~failure:Failure.No_failures ~seed:0)
            (fun ~seed -> spec.Apps.Common.run variant ~failure:Failure.paper_timer ~seed)
        in
        Printf.printf "%s under %s, %d runs:\n" name (Apps.Common.variant_name variant) runs;
        Printf.printf "  total:        %.2f ms\n" agg.Expkit.Run.avg_total_ms;
        Printf.printf "  app work:     %.2f ms\n" agg.Expkit.Run.avg_app_ms;
        Printf.printf "  overhead:     %.2f ms\n" agg.Expkit.Run.avg_ovh_ms;
        Printf.printf "  wasted:       %.2f ms\n" agg.Expkit.Run.avg_wasted_ms;
        Printf.printf "  energy:       %.1f uJ\n" agg.Expkit.Run.avg_energy_uj;
        Printf.printf "  failures:     %.2f per run\n" agg.Expkit.Run.avg_pf;
        Printf.printf "  io (redund.): %.1f (%.1f) per run\n" agg.Expkit.Run.avg_io
          agg.Expkit.Run.avg_redundant_io;
        Printf.printf "  incorrect:    %d/%d\n" agg.Expkit.Run.incorrect_runs agg.Expkit.Run.runs
  in
  let app_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Application name.")
  in
  let variant =
    Arg.(value & opt variant_conv Apps.Common.Easeio & info [ "runtime"; "r" ] ~doc:"Runtime.")
  in
  let runs = Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Repetitions.") in
  let jobs =
    Arg.(
      value
      & opt int (Expkit.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for the seed sweep (default: one per core; 1 = sequential). \
             Aggregates are identical for every value.")
  in
  Cmd.v
    (Cmd.info "app" ~doc:"Run a built-in evaluation application and print measurements")
    Term.(const run $ app_name $ variant $ interp_arg $ runs $ jobs)

(* {1 trace} *)

let trace_cmd =
  let run name variant interp failure_spec seed out format =
    Apps.Common.default_interp := interp;
    match find_app name with
    | spec ->
        let failure = Option.value ~default:Failure.paper_timer failure_spec in
        let recorder = Trace.Recorder.create () in
        let one =
          spec.Apps.Common.run ~sink:(Trace.Recorder.sink recorder) variant ~failure ~seed
        in
        let events = Trace.Recorder.events recorder in
        let profile = Trace.Profile.of_events events in
        (* the trace must agree, event by event, with the simulator's
           own accounting — refuse to emit one that doesn't *)
        (match
           Trace.Profile.reconcile profile ~app_us:one.Expkit.Run.app_us
             ~ovh_us:one.Expkit.Run.ovh_us ~wasted_us:one.Expkit.Run.wasted_us
             ~commits:one.Expkit.Run.commits ~attempts:one.Expkit.Run.attempts
             ~io:one.Expkit.Run.io
         with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "easeio trace: trace disagrees with metrics: %s\n" msg;
            exit 1);
        (match format with
        | `Chrome -> Expkit.Json.to_file out (Trace.Export.chrome events)
        | `Text -> write_file_atomic out (Trace.Export.text events)
        | `Profile ->
            let golden = spec.Apps.Common.run variant ~failure:Failure.No_failures ~seed:0 in
            let redundant = Trace.Profile.redundant profile ~golden:golden.Expkit.Run.io in
            let body =
              match Trace.Profile.to_json profile with
              | Expkit.Json.Obj fields ->
                  Expkit.Json.Obj (fields @ [ ("redundant_io", Expkit.Json.Int redundant) ])
              | j -> j
            in
            Expkit.Json.to_file out body);
        Printf.printf "%s under %s, seed %d: %d events -> %s\n" name
          (Apps.Common.variant_name variant) seed (List.length events) out
  in
  let app_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Application name.")
  in
  let variant =
    Arg.(value & opt variant_conv Apps.Common.Easeio & info [ "runtime"; "r" ] ~doc:"Runtime.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH" ~doc:"Output file (written atomically).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("text", `Text); ("profile", `Profile) ]) `Chrome
      & info [ "format" ]
          ~doc:
            "Export format: $(b,chrome) (trace-event JSON for ui.perfetto.dev), $(b,text) (one \
             line per event), or $(b,profile) (per-task/per-site aggregates).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a traced run of a built-in application under a power-failure model (default: \
          the paper's timer) and export the event timeline")
    Term.(const run $ app_name $ variant $ interp_arg $ failure_opt_arg $ seed $ out $ format)

(* {1 faults} *)

let faults_cmd =
  let run name runtime interp sweep seed jobs no_resume json_out flame_out perfetto_out
      progress_mode =
    Apps.Common.default_interp := interp;
    match find_app name with
    | spec ->
        if jobs < 1 then begin
          Printf.eprintf "easeio: --jobs must be >= 1\n";
          exit 1
        end;
        let jobs = min jobs Expkit.Pool.max_jobs in
        let variants =
          match runtime with None -> Apps.Common.all_variants | Some v -> [ v ]
        in
        let report =
          with_progress progress_mode ~label:("faults " ^ name) (fun progress ->
              Faultkit.Campaign.run ?progress ~jobs ~resume:(not no_resume) ~seed ~sweep ~variants
                spec)
        in
        let boundaries_total, boundaries_run = Faultkit.Campaign.coverage_totals report in
        Obs.Progress.log "faults %s: covered %d/%d charge boundaries%s" name boundaries_run
          boundaries_total
          (if Faultkit.Campaign.strided report then " (strided)"
           else if boundaries_run = boundaries_total && boundaries_total > 0 then " (exhaustive)"
           else "");
        (* the attribution profile must agree, to the microsecond, with
           the engine's own accounting — refuse to report one that
           doesn't (same discipline as [easeio trace]) *)
        (match Faultkit.Campaign.reconcile report with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "easeio faults: profile disagrees with metrics: %s\n" msg;
            exit 1);
        Printf.printf "%s, sweep %s, seed %d:\n" report.Faultkit.Campaign.app
          (Faultkit.Campaign.sweep_to_string sweep)
          seed;
        List.iter
          (fun (c : Faultkit.Campaign.cell) ->
            let failed = List.length c.failed in
            Printf.printf "  %-10s %5d/%d cases ok (%d charge boundaries)%s\n"
              (Apps.Common.variant_name c.variant)
              (c.cases - failed) c.cases c.boundaries
              (if failed = 0 then "" else Printf.sprintf "  <- %d VIOLATIONS" failed);
            List.iteri
              (fun i (case : Faultkit.Campaign.case) ->
                if i < 5 then
                  List.iter
                    (fun v ->
                      let detail =
                        match (v : Faultkit.Campaign.violation) with
                        | Faultkit.Campaign.Livelock task -> "livelock in task " ^ task
                        | Faultkit.Campaign.App_incorrect -> "app check failed"
                        | Faultkit.Campaign.Nv_mismatch (m :: _) ->
                            Format.asprintf "NV state diverged: %a" Faultkit.Oracle.pp_mismatch m
                        | Faultkit.Campaign.Nv_mismatch [] -> "NV state diverged"
                        | Faultkit.Campaign.Always_skipped sites ->
                            "Always I/O skipped at " ^ String.concat ", " sites
                      in
                      Printf.printf "      %s: %s\n" (Failure.to_string case.schedule) detail)
                    case.violations)
              c.failed)
          report.Faultkit.Campaign.cells;
        Option.iter
          (fun path ->
            Expkit.Json.to_file path (Faultkit.Campaign.to_json report);
            Printf.printf "report -> %s\n" path)
          json_out;
        Option.iter
          (fun path ->
            write_file_atomic path (Faultkit.Campaign.flamegraph report);
            Printf.printf "flamegraph -> %s\n" path)
          flame_out;
        Option.iter
          (fun path ->
            Expkit.Json.to_file path (Faultkit.Campaign.perfetto report);
            Printf.printf "perfetto counters -> %s\n" path)
          perfetto_out;
        if not (Faultkit.Campaign.passed report) then exit 1
  in
  let app_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Application name.")
  in
  let runtime =
    Arg.(
      value
      & opt (some variant_conv) None
      & info [ "runtime"; "r" ] ~doc:"Runtime to test (default: all four variants).")
  in
  let sweep =
    let sweep_conv =
      let parse s = Result.map_error (fun e -> `Msg e) (Faultkit.Campaign.sweep_of_string s) in
      Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Faultkit.Campaign.sweep_to_string s))
    in
    Arg.(
      value
      & opt sweep_conv (Faultkit.Campaign.Boundaries { stride = 1 })
      & info [ "sweep" ] ~docv:"SWEEP"
          ~doc:
            "Schedule sweep: $(b,boundaries) replays the app once per charge boundary of the \
             clean run (exhaustive), $(b,boundaries:K) every K-th boundary, $(b,random:N) draws \
             N at:/timer: schedules from the seed.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let jobs =
    Arg.(
      value
      & opt int (Expkit.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for the schedule sweep (default: one per core; 1 = sequential). \
             Reports are bit-identical for every value.")
  in
  let no_resume =
    Arg.(
      value & flag
      & info [ "no-resume" ]
          ~doc:
            "Replay every boundary case from power on instead of resuming from the pacer run's \
             engine checkpoints. The report is byte-identical either way; this just trades the \
             sequential prefix-sharing fast path for the domain-pool one.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the campaign report as JSON (atomically).")
  in
  let flame_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"PATH"
          ~doc:
            "Write the campaign's energy-attribution profile as folded-stack flamegraph text \
             (app/overhead/wasted µs per task, summed over the whole sweep; feed to \
             flamegraph.pl or speedscope).")
  in
  let perfetto_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"PATH"
          ~doc:
            "Write per-cell counter tracks (app/overhead/wasted µs, power failures, failed \
             cases) as Chrome trace JSON for ui.perfetto.dev; the time axis is the logical \
             cell index.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a fault-injection campaign on a built-in application: fan failure schedules over \
          the domain pool and judge every run with the differential NV-state, \
          Always-re-execution and forward-progress oracles. Exits nonzero on any violation.")
    Term.(
      const run $ app_name $ runtime $ interp_arg $ sweep $ seed $ jobs $ no_resume $ json_out
      $ flame_out $ perfetto_out $ progress_arg)

(* {1 explore} *)

let explore_cmd =
  let run name runtime depth max_states no_prune ablate_regions ablate_semantics seed json_out
      flame_out progress_mode =
    match find_app name with
    | spec ->
        let report =
          with_progress progress_mode ~label:("explore " ^ name) (fun progress ->
              Explore.explore ?progress ~depth ?max_states ~prune:(not no_prune) ~ablate_regions
                ~ablate_semantics spec runtime ~seed)
        in
        Printf.printf "%s under %s, seed %d: depth %d over %d charge boundaries\n"
          report.Explore.app
          (Apps.Common.variant_name report.Explore.variant)
          seed depth report.Explore.boundaries;
        Printf.printf "  %d state(s) explored, %d pruned as convergent%s\n" report.Explore.states
          report.Explore.pruned
          (if report.Explore.truncated then "  (truncated by --max-states)" else "");
        List.iteri
          (fun i (f : Explore.finding) ->
            if i < 5 then
              List.iter
                (fun v ->
                  let detail =
                    match (v : Explore.violation) with
                    | Explore.Livelock task -> "livelock in task " ^ task
                    | Explore.App_incorrect -> "app check failed"
                    | Explore.Nv_mismatch (m :: _) ->
                        Format.asprintf "NV state diverged: %a" Faultkit.Oracle.pp_mismatch m
                    | Explore.Nv_mismatch [] -> "NV state diverged"
                    | Explore.Always_skipped sites ->
                        "Always I/O skipped at " ^ String.concat ", " sites
                  in
                  Printf.printf "  reboots at charge %s: %s\n"
                    (String.concat ", " (List.map string_of_int f.Explore.reboots))
                    detail)
                f.Explore.violations)
          report.Explore.findings;
        (if List.length report.Explore.findings > 5 then
           Printf.printf "  ... and %d more finding(s)\n" (List.length report.Explore.findings - 5));
        Option.iter
          (fun path ->
            Expkit.Json.to_file path (Explore.to_json report);
            Printf.printf "report -> %s\n" path)
          json_out;
        Option.iter
          (fun path ->
            write_file_atomic path (Explore.flamegraph report);
            Printf.printf "flamegraph -> %s\n" path)
          flame_out;
        if not (Explore.passed report) then begin
          Printf.eprintf "easeio explore: %d finding(s)\n" (List.length report.Explore.findings);
          exit 1
        end
  in
  let app_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc:"Application name.")
  in
  let runtime =
    Arg.(
      value & opt variant_conv Apps.Common.Easeio & info [ "runtime"; "r" ] ~doc:"Runtime to test.")
  in
  let depth =
    Arg.(
      value & opt int 1
      & info [ "depth" ] ~docv:"D"
          ~doc:
            "Maximum injected reboots per execution: 1 enumerates every single failure placement \
             (the exhaustive boundary sweep), 2 every failure-then-failure pair of the surviving \
             states, and so on.")
  in
  let max_states =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-states" ] ~docv:"N"
          ~doc:"Stop after exploring $(docv) states (the report is marked truncated).")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Re-explore states whose behavioral hash was already visited (slow; for auditing the \
             convergence pruning).")
  in
  let ablate_regions =
    Arg.(
      value & flag
      & info [ "ablate-regions" ]
          ~doc:
            "Test hook: explore EaseIO with regional privatization disabled — the walk must then \
             surface NV-state findings.")
  in
  let ablate_semantics =
    Arg.(
      value & flag
      & info [ "ablate-semantics" ]
          ~doc:"Test hook: force every I/O annotation to Always before exploring.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the exploration report as JSON (atomically).")
  in
  let flame_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flame" ] ~docv:"PATH"
          ~doc:
            "Write the walk's attribution profile as folded-stack flamegraph text, including the \
             explorer's re-positioning time as an $(b,explore) phase frame.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively explore a built-in application's reboot space: fork copy-on-write machine \
          snapshots at every charge boundary, judge every post-reboot continuation against the \
          clean run's NV image, and prune behaviorally convergent states. Exits nonzero on any \
          violation.")
    Term.(
      const run $ app_name $ runtime $ depth $ max_states $ no_prune $ ablate_regions
      $ ablate_semantics $ seed $ json_out $ flame_out $ progress_arg)

(* {1 fuzz} *)

let fuzz_cmd =
  let run count seed jobs budget max_shrink json_out save_dir ablate_regions ablate_semantics
      interp replay progress_mode =
    if jobs < 1 then begin
      Printf.eprintf "easeio: --jobs must be >= 1\n";
      exit 1
    end;
    let jobs = min jobs Expkit.Pool.max_jobs in
    let options =
      {
        Conformance.Fuzz.count;
        seed;
        jobs;
        budget;
        max_shrink;
        ablate_regions;
        ablate_semantics;
        (* --interp tree drops the shadow VM runs and fuzzes the
           tree-walker alone *)
        check_vm = (interp = Apps.Common.Bytecode);
      }
    in
    match replay with
    | Some file -> (
        (* re-run one committed reproducer through the differential judge *)
        let src = read_file file in
        match parse_or_e0001 src with
        | Error ds ->
            prerr_endline (Lang.Diagnostics.render_all ~src ds);
            exit 1
        | Ok prog -> (
            let case = { Conformance.Gen.gen_seed = seed; intent = Conformance.Gen.Clean; prog } in
            let out =
              Conformance.Judge.judge ~config:(Conformance.Fuzz.config_of options) case
            in
            Printf.printf "%s: %d runs, %d tainted NV global(s) excused\n" file
              out.Conformance.Judge.runs
              (List.length out.Conformance.Judge.tainted_nv);
            match out.Conformance.Judge.violations with
            | [] -> print_endline "verdict: PASS"
            | vs ->
                List.iter
                  (fun v -> Printf.printf "  %s\n" (Conformance.Judge.describe v))
                  vs;
                Printf.eprintf "easeio fuzz: %d violation(s) in %s\n" (List.length vs) file;
                exit 1))
    | None ->
        let report =
          with_progress progress_mode ~label:"fuzz" (fun progress ->
              Conformance.Fuzz.run ?progress options)
        in
        Printf.printf "fuzz: %d cases, seed %d: %d clean, %d expected-diagnostic, %d violating \
                       (%d runs)\n"
          report.Conformance.Fuzz.cases seed report.Conformance.Fuzz.clean
          report.Conformance.Fuzz.expected_diag report.Conformance.Fuzz.violating
          report.Conformance.Fuzz.total_runs;
        Obs.Progress.log "fuzz: probed %d/%d charge boundaries%s"
          report.Conformance.Fuzz.boundaries_run report.Conformance.Fuzz.boundaries_total
          (if report.Conformance.Fuzz.strided then " (strided to fit --budget)"
           else if
             report.Conformance.Fuzz.boundaries_run = report.Conformance.Fuzz.boundaries_total
             && report.Conformance.Fuzz.boundaries_total > 0
           then " (exhaustive)"
           else "");
        List.iter
          (fun (v, n) -> Printf.printf "  expected-unsafe baseline divergence: %-8s %d\n" v n)
          report.Conformance.Fuzz.unsafe_baseline;
        List.iter
          (fun (k, n) -> Printf.printf "  VIOLATION %-24s %d\n" k n)
          report.Conformance.Fuzz.violation_kinds;
        List.iter
          (fun (c : Conformance.Fuzz.counterexample) ->
            Printf.printf "  counterexample (gen seed %d): %d -> %d statements, %s\n"
              c.Conformance.Fuzz.gen_seed c.Conformance.Fuzz.original_stmts
              c.Conformance.Fuzz.shrunk_stmts
              (match c.Conformance.Fuzz.violations with
              | v :: _ -> Conformance.Judge.describe v
              | [] -> "?"))
          report.Conformance.Fuzz.counterexamples;
        Option.iter
          (fun path ->
            Expkit.Json.to_file path (Conformance.Fuzz.to_json report);
            Printf.printf "report -> %s\n" path)
          json_out;
        Option.iter
          (fun dir ->
            let paths = Conformance.Fuzz.save_reproducers ~dir options report in
            List.iter (fun p -> Printf.printf "reproducer -> %s\n" p) paths)
          save_dir;
        if not (Conformance.Fuzz.passed report) then begin
          Printf.eprintf "easeio fuzz: %d violating case(s)\n" report.Conformance.Fuzz.violating;
          exit 1
        end
  in
  let count =
    Arg.(value & opt int 100 & info [ "count"; "n" ] ~doc:"Generated programs to judge.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let jobs =
    Arg.(
      value
      & opt int (Expkit.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for the case sweep (default: one per core; 1 = sequential). Reports \
             are byte-identical for every value.")
  in
  let budget =
    Arg.(
      value
      & opt int Conformance.Fuzz.default_options.Conformance.Fuzz.budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Nth-charge failure boundaries probed per runtime variant per program.")
  in
  let max_shrink =
    Arg.(
      value
      & opt int Conformance.Fuzz.default_options.Conformance.Fuzz.max_shrink
      & info [ "max-shrink" ] ~docv:"K"
          ~doc:"Judge probes the shrinker may spend minimizing one counterexample.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Also write the campaign report as JSON (atomically).")
  in
  let save_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-dir" ] ~docv:"DIR"
          ~doc:"Write each shrunk counterexample as a re-runnable .eio reproducer under $(docv).")
  in
  let ablate_regions =
    Arg.(
      value & flag
      & info [ "ablate-regions" ]
          ~doc:
            "Test hook: run EaseIO with regional privatization disabled (the W0403 guard) — the \
             harness must then find WAR-across-DMA counterexamples.")
  in
  let ablate_semantics =
    Arg.(
      value & flag
      & info [ "ablate-semantics" ]
          ~doc:"Test hook: force every I/O annotation to Always before execution.")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"PROG.eio"
          ~doc:"Judge one saved reproducer instead of generating programs; exits 1 on violation.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Conformance-fuzz the pipeline: generate seeded random task programs, check them, \
          compile them, and differentially execute them under all four runtimes across an \
          Nth-charge failure-boundary sweep, shrinking any counterexample. Exits nonzero on any \
          violation.")
    Term.(
      const run $ count $ seed $ jobs $ budget $ max_shrink $ json_out $ save_dir
      $ ablate_regions $ ablate_semantics $ interp_arg $ replay $ progress_arg)

(* {1 serve / client / bench-serve} *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on (or connect to) a Unix-domain socket.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"P"
        ~doc:"Listen on (or connect to) TCP loopback port $(docv) (0 picks a free port).")

let addr_of ~cmd socket port =
  match (socket, port) with
  | Some path, None -> Serve.Server.Unix_sock path
  | None, Some p -> Serve.Server.Tcp p
  | None, None ->
      Printf.eprintf "easeio %s: pass --socket PATH or --port P\n" cmd;
      exit 2
  | Some _, Some _ ->
      Printf.eprintf "easeio %s: --socket and --port are mutually exclusive\n" cmd;
      exit 2

let serve_cmd =
  let run socket port jobs cache =
    let addr = addr_of ~cmd:"serve" socket port in
    if jobs < 1 then begin
      Printf.eprintf "easeio: --jobs must be >= 1\n";
      exit 1
    end;
    let jobs = min jobs Expkit.Pool.max_jobs in
    if cache < 1 then begin
      Printf.eprintf "easeio serve: --cache must be >= 1\n";
      exit 1
    end;
    let config = { (Serve.Server.default_config addr) with Serve.Server.jobs; cache_cap = cache } in
    let t =
      match Serve.Server.start config with
      | t -> t
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "easeio serve: cannot listen: %s\n" (Unix.error_message e);
          exit 1
    in
    (* SIGTERM/SIGINT request a graceful stop: running jobs finish,
       workers and threads are joined, the socket is unlinked *)
    let on_signal _ = Serve.Server.request_stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    (match addr with
    | Serve.Server.Tcp _ ->
        Printf.printf "easeio serve: listening on 127.0.0.1:%d (%d worker domains)\n%!"
          (Serve.Server.port t) jobs
    | Serve.Server.Unix_sock path ->
        Printf.printf "easeio serve: listening on %s (%d worker domains)\n%!" path jobs);
    Serve.Server.run t
  in
  let jobs =
    Arg.(
      value
      & opt int (Expkit.Pool.default_jobs ())
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains sharding campaign cells (default: one per core). Responses are \
             byte-identical for every value.")
  in
  let cache =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N"
          ~doc:"Completed-cell LRU capacity (entries; keyed by content hashes).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived campaign service: accept run/faults/fuzz/explore requests over a \
          Unix or TCP socket, shard cells across worker domains, stream incremental results and \
          progress heartbeats, and memoize completed cells in a bounded LRU. Responses are \
          byte-identical to the one-shot CLI. SIGTERM/SIGINT stop gracefully.")
    Term.(const run $ socket_arg $ port_arg $ jobs $ cache)

let client_cmd =
  let run socket port spec out =
    let addr = addr_of ~cmd:"client" socket port in
    let payload =
      if String.length spec > 0 && spec.[0] = '@' then
        read_file (String.sub spec 1 (String.length spec - 1))
      else spec
    in
    let fields =
      match Trace.Json.of_string payload with
      | Ok (Expkit.Json.Obj fields) -> fields
      | Ok _ ->
          Printf.eprintf "easeio client: the spec must be a JSON object\n";
          exit 2
      | Error msg ->
          Printf.eprintf "easeio client: bad spec: %s\n" msg;
          exit 2
    in
    let cmd =
      match List.assoc_opt "cmd" fields with Some (Expkit.Json.String s) -> s | _ -> ""
    in
    let c =
      match Serve.Client.connect_retry ~attempts:40 addr with
      | c -> c
      | exception (Unix.Unix_error _ | Sys_error _) ->
          Printf.eprintf "easeio client: cannot connect\n";
          exit 1
    in
    let finally () = Serve.Client.close c in
    Fun.protect ~finally (fun () ->
        match cmd with
        | "run" | "faults" | "fuzz" | "explore" -> (
            (* job request: make sure it carries an id, stream frames,
               print the verbatim result document *)
            let id, payload =
              match List.assoc_opt "id" fields with
              | Some (Expkit.Json.Int n) -> (n, payload)
              | _ ->
                  ( 1,
                    Expkit.Json.to_string
                      (Expkit.Json.Obj (("id", Expkit.Json.Int 1) :: fields)) )
            in
            match Serve.Client.rpc c ~id payload with
            | Ok o -> (
                match out with
                | Some path -> write_file_atomic path o.Serve.Client.doc
                | None -> print_string o.Serve.Client.doc)
            | Error (`Error (code, msg)) ->
                Printf.eprintf "easeio client: %s: %s\n" code msg;
                exit 1
            | Error `Cancelled ->
                Printf.eprintf "easeio client: request cancelled\n";
                exit 1
            | Error (`Transport msg) ->
                Printf.eprintf "easeio client: %s\n" msg;
                exit 1)
        | _ -> (
            (* control request (ping/stats/shutdown/...): ship it as
               written and print the server's raw response frame *)
            Serve.Client.send c payload;
            match Serve.Wire.read_frame c.Serve.Client.ic with
            | Ok resp -> print_endline resp
            | Error _ ->
                Printf.eprintf "easeio client: connection closed\n";
                exit 1))
  in
  let spec =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "Request JSON (or $(b,@FILE) to read it from a file): an object with a $(b,cmd) \
             field — $(b,run), $(b,faults), $(b,fuzz), $(b,explore), $(b,ping), $(b,stats), \
             $(b,cancel) or $(b,shutdown).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"Write the result document to $(docv) (atomically) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send one request to a running campaign service and print the response: the verbatim \
          result document for job requests (byte-identical to the one-shot CLI), the raw \
          response frame for control requests. Exits 1 on an error frame.")
    Term.(const run $ socket_arg $ port_arg $ spec $ out)

let bench_serve_cmd =
  let run socket port requests concurrency mode rate app sweep seeds jobs json_out =
    if requests < 1 || seeds < 1 then begin
      Printf.eprintf "easeio bench-serve: --requests and --seeds must be >= 1\n";
      exit 1
    end;
    if jobs < 1 then begin
      Printf.eprintf "easeio: --jobs must be >= 1\n";
      exit 1
    end;
    let jobs = min jobs Expkit.Pool.max_jobs in
    (* no --socket/--port: measure a self-hosted in-process server on a
       fresh loopback port, so the load generator is one command *)
    let server, addr =
      match (socket, port) with
      | None, None ->
          let t =
            Serve.Server.start
              { (Serve.Server.default_config (Serve.Server.Tcp 0)) with Serve.Server.jobs }
          in
          (Some t, Serve.Server.Tcp (Serve.Server.port t))
      | _ -> (None, addr_of ~cmd:"bench-serve" socket port)
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Serve.Server.stop server)
      (fun () ->
        let sweep_s = Faultkit.Campaign.sweep_to_string sweep in
        (* [seeds] distinct cache cells cycled across the request
           stream: 1 = everything hits after the first compute, large =
           mostly cold *)
        let payload ~id i =
          Serve.Protocol.faults_request ~id ~runtime:Apps.Common.Easeio ~sweep
            ~seed:(1 + (i mod seeds)) ~app ()
        in
        let results =
          List.map
            (fun conc ->
              match mode with
              | `Closed ->
                  Serve.Load.closed_loop ~addr ~concurrency:conc ~requests ~payload ()
              | `Open -> Serve.Load.open_loop ~addr ~rate ~requests ~payload ())
            concurrency
        in
        Printf.printf "bench-serve: %s sweep %s, %d requests over %d seed(s), %s loop\n" app
          sweep_s requests seeds
          (match mode with `Closed -> "closed" | `Open -> "open");
        Printf.printf "%-12s %10s %8s %12s %10s %10s %8s\n" "concurrency" "ok" "errors"
          "campaigns/s" "p50 ms" "p99 ms" "cached";
        List.iter
          (fun (r : Serve.Load.result) ->
            Printf.printf "%-12d %10d %8d %12.1f %10.2f %10.2f %8d\n" r.Serve.Load.concurrency
              r.Serve.Load.requests r.Serve.Load.errors
              (Serve.Load.campaigns_per_s r)
              (Serve.Load.p50 r *. 1e3)
              (Serve.Load.p99 r *. 1e3)
              r.Serve.Load.cached_results)
          results;
        let any_errors = List.exists (fun r -> r.Serve.Load.errors > 0) results in
        Option.iter
          (fun path ->
            let row (r : Serve.Load.result) =
              ( Printf.sprintf "c%d" r.Serve.Load.concurrency,
                Expkit.Json.Obj
                  [
                    ("requests", Expkit.Json.Int r.Serve.Load.requests);
                    ("errors", Expkit.Json.Int r.Serve.Load.errors);
                    ("cached_results", Expkit.Json.Int r.Serve.Load.cached_results);
                    ("campaigns_per_s", Expkit.Json.Float (Serve.Load.campaigns_per_s r));
                    ("wall_s", Expkit.Json.Float r.Serve.Load.wall_s);
                    ("p50_wall_s", Expkit.Json.Float (Serve.Load.p50 r));
                    ("p99_wall_s", Expkit.Json.Float (Serve.Load.p99 r));
                  ] )
            in
            (* same shape as the bench harness JSON, so `easeio report`
               renders and diffs it with the @report-gate tolerances *)
            let doc =
              Expkit.Json.Obj
                [
                  ( "meta",
                    Expkit.Json.Obj
                      [
                        ("harness", Expkit.Json.String "easeio-bench-serve");
                        ("app", Expkit.Json.String app);
                        ("sweep", Expkit.Json.String sweep_s);
                        ("requests", Expkit.Json.Int requests);
                        ("seeds", Expkit.Json.Int seeds);
                        ( "mode",
                          Expkit.Json.String
                            (match mode with `Closed -> "closed" | `Open -> "open") );
                        ("jobs", Expkit.Json.Int jobs);
                      ] );
                  ( "experiments",
                    Expkit.Json.Obj
                      [ ("serve_load", Expkit.Json.Obj (List.map row results)) ] );
                ]
            in
            Expkit.Json.to_file path doc;
            Printf.printf "report -> %s\n" path)
          json_out;
        if any_errors then exit 1)
  in
  let requests =
    Arg.(value & opt int 64 & info [ "requests"; "n" ] ~doc:"Total requests per sweep point.")
  in
  let concurrency =
    Arg.(
      value
      & opt (list int) [ 1; 4; 8 ]
      & info [ "concurrency"; "c" ] ~docv:"N,.."
          ~doc:"Closed-loop client counts to sweep (comma-separated).")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("closed", `Closed); ("open", `Open) ]) `Closed
      & info [ "mode" ]
          ~doc:
            "$(b,closed): N clients issue requests back to back; $(b,open): requests depart on \
             a fixed $(b,--rate) schedule regardless of completions.")
  in
  let rate =
    Arg.(
      value & opt float 50.
      & info [ "rate" ] ~docv:"R" ~doc:"Open-loop arrival rate (requests per second).")
  in
  let app_arg =
    Arg.(value & opt string "temp" & info [ "app" ] ~doc:"Application the campaigns sweep.")
  in
  let sweep =
    let sweep_conv =
      let parse s = Result.map_error (fun e -> `Msg e) (Faultkit.Campaign.sweep_of_string s) in
      Arg.conv
        (parse, fun ppf s -> Format.pp_print_string ppf (Faultkit.Campaign.sweep_to_string s))
    in
    Arg.(
      value
      & opt sweep_conv (Faultkit.Campaign.Boundaries { stride = 4 })
      & info [ "sweep" ] ~docv:"SWEEP" ~doc:"Campaign sweep shape (as in $(b,easeio faults)).")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"K"
          ~doc:
            "Distinct campaign seeds cycled across the request stream: 1 = fully cacheable, \
             large = mostly cold.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Expkit.Pool.default_jobs ())
      & info [ "jobs"; "j" ] ~doc:"Worker domains for the self-hosted server (default: one per core).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write campaigns/s and latency percentiles as a report-schema JSON document.")
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Load-generate against a campaign service (an in-process one on a fresh port by \
          default, or --socket/--port for a running one): sweep closed-loop concurrency or \
          fire an open-loop arrival schedule, and record campaigns/s, p50/p99 latency and \
          cache hits. Exits 1 if any request errors.")
    Term.(
      const run $ socket_arg $ port_arg $ requests $ concurrency $ mode $ rate $ app_arg
      $ sweep $ seeds $ jobs $ json_out)

(* {1 report} *)

let report_cmd =
  let run base cur check tol_rel tol_abs tol_wall =
    let load path =
      match Trace.Json.of_file path with
      | Ok j -> j
      | Error msg ->
          Printf.eprintf "easeio report: %s: %s\n" path msg;
          exit 2
    in
    let base_j = load base in
    match cur with
    | None -> (
        (* render one document: a metric snapshot gets the counter
           table; anything else (campaign/bench JSON) gets its
           flattened rows, plus the counter table of an embedded
           "metrics" snapshot when there is one *)
        match Obs.Snapshot.of_json base_j with
        | Ok snap -> print_string (Obs.Snapshot.render snap)
        | Error _ ->
            List.iter (fun (p, v) -> Printf.printf "%s %s\n" p v) (Obs.Report.rows base_j);
            (match base_j with
            | Expkit.Json.Obj fields -> (
                match List.assoc_opt "metrics" fields with
                | Some m -> (
                    match Obs.Snapshot.of_json m with
                    | Ok snap -> print_string ("\n" ^ Obs.Snapshot.render snap)
                    | Error _ -> ())
                | None -> ())
            | _ -> ()))
    | Some cur_path ->
        let tol = { Obs.Report.rel = tol_rel; abs = tol_abs; wall_factor = tol_wall } in
        let findings = Obs.Report.diff ~tol ~base:base_j ~cur:(load cur_path) () in
        print_string (Obs.Report.render findings);
        if check && Obs.Report.regressions findings <> [] then exit 1
  in
  let base =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASE.json"
          ~doc:"Baseline document (or the only document, when rendering a single file).")
  in
  let cur =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Current document to diff against the baseline.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Exit 1 when the diff contains a regression (the CI perf-gate mode).")
  in
  let tol_rel =
    Arg.(
      value
      & opt float Obs.Report.default_tol.Obs.Report.rel
      & info [ "tol-rel" ] ~docv:"R"
          ~doc:
            "One-sided relative tolerance for simulated (lower-is-better) metrics: the current \
             value regresses past $(i,base + R*|base| + tol-abs).")
  in
  let tol_abs =
    Arg.(
      value
      & opt float Obs.Report.default_tol.Obs.Report.abs
      & info [ "tol-abs" ] ~docv:"A"
          ~doc:"Absolute tolerance floor so small integer metrics don't trip $(b,--tol-rel).")
  in
  let tol_wall =
    Arg.(
      value
      & opt float Obs.Report.default_tol.Obs.Report.wall_factor
      & info [ "tol-wall" ] ~docv:"F"
          ~doc:
            "Allowed slowdown factor for host-dependent throughput metrics (*_runs_per_s): \
             only a collapse below $(i,base/F) regresses.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a metrics/bench JSON document, or diff two with per-metric tolerances \
          (informational provenance rows, a wide multiplicative band for host-dependent \
          throughput, one-sided relative tolerance for simulated metrics). With $(b,--check), \
          exit 1 on any regression — the CI perf gate.")
    Term.(const run $ base $ cur $ check $ tol_rel $ tol_abs $ tol_wall)

let () =
  let doc = "EaseIO: efficient and safe I/O for intermittent systems (simulated)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "easeio" ~doc)
          [
            check_cmd;
            compile_cmd;
            transform_cmd;
            run_cmd;
            apps_cmd;
            app_cmd;
            trace_cmd;
            faults_cmd;
            explore_cmd;
            fuzz_cmd;
            serve_cmd;
            client_cmd;
            bench_serve_cmd;
            report_cmd;
          ]))
