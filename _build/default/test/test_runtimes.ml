(* Tests for the baseline shared-variable managers (Alpaca / InK). *)

open Platform
open Kernel
open Runtimes

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A task with a CPU-visible WAR dependence: x := x + 1. Re-executed
   under Direct it double-increments; Alpaca/InK privatization makes it
   idempotent. *)
let war_increment_app strategy =
  let m = Machine.create () in
  let mgr = Manager.create m strategy in
  let x = Manager.declare ~war:true mgr ~name:"x" ~words:1 in
  let t =
    {
      Task.name = "t";
      body =
        (fun m ->
          Manager.write mgr x 0 (Manager.read mgr x 0 + 1);
          if Machine.failures m = 0 then Machine.die m;
          Task.Stop);
    }
  in
  let app = Task.make_app ~name:"war" ~entry:"t" [ t ] in
  let o = Engine.run ~hooks:(Manager.hooks mgr) m app in
  (o, Manager.committed mgr x 0)

let test_direct_war_bug () =
  let _, v = war_increment_app Manager.Direct in
  checki "double increment" 2 v

let test_alpaca_war_safe () =
  let _, v = war_increment_app Manager.Alpaca in
  checki "idempotent" 1 v

let test_ink_war_safe () =
  let _, v = war_increment_app Manager.Ink in
  checki "idempotent" 1 v

let test_commit_publishes_value () =
  (* a later task must see the committed value *)
  List.iter
    (fun strategy ->
      let m = Machine.create () in
      let mgr = Manager.create m strategy in
      let x = Manager.declare ~war:true mgr ~name:"x" ~words:1 in
      let seen = ref (-1) in
      let t1 =
        {
          Task.name = "t1";
          body =
            (fun _ ->
              Manager.write mgr x 0 41;
              Task.Next "t2");
        }
      in
      let t2 =
        {
          Task.name = "t2";
          body =
            (fun _ ->
              seen := Manager.read mgr x 0;
              Task.Stop);
        }
      in
      let app = Task.make_app ~name:"pub" ~entry:"t1" [ t1; t2 ] in
      ignore (Engine.run ~hooks:(Manager.hooks mgr) m app);
      checki (Manager.strategy_name strategy ^ " publishes") 41 !seen)
    [ Manager.Direct; Manager.Alpaca; Manager.Ink ]

let test_uncommitted_writes_discarded () =
  (* writes from a failed attempt must not be visible after re-execution
     start (Alpaca and InK) *)
  List.iter
    (fun strategy ->
      let m = Machine.create () in
      let mgr = Manager.create m strategy in
      let x = Manager.declare ~war:true mgr ~name:"x" ~words:1 in
      let first_seen = ref [] in
      let t =
        {
          Task.name = "t";
          body =
            (fun m ->
              first_seen := Manager.read mgr x 0 :: !first_seen;
              Manager.write mgr x 0 99;
              if Machine.failures m = 0 then Machine.die m;
              Task.Stop);
        }
      in
      let app = Task.make_app ~name:"disc" ~entry:"t" [ t ] in
      ignore (Engine.run ~hooks:(Manager.hooks mgr) m app);
      Alcotest.(check (list int))
        (Manager.strategy_name strategy ^ " reads initial value on both attempts")
        [ 0; 0 ] !first_seen)
    [ Manager.Alpaca; Manager.Ink ]

let test_dma_bypasses_privatization () =
  (* DMA writes the raw backing store; the manager cannot see them: the
     mechanism behind §2.1.2's idempotence bugs *)
  List.iter
    (fun strategy ->
      let m = Machine.create () in
      let mgr = Manager.create m strategy in
      let a = Manager.declare mgr ~name:"a" ~words:4 in
      let b = Manager.declare mgr ~name:"b" ~words:4 in
      let t =
        {
          Task.name = "t";
          body =
            (fun m ->
              Periph.Dma.copy m ~src:(Manager.raw_loc mgr a) ~dst:(Manager.raw_loc mgr b) ~words:4;
              Task.Stop);
        }
      in
      (* preload a *)
      for i = 0 to 3 do
        Memory.write (Machine.mem m Memory.Fram) ((Manager.raw_loc mgr a).Loc.addr + i) (i + 10)
      done;
      let app = Task.make_app ~name:"dma" ~entry:"t" [ t ] in
      ignore (Engine.run ~hooks:(Manager.hooks mgr) m app);
      checki (Manager.strategy_name strategy ^ " dma visible") 10 (Manager.read mgr b 0))
    [ Manager.Direct; Manager.Alpaca; Manager.Ink ]

let test_fig6_war_dma_bug_reproduced () =
  (* Fig. 6 of the paper: z = b[0]; DMA(a -> b); a[0] = z. A failure
     after the task body completes its writes but before commit causes a
     re-execution whose DMA reads the mutated a[0] under Direct; Alpaca
     and InK also corrupt state because the DMA is invisible to them.
     The golden (continuous) final state has b[0] = a0_initial,
     a[0] = b0_initial. *)
  let run strategy ~fail =
    let m = Machine.create () in
    let mgr = Manager.create m strategy in
    (* a and b carry no CPU-visible WAR (the write to a[0] writes a value
       read from b), so the analysis does not privatize them *)
    let a = Manager.declare mgr ~name:"a" ~words:1 in
    let b = Manager.declare mgr ~name:"b" ~words:1 in
    let fram = Machine.mem m Memory.Fram in
    Memory.write fram (Manager.raw_loc mgr a).Loc.addr 100;
    Memory.write fram (Manager.raw_loc mgr b).Loc.addr 200;
    let t =
      {
        Task.name = "t";
        body =
          (fun m ->
            let z = Manager.read mgr b 0 in
            Periph.Dma.copy m ~src:(Manager.raw_loc mgr a) ~dst:(Manager.raw_loc mgr b) ~words:1;
            Manager.write mgr a 0 z;
            if fail && Machine.failures m = 0 then Machine.die m;
            Task.Stop);
      }
    in
    let app = Task.make_app ~name:"fig6" ~entry:"t" [ t ] in
    ignore (Engine.run ~hooks:(Manager.hooks mgr) m app);
    (Manager.read mgr a 0, Manager.read mgr b 0)
  in
  List.iter
    (fun strategy ->
      let golden = run strategy ~fail:false in
      checki "golden a" 200 (fst golden);
      checki "golden b" 100 (snd golden);
      let intermittent = run strategy ~fail:true in
      checkb
        (Manager.strategy_name strategy ^ " corrupts state under failure")
        true
        (intermittent <> golden))
    [ Manager.Direct; Manager.Alpaca; Manager.Ink ]

let test_alpaca_overhead_only_for_war_vars () =
  let overhead strategy war =
    let m = Machine.create () in
    let mgr = Manager.create m strategy in
    let _ = Manager.declare ~war mgr ~name:"x" ~words:64 in
    let t = { Task.name = "t"; body = (fun _ -> Task.Stop) } in
    let app = Task.make_app ~name:"ovh" ~entry:"t" [ t ] in
    let o = Engine.run ~hooks:(Manager.hooks mgr) m app in
    o.Engine.metrics.Metrics.useful_ovh_us
  in
  checkb "war var costs more" true
    (overhead Manager.Alpaca true > overhead Manager.Alpaca false)

let test_ink_double_buffer_alternates () =
  (* two successive committing tasks must land in alternating buffers
     while reads always see the latest committed value *)
  let m = Machine.create () in
  let mgr = Manager.create m Manager.Ink in
  let x = Manager.declare ~war:true mgr ~name:"x" ~words:1 in
  let t1 =
    { Task.name = "t1"; body = (fun _ -> Manager.write mgr x 0 1; Task.Next "t2") }
  in
  let t2 =
    {
      Task.name = "t2";
      body = (fun _ -> Manager.write mgr x 0 (Manager.read mgr x 0 + 1); Task.Stop);
    }
  in
  let app = Task.make_app ~name:"alt" ~entry:"t1" [ t1; t2 ] in
  ignore (Engine.run ~hooks:(Manager.hooks mgr) m app);
  checki "final" 2 (Manager.committed mgr x 0)

let prop_managers_match_golden_without_failures =
  QCheck.Test.make ~name:"all strategies agree under continuous power" ~count:50
    QCheck.(small_list (int_bound 100))
    (fun writes ->
      let run strategy =
        let m = Machine.create () in
        let mgr = Manager.create m strategy in
        let x = Manager.declare ~war:true mgr ~name:"x" ~words:1 in
        let t =
          {
            Task.name = "t";
            body =
              (fun _ ->
                List.iter (fun v -> Manager.write mgr x 0 (Manager.read mgr x 0 + v)) writes;
                Task.Stop);
          }
        in
        let app = Task.make_app ~name:"agree" ~entry:"t" [ t ] in
        ignore (Engine.run ~hooks:(Manager.hooks mgr) m app);
        Manager.committed mgr x 0
      in
      let d = run Manager.Direct in
      d = run Manager.Alpaca && d = run Manager.Ink)

(* {1 Samoyed-style atomic functions} *)

let samoyed_app ~fail_at =
  let m = Machine.create () in
  let sam = Manager.create m Manager.Direct in
  ignore sam;
  let rt = Samoyed.create m in
  let log = ref [] in
  let step name cost m =
    log := name :: !log;
    Machine.charge m ~us:cost ~nj:(float_of_int cost);
    if Some name = fail_at && Machine.failures m = 0 then Machine.die m
  in
  let t =
    {
      Kernel.Task.name = "t";
      body =
        (fun m ->
          Samoyed.steps rt m ~task:"t"
            [ step "sense" 800; step "filter" 600; step "send" 900 ];
          Kernel.Task.Stop);
    }
  in
  let app = Kernel.Task.make_app ~name:"sam" ~entry:"t" [ t ] in
  let o = Kernel.Engine.run ~hooks:(Samoyed.hooks rt) m app in
  (o, List.rev !log)

let test_samoyed_resumes_at_interrupted_step () =
  let o, log = samoyed_app ~fail_at:(Some "send") in
  checkb "completed" true o.Kernel.Engine.completed;
  (* sense and filter ran once; only send re-executed *)
  Alcotest.(check (list string))
    "function-granularity re-execution"
    [ "sense"; "filter"; "send"; "send" ] log

let test_samoyed_no_failure_runs_each_once () =
  let _, log = samoyed_app ~fail_at:None in
  Alcotest.(check (list string)) "once each" [ "sense"; "filter"; "send" ] log

let test_samoyed_pointer_resets_at_commit () =
  (* a second task instance must run all steps again *)
  let m = Machine.create () in
  let rt = Samoyed.create m in
  let runs = ref 0 in
  let visits = Machine.alloc m Memory.Fram ~name:"v" ~words:1 in
  let t =
    {
      Kernel.Task.name = "t";
      body =
        (fun m ->
          Samoyed.steps rt m ~task:"t" [ (fun _ -> incr runs) ];
          let n = Machine.read m Memory.Fram visits + 1 in
          Machine.write m Memory.Fram visits n;
          if n < 2 then Kernel.Task.Next "t" else Kernel.Task.Stop);
    }
  in
  let app = Kernel.Task.make_app ~name:"sam" ~entry:"t" [ t ] in
  ignore (Kernel.Engine.run ~hooks:(Samoyed.hooks rt) m app);
  checki "both instances ran the step" 2 !runs

let test_samoyed_wasted_work_between_alpaca_and_easeio () =
  (* the Table 1 ordering on a 3-op task interrupted in the last op:
     full-task re-execution (Alpaca-style) wastes the two completed ops,
     Samoyed wastes none of them (checkpoints), and both unlike EaseIO
     still lack semantics/DMA protection (covered elsewhere) *)
  let o_sam, log = samoyed_app ~fail_at:(Some "send") in
  checki "samoyed re-ran one op" 4 (List.length log);
  (* Alpaca-style baseline: the whole task re-executes *)
  let m = Machine.create () in
  let count = ref 0 in
  let t =
    {
      Kernel.Task.name = "t";
      body =
        (fun m ->
          incr count;
          Machine.charge m ~us:2_300 ~nj:2_300.;
          if Machine.failures m = 0 then Machine.die m;
          Kernel.Task.Stop);
    }
  in
  let o_base =
    Kernel.Engine.run m (Kernel.Task.make_app ~name:"b" ~entry:"t" [ t ])
  in
  (* the engine's wasted bucket is attempt-granular, so compare end-to-
     end time: the baseline repeats the whole 2.3 ms task while Samoyed
     only repeats the interrupted 0.9 ms function *)
  checkb
    (Printf.sprintf "baseline total (%d) > samoyed total (%d)"
       o_base.Kernel.Engine.total_time_us o_sam.Kernel.Engine.total_time_us)
    true
    (o_base.Kernel.Engine.total_time_us > o_sam.Kernel.Engine.total_time_us)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "runtimes"
    [
      ( "samoyed",
        [
          tc "resumes at interrupted step" `Quick test_samoyed_resumes_at_interrupted_step;
          tc "no failure runs each once" `Quick test_samoyed_no_failure_runs_each_once;
          tc "pointer resets at commit" `Quick test_samoyed_pointer_resets_at_commit;
          tc "wasted work between alpaca and easeio" `Quick
            test_samoyed_wasted_work_between_alpaca_and_easeio;
        ] );
      ( "manager",
        [
          tc "direct WAR bug" `Quick test_direct_war_bug;
          tc "alpaca WAR safe" `Quick test_alpaca_war_safe;
          tc "ink WAR safe" `Quick test_ink_war_safe;
          tc "commit publishes" `Quick test_commit_publishes_value;
          tc "uncommitted writes discarded" `Quick test_uncommitted_writes_discarded;
          tc "dma bypasses privatization" `Quick test_dma_bypasses_privatization;
          tc "fig6 WAR-DMA bug reproduced" `Quick test_fig6_war_dma_bug_reproduced;
          tc "alpaca overhead only for war vars" `Quick test_alpaca_overhead_only_for_war_vars;
          tc "ink double buffer alternates" `Quick test_ink_double_buffer_alternates;
          QCheck_alcotest.to_alcotest prop_managers_match_golden_without_failures;
        ] );
    ]
