(* Tests for the DNN substrate: fixed-point ops, layer kernels vs their
   bit-exact references, and the weather network. *)

open Platform

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_fixed_roundtrip () =
  checki "one" 256 Dnn.Fixed.one;
  checki "of_float 1.0" 256 (Dnn.Fixed.of_float 1.0);
  checki "of_float -0.5" (-128) (Dnn.Fixed.of_float (-0.5));
  Alcotest.(check (float 0.01)) "to_float" 0.5 (Dnn.Fixed.to_float 128)

let test_fixed_mul () =
  (* 0.5 * 100 = 50 *)
  checki "q8 scale" 50 (Dnn.Fixed.mul 128 100);
  checki "relu clamps" 0 (Dnn.Fixed.relu (-3));
  checki "relu passes" 7 (Dnn.Fixed.relu 7)

let test_weights_deterministic_and_bounded () =
  let a = Dnn.Weights.gen ~seed:9 64 and b = Dnn.Weights.gen ~seed:9 64 in
  Alcotest.(check (array int)) "deterministic" a b;
  Array.iter (fun w -> checkb "bounded" true (w >= -256 && w <= 256)) a;
  let c = Dnn.Weights.gen ~seed:10 64 in
  checkb "seed matters" true (a <> c)

(* machine conv must equal the pure reference *)
let test_conv2d_matches_reference () =
  let m = Machine.create () in
  let in_dim = 6 and k = 3 in
  let input = Array.init (in_dim * in_dim) (fun i -> (i * 13 mod 97) - 40) in
  let weights = Dnn.Weights.gen ~seed:3 (k * k) in
  let src = Machine.alloc m Memory.Fram ~name:"in" ~words:(in_dim * in_dim) in
  let wts = Machine.alloc m Memory.Fram ~name:"w" ~words:(k * k) in
  let dst = Machine.alloc m Memory.Fram ~name:"out" ~words:16 in
  let fram = Machine.mem m Memory.Fram in
  Array.iteri (fun i v -> Memory.write fram (src + i) v) input;
  Array.iteri (fun i v -> Memory.write fram (wts + i) v) weights;
  let scratch = Dnn.Layers.alloc_scratch m ~max_act:(in_dim * in_dim) ~max_weights:(k * k) in
  Dnn.Layers.conv2d m (Dnn.Layers.raw_mover m) scratch ~input:(Loc.fram src)
    ~weights:(Loc.fram wts) ~output:(Loc.fram dst) ~in_dim ~k ~relu:true;
  let expected = Dnn.Layers.ref_conv2d ~input ~weights ~in_dim ~k ~relu:true in
  Array.iteri (fun i v -> checki (Printf.sprintf "out[%d]" i) v (Memory.read fram (dst + i)))
    expected

let test_fc_matches_reference () =
  let m = Machine.create () in
  let in_len = 9 and out_len = 4 in
  let input = Array.init in_len (fun i -> i * 3) in
  let weights = Dnn.Weights.gen ~seed:4 (in_len * out_len) in
  let src = Machine.alloc m Memory.Fram ~name:"in" ~words:in_len in
  let wts = Machine.alloc m Memory.Fram ~name:"w" ~words:(in_len * out_len) in
  let dst = Machine.alloc m Memory.Fram ~name:"out" ~words:out_len in
  let fram = Machine.mem m Memory.Fram in
  Array.iteri (fun i v -> Memory.write fram (src + i) v) input;
  Array.iteri (fun i v -> Memory.write fram (wts + i) v) weights;
  let scratch = Dnn.Layers.alloc_scratch m ~max_act:in_len ~max_weights:(in_len * out_len) in
  Dnn.Layers.fully_connected m (Dnn.Layers.raw_mover m) scratch ~input:(Loc.fram src)
    ~weights:(Loc.fram wts) ~output:(Loc.fram dst) ~in_len ~out_len;
  let expected = Dnn.Layers.ref_fully_connected ~input ~weights ~out_len in
  Array.iteri (fun i v -> checki (Printf.sprintf "out[%d]" i) v (Memory.read fram (dst + i)))
    expected

let run_network ~buffering image =
  let m = Machine.create () in
  let net = Dnn.Network.create m ~buffering in
  let img = Dnn.Network.image_loc net in
  Array.iteri (fun i v -> Memory.write (Machine.mem m Memory.Fram) (img.Loc.addr + i) v) image;
  for i = 0 to Dnn.Network.layer_count - 1 do
    Dnn.Network.run_layer m (Dnn.Layers.raw_mover m) net i
  done;
  Dnn.Network.result m net

let test_image () =
  Array.init (Dnn.Network.input_dim * Dnn.Network.input_dim) (fun i -> (i * 29 mod 251) + 1)

let test_network_matches_reference () =
  let image = test_image () in
  checki "machine inference = reference"
    (Dnn.Network.infer_reference image)
    (run_network ~buffering:`Double image)

let test_single_double_agree_continuous () =
  let image = test_image () in
  checki "buffering is behaviour-neutral under continuous power"
    (run_network ~buffering:`Double image)
    (run_network ~buffering:`Single image)

let test_result_in_range () =
  let image = test_image () in
  let r = run_network ~buffering:`Double image in
  checkb "class in range" true (r >= 0 && r < Dnn.Network.classes)

let test_reference_stats_shape () =
  let image = test_image () in
  let stats = Dnn.Network.reference_stats image in
  checki "one per stage" Dnn.Network.layer_count (Array.length stats);
  Array.iter (fun s -> checkb "16-bit" true (s >= 0 && s <= 0xFFFF)) stats

let test_easeio_mover_equivalent () =
  (* the EaseIO mover must deliver the same data as raw DMA (continuous
     power) *)
  let image = test_image () in
  let m = Machine.create () in
  let net = Dnn.Network.create m ~buffering:`Double in
  let img = Dnn.Network.image_loc net in
  Array.iteri (fun i v -> Memory.write (Machine.mem m Memory.Fram) (img.Loc.addr + i) v) image;
  let rt = Easeio.Runtime.create m in
  (* give the runtime a live task context *)
  (Easeio.Runtime.hooks rt).Kernel.Engine.on_task_start m "t";
  for i = 0 to Dnn.Network.layer_count - 1 do
    Dnn.Network.run_layer m (Dnn.Layers.easeio_mover rt) net i
  done;
  checki "same class" (Dnn.Network.infer_reference image) (Dnn.Network.result m net)

let prop_conv_reference_linear_in_input =
  QCheck.Test.make ~name:"conv reference: zero kernel gives zero output" ~count:50
    QCheck.(small_int)
    (fun seed ->
      let in_dim = 5 and k = 2 in
      let input = Array.init (in_dim * in_dim) (fun i -> Platform.Rng.hash2 seed i mod 100) in
      let zeros = Array.make (k * k) 0 in
      let out = Dnn.Layers.ref_conv2d ~input ~weights:zeros ~in_dim ~k ~relu:false in
      Array.for_all (( = ) 0) out)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "dnn"
    [
      ( "fixed",
        [ tc "roundtrip" `Quick test_fixed_roundtrip; tc "mul/relu" `Quick test_fixed_mul ] );
      ("weights", [ tc "deterministic and bounded" `Quick test_weights_deterministic_and_bounded ]);
      ( "layers",
        [
          tc "conv2d matches reference" `Quick test_conv2d_matches_reference;
          tc "fc matches reference" `Quick test_fc_matches_reference;
          QCheck_alcotest.to_alcotest prop_conv_reference_linear_in_input;
        ] );
      ( "network",
        [
          tc "machine inference = reference" `Quick test_network_matches_reference;
          tc "single/double agree (continuous)" `Quick test_single_double_agree_continuous;
          tc "result in range" `Quick test_result_in_range;
          tc "reference stats shape" `Quick test_reference_stats_shape;
          tc "easeio mover equivalent" `Quick test_easeio_mover_equivalent;
        ] );
    ]
