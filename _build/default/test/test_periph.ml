(* Tests for the peripheral models: DMA, LEA, sensors, radio, camera. *)

open Platform
open Periph

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let machine ?failure () =
  match failure with None -> Machine.create () | Some f -> Machine.create ~failure:f ()

(* {1 DMA} *)

let test_dma_copies_data () =
  let m = machine () in
  let src = Machine.alloc m Memory.Fram ~name:"src" ~words:32 in
  let dst = Machine.alloc m Memory.Sram ~name:"dst" ~words:32 in
  for i = 0 to 31 do
    Memory.write (Machine.mem m Memory.Fram) (src + i) (i * i)
  done;
  Dma.copy m ~src:(Loc.fram src) ~dst:(Loc.sram dst) ~words:32;
  for i = 0 to 31 do
    checki "copied" (i * i) (Memory.read (Machine.mem m Memory.Sram) (dst + i))
  done;
  checki "one io event" 1 (Machine.event m "io:DMA")

let test_dma_charges_time () =
  let m = machine () in
  let src = Machine.alloc m Memory.Fram ~name:"src" ~words:100 in
  let dst = Machine.alloc m Memory.Fram ~name:"dst" ~words:100 in
  Dma.copy m ~src:(Loc.fram src) ~dst:(Loc.fram dst) ~words:100;
  (* setup 8us + 100 words * 1us *)
  checki "time" 108 (Machine.now m)

let test_dma_partial_on_failure () =
  (* a transfer interrupted by the failure timer must leave a prefix of
     the data copied — the hardware behaviour that makes re-executed DMA
     dangerous *)
  let m =
    machine
      ~failure:(Failure.Timer { on_min_us = 40; on_max_us = 60; off_min_us = 1; off_max_us = 1 })
      ()
  in
  Machine.boot m;
  let src = Machine.alloc m Memory.Fram ~name:"src" ~words:200 in
  let dst = Machine.alloc m Memory.Fram ~name:"dst" ~words:200 in
  for i = 0 to 199 do
    Memory.write (Machine.mem m Memory.Fram) (src + i) 7
  done;
  (match Dma.copy m ~src:(Loc.fram src) ~dst:(Loc.fram dst) ~words:200 with
  | () -> Alcotest.fail "should be interrupted"
  | exception Machine.Power_failure -> ());
  let fram = Machine.mem m Memory.Fram in
  let copied = ref 0 in
  for i = 0 to 199 do
    if Memory.read fram (dst + i) = 7 then incr copied
  done;
  checkb "partial prefix" true (!copied > 0 && !copied < 200);
  checki "chunk aligned" 0 (!copied mod Dma.chunk_words);
  checki "started transfer counted" 1 (Machine.event m "io:DMA")

(* {1 LEA} *)

let test_lea_vector_mac () =
  let m = machine () in
  let a = Lea.alloc_leram m ~name:"a" ~words:4 in
  let b = Lea.alloc_leram m ~name:"b" ~words:4 in
  let sram = Machine.mem m Memory.Sram in
  List.iteri (fun i v -> Memory.write sram (a + i) v) [ 1; 2; 3; 4 ];
  List.iteri (fun i v -> Memory.write sram (b + i) v) [ 5; 6; 7; 8 ];
  checki "dot product" 70 (Lea.vector_mac m ~a ~b ~len:4)

let test_lea_fir () =
  let m = machine () in
  let input = Lea.alloc_leram m ~name:"in" ~words:6 in
  let coeffs = Lea.alloc_leram m ~name:"c" ~words:3 in
  let output = Lea.alloc_leram m ~name:"out" ~words:4 in
  let sram = Machine.mem m Memory.Sram in
  List.iteri (fun i v -> Memory.write sram (input + i) v) [ 1; 1; 1; 1; 1; 1 ];
  List.iteri (fun i v -> Memory.write sram (coeffs + i) v) [ 1; 2; 3 ];
  Lea.fir m ~input ~coeffs ~taps:3 ~output ~samples:4;
  for i = 0 to 3 do
    checki "moving sum" 6 (Memory.read sram (output + i))
  done

let test_lea_rejects_fram_addresses () =
  let m = machine () in
  Alcotest.check_raises "oob operand"
    (Invalid_argument "Lea.vector_mac: operand [4090,4100) outside SRAM") (fun () ->
      ignore (Lea.vector_mac m ~a:4090 ~b:0 ~len:10))

let test_lea_vector_max () =
  let m = machine () in
  let a = Lea.alloc_leram m ~name:"v" ~words:5 in
  let sram = Machine.mem m Memory.Sram in
  List.iteri (fun i v -> Memory.write sram (a + i) v) [ 3; 9; 1; 9; 2 ];
  checki "argmax (first)" 1 (Lea.vector_max m ~a ~len:5)

let test_lea_shift_scaling () =
  let m = machine () in
  let a = Lea.alloc_leram m ~name:"a" ~words:2 in
  let b = Lea.alloc_leram m ~name:"b" ~words:2 in
  let sram = Machine.mem m Memory.Sram in
  Memory.write sram a 1024;
  Memory.write sram (a + 1) 1024;
  Memory.write sram b 2048;
  Memory.write sram (b + 1) 2048;
  checki "q15-style shift" ((1024 * 2048 * 2) asr 15) (Lea.vector_mac ~shift:15 m ~a ~b ~len:2)

(* {1 Sensors} *)

let test_sensor_reads_world () =
  let m = machine () in
  let v = Sensors.temperature_dc m in
  let expected = World.temperature_dc (Machine.world m) (Machine.now m) in
  checki "world sample at completion time" expected v;
  checki "event" 1 (Machine.event m "io:Temp")

let test_sensor_costs_time () =
  let m = machine () in
  ignore (Sensors.temperature_dc m);
  checki "900us" 900 (Machine.now m)

(* {1 Radio} *)

let test_radio_logs_completed_packets () =
  let m = machine () in
  let r = Radio.create m in
  Radio.send r [| 1; 2; 3 |];
  Radio.send r [| 4 |];
  checki "two packets" 2 (Radio.packets_sent r);
  (match Radio.log r with
  | [ (_, p1); (_, p2) ] ->
      checki "payload" 1 p1.(0);
      checki "payload" 4 p2.(0)
  | _ -> Alcotest.fail "expected two packets");
  checki "events" 2 (Machine.event m "io:Send")

let test_radio_interrupted_send_not_logged () =
  let m =
    machine
      ~failure:(Failure.Timer { on_min_us = 100; on_max_us = 150; off_min_us = 1; off_max_us = 1 })
      ()
  in
  Machine.boot m;
  let r = Radio.create m in
  (match Radio.send r (Array.make 100 9) with
  | () -> Alcotest.fail "should be interrupted (preamble alone is 2ms)"
  | exception Machine.Power_failure -> ());
  checki "nothing received" 0 (Radio.packets_sent r);
  checki "attempt counted" 1 (Machine.event m "io:Send")

let test_radio_send_from_memory () =
  let m = machine () in
  let r = Radio.create m in
  let src = Machine.alloc m Memory.Fram ~name:"pkt" ~words:3 in
  List.iteri (fun i v -> Memory.write (Machine.mem m Memory.Fram) (src + i) v) [ 10; 20; 30 ];
  Radio.send_from r ~src:(Loc.fram src) ~words:3;
  match Radio.log r with
  | [ (_, p) ] -> Alcotest.(check (array int)) "payload" [| 10; 20; 30 |] p
  | _ -> Alcotest.fail "one packet expected"

(* {1 Camera} *)

let test_camera_writes_frame () =
  let m = machine () in
  let dst = Machine.alloc m Memory.Sram ~name:"img" ~words:16 in
  Camera.capture m ~dst:(Loc.sram dst) ~pixels:16;
  let sram = Machine.mem m Memory.Sram in
  let nonzero = ref 0 in
  for i = 0 to 15 do
    let px = Memory.read sram (dst + i) in
    checkb "pixel in range" true (px >= 0 && px <= 255);
    if px > 0 then incr nonzero
  done;
  checkb "frame has content" true (!nonzero > 0);
  checki "event" 1 (Machine.event m "io:Capture")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "periph"
    [
      ( "dma",
        [
          tc "copies data" `Quick test_dma_copies_data;
          tc "charges time" `Quick test_dma_charges_time;
          tc "partial on failure" `Quick test_dma_partial_on_failure;
        ] );
      ( "lea",
        [
          tc "vector mac" `Quick test_lea_vector_mac;
          tc "fir" `Quick test_lea_fir;
          tc "rejects out-of-sram operands" `Quick test_lea_rejects_fram_addresses;
          tc "vector max" `Quick test_lea_vector_max;
          tc "shift scaling" `Quick test_lea_shift_scaling;
        ] );
      ( "sensors",
        [
          tc "reads world" `Quick test_sensor_reads_world;
          tc "costs time" `Quick test_sensor_costs_time;
        ] );
      ( "radio",
        [
          tc "logs completed packets" `Quick test_radio_logs_completed_packets;
          tc "interrupted send not logged" `Quick test_radio_interrupted_send_not_logged;
          tc "send from memory" `Quick test_radio_send_from_memory;
        ] );
      ("camera", [ tc "writes frame" `Quick test_camera_writes_frame ]);
    ]
