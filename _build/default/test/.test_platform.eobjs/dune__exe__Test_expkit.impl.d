test/test_expkit.ml: Alcotest Expkit List Printf String
