test/test_periph.ml: Alcotest Array Camera Dma Failure Lea List Loc Machine Memory Periph Platform Radio Sensors World
