test/test_runtimes.ml: Alcotest Engine Kernel List Loc Machine Manager Memory Metrics Periph Platform Printf QCheck QCheck_alcotest Runtimes Samoyed Task
