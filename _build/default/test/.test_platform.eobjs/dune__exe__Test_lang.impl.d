test/test_lang.ml: Alcotest Analysis Array Ast Easeio Failure Footprint Interp Kernel Lang List Loc Machine Memory Parser Periph Platform Pretty Printf QCheck QCheck_alcotest String Transform
