test/test_apps.ml: Alcotest Apps Catalog Common Expkit Failure Fir List Platform Printf Uni Weather
