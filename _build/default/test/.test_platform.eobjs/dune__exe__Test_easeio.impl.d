test/test_easeio.ml: Alcotest Easeio Engine Failure Kernel List Loc Machine Memory Option Periph Platform QCheck QCheck_alcotest String Task
