test/test_easeio.mli:
