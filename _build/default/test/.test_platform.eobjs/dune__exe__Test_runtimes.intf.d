test/test_runtimes.mli:
