test/test_platform.ml: Alcotest Capacitor Failure Harvester Layout List Machine Memory Platform QCheck QCheck_alcotest Rng Timekeeper World
