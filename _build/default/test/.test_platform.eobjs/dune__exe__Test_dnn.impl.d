test/test_dnn.ml: Alcotest Array Dnn Easeio Kernel Loc Machine Memory Platform Printf QCheck QCheck_alcotest
