test/test_kernel.ml: Alcotest Engine Failure Golden Kernel List Machine Memory Metrics Periph Platform QCheck QCheck_alcotest Task
