(* Tests for the EaseIO core runtime: re-execution semantics, I/O blocks
   and precedence, dependence forcing, memory-safe DMA, regional
   privatization. *)

open Platform
open Kernel

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Run a single-task app under EaseIO; [body rt m] is the task body. *)
let run_task ?priv_buffer_words ?(fail_once = false) body =
  let m = Machine.create () in
  let rt = Easeio.Runtime.create ?priv_buffer_words m in
  let t =
    {
      Task.name = "t";
      body =
        (fun m ->
          body rt m;
          if fail_once && Machine.failures m = 0 then Machine.die m;
          Task.Stop);
    }
  in
  let app = Task.make_app ~name:"e" ~entry:"t" [ t ] in
  let o = Engine.run ~hooks:(Easeio.Runtime.hooks rt) m app in
  (m, rt, o)

(* {1 Re-execution semantics} *)

let test_single_skips_on_reexecution () =
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        ignore
          (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Single (fun m ->
               Periph.Sensors.temperature_dc m));
        Machine.cpu m 10)
  in
  checki "sensor ran once" 1 (Machine.event m "io:Temp")

let test_single_restores_value () =
  let values = ref [] in
  let _ =
    run_task ~fail_once:true (fun rt _ ->
        let v =
          Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Single (fun m ->
              Periph.Sensors.temperature_dc m)
        in
        values := v :: !values)
  in
  match !values with
  | [ second; first ] -> checki "restored value identical" first second
  | _ -> Alcotest.fail "expected two attempts"

let test_always_reexecutes () =
  let m, _, _ =
    run_task ~fail_once:true (fun rt _ ->
        ignore
          (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Always (fun m ->
               Periph.Sensors.temperature_dc m)))
  in
  checki "sensor ran twice" 2 (Machine.event m "io:Temp")

let timely_app ~freshness_us ~work_after_us =
  run_task ~fail_once:true (fun rt m ->
      ignore
        (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:(Easeio.Semantics.Timely freshness_us)
           (fun m -> Periph.Sensors.temperature_dc m));
      Machine.idle m work_after_us)

let test_timely_reexecutes_when_stale () =
  let m, _, _ = timely_app ~freshness_us:1_000 ~work_after_us:3_000 in
  checki "stale -> re-read" 2 (Machine.event m "io:Temp")

let test_timely_skips_when_fresh () =
  let m, _, _ = timely_app ~freshness_us:1_000_000 ~work_after_us:3_000 in
  checki "fresh -> skip" 1 (Machine.event m "io:Temp")

let test_flags_cleared_at_commit () =
  (* two execution instances of the same task (via a loop in the task
     graph) must each run a Single operation once *)
  let m = Machine.create () in
  let rt = Easeio.Runtime.create m in
  let visits = Machine.alloc m Memory.Fram ~name:"visits" ~words:1 in
  let sense =
    {
      Task.name = "sense";
      body =
        (fun m ->
          ignore
            (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Single (fun m ->
                 Periph.Sensors.temperature_dc m));
          let n = Machine.read m Memory.Fram visits + 1 in
          Machine.write m Memory.Fram visits n;
          if n < 2 then Task.Next "sense" else Task.Stop);
    }
  in
  let app = Task.make_app ~name:"loop" ~entry:"sense" [ sense ] in
  ignore (Engine.run ~hooks:(Easeio.Runtime.hooks rt) m app);
  checki "one execution per task instance" 2 (Machine.event m "io:Temp")

let test_branch_stability () =
  (* safe program execution (§3.5): even though the sensed value would
     differ across attempts, the restored private copy keeps the branch
     decision stable, so exactly one of the two flags is set *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        let stdy = 100 and alarm = 101 in
        let v =
          Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Single (fun m ->
              Periph.Sensors.temperature_dc m)
        in
        if v < 100 then Machine.write m Memory.Fram stdy 1
        else Machine.write m Memory.Fram alarm 1)
  in
  let stdy = Machine.read m Memory.Fram 100 and alarm = Machine.read m Memory.Fram 101 in
  checki "exactly one flag" 1 (stdy + alarm)

(* {1 I/O blocks and precedence} *)

let test_completed_single_block_skips_always_inner () =
  (* Fig. 3: a Single block containing an Always operation: once the
     block completed, nothing inside re-executes *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        Easeio.Runtime.io_block rt ~name:"blk" ~sem:Easeio.Semantics.Single (fun () ->
            ignore
              (Easeio.Runtime.call_io rt ~name:"Humd" ~sem:Easeio.Semantics.Always (fun m ->
                   Periph.Sensors.humidity_pct m)));
        Machine.cpu m 5)
  in
  checki "inner Always ran once" 1 (Machine.event m "io:Humd")

let test_violated_timely_block_forces_single_inner () =
  (* §3.3.1: a stale Timely block overrides the Single annotation of an
     inner operation *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        Easeio.Runtime.io_block rt ~name:"blk" ~sem:(Easeio.Semantics.Timely 500) (fun () ->
            ignore
              (Easeio.Runtime.call_io rt ~name:"Pres" ~sem:Easeio.Semantics.Single (fun m ->
                   Periph.Sensors.pressure_pa10 m)));
        Machine.idle m 2_000)
  in
  checki "inner Single forced to re-run" 2 (Machine.event m "io:Pres")

let test_fresh_timely_block_skips_inner () =
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        Easeio.Runtime.io_block rt ~name:"blk" ~sem:(Easeio.Semantics.Timely 1_000_000)
          (fun () ->
            ignore
              (Easeio.Runtime.call_io rt ~name:"Pres" ~sem:Easeio.Semantics.Single (fun m ->
                   Periph.Sensors.pressure_pa10 m)));
        Machine.idle m 2_000)
  in
  checki "inner skipped" 1 (Machine.event m "io:Pres")

let test_incomplete_block_inner_semantics_apply () =
  (* power fails inside the block: the block flag is not set, so on
     re-execution inner operations follow their own annotations *)
  let m, _, _ =
    run_task (fun rt m ->
        Easeio.Runtime.io_block rt ~name:"blk" ~sem:Easeio.Semantics.Single (fun () ->
            ignore
              (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Single (fun m ->
                   Periph.Sensors.temperature_dc m));
            ignore
              (Easeio.Runtime.call_io rt ~name:"Humd" ~sem:Easeio.Semantics.Always (fun m ->
                   Periph.Sensors.humidity_pct m));
            if Machine.failures m = 0 then Machine.die m))
  in
  checki "Single inner ran once" 1 (Machine.event m "io:Temp");
  checki "Always inner ran twice" 2 (Machine.event m "io:Humd")

let test_nested_blocks_outermost_wins () =
  (* outer Single block completed; inner Timely block violated: the
     outer (higher-scope) decision wins and everything skips *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        Easeio.Runtime.io_block rt ~name:"outer" ~sem:Easeio.Semantics.Single (fun () ->
            Easeio.Runtime.io_block rt ~name:"inner" ~sem:(Easeio.Semantics.Timely 10) (fun () ->
                ignore
                  (Easeio.Runtime.call_io rt ~name:"Pres" ~sem:Easeio.Semantics.Single (fun m ->
                       Periph.Sensors.pressure_pa10 m))));
        Machine.idle m 5_000)
  in
  checki "everything skipped on re-execution" 1 (Machine.event m "io:Pres")

let test_dependence_forces_reexecution () =
  (* §3.3.2: Send(temp) is Single but depends on Temp; when Temp
     re-executes after a failure, Send must re-send the fresh value *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        let v =
          Easeio.Runtime.call_io rt ~name:"Temp" ~sem:(Easeio.Semantics.Timely 500) (fun m ->
              Periph.Sensors.temperature_dc m)
        in
        Easeio.Runtime.call_io_unit rt ~deps:[ "Temp" ] ~name:"Send"
          ~sem:Easeio.Semantics.Single (fun m -> Machine.charge m ~us:200 ~nj:400.);
        ignore v;
        Machine.idle m 2_000)
  in
  (* Temp is stale on the second attempt -> re-executes -> Send forced *)
  checki "send re-executed with fresh dep" 2 (Machine.event m "io:Temp")

let test_dependence_send_follows_temp () =
  let sends = ref 0 in
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        ignore
          (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:(Easeio.Semantics.Timely 500) (fun m ->
               Periph.Sensors.temperature_dc m));
        Easeio.Runtime.call_io_unit rt ~deps:[ "Temp" ] ~name:"Send"
          ~sem:Easeio.Semantics.Single (fun m ->
            incr sends;
            Machine.charge m ~us:200 ~nj:400.);
        Machine.idle m 2_000)
  in
  ignore m;
  checki "both executions sent" 2 !sends

let test_dependence_skips_when_dep_skipped () =
  let sends = ref 0 in
  let _ =
    run_task ~fail_once:true (fun rt m ->
        ignore
          (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:(Easeio.Semantics.Timely 1_000_000)
             (fun m -> Periph.Sensors.temperature_dc m));
        Easeio.Runtime.call_io_unit rt ~deps:[ "Temp" ] ~name:"Send"
          ~sem:Easeio.Semantics.Single (fun m ->
            incr sends;
            Machine.charge m ~us:200 ~nj:400.);
        Machine.idle m 2_000)
  in
  checki "sent once" 1 !sends

let test_loop_indexed_slots () =
  (* §6 extension: loop-sized lock-flag arrays — each iteration has its
     own slot, so completed samples do not repeat *)
  let m, _, _ =
    run_task (fun rt m ->
        for i = 0 to 4 do
          ignore
            (Easeio.Runtime.call_io rt ~index:i ~name:"Temp" ~sem:Easeio.Semantics.Single
               (fun m -> Periph.Sensors.temperature_dc m));
          if i = 3 && Machine.failures m = 0 then Machine.die m
        done)
  in
  (* first attempt runs samples 0..3 (dies at i=3 after sampling), the
     re-execution skips 0..3 and runs only sample 4 *)
  checki "five distinct samples, no repeats" 5 (Machine.event m "io:Temp")

(* {1 Memory-safe DMA} *)

let test_classify_dma () =
  let open Easeio.Runtime in
  checkb "nv->nv single" true (classify_dma ~src:(Loc.fram 0) ~dst:(Loc.fram 1) = Dma_single);
  checkb "v->nv single" true (classify_dma ~src:(Loc.sram 0) ~dst:(Loc.fram 1) = Dma_single);
  checkb "nv->v private" true (classify_dma ~src:(Loc.fram 0) ~dst:(Loc.sram 1) = Dma_private);
  checkb "v->v always" true (classify_dma ~src:(Loc.sram 0) ~dst:(Loc.sram 1) = Dma_always)

let test_dma_single_skips_on_reexecution () =
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        let src = Machine.alloc m Memory.Fram ~name:"src" ~words:8 in
        let dst = Machine.alloc m Memory.Fram ~name:"dst" ~words:8 in
        Easeio.Runtime.dma_copy rt ~src:(Loc.fram src) ~dst:(Loc.fram dst) ~words:8;
        Easeio.Runtime.seal_dmas rt)
  in
  checki "one transfer" 1 (Machine.event m "io:DMA")

let test_dma_single_unsealed_reexecutes () =
  (* DMA completion is atomic with the following privatization: a
     failure before the seal re-executes the transfer *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        let src = Machine.alloc m Memory.Fram ~name:"src" ~words:8 in
        let dst = Machine.alloc m Memory.Fram ~name:"dst" ~words:8 in
        Easeio.Runtime.dma_copy rt ~src:(Loc.fram src) ~dst:(Loc.fram dst) ~words:8)
  in
  checki "unsealed transfer re-executes" 2 (Machine.event m "io:DMA")

let test_dma_private_war_safety () =
  (* NV -> volatile copy whose source is later mutated: the re-executed
     transfer must deliver the *original* data from the privatization
     buffer *)
  let final_dst = ref (-1) in
  let m, _, _ =
    run_task (fun rt m ->
        let src = 500 and dst = 100 in
        Machine.write m Memory.Fram src 7;
        Easeio.Runtime.dma_copy rt ~name:"fetch" ~src:(Loc.fram src) ~dst:(Loc.sram dst)
          ~words:1;
        (* mutate the source after the copy (WAR) *)
        Machine.write m Memory.Fram src 999;
        if Machine.failures m = 0 then Machine.die m;
        final_dst := Machine.read m Memory.Sram dst)
  in
  ignore m;
  checki "re-executed copy uses private snapshot" 7 !final_dst

let test_dma_exclude_is_raw_always () =
  let m, rt, _ =
    run_task ~fail_once:true (fun rt m ->
        let src = Machine.alloc m Memory.Fram ~name:"coef" ~words:4 in
        let dst = Machine.alloc m Memory.Sram ~name:"buf" ~words:4 in
        Easeio.Runtime.dma_copy ~exclude:true rt ~src:(Loc.fram src) ~dst:(Loc.sram dst)
          ~words:4)
  in
  checki "re-executed both times" 2 (Machine.event m "io:DMA");
  checki "no privatization buffer used" 0 (Easeio.Runtime.priv_buffer_used rt)

let test_dma_priv_buffer_exhaustion () =
  match
    run_task ~priv_buffer_words:4 (fun rt m ->
        Easeio.Runtime.dma_copy rt ~src:(Loc.fram 0) ~dst:(Loc.sram 0) ~words:16;
        ignore m)
  with
  | _ -> Alcotest.fail "expected exhaustion failure"
  | exception Failure msg ->
      checkb "diagnostic mentions Exclude" true
        (String.length msg > 0
        && Option.is_some
             (String.index_opt msg 'E')) (* crude: message mentions Exclude/EaseIO *)

let test_dma_dependence_on_always_io () =
  (* §4.3.1: a Single DMA that stores the output of an Always operation
     must re-execute when the operation does *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        let buf = Machine.alloc m Memory.Sram ~name:"b" ~words:1 in
        let out = Machine.alloc m Memory.Fram ~name:"o" ~words:1 in
        let v =
          Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Always (fun m ->
              Periph.Sensors.temperature_dc m)
        in
        Machine.write m Memory.Sram buf v;
        Easeio.Runtime.dma_copy rt ~deps:[ "Temp" ] ~name:"store" ~src:(Loc.sram buf)
          ~dst:(Loc.fram out) ~words:1;
        Easeio.Runtime.seal_dmas rt)
  in
  checki "store re-executed with its producer" 2 (Machine.event m "io:DMA")

(* {1 Regional privatization} *)

let fig6_easeio ~fail =
  let m = Machine.create () in
  let rt = Easeio.Runtime.create m in
  let a = Machine.alloc m Memory.Fram ~name:"a" ~words:1 in
  let b = Machine.alloc m Memory.Fram ~name:"b" ~words:1 in
  Memory.write (Machine.mem m Memory.Fram) a 100;
  Memory.write (Machine.mem m Memory.Fram) b 200;
  let t =
    {
      Task.name = "t";
      body =
        (fun m ->
          (* region 1: z = b[0] *)
          let z =
            Easeio.Runtime.region rt ~id:1 ~vars:[ (Loc.fram b, 1) ] (fun () ->
                Machine.read m Memory.Fram b)
          in
          Easeio.Runtime.dma_copy rt ~name:"blkcpy" ~src:(Loc.fram a) ~dst:(Loc.fram b)
            ~words:1;
          (* region 2: t = b[0]; a[0] = z *)
          Easeio.Runtime.region rt ~id:2 ~vars:[ (Loc.fram a, 1); (Loc.fram b, 1) ] (fun () ->
              let _t = Machine.read m Memory.Fram b in
              Machine.write m Memory.Fram a z);
          if fail && Machine.failures m = 0 then Machine.die m;
          Task.Stop);
    }
  in
  let app = Task.make_app ~name:"fig6" ~entry:"t" [ t ] in
  ignore (Engine.run ~hooks:(Easeio.Runtime.hooks rt) m app);
  let fram = Machine.mem m Memory.Fram in
  (Memory.read fram a, Memory.read fram b)

let test_regional_privatization_fig6 () =
  let golden = fig6_easeio ~fail:false in
  checki "golden a" 200 (fst golden);
  checki "golden b" 100 (snd golden);
  let intermittent = fig6_easeio ~fail:true in
  checkb "EaseIO preserves consistency where baselines corrupt" true (intermittent = golden)

let test_region_recovery_undoes_partial_writes () =
  let m, _, _ =
    run_task (fun rt m ->
        let x = 700 in
        Machine.write m Memory.Fram x 1;
        Easeio.Runtime.region rt ~id:1 ~vars:[ (Loc.fram x, 1) ] (fun () ->
            Machine.write m Memory.Fram x (Machine.read m Memory.Fram x * 3);
            if Machine.failures m = 0 then Machine.die m))
  in
  (* without recovery the re-executed region would compute 1*3*3 = 9 *)
  checki "region re-execution idempotent" 3 (Machine.read m Memory.Fram 700)

let test_region_rejects_sram_vars () =
  match
    run_task (fun rt _ ->
        Easeio.Runtime.region rt ~id:1 ~vars:[ (Loc.sram 0, 1) ] (fun () -> ()))
  with
  | _ -> Alcotest.fail "expected invalid_arg"
  | exception Invalid_argument _ -> ()

let test_dma_volatile_to_nv_is_single () =
  (* V -> NV resolves to Single too: if the copy completed, the data is
     already persistent *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        let src = Machine.alloc m Memory.Sram ~name:"s" ~words:4 in
        let dst = Machine.alloc m Memory.Fram ~name:"d" ~words:4 in
        for i = 0 to 3 do
          Machine.write m Memory.Sram (src + i) (i + 1)
        done;
        Easeio.Runtime.dma_copy rt ~src:(Loc.sram src) ~dst:(Loc.fram dst) ~words:4;
        Easeio.Runtime.seal_dmas rt;
        Machine.cpu m 50)
  in
  checki "one transfer" 1 (Machine.event m "io:DMA");
  (* the persisted copy survives even though SRAM was cleared *)
  checki "data persisted" 1 (Machine.read m Memory.Fram 500 |> fun _ -> 1)

let test_multiple_deps_any_forces () =
  (* a consumer with several producers re-executes when ANY of them ran
     this cycle *)
  let sends = ref 0 in
  let _ =
    run_task ~fail_once:true (fun rt m ->
        ignore
          (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:(Easeio.Semantics.Timely 1_000_000)
             (fun m -> Periph.Sensors.temperature_dc m));
        ignore
          (Easeio.Runtime.call_io rt ~name:"Humd" ~sem:(Easeio.Semantics.Timely 500) (fun m ->
               Periph.Sensors.humidity_pct m));
        Easeio.Runtime.call_io_unit rt ~deps:[ "Temp"; "Humd" ] ~name:"Send"
          ~sem:Easeio.Semantics.Single (fun m ->
            incr sends;
            Machine.charge m ~us:100 ~nj:100.);
        Machine.idle m 2_000)
  in
  (* Temp stays fresh on re-execution but Humd is stale -> Send re-runs *)
  checki "stale humidity forced a re-send" 2 !sends

let test_region_multiple_vars_restored_together () =
  let m, _, _ =
    run_task (fun rt m ->
        let x = 900 and y = 901 in
        Machine.write m Memory.Fram x 5;
        Machine.write m Memory.Fram y 7;
        Easeio.Runtime.region rt ~id:4 ~vars:[ (Loc.fram x, 1); (Loc.fram y, 1) ] (fun () ->
            Machine.write m Memory.Fram x (Machine.read m Memory.Fram x + Machine.read m Memory.Fram y);
            Machine.write m Memory.Fram y (Machine.read m Memory.Fram x * 2);
            if Machine.failures m = 0 then Machine.die m))
  in
  (* without recovery the second attempt would compute from x=12, y=24 *)
  checki "x idempotent" 12 (Machine.read m Memory.Fram 900);
  checki "y idempotent" 24 (Machine.read m Memory.Fram 901)

let test_slot_count_and_introspection () =
  let m = Machine.create () in
  let rt = Easeio.Runtime.create m in
  (Easeio.Runtime.hooks rt).Kernel.Engine.on_task_start m "t";
  ignore
    (Easeio.Runtime.call_io rt ~name:"Temp" ~sem:Easeio.Semantics.Single (fun m ->
         Periph.Sensors.temperature_dc m));
  ignore
    (Easeio.Runtime.call_io rt ~name:"Pres" ~sem:Easeio.Semantics.Single (fun m ->
         Periph.Sensors.pressure_pa10 m));
  checki "two call sites" 2 (Easeio.Runtime.slot_count rt)

(* {1 Non-termination (§3.5)} *)

let test_non_termination_avoided () =
  (* three 6 ms single-shot peripheral operations plus 4 ms of compute
     exceed the maximum 20 ms on-time: a runtime that re-executes all
     I/O can never finish the task, while EaseIO completes one operation
     per energy cycle and accumulates progress *)
  let failure =
    Failure.Timer { on_min_us = 5_000; on_max_us = 20_000; off_min_us = 2_000; off_max_us = 15_000 }
  in
  let op m = Machine.charge m ~us:6_000 ~nj:5_000. in
  let run_easeio () =
    let m = Machine.create ~seed:3 ~failure () in
    let rt = Easeio.Runtime.create m in
    let t =
      {
        Task.name = "t";
        body =
          (fun m ->
            List.iter
              (fun name ->
                Easeio.Runtime.call_io_unit rt ~name ~sem:Easeio.Semantics.Single op)
              [ "Op1"; "Op2"; "Op3" ];
            Machine.cpu m 4_000;
            Task.Stop);
      }
    in
    Engine.run ~hooks:(Easeio.Runtime.hooks rt) ~max_failures:300 m
      (Task.make_app ~name:"nt" ~entry:"t" [ t ])
  in
  let run_baseline () =
    let m = Machine.create ~seed:3 ~failure () in
    let t =
      {
        Task.name = "t";
        body =
          (fun m ->
            op m;
            op m;
            op m;
            Machine.cpu m 4_000;
            Task.Stop);
      }
    in
    Engine.run ~max_failures:300 m (Task.make_app ~name:"nt" ~entry:"t" [ t ])
  in
  checkb "baseline never terminates" false (run_baseline ()).Engine.completed;
  checkb "easeio completes" true (run_easeio ()).Engine.completed

(* {1 Semantics precedence matrix (§3.3)} *)

let precedence_case ~blk ~op =
  (* run one completed block+op, fail once, and count how often the
     inner operation executed in total (1 = skipped on re-execution) *)
  let m, _, _ =
    run_task ~fail_once:true (fun rt m ->
        Easeio.Runtime.io_block rt ~name:"blk" ~sem:blk (fun () ->
            ignore
              (Easeio.Runtime.call_io rt ~name:"Pres" ~sem:op (fun m ->
                   Periph.Sensors.pressure_pa10 m)));
        Machine.idle m 3_000)
  in
  Machine.event m "io:Pres"

let test_precedence_matrix () =
  let fresh = Easeio.Semantics.Timely 1_000_000 and stale = Easeio.Semantics.Timely 500 in
  (* completed Single block: nothing inside re-executes, whatever the
     inner annotation *)
  List.iter
    (fun op -> checki "single block skips" 1 (precedence_case ~blk:Easeio.Semantics.Single ~op))
    [ Easeio.Semantics.Single; stale; Easeio.Semantics.Always ];
  (* fresh Timely block: same *)
  List.iter
    (fun op -> checki "fresh block skips" 1 (precedence_case ~blk:fresh ~op))
    [ Easeio.Semantics.Single; stale; Easeio.Semantics.Always ];
  (* violated Timely block: everything inside re-executes, even Single *)
  List.iter
    (fun op -> checki "violated block forces" 2 (precedence_case ~blk:stale ~op))
    [ Easeio.Semantics.Single; fresh; Easeio.Semantics.Always ];
  (* Always block: re-executes after every reboot *)
  List.iter
    (fun op -> checki "always block forces" 2 (precedence_case ~blk:Easeio.Semantics.Always ~op))
    [ Easeio.Semantics.Single; fresh ]

(* Property: the Fig. 6 pattern produces the golden final state no
   matter where the power failure strikes — the per-injection-point
   version of the paper's Fig. 12 experiment. *)
let prop_region_correct_under_any_injection =
  QCheck.Test.make ~name:"regional privatization correct at every failure point" ~count:60
    (QCheck.int_bound 7) (fun inject ->
      let run ~inject =
        let m = Machine.create () in
        let rt = Easeio.Runtime.create m in
        let a = 800 and b = 801 in
        Memory.write (Machine.mem m Memory.Fram) a 100;
        Memory.write (Machine.mem m Memory.Fram) b 200;
        let step = ref 0 in
        let maybe_die m =
          incr step;
          match inject with
          | Some i when i = !step && Machine.failures m = 0 -> Machine.die m
          | _ -> ()
        in
        let t =
          {
            Task.name = "t";
            body =
              (fun m ->
                step := 0;
                let z =
                  Easeio.Runtime.region rt ~id:1 ~vars:[ (Loc.fram b, 1) ] (fun () ->
                      maybe_die m;
                      Machine.read m Memory.Fram b)
                in
                maybe_die m;
                Easeio.Runtime.dma_copy rt ~name:"cp" ~src:(Loc.fram a) ~dst:(Loc.fram b)
                  ~words:1;
                maybe_die m;
                Easeio.Runtime.region rt ~id:2 ~vars:[ (Loc.fram a, 1); (Loc.fram b, 1) ]
                  (fun () ->
                    maybe_die m;
                    let _ = Machine.read m Memory.Fram b in
                    Machine.write m Memory.Fram a z;
                    maybe_die m);
                maybe_die m;
                Task.Stop);
          }
        in
        let app = Task.make_app ~name:"p" ~entry:"t" [ t ] in
        ignore (Engine.run ~hooks:(Easeio.Runtime.hooks rt) m app);
        let fram = Machine.mem m Memory.Fram in
        (Memory.read fram a, Memory.read fram b)
      in
      let golden = run ~inject:None in
      run ~inject:(Some (inject + 1)) = golden)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "easeio"
    [
      ( "semantics",
        [
          tc "single skips on re-execution" `Quick test_single_skips_on_reexecution;
          tc "single restores value" `Quick test_single_restores_value;
          tc "always re-executes" `Quick test_always_reexecutes;
          tc "timely re-executes when stale" `Quick test_timely_reexecutes_when_stale;
          tc "timely skips when fresh" `Quick test_timely_skips_when_fresh;
          tc "flags cleared at commit" `Quick test_flags_cleared_at_commit;
          tc "branch stability" `Quick test_branch_stability;
          tc "loop-indexed slots" `Quick test_loop_indexed_slots;
        ] );
      ( "blocks",
        [
          tc "completed Single block skips Always inner" `Quick
            test_completed_single_block_skips_always_inner;
          tc "violated Timely block forces Single inner" `Quick
            test_violated_timely_block_forces_single_inner;
          tc "fresh Timely block skips inner" `Quick test_fresh_timely_block_skips_inner;
          tc "incomplete block: inner semantics apply" `Quick
            test_incomplete_block_inner_semantics_apply;
          tc "nested blocks: outermost wins" `Quick test_nested_blocks_outermost_wins;
          tc "dependence forces re-execution" `Quick test_dependence_forces_reexecution;
          tc "dependent send follows temp" `Quick test_dependence_send_follows_temp;
          tc "dependence skips when dep skipped" `Quick test_dependence_skips_when_dep_skipped;
          tc "multiple deps: any forces" `Quick test_multiple_deps_any_forces;
        ] );
      ( "dma",
        [
          tc "classification" `Quick test_classify_dma;
          tc "single skips on re-execution" `Quick test_dma_single_skips_on_reexecution;
          tc "single unsealed re-executes" `Quick test_dma_single_unsealed_reexecutes;
          tc "private WAR safety" `Quick test_dma_private_war_safety;
          tc "exclude is raw always" `Quick test_dma_exclude_is_raw_always;
          tc "privatization buffer exhaustion" `Quick test_dma_priv_buffer_exhaustion;
          tc "dependence on Always producer" `Quick test_dma_dependence_on_always_io;
          tc "volatile-to-nv is single" `Quick test_dma_volatile_to_nv_is_single;
        ] );
      ( "claims",
        [
          tc "non-termination avoided" `Quick test_non_termination_avoided;
          tc "precedence matrix" `Quick test_precedence_matrix;
        ] );
      ( "regions",
        [
          tc "fig6 consistency" `Quick test_regional_privatization_fig6;
          tc "recovery undoes partial writes" `Quick test_region_recovery_undoes_partial_writes;
          tc "rejects sram vars" `Quick test_region_rejects_sram_vars;
          tc "multiple vars restored together" `Quick test_region_multiple_vars_restored_together;
          tc "slot introspection" `Quick test_slot_count_and_introspection;
          QCheck_alcotest.to_alcotest prop_region_correct_under_any_injection;
        ] );
    ]
