(* Unit and property tests for the platform substrate. *)

open Platform

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 20 in
    checkb "in range" true (v >= 5 && v <= 20)
  done

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  checkb "streams differ" true (xs <> ys)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"rng float in [0,bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.float r bound in
      v >= 0. && v < bound)

(* {1 Layout} *)

let test_layout_alloc () =
  let l = Layout.create ~words:100 in
  let a = Layout.alloc l ~name:"a" ~words:10 in
  let b = Layout.alloc l ~name:"b" ~words:20 in
  checki "first at 0" 0 a;
  checki "second after first" 10 b;
  checki "used" 30 (Layout.used l)

let test_layout_exhaustion () =
  let l = Layout.create ~words:10 in
  ignore (Layout.alloc l ~name:"a" ~words:8);
  Alcotest.check_raises "overflow"
    (Failure "Layout.alloc: out of memory allocating 8 words for b (used 8/10)") (fun () ->
      ignore (Layout.alloc l ~name:"b" ~words:8))

let test_layout_prefix_accounting () =
  let l = Layout.create ~words:100 in
  ignore (Layout.alloc l ~name:"rt.flag.x" ~words:3);
  ignore (Layout.alloc l ~name:"app.buf" ~words:40);
  ignore (Layout.alloc l ~name:"rt.flag.y" ~words:2);
  checki "rt words" 5 (Layout.used_matching l ~prefix:"rt.");
  checki "app words" 40 (Layout.used_matching l ~prefix:"app.")

(* {1 Memory} *)

let test_memory_rw () =
  let m = Memory.create Fram ~words:16 in
  Memory.write m 3 42;
  checki "read back" 42 (Memory.read m 3);
  checki "reads counted" 1 (Memory.reads m);
  checki "writes counted" 1 (Memory.writes m)

let test_memory_bounds () =
  let m = Memory.create Sram ~words:4 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Memory.read: address 4 out of bounds for SRAM[4]") (fun () ->
      ignore (Memory.read m 4))

let test_memory_blit_overlap () =
  let m = Memory.create Fram ~words:8 in
  for i = 0 to 7 do
    Memory.write m i i
  done;
  Memory.blit ~src:m ~src_addr:0 ~dst:m ~dst_addr:2 ~words:4;
  checki "overlap like Array.blit" 0 (Memory.read m 2);
  checki "overlap like Array.blit" 3 (Memory.read m 5)

let test_memory_snapshot_restore () =
  let m = Memory.create Fram ~words:8 in
  Memory.write m 1 11;
  let snap = Memory.snapshot m in
  Memory.write m 1 99;
  Memory.restore m snap;
  checki "restored" 11 (Memory.read m 1)

(* {1 Capacitor} *)

let test_capacitor_drain_dead () =
  let c = Capacitor.create ~capacity_nj:100. ~on_level_nj:60. in
  checkb "full start" true (Capacitor.ready c);
  (match Capacitor.drain c 99. with `Ok -> () | `Dead -> Alcotest.fail "should survive");
  (match Capacitor.drain c 2. with `Dead -> () | `Ok -> Alcotest.fail "should die");
  check (Alcotest.float 0.001) "clamped" 0. (Capacitor.level c)

let test_capacitor_harvest_saturates () =
  let c = Capacitor.create ~capacity_nj:100. ~on_level_nj:60. in
  ignore (Capacitor.drain c 50.);
  Capacitor.harvest c 1000.;
  check (Alcotest.float 0.001) "saturated" 100. (Capacitor.level c)

(* {1 Harvester} *)

let test_rf_decays_with_distance () =
  let near = Harvester.rf ~distance_inch:52. () in
  let far = Harvester.rf ~distance_inch:64. () in
  checkb "closer harvests more" true (Harvester.power near 0 > Harvester.power far 0)

let test_harvester_energy_integration () =
  let h = Harvester.constant 2.0 in
  check (Alcotest.float 0.001) "linear" 2000. (Harvester.energy h ~at:0 ~dur:1000)

let test_harvester_time_to_harvest () =
  let h = Harvester.constant 4.0 in
  (match Harvester.time_to_harvest h ~at:0 ~nj:100. with
  | Some t -> checki "25us" 25 t
  | None -> Alcotest.fail "should harvest");
  match Harvester.time_to_harvest (Harvester.constant 0.) ~at:0 ~nj:1. with
  | None -> ()
  | Some _ -> Alcotest.fail "dead source"

let test_trace_harvester_loops () =
  let h = Harvester.trace ~period_us:10 [| 1.0; 3.0 |] in
  check (Alcotest.float 0.001) "sample 0" 1.0 (Harvester.power h 5);
  check (Alcotest.float 0.001) "sample 1" 3.0 (Harvester.power h 15);
  check (Alcotest.float 0.001) "wraps" 1.0 (Harvester.power h 25)

(* {1 World} *)

let test_world_deterministic () =
  let a = World.create ~seed:5 () and b = World.create ~seed:5 () in
  for t = 0 to 50 do
    let at = t * 997 in
    checki "same temp" (World.temperature_dc a at) (World.temperature_dc b at)
  done

let test_world_varies_over_time () =
  let w = World.create () in
  let vals = List.init 50 (fun i -> World.temperature_dc w (i * 3_000)) in
  checkb "not constant" true (List.exists (fun v -> v <> List.hd vals) vals)

let test_world_humidity_range () =
  let w = World.create () in
  for t = 0 to 200 do
    let h = World.humidity_pct w (t * 1_111) in
    checkb "0..100" true (h >= 0 && h <= 100)
  done

(* {1 Machine} *)

let test_machine_charge_advances_time () =
  let m = Machine.create () in
  Machine.cpu m 100;
  checki "100 cycles = 100us" 100 (Machine.now m)

let test_machine_accounting_tags () =
  let m = Machine.create () in
  Machine.cpu m 10;
  Machine.with_tag m Machine.Overhead (fun () -> Machine.cpu m 5);
  let a = Machine.take_attempt m in
  checki "app" 10 a.Machine.app_us;
  checki "ovh" 5 a.Machine.ovh_us;
  let a2 = Machine.take_attempt m in
  checki "buckets reset" 0 a2.Machine.app_us

let test_machine_memory_charged () =
  let m = Machine.create () in
  let addr = Machine.alloc m Memory.Fram ~name:"x" ~words:1 in
  Machine.write m Memory.Fram addr 7;
  checki "written" 7 (Machine.read m Memory.Fram addr);
  checkb "time charged" true (Machine.now m > 0)

let test_timer_failure_fires () =
  let m =
    Machine.create ~seed:11
      ~failure:(Failure.Timer { on_min_us = 100; on_max_us = 200; off_min_us = 10; off_max_us = 20 })
      ()
  in
  Machine.boot m;
  match
    for _ = 1 to 1000 do
      Machine.cpu m 1
    done
  with
  | () -> Alcotest.fail "should have failed within 200us"
  | exception Machine.Power_failure -> checkb "died within window" true (Machine.now m <= 200)

let test_reboot_clears_sram_keeps_fram () =
  let m =
    Machine.create
      ~failure:(Failure.Timer { on_min_us = 50; on_max_us = 60; off_min_us = 5; off_max_us = 5 })
      ()
  in
  Machine.boot m;
  let f = Machine.alloc m Memory.Fram ~name:"f" ~words:1 in
  let s = Machine.alloc m Memory.Sram ~name:"s" ~words:1 in
  (try
     Machine.write m Memory.Fram f 42;
     Machine.write m Memory.Sram s 43;
     for _ = 1 to 100 do
       Machine.cpu m 1
     done
   with Machine.Power_failure -> ());
  Machine.reboot m;
  checki "fram survives" 42 (Machine.read m Memory.Fram f);
  checki "sram cleared" 0 (Machine.read m Memory.Sram s);
  checki "failure counted" 1 (Machine.failures m)

let test_energy_driven_failure_and_recharge () =
  let m =
    Machine.create ~failure:Failure.Energy_driven
      ~capacitor:(Capacitor.create ~capacity_nj:500. ~on_level_nj:400.)
      ~harvester:(Harvester.constant 0.1) ()
  in
  Machine.boot m;
  (match
     for _ = 1 to 10_000 do
       Machine.cpu m 1
     done
   with
  | () -> Alcotest.fail "capacitor should empty"
  | exception Machine.Power_failure -> ());
  let before = Machine.now m in
  Machine.reboot m;
  checkb "recharge takes time" true (Machine.now m > before);
  checkb "ready after reboot" true (Capacitor.ready (Machine.capacitor m))

let test_machine_events () =
  let m = Machine.create () in
  Machine.bump m "io:Temp";
  Machine.bump m "io:Temp";
  checki "counted" 2 (Machine.event m "io:Temp");
  checki "absent is 0" 0 (Machine.event m "io:Nope")

let test_timekeeper_monotonic () =
  let m = Machine.create () in
  let t1 = Timekeeper.read m in
  Machine.cpu m 500;
  let t2 = Timekeeper.read m in
  checkb "monotonic" true (t2 >= t1);
  checki "quantized" 0 (t2 mod Timekeeper.resolution_us)

let prop_timer_failure_within_window =
  QCheck.Test.make ~name:"timer failure always lands in [on_min,on_max]" ~count:100
    QCheck.small_int (fun seed ->
      let m =
        Machine.create ~seed
          ~failure:
            (Failure.Timer { on_min_us = 5_000; on_max_us = 20_000; off_min_us = 1; off_max_us = 1 })
          ()
      in
      Machine.boot m;
      match
        for _ = 1 to 100_000 do
          Machine.cpu m 1
        done
      with
      | () -> false
      | exception Machine.Power_failure -> Machine.now m >= 5_000 && Machine.now m <= 20_000)

(* Invariant: attempt buckets account for exactly the machine's total
   consumption, whatever mix of tags/ops ran. *)
let prop_attempt_buckets_conserve_energy =
  QCheck.Test.make ~name:"attempt buckets conserve energy and time" ~count:200
    QCheck.(pair small_int (small_list (int_bound 2)))
    (fun (seed, ops) ->
      let m = Machine.create ~seed () in
      let acc_us = ref 0 and acc_nj = ref 0. in
      let flush () =
        let a = Machine.take_attempt m in
        acc_us := !acc_us + a.Machine.app_us + a.Machine.ovh_us;
        acc_nj := !acc_nj +. a.Machine.app_nj +. a.Machine.ovh_nj
      in
      List.iter
        (fun op ->
          match op with
          | 0 -> Machine.cpu m 7
          | 1 -> Machine.with_tag m Machine.Overhead (fun () -> Machine.charge m ~us:3 ~nj:2.5)
          | _ -> flush ())
        ops;
      flush ();
      abs_float (!acc_nj -. Machine.energy_used_nj m) < 1e-6 && !acc_us = Machine.now m)

let prop_world_bucketed_noise_is_stable =
  QCheck.Test.make ~name:"world readings are pure functions of time" ~count:200
    QCheck.(pair small_int (int_bound 1_000_000))
    (fun (seed, at) ->
      let w = World.create ~seed () in
      World.temperature_dc w at = World.temperature_dc w at
      && World.image_pixel w at 3 = World.image_pixel w at 3)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "platform"
    [
      ( "rng",
        [
          tc "deterministic" `Quick test_rng_deterministic;
          tc "bounds" `Quick test_rng_bounds;
          tc "split independent" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest prop_rng_float_bounds;
        ] );
      ( "layout",
        [
          tc "alloc" `Quick test_layout_alloc;
          tc "exhaustion" `Quick test_layout_exhaustion;
          tc "prefix accounting" `Quick test_layout_prefix_accounting;
        ] );
      ( "memory",
        [
          tc "read/write" `Quick test_memory_rw;
          tc "bounds" `Quick test_memory_bounds;
          tc "blit overlap" `Quick test_memory_blit_overlap;
          tc "snapshot/restore" `Quick test_memory_snapshot_restore;
        ] );
      ( "capacitor",
        [
          tc "drain to death" `Quick test_capacitor_drain_dead;
          tc "harvest saturates" `Quick test_capacitor_harvest_saturates;
        ] );
      ( "harvester",
        [
          tc "rf decays with distance" `Quick test_rf_decays_with_distance;
          tc "energy integration" `Quick test_harvester_energy_integration;
          tc "time to harvest" `Quick test_harvester_time_to_harvest;
          tc "trace loops" `Quick test_trace_harvester_loops;
        ] );
      ( "world",
        [
          tc "deterministic" `Quick test_world_deterministic;
          tc "varies over time" `Quick test_world_varies_over_time;
          tc "humidity in range" `Quick test_world_humidity_range;
        ] );
      ( "machine",
        [
          tc "charge advances time" `Quick test_machine_charge_advances_time;
          tc "accounting tags" `Quick test_machine_accounting_tags;
          tc "memory charged" `Quick test_machine_memory_charged;
          tc "timer failure fires" `Quick test_timer_failure_fires;
          tc "reboot clears sram keeps fram" `Quick test_reboot_clears_sram_keeps_fram;
          tc "energy-driven failure and recharge" `Quick test_energy_driven_failure_and_recharge;
          tc "events" `Quick test_machine_events;
          tc "timekeeper monotonic" `Quick test_timekeeper_monotonic;
          QCheck_alcotest.to_alcotest prop_timer_failure_within_window;
          QCheck_alcotest.to_alcotest prop_attempt_buckets_conserve_energy;
          QCheck_alcotest.to_alcotest prop_world_bucketed_noise_is_stable;
        ] );
    ]
