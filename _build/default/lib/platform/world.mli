(** Deterministic physical environment.

    Sensors read a shared world whose quantities vary over simulated
    time. Values are computed by a stateless hash of (seed, time bucket),
    so a reading depends only on *when* it is taken — exactly the
    property that makes re-executed I/O dangerous: a task that re-reads a
    sensor after a power failure can observe a different value and take a
    different branch (the paper's "unsafe program execution" problem). *)

type t

val create : ?seed:int -> unit -> t

val temperature_dc : t -> Units.time_us -> int
(** Ambient temperature in tenths of a degree Celsius. Fluctuates around
    ~10 °C so that threshold branches flip across failures. *)

val humidity_pct : t -> Units.time_us -> int
(** Relative humidity, percent. *)

val pressure_pa10 : t -> Units.time_us -> int
(** Barometric pressure in tens of pascals. *)

val light_lux : t -> Units.time_us -> int

val image_pixel : t -> Units.time_us -> int -> int
(** [image_pixel w t i] is pixel [i] of the scene captured at time [t],
    in [0, 255]. The whole frame shares the capture time, so one capture
    is internally consistent. *)

val weather_class : t -> Units.time_us -> int
(** Ground-truth weather label in [0, 3] used to generate classifier
    scenes; a slowly-varying function of time. *)
