type entry = { name : string; addr : int; words : int }
type t = { capacity : int; mutable next : int; mutable entries : entry list }

let create ~words = { capacity = words; next = 0; entries = [] }

let alloc t ~name ~words =
  if words < 0 then invalid_arg "Layout.alloc: negative size";
  if t.next + words > t.capacity then
    failwith
      (Printf.sprintf "Layout.alloc: out of memory allocating %d words for %s (used %d/%d)"
         words name t.next t.capacity);
  let addr = t.next in
  t.next <- t.next + words;
  t.entries <- { name; addr; words } :: t.entries;
  addr

let used t = t.next
let capacity t = t.capacity
let entries t = List.rev t.entries

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let used_matching t ~prefix =
  List.fold_left
    (fun acc e -> if has_prefix ~prefix e.name then acc + e.words else acc)
    0 t.entries
