type t = { seed : int }

let create ?(seed = 42) () = { seed }

(* Noise in [-range, range], constant within a [bucket_us] time window. *)
let noise t ~salt ~bucket_us ~range now =
  if range = 0 then 0
  else
    let h = Rng.hash2 (t.seed + salt) (now / bucket_us) in
    (h mod ((2 * range) + 1)) - range

let sinus ~period_us ~amplitude now =
  let phase = 2.0 *. Float.pi *. float_of_int (now mod period_us) /. float_of_int period_us in
  int_of_float (float_of_int amplitude *. sin phase)

(* Around 10.0 C with a 60 ms swell and per-ms jitter: crosses the 10 C
   threshold used by the paper's running example. *)
let temperature_dc t now =
  100 + sinus ~period_us:60_000 ~amplitude:25 now + noise t ~salt:1 ~bucket_us:1_000 ~range:12 now

let humidity_pct t now =
  let h = 55 + sinus ~period_us:90_000 ~amplitude:20 now + noise t ~salt:2 ~bucket_us:2_000 ~range:8 now in
  max 0 (min 100 h)

let pressure_pa10 t now =
  10_132 + sinus ~period_us:200_000 ~amplitude:40 now + noise t ~salt:3 ~bucket_us:5_000 ~range:15 now

let light_lux t now =
  let l = 500 + sinus ~period_us:150_000 ~amplitude:300 now + noise t ~salt:4 ~bucket_us:2_000 ~range:60 now in
  max 0 l

let weather_class t now = abs (Rng.hash2 (t.seed + 5) (now / 500_000)) mod 4

let image_pixel t now i =
  (* Scene brightness tracks the weather class; per-pixel texture from a
     stateless hash so frames are reproducible. *)
  let base = 40 + (50 * weather_class t now) in
  let tex = Rng.hash2 (t.seed + 6) ((now / 1_000 * 7919) + i) mod 64 in
  min 255 (base + tex)
