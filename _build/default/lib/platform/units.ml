type time_us = int
type energy_nj = float

let us_of_ms ms = ms * 1000
let ms_of_us us = float_of_int us /. 1000.
let uj_of_nj nj = nj /. 1000.
let pp_time ppf us = Format.fprintf ppf "%.2fms" (ms_of_us us)
let pp_energy ppf nj = Format.fprintf ppf "%.2fuJ" (uj_of_nj nj)
