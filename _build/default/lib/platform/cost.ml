type op_cost = { time_us : Units.time_us; energy_nj : Units.energy_nj }

type t = {
  cpu_op : op_cost;
  sram_read : op_cost;
  sram_write : op_cost;
  fram_read : op_cost;
  fram_write : op_cost;
  dma_word : op_cost;
  dma_setup : op_cost;
  lea_element : op_cost;
  lea_setup : op_cost;
  idle_nj_per_us : float;
}

(* MSP430FR5994 @ 1 MHz, ~3.3 V: roughly 120 uA/MHz active -> ~0.4 nJ per
   cycle including leakage; FRAM accesses cost a little more energy than
   SRAM; DMA moves a word per cycle without CPU involvement; LEA processes
   one MAC per cycle at lower energy than the CPU doing the same. *)
let msp430fr5994 =
  {
    cpu_op = { time_us = 1; energy_nj = 0.40 };
    sram_read = { time_us = 1; energy_nj = 0.35 };
    sram_write = { time_us = 1; energy_nj = 0.40 };
    fram_read = { time_us = 1; energy_nj = 0.50 };
    fram_write = { time_us = 1; energy_nj = 0.70 };
    dma_word = { time_us = 1; energy_nj = 0.30 };
    dma_setup = { time_us = 8; energy_nj = 3.0 };
    lea_element = { time_us = 1; energy_nj = 0.25 };
    lea_setup = { time_us = 12; energy_nj = 5.0 };
    idle_nj_per_us = 0.05;
  }

let scale_op f c = { c with energy_nj = c.energy_nj *. f }

let scale f t =
  {
    cpu_op = scale_op f t.cpu_op;
    sram_read = scale_op f t.sram_read;
    sram_write = scale_op f t.sram_write;
    fram_read = scale_op f t.fram_read;
    fram_write = scale_op f t.fram_write;
    dma_word = scale_op f t.dma_word;
    dma_setup = scale_op f t.dma_setup;
    lea_element = scale_op f t.lea_element;
    lea_setup = scale_op f t.lea_setup;
    idle_nj_per_us = t.idle_nj_per_us *. f;
  }
