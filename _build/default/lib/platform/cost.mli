(** Per-operation time and energy cost model.

    Costs are calibrated to a TI MSP430FR5994 running at 1 MHz from a
    ~3.3 V supply (≈0.3 nJ per active cycle), the platform used by the
    EaseIO paper. Absolute values are approximations; what matters for
    the reproduction is that relative magnitudes (peripheral ops ≫ memory
    accesses ≫ CPU ops) match the paper's platform. *)

type op_cost = {
  time_us : Units.time_us;  (** duration of one operation *)
  energy_nj : Units.energy_nj;  (** energy drawn by one operation *)
}

type t = {
  cpu_op : op_cost;  (** one ALU/register instruction *)
  sram_read : op_cost;  (** one 16-bit SRAM word read *)
  sram_write : op_cost;  (** one 16-bit SRAM word write *)
  fram_read : op_cost;  (** one 16-bit FRAM word read *)
  fram_write : op_cost;  (** one 16-bit FRAM word write *)
  dma_word : op_cost;  (** DMA transfer of one word *)
  dma_setup : op_cost;  (** fixed cost to program a DMA transfer *)
  lea_element : op_cost;  (** one LEA vector-MAC element *)
  lea_setup : op_cost;  (** fixed cost to start a LEA command *)
  idle_nj_per_us : float;  (** leakage while the MCU is on *)
}

val msp430fr5994 : t
(** Default profile for the paper's target board at 1 MHz. *)

val scale : float -> t -> t
(** [scale f t] multiplies every energy cost by [f] (time unchanged);
    used for what-if calibration in tests. *)
