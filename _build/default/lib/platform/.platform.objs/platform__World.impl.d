lib/platform/world.ml: Float Rng
