lib/platform/capacitor.ml:
