lib/platform/loc.mli: Format Memory
