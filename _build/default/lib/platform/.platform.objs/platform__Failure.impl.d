lib/platform/failure.ml: Rng Units
