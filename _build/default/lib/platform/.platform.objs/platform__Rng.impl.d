lib/platform/rng.ml: Int64
