lib/platform/machine.mli: Capacitor Cost Failure Harvester Layout Memory Rng Units World
