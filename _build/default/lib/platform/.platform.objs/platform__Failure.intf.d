lib/platform/failure.mli: Rng Units
