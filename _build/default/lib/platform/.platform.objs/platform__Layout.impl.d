lib/platform/layout.ml: List Printf String
