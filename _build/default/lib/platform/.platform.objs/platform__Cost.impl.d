lib/platform/cost.ml: Units
