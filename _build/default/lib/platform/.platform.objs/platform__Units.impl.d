lib/platform/units.ml: Format
