lib/platform/layout.mli:
