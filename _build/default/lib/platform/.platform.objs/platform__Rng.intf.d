lib/platform/rng.mli:
