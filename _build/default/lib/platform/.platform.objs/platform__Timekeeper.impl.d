lib/platform/timekeeper.ml: Machine
