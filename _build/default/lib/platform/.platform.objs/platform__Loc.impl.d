lib/platform/loc.ml: Format Memory
