lib/platform/capacitor.mli:
