lib/platform/timekeeper.mli: Machine Units
