lib/platform/machine.ml: Capacitor Cost Failure Fun Harvester Hashtbl Layout List Memory Option Rng Units World
