lib/platform/harvester.ml: Array Float
