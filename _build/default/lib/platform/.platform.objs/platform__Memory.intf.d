lib/platform/memory.mli: Format
