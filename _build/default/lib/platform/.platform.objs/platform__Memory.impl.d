lib/platform/memory.ml: Array Format Printf
