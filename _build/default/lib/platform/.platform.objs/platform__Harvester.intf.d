lib/platform/harvester.mli: Units
