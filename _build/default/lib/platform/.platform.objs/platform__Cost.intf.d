lib/platform/cost.mli: Units
