lib/platform/world.mli: Units
