exception Power_failure

type tag = App | Overhead

type attempt = { app_us : int; ovh_us : int; app_nj : float; ovh_nj : float }

type t = {
  fram : Memory.t;
  sram : Memory.t;
  fram_layout : Layout.t;
  sram_layout : Layout.t;
  cost : Cost.t;
  failure : Failure.t;
  harvester : Harvester.t;
  cap : Capacitor.t;
  rng : Rng.t;
  world : World.t;
  mutable now : Units.time_us;
  mutable on : bool;
  mutable tag : tag;
  mutable boots : int;
  mutable failures : int;
  mutable critical_depth : int;
  mutable pending_death : bool;
  mutable energy_used : float;
  mutable att_app_us : int;
  mutable att_ovh_us : int;
  mutable att_app_nj : float;
  mutable att_ovh_nj : float;
  events : (string, int) Hashtbl.t;
}

let create ?(seed = 1) ?(cost = Cost.msp430fr5994) ?(failure = Failure.No_failures)
    ?(harvester = Harvester.constant 1.0) ?(capacitor = Capacitor.mf1_powercast)
    ?(world = World.create ()) ?(fram_words = 131_072) ?(sram_words = 4_096) () =
  {
    fram = Memory.create Fram ~words:fram_words;
    sram = Memory.create Sram ~words:sram_words;
    fram_layout = Layout.create ~words:fram_words;
    sram_layout = Layout.create ~words:sram_words;
    cost;
    failure = Failure.create failure;
    harvester;
    cap = capacitor;
    rng = Rng.create seed;
    world;
    now = 0;
    on = true;
    tag = App;
    boots = 0;
    failures = 0;
    critical_depth = 0;
    pending_death = false;
    energy_used = 0.;
    att_app_us = 0;
    att_ovh_us = 0;
    att_app_nj = 0.;
    att_ovh_nj = 0.;
    events = Hashtbl.create 32;
  }

let now t = t.now
let on t = t.on
let rng t = t.rng
let world t = t.world
let cost t = t.cost
let boots t = t.boots
let failures t = t.failures
let energy_used_nj t = t.energy_used
let capacitor t = t.cap
let failure_spec t = Failure.spec t.failure
let set_tag t tag = t.tag <- tag
let tag t = t.tag

let with_tag t tag f =
  let saved = t.tag in
  t.tag <- tag;
  Fun.protect ~finally:(fun () -> t.tag <- saved) f

let die t =
  if t.critical_depth > 0 then t.pending_death <- true
  else begin
    t.on <- false;
    raise Power_failure
  end

(* Failure-atomic section: real task runtimes make their commit sequence
   atomic with replay protocols (e.g. Alpaca's commit list); we model
   that by deferring a power failure that strikes inside the section to
   its end. Time and energy are still charged normally. *)
let critical t f =
  t.critical_depth <- t.critical_depth + 1;
  let finish () =
    t.critical_depth <- t.critical_depth - 1;
    if t.critical_depth = 0 && t.pending_death then begin
      t.pending_death <- false;
      t.on <- false;
      raise Power_failure
    end
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      t.critical_depth <- t.critical_depth - 1;
      raise e

let charge t ~us ~nj =
  if us < 0 then invalid_arg "Machine.charge: negative time";
  let nj = nj +. (t.cost.Cost.idle_nj_per_us *. float_of_int us) in
  t.now <- t.now + us;
  t.energy_used <- t.energy_used +. nj;
  (match t.tag with
  | App ->
      t.att_app_us <- t.att_app_us + us;
      t.att_app_nj <- t.att_app_nj +. nj
  | Overhead ->
      t.att_ovh_us <- t.att_ovh_us + us;
      t.att_ovh_nj <- t.att_ovh_nj +. nj);
  if Failure.energy_driven t.failure then begin
    Capacitor.harvest t.cap (Harvester.energy t.harvester ~at:(t.now - us) ~dur:us);
    match Capacitor.drain t.cap nj with `Dead -> die t | `Ok -> ()
  end
  else begin
    ignore (Capacitor.drain t.cap nj);
    if Failure.timer_fired t.failure ~now:t.now then die t
  end

let charge_op t (op : Cost.op_cost) n =
  if n > 0 then charge t ~us:(op.time_us * n) ~nj:(op.energy_nj *. float_of_int n)

let cpu t n = charge_op t t.cost.Cost.cpu_op n

let idle t dur =
  (* slice so the failure model can interrupt long delay loops *)
  let slice = 250 in
  let rec go remaining =
    if remaining > 0 then begin
      let step = min slice remaining in
      charge t ~us:step ~nj:0.;
      go (remaining - step)
    end
  in
  go dur

let mem t = function Memory.Fram -> t.fram | Memory.Sram -> t.sram
let layout t = function Memory.Fram -> t.fram_layout | Memory.Sram -> t.sram_layout
let alloc t space ~name ~words = Layout.alloc (layout t space) ~name ~words

let read t space addr =
  (match space with
  | Memory.Fram -> charge_op t t.cost.Cost.fram_read 1
  | Memory.Sram -> charge_op t t.cost.Cost.sram_read 1);
  Memory.read (mem t space) addr

let write t space addr v =
  (match space with
  | Memory.Fram -> charge_op t t.cost.Cost.fram_write 1
  | Memory.Sram -> charge_op t t.cost.Cost.sram_write 1);
  Memory.write (mem t space) addr v

let boot t =
  t.boots <- t.boots + 1;
  t.on <- true;
  t.pending_death <- false;
  Failure.arm t.failure t.rng ~now:t.now

let reboot t =
  t.failures <- t.failures + 1;
  let off =
    if Failure.energy_driven t.failure then begin
      (* recharge from the off threshold back to the boot threshold *)
      let needed = Capacitor.on_level t.cap -. Capacitor.level t.cap in
      match Harvester.time_to_harvest t.harvester ~at:t.now ~nj:needed with
      | Some dur ->
          Capacitor.set_ready t.cap;
          dur
      | None -> failwith "Machine.reboot: harvester yields no power; device never reboots"
    end
    else Failure.off_time t.failure t.rng
  in
  t.now <- t.now + off;
  Memory.clear t.sram;
  boot t

let take_attempt t =
  let a =
    { app_us = t.att_app_us; ovh_us = t.att_ovh_us; app_nj = t.att_app_nj; ovh_nj = t.att_ovh_nj }
  in
  t.att_app_us <- 0;
  t.att_ovh_us <- 0;
  t.att_app_nj <- 0.;
  t.att_ovh_nj <- 0.;
  a

let bump t name =
  Hashtbl.replace t.events name (1 + Option.value ~default:0 (Hashtbl.find_opt t.events name))

let event t name = Option.value ~default:0 (Hashtbl.find_opt t.events name)

let events t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.events []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
