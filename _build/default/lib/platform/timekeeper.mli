(** Persistent timekeeping across power failures.

    Timely re-execution semantics need to know how long ago an I/O
    operation last ran — including time spent powered off. Real
    batteryless systems use remanence-based or RC-discharge clocks
    (e.g. Botoks, CHRT); we model an always-available persistent clock
    with a configurable read cost and resolution. *)

val resolution_us : int
(** Clock granularity (100 µs, comparable to published persistent
    timekeepers at millisecond scales). *)

val read : Machine.t -> Units.time_us
(** Current persistent time, quantized to {!resolution_us}. Charges the
    clock-read cost and may therefore raise {!Machine.Power_failure}. *)

val elapsed_since : Machine.t -> Units.time_us -> Units.time_us
(** [elapsed_since m t0] is [read m - t0], clamped at 0. *)
