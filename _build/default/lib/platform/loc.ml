type t = { space : Memory.space; addr : int }

let fram addr = { space = Memory.Fram; addr }
let sram addr = { space = Memory.Sram; addr }
let is_nv t = t.space = Memory.Fram
let offset t n = { t with addr = t.addr + n }
let pp ppf t = Format.fprintf ppf "%a:0x%04x" Memory.pp_space t.space t.addr
