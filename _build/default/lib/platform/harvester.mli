(** Ambient energy sources.

    A harvester yields instantaneous power (nJ per µs, i.e. mW) as a
    function of simulated time. The RF model reproduces the paper's
    real-world setup — a Powercast TX91501 3 W transmitter at 915 MHz
    charging the device across a line-of-sight distance — using Friis
    free-space path loss and a fixed rectifier efficiency. *)

type t

val constant : float -> t
(** [constant p] always yields [p] nJ/µs. *)

val rf : ?tx_power_w:float -> ?efficiency:float -> distance_inch:float -> unit -> t
(** Powercast-style RF harvesting at 915 MHz across [distance_inch]
    inches. Defaults: 3 W transmitter, 55 % end-to-end conversion. *)

val trace : period_us:int -> float array -> t
(** [trace ~period_us samples] replays [samples] (nJ/µs), each lasting
    [period_us], looping; models recorded solar/thermal traces. *)

val power : t -> Units.time_us -> float
(** Instantaneous power at a given time, in nJ/µs. *)

val energy : t -> at:Units.time_us -> dur:Units.time_us -> float
(** Energy harvested over [dur] starting at [at] (left-rectangle
    integration per trace step; exact for constant sources). *)

val time_to_harvest : t -> at:Units.time_us -> nj:float -> Units.time_us option
(** Time needed to accumulate [nj] starting at [at]; [None] if the
    source yields no power for an unreasonably long horizon (dead
    spot). *)
