(** Units used throughout the simulator.

    Time is measured in integer microseconds. The simulated MCU is an
    MSP430FR5994 running at 1 MHz, so one CPU cycle is exactly one
    microsecond. Energy is measured in nanojoules. *)

type time_us = int
(** Simulated time, in microseconds. *)

type energy_nj = float
(** Energy, in nanojoules. *)

val us_of_ms : int -> time_us
(** [us_of_ms ms] converts milliseconds to microseconds. *)

val ms_of_us : time_us -> float
(** [ms_of_us t] converts microseconds to (fractional) milliseconds. *)

val uj_of_nj : energy_nj -> float
(** [uj_of_nj e] converts nanojoules to microjoules. *)

val pp_time : Format.formatter -> time_us -> unit
(** Pretty-print a duration as milliseconds with two decimals. *)

val pp_energy : Format.formatter -> energy_nj -> unit
(** Pretty-print an energy amount as microjoules with two decimals. *)
