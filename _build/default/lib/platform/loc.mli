(** A location: an address within one of the two memory spaces.

    EaseIO's [_DMA_copy] resolves re-execution semantics from the memory
    *kinds* of its source and destination, so locations carry their space
    explicitly. *)

type t = { space : Memory.space; addr : int }

val fram : int -> t
val sram : int -> t
val is_nv : t -> bool
val offset : t -> int -> t
val pp : Format.formatter -> t -> unit
