let resolution_us = 100

(* An SPI read of an external persistent timer: ~20 cycles. *)
let read_cost = 20

let read m =
  Machine.cpu m read_cost;
  Machine.now m / resolution_us * resolution_us

let elapsed_since m t0 = max 0 (read m - t0)
