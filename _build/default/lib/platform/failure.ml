type spec =
  | No_failures
  | Timer of { on_min_us : int; on_max_us : int; off_min_us : int; off_max_us : int }
  | Energy_driven

let paper_timer =
  Timer { on_min_us = 5_000; on_max_us = 20_000; off_min_us = 2_000; off_max_us = 15_000 }

type t = { spec : spec; mutable deadline : Units.time_us }

let create spec = { spec; deadline = max_int }
let spec t = t.spec

let arm t rng ~now =
  match t.spec with
  | No_failures | Energy_driven -> t.deadline <- max_int
  | Timer { on_min_us; on_max_us; _ } -> t.deadline <- now + Rng.int_in rng on_min_us on_max_us

let timer_fired t ~now =
  match t.spec with
  | No_failures | Energy_driven -> false
  | Timer _ -> now >= t.deadline

let energy_driven t = match t.spec with Energy_driven -> true | No_failures | Timer _ -> false

let off_time t rng =
  match t.spec with
  | No_failures | Energy_driven -> 0
  | Timer { off_min_us; off_max_us; _ } -> Rng.int_in rng off_min_us off_max_us
