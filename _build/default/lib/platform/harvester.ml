type t =
  | Constant of float
  | Rf of { power_nj_per_us : float }
  | Trace of { period_us : int; samples : float array }

let constant p = Constant p

let rf ?(tx_power_w = 3.0) ?(efficiency = 0.55) ~distance_inch () =
  (* Friis free-space: Pr = Pt * Gt * Gr * (lambda / (4 pi d))^2.
     915 MHz -> lambda = 0.3276 m; patch antennas with ~6 dBi combined gain. *)
  let lambda = 0.3276 in
  let gain = 4.0 in
  let d_m = distance_inch *. 0.0254 in
  let ratio = lambda /. (4.0 *. Float.pi *. d_m) in
  let pr_w = tx_power_w *. gain *. ratio *. ratio *. efficiency in
  (* 1 W = 1e9 nJ/s = 1e3 nJ/us *)
  Rf { power_nj_per_us = pr_w *. 1e3 }

let trace ~period_us samples =
  if period_us <= 0 || Array.length samples = 0 then invalid_arg "Harvester.trace";
  Trace { period_us; samples }

let power t now =
  match t with
  | Constant p -> p
  | Rf { power_nj_per_us } -> power_nj_per_us
  | Trace { period_us; samples } ->
      let idx = now / period_us mod Array.length samples in
      samples.(idx)

let energy t ~at ~dur =
  match t with
  | Constant p -> p *. float_of_int dur
  | Rf { power_nj_per_us } -> power_nj_per_us *. float_of_int dur
  | Trace { period_us; _ } ->
      (* integrate trace step by step *)
      let rec go acc t0 remaining =
        if remaining <= 0 then acc
        else
          let step = min remaining (period_us - (t0 mod period_us)) in
          go (acc +. (power t t0 *. float_of_int step)) (t0 + step) (remaining - step)
      in
      go 0. at dur

let time_to_harvest t ~at ~nj =
  if nj <= 0. then Some 0
  else
    match t with
    | Constant p | Rf { power_nj_per_us = p } ->
        if p <= 0. then None else Some (int_of_float (ceil (nj /. p)))
    | Trace { period_us; samples } ->
        let horizon = 1000 * period_us * Array.length samples in
        let rec go acc t0 =
          if acc >= nj then Some (t0 - at)
          else if t0 - at > horizon then None
          else
            let step = period_us - (t0 mod period_us) in
            go (acc +. energy t ~at:t0 ~dur:step) (t0 + step)
        in
        go 0. at
