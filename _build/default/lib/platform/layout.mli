(** Static allocation of named regions inside a word-addressed memory.

    The simulator's FRAM and SRAM are flat word arrays; the layout
    allocator plays the role of the linker, handing out non-overlapping
    address ranges for named variables and buffers. Allocation records
    feed the Table 6 memory-footprint accounting. *)

type entry = { name : string; addr : int; words : int }

type t

val create : words:int -> t
(** [create ~words] makes an allocator for a memory of [words] words. *)

val alloc : t -> name:string -> words:int -> int
(** [alloc t ~name ~words] reserves [words] words and returns the base
    address. Raises [Failure] if the memory is exhausted. Names need not
    be unique (e.g. array elements), but should be meaningful: they are
    reported in footprint tables. *)

val used : t -> int
(** Words allocated so far. *)

val capacity : t -> int
(** Total words. *)

val entries : t -> entry list
(** Allocations in address order. *)

val used_matching : t -> prefix:string -> int
(** Words allocated to entries whose name starts with [prefix]; used to
    attribute footprint to runtime metadata (flags, privatization
    buffers). *)
